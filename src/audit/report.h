// Structured results of an audited run: per-check violation aggregates plus
// the determinism digest.  Kept free of heavyweight dependencies so that
// exp::RunMetrics can embed an AuditReport by value.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"

namespace eant::audit {

/// How bad a violated invariant is.  kError invalidates the run's results;
/// kWarning flags a suspicious-but-survivable condition.
enum class Severity { kWarning, kError };

std::string severity_name(Severity severity);

/// One invariant check's aggregated violations over a run.  Only the first
/// occurrence keeps its full context (the rest are counted), because a broken
/// conservation law typically fires on every subsequent event and the first
/// occurrence is the one that localises the bug.
struct Violation {
  std::string check;       ///< check id, e.g. "slot-capacity"
  Severity severity = Severity::kError;
  std::size_t count = 0;
  Seconds first_time = 0.0;       ///< sim time of the first occurrence
  std::string first_context;      ///< human-readable detail of the first hit
};

/// Everything the auditor measured over one run.
struct AuditReport {
  /// One entry per check that fired at least once, in check-id order.
  std::vector<Violation> violations;

  /// FNV-1a over the ordered (time, record type, entity) stream; equal for
  /// two runs of the same RunConfig + seed, different otherwise.
  std::uint64_t digest = 0;

  /// Number of records mixed into the digest (a digest over zero records is
  /// vacuous — tests should assert this is positive).
  std::uint64_t digest_records = 0;

  /// True iff no error-severity violation fired.
  bool clean() const;

  /// Violations across all checks (both severities).
  std::size_t total_violations() const;

  /// Multi-line human-readable summary ("audit clean, digest …" or one line
  /// per violated check).
  std::string summary() const;
};

}  // namespace eant::audit
