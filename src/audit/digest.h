// Determinism digest: an FNV-1a hash over an ordered stream of simulation
// records.
//
// Two runs with the same RunConfig and seed must execute the same events at
// the same times in the same order; hashing the (time, record type, entity)
// stream collapses that whole history into one 64-bit value that tests and CI
// can compare byte-for-byte.  FNV-1a is used because it is trivially
// portable, has no state beyond the running hash, and makes digests stable
// across platforms (no hash-seed randomisation, no endianness ambiguity: all
// inputs are mixed as explicit 64-bit values, byte by byte).

#pragma once

#include <bit>
#include <cstdint>

namespace eant::audit {

/// Incremental FNV-1a over 64-bit words (each mixed as 8 little-endian bytes).
class Fnv1a {
 public:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ULL;
  static constexpr std::uint64_t kPrime = 0x100000001b3ULL;

  std::uint64_t value() const { return hash_; }

  void mix(std::uint64_t word) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (word >> (8 * i)) & 0xffULL;
      hash_ *= kPrime;
    }
  }

  /// Mixes a double via its IEEE-754 bit pattern (exact, no rounding).
  void mix(double value) { mix(std::bit_cast<std::uint64_t>(value)); }

 private:
  std::uint64_t hash_ = kOffsetBasis;
};

}  // namespace eant::audit
