#include "audit/auditor.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/error.h"
#include "common/fp.h"

namespace eant::audit {

std::string severity_name(Severity severity) {
  switch (severity) {
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

bool AuditReport::clean() const {
  for (const Violation& v : violations)
    if (v.severity == Severity::kError) return false;
  return true;
}

std::size_t AuditReport::total_violations() const {
  std::size_t total = 0;
  for (const Violation& v : violations) total += v.count;
  return total;
}

std::string AuditReport::summary() const {
  std::ostringstream os;
  if (violations.empty()) {
    os << "audit clean, digest " << std::hex << digest << std::dec << " over "
       << digest_records << " records";
    return os.str();
  }
  os << "audit found " << total_violations() << " violation(s) across "
     << violations.size() << " check(s):";
  for (const Violation& v : violations) {
    os << "\n  [" << severity_name(v.severity) << "] " << v.check << " x"
       << v.count << " — first at t=" << v.first_time << ": "
       << v.first_context;
  }
  return os.str();
}

bool audit_env_enabled() {
  const char* raw = std::getenv("EANT_AUDIT");
  if (raw == nullptr) return false;
  std::string value(raw);
  for (char& c : value) c = static_cast<char>(std::tolower(c));
  return value == "1" || value == "on" || value == "true" || value == "yes";
}

InvariantAuditor::InvariantAuditor(sim::Simulator& sim, AuditConfig config)
    : sim_(sim), config_(config) {}

void InvariantAuditor::attach_cluster(cluster::Cluster& cluster) {
  EANT_CHECK(cluster_ == nullptr, "auditor already attached to a cluster");
  cluster_ = &cluster;
  machines_.resize(cluster.size());
  for (cluster::MachineId id = 0; id < cluster.size(); ++id) {
    cluster::Machine& m = cluster.machine(id);
    MachineAudit& audit = machines_[id];
    audit.idle_power = m.type().idle_power;
    audit.alpha = m.type().alpha;
    audit.cores = m.type().cores;
    audit.map_slots = m.type().map_slots;
    audit.reduce_slots = m.type().reduce_slots;
    audit.last_time = sim_.now();
    audit.demand_cores = m.demand_cores();
    audit.up = m.is_up();
    m.set_observer(this);
  }
}

void InvariantAuditor::attach_fabric(net::Fabric& fabric) {
  fabric.set_observer(this);
  fabric_ = &fabric;
}

void InvariantAuditor::on_event_scheduled(Seconds t, sim::EventId id) {
  if (t < sim_.now()) {
    std::ostringstream os;
    os << "event " << id << " scheduled at t=" << t << " which is before now="
       << sim_.now();
    report_violation("heap-causality", Severity::kError, os.str());
  }
}

void InvariantAuditor::on_event_executed(Seconds t, sim::EventId id) {
  if (t < last_executed_) {
    std::ostringstream os;
    os << "event " << id << " executed at t=" << t
       << " after an event at t=" << last_executed_;
    report_violation("time-monotonicity", Severity::kError, os.str());
  }
  last_executed_ = std::max(last_executed_, t);
  record(Record::kSimEvent, id);
}

void InvariantAuditor::on_machine_state(cluster::MachineId id, Seconds now,
                                        double demand_cores, bool up) {
  EANT_CHECK(id < machines_.size(), "machine state for unknown machine");
  MachineAudit& m = machines_[id];
  integrate(m, now);
  if (m.up != up) {
    m.up = up;
    record(Record::kMachinePower, id * 2 + (up ? 1 : 0));
  }
  if (!approx_equal(m.demand_cores, demand_cores)) {
    m.demand_cores = demand_cores;
    // Mix the demand bit pattern: any divergence in RNG draws or scheduling
    // order shifts a task's core demand and shows up here.
    Fnv1a key;
    key.mix(static_cast<std::uint64_t>(id));
    key.mix(demand_cores);
    record(Record::kDemand, key.value());
  }
}

void InvariantAuditor::on_flow_started(net::FlowId id, net::TransferClass cls,
                                       Megabytes total_mb) {
  open_flows_[id] = total_mb;
  Fnv1a key;
  key.mix(id);
  key.mix(static_cast<std::uint64_t>(cls));
  key.mix(total_mb);
  record(Record::kFlowStart, key.value());
}

void InvariantAuditor::on_flow_finished(net::FlowId id, Megabytes requested_mb,
                                        Megabytes delivered_mb) {
  auto it = open_flows_.find(id);
  if (it == open_flows_.end()) {
    std::ostringstream os;
    os << "flow " << id << " finished but was never observed starting";
    report_violation("flow-conservation", Severity::kError, os.str());
  } else {
    if (!approx_equal(it->second, requested_mb)) {
      std::ostringstream os;
      os << "flow " << id << " finished with total " << requested_mb
         << " MB but started with " << it->second << " MB";
      report_violation("flow-conservation", Severity::kError, os.str());
    }
    open_flows_.erase(it);
  }
  // The completion event fired exactly when the last byte should have
  // arrived, so the lazily-advanced byte counter must agree with the
  // requested size up to one rounding step.
  const double tol =
      config_.flow_abs_tol + config_.flow_rel_tol * requested_mb;
  if (std::abs(requested_mb - delivered_mb) > tol) {
    std::ostringstream os;
    os << "flow " << id << " requested " << requested_mb
       << " MB but delivered " << delivered_mb << " MB at completion";
    report_violation("flow-conservation", Severity::kError, os.str());
  }
  finished_requested_mb_ += requested_mb;
  record(Record::kFlowFinish, id);
}

void InvariantAuditor::on_flow_aborted(net::FlowId id, Megabytes requested_mb,
                                       Megabytes delivered_mb) {
  auto it = open_flows_.find(id);
  if (it == open_flows_.end()) {
    std::ostringstream os;
    os << "flow " << id << " aborted but was never observed starting";
    report_violation("flow-conservation", Severity::kError, os.str());
  } else {
    if (!approx_equal(it->second, requested_mb)) {
      std::ostringstream os;
      os << "flow " << id << " aborted with total " << requested_mb
         << " MB but started with " << it->second << " MB";
      report_violation("flow-conservation", Severity::kError, os.str());
    }
    open_flows_.erase(it);
  }
  // An aborted flow can never have delivered more than was requested.
  const double tol =
      config_.flow_abs_tol + config_.flow_rel_tol * requested_mb;
  if (delivered_mb > requested_mb + tol || delivered_mb < -tol) {
    std::ostringstream os;
    os << "flow " << id << " aborted after delivering " << delivered_mb
       << " MB of a " << requested_mb << " MB request";
    report_violation("flow-conservation", Severity::kError, os.str());
  }
  aborted_delivered_mb_ += std::clamp(delivered_mb, 0.0, requested_mb);
  Fnv1a key;
  key.mix(id);
  key.mix(delivered_mb);
  record(Record::kFlowAbort, key.value());
}

void InvariantAuditor::on_link_state(net::LinkId link, double factor) {
  check_in_range("link-state", factor, 0.0, 1.0,
                 "link capacity factor on state change");
  Fnv1a key;
  key.mix(static_cast<std::uint64_t>(link));
  key.mix(factor);
  record(Record::kLinkState, key.value());
}

void InvariantAuditor::on_task_transition(std::uint64_t job, bool is_map,
                                          std::uint64_t index, TaskEvent event,
                                          cluster::MachineId machine) {
  TaskAudit& task = tasks_[{job, is_map, index}];
  MachineAudit* m =
      machine < machines_.size() ? &machines_[machine] : nullptr;

  const auto context = [&](const char* what) {
    std::ostringstream os;
    os << what << ": " << (is_map ? "map" : "reduce") << " task " << job << '/'
       << index << " on machine " << machine << " (done=" << task.done
       << ", attempts_running=" << task.attempts_running << ')';
    return os.str();
  };

  switch (event) {
    case TaskEvent::kLaunch:
      // Legal from pending, or as the one speculative twin of a running
      // attempt.  Launching a completed task or a third attempt is a
      // scheduler bug.
      if (task.done)
        report_violation("task-state-machine", Severity::kError,
                         context("launch of a completed task"));
      else if (task.attempts_running >= 2)
        report_violation("task-state-machine", Severity::kError,
                         context("third concurrent attempt launched"));
      ++task.attempts_running;
      if (m != nullptr) {
        int& running = is_map ? m->running_maps : m->running_reduces;
        const int slots = is_map ? m->map_slots : m->reduce_slots;
        ++running;
        if (running > slots) {
          std::ostringstream os;
          os << (is_map ? "map" : "reduce") << " attempts on machine "
             << machine << " reached " << running << " with only " << slots
             << " slots";
          report_violation("slot-capacity", Severity::kError, os.str());
        }
      }
      record(Record::kTaskLaunch, (job << 20) ^ (index << 1) ^
                                      (is_map ? 1 : 0) ^ (machine << 44));
      break;

    case TaskEvent::kFinish:
    case TaskEvent::kOrphanCommit:
      if (task.attempts_running < 1)
        report_violation("task-state-machine", Severity::kError,
                         context(event == TaskEvent::kFinish
                                     ? "finish without a running attempt"
                                     : "orphan commit without a running attempt"));
      if (task.done)
        report_violation("task-state-machine", Severity::kError,
                         context(event == TaskEvent::kFinish
                                     ? "second finish of a completed task"
                                     : "orphan commit of a completed task"));
      // A second commit without an intervening revert would credit the
      // task's work (and the energy attributed to it) twice — the classic
      // failover double-count when a stale completion slips past fencing.
      if (!committed_.insert({job, is_map, index}).second)
        report_violation("double-counted-energy", Severity::kError,
                         context("task committed twice across epochs"));
      task.done = true;
      task.attempts_running = std::max(0, task.attempts_running - 1);
      if (m != nullptr) {
        int& running = is_map ? m->running_maps : m->running_reduces;
        running = std::max(0, running - 1);
      }
      record(event == TaskEvent::kFinish ? Record::kTaskFinish
                                         : Record::kOrphanCommit,
             (job << 20) ^ (index << 1) ^ (is_map ? 1 : 0));
      break;

    case TaskEvent::kFail:
    case TaskEvent::kKill:
    case TaskEvent::kOrphanRequeue:
      if (task.attempts_running < 1)
        report_violation(
            "task-state-machine", Severity::kError,
            context(event == TaskEvent::kFail
                        ? "fail without a running attempt"
                        : event == TaskEvent::kKill
                              ? "kill without a running attempt"
                              : "orphan requeue without a running attempt"));
      task.attempts_running = std::max(0, task.attempts_running - 1);
      if (m != nullptr) {
        int& running = is_map ? m->running_maps : m->running_reduces;
        running = std::max(0, running - 1);
      }
      record(event == TaskEvent::kFail
                 ? Record::kTaskFail
                 : event == TaskEvent::kKill ? Record::kTaskKill
                                             : Record::kOrphanRequeue,
             (job << 20) ^ (index << 1) ^ (is_map ? 1 : 0));
      break;

    case TaskEvent::kRevertDone:
      // Only a completed map whose host vanished can be reverted to pending.
      if (!task.done)
        report_violation("task-state-machine", Severity::kError,
                         context("revert of a task that is not done"));
      task.done = false;
      // The work no longer counts, so a later re-commit is legitimate.
      committed_.erase({job, is_map, index});
      record(Record::kTaskRevert,
             (job << 20) ^ (index << 1) ^ (is_map ? 1 : 0));
      break;
  }
}

void InvariantAuditor::on_master_epoch(std::uint64_t epoch) {
  if (epoch <= last_epoch_) {
    std::ostringstream os;
    os << "master epoch advanced to " << epoch << " but epoch " << last_epoch_
       << " was already observed — fencing cannot distinguish the regimes";
    report_violation("epoch-monotonicity", Severity::kError, os.str());
  }
  last_epoch_ = std::max(last_epoch_, epoch);
  record(Record::kEpoch, epoch);
}

void InvariantAuditor::record(Record type, std::uint64_t entity) {
  digest_.mix(sim_.now());
  digest_.mix(static_cast<std::uint64_t>(type));
  digest_.mix(entity);
  ++digest_records_;
}

void InvariantAuditor::check_in_range(const char* check, double value,
                                      double lo, double hi,
                                      const std::string& context) {
  if (std::isfinite(value) && value >= lo && value <= hi) return;
  std::ostringstream os;
  os << context << ": value " << value << " outside [" << lo << ", " << hi
     << ']';
  report_violation(check, Severity::kError, os.str());
}

void InvariantAuditor::report_violation(const char* check, Severity severity,
                                        const std::string& context) {
  if (config_.abort_on_violation) {
    std::ostringstream os;
    os << "audit check '" << check << "' failed at t=" << sim_.now() << ": "
       << context;
    throw InvariantError(os.str());
  }
  auto [it, inserted] = violations_.try_emplace(check);
  Violation& v = it->second;
  if (inserted) {
    v.check = check;
    v.severity = severity;
    v.first_time = sim_.now();
    v.first_context = context;
  }
  ++v.count;
}

std::size_t InvariantAuditor::violations() const {
  std::size_t total = 0;
  for (const auto& [check, v] : violations_) total += v.count;
  return total;
}

void InvariantAuditor::integrate(MachineAudit& m, Seconds now) {
  const Seconds dt = now - m.last_time;
  if (dt > 0.0 && m.up) {
    const double u = std::clamp(m.demand_cores / m.cores, 0.0, 1.0);
    m.energy += (m.idle_power + m.alpha * u) * dt;
  }
  m.last_time = std::max(m.last_time, now);
}

AuditReport InvariantAuditor::finalize() {
  if (cluster_ != nullptr) {
    for (cluster::MachineId id = 0; id < machines_.size(); ++id) {
      MachineAudit& m = machines_[id];
      integrate(m, sim_.now());
      const Joules expected = cluster_->machine(id).energy();
      const double tol = config_.energy_abs_tol +
                         config_.energy_rel_tol * std::abs(expected);
      if (std::abs(m.energy - expected) > tol) {
        std::ostringstream os;
        os << "machine " << id << " audited energy " << m.energy
           << " J vs exact " << expected << " J (tolerance " << tol << " J)";
        report_violation("energy-conservation", Severity::kError, os.str());
      }
    }
  }

  if (fabric_ != nullptr) {
    // Fabric-wide byte conservation, robust to aborts and re-rating: the
    // per-class byte counters must account for exactly the finished flows'
    // requested bytes plus the aborted flows' delivered partials, give or
    // take what is still in flight.
    const net::FabricMetrics fm = fabric_->metrics();
    Megabytes in_flight_allowance = 0.0;
    for (const auto& [id, requested] : open_flows_)
      in_flight_allowance += requested;
    const Megabytes lo = finished_requested_mb_ + aborted_delivered_mb_;
    const Megabytes hi = lo + in_flight_allowance;
    const double tol = config_.flow_abs_tol +
                       config_.flow_rel_tol * std::max(std::abs(hi), 1.0);
    if (fm.total_mb() < lo - tol || fm.total_mb() > hi + tol) {
      std::ostringstream os;
      os << "fabric accounted " << fm.total_mb()
         << " MB but flow lifecycle implies [" << lo << ", " << hi << "] MB ("
         << fm.flows_completed << " completed, " << fm.flows_aborted
         << " aborted, " << fm.flows_failed << " failed, " << open_flows_.size()
         << " open)";
      report_violation("flow-conservation", Severity::kError, os.str());
    }
  }

  // Attempts still running at end of run are fine (the workload may have
  // been truncated), but negative counters would mean the transition stream
  // itself was inconsistent — those were already flagged per event.

  AuditReport report;
  report.digest = digest_.value();
  report.digest_records = digest_records_;
  for (const auto& [check, v] : violations_) report.violations.push_back(v);
  return report;
}

}  // namespace eant::audit
