// InvariantAuditor: the runtime-optional checking layer that keeps the
// simulator honest as it grows.
//
// The paper's results (Figs. 6-13) are only as good as the simulator's
// bookkeeping, so the auditor re-derives the critical quantities through an
// independent path and compares:
//
//  * energy conservation — a second integral of P_idle + alpha * u(t) per
//    machine, driven purely by observed demand/power-state changes, must
//    match the Machine's own exact integral at end of run;
//  * slot capacity — the attempts observed running on a machine never exceed
//    its map/reduce slots;
//  * flow byte conservation — bytes credited to a flow when it finishes must
//    equal the bytes requested at start;
//  * task-attempt legality — every observed lifecycle event is checked
//    against an explicit transition table covering the retry/expiry/crash
//    paths (launch only from pending or as the one speculative twin, finish
//    and kill only while running, revert only from done, ...);
//  * event-time sanity — executed events never move the clock backwards and
//    nothing is scheduled in the past (heap causality).
//
// Alongside the checks, the auditor folds every observation into an FNV-1a
// determinism digest (digest.h): two runs of the same RunConfig + seed must
// produce bit-identical digests, and any nondeterminism anywhere in the
// event loop, the RNG consumption order, the flow model or the task
// lifecycle shows up as a digest mismatch in tests and CI.
//
// All hooks are raw-pointer taps (`if (auditor) auditor->...`) so a
// non-audited run pays one branch per hook; auditing is enabled per run via
// exp::RunConfig::audit or globally via the EANT_AUDIT environment variable.
// Violations aggregate into an AuditReport; with
// AuditConfig::abort_on_violation they throw InvariantError at the first
// offence instead (the EANT_CHECK-style fail-fast mode).
//
// Layering: the auditor only depends on sim/cluster/net observer interfaces
// and plain integer task identifiers — mapreduce and core call *into* it,
// never the other way around, so eant_audit sits below eant_mapreduce in the
// library graph.

#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "audit/digest.h"
#include "audit/report.h"
#include "cluster/cluster.h"
#include "common/units.h"
#include "net/fabric.h"
#include "sim/simulator.h"

namespace eant::audit {

/// Auditor tunables.
struct AuditConfig {
  /// Master switch consulted by the Run harness (the EANT_AUDIT environment
  /// variable overrides a false here).
  bool enabled = false;

  /// Throw InvariantError at the first violation instead of aggregating.
  bool abort_on_violation = false;

  /// Relative / absolute tolerance for the end-of-run energy cross-check.
  /// The two integrals run the same arithmetic in a different association
  /// order, so only accumulated rounding separates them.
  double energy_rel_tol = 1e-6;
  Joules energy_abs_tol = 1e-3;

  /// Tolerance (MB, relative to flow size) for flow byte conservation.
  /// Delivered bytes lag the requested total by at most one rate * dt
  /// rounding step when the completion event fires.
  double flow_rel_tol = 1e-6;
  Megabytes flow_abs_tol = 1e-6;

  /// Hard ceiling for pheromone values: anything above this (or non-finite)
  /// means a deposit computation exploded.
  double pheromone_ceiling = 1e12;
};

/// True iff the EANT_AUDIT environment variable requests auditing
/// (1/on/true/yes, case-insensitive) — how CI turns auditing on for the
/// whole test suite without touching code.
bool audit_env_enabled();

/// Record types mixed into the determinism digest.  Values are part of the
/// digest definition — append only, never renumber.
enum class Record : std::uint32_t {
  kSimEvent = 1,     ///< an event executed (entity = event id)
  kTaskLaunch = 2,   ///< attempt occupied a slot
  kTaskFinish = 3,
  kTaskFail = 4,     ///< transient attempt failure
  kTaskKill = 5,     ///< attempt cancelled / died with its machine
  kTaskRevert = 6,   ///< completed map reverted after node loss
  kJobSubmit = 7,
  kJobFinish = 8,
  kFlowStart = 9,
  kFlowFinish = 10,
  kFlowAbort = 11,
  kMachinePower = 12,  ///< power state flip (entity = machine id * 2 + up)
  kDemand = 13,        ///< hosted CPU demand changed (entity = demand bits)
  kControlTick = 14,   ///< E-Ant control interval boundary
  kLinkState = 15,     ///< link capacity factor changed (entity = link+factor)
  kReplicaChange = 16, ///< HDFS replica re-replicated (entity = block+target)
  kDataLoss = 17,      ///< all replicas of a block died (entity = block id)
  kFetchFailure = 18,  ///< shuffle fetch failed (entity = job+source bits)
  kPerfState = 19,     ///< machine perf factors changed (entity = id+factor bits)
  kMasterCrash = 20,   ///< control-plane daemon died (entity = 0 JT, 1 NN)
  kMasterRecover = 21, ///< control-plane daemon restarted (entity = 0 JT, 1 NN)
  kCheckpoint = 22,    ///< JobTracker edit-log checkpoint committed
  kEpoch = 23,         ///< master epoch advanced (entity = new epoch)
  kOrphanCommit = 24,  ///< orphaned attempt committed from checkpoint replay
  kOrphanRequeue = 25, ///< orphaned attempt discarded and requeued
  kPreempt = 26,       ///< attempt killed to rebalance tenant slot shares
  kOverloadState = 27, ///< overload detector transition (entity = new state)
  kJobReject = 28,     ///< admission rejected a submission
                       ///< (entity = tenant << 2 | verdict)
  kJobRetry = 29,      ///< rejected job scheduled a backoff retry
                       ///< (entity = tenant)
  kCorruptionDetected = 30,  ///< corrupt replica / payload / output confirmed
                             ///< (entity = block or job + node bits)
  kScrub = 31,               ///< scrubber tick scanned (entity = replica count)
  kRepair = 32,              ///< corrupt-block detection settled by a completed
                             ///< re-replication (entity = block + target bits)
};

/// Task-attempt lifecycle events checked against the transition table.
/// kOrphanCommit / kOrphanRequeue are the failover-recovery resolutions of
/// an attempt that outlived its master: commit behaves like a finish (the
/// work counts once), requeue like a kill (the work is wasted).
enum class TaskEvent {
  kLaunch,
  kFinish,
  kFail,
  kKill,
  kRevertDone,
  kOrphanCommit,
  kOrphanRequeue,
};

/// The checking layer.  Construct, wire via attach_* / set_auditor calls,
/// run the simulation, then finalize() for the report.
class InvariantAuditor final : public sim::SimObserver,
                               public cluster::MachineObserver,
                               public net::FabricObserver {
 public:
  explicit InvariantAuditor(sim::Simulator& sim, AuditConfig config = {});

  InvariantAuditor(const InvariantAuditor&) = delete;
  InvariantAuditor& operator=(const InvariantAuditor&) = delete;

  const AuditConfig& config() const { return config_; }

  // --- wiring -----------------------------------------------------------------

  /// Registers as each machine's observer and snapshots slot limits and
  /// power models for the energy / slot checks.  Call once, after the
  /// cluster is fully built and before any task runs.
  void attach_cluster(cluster::Cluster& cluster);

  /// Registers as the fabric's flow observer and remembers the fabric for
  /// the end-of-run byte-conservation cross-check.
  void attach_fabric(net::Fabric& fabric);

  // --- sim::SimObserver -------------------------------------------------------

  void on_event_scheduled(Seconds t, sim::EventId id) override;
  void on_event_executed(Seconds t, sim::EventId id) override;

  // --- cluster::MachineObserver -----------------------------------------------

  void on_machine_state(cluster::MachineId id, Seconds now,
                        double demand_cores, bool up) override;

  // --- net::FabricObserver ----------------------------------------------------

  void on_flow_started(net::FlowId id, net::TransferClass cls,
                       Megabytes total_mb) override;
  void on_flow_finished(net::FlowId id, Megabytes requested_mb,
                        Megabytes delivered_mb) override;
  void on_flow_aborted(net::FlowId id, Megabytes requested_mb,
                       Megabytes delivered_mb) override;
  void on_link_state(net::LinkId link, double factor) override;

  // --- task lifecycle (JobTracker / TaskTracker hooks) ------------------------

  /// Feeds one attempt-lifecycle event through the transition table and the
  /// slot-capacity check.  `job`/`index` identify the task, `is_map` its
  /// kind, `machine` where the event happened.
  void on_task_transition(std::uint64_t job, bool is_map, std::uint64_t index,
                          TaskEvent event, cluster::MachineId machine);

  /// Observes a master-epoch advance (JobTracker recovery).  Epochs must be
  /// strictly increasing — a stale or repeated epoch means fencing is broken
  /// and stale heartbeats could be double-applied.
  void on_master_epoch(std::uint64_t epoch);

  // --- generic hooks (higher layers without a dedicated interface) ------------

  /// Mixes one record into the determinism digest.
  void record(Record type, std::uint64_t entity);

  /// Checks value in [lo, hi] (and finite); context names the checked thing.
  void check_in_range(const char* check, double value, double lo, double hi,
                      const std::string& context);

  /// Reports a violation of the named check (aggregated per check id; in
  /// abort mode throws InvariantError immediately).
  void report_violation(const char* check, Severity severity,
                        const std::string& context);

  // --- results ----------------------------------------------------------------

  /// Runs the end-of-run conservation checks (energy cross-check per
  /// machine) and returns the aggregated report.  Idempotent per run; call
  /// after the workload completed.
  AuditReport finalize();

  /// The digest accumulated so far (finalize() reports the same value).
  std::uint64_t digest() const { return digest_.value(); }
  std::uint64_t digest_records() const { return digest_records_; }

  /// Violations recorded so far across all checks.
  std::size_t violations() const;

 private:
  struct MachineAudit {
    // Snapshot of the power model (idle + slope) and slot limits.
    Watts idle_power = 0.0;
    Watts alpha = 0.0;
    int cores = 1;
    int map_slots = 0;
    int reduce_slots = 0;
    // Independent integration state.
    Seconds last_time = 0.0;
    double demand_cores = 0.0;
    bool up = true;
    Joules energy = 0.0;
    // Attempts currently observed running (slot-capacity check).
    int running_maps = 0;
    int running_reduces = 0;
  };

  struct TaskAudit {
    bool done = false;
    int attempts_running = 0;
  };

  /// Advances a machine's independent energy integral to `now`.
  void integrate(MachineAudit& m, Seconds now);

  sim::Simulator& sim_;
  AuditConfig config_;
  cluster::Cluster* cluster_ = nullptr;
  const net::Fabric* fabric_ = nullptr;

  Fnv1a digest_;
  std::uint64_t digest_records_ = 0;

  // Fabric byte-conservation ledger: what finished flows requested plus what
  // aborted/failed flows actually delivered must match the fabric's own
  // per-class byte accounting at finalize (open flows add an in-flight
  // allowance).
  Megabytes finished_requested_mb_ = 0.0;
  Megabytes aborted_delivered_mb_ = 0.0;

  Seconds last_executed_ = 0.0;
  std::vector<MachineAudit> machines_;
  // (job, is_map, index) -> lifecycle state; std::map for deterministic
  // iteration and because the key is a composite.
  std::map<std::tuple<std::uint64_t, bool, std::uint64_t>, TaskAudit> tasks_;
  std::map<net::FlowId, Megabytes> open_flows_;

  // Tasks whose completion was committed (kFinish or kOrphanCommit).  A
  // second commit without an intervening kRevertDone would count the same
  // task's work — and energy — twice across master epochs.
  std::set<std::tuple<std::uint64_t, bool, std::uint64_t>> committed_;
  std::uint64_t last_epoch_ = 0;

  std::map<std::string, Violation> violations_;
};

}  // namespace eant::audit
