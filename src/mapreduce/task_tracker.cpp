#include "mapreduce/task_tracker.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "audit/auditor.h"
#include "common/error.h"
#include "common/fp.h"
#include "mapreduce/job_tracker.h"

namespace eant::mr {
namespace {

// Feeds one attempt-lifecycle event to the audit layer (if attached).
void audit_transition(JobTracker& jt, const TaskSpec& spec,
                      cluster::MachineId machine, audit::TaskEvent event) {
  if (audit::InvariantAuditor* auditor = jt.auditor()) {
    auditor->on_task_transition(spec.job, spec.kind == TaskKind::kMap,
                                spec.index, event, machine);
  }
}

}  // namespace

TaskTracker::TaskTracker(sim::Simulator& sim, cluster::Machine& machine,
                         JobTracker& job_tracker, NoiseModel& noise,
                         Seconds heartbeat_interval, int map_slots,
                         int reduce_slots, Seconds heartbeat_phase)
    : sim_(sim),
      machine_(machine),
      job_tracker_(job_tracker),
      noise_(noise),
      heartbeat_(heartbeat_interval),
      map_slots_(map_slots),
      reduce_slots_(reduce_slots) {
  EANT_CHECK(heartbeat_interval > 0.0, "heartbeat interval must be positive");
  EANT_CHECK(heartbeat_phase >= 0.0 && heartbeat_phase < heartbeat_interval,
             "heartbeat phase must be within one interval");
  EANT_CHECK(map_slots >= 0 && reduce_slots >= 0,
             "slot counts must be non-negative");
  start_heartbeat(heartbeat_phase > 0.0 ? heartbeat_phase : heartbeat_);
}

TaskTracker::~TaskTracker() { sim_.cancel(heartbeat_event_); }

void TaskTracker::start_heartbeat(Seconds first_delay) {
  heartbeat_event_ = sim_.schedule_periodic(
      heartbeat_, [this] { return heartbeat(); }, first_delay);
}

int TaskTracker::running(TaskKind kind) const {
  return kind == TaskKind::kMap ? running_maps_ : running_reduces_;
}

int TaskTracker::free_slots(TaskKind kind) const {
  if (!alive_) return 0;
  return (kind == TaskKind::kMap ? map_slots_ : reduce_slots_) - running(kind);
}

std::size_t TaskTracker::completed(TaskKind kind) const {
  return kind == TaskKind::kMap ? completed_maps_ : completed_reduces_;
}

TaskTracker::Running& TaskTracker::occupy_slot(const TaskSpec& spec,
                                               std::uint64_t attempt) {
  EANT_CHECK(alive_, "a crashed TaskTracker cannot start tasks");
  EANT_CHECK(free_slots(spec.kind) > 0, "no free slot of the requested kind");

  Running r;
  r.spec = spec;
  r.start = sim_.now();
  r.current_demand = spec.cpu_demand * noise_.demand_multiplier();
  r.last_sample = r.start;
  machine_.adjust_demand(r.current_demand);
  auto [it, inserted] = running_.emplace(attempt, std::move(r));
  EANT_ASSERT(inserted, "attempt id reused");

  if (spec.kind == TaskKind::kMap) {
    ++running_maps_;
  } else {
    ++running_reduces_;
  }
  audit_transition(job_tracker_, spec, machine_.id(), audit::TaskEvent::kLaunch);
  return it->second;
}

void TaskTracker::schedule_compute(Running& r, std::uint64_t attempt,
                                   Seconds duration, Seconds fail_after) {
  r.compute_start = sim_.now();
  r.nominal_duration = duration;
  r.fails = fail_after > 0.0 && fail_after < duration;
  r.event_work = r.fails ? fail_after : duration;
  r.stretch = machine_.stretch_for(r.spec.cpu_ref_seconds, r.spec.io_mb);
  r.last_rescale = sim_.now();
  r.work_done = 0.0;
  // stretch is the literal 1.0 on a healthy machine, so event_work * stretch
  // is bit-identical to the pre-fail-slow schedule there.
  if (r.fails) {
    r.completion_event = sim_.schedule_after(
        r.event_work * r.stretch, [this, attempt] { fail_task(attempt); });
  } else {
    r.completion_event = sim_.schedule_after(
        r.event_work * r.stretch, [this, attempt] { finish_task(attempt); });
  }
}

void TaskTracker::start_task(const TaskSpec& spec, Seconds duration,
                             bool data_local, Seconds fail_after) {
  EANT_CHECK(duration > 0.0, "task duration must be positive");
  const std::uint64_t attempt = next_attempt_id_++;
  Running& r = occupy_slot(spec, attempt);
  r.data_local = data_local;
  r.locality = data_local ? Locality::kNodeLocal : Locality::kOffRack;
  schedule_compute(r, attempt, duration, fail_after);
}

void TaskTracker::start_fetching_task(const TaskSpec& spec, Locality locality,
                                      std::function<void()> abort_transfer) {
  const std::uint64_t attempt = next_attempt_id_++;
  Running& r = occupy_slot(spec, attempt);
  r.data_local = locality == Locality::kNodeLocal;
  r.locality = locality;
  r.fetching = true;
  r.abort_transfer = std::move(abort_transfer);
}

void TaskTracker::begin_compute(JobId job, TaskKind kind, TaskIndex index,
                                Seconds duration, Seconds fail_after) {
  EANT_CHECK(duration > 0.0, "task duration must be positive");
  const std::uint64_t attempt = find_attempt(job, kind, index);
  EANT_CHECK(attempt != 0, "begin_compute for an attempt not running here");
  Running& r = running_.at(attempt);
  EANT_CHECK(r.fetching, "attempt is not in its transfer phase");
  r.fetching = false;
  r.fetch_end = sim_.now();
  r.abort_transfer = nullptr;
  schedule_compute(r, attempt, duration, fail_after);
}

void TaskTracker::abort_transfer_if_fetching(Running& r) {
  if (!r.abort_transfer) return;
  // Move first: the callback must run exactly once even if the teardown it
  // triggers loops back into this tracker.
  auto abort = std::move(r.abort_transfer);
  r.abort_transfer = nullptr;
  abort();
}

void TaskTracker::close_sample_window(Running& r) {
  const Seconds dt = sim_.now() - r.last_sample;
  if (dt > 0.0) {
    // The task's effective share of the machine: when aggregate demand
    // oversubscribes the cores, the OS time-slices and each process gets a
    // proportional share, so per-task utilisations sum to at most 1 — the
    // same clamping the machine's own power model applies.
    const double total =
        std::max(machine_.demand_cores(),
                 static_cast<double>(machine_.type().cores));
    const Utilization true_util = total <= 0.0 ? 0.0 : r.current_demand / total;
    r.samples.push_back(UtilSample{dt, noise_.measured(true_util)});
    r.last_sample = sim_.now();
  }
}

double TaskTracker::work_now(const Running& r) const {
  if (r.compute_start < 0.0) return 0.0;
  return r.work_done + (sim_.now() - r.last_rescale) / r.stretch;
}

void TaskTracker::set_perf_factors(double cpu, double io) {
  machine_.set_perf_factors(cpu, io);
  const Seconds now = sim_.now();
  for (auto& [attempt, r] : running_) {
    if (r.compute_start < 0.0) continue;  // fetching: stretch applies later
    const double new_stretch =
        machine_.stretch_for(r.spec.cpu_ref_seconds, r.spec.io_mb);
    if (approx_equal(new_stretch, r.stretch)) continue;
    // Bank the work done at the old stretch, then reschedule the pending
    // event for the remaining nominal work at the new one — the same
    // event-deterministic re-rate the fabric applies to flows.
    r.work_done += (now - r.last_rescale) / r.stretch;
    r.last_rescale = now;
    r.stretch = new_stretch;
    sim_.cancel(r.completion_event);
    const Seconds remaining =
        std::max(r.event_work - r.work_done, 0.0) * new_stretch;
    const std::uint64_t id = attempt;
    if (r.fails) {
      r.completion_event =
          sim_.schedule_after(remaining, [this, id] { fail_task(id); });
    } else {
      r.completion_event =
          sim_.schedule_after(remaining, [this, id] { finish_task(id); });
    }
  }
  if (audit::InvariantAuditor* auditor = job_tracker_.auditor()) {
    audit::Fnv1a key;
    key.mix(static_cast<std::uint64_t>(machine_.id()));
    key.mix(cpu);
    key.mix(io);
    auditor->record(audit::Record::kPerfState, key.value());
  }
}

std::vector<double> TaskTracker::progress_rate_samples() const {
  std::vector<double> rates;
  const Seconds now = sim_.now();
  for (const auto& [id, r] : running_) {
    if (r.compute_start < 0.0) continue;
    const Seconds elapsed = now - r.compute_start;
    if (elapsed <= 0.0) continue;
    rates.push_back(work_now(r) / elapsed);
  }
  return rates;
}

double TaskTracker::running_progress(JobId job, TaskKind kind,
                                     TaskIndex index) const {
  const std::uint64_t attempt = find_attempt(job, kind, index);
  if (attempt == 0) return -1.0;
  const Running& r = running_.at(attempt);
  if (r.compute_start < 0.0 || r.nominal_duration <= 0.0) return 0.0;
  return std::clamp(work_now(r) / r.nominal_duration, 0.0, 1.0);
}

bool TaskTracker::heartbeat() {
  // First close the elapsed utilisation window for every running task (the
  // effective-share computation must see the old aggregate demand), then
  // redraw each task's true demand for the next window (transient noise).
  for (auto& [id, r] : running_) {
    close_sample_window(r);
  }
  // Audit: integrated nominal work never decreases, under any sequence of
  // slowdown/recovery re-rates.
  if (audit::InvariantAuditor* auditor = job_tracker_.auditor()) {
    for (auto& [id, r] : running_) {
      if (r.compute_start < 0.0) continue;
      const double w = work_now(r);
      if (w + 1e-9 < r.last_progress) {
        auditor->report_violation(
            "progress-monotonic", audit::Severity::kError,
            "task progress went backwards on machine " +
                std::to_string(machine_.id()));
      }
      r.last_progress = w;
    }
  }
  for (auto& [id, r] : running_) {
    const double next_demand = r.spec.cpu_demand * noise_.demand_multiplier();
    machine_.adjust_demand(next_demand - r.current_demand);
    r.current_demand = next_demand;
  }
  // Offer free slots to the JobTracker (the scheduler fills them).
  job_tracker_.handle_heartbeat(*this);
  return true;
}

TaskReport TaskTracker::make_report(Running& r) {
  TaskReport report;
  report.spec = r.spec;
  report.machine = machine_.id();
  report.start = r.start;
  report.finish = sim_.now();
  report.data_local = r.data_local;
  report.locality = r.locality;
  if (r.fetch_end >= 0.0) {
    report.transfer_seconds = r.fetch_end - r.start;
  } else if (r.fetching) {
    report.transfer_seconds = sim_.now() - r.start;  // killed mid-transfer
  }
  report.samples = std::move(r.samples);
  return report;
}

void TaskTracker::release_slot(TaskKind kind) {
  if (kind == TaskKind::kMap) {
    --running_maps_;
  } else {
    --running_reduces_;
  }
}

// Audit: when the scheduled compute event fires, the nominal work
// integrated across every re-rate must equal the work the event was
// scheduled for — the service-time re-estimation consistency invariant.
void TaskTracker::check_work_integral(const Running& r) {
  audit::InvariantAuditor* auditor = job_tracker_.auditor();
  if (!auditor || r.compute_start < 0.0) return;
  const double w = work_now(r);
  const double tol = 1e-6 * std::max(r.event_work, 1.0);
  if (std::abs(w - r.event_work) > tol) {
    auditor->report_violation(
        "work-integral", audit::Severity::kError,
        "attempt finished with integrated work " + std::to_string(w) +
            " against scheduled " + std::to_string(r.event_work) +
            " on machine " + std::to_string(machine_.id()));
  }
}

void TaskTracker::finish_task(std::uint64_t attempt_id) {
  auto it = running_.find(attempt_id);
  EANT_ASSERT(it != running_.end(), "completion for unknown attempt");
  Running& r = it->second;
  check_work_integral(r);
  close_sample_window(r);
  machine_.adjust_demand(-r.current_demand);
  TaskReport report = make_report(r);

  release_slot(r.spec.kind);
  if (r.spec.kind == TaskKind::kMap) {
    ++completed_maps_;
  } else {
    ++completed_reduces_;
  }
  running_.erase(it);

  // A report the master will fence (down, or this tracker not yet
  // re-registered) gets its lifecycle audit event at orphan resolution
  // instead — exactly one terminal event per launch either way.
  if (job_tracker_.accepts_reports(machine_.id())) {
    audit_transition(job_tracker_, report.spec, machine_.id(),
                     audit::TaskEvent::kFinish);
  }
  job_tracker_.handle_completion(std::move(report));
}

void TaskTracker::fail_task(std::uint64_t attempt_id) {
  auto it = running_.find(attempt_id);
  EANT_ASSERT(it != running_.end(), "failure for unknown attempt");
  Running& r = it->second;
  check_work_integral(r);
  close_sample_window(r);
  machine_.adjust_demand(-r.current_demand);
  TaskReport report = make_report(r);

  release_slot(r.spec.kind);
  running_.erase(it);

  // Same fencing rule as finish_task: a buffered failure audits when the
  // recovered master resolves the orphan.
  if (job_tracker_.accepts_reports(machine_.id())) {
    audit_transition(job_tracker_, report.spec, machine_.id(),
                     audit::TaskEvent::kFail);
  }
  job_tracker_.handle_task_failure(std::move(report));
}

std::uint64_t TaskTracker::find_attempt(JobId job, TaskKind kind,
                                        TaskIndex index) const {
  for (const auto& [id, r] : running_) {
    if (r.spec.job == job && r.spec.kind == kind && r.spec.index == index) {
      return id;
    }
  }
  return 0;
}

bool TaskTracker::is_running(JobId job, TaskKind kind, TaskIndex index) const {
  return find_attempt(job, kind, index) != 0;
}

std::vector<TaskTracker::AttemptInfo> TaskTracker::running_attempts() const {
  std::vector<AttemptInfo> out;
  out.reserve(running_.size());
  for (const auto& [id, r] : running_) {
    out.push_back(AttemptInfo{r.spec, r.start});
  }
  return out;
}

bool TaskTracker::cancel_task(JobId job, TaskKind kind, TaskIndex index) {
  const std::uint64_t attempt = find_attempt(job, kind, index);
  if (attempt == 0) return false;
  auto it = running_.find(attempt);
  Running& r = it->second;
  abort_transfer_if_fetching(r);
  sim_.cancel(r.completion_event);
  machine_.adjust_demand(-r.current_demand);
  const TaskSpec spec = r.spec;
  release_slot(kind);
  running_.erase(it);
  audit_transition(job_tracker_, spec, machine_.id(), audit::TaskEvent::kKill);
  return true;
}

std::optional<TaskReport> TaskTracker::preempt_task(JobId job, TaskKind kind,
                                                    TaskIndex index) {
  const std::uint64_t attempt = find_attempt(job, kind, index);
  if (attempt == 0) return std::nullopt;
  auto it = running_.find(attempt);
  Running& r = it->second;
  abort_transfer_if_fetching(r);
  sim_.cancel(r.completion_event);
  close_sample_window(r);
  machine_.adjust_demand(-r.current_demand);
  TaskReport report = make_report(r);
  release_slot(kind);
  audit_transition(job_tracker_, r.spec, machine_.id(),
                   audit::TaskEvent::kKill);
  running_.erase(it);
  return report;
}

std::vector<TaskReport> TaskTracker::cancel_job(JobId job) {
  std::vector<TaskReport> killed;
  for (auto it = running_.begin(); it != running_.end();) {
    Running& r = it->second;
    if (r.spec.job != job) {
      ++it;
      continue;
    }
    abort_transfer_if_fetching(r);
    sim_.cancel(r.completion_event);
    close_sample_window(r);
    machine_.adjust_demand(-r.current_demand);
    killed.push_back(make_report(r));
    release_slot(r.spec.kind);
    audit_transition(job_tracker_, r.spec, machine_.id(),
                     audit::TaskEvent::kKill);
    it = running_.erase(it);
  }
  return killed;
}

void TaskTracker::crash() {
  EANT_CHECK(alive_, "TaskTracker is already down");
  alive_ = false;
  sim_.cancel(heartbeat_event_);

  // Every running attempt dies with the machine.  Close the current sample
  // window first so the partial work is measurable, then release the demand
  // so the machine can power down.
  std::vector<TaskReport> killed;
  killed.reserve(running_.size());
  for (auto& [id, r] : running_) {
    abort_transfer_if_fetching(r);
    sim_.cancel(r.completion_event);
    close_sample_window(r);
    machine_.adjust_demand(-r.current_demand);
    killed.push_back(make_report(r));
    audit_transition(job_tracker_, r.spec, machine_.id(),
                     audit::TaskEvent::kKill);
  }
  running_.clear();
  running_maps_ = 0;
  running_reduces_ = 0;
  machine_.set_up(false);

  // Accounting + deferred-requeue bookkeeping only: the JobTracker's
  // *protocol* reaction waits for heartbeat expiry (or the rejoin).
  job_tracker_.record_crash_casualties(machine_.id(), std::move(killed));
}

void TaskTracker::restart() {
  EANT_CHECK(!alive_, "TaskTracker is already up");
  alive_ = true;
  machine_.set_up(true);
  start_heartbeat(heartbeat_);
}

}  // namespace eant::mr
