#include "mapreduce/task_tracker.h"

#include <algorithm>
#include <utility>

#include "audit/auditor.h"
#include "common/error.h"
#include "mapreduce/job_tracker.h"

namespace eant::mr {
namespace {

// Feeds one attempt-lifecycle event to the audit layer (if attached).
void audit_transition(JobTracker& jt, const TaskSpec& spec,
                      cluster::MachineId machine, audit::TaskEvent event) {
  if (audit::InvariantAuditor* auditor = jt.auditor()) {
    auditor->on_task_transition(spec.job, spec.kind == TaskKind::kMap,
                                spec.index, event, machine);
  }
}

}  // namespace

TaskTracker::TaskTracker(sim::Simulator& sim, cluster::Machine& machine,
                         JobTracker& job_tracker, NoiseModel& noise,
                         Seconds heartbeat_interval, int map_slots,
                         int reduce_slots, Seconds heartbeat_phase)
    : sim_(sim),
      machine_(machine),
      job_tracker_(job_tracker),
      noise_(noise),
      heartbeat_(heartbeat_interval),
      map_slots_(map_slots),
      reduce_slots_(reduce_slots) {
  EANT_CHECK(heartbeat_interval > 0.0, "heartbeat interval must be positive");
  EANT_CHECK(heartbeat_phase >= 0.0 && heartbeat_phase < heartbeat_interval,
             "heartbeat phase must be within one interval");
  EANT_CHECK(map_slots >= 0 && reduce_slots >= 0,
             "slot counts must be non-negative");
  start_heartbeat(heartbeat_phase > 0.0 ? heartbeat_phase : heartbeat_);
}

TaskTracker::~TaskTracker() { sim_.cancel(heartbeat_event_); }

void TaskTracker::start_heartbeat(Seconds first_delay) {
  heartbeat_event_ = sim_.schedule_periodic(
      heartbeat_, [this] { return heartbeat(); }, first_delay);
}

int TaskTracker::running(TaskKind kind) const {
  return kind == TaskKind::kMap ? running_maps_ : running_reduces_;
}

int TaskTracker::free_slots(TaskKind kind) const {
  if (!alive_) return 0;
  return (kind == TaskKind::kMap ? map_slots_ : reduce_slots_) - running(kind);
}

std::size_t TaskTracker::completed(TaskKind kind) const {
  return kind == TaskKind::kMap ? completed_maps_ : completed_reduces_;
}

TaskTracker::Running& TaskTracker::occupy_slot(const TaskSpec& spec,
                                               std::uint64_t attempt) {
  EANT_CHECK(alive_, "a crashed TaskTracker cannot start tasks");
  EANT_CHECK(free_slots(spec.kind) > 0, "no free slot of the requested kind");

  Running r;
  r.spec = spec;
  r.start = sim_.now();
  r.current_demand = spec.cpu_demand * noise_.demand_multiplier();
  r.last_sample = r.start;
  machine_.adjust_demand(r.current_demand);
  auto [it, inserted] = running_.emplace(attempt, std::move(r));
  EANT_ASSERT(inserted, "attempt id reused");

  if (spec.kind == TaskKind::kMap) {
    ++running_maps_;
  } else {
    ++running_reduces_;
  }
  audit_transition(job_tracker_, spec, machine_.id(), audit::TaskEvent::kLaunch);
  return it->second;
}

void TaskTracker::start_task(const TaskSpec& spec, Seconds duration,
                             bool data_local, Seconds fail_after) {
  EANT_CHECK(duration > 0.0, "task duration must be positive");
  const std::uint64_t attempt = next_attempt_id_++;
  Running& r = occupy_slot(spec, attempt);
  r.data_local = data_local;
  r.locality = data_local ? Locality::kNodeLocal : Locality::kOffRack;
  if (fail_after > 0.0 && fail_after < duration) {
    r.completion_event =
        sim_.schedule_after(fail_after, [this, attempt] { fail_task(attempt); });
  } else {
    r.completion_event =
        sim_.schedule_after(duration, [this, attempt] { finish_task(attempt); });
  }
}

void TaskTracker::start_fetching_task(const TaskSpec& spec, Locality locality,
                                      std::function<void()> abort_transfer) {
  const std::uint64_t attempt = next_attempt_id_++;
  Running& r = occupy_slot(spec, attempt);
  r.data_local = locality == Locality::kNodeLocal;
  r.locality = locality;
  r.fetching = true;
  r.abort_transfer = std::move(abort_transfer);
}

void TaskTracker::begin_compute(JobId job, TaskKind kind, TaskIndex index,
                                Seconds duration, Seconds fail_after) {
  EANT_CHECK(duration > 0.0, "task duration must be positive");
  const std::uint64_t attempt = find_attempt(job, kind, index);
  EANT_CHECK(attempt != 0, "begin_compute for an attempt not running here");
  Running& r = running_.at(attempt);
  EANT_CHECK(r.fetching, "attempt is not in its transfer phase");
  r.fetching = false;
  r.fetch_end = sim_.now();
  r.abort_transfer = nullptr;
  if (fail_after > 0.0 && fail_after < duration) {
    r.completion_event =
        sim_.schedule_after(fail_after, [this, attempt] { fail_task(attempt); });
  } else {
    r.completion_event =
        sim_.schedule_after(duration, [this, attempt] { finish_task(attempt); });
  }
}

void TaskTracker::abort_transfer_if_fetching(Running& r) {
  if (!r.abort_transfer) return;
  // Move first: the callback must run exactly once even if the teardown it
  // triggers loops back into this tracker.
  auto abort = std::move(r.abort_transfer);
  r.abort_transfer = nullptr;
  abort();
}

void TaskTracker::close_sample_window(Running& r) {
  const Seconds dt = sim_.now() - r.last_sample;
  if (dt > 0.0) {
    // The task's effective share of the machine: when aggregate demand
    // oversubscribes the cores, the OS time-slices and each process gets a
    // proportional share, so per-task utilisations sum to at most 1 — the
    // same clamping the machine's own power model applies.
    const double total =
        std::max(machine_.demand_cores(),
                 static_cast<double>(machine_.type().cores));
    const Utilization true_util = total <= 0.0 ? 0.0 : r.current_demand / total;
    r.samples.push_back(UtilSample{dt, noise_.measured(true_util)});
    r.last_sample = sim_.now();
  }
}

bool TaskTracker::heartbeat() {
  // First close the elapsed utilisation window for every running task (the
  // effective-share computation must see the old aggregate demand), then
  // redraw each task's true demand for the next window (transient noise).
  for (auto& [id, r] : running_) {
    close_sample_window(r);
  }
  for (auto& [id, r] : running_) {
    const double next_demand = r.spec.cpu_demand * noise_.demand_multiplier();
    machine_.adjust_demand(next_demand - r.current_demand);
    r.current_demand = next_demand;
  }
  // Offer free slots to the JobTracker (the scheduler fills them).
  job_tracker_.handle_heartbeat(*this);
  return true;
}

TaskReport TaskTracker::make_report(Running& r) {
  TaskReport report;
  report.spec = r.spec;
  report.machine = machine_.id();
  report.start = r.start;
  report.finish = sim_.now();
  report.data_local = r.data_local;
  report.locality = r.locality;
  if (r.fetch_end >= 0.0) {
    report.transfer_seconds = r.fetch_end - r.start;
  } else if (r.fetching) {
    report.transfer_seconds = sim_.now() - r.start;  // killed mid-transfer
  }
  report.samples = std::move(r.samples);
  return report;
}

void TaskTracker::release_slot(TaskKind kind) {
  if (kind == TaskKind::kMap) {
    --running_maps_;
  } else {
    --running_reduces_;
  }
}

void TaskTracker::finish_task(std::uint64_t attempt_id) {
  auto it = running_.find(attempt_id);
  EANT_ASSERT(it != running_.end(), "completion for unknown attempt");
  Running& r = it->second;
  close_sample_window(r);
  machine_.adjust_demand(-r.current_demand);
  TaskReport report = make_report(r);

  release_slot(r.spec.kind);
  if (r.spec.kind == TaskKind::kMap) {
    ++completed_maps_;
  } else {
    ++completed_reduces_;
  }
  running_.erase(it);

  audit_transition(job_tracker_, report.spec, machine_.id(),
                   audit::TaskEvent::kFinish);
  job_tracker_.handle_completion(std::move(report));
}

void TaskTracker::fail_task(std::uint64_t attempt_id) {
  auto it = running_.find(attempt_id);
  EANT_ASSERT(it != running_.end(), "failure for unknown attempt");
  Running& r = it->second;
  close_sample_window(r);
  machine_.adjust_demand(-r.current_demand);
  TaskReport report = make_report(r);

  release_slot(r.spec.kind);
  running_.erase(it);

  audit_transition(job_tracker_, report.spec, machine_.id(),
                   audit::TaskEvent::kFail);
  job_tracker_.handle_task_failure(std::move(report));
}

std::uint64_t TaskTracker::find_attempt(JobId job, TaskKind kind,
                                        TaskIndex index) const {
  for (const auto& [id, r] : running_) {
    if (r.spec.job == job && r.spec.kind == kind && r.spec.index == index) {
      return id;
    }
  }
  return 0;
}

bool TaskTracker::is_running(JobId job, TaskKind kind, TaskIndex index) const {
  return find_attempt(job, kind, index) != 0;
}

bool TaskTracker::cancel_task(JobId job, TaskKind kind, TaskIndex index) {
  const std::uint64_t attempt = find_attempt(job, kind, index);
  if (attempt == 0) return false;
  auto it = running_.find(attempt);
  Running& r = it->second;
  abort_transfer_if_fetching(r);
  sim_.cancel(r.completion_event);
  machine_.adjust_demand(-r.current_demand);
  const TaskSpec spec = r.spec;
  release_slot(kind);
  running_.erase(it);
  audit_transition(job_tracker_, spec, machine_.id(), audit::TaskEvent::kKill);
  return true;
}

std::vector<TaskReport> TaskTracker::cancel_job(JobId job) {
  std::vector<TaskReport> killed;
  for (auto it = running_.begin(); it != running_.end();) {
    Running& r = it->second;
    if (r.spec.job != job) {
      ++it;
      continue;
    }
    abort_transfer_if_fetching(r);
    sim_.cancel(r.completion_event);
    close_sample_window(r);
    machine_.adjust_demand(-r.current_demand);
    killed.push_back(make_report(r));
    release_slot(r.spec.kind);
    audit_transition(job_tracker_, r.spec, machine_.id(),
                     audit::TaskEvent::kKill);
    it = running_.erase(it);
  }
  return killed;
}

void TaskTracker::crash() {
  EANT_CHECK(alive_, "TaskTracker is already down");
  alive_ = false;
  sim_.cancel(heartbeat_event_);

  // Every running attempt dies with the machine.  Close the current sample
  // window first so the partial work is measurable, then release the demand
  // so the machine can power down.
  std::vector<TaskReport> killed;
  killed.reserve(running_.size());
  for (auto& [id, r] : running_) {
    abort_transfer_if_fetching(r);
    sim_.cancel(r.completion_event);
    close_sample_window(r);
    machine_.adjust_demand(-r.current_demand);
    killed.push_back(make_report(r));
    audit_transition(job_tracker_, r.spec, machine_.id(),
                     audit::TaskEvent::kKill);
  }
  running_.clear();
  running_maps_ = 0;
  running_reduces_ = 0;
  machine_.set_up(false);

  // Accounting + deferred-requeue bookkeeping only: the JobTracker's
  // *protocol* reaction waits for heartbeat expiry (or the rejoin).
  job_tracker_.record_crash_casualties(machine_.id(), std::move(killed));
}

void TaskTracker::restart() {
  EANT_CHECK(!alive_, "TaskTracker is already up");
  alive_ = true;
  machine_.set_up(true);
  start_heartbeat(heartbeat_);
}

}  // namespace eant::mr
