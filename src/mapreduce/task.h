// Task-level types shared across the MapReduce engine, the schedulers and
// E-Ant's task analyzer: specs, utilisation samples and completion reports
// (the simulator's equivalent of Hadoop's TaskReport, which the paper extends
// with per-task energy accounting tagged by AttemptTaskID — Sec. V-A).

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "cluster/machine.h"
#include "common/locality.h"
#include "common/units.h"
#include "hdfs/namenode.h"

namespace eant::mr {

/// Job identifier assigned by the JobTracker at submission.
using JobId = std::size_t;

/// Index of a task within its job (maps and reduces have separate spaces).
using TaskIndex = std::size_t;

/// Map or reduce.
enum class TaskKind { kMap, kReduce };

/// "map" / "reduce".
std::string kind_name(TaskKind kind);

/// Immutable description of one task's work.
struct TaskSpec {
  JobId job = 0;
  TaskIndex index = 0;
  TaskKind kind = TaskKind::kMap;
  Megabytes input_mb = 0.0;       ///< split size (map) or shuffle input (reduce)
  hdfs::BlockId block = 0;        ///< input block; meaningful for maps only
  double cpu_ref_seconds = 0.0;   ///< CPU work in reference-core seconds
  Megabytes io_mb = 0.0;          ///< local disk traffic
  Seconds shuffle_seconds = 0.0;  ///< network shuffle time (reduces only)
  double cpu_demand = 1.0;        ///< cores the task occupies while running
};

/// One utilisation window recorded by a TaskTracker: the task held
/// (approximately) `util` of the whole machine for `duration` seconds.
/// These are the u(T) and delta-t inputs of the paper's Eq. 2.
struct UtilSample {
  Seconds duration = 0.0;
  Utilization util = 0.0;
};

/// Completion report delivered from TaskTracker to JobTracker via the
/// heartbeat connection (and from there to the scheduler and E-Ant).
struct TaskReport {
  TaskSpec spec;
  cluster::MachineId machine = 0;
  Seconds start = 0.0;
  Seconds finish = 0.0;
  bool data_local = false;        ///< map read its split from a local replica
  /// Three-level refinement of data_local (rack-local reads cross only the
  /// rack switch; off-rack reads also cross the core).
  Locality locality = Locality::kOffRack;
  /// Time the attempt spent in its network-transfer phase (shuffle fetch or
  /// remote split read).  Negative = not measured (legacy scalar path);
  /// phase accounting then falls back to spec.shuffle_seconds.
  Seconds transfer_seconds = -1.0;
  std::vector<UtilSample> samples;

  Seconds duration() const { return finish - start; }
};

}  // namespace eant::mr
