#include "mapreduce/noise.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace eant::mr {

NoiseConfig NoiseConfig::typical() {
  NoiseConfig c;
  c.demand_jitter_sigma = 0.12;
  c.measurement_sigma = 0.06;
  c.straggler_prob = 0.04;
  c.straggler_factor_min = 1.5;
  c.straggler_factor_max = 3.0;
  c.duration_jitter_sigma = 0.10;
  return c;
}

NoiseModel::NoiseModel(NoiseConfig config, Rng rng)
    : config_(config), rng_(rng) {
  EANT_CHECK(config.demand_jitter_sigma >= 0.0 &&
                 config.measurement_sigma >= 0.0 &&
                 config.duration_jitter_sigma >= 0.0,
             "noise sigmas must be non-negative");
  EANT_CHECK(config.straggler_prob >= 0.0 && config.straggler_prob <= 1.0,
             "straggler probability out of range");
  EANT_CHECK(config.straggler_factor_min >= 1.0 &&
                 config.straggler_factor_max >= config.straggler_factor_min,
             "straggler factor range must be ordered and >= 1");
}

namespace {

// Lognormal with mean exactly 1: mu = -sigma^2 / 2.
double mean_one_lognormal(Rng& rng, double sigma) {
  if (sigma <= 0.0) return 1.0;  // sigmas are validated non-negative
  return rng.lognormal(-0.5 * sigma * sigma, sigma);
}

}  // namespace

double NoiseModel::demand_multiplier() {
  return mean_one_lognormal(rng_, config_.demand_jitter_sigma);
}

double NoiseModel::measured(double true_util) {
  EANT_CHECK(true_util >= 0.0, "utilisation must be non-negative");
  if (config_.measurement_sigma <= 0.0) return true_util;
  const double noisy =
      true_util * (1.0 + rng_.normal(0.0, config_.measurement_sigma));
  return std::max(0.0, noisy);
}

double NoiseModel::straggler_multiplier() {
  if (config_.straggler_prob <= 0.0) return 1.0;
  if (!rng_.bernoulli(config_.straggler_prob)) return 1.0;
  return rng_.uniform(config_.straggler_factor_min,
                      config_.straggler_factor_max);
}

double NoiseModel::duration_multiplier() {
  return mean_one_lognormal(rng_, config_.duration_jitter_sigma);
}

}  // namespace eant::mr
