// Cluster overload states, shared between the admission subsystem (which
// classifies them) and the schedulers (which react to them via
// Scheduler::on_overload_state).  Kept in its own tiny header so scheduler.h
// can name the enum without pulling in the admission machinery.

#pragma once

namespace eant::mr {

/// How hard the cluster is being pushed, as classified by the overload
/// detector (admission.h).  Ordered: higher is worse, and the brownout
/// reactions are cumulative — everything shed at Saturated stays shed at
/// Critical.
enum class OverloadState {
  kNormal = 0,     ///< headroom available; all optional work enabled
  kElevated = 1,   ///< busy but keeping up; admission watches, nothing shed
  kSaturated = 2,  ///< backlog growing; shed optional work (speculation,
                   ///< locality waits, decline rounds), cap re-replication
  kCritical = 3,   ///< deadlines at risk; shed all non-deadlined admissions,
                   ///< stop background re-replication entirely
};

/// "normal" / "elevated" / "saturated" / "critical".
const char* overload_state_name(OverloadState s);

}  // namespace eant::mr
