#include "mapreduce/job.h"

#include <algorithm>

#include "common/error.h"

namespace eant::mr {

JobState::JobState(JobId id, workload::JobSpec spec, std::size_t num_machines)
    : id_(id), spec_(std::move(spec)), num_machines_(num_machines) {
  EANT_CHECK(num_machines >= 1, "job needs a cluster to run on");
  EANT_CHECK(spec_.input_mb > 0.0, "job input must be positive");
  EANT_CHECK(spec_.num_reduces >= 1, "job needs at least one reduce");
  map_state_.started_per_machine.assign(num_machines_, 0);
  map_state_.completed_per_machine.assign(num_machines_, 0);
  reduce_state_.started_per_machine.assign(num_machines_, 0);
  reduce_state_.completed_per_machine.assign(num_machines_, 0);
  local_maps_.resize(num_machines_);
}

void JobState::init_maps(const std::vector<hdfs::BlockId>& blocks,
                         const hdfs::NameNode& namenode) {
  EANT_CHECK(maps_.empty(), "maps already initialised");
  EANT_CHECK(!blocks.empty(), "job input has no blocks");
  const auto& p = profile();
  maps_.reserve(blocks.size());
  for (TaskIndex i = 0; i < blocks.size(); ++i) {
    const Megabytes split = namenode.block_size(blocks[i]);
    TaskSpec t;
    t.job = id_;
    t.index = i;
    t.kind = TaskKind::kMap;
    t.input_mb = split;
    t.block = blocks[i];
    t.cpu_ref_seconds = p.map_cpu_s_per_mb * split;
    t.io_mb = p.map_io_mb_per_mb * split;
    t.cpu_demand = p.map_cpu_demand;
    maps_.push_back(t);

    map_state_.pending_queue.push_back(i);
    for (cluster::MachineId m : namenode.locations(blocks[i])) {
      EANT_ASSERT(m < num_machines_, "block replica on unknown machine");
      local_maps_[m].push_back(i);
    }
  }

  // Rack-level index, active only under a multi-rack NameNode; duplicate
  // entries (two replicas in one rack) are harmless under lazy cleanup.
  if (namenode.num_racks() > 1) {
    machine_rack_.resize(num_machines_);
    for (cluster::MachineId m = 0; m < num_machines_; ++m)
      machine_rack_[m] = namenode.rack_of(m);
    rack_maps_.resize(namenode.num_racks());
    for (TaskIndex i = 0; i < blocks.size(); ++i)
      for (cluster::MachineId m : namenode.locations(blocks[i]))
        rack_maps_[namenode.rack_of(m)].push_back(i);
  }
  map_state_.status.assign(maps_.size(), TaskStatus::kPending);
  map_state_.speculative.assign(maps_.size(), false);
  map_state_.start_time.assign(maps_.size(), 0.0);
  map_state_.start_machine.assign(maps_.size(), 0);
  map_state_.failed_attempts.assign(maps_.size(), 0);
}

void JobState::init_reduces(std::vector<TaskSpec> reduces) {
  EANT_CHECK(!reduces_built_, "reduces already initialised");
  EANT_CHECK(!reduces.empty(), "job needs at least one reduce");
  reduces_ = std::move(reduces);
  reduce_state_.status.assign(reduces_.size(), TaskStatus::kPending);
  reduce_state_.speculative.assign(reduces_.size(), false);
  reduce_state_.start_time.assign(reduces_.size(), 0.0);
  reduce_state_.start_machine.assign(reduces_.size(), 0);
  reduce_state_.failed_attempts.assign(reduces_.size(), 0);
  for (TaskIndex i = 0; i < reduces_.size(); ++i) {
    reduce_state_.pending_queue.push_back(i);
  }
  reduces_built_ = true;
}

JobState::KindState& JobState::state(TaskKind kind) {
  return kind == TaskKind::kMap ? map_state_ : reduce_state_;
}

const JobState::KindState& JobState::state(TaskKind kind) const {
  return kind == TaskKind::kMap ? map_state_ : reduce_state_;
}

std::size_t JobState::pending(TaskKind kind) const {
  const auto& ks = state(kind);
  const std::size_t total =
      kind == TaskKind::kMap ? maps_.size() : reduces_.size();
  return total - ks.running - ks.done;
}

std::size_t JobState::running(TaskKind kind) const { return state(kind).running; }

std::size_t JobState::done(TaskKind kind) const { return state(kind).done; }

bool JobState::has_local_pending_map(cluster::MachineId machine) const {
  EANT_CHECK(machine < num_machines_, "machine id out of range");
  for (TaskIndex i : local_maps_[machine]) {
    if (map_state_.status[i] == TaskStatus::kPending) return true;
  }
  return false;
}

bool JobState::has_rack_local_pending_map(cluster::MachineId machine) const {
  EANT_CHECK(machine < num_machines_, "machine id out of range");
  if (rack_maps_.empty()) return false;
  for (TaskIndex i : rack_maps_[machine_rack_[machine]]) {
    if (map_state_.status[i] == TaskStatus::kPending) return true;
  }
  return false;
}

int JobState::occupied_slots() const {
  return static_cast<int>(map_state_.running + reduce_state_.running);
}

std::optional<TaskIndex> JobState::pop_pending(KindState& ks) {
  while (!ks.pending_queue.empty()) {
    const TaskIndex i = ks.pending_queue.front();
    ks.pending_queue.pop_front();
    if (ks.status[i] == TaskStatus::kPending) return i;
  }
  return std::nullopt;
}

std::optional<TaskIndex> JobState::claim_map(cluster::MachineId machine,
                                             Locality& level_out) {
  EANT_CHECK(machine < num_machines_, "machine id out of range");
  // Node-local split first (lazy cleanup of stale queue entries).
  auto& locals = local_maps_[machine];
  while (!locals.empty()) {
    const TaskIndex i = locals.front();
    locals.pop_front();
    if (map_state_.status[i] == TaskStatus::kPending) {
      map_state_.status[i] = TaskStatus::kRunning;
      ++map_state_.running;
      level_out = Locality::kNodeLocal;
      return i;
    }
  }
  // Then a split with a replica in this machine's rack.  (Exhausting the
  // node queue above proves no pending split is node-local here, so a hit
  // in the rack queue is genuinely rack-local.)
  if (!rack_maps_.empty()) {
    auto& rack = rack_maps_[machine_rack_[machine]];
    while (!rack.empty()) {
      const TaskIndex i = rack.front();
      rack.pop_front();
      if (map_state_.status[i] == TaskStatus::kPending) {
        map_state_.status[i] = TaskStatus::kRunning;
        ++map_state_.running;
        level_out = Locality::kRackLocal;
        return i;
      }
    }
  }
  // Otherwise any pending split (remote read; off-rack when racks exist).
  if (auto i = pop_pending(map_state_)) {
    map_state_.status[*i] = TaskStatus::kRunning;
    ++map_state_.running;
    level_out = Locality::kOffRack;
    return i;
  }
  return std::nullopt;
}

std::optional<TaskIndex> JobState::claim_map(cluster::MachineId machine,
                                             bool& local_out) {
  Locality level = Locality::kOffRack;
  const auto index = claim_map(machine, level);
  local_out = level == Locality::kNodeLocal;
  return index;
}

std::optional<TaskIndex> JobState::claim_reduce() {
  if (!reduces_built_) return std::nullopt;
  if (auto i = pop_pending(reduce_state_)) {
    reduce_state_.status[*i] = TaskStatus::kRunning;
    ++reduce_state_.running;
    return i;
  }
  return std::nullopt;
}

void JobState::unclaim(TaskKind kind, TaskIndex index,
                       cluster::MachineId /*machine*/) {
  auto& ks = state(kind);
  EANT_CHECK(index < ks.status.size(), "task index out of range");
  EANT_CHECK(ks.status[index] == TaskStatus::kRunning,
             "only a running task can be unclaimed");
  ks.status[index] = TaskStatus::kPending;
  EANT_ASSERT(ks.running > 0, "running-count underflow");
  --ks.running;
  ks.pending_queue.push_back(index);
}

void JobState::mark_started(TaskKind kind, TaskIndex index,
                            cluster::MachineId machine, Seconds now) {
  auto& ks = state(kind);
  EANT_CHECK(index < ks.status.size(), "task index out of range");
  EANT_CHECK(ks.status[index] == TaskStatus::kRunning,
             "task must be claimed before starting");
  EANT_CHECK(machine < num_machines_, "machine id out of range");
  ++ks.started_per_machine[machine];
  // Keep the first attempt's start time and machine when a speculative twin
  // launches.
  if (!ks.speculative[index]) {
    ks.start_time[index] = now;
    ks.start_machine[index] = machine;
  }
}

void JobState::mark_done(const TaskReport& report) {
  auto& ks = state(report.spec.kind);
  const TaskIndex index = report.spec.index;
  EANT_CHECK(index < ks.status.size(), "task index out of range");
  EANT_CHECK(ks.status[index] == TaskStatus::kRunning,
             "only a running task can complete");
  ks.status[index] = TaskStatus::kDone;
  EANT_ASSERT(ks.running > 0, "running-count underflow");
  --ks.running;
  ++ks.done;
  ++ks.completed_per_machine[report.machine];

  ks.completed_duration_sum += report.duration();

  if (report.spec.kind == TaskKind::kMap) {
    map_task_seconds_ += report.duration();
  } else {
    // Measured transfer time when the fabric produced one, the legacy
    // scalar estimate otherwise.
    const Seconds transfer = report.transfer_seconds >= 0.0
                                 ? report.transfer_seconds
                                 : report.spec.shuffle_seconds;
    shuffle_seconds_ += transfer;
    reduce_task_seconds_ += report.duration() - transfer;
  }
}

Seconds JobState::task_start_time(TaskKind kind, TaskIndex index) const {
  const auto& ks = state(kind);
  EANT_CHECK(index < ks.start_time.size(), "task index out of range");
  EANT_CHECK(ks.status[index] != TaskStatus::kPending,
             "pending tasks have no start time");
  return ks.start_time[index];
}

cluster::MachineId JobState::task_machine(TaskKind kind, TaskIndex index) const {
  const auto& ks = state(kind);
  EANT_CHECK(index < ks.start_machine.size(), "task index out of range");
  EANT_CHECK(ks.status[index] != TaskStatus::kPending,
             "pending tasks have no machine");
  return ks.start_machine[index];
}

Seconds JobState::mean_completed_duration(TaskKind kind) const {
  const auto& ks = state(kind);
  if (ks.done == 0) return 0.0;
  return ks.completed_duration_sum / static_cast<double>(ks.done);
}

void JobState::mark_speculative(TaskKind kind, TaskIndex index) {
  auto& ks = state(kind);
  EANT_CHECK(index < ks.status.size(), "task index out of range");
  EANT_CHECK(ks.status[index] == TaskStatus::kRunning,
             "only a running task can be speculated");
  ks.speculative[index] = true;
}

bool JobState::is_speculative(TaskKind kind, TaskIndex index) const {
  const auto& ks = state(kind);
  EANT_CHECK(index < ks.status.size(), "task index out of range");
  return ks.speculative[index];
}

void JobState::clear_speculative(TaskKind kind, TaskIndex index) {
  auto& ks = state(kind);
  EANT_CHECK(index < ks.status.size(), "task index out of range");
  ks.speculative[index] = false;
}

int JobState::record_attempt_failure(TaskKind kind, TaskIndex index) {
  auto& ks = state(kind);
  EANT_CHECK(index < ks.failed_attempts.size(), "task index out of range");
  return ++ks.failed_attempts[index];
}

int JobState::failed_attempts(TaskKind kind, TaskIndex index) const {
  const auto& ks = state(kind);
  EANT_CHECK(index < ks.failed_attempts.size(), "task index out of range");
  return ks.failed_attempts[index];
}

void JobState::revert_done_map(TaskIndex index, Seconds duration,
                               const std::vector<cluster::MachineId>& replicas,
                               cluster::MachineId machine) {
  auto& ks = map_state_;
  EANT_CHECK(index < ks.status.size(), "task index out of range");
  EANT_CHECK(ks.status[index] == TaskStatus::kDone,
             "only a completed map can be reverted");
  EANT_CHECK(machine < num_machines_, "machine id out of range");
  ks.status[index] = TaskStatus::kPending;
  EANT_ASSERT(ks.done > 0, "done-count underflow");
  --ks.done;
  EANT_ASSERT(ks.completed_per_machine[machine] > 0,
              "completion histogram underflow");
  --ks.completed_per_machine[machine];
  ks.completed_duration_sum -= duration;
  ks.speculative[index] = false;
  ks.start_time[index] = 0.0;
  ks.pending_queue.push_back(index);
  for (cluster::MachineId m : replicas) {
    EANT_ASSERT(m < num_machines_, "block replica on unknown machine");
    local_maps_[m].push_back(index);
    if (!rack_maps_.empty()) rack_maps_[machine_rack_[m]].push_back(index);
  }
}

const TaskSpec& JobState::task(TaskKind kind, TaskIndex index) const {
  const auto& v = kind == TaskKind::kMap ? maps_ : reduces_;
  EANT_CHECK(index < v.size(), "task index out of range");
  return v[index];
}

TaskStatus JobState::status(TaskKind kind, TaskIndex index) const {
  const auto& ks = state(kind);
  EANT_CHECK(index < ks.status.size(), "task index out of range");
  return ks.status[index];
}

Megabytes JobState::expected_map_output_mb() const {
  Megabytes total = 0.0;
  const double ratio = profile().map_output_ratio;
  for (const auto& m : maps_) total += m.input_mb * ratio;
  return total;
}

const std::vector<std::size_t>& JobState::started_per_machine(
    TaskKind kind) const {
  return state(kind).started_per_machine;
}

const std::vector<std::size_t>& JobState::completed_per_machine(
    TaskKind kind) const {
  return state(kind).completed_per_machine;
}

}  // namespace eant::mr
