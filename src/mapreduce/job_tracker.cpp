#include "mapreduce/job_tracker.h"

#include <algorithm>
#include <atomic>
#include <chrono>  // lint-ok: wall-clock (scheduler-cost attribution only)
#include <cmath>
#include <cstdio>

#include "audit/auditor.h"
#include "common/error.h"

namespace eant::mr {

JobTracker::JobTracker(sim::Simulator& sim, cluster::Cluster& cluster,
                       hdfs::NameNode& namenode, Scheduler& scheduler,
                       NoiseModel& noise, JobTrackerConfig config)
    : sim_(sim),
      cluster_(cluster),
      namenode_(namenode),
      scheduler_(scheduler),
      noise_(noise),
      config_(std::move(config)) {
  EANT_CHECK(cluster_.size() >= 1, "cluster must have machines");
  EANT_CHECK(namenode_.num_datanodes() == cluster_.size(),
             "NameNode and Cluster must agree on machine count");
  EANT_CHECK(config_.reduce_slowstart >= 0.0 && config_.reduce_slowstart <= 1.0,
             "reduce_slowstart must be a fraction");
  EANT_CHECK(config_.shuffle_mbps > 0.0 && config_.remote_read_mbps > 0.0,
             "bandwidths must be positive");
  EANT_CHECK(config_.tracker_expiry_window >= 0.0,
             "tracker expiry window must be non-negative");
  EANT_CHECK(config_.max_attempts >= 1, "tasks need at least one attempt");
  EANT_CHECK(config_.blacklist_threshold >= 0 &&
                 config_.blacklist_duration >= 0.0,
             "blacklist parameters must be non-negative");
  EANT_CHECK(config_.blacklist_decay_window >= 0.0,
             "blacklist decay window must be non-negative");
  EANT_CHECK(config_.health_ewma_alpha > 0.0 && config_.health_ewma_alpha <= 1.0,
             "health EWMA weight must lie in (0, 1]");
  EANT_CHECK(config_.quarantine_threshold >= 0.0 &&
                 config_.quarantine_threshold < 1.0,
             "quarantine threshold must lie in [0, 1)");
  EANT_CHECK(config_.health_recovery_threshold >=
                 config_.quarantine_threshold,
             "recovery threshold must not sit below the quarantine threshold");
  EANT_CHECK(config_.health_min_samples >= 1,
             "health detection needs at least one sample");
  EANT_CHECK(config_.quarantine_decay_window >= 0.0,
             "quarantine decay window must be non-negative");
  EANT_CHECK(config_.max_speculative_per_node >= 0,
             "speculative-per-node cap must be non-negative");
  EANT_CHECK(config_.fetch_failure_threshold >= 0,
             "fetch failure threshold must be non-negative");
  EANT_CHECK(config_.fetch_retry_backoff > 0.0 &&
                 config_.fetch_retry_backoff_max >= config_.fetch_retry_backoff,
             "fetch retry backoff must be positive and capped above the base");
  EANT_CHECK(config_.reduce_fetch_abort_limit >= 0,
             "reduce fetch abort limit must be non-negative");
  EANT_CHECK(config_.max_replication_streams >= 1 &&
                 config_.rereplication_mbps > 0.0,
             "re-replication parameters must be positive");
  EANT_CHECK(config_.checkpoint_interval >= 0.0 &&
                 config_.checkpoint_write_cost >= 0.0,
             "checkpoint parameters must be non-negative");
  EANT_CHECK(config_.reregistration_window >= 0.0,
             "re-registration window must be non-negative");
  EANT_CHECK(config_.scrub_period >= 0.0, "scrub period must be non-negative");
  EANT_CHECK(config_.scrub_mbps > 0.0, "scrub rate must be positive");
  const AdmissionConfig& adm = config_.admission;
  EANT_CHECK(adm.detector_interval > 0.0,
             "admission detector interval must be positive");
  EANT_CHECK(adm.ewma_alpha > 0.0 && adm.ewma_alpha <= 1.0,
             "admission EWMA weight must lie in (0, 1]");
  EANT_CHECK(adm.hysteresis > 0.0 && adm.hysteresis <= 1.0,
             "admission hysteresis must lie in (0, 1]");
  EANT_CHECK(adm.elevated_backlog <= adm.saturated_backlog &&
                 adm.saturated_backlog <= adm.critical_backlog,
             "admission backlog thresholds must be ordered");
  EANT_CHECK(adm.queue_bound_per_weight > 0.0,
             "admission queue bound must be positive");
  EANT_CHECK(adm.max_retries >= 0, "admission retry budget must be >= 0");
  EANT_CHECK(adm.retry_base > 0.0 && adm.retry_cap >= adm.retry_base,
             "admission retry backoff must be positive and capped above base");
  EANT_CHECK(adm.retry_jitter >= 0.0, "admission retry jitter must be >= 0");
  rerep_limit_ = config_.max_replication_streams;
  scheduler_.attach(*this);
}

JobTracker::~JobTracker() {
  sim_.cancel(expiry_event_);
  sim_.cancel(checkpoint_event_);
  sim_.cancel(detector_event_);
  sim_.cancel(scrub_event_);
}

void JobTracker::start_trackers() {
  EANT_CHECK(trackers_.empty(), "trackers already started");
  double total_capability = 0.0;
  for (cluster::MachineId id = 0; id < cluster_.size(); ++id) {
    const auto& type = cluster_.machine(id).type();
    // Golden-ratio phases spread the heartbeats of adjacent machine ids
    // across the interval (deterministically), so no machine type is
    // systematically offered free slots before another.
    const double frac =
        std::fmod(0.6180339887498949 * static_cast<double>(id + 1), 1.0);
    trackers_.push_back(std::make_unique<TaskTracker>(
        sim_, cluster_.machine(id), *this, noise_, config_.heartbeat_interval,
        type.map_slots, type.reduce_slots,
        frac * config_.heartbeat_interval));
    total_capability += type.cores * type.cpu_factor;
  }
  capability_share_.resize(cluster_.size());
  for (cluster::MachineId id = 0; id < cluster_.size(); ++id) {
    const auto& type = cluster_.machine(id).type();
    capability_share_[id] = type.cores * type.cpu_factor / total_capability;
  }
  tracker_states_.resize(cluster_.size());
  tracker_epoch_.assign(cluster_.size(), master_epoch_);
  reregistration_gate_.assign(cluster_.size(), 0.0);
  if (config_.tracker_expiry_window > 0.0 ||
      config_.blacklist_decay_window > 0.0 ||
      (config_.quarantine_threshold > 0.0 &&
       config_.quarantine_decay_window > 0.0)) {
    // The real JobTracker sweeps for expired trackers on a timer of its own;
    // one sweep per heartbeat interval bounds detection latency at
    // expiry_window + heartbeat_interval.  The same sweep drives the
    // blacklist fault-counter decay and quarantine healing.
    expiry_event_ = sim_.schedule_periodic(config_.heartbeat_interval, [this] {
      if (!master_up_) return true;  // a dead master detects nothing
      check_tracker_expiry();
      decay_blacklist_counters();
      decay_quarantine();
      return true;
    });
  }
  start_checkpoint_timer();
  if (config_.admission.enabled) {
    // Constructed here, not in the ctor, so the Run harness's set_auditor
    // call has already landed and admission records reach the digest.  The
    // detector runs on its own timer; while the master is down the tick is
    // skipped entirely (a dead master classifies nothing), mirroring the
    // expiry sweep above.  Nothing is scheduled when admission is disabled,
    // keeping default runs digest-identical.
    admission_ = std::make_unique<AdmissionControl>(config_.admission, auditor_);
    detector_event_ =
        sim_.schedule_periodic(config_.admission.detector_interval, [this] {
          if (!master_up_) return true;
          detector_tick();
          return true;
        });
  }
  if (config_.scrub_period > 0.0) {
    // Background replica scrubbing: both masters must be up — the scan reads
    // through datanodes (TaskTrackers) but confirms corruption against the
    // NameNode's block map.  Nothing is scheduled when scrubbing is off,
    // keeping default runs digest-identical.
    scrub_event_ = sim_.schedule_periodic(config_.scrub_period, [this] {
      if (!master_up_ || !namenode_up_) return true;
      scrub_tick();
      return true;
    });
  }
}

void JobTracker::start_checkpoint_timer() {
  if (config_.checkpoint_interval <= 0.0) return;
  checkpoint_event_ =
      sim_.schedule_periodic(config_.checkpoint_interval, [this] {
        if (!master_up_) return true;  // no edit-log writer while down
        const Seconds started = sim_.now();
        const std::uint64_t epoch = master_epoch_;
        // The write becomes durable only checkpoint_write_cost later: a
        // master crash in between falls back to the previous committed
        // checkpoint, so coverage never includes a torn write.
        sim_.schedule_after(
            config_.checkpoint_write_cost, [this, started, epoch] {
              if (!master_up_ || master_epoch_ != epoch) return;
              checkpoint_coverage_ = started;
              ++checkpoints_written_;
              if (auditor_) {
                auditor_->record(audit::Record::kCheckpoint,
                                 checkpoints_written_);
              }
            });
        return true;
      });
}

void JobTracker::attach_fabric(net::Fabric& fabric) {
  EANT_CHECK(fabric.topology().num_nodes() == cluster_.size(),
             "fabric topology and cluster must agree on machine count");
  fabric_ = &fabric;
}

TaskTracker& JobTracker::tracker(cluster::MachineId id) {
  EANT_CHECK(id < trackers_.size(), "tracker id out of range");
  return *trackers_[id];
}

JobId JobTracker::submit_now(workload::JobSpec spec) {
  EANT_CHECK(!trackers_.empty(), "start_trackers() must precede submission");
  EANT_CHECK(master_up_ && namenode_up_,
             "job submission requires a live JobTracker and NameNode");
  const JobId id = jobs_.size();
  spec.submit_time = sim_.now();
  auto js = std::make_unique<JobState>(id, spec, cluster_.size());
  const auto blocks = namenode_.create_file(spec.input_mb);
  js->init_maps(blocks, namenode_);
  jobs_.push_back(std::move(js));
  active_.push_back(id);
  ++jobs_expected_;
  scheduler_.on_job_submitted(id);
  if (auditor_) auditor_->record(audit::Record::kJobSubmit, id);
  return id;
}

void JobTracker::submit(workload::JobSpec spec) {
  ++jobs_expected_;
  sim_.schedule_at(spec.submit_time, [this, spec]() mutable {
    // A fresh arrival is counted exactly once, before the master-outage
    // buffer — a buffered submission replayed later must not re-count.
    if (admission_) admission_->note_arrival(spec);
    submit_arrival(std::move(spec), /*attempt=*/0);
  });
}

void JobTracker::submit_arrival(workload::JobSpec spec, int attempt) {
  if (!master_up_ || !namenode_up_) {
    // The client retries until a live master accepts the job; the buffer
    // preserves arrival order for the replay at recovery.  jobs_expected_
    // stays counted, so all_done() holds out for the replayed jobs.
    pending_submissions_.emplace_back(std::move(spec), attempt);
    return;
  }
  if (admission_) {
    const AdmissionVerdict verdict =
        admission_->decide(spec, attempt, total_slots(),
                           total_pending(TaskKind::kMap) +
                               total_pending(TaskKind::kReduce),
                           sim_.now());
    if (verdict != AdmissionVerdict::kAdmit) {
      reject_submission(std::move(spec), verdict, attempt);
      return;
    }
  }
  --jobs_expected_;  // submit_now re-counts it
  const workload::JobSpec admitted = spec;
  const JobId id = submit_now(std::move(spec));
  if (admission_) admission_->note_admitted(id, admitted, sim_.now());
}

void JobTracker::reject_submission(workload::JobSpec spec,
                                   AdmissionVerdict verdict, int attempt) {
  Seconds delay = 0.0;
  if (admission_->note_rejection(spec, verdict, attempt, sim_.now(), &delay)) {
    // Backpressure: the client re-submits after a capped exponential
    // backoff.  jobs_expected_ stays counted, so the run waits for the
    // retry to resolve before declaring itself done.
    sim_.schedule_after(delay, [this, spec, attempt]() mutable {
      admission_->note_retry_arrival(spec.tenant);
      submit_arrival(std::move(spec), attempt + 1);
    });
    return;
  }
  // Retry budget exhausted: the job is dropped without ever getting a
  // JobId.  It leaves jobs_expected_ so the run can still drain.
  --jobs_expected_;
  ++jobs_dropped_;
}

void JobTracker::replay_pending_submissions() {
  if (pending_submissions_.empty()) return;
  auto pending = std::move(pending_submissions_);
  pending_submissions_.clear();
  for (auto& [spec, attempt] : pending) {
    submit_arrival(std::move(spec), attempt);
  }
}

void JobTracker::submit_all(const std::vector<workload::JobSpec>& specs) {
  for (const auto& s : specs) submit(s);
}

void JobTracker::detector_tick() {
  const int slots = total_slots();
  if (slots <= 0) return;
  const int free_slots =
      total_free_slots(TaskKind::kMap) + total_free_slots(TaskKind::kReduce);
  const double occupancy = 1.0 - static_cast<double>(free_slots) /
                                     static_cast<double>(slots);
  const std::size_t pending =
      total_pending(TaskKind::kMap) + total_pending(TaskKind::kReduce);
  // Demand in task waves per slot: running + queued tasks over capacity.
  // (See AdmissionConfig — queue bounds cap the queued fraction, so the
  // saturation signal must include the running wave to discriminate "full"
  // from "full with a wave waiting".)
  const double backlog =
      (static_cast<double>(pending) + static_cast<double>(slots - free_slots)) /
      static_cast<double>(slots);
  // Deadline-slack pressure: the fraction of active deadlined jobs whose
  // estimated queue wait (backlog drained at mean task time across all
  // slots) already overruns their deadline.
  std::size_t deadlined = 0;
  std::size_t pressured = 0;
  const double est_wait = static_cast<double>(pending) *
                          admission_->mean_task_seconds() /
                          static_cast<double>(slots);
  for (JobId id : active_) {
    const JobState& js = job(id);
    if (!js.spec().has_deadline()) continue;
    ++deadlined;
    if (sim_.now() + est_wait > js.spec().deadline) ++pressured;
  }
  const double slack_pressure =
      deadlined == 0 ? 0.0
                     : static_cast<double>(pressured) /
                           static_cast<double>(deadlined);
  const OverloadState prev = admission_->state();
  const OverloadState next =
      admission_->tick(occupancy, backlog, slack_pressure, sim_.now());
  if (next != prev) apply_overload_state(next);
}

void JobTracker::apply_overload_state(OverloadState state) {
  // Brownout sheds optional work before useful work; recovery restores it
  // in reverse because the detector decays one level per tick.
  speculation_suspended_ = state >= OverloadState::kSaturated;
  const int prev_limit = rerep_limit_;
  if (state >= OverloadState::kCritical) {
    rerep_limit_ = 0;
  } else if (state >= OverloadState::kSaturated) {
    rerep_limit_ = 1;
  } else {
    rerep_limit_ = config_.max_replication_streams;
  }
  scheduler_.on_overload_state(state);
  // A raised throttle may unblock queued block copies immediately.
  if (rerep_limit_ > prev_limit) pump_rereplication();
}

void JobTracker::finalize_admission() {
  if (admission_) admission_->finalize(sim_.now());
}

void JobTracker::handle_heartbeat(TaskTracker& tracker) {
  const cluster::MachineId m = tracker.machine_id();
  if (!master_up_) {
    // The master process is dead: nobody hears the heartbeat.
    ++fenced_heartbeats_;
    return;
  }
  if (tracker_epoch_[m] != master_epoch_) {
    if (sim_.now() < reregistration_gate_[m]) {
      // Re-registration storm throttle: the restarted master admits the
      // fleet in machine-id order across reregistration_window; reports
      // arriving before a tracker's gate are fenced as stale-epoch.
      ++fenced_heartbeats_;
      return;
    }
    reregister_tracker(tracker);
  }
  ++heartbeats_;
  TrackerState& ts = tracker_states_[m];
  ts.last_heartbeat = sim_.now();
  if (ts.lost) {
    // A declared-lost tracker heartbeating again has rejoined (its lost work
    // was already re-queued at expiry time).  Its datanode re-registers as an
    // empty re-replication target — the declared loss already dropped its
    // replicas.
    ts.lost = false;
    maybe_rejoin(m);
    if (!namenode_.datanode_alive(m)) {
      apply_datanode_mark(m, /*dead=*/false);
    }
  } else if (ts.crash_pending) {
    // Fast restart: the node crashed and came back before the expiry window
    // elapsed, so the JobTracker never declared it lost — but the attempts
    // (and any local map outputs) died with the crash all the same.  Its
    // HDFS replicas survived on disk, so the datanode stays registered.
    reclaim_lost_work(m, /*datanode_lost=*/false);
    // The restarted node may be the source a stalled re-replication waited
    // for.
    pump_rereplication();
  }
  update_node_health(tracker);
  // No new work while blacklisted (fail-stop suspicion) or quarantined
  // (fail-slow suspicion).
  if (ts.blacklisted || ts.quarantined) return;
  // Placement decisions and split-locality answers need a live NameNode.
  if (!namenode_up_) return;
  try_assign(tracker, TaskKind::kMap);
  try_assign(tracker, TaskKind::kReduce);
}

void JobTracker::reregister_tracker(TaskTracker& tracker) {
  const cluster::MachineId m = tracker.machine_id();
  tracker_epoch_[m] = master_epoch_;
  const TrackerState& ts = tracker_states_[m];
  // A node that crashed since fencing began lost the local outputs behind
  // its buffered reports along with its attempts: nothing is committable.
  // Its orphans are dropped by reclaim_lost_work, which the heartbeat body
  // reaches through the lost / crash_pending paths (or already ran at
  // expiry detection).
  if (ts.lost || ts.crash_pending) return;
  resolve_orphans(m, /*commit_allowed=*/true);
  reconcile_running_attempts(tracker);
}

void JobTracker::resolve_orphans(cluster::MachineId machine,
                                 bool commit_allowed) {
  for (auto it = orphans_.begin(); it != orphans_.end();) {
    if (std::get<3>(it->first) != machine) {
      ++it;
      continue;
    }
    const Orphan orphan = std::move(it->second);
    it = orphans_.erase(it);
    const TaskSpec& spec = orphan.report.spec;
    const bool is_map = spec.kind == TaskKind::kMap;
    const bool covered = attempt_covered(orphan.report.start);
    if (orphan.failed) {
      // A buffered failure report: a covered attempt takes the normal
      // failure path (attempt budget + blacklist credit); an attempt the
      // replayed checkpoint never knew requeues for free — the restarted
      // master cannot charge a failure it has no record of launching.
      if (commit_allowed && covered) {
        if (auditor_) {
          auditor_->on_task_transition(spec.job, is_map, spec.index,
                                       audit::TaskEvent::kFail, machine);
        }
        note_orphan_outcome(spec, machine, 1);
        handle_task_failure(orphan.report);
      } else {
        if (auditor_) {
          auditor_->on_task_transition(spec.job, is_map, spec.index,
                                       audit::TaskEvent::kOrphanRequeue,
                                       machine);
        }
        note_orphan_outcome(spec, machine, 2);
        ++orphans_requeued_;
        report_waste(orphan.report, WasteReason::kOrphaned);
        requeue_orphaned_task(spec, machine);
      }
      continue;
    }
    // A buffered completion: commit iff the replayed checkpoint knew the
    // attempt (it launched inside coverage) and the task still wants the
    // result (no speculative twin won, job still live).
    const JobState& js = job(spec.job);
    const bool wanted = !js.failed() && !js.complete() &&
                        js.status(spec.kind, spec.index) == TaskStatus::kRunning;
    if (commit_allowed && covered && wanted) {
      if (auditor_) {
        auditor_->on_task_transition(spec.job, is_map, spec.index,
                                     audit::TaskEvent::kOrphanCommit, machine);
      }
      note_orphan_outcome(spec, machine, 0);
      ++orphans_committed_;
      handle_completion(orphan.report);
    } else {
      if (auditor_) {
        auditor_->on_task_transition(spec.job, is_map, spec.index,
                                     audit::TaskEvent::kOrphanRequeue, machine);
      }
      note_orphan_outcome(spec, machine, 2);
      ++orphans_requeued_;
      report_waste(orphan.report, WasteReason::kOrphaned);
      requeue_orphaned_task(spec, machine);
    }
  }
}

void JobTracker::reconcile_running_attempts(TaskTracker& tracker) {
  const cluster::MachineId m = tracker.machine_id();
  for (const auto& a : tracker.running_attempts()) {
    if (attempt_covered(a.start)) continue;  // replayed table re-adopts it
    // The restarted master has no record of this in-flight attempt: kill it
    // (cancel_task audits the kKill) and requeue the task.
    tracker.cancel_task(a.spec.job, a.spec.kind, a.spec.index);
    ++killed_attempts_;
    ++orphans_requeued_;
    TaskReport waste;
    waste.spec = a.spec;
    waste.machine = m;
    waste.start = a.start;
    waste.finish = sim_.now();
    report_waste(waste, WasteReason::kOrphaned);
    note_orphan_outcome(a.spec, m, 2);
    requeue_orphaned_task(a.spec, m);
  }
}

void JobTracker::requeue_orphaned_task(const TaskSpec& spec,
                                       cluster::MachineId machine) {
  JobState& js = job_mutable(spec.job);
  if (js.failed() || js.complete()) return;
  if (js.status(spec.kind, spec.index) != TaskStatus::kRunning) return;
  js.clear_speculative(spec.kind, spec.index);
  if (!running_elsewhere(spec.job, spec.kind, spec.index)) {
    js.unclaim(spec.kind, spec.index, machine);
  }
}

void JobTracker::note_orphan_outcome(const TaskSpec& spec,
                                     cluster::MachineId machine, int outcome) {
  orphan_outcomes_[{spec.job, spec.kind, spec.index, machine}].push_back(
      outcome);
}

std::uint64_t JobTracker::orphan_resolution_digest() const {
  // Keys iterate in sorted order and carry no timestamps, so the digest
  // depends only on WHAT was resolved and HOW — not on the re-registration
  // schedule that got there.
  audit::Fnv1a digest;
  for (const auto& [key, outcomes] : orphan_outcomes_) {
    digest.mix(static_cast<std::uint64_t>(std::get<0>(key)));
    digest.mix(
        static_cast<std::uint64_t>(std::get<1>(key) == TaskKind::kMap ? 0 : 1));
    digest.mix(static_cast<std::uint64_t>(std::get<2>(key)));
    digest.mix(static_cast<std::uint64_t>(std::get<3>(key)));
    for (int o : outcomes) digest.mix(static_cast<std::uint64_t>(o));
  }
  return digest.value();
}

void JobTracker::update_node_health(TaskTracker& tracker) {
  if (config_.quarantine_threshold <= 0.0) return;
  const cluster::MachineId m = tracker.machine_id();
  TrackerState& ts = tracker_states_[m];
  const auto rates = tracker.progress_rate_samples();
  if (rates.empty()) return;
  double mean = 0.0;
  for (double r : rates) mean += r;
  mean /= static_cast<double>(rates.size());
  // On a healthy machine every rate is exactly 1.0, so the EWMA update adds
  // alpha * 0 and the score stays bit-identical to its 1.0 initial value —
  // fail-slow detection is inert until a limp actually happens.
  ts.health += config_.health_ewma_alpha * (mean - ts.health);
  ++ts.health_samples;
  if (!ts.quarantined && ts.health_samples >= config_.health_min_samples &&
      ts.health < config_.quarantine_threshold) {
    ts.quarantined = true;
    ++quarantine_episodes_;
    // The node is not dead — its running attempts continue (and may still
    // finish) — but the scheduler must stop feeding it.
    scheduler_.on_tracker_lost(m);
  } else if (ts.quarantined &&
             ts.health > config_.health_recovery_threshold) {
    ts.quarantined = false;
    ts.health_samples = 0;
    maybe_rejoin(m);
  }
}

void JobTracker::decay_quarantine() {
  if (config_.quarantine_threshold <= 0.0 ||
      config_.quarantine_decay_window <= 0.0) {
    return;
  }
  const Seconds now = sim_.now();
  if (now - last_quarantine_decay_ < config_.quarantine_decay_window) return;
  last_quarantine_decay_ = now;
  for (cluster::MachineId m = 0; m < tracker_states_.size(); ++m) {
    TrackerState& ts = tracker_states_[m];
    if (!ts.quarantined) continue;
    // A quarantined node runs nothing, so its health can never recover from
    // progress samples alone; heal it halfway toward 1.0 per window (the
    // quarantine analogue of blacklist-counter halving) so the node is
    // eventually retried.  A still-limping node re-quarantines quickly.
    ts.health += 0.5 * (1.0 - ts.health);
    if (ts.health > config_.health_recovery_threshold) {
      ts.quarantined = false;
      ts.health_samples = 0;
      maybe_rejoin(m);
    }
  }
}

void JobTracker::maybe_rejoin(cluster::MachineId machine) {
  // State-priority rule: a node may hold several suspensions at once (lost,
  // blacklisted, quarantined).  It re-earns work only when the LAST of them
  // clears — every clearing path funnels through here so no single decay can
  // hand work to a node another mechanism still distrusts.
  const TrackerState& ts = tracker_states_[machine];
  if (trackers_[machine]->alive() && !ts.lost && !ts.blacklisted &&
      !ts.quarantined) {
    scheduler_.on_tracker_rejoined(machine);
  }
}

void JobTracker::try_speculate(TaskTracker& tracker, TaskKind kind) {
  if (tracker.free_slots(kind) <= 0) return;
  const cluster::MachineId m = tracker.machine_id();
  // Longest-overdue straggler that this machine could beat.  With
  // speculative_progress_ranking the score is instead the LATE-style
  // estimated remaining time from the attempt's observed progress rate — a
  // limping node's near-stalled attempt ranks far above a merely unlucky
  // one, and the beat test compares against remaining work, not elapsed.
  JobId best_job = 0;
  TaskIndex best_index = 0;
  Seconds best_score = 0.0;
  bool found = false;
  const Seconds now = sim_.now();
  for (JobId id : active_) {
    const JobState& js = *jobs_[id];
    const Seconds mean = js.mean_completed_duration(kind);
    if (mean <= 0.0) continue;
    const std::size_t total =
        kind == TaskKind::kMap ? js.num_maps() : js.num_reduces();
    for (TaskIndex i = 0; i < total; ++i) {
      if (js.status(kind, i) != TaskStatus::kRunning) continue;
      if (js.is_speculative(kind, i)) continue;
      const Seconds elapsed = now - js.task_start_time(kind, i);
      if (elapsed <= config_.speculative_straggler_beta * mean) continue;
      // Only worthwhile if a fresh attempt here is expected to beat the
      // original.
      const TaskSpec& spec = js.task(kind, i);
      const Locality locality = kind == TaskKind::kReduce
                                    ? Locality::kNodeLocal
                                    : namenode_.locality(spec.block, m);
      const Seconds here = base_duration(spec, cluster_.machine(m), locality);
      Seconds score;
      if (config_.speculative_progress_ranking) {
        const double p = running_progress(id, kind, i);
        // remaining = elapsed * (1 - p) / p; a zero-progress attempt (still
        // fetching, or crawling) pessimistically counts its elapsed time.
        const Seconds remaining =
            p > 0.0 ? elapsed * (1.0 - p) / p : elapsed;
        if (here >= remaining) continue;
        score = remaining;
      } else {
        if (here >= elapsed) continue;
        score = elapsed - mean;
      }
      if (score > best_score) {
        best_score = score;
        best_job = id;
        best_index = i;
        found = true;
      }
    }
  }
  if (found) start_speculative(best_job, kind, best_index, tracker);
}

std::optional<JobId> JobTracker::timed_select_job(cluster::MachineId machine,
                                                 TaskKind kind) {
  ++select_job_calls_;
  if (!config_.measure_scheduler_time) {
    return scheduler_.select_job(machine, kind);
  }
  // Wall-clock is fine here: the measurement is pure observation (it feeds
  // bench/perf_smoke's scheduler-work attribution) and never influences any
  // simulation decision, so determinism is untouched.
  const auto t0 = std::chrono::steady_clock::now();  // lint-ok: wall-clock
  const auto choice = scheduler_.select_job(machine, kind);
  const auto t1 = std::chrono::steady_clock::now();  // lint-ok: wall-clock
  select_job_wall_seconds_ += std::chrono::duration<double>(t1 - t0).count();
  return choice;
}

void JobTracker::try_assign(TaskTracker& tracker, TaskKind kind) {
  const cluster::MachineId m = tracker.machine_id();
  while (tracker.free_slots(kind) > 0) {
    const auto choice = timed_select_job(m, kind);
    if (!choice) {
      // Brownout: speculative duplicates are the first work shed under
      // overload — every clone slot is a slot the backlog needed.
      if (config_.speculative_execution && !speculation_suspended_) {
        try_speculate(tracker, kind);
      }
      return;
    }
    JobState& js = job_mutable(*choice);
    EANT_CHECK(js.has_pending(kind),
               "scheduler selected a job with no pending task of this kind");

    Locality locality = Locality::kNodeLocal;
    std::optional<TaskIndex> index;
    if (kind == TaskKind::kMap) {
      index = js.claim_map(m, locality);
    } else {
      index = js.claim_reduce();
    }
    EANT_ASSERT(index.has_value(), "claim failed despite pending work");

    if (kind == TaskKind::kMap && config_.locality_override) {
      locality = config_.locality_override(js.task(kind, *index), m)
                     ? Locality::kNodeLocal
                     : Locality::kOffRack;
    }

    launch(js, kind, *index, tracker, locality);
  }
}

void JobTracker::launch(JobState& js, TaskKind kind, TaskIndex index,
                        TaskTracker& tracker, Locality locality) {
  const cluster::MachineId mid = tracker.machine_id();
  // Admitted-then-starved bookkeeping: the job demonstrably reached a slot.
  if (admission_) admission_->note_first_launch(js.id());
  if (kind == TaskKind::kMap) {
    // Checksummed DFS read: confirm (and fail over past) corrupt replicas
    // first, so the lost-block check below sees the post-verification truth
    // and the mutated() re-answer routes the read to a clean source.
    verify_read(js.task(kind, index).block, mid);
  }
  if (kind == TaskKind::kMap &&
      namenode_.block_lost(js.task(kind, index).block)) {
    // Every replica of the split died before recovery: the read times out and
    // the attempt FAILS (burning an attempt, like a real DFS read of a lost
    // block), so the job eventually fails instead of silently succeeding.
    // No noise draws — lost-block handling must not perturb healthy streams.
    const TaskSpec& spec = js.task(kind, index);
    const Seconds duration = config_.heartbeat_interval;
    js.mark_started(kind, index, mid, sim_.now());
    tracker.start_task(spec, duration, false, 0.5 * duration);
    return;
  }
  if (kind == TaskKind::kMap && namenode_.mutated() &&
      !config_.locality_override) {
    // Replica sets changed since the job's locality index was built
    // (datanode loss / re-replication): re-answer from the live NameNode so
    // the remote-read decision reflects where the data actually is.
    locality = namenode_.locality(js.task(kind, index).block, mid);
  }
  if (fabric_ != nullptr) {
    launch_with_fabric(js, kind, index, tracker, locality);
    return;
  }
  const cluster::MachineId m = tracker.machine_id();
  const TaskSpec& spec = js.task(kind, index);
  const bool local = locality == Locality::kNodeLocal;
  if ((kind == TaskKind::kMap && !local) ||
      (kind == TaskKind::kReduce && spec.shuffle_seconds > 0.0)) {
    note_legacy_network();
  }
  const Seconds duration =
      compute_duration(js, spec, cluster_.machine(m), locality);
  Seconds fail_after = 0.0;
  if (attempt_fault_hook_) {
    if (const auto frac = attempt_fault_hook_(spec, m)) {
      fail_after = *frac * duration;
    }
  }
  js.mark_started(kind, index, m, sim_.now());
  tracker.start_task(spec, duration, local, fail_after);
}

void JobTracker::launch_with_fabric(JobState& js, TaskKind kind,
                                    TaskIndex index, TaskTracker& tracker,
                                    Locality locality) {
  const cluster::MachineId m = tracker.machine_id();
  const TaskSpec& spec = js.task(kind, index);
  const auto& machine = cluster_.machine(m);

  // The launch-time slowdown multiplier (CPU contention x straggler x noise)
  // stretches compute AND transfer alike on the legacy path, so here the
  // per-flow caps are divided by it: under never-binding links the transfer
  // phase then lasts exactly multiplier x (scalar transfer estimate), and
  // total attempt time reproduces the legacy model.  The noise draws keep
  // the legacy order (straggler, then duration) so both paths consume the
  // same RNG stream.
  double mult = 1.0;
  if (config_.contention_slowdown) {
    const double projected =
        (machine.demand_cores() + spec.cpu_demand) / machine.type().cores;
    if (projected > 1.0) mult = projected;
  }
  mult *= noise_.straggler_multiplier();
  mult *= noise_.duration_multiplier();

  // Nominal runtime on purpose (see base_duration): the TaskTracker applies
  // the fail-slow stretch event-deterministically on its side.
  Seconds compute_d =
      machine.type().task_runtime(spec.cpu_ref_seconds, spec.io_mb) * mult;  // lint-ok: machine-speed
  Seconds fail_after = 0.0;
  if (attempt_fault_hook_) {
    // The transient fault runs down during the compute phase, matching the
    // legacy "fraction of the attempt's runtime" semantics as closely as a
    // two-phase attempt allows.
    if (const auto frac = attempt_fault_hook_(spec, m)) {
      fail_after = *frac * compute_d;
    }
  }

  js.mark_started(kind, index, m, sim_.now());

  struct FlowPlan {
    cluster::MachineId src;
    Megabytes mb;
    double cap_mbps;
    net::TransferClass cls;
  };
  std::vector<FlowPlan> plan;
  // Scalar transfer estimate, charged locally when no flow can carry it
  // (e.g. every replica or map output is on this very machine).
  Seconds transfer_fallback = 0.0;

  if (kind == TaskKind::kMap && locality != Locality::kNodeLocal) {
    transfer_fallback = spec.input_mb / config_.remote_read_mbps;
    if (const auto src = pick_replica_source(spec.block, m)) {
      plan.push_back({*src, spec.input_mb, config_.remote_read_mbps / mult,
                      net::TransferClass::kRemoteRead});
      transfer_fallback = 0.0;
    }
  } else if (kind == TaskKind::kReduce && spec.shuffle_seconds > 0.0) {
    // One fetch flow per surviving machine holding completed map output,
    // sized by its share.  Caps are proportional to bytes, so on an idle
    // network every fetch lasts exactly spec.shuffle_seconds x mult — the
    // legacy scalar — while shared links stretch the big fetches most.
    transfer_fallback = spec.shuffle_seconds;
    const auto& per_machine = js.completed_per_machine(TaskKind::kMap);
    std::size_t total = 0;
    for (auto c : per_machine) total += c;
    if (total > 0) {
      const Seconds solo_time = spec.shuffle_seconds * mult;
      for (cluster::MachineId src = 0; src < per_machine.size(); ++src) {
        if (src == m || per_machine[src] == 0) continue;
        if (!trackers_[src]->alive()) continue;  // outputs died with the node
        const Megabytes mb =
            spec.input_mb * (static_cast<double>(per_machine[src]) /
                             static_cast<double>(total));
        if (mb <= 0.0 || solo_time <= 0.0) continue;
        plan.push_back(
            {src, mb, mb / solo_time, net::TransferClass::kShuffle});
      }
      if (!plan.empty()) transfer_fallback = 0.0;
    }
  }

  if (plan.empty()) {
    // Nothing to move over the wire; any residual scalar estimate (an
    // all-local shuffle's merge cost) folds into the compute phase.
    compute_d += transfer_fallback * mult;
    tracker.start_fetching_task(spec, locality, nullptr);
    tracker.begin_compute(spec.job, kind, index, compute_d, fail_after);
    return;
  }

  const TransferKey key{spec.job, kind, index, m};
  EANT_ASSERT(!transfers_.contains(key), "duplicate in-flight transfer");
  PendingTransfer& pt = transfers_[key];
  pt.compute_duration = compute_d;
  pt.fail_after = fail_after;
  pt.generation = ++transfer_generation_;
  tracker.start_fetching_task(spec, locality,
                              [this, key] { abort_transfers(key); });
  for (const FlowPlan& fp : plan) {
    start_owned_flow(key, fp.src, m, fp.mb, fp.cap_mbps, fp.cls);
  }
}

void JobTracker::start_owned_flow(const TransferKey& key,
                                  cluster::MachineId src,
                                  cluster::MachineId dst, Megabytes mb,
                                  double cap_mbps, net::TransferClass cls) {
  const net::FlowId id = fabric_->start_flow(
      src, dst, mb, cap_mbps, cls,
      [this, key](net::FlowId fid) { on_flow_complete(fid, key); },
      [this](net::FlowId fid, Megabytes remaining) {
        on_flow_failed(fid, remaining);
      });
  transfers_[key].flows.insert(id);
  flow_owner_[id] = OwnedFlow{key, src, cls, cap_mbps, mb};
  if (cls == net::TransferClass::kShuffle && fetch_fault_hook_) {
    if (const auto frac = fetch_fault_hook_(key.job, src)) {
      // Transient fetch error (flaky serving tracker, dropped connection):
      // the flow dies after that fraction of its solo transfer time.
      const Seconds at = *frac * (mb / cap_mbps);
      sim_.schedule_after(at, [this, id] {
        if (fabric_->active(id)) fabric_->fail_flow(id);
      });
    }
  }
}

void JobTracker::on_flow_complete(net::FlowId id, const TransferKey& key) {
  const auto own = flow_owner_.find(id);
  OwnedFlow of;
  if (own != flow_owner_.end()) {
    of = own->second;
    flow_owner_.erase(own);
  }
  auto it = transfers_.find(key);
  if (it == transfers_.end()) return;  // attempt already torn down
  it->second.flows.erase(id);
  // Reduce-side checksum verification of the delivered map output: a corrupt
  // payload is as bad as an undelivered one — the bytes are discarded whole
  // and the fetch-failure machinery (threshold, backoff, E-Ant trail
  // penalty, abort limit) drives the refetch, so corruption cannot livelock
  // the shuffle.
  if (of.cls == net::TransferClass::kShuffle && of.mb > 0.0 &&
      shuffle_corruption_hook_ && shuffle_corruption_hook_()) {
    ++shuffle_corruptions_;
    if (auditor_) {
      auditor_->record(audit::Record::kCorruptionDetected,
                       (static_cast<std::uint64_t>(of.key.job) << 32) ^
                           static_cast<std::uint64_t>(of.src));
    }
    handle_fetch_failure(of, of.mb);
    return;
  }
  if (!it->second.flows.empty()) return;
  if (it->second.pending_retries > 0) return;  // fetches still backing off
  const PendingTransfer pt = it->second;
  transfers_.erase(it);
  begin_compute_for(key, pt);
}

void JobTracker::on_flow_failed(net::FlowId id, Megabytes remaining_mb) {
  // A re-replication stream died (link fault or endpoint loss): the block
  // goes back on the NameNode's queue and the pump retries after a beat.
  if (const auto rit = rerep_flows_.find(id); rit != rerep_flows_.end()) {
    const hdfs::BlockId block = rit->second;
    rerep_flows_.erase(rit);
    if (rerep_active_ > 0) --rerep_active_;
    namenode_.requeue_rereplication(block);
    sim_.schedule_after(config_.fetch_retry_backoff,
                        [this] { pump_rereplication(); });
    return;
  }
  const auto own = flow_owner_.find(id);
  if (own == flow_owner_.end()) return;  // unowned replication-pipeline flow
  const OwnedFlow of = own->second;
  flow_owner_.erase(own);
  auto tit = transfers_.find(of.key);
  if (tit == transfers_.end()) return;  // attempt already torn down
  tit->second.flows.erase(id);

  if (of.cls == net::TransferClass::kRemoteRead) {
    // Remote split read: fail over to the nearest still-reachable replica
    // and move only the bytes that did not land.
    const TaskSpec& spec = job(of.key.job).task(of.key.kind, of.key.index);
    const auto src = pick_replica_source(spec.block, of.key.machine);
    if (remaining_mb > 0.0 && src.has_value()) {
      ++retransferred_flows_;
      start_owned_flow(of.key, *src, of.key.machine, remaining_mb,
                       of.cap_mbps, of.cls);
      return;
    }
    if (!src.has_value()) {
      // No reachable replica right now: kill the attempt (KILLED, not
      // FAILED — the machine did nothing wrong) so the map re-queues and
      // lands somewhere the data can reach.
      kill_fetching_attempt(of.key);
      return;
    }
    if (tit->second.flows.empty() && tit->second.pending_retries == 0) {
      const PendingTransfer pt = tit->second;
      transfers_.erase(tit);
      begin_compute_for(of.key, pt);
    }
    return;
  }
  handle_fetch_failure(of, remaining_mb);
}

void JobTracker::handle_fetch_failure(const OwnedFlow& of,
                                      Megabytes remaining_mb) {
  ++fetch_failures_;
  scheduler_.on_fetch_failed(of.key.job, of.src);
  if (auditor_) {
    auditor_->record(audit::Record::kFetchFailure,
                     (static_cast<std::uint64_t>(of.key.job) << 32) ^
                         static_cast<std::uint64_t>(of.src));
  }
  FetchState& fs = fetch_state_[{of.key.job, of.src}];
  ++fs.failures;
  // Strikes against the reduce task itself: they survive attempt kills (a
  // relaunched reduce re-shuffles from scratch, so the prior failures still
  // represent zero progress) and clear only when a shuffle completes.  A
  // reduce that can never finish a shuffle must eventually FAIL — otherwise
  // a high fetch-failure regime kills and relaunches reducers for free
  // forever, and the run livelocks.
  int& strikes = reduce_fetch_strikes_[{of.key.job, of.key.index}];
  ++strikes;
  if (config_.reduce_fetch_abort_limit > 0 &&
      strikes >= config_.reduce_fetch_abort_limit) {
    reduce_fetch_strikes_.erase({of.key.job, of.key.index});
    fail_fetching_attempt(of.key);
    return;
  }
  if (config_.fetch_failure_threshold > 0 &&
      fs.failures >= config_.fetch_failure_threshold) {
    // Hadoop's "too many fetch failures": the source's map outputs are
    // declared lost for this job and the maps re-execute elsewhere.
    declare_map_outputs_lost(of.key.job, of.src);
    if (transfers_.contains(of.key)) kill_fetching_attempt(of.key);
    return;
  }
  // Exponential backoff, then refetch the undelivered bytes from the same
  // source (the fault may be transient, or the link may heal).
  const int exponent = std::max(fs.failures - 1, 0);
  const Seconds backoff =
      std::min(config_.fetch_retry_backoff * std::pow(2.0, exponent),
               config_.fetch_retry_backoff_max);
  auto tit = transfers_.find(of.key);
  EANT_ASSERT(tit != transfers_.end(), "fetch failure without transfer state");
  ++tit->second.pending_retries;
  const TransferKey key = of.key;
  const cluster::MachineId src = of.src;
  const double cap = of.cap_mbps;
  const std::uint64_t gen = tit->second.generation;
  sim_.schedule_after(backoff, [this, key, src, remaining_mb, cap, gen] {
    retry_fetch(key, src, remaining_mb, cap, gen);
  });
}

void JobTracker::retry_fetch(const TransferKey& key, cluster::MachineId src,
                             Megabytes remaining_mb, double cap_mbps,
                             std::uint64_t generation) {
  auto it = transfers_.find(key);
  if (it == transfers_.end()) return;  // attempt torn down while backing off
  if (it->second.generation != generation) return;  // successor attempt
  --it->second.pending_retries;
  if (trackers_[src]->alive() && remaining_mb > 0.0) {
    start_owned_flow(key, src, key.machine, remaining_mb, cap_mbps,
                     net::TransferClass::kShuffle);
    return;
  }
  // The source died while we backed off — its outputs were reclaimed through
  // the node-loss path, so this fetch just drains.
  if (it->second.flows.empty() && it->second.pending_retries == 0) {
    const PendingTransfer pt = it->second;
    transfers_.erase(it);
    begin_compute_for(key, pt);
  }
}

void JobTracker::declare_map_outputs_lost(JobId job, cluster::MachineId source) {
  fetch_state_.erase({job, source});
  JobState& js = job_mutable(job);
  if (js.failed() || js.complete()) return;
  TrackerState& ts = tracker_states_[source];
  // Every completed map output this job keeps on the source is obsolete:
  // revert the maps so they re-execute on reachable machines.
  std::vector<std::pair<JobId, TaskIndex>> victims;
  for (auto& [key, r] : ts.map_outputs) {
    if (key.first != job) continue;
    if (js.status(TaskKind::kMap, key.second) != TaskStatus::kDone) continue;
    js.revert_done_map(key.second, r.duration(),
                       namenode_.locations(r.spec.block), source);
    if (auditor_) {
      auditor_->on_task_transition(job, true, key.second,
                                   audit::TaskEvent::kRevertDone, source);
    }
    ++fetch_reexecuted_maps_;
    report_waste(r, WasteReason::kFetchFailed);
    victims.push_back(key);
  }
  for (const auto& k : victims) ts.map_outputs.erase(k);

  // Reduces still fetching from the declared-lost source are pulling stale
  // data; kill those attempts (KILLED) so they re-shuffle once the maps land
  // again.
  std::set<TransferKey> stale;
  for (const auto& [fid, owned] : flow_owner_) {
    if (owned.key.job == job && owned.key.kind == TaskKind::kReduce &&
        owned.src == source) {
      stale.insert(owned.key);
    }
  }
  for (const TransferKey& key : stale) kill_fetching_attempt(key);
}

void JobTracker::kill_fetching_attempt(const TransferKey& key) {
  JobState& js = job_mutable(key.job);
  // cancel_task tears the attempt down without a completion report; its
  // abort callback drains any remaining fetch flows.
  trackers_[key.machine]->cancel_task(key.job, key.kind, key.index);
  abort_transfers(key);
  ++killed_attempts_;
  if (js.failed() || js.complete()) return;
  if (js.status(key.kind, key.index) != TaskStatus::kRunning) return;
  js.clear_speculative(key.kind, key.index);
  if (!running_elsewhere(key.job, key.kind, key.index)) {
    js.unclaim(key.kind, key.index, key.machine);
  }
}

void JobTracker::fail_fetching_attempt(const TransferKey& key) {
  // The reducer gives up: tear down what is left of the shuffle, then let
  // the attempt FAIL through the normal completion path so it burns budget
  // (four hopeless shuffles end the job loudly instead of livelocking).
  abort_transfers(key);
  ++fetch_aborted_attempts_;
  TaskTracker& t = *trackers_[key.machine];
  EANT_ASSERT(t.alive() && t.is_running(key.job, key.kind, key.index),
              "fetch-aborting an attempt that is no longer running");
  const Seconds duration = config_.heartbeat_interval;
  t.begin_compute(key.job, key.kind, key.index, duration, 0.5 * duration);
}

void JobTracker::begin_compute_for(const TransferKey& key,
                                   const PendingTransfer& pt) {
  if (key.kind == TaskKind::kReduce) {
    // The shuffle landed: the task made real progress, so its fetch-failure
    // strikes no longer indicate a hopeless reduce.
    reduce_fetch_strikes_.erase({key.job, key.index});
  }
  TaskTracker& t = *trackers_[key.machine];
  EANT_ASSERT(t.alive() && t.is_running(key.job, key.kind, key.index),
              "transfer finished for an attempt that is no longer running");
  t.begin_compute(key.job, key.kind, key.index, pt.compute_duration,
                  pt.fail_after);
}

void JobTracker::abort_transfers(const TransferKey& key) {
  auto it = transfers_.find(key);
  if (it == transfers_.end()) return;
  // Detach before aborting: abort_flow reallocates the whole fabric and the
  // owner map must already be consistent.
  const std::set<net::FlowId> flows = std::move(it->second.flows);
  transfers_.erase(it);
  for (net::FlowId f : flows) {
    flow_owner_.erase(f);
    fabric_->abort_flow(f);
  }
}

std::optional<cluster::MachineId> JobTracker::pick_replica_source(
    hdfs::BlockId block, cluster::MachineId dst) const {
  // Prefer a surviving replica in the reader's rack (the fetch then skips
  // the oversubscribed uplink), like Hadoop's pickup order.
  std::optional<cluster::MachineId> same_rack;
  std::optional<cluster::MachineId> elsewhere;
  for (cluster::MachineId n : namenode_.locations(block)) {
    if (n == dst || !trackers_[n]->alive()) continue;
    // A replica behind a downed link or a partitioned rack is no source.
    if (fabric_ != nullptr && !fabric_->reachable(n, dst)) continue;
    if (namenode_.rack_of(n) == namenode_.rack_of(dst)) {
      if (!same_rack) same_rack = n;
    } else if (!elsewhere) {
      elsewhere = n;
    }
  }
  return same_rack ? same_rack : elsewhere;
}

void JobTracker::handle_network_casualties(cluster::MachineId dead) {
  if (fabric_ == nullptr) return;
  // The dying tracker's own attempts already tore their fetches down, so
  // what remains touching the node is (a) flows it was *serving* to others
  // and (b) unowned replication-pipeline flows.  (a) restarts from another
  // holder of the data; (b) just dies.
  bool rerep_requeued = false;
  for (net::FlowId f : fabric_->flows_touching(dead)) {
    if (!fabric_->active(f)) continue;
    // An in-flight re-replication stream touching the dead node restarts
    // from/to surviving endpoints via the NameNode's queue.
    if (const auto rit = rerep_flows_.find(f); rit != rerep_flows_.end()) {
      const hdfs::BlockId block = rit->second;
      rerep_flows_.erase(rit);
      if (rerep_active_ > 0) --rerep_active_;
      fabric_->abort_flow(f);
      namenode_.requeue_rereplication(block);
      rerep_requeued = true;
      continue;
    }
    const auto own = flow_owner_.find(f);
    if (own == flow_owner_.end()) {
      fabric_->abort_flow(f);
      continue;
    }
    const TransferKey key = own->second.key;
    const cluster::MachineId dst = fabric_->flow_dst(f);
    const Megabytes remaining = fabric_->flow_remaining_mb(f);
    const double cap = fabric_->flow_cap_mbps(f);
    const net::TransferClass cls = fabric_->flow_class(f);
    flow_owner_.erase(own);
    auto tit = transfers_.find(key);
    EANT_ASSERT(tit != transfers_.end(), "owned flow without transfer state");
    tit->second.flows.erase(f);
    fabric_->abort_flow(f);

    std::optional<cluster::MachineId> source;
    if (cls == net::TransferClass::kRemoteRead) {
      source =
          pick_replica_source(job(key.job).task(key.kind, key.index).block, dst);
    } else {
      // Shuffle: refetch from the surviving machine holding the most of this
      // job's map output (a stand-in for the re-executed maps' new homes).
      const auto& per_machine =
          job(key.job).completed_per_machine(TaskKind::kMap);
      std::size_t best = 0;
      for (cluster::MachineId n = 0; n < per_machine.size(); ++n) {
        if (n == dst || n == dead || !trackers_[n]->alive()) continue;
        if (per_machine[n] > best) {
          best = per_machine[n];
          source = n;
        }
      }
    }

    if (remaining > 0.0 && source.has_value()) {
      ++retransferred_flows_;
      start_owned_flow(key, *source, dst, remaining, cap, cls);
    } else if (tit->second.flows.empty() &&
               tit->second.pending_retries == 0) {
      // No surviving source (or nothing left to move): the fetch set just
      // drained, so the attempt proceeds to compute with what it has.
      const PendingTransfer pt = tit->second;
      transfers_.erase(tit);
      begin_compute_for(key, pt);
    }
  }
  if (rerep_requeued) pump_rereplication();
}

void JobTracker::handle_datanode_loss(cluster::MachineId machine) {
  apply_datanode_mark(machine, /*dead=*/true);
}

void JobTracker::apply_datanode_mark(cluster::MachineId machine, bool dead) {
  if (!namenode_up_) {
    // The NameNode cannot hear the mark right now; it replays in arrival
    // order at recovery (data-loss detection moves to the replay, like real
    // HDFS learning of deaths from its post-restart heartbeat view).
    pending_datanode_marks_.emplace_back(machine, dead);
    return;
  }
  if (dead) {
    const std::size_t lost_before = namenode_.lost_blocks().size();
    namenode_.mark_datanode_dead(machine);
    const auto& lost = namenode_.lost_blocks();
    for (std::size_t i = lost_before; i < lost.size(); ++i) {
      ++data_loss_events_;
      if (auditor_) auditor_->record(audit::Record::kDataLoss, lost[i]);
    }
  } else {
    namenode_.mark_datanode_alive(machine);
  }
  pump_rereplication();
}

void JobTracker::pump_rereplication() {
  if (!namenode_up_) return;  // the work queue lives in the NameNode
  // rerep_limit_ is the brownout throttle: max_replication_streams under
  // Normal/Elevated, 1 under Saturated, 0 under Critical (background block
  // copies yield their bandwidth and slots to the backlog); restored by
  // apply_overload_state as the detector decays.
  while (rerep_active_ < rerep_limit_) {
    const auto work = namenode_.next_rereplication();
    if (!work) return;
    // Both endpoints must be serving right now; otherwise the block waits
    // for the next trigger (a rejoin, a finished stream, a node loss sweep).
    if (!trackers_[work->source]->alive() ||
        !trackers_[work->target]->alive()) {
      namenode_.requeue_rereplication(work->block);
      return;
    }
    const hdfs::BlockId block = work->block;
    const cluster::MachineId target = work->target;
    const Megabytes mb = namenode_.block_size(block);
    if (auditor_) {
      auditor_->record(audit::Record::kReplicaChange,
                       (static_cast<std::uint64_t>(block) << 32) ^
                           static_cast<std::uint64_t>(target));
    }
    ++rerep_active_;
    if (fabric_ != nullptr) {
      const net::FlowId fid = fabric_->start_flow(
          work->source, target, mb, config_.rereplication_mbps,
          net::TransferClass::kReplication,
          [this, block, target, mb](net::FlowId f) {
            finish_rereplication(f, block, target, mb);
          },
          [this](net::FlowId f, Megabytes remaining) {
            on_flow_failed(f, remaining);
          });
      rerep_flows_[fid] = block;
    } else {
      // Legacy scalar model: the copy just takes size / rate seconds.
      sim_.schedule_after(mb / config_.rereplication_mbps,
                          [this, block, target, mb] {
                            finish_rereplication(0, block, target, mb);
                          });
    }
  }
}

void JobTracker::finish_rereplication(net::FlowId id, hdfs::BlockId block,
                                      cluster::MachineId target,
                                      Megabytes mb) {
  rerep_flows_.erase(id);
  if (rerep_active_ > 0) --rerep_active_;
  // The target may have been declared dead while the copy was in flight;
  // add_replica then re-queues the block instead of registering the copy.
  namenode_.add_replica(block, target);
  if (namenode_.is_local(block, target)) {
    ++rereplicated_blocks_;
    rereplication_mb_ += mb;
    // A registered copy of a block with confirmed-corrupt history settles
    // one detection in the repair ledger (copies are fungible: whichever
    // under-replication put the block on the queue, the new clean replica
    // restores what the dropped corrupt one cost).
    if (auto cit = corrupt_pending_repair_.find(block);
        cit != corrupt_pending_repair_.end()) {
      ++corruptions_repaired_;
      if (auditor_) {
        auditor_->record(audit::Record::kRepair,
                         (static_cast<std::uint64_t>(block) << 32) ^
                             static_cast<std::uint64_t>(target));
      }
      if (--cit->second <= 0) corrupt_pending_repair_.erase(cit);
    }
  }
  pump_rereplication();
}

// --- data integrity ----------------------------------------------------------

void JobTracker::inject_corruption(cluster::MachineId machine,
                                   std::int64_t block, double pick) {
  EANT_CHECK(machine < cluster_.size(), "corruption strike on unknown machine");
  hdfs::BlockId target = 0;
  if (block >= 0) {
    target = static_cast<hdfs::BlockId>(block);
  } else {
    // The strike hit the machine: pick one of its replicas.  Ascending block
    // order, so the choice depends only on `pick` and the disk's contents —
    // not on container iteration order.
    const std::vector<hdfs::BlockId> held = namenode_.blocks_on(machine);
    if (held.empty()) return;  // rot on an empty (or fully dropped) disk
    std::size_t i =
        static_cast<std::size_t>(pick * static_cast<double>(held.size()));
    if (i >= held.size()) i = held.size() - 1;
    target = held[i];
  }
  // Only a live, still-clean replica can newly rot; anything else the strike
  // lands on is a no-op, so the injected counter never double-books.
  if (!namenode_.corrupt_replica(target, machine)) return;
  ++corruptions_injected_;
  corrupt_injected_at_[{target, machine}] = sim_.now();
}

cluster::MachineId JobTracker::preferred_replica(
    hdfs::BlockId block, cluster::MachineId reader) const {
  const auto& locs = namenode_.locations(block);
  EANT_ASSERT(!locs.empty(), "preferred replica of a lost block");
  std::optional<cluster::MachineId> rack_local;
  for (cluster::MachineId n : locs) {
    if (n == reader) return n;  // node-local beats everything
    if (!rack_local && namenode_.rack_of(n) == namenode_.rack_of(reader)) {
      rack_local = n;
    }
  }
  return rack_local ? *rack_local : locs.front();
}

void JobTracker::verify_read(hdfs::BlockId block, cluster::MachineId reader) {
  if (corruptions_injected_ == 0) return;  // nothing anywhere can be corrupt
  // The reader tries replicas in preference order; every checksum mismatch
  // is reported to the NameNode (Hadoop's reportBadBlocks) and the read
  // fails over to the next replica, until a clean one answers or no replica
  // is left — the block is then lost and the launch path fails it loudly.
  bool failed_over = false;
  while (!namenode_.block_lost(block)) {
    const cluster::MachineId n = preferred_replica(block, reader);
    if (!namenode_.replica_corrupt(block, n)) break;
    failed_over = true;
    confirm_corruption(block, n);
  }
  if (failed_over) ++corrupt_read_failovers_;
}

void JobTracker::confirm_corruption(hdfs::BlockId block,
                                    cluster::MachineId node) {
  ++corruptions_detected_;
  if (auto it = corrupt_injected_at_.find({block, node});
      it != corrupt_injected_at_.end()) {
    corruption_detection_latencies_.push_back(sim_.now() - it->second);
    corrupt_injected_at_.erase(it);
  }
  if (auditor_) {
    auditor_->record(audit::Record::kCorruptionDetected,
                     (static_cast<std::uint64_t>(block) << 32) ^
                         static_cast<std::uint64_t>(node));
  }
  const std::size_t lost_before = namenode_.lost_blocks().size();
  namenode_.confirm_corrupt(block, node);
  if (namenode_.lost_blocks().size() > lost_before) {
    // That was the last replica: loud corrupt-block loss.  Earlier
    // detections of this block still queued for repair can never be
    // satisfied — they are lost with it.
    ++data_loss_events_;
    if (auditor_) auditor_->record(audit::Record::kDataLoss, block);
    std::size_t lost = 1;
    if (auto pit = corrupt_pending_repair_.find(block);
        pit != corrupt_pending_repair_.end()) {
      lost += static_cast<std::size_t>(pit->second);
      corrupt_pending_repair_.erase(pit);
    }
    corruptions_lost_ += lost;
    return;
  }
  // The replica dropped into the under-replication queue; the next finished
  // copy of this block settles the detection in the repair ledger.
  ++corrupt_pending_repair_[block];
  pump_rereplication();
}

void JobTracker::scrub_tick() {
  // Brownout: under Critical the background scan yields entirely, like the
  // re-replication pump it feeds (the backlog owns the cluster's bandwidth).
  if (rerep_limit_ <= 0) return;
  const std::size_t total = namenode_.num_blocks();
  if (total == 0) return;
  ++scrub_passes_;
  double budget = config_.scrub_mbps * config_.scrub_period;
  std::uint64_t scanned = 0;
  std::size_t visited = 0;
  // Whole replicas in block order from a persistent cursor (the budget may
  // overshoot by at most one replica), wrapping at the end of the namespace
  // so every replica is revisited within one full scan period.
  while (budget > 0.0 && visited < total) {
    const hdfs::BlockId id = scrub_cursor_;
    scrub_cursor_ = (scrub_cursor_ + 1) % total;
    ++visited;
    if (namenode_.block_lost(id)) continue;
    const Megabytes mb = namenode_.block_size(id);
    // Copy: confirming a corrupt replica mutates the location set under us.
    const std::vector<cluster::MachineId> locs = namenode_.locations(id);
    for (cluster::MachineId n : locs) {
      budget -= mb;
      scrubbed_mb_ += mb;
      ++scanned;
      if (namenode_.replica_corrupt(id, n)) confirm_corruption(id, n);
      if (budget <= 0.0) break;
    }
  }
  if (auditor_) auditor_->record(audit::Record::kScrub, scanned);
}

void JobTracker::finalize_corruption() {
  if (corruption_finalized_) return;
  corruption_finalized_ = true;
  // Detections whose block was subsequently lost (by further corruption or
  // node deaths) can never be repaired: their queued repairs are lost too.
  for (auto it = corrupt_pending_repair_.begin();
       it != corrupt_pending_repair_.end();) {
    if (namenode_.block_lost(it->first)) {
      corruptions_lost_ += static_cast<std::size_t>(it->second);
      it = corrupt_pending_repair_.erase(it);
    } else {
      ++it;
    }
  }
  std::size_t pending = 0;
  for (const auto& [block, n] : corrupt_pending_repair_) {
    pending += static_cast<std::size_t>(n);
  }
  // Undetected injections stay latent: either the marker still sits on a
  // live replica, or the rotten replica evaporated with its node before
  // anything read it.  A live replica whose marker vanished would mean the
  // checksum state was silently cleared — a ledger violation.
  corruptions_latent_ = corrupt_injected_at_.size();
  if (auditor_ == nullptr) return;
  for (const auto& [key, t] : corrupt_injected_at_) {
    (void)t;
    if (namenode_.is_local(key.first, key.second) &&
        !namenode_.replica_corrupt(key.first, key.second)) {
      auditor_->report_violation(
          "corruption-conservation", audit::Severity::kError,
          "latent corrupt replica lost its checksum marker");
    }
  }
  if (corruptions_detected_ !=
      corruptions_repaired_ + corruptions_lost_ + pending) {
    auditor_->report_violation(
        "corruption-conservation", audit::Severity::kError,
        "detected corruptions must be repaired, lost, or awaiting repair");
  }
  if (corruptions_injected_ != corruptions_detected_ + corruptions_latent_) {
    auditor_->report_violation(
        "corruption-conservation", audit::Severity::kError,
        "injected corruptions must be detected or latent at finalize");
  }
}

void JobTracker::crash_master() {
  EANT_CHECK(master_up_, "JobTracker master crashed while already down");
  master_up_ = false;
  ++master_crashes_;
  if (auditor_) auditor_->record(audit::Record::kMasterCrash, 0);
}

void JobTracker::recover_master() {
  EANT_CHECK(!master_up_, "JobTracker master recovered while up");
  master_up_ = true;
  ++master_epoch_;
  if (auditor_) {
    auditor_->record(audit::Record::kMasterRecover, 0);
    auditor_->on_master_epoch(master_epoch_);
  }
  if (checkpoint_coverage_ >= 0.0) ++checkpoint_replays_;
  const Seconds now = sim_.now();
  const double fleet = std::max<double>(1.0, cluster_.size());
  for (cluster::MachineId m = 0; m < cluster_.size(); ++m) {
    TrackerState& ts = tracker_states_[m];
    // Grace period: the master has no heartbeat history, so every tracker
    // gets a fresh expiry clock rather than being declared lost for silence
    // that happened while nobody was listening.
    ts.last_heartbeat = now;
    // Health samples accumulated against the dead master's view are stale;
    // quarantine decisions restart from scratch (blacklists persist — they
    // record charged faults, not an opinion of the old master).
    ts.health = 1.0;
    ts.health_samples = 0;
    if (ts.quarantined) {
      ts.quarantined = false;
      maybe_rejoin(m);
    }
    // Stagger re-registration in machine-id order so a thousand trackers do
    // not stampede the recovering master in one event.
    reregistration_gate_[m] =
        now + config_.reregistration_window * (static_cast<double>(m) / fleet);
  }
  if (namenode_up_) replay_pending_submissions();
  // Scheduler hook last: it may immediately inspect tracker state.
  scheduler_.on_master_recovered(master_epoch_);
  // The restarted scheduler instance state survived (same process object),
  // but re-broadcast the overload state so a scheduler that resets its view
  // in on_master_recovered still sheds correctly.
  if (admission_) scheduler_.on_overload_state(admission_->state());
}

void JobTracker::crash_namenode() {
  EANT_CHECK(namenode_up_, "NameNode crashed while already down");
  namenode_up_ = false;
  ++master_crashes_;
  nn_snapshot_ = namenode_.snapshot();
  if (auditor_) auditor_->record(audit::Record::kMasterCrash, 1);
}

void JobTracker::recover_namenode() {
  EANT_CHECK(!namenode_up_, "NameNode recovered while up");
  namenode_up_ = true;
  if (auditor_) auditor_->record(audit::Record::kMasterRecover, 1);
  EANT_ASSERT(nn_snapshot_.has_value(),
              "NameNode recovery without a crash snapshot");
  namenode_.restore(*nn_snapshot_);
  nn_snapshot_.reset();
  // Replay datanode liveness changes observed during the outage in arrival
  // order; data-loss accounting happens here, against the restored map.
  const auto marks = std::move(pending_datanode_marks_);
  pending_datanode_marks_.clear();
  for (const auto& [machine, dead] : marks) apply_datanode_mark(machine, dead);
  namenode_.rebuild_under_replication();
  if (master_up_) replay_pending_submissions();
  pump_rereplication();
}

void JobTracker::decay_blacklist_counters() {
  if (config_.blacklist_decay_window <= 0.0) return;
  const Seconds now = sim_.now();
  if (now - last_fault_decay_ < config_.blacklist_decay_window) return;
  last_fault_decay_ = now;
  for (cluster::MachineId m = 0; m < tracker_states_.size(); ++m) {
    TrackerState& ts = tracker_states_[m];
    if (ts.failures > 0) ts.failures /= 2;
    if (ts.blacklisted && ts.failures < config_.blacklist_threshold) {
      // The decayed record no longer justifies the blacklist: forgive early.
      ts.blacklisted = false;
      maybe_rejoin(m);
    }
  }
}

void JobTracker::start_replication_flows(const JobState& js,
                                         const TaskReport& report) {
  const Megabytes out_mb =
      report.spec.input_mb * js.profile().reduce_output_ratio;
  if (out_mb <= 0.0 || cluster_.size() < 2) return;
  const cluster::MachineId m = report.machine;

  // Deterministic stand-in for the HDFS write pipeline (placement draws must
  // not perturb the NameNode's RNG stream): second replica goes to the first
  // surviving node outside the writer's rack, the third stays in the second
  // replica's rack, mirroring the rack-aware policy.  Replication is
  // asynchronous — the job does not wait for it — but its flows contend
  // with shuffles and remote reads on the shared links.
  std::optional<cluster::MachineId> second;
  std::optional<cluster::MachineId> fallback;
  for (std::size_t step = 1; step < cluster_.size(); ++step) {
    const cluster::MachineId n = (m + step) % cluster_.size();
    if (!trackers_[n]->alive()) continue;
    if (!fallback) fallback = n;
    if (namenode_.rack_of(n) != namenode_.rack_of(m)) {
      second = n;
      break;
    }
  }
  if (!second) second = fallback;
  if (!second) return;  // no other node survives

  const int copies =
      std::min(namenode_.replication() - 1,
               static_cast<int>(cluster_.size()) - 1);
  if (copies >= 1) {
    fabric_->start_flow(m, *second, out_mb, config_.replication_write_mbps,
                        net::TransferClass::kReplication, nullptr);
  }
  if (copies >= 2) {
    // Third replica: pipelined onward from the second, within its rack.
    std::optional<cluster::MachineId> third;
    for (std::size_t step = 1; step < cluster_.size(); ++step) {
      const cluster::MachineId n = (*second + step) % cluster_.size();
      if (n == m || !trackers_[n]->alive()) continue;
      if (!third) third = n;
      if (namenode_.rack_of(n) == namenode_.rack_of(*second)) {
        third = n;
        break;
      }
    }
    if (third) {
      fabric_->start_flow(*second, *third, out_mb,
                          config_.replication_write_mbps,
                          net::TransferClass::kReplication, nullptr);
    }
  }
}

void JobTracker::note_legacy_network() {
  if (legacy_network_noted_) return;
  legacy_network_noted_ = true;
  // One note per process, not per Run: benches execute dozens of legacy
  // runs and the point is just to flag which model produced the numbers.
  // Atomic because the parallel sweep driver constructs Runs concurrently;
  // exchange() lets exactly one thread print.
  static std::atomic<bool> printed{false};  // lint-ok: global-state
  if (!printed.exchange(true)) {
    std::fprintf(stderr,
                 "[eant] note: no network topology configured; network costs "
                 "use the legacy scalar bandwidths (shuffle %.1f MB/s, "
                 "remote read %.1f MB/s)\n",
                 config_.shuffle_mbps, config_.remote_read_mbps);
  }
}

Seconds JobTracker::base_duration(const TaskSpec& spec,
                                  const cluster::Machine& machine,
                                  Locality locality) const {
  // The master's *nominal* expectation deliberately excludes fail-slow
  // multipliers: Hadoop's JobTracker does not know a node is limping, it
  // only observes the stretched progress downstream.
  Seconds base =
      machine.type().task_runtime(spec.cpu_ref_seconds, spec.io_mb);  // lint-ok: machine-speed
  if (spec.kind == TaskKind::kMap && locality != Locality::kNodeLocal) {
    base += spec.input_mb / config_.remote_read_mbps;
  }
  base += spec.shuffle_seconds;
  if (config_.contention_slowdown) {
    const double projected =
        (machine.demand_cores() + spec.cpu_demand) / machine.type().cores;
    if (projected > 1.0) base *= projected;
  }
  EANT_ASSERT(base > 0.0, "task duration must be positive");
  return base;
}

Seconds JobTracker::compute_duration(const JobState& /*js*/,
                                     const TaskSpec& spec,
                                     const cluster::Machine& machine,
                                     Locality locality) {
  Seconds d = base_duration(spec, machine, locality);
  d *= noise_.straggler_multiplier();
  d *= noise_.duration_multiplier();
  return d;
}

double JobTracker::shuffle_skew_penalty(const JobState& js) const {
  if (config_.skew_penalty_weight <= 0.0) return 1.0;
  const auto& per_machine = js.completed_per_machine(TaskKind::kMap);
  std::size_t total = 0;
  for (auto c : per_machine) total += c;
  if (total == 0) return 1.0;
  // Total-variation distance between where map output actually lives and
  // the capability-proportional placement that balances shuffle fetches.
  double tv = 0.0;
  for (cluster::MachineId m = 0; m < per_machine.size(); ++m) {
    const double share =
        static_cast<double>(per_machine[m]) / static_cast<double>(total);
    tv += std::abs(share - capability_share_[m]);
  }
  tv *= 0.5;
  return 1.0 + config_.skew_penalty_weight * tv;
}

void JobTracker::maybe_build_reduces(JobState& js) {
  if (js.reduces_built()) return;
  const auto needed = static_cast<std::size_t>(
      std::ceil(config_.reduce_slowstart * static_cast<double>(js.num_maps())));
  if (js.done(TaskKind::kMap) < std::max<std::size_t>(needed, 1)) return;

  const auto& p = js.profile();
  const Megabytes total_output = js.expected_map_output_mb();
  const int n = js.spec().num_reduces;
  const Megabytes per_reduce = total_output / n;
  const double penalty = shuffle_skew_penalty(js);
  const Seconds shuffle_time =
      per_reduce * penalty / config_.shuffle_mbps;

  std::vector<TaskSpec> reduces;
  reduces.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    TaskSpec t;
    t.job = js.id();
    t.index = static_cast<TaskIndex>(i);
    t.kind = TaskKind::kReduce;
    t.input_mb = per_reduce;
    t.cpu_ref_seconds = p.reduce_cpu_s_per_mb * per_reduce;
    t.io_mb = p.reduce_io_mb_per_mb * per_reduce;
    t.shuffle_seconds = shuffle_time;
    t.cpu_demand = p.reduce_cpu_demand;
    reduces.push_back(t);
  }
  js.init_reduces(std::move(reduces));
}

bool JobTracker::start_speculative(JobId job, TaskKind kind, TaskIndex index,
                                   TaskTracker& tracker) {
  if (!master_up_ || !namenode_up_) return false;
  JobState& js = job_mutable(job);
  if (js.failed()) return false;
  if (js.status(kind, index) != TaskStatus::kRunning) return false;
  if (js.is_speculative(kind, index)) return false;
  if (!tracker_available(tracker.machine_id())) return false;
  if (tracker.free_slots(kind) <= 0) return false;

  // With the fabric on, an attempt is keyed by (job, kind, index, machine);
  // a speculative twin on the original's own machine would collide (and is
  // pointless anyway — it shares every bottleneck with the original).
  if (fabric_ != nullptr && tracker.is_running(job, kind, index)) return false;

  if (config_.max_speculative_per_node > 0) {
    // Cap concurrent clones of one node's originals: a deeply limping
    // machine can strand dozens of near-stalled attempts, and uncapped
    // speculation would flood the fleet's free slots with its duplicates.
    const cluster::MachineId origin = js.task_machine(kind, index);
    int clones = 0;
    for (JobId id : active_) {
      const JobState& other = *jobs_[id];
      for (TaskKind k : {TaskKind::kMap, TaskKind::kReduce}) {
        const std::size_t total =
            k == TaskKind::kMap ? other.num_maps() : other.num_reduces();
        for (TaskIndex i = 0; i < total; ++i) {
          if (other.status(k, i) != TaskStatus::kRunning) continue;
          if (!other.is_speculative(k, i)) continue;
          if (other.task_machine(k, i) == origin) ++clones;
        }
      }
    }
    if (clones >= config_.max_speculative_per_node) return false;
  }

  const TaskSpec& spec = js.task(kind, index);
  const cluster::MachineId m = tracker.machine_id();
  const Locality locality = kind == TaskKind::kReduce
                                ? Locality::kNodeLocal
                                : namenode_.locality(spec.block, m);
  js.mark_speculative(kind, index);
  launch(js, kind, index, tracker, locality);
  return true;
}

std::size_t JobTracker::preempt_attempt(JobId job, TaskKind kind,
                                        TaskIndex index) {
  if (!master_up_) return 0;
  JobState& js = job_mutable(job);
  if (js.failed() || js.complete()) return 0;
  if (js.status(kind, index) != TaskStatus::kRunning) return 0;

  std::size_t preempted = 0;
  cluster::MachineId last_machine = 0;
  for (auto& t : trackers_) {
    if (!t->is_running(job, kind, index)) continue;
    const cluster::MachineId m = t->machine_id();
    const auto report = t->preempt_task(job, kind, index);
    if (!report) continue;
    // An attempt still in its transfer phase held fabric flows; its abort
    // callback already fired, this drains the transfer bookkeeping.
    abort_transfers(TransferKey{job, kind, index, m});
    ++preempted;
    ++killed_attempts_;
    ++preempted_attempts_;
    last_machine = m;
    report_waste(*report, WasteReason::kPreempted);
    if (auditor_) {
      auditor_->record(audit::Record::kPreempt,
                       (static_cast<std::uint64_t>(job) << 32) ^
                           (static_cast<std::uint64_t>(index) << 1) ^
                           (kind == TaskKind::kReduce ? 1u : 0u));
    }
  }
  if (preempted == 0) return 0;
  // Every live attempt (original + any speculative twin) is now dead: the
  // task re-queues cleanly for a later slot, exactly like a node-loss requeue
  // (KILLED, not FAILED — no attempt budget charged).
  js.clear_speculative(kind, index);
  js.unclaim(kind, index, last_machine);
  return preempted;
}

void JobTracker::handle_completion(TaskReport report) {
  if (!accepts_reports(report.machine)) {
    // Master down or stale tracker epoch: the report lands in the orphan
    // buffer for deterministic resolution at the tracker's re-registration.
    ++fenced_completions_;
    const auto key = std::make_tuple(report.spec.job, report.spec.kind,
                                     report.spec.index, report.machine);
    orphans_[key] = Orphan{std::move(report), /*failed=*/false};
    return;
  }
  JobState& js = job_mutable(report.spec.job);
  if (js.failed()) return;  // late completion of an already-failed job
  // A speculative twin may already have completed this task; the losing
  // attempt's report is dropped.
  if (js.status(report.spec.kind, report.spec.index) == TaskStatus::kDone) {
    return;
  }
  if (config_.verify_task_output && report.spec.kind == TaskKind::kMap &&
      output_corruption_hook_ && output_corruption_hook_()) {
    // End-to-end output verification: a limping machine can *produce*
    // garbage, not just store it, and the output checksum is the last line
    // of defence before the result commits.  The tracker's finish event is
    // revoked (the auditor sees a revert, so the work never counts twice),
    // the attempt is charged like a failure, and the map re-executes.
    ++task_output_corruptions_;
    if (auditor_) {
      auditor_->record(audit::Record::kCorruptionDetected,
                       (static_cast<std::uint64_t>(report.spec.job) << 32) ^
                           static_cast<std::uint64_t>(report.spec.index));
      auditor_->on_task_transition(report.spec.job, /*is_map=*/true,
                                   report.spec.index,
                                   audit::TaskEvent::kRevertDone,
                                   report.machine);
    }
    charge_attempt_failure(std::move(report), WasteReason::kCorruption);
    return;
  }
  js.mark_done(report);
  // Kill the losing twin of a speculated task, wherever it still runs.
  if (js.is_speculative(report.spec.kind, report.spec.index)) {
    // The winner is already off its tracker's running set, so matching by
    // (job, kind, index) on every tracker only ever hits the loser.
    for (auto& t : trackers_) {
      t->cancel_task(report.spec.job, report.spec.kind, report.spec.index);
    }
  }
  // A completed map's output lives on the worker's local disk until the job
  // finishes — it dies (and must be re-run) if that node does.
  if (report.spec.kind == TaskKind::kMap) {
    tracker_states_[report.machine]
        .map_outputs[{report.spec.job, report.spec.index}] = report;
  }
  // A finished reduce writes its output back to HDFS; with the fabric on,
  // the replication pipeline's traffic contends with everything else.
  if (fabric_ != nullptr && report.spec.kind == TaskKind::kReduce) {
    start_replication_flows(js, report);
  }
  note_recovered(report.spec.job, report.spec.kind, report.spec.index);
  maybe_build_reduces(js);

  scheduler_.on_task_completed(report);
  if (admission_) admission_->note_task_duration(report.duration());
  if (report_listener_) report_listener_(report);

  if (js.complete()) {
    js.set_finish_time(sim_.now());
    ++jobs_completed_;
    active_.erase(std::remove(active_.begin(), active_.end(), js.id()),
                  active_.end());
    drop_job_bookkeeping(js.id());
    scheduler_.on_job_finished(js.id());
    if (admission_) admission_->note_job_finished(js.id(), js.spec(), sim_.now());
    if (auditor_) auditor_->record(audit::Record::kJobFinish, js.id());
    if (job_finished_listener_) job_finished_listener_(js);
  }
}

void JobTracker::report_waste(const TaskReport& report, WasteReason reason) {
  wasted_task_seconds_ += report.duration();
  if (waste_listener_) waste_listener_(report, reason);
}

bool JobTracker::running_elsewhere(JobId job, TaskKind kind,
                                   TaskIndex index) const {
  for (const auto& t : trackers_) {
    if (t->is_running(job, kind, index)) return true;
  }
  return false;
}

void JobTracker::record_crash_casualties(cluster::MachineId machine,
                                         std::vector<TaskReport> killed) {
  EANT_CHECK(machine < tracker_states_.size(), "unknown tracker crashed");
  TrackerState& ts = tracker_states_[machine];
  ts.crash_pending = true;
  killed_attempts_ += killed.size();
  for (auto& r : killed) {
    report_waste(r, WasteReason::kCrashKilled);
    ts.lost_attempts.push_back(std::move(r));
  }
  // The dying attempts' own fetches were already torn down (via their
  // abort_transfer callbacks); now deal with flows the dead node was serving.
  handle_network_casualties(machine);
}

void JobTracker::handle_task_failure(TaskReport report) {
  if (!accepts_reports(report.machine)) {
    ++fenced_completions_;
    const auto key = std::make_tuple(report.spec.job, report.spec.kind,
                                     report.spec.index, report.machine);
    orphans_[key] = Orphan{std::move(report), /*failed=*/true};
    return;
  }
  charge_attempt_failure(std::move(report), WasteReason::kAttemptFailed);
}

void JobTracker::charge_attempt_failure(TaskReport report, WasteReason reason) {
  const cluster::MachineId m = report.machine;
  EANT_CHECK(m < tracker_states_.size(), "failure from unknown tracker");
  TrackerState& ts = tracker_states_[m];
  ++failed_attempts_;
  report_waste(report, reason);
  scheduler_.on_task_failed(report.spec, m);

  ++ts.failures;
  if (config_.blacklist_threshold > 0 && !ts.blacklisted &&
      ts.failures >= config_.blacklist_threshold) {
    ts.blacklisted = true;
    scheduler_.on_tracker_lost(m);
    sim_.schedule_after(config_.blacklist_duration, [this, m] {
      TrackerState& s = tracker_states_[m];
      if (!s.blacklisted) return;  // counter decay already forgave it
      // The blacklist is durable state and its timers belong to the master
      // process: while it is down nothing forgives — the decay sweep
      // resumes after recovery and clears the entry eventually.
      if (!master_up_) return;
      s.blacklisted = false;
      s.failures = 0;
      maybe_rejoin(m);
    });
  }

  JobState& js = job_mutable(report.spec.job);
  const TaskKind kind = report.spec.kind;
  const TaskIndex index = report.spec.index;
  if (js.failed() || js.complete()) return;
  // A speculative winner may already have finished the task; the loser's
  // failure is then moot.
  if (js.status(kind, index) != TaskStatus::kRunning) return;

  const int attempts = js.record_attempt_failure(kind, index);
  if (attempts >= config_.max_attempts) {
    fail_job(js);
    return;
  }
  js.clear_speculative(kind, index);
  if (!running_elsewhere(report.spec.job, kind, index)) {
    js.unclaim(kind, index, m);  // re-queue for the next attempt
  }
  // else: the speculative twin is still running and carries the task alone.
}

void JobTracker::check_tracker_expiry() {
  if (config_.tracker_expiry_window <= 0.0) return;
  const Seconds now = sim_.now();
  for (cluster::MachineId m = 0; m < tracker_states_.size(); ++m) {
    TrackerState& ts = tracker_states_[m];
    if (ts.lost) continue;
    if (now - ts.last_heartbeat <= config_.tracker_expiry_window) continue;
    ts.lost = true;
    // Expiry declares the whole node gone — datanode included: its replicas
    // drop and under-replicated blocks queue for recovery.  (A fast restart
    // never reaches here and keeps its disk.)
    reclaim_lost_work(m, /*datanode_lost=*/true);
    scheduler_.on_tracker_lost(m);
  }
}

void JobTracker::reclaim_lost_work(cluster::MachineId machine,
                                   bool datanode_lost) {
  TrackerState& ts = tracker_states_[machine];
  ts.crash_pending = false;
  // Drop the dead datanode's replicas BEFORE reverting its maps, so the
  // re-seeded locality indices already exclude it.
  if (datanode_lost) handle_datanode_loss(machine);
  RecoveryRecord rec;
  rec.start = sim_.now();

  // Reports fenced while the master was down die with the node that produced
  // them — the outputs behind a buffered completion lived on its local disk.
  // Requeue the tasks; nothing is committable.
  for (auto it = orphans_.begin(); it != orphans_.end();) {
    if (std::get<3>(it->first) != machine) {
      ++it;
      continue;
    }
    const Orphan orphan = std::move(it->second);
    it = orphans_.erase(it);
    const TaskSpec& spec = orphan.report.spec;
    if (auditor_) {
      auditor_->on_task_transition(spec.job, spec.kind == TaskKind::kMap,
                                   spec.index, audit::TaskEvent::kOrphanRequeue,
                                   machine);
    }
    note_orphan_outcome(spec, machine, 3);
    ++orphans_requeued_;
    report_waste(orphan.report, WasteReason::kOrphaned);
    JobState& ojs = job_mutable(spec.job);
    if (ojs.failed() || ojs.complete()) continue;
    if (ojs.status(spec.kind, spec.index) != TaskStatus::kRunning) continue;
    ojs.clear_speculative(spec.kind, spec.index);
    if (running_elsewhere(spec.job, spec.kind, spec.index)) continue;
    ojs.unclaim(spec.kind, spec.index, machine);
    rec.outstanding.insert({spec.job, spec.kind, spec.index});
  }

  // Attempts that were running when the node died: back to Pending, unless a
  // speculative twin elsewhere already carries (or carried) the task.
  for (auto& r : ts.lost_attempts) {
    JobState& js = job_mutable(r.spec.job);
    if (js.failed() || js.complete()) continue;
    const TaskKind kind = r.spec.kind;
    const TaskIndex index = r.spec.index;
    if (js.status(kind, index) != TaskStatus::kRunning) continue;
    js.clear_speculative(kind, index);
    if (running_elsewhere(r.spec.job, kind, index)) continue;
    js.unclaim(kind, index, machine);
    rec.outstanding.insert({r.spec.job, kind, index});
  }
  ts.lost_attempts.clear();

  // Completed map outputs lived on the node's local disk: in-flight jobs
  // must re-run those maps (reduce outputs are HDFS-replicated and safe).
  for (auto& [key, r] : ts.map_outputs) {
    JobState& js = job_mutable(key.first);
    if (js.failed() || js.complete()) continue;
    if (js.status(TaskKind::kMap, key.second) != TaskStatus::kDone) continue;
    js.revert_done_map(key.second, r.duration(),
                       namenode_.locations(r.spec.block), machine);
    if (auditor_) {
      auditor_->on_task_transition(key.first, true, key.second,
                                   audit::TaskEvent::kRevertDone, machine);
    }
    ++lost_map_outputs_;
    report_waste(r, WasteReason::kLostMapOutput);
    rec.outstanding.insert({key.first, TaskKind::kMap, key.second});
  }
  ts.map_outputs.clear();

  if (!rec.outstanding.empty()) recoveries_.push_back(std::move(rec));
}

void JobTracker::note_recovered(JobId job, TaskKind kind, TaskIndex index) {
  for (auto it = recoveries_.begin(); it != recoveries_.end();) {
    it->outstanding.erase({job, kind, index});
    if (it->outstanding.empty()) {
      recovery_times_.push_back(sim_.now() - it->start);
      it = recoveries_.erase(it);
    } else {
      ++it;
    }
  }
}

void JobTracker::drop_job_bookkeeping(JobId job) {
  std::erase_if(fetch_state_,
                [job](const auto& kv) { return kv.first.first == job; });
  std::erase_if(reduce_fetch_strikes_,
                [job](const auto& kv) { return kv.first.first == job; });
  for (auto& ts : tracker_states_) {
    std::erase_if(ts.map_outputs,
                  [job](const auto& kv) { return kv.first.first == job; });
    std::erase_if(ts.lost_attempts,
                  [job](const TaskReport& r) { return r.spec.job == job; });
  }
  for (auto it = recoveries_.begin(); it != recoveries_.end();) {
    std::erase_if(it->outstanding,
                  [job](const auto& key) { return std::get<0>(key) == job; });
    if (it->outstanding.empty()) {
      it = recoveries_.erase(it);  // aborted by job retirement, not timed
    } else {
      ++it;
    }
  }
}

void JobTracker::fail_job(JobState& js) {
  js.set_failed();
  js.set_finish_time(sim_.now());
  ++jobs_failed_;
  active_.erase(std::remove(active_.begin(), active_.end(), js.id()),
                active_.end());
  // Kill the job's surviving attempts everywhere; their partial work is
  // wasted along with everything the job already completed.
  for (auto& t : trackers_) {
    if (!t->alive()) continue;
    for (auto& r : t->cancel_job(js.id())) {
      report_waste(r, WasteReason::kJobFailed);
    }
  }
  drop_job_bookkeeping(js.id());
  scheduler_.on_job_finished(js.id());
  if (admission_) admission_->note_job_finished(js.id(), js.spec(), sim_.now());
  if (auditor_) auditor_->record(audit::Record::kJobFinish, js.id());
  if (job_finished_listener_) job_finished_listener_(js);
}

bool JobTracker::tracker_available(cluster::MachineId id) const {
  EANT_CHECK(id < trackers_.size(), "tracker id out of range");
  const TrackerState& ts = tracker_states_[id];
  return trackers_[id]->alive() && !ts.lost && !ts.blacklisted &&
         !ts.quarantined;
}

bool JobTracker::tracker_lost(cluster::MachineId id) const {
  EANT_CHECK(id < tracker_states_.size(), "tracker id out of range");
  return tracker_states_[id].lost;
}

bool JobTracker::tracker_blacklisted(cluster::MachineId id) const {
  EANT_CHECK(id < tracker_states_.size(), "tracker id out of range");
  return tracker_states_[id].blacklisted;
}

bool JobTracker::tracker_quarantined(cluster::MachineId id) const {
  EANT_CHECK(id < tracker_states_.size(), "tracker id out of range");
  return tracker_states_[id].quarantined;
}

double JobTracker::node_health(cluster::MachineId id) const {
  EANT_CHECK(id < tracker_states_.size(), "tracker id out of range");
  return tracker_states_[id].health;
}

double JobTracker::running_progress(JobId job, TaskKind kind,
                                    TaskIndex index) const {
  double best = -1.0;
  for (const auto& t : trackers_) {
    const double p = t->running_progress(job, kind, index);
    if (p > best) best = p;
  }
  return best;
}

const JobState& JobTracker::job(JobId id) const {
  EANT_CHECK(id < jobs_.size(), "job id out of range");
  return *jobs_[id];
}

JobState& JobTracker::job_mutable(JobId id) {
  EANT_CHECK(id < jobs_.size(), "job id out of range");
  return *jobs_[id];
}

std::vector<JobId> JobTracker::runnable_jobs(TaskKind kind) const {
  std::vector<JobId> out;
  for (JobId id : active_) {
    if (jobs_[id]->has_pending(kind)) out.push_back(id);
  }
  return out;
}

int JobTracker::total_slots() const {
  return cluster_.total_map_slots() + cluster_.total_reduce_slots();
}

int JobTracker::total_free_slots(TaskKind kind) const {
  int total = 0;
  for (cluster::MachineId m = 0; m < trackers_.size(); ++m) {
    if (!tracker_available(m)) continue;
    total += trackers_[m]->free_slots(kind);
  }
  return total;
}

std::size_t JobTracker::total_pending(TaskKind kind) const {
  std::size_t total = 0;
  for (JobId id : active_) total += jobs_[id]->pending(kind);
  return total;
}

double JobTracker::capability_share(cluster::MachineId id) const {
  EANT_CHECK(id < capability_share_.size(),
             "capability queried before start_trackers()");
  return capability_share_[id];
}

}  // namespace eant::mr
