// Per-job runtime state tracked by the JobTracker: task specs, pending
// queues with per-machine locality indexes, progress counters and the
// per-machine assignment histogram used by Fig. 9, Tarazu and E-Ant's
// convergence tracking.

#pragma once

#include <array>
#include <deque>
#include <optional>
#include <vector>

#include "cluster/machine.h"
#include "common/locality.h"
#include "hdfs/namenode.h"
#include "mapreduce/task.h"
#include "workload/apps.h"
#include "workload/job_spec.h"

namespace eant::mr {

/// Lifecycle status of one task.
enum class TaskStatus { kPending, kRunning, kDone };

/// Mutable state of a submitted job.  Owned and mutated by the JobTracker;
/// schedulers receive const access.
class JobState {
 public:
  JobState(JobId id, workload::JobSpec spec, std::size_t num_machines);

  JobId id() const { return id_; }
  const workload::JobSpec& spec() const { return spec_; }
  const workload::AppProfile& profile() const {
    return workload::profile_for(spec_.app);
  }

  /// Builds one map task per HDFS block of the input file.
  void init_maps(const std::vector<hdfs::BlockId>& blocks,
                 const hdfs::NameNode& namenode);

  /// Installs reduce specs once the shuffle volume is known.
  void init_reduces(std::vector<TaskSpec> reduces);

  // --- pending-task queries -------------------------------------------------

  std::size_t num_maps() const { return maps_.size(); }
  std::size_t num_reduces() const { return reduces_.size(); }
  bool reduces_built() const { return reduces_built_; }

  std::size_t pending(TaskKind kind) const;
  std::size_t running(TaskKind kind) const;
  std::size_t done(TaskKind kind) const;

  bool has_pending(TaskKind kind) const { return pending(kind) > 0; }

  /// True iff a pending map's input block has a replica on `machine`.
  bool has_local_pending_map(cluster::MachineId machine) const;

  /// True iff a pending map's input block has a replica in `machine`'s rack
  /// (always false when the NameNode had a single flat rack).
  bool has_rack_local_pending_map(cluster::MachineId machine) const;

  /// Slots the job currently occupies (S_occ of Eq. 7).
  int occupied_slots() const;

  /// Picks a pending map for the machine, preferring node-local splits,
  /// then rack-local ones, then anything pending; the task transitions to
  /// Running.  Returns nothing when no map is pending.  `level_out` reports
  /// the locality of the returned split relative to the machine.
  std::optional<TaskIndex> claim_map(cluster::MachineId machine,
                                     Locality& level_out);

  /// Boolean-locality convenience wrapper (local == node-local).
  std::optional<TaskIndex> claim_map(cluster::MachineId machine,
                                     bool& local_out);

  /// Picks any pending reduce; the task transitions to Running.
  std::optional<TaskIndex> claim_reduce();

  /// Reverts a claimed-but-not-started task to Pending (used when a
  /// speculative assignment is abandoned).
  void unclaim(TaskKind kind, TaskIndex index, cluster::MachineId machine);

  // --- lifecycle transitions (JobTracker only) -------------------------------

  void mark_started(TaskKind kind, TaskIndex index, cluster::MachineId machine,
                    Seconds now);
  void mark_done(const TaskReport& report);

  /// Flags a running task as having a speculative duplicate attempt
  /// (LATE-style speculation).  Requires the task to be Running.
  void mark_speculative(TaskKind kind, TaskIndex index);
  bool is_speculative(TaskKind kind, TaskIndex index) const;

  /// Clears the speculative flag: one of the twin attempts died and the
  /// survivor continues as the task's only attempt.
  void clear_speculative(TaskKind kind, TaskIndex index);

  // --- fault tolerance ----------------------------------------------------------

  /// Counts one failed attempt of the task; returns the new total.  The
  /// JobTracker fails the job once this reaches max_attempts (Hadoop's
  /// mapred.*.max.attempts semantics).  Attempts killed by machine loss are
  /// *not* counted — Hadoop distinguishes KILLED from FAILED.
  int record_attempt_failure(TaskKind kind, TaskIndex index);
  int failed_attempts(TaskKind kind, TaskIndex index) const;

  /// Reverts a completed map whose output was lost with its machine's local
  /// disk: Done -> Pending, undoing the completion counters (`duration` and
  /// `machine` are the lost completion's).  `replicas` re-seeds the
  /// data-locality index for the re-execution.
  void revert_done_map(TaskIndex index, Seconds duration,
                       const std::vector<cluster::MachineId>& replicas,
                       cluster::MachineId machine);

  /// Marks the whole job failed (a task ran out of attempts).  A failed job
  /// never completes; the JobTracker retires it.
  void set_failed() { failed_ = true; }
  bool failed() const { return failed_; }

  bool all_maps_done() const { return done(TaskKind::kMap) == maps_.size(); }
  bool complete() const {
    return !failed_ && reduces_built_ && all_maps_done() &&
           done(TaskKind::kReduce) == reduces_.size();
  }

  // --- data access ------------------------------------------------------------

  const TaskSpec& task(TaskKind kind, TaskIndex index) const;
  TaskStatus status(TaskKind kind, TaskIndex index) const;

  /// Start time of a Running/Done task (its first attempt).
  Seconds task_start_time(TaskKind kind, TaskIndex index) const;

  /// Machine running the task's *original* attempt (a speculative twin's
  /// launch does not overwrite it) — the basis of the per-node speculation
  /// cap.  Requires the task to have started.
  cluster::MachineId task_machine(TaskKind kind, TaskIndex index) const;

  /// Mean duration of completed tasks of the kind (0 when none completed) —
  /// the straggler threshold basis for LATE-style speculation.
  Seconds mean_completed_duration(TaskKind kind) const;

  /// Expected total map-output volume (input x output ratio), used to size
  /// the shuffle when building reduces.
  Megabytes expected_map_output_mb() const;

  /// Tasks of the given kind started on each machine since submission
  /// (indexed by MachineId) — the Fig. 9 histogram.
  const std::vector<std::size_t>& started_per_machine(TaskKind kind) const;

  /// Completed tasks per machine.
  const std::vector<std::size_t>& completed_per_machine(TaskKind kind) const;

  // --- timing & phase accounting ---------------------------------------------

  Seconds submit_time() const { return spec_.submit_time; }
  Seconds finish_time() const { return finish_time_; }
  void set_finish_time(Seconds t) { finish_time_ = t; }
  Seconds completion_time() const { return finish_time_ - spec_.submit_time; }

  /// Accumulated task-seconds per phase (map work, shuffle transfer,
  /// reduce work) — the Fig. 1(d) breakdown inputs.
  double map_task_seconds() const { return map_task_seconds_; }
  double shuffle_seconds() const { return shuffle_seconds_; }
  double reduce_task_seconds() const { return reduce_task_seconds_; }

 private:
  struct KindState {
    std::deque<TaskIndex> pending_queue;
    std::vector<TaskStatus> status;
    std::size_t running = 0;
    std::size_t done = 0;
    std::vector<std::size_t> started_per_machine;
    std::vector<std::size_t> completed_per_machine;
    std::vector<bool> speculative;
    std::vector<Seconds> start_time;
    std::vector<cluster::MachineId> start_machine;
    std::vector<int> failed_attempts;
    double completed_duration_sum = 0.0;
  };

  KindState& state(TaskKind kind);
  const KindState& state(TaskKind kind) const;
  std::optional<TaskIndex> pop_pending(KindState& ks);

  JobId id_;
  workload::JobSpec spec_;
  std::size_t num_machines_;

  std::vector<TaskSpec> maps_;
  std::vector<TaskSpec> reduces_;
  bool reduces_built_ = false;

  KindState map_state_;
  KindState reduce_state_;

  /// Per-machine queues of map indices whose split is local to the machine
  /// (lazily cleaned: entries may be stale once a task leaves Pending).
  std::vector<std::deque<TaskIndex>> local_maps_;

  /// Per-rack queues of map indices with a replica in the rack; only built
  /// when the NameNode reports more than one rack (same lazy cleanup).
  std::vector<std::deque<TaskIndex>> rack_maps_;
  std::vector<std::size_t> machine_rack_;  ///< empty when racks are inactive

  bool failed_ = false;
  Seconds finish_time_ = 0.0;
  double map_task_seconds_ = 0.0;
  double shuffle_seconds_ = 0.0;
  double reduce_task_seconds_ = 0.0;
};

}  // namespace eant::mr
