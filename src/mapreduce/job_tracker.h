// JobTracker: master daemon of the simulated Hadoop cluster.
//
// Holds job state, reacts to TaskTracker heartbeats by asking the pluggable
// Scheduler which job should receive each free slot, computes task runtimes
// from machine characteristics (including remote-read and shuffle costs) and
// drives the job lifecycle (maps -> shuffle/reduce gating -> completion).

#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "hdfs/namenode.h"
#include "mapreduce/job.h"
#include "mapreduce/noise.h"
#include "mapreduce/scheduler.h"
#include "mapreduce/task_tracker.h"
#include "workload/job_spec.h"

namespace eant::mr {

/// Tunables of the MapReduce engine (defaults follow the paper's setup).
struct JobTrackerConfig {
  /// TaskTracker heartbeat / utilisation sampling period (Hadoop default).
  Seconds heartbeat_interval = 3.0;

  /// Effective per-reduce shuffle bandwidth (many small fetches over the
  /// shared network, far below NIC line rate).
  double shuffle_mbps = 20.0;

  /// Bandwidth of a map task's remote split read when scheduled non-locally
  /// (the Fig. 6 penalty).  Effective rate, well below NIC line speed:
  /// remote reads compete with shuffle traffic and the source disk.
  double remote_read_mbps = 10.0;

  /// Fraction of a job's maps that must finish before its reduces become
  /// schedulable.  1.0 = reduces wait for all maps (shuffle is folded into
  /// the reduce runtime).
  double reduce_slowstart = 1.0;

  /// Model CPU oversubscription: when aggregate demand exceeds the core
  /// count, new tasks run proportionally slower.
  bool contention_slowdown = true;

  /// Weight of the map-placement-skew penalty on shuffle time (the effect
  /// Tarazu's communication-aware balancing mitigates); 0 disables.
  double skew_penalty_weight = 0.5;

  /// Hadoop's default speculative execution (on in the paper's stock
  /// 1.2.1 setup): when a machine has a free slot and no pending work, a
  /// straggling attempt may be duplicated there; the first to finish wins.
  bool speculative_execution = true;

  /// A task is a straggler once its elapsed time exceeds this multiple of
  /// the mean completed-task duration of its job and kind.
  double speculative_straggler_beta = 1.5;

  /// When set, every map task is forced local (true) or remote (false),
  /// overriding real block placement — used by the Fig. 6 experiment to
  /// control the data-locality percentage directly.
  std::function<bool(const TaskSpec&, cluster::MachineId)> locality_override;
};

/// Master node: job admission, heartbeat-driven assignment, lifecycle.
class JobTracker {
 public:
  JobTracker(sim::Simulator& sim, cluster::Cluster& cluster,
             hdfs::NameNode& namenode, Scheduler& scheduler,
             NoiseModel& noise, JobTrackerConfig config = {});

  JobTracker(const JobTracker&) = delete;
  JobTracker& operator=(const JobTracker&) = delete;

  /// Creates one TaskTracker per cluster machine (slots from the machine
  /// type).  Must be called exactly once, before any submission.
  void start_trackers();

  TaskTracker& tracker(cluster::MachineId id);

  /// Submits a job immediately; returns its id.
  JobId submit_now(workload::JobSpec spec);

  /// Schedules submission at spec.submit_time (absolute sim time).
  void submit(workload::JobSpec spec);

  /// Schedules a whole workload.
  void submit_all(const std::vector<workload::JobSpec>& specs);

  // --- TaskTracker callbacks --------------------------------------------------

  void handle_heartbeat(TaskTracker& tracker);
  void handle_completion(TaskReport report);

  /// Launches a duplicate attempt of a Running task on the given tracker
  /// (LATE-style speculation).  The first attempt to finish wins; the twin
  /// is killed.  Returns false when the task is no longer running, already
  /// speculated, or the tracker has no free slot.
  bool start_speculative(JobId job, TaskKind kind, TaskIndex index,
                         TaskTracker& tracker);

  // --- queries (schedulers, experiments, tests) --------------------------------

  const JobState& job(JobId id) const;
  std::size_t num_jobs() const { return jobs_.size(); }

  /// Jobs that are submitted and not yet complete, in submission order.
  const std::vector<JobId>& active_jobs() const { return active_; }

  /// Active jobs with at least one pending task of the kind.
  std::vector<JobId> runnable_jobs(TaskKind kind) const;

  /// Total slots in the cluster (S_pool of Eq. 7, single-user system).
  int total_slots() const;

  /// Currently free slots of the kind, fleet-wide.
  int total_free_slots(TaskKind kind) const;

  /// Pending tasks of the kind across active jobs (reduces only counted
  /// once schedulable).
  std::size_t total_pending(TaskKind kind) const;

  /// Fraction of total cluster compute capability (cores x speed) on the
  /// machine — Tarazu's balancing target.
  double capability_share(cluster::MachineId id) const;

  bool all_done() const {
    return jobs_completed_ == jobs_expected_ && jobs_expected_ > 0;
  }
  std::size_t jobs_completed() const { return jobs_completed_; }

  cluster::Cluster& cluster() { return cluster_; }
  const hdfs::NameNode& namenode() const { return namenode_; }
  sim::Simulator& simulator() { return sim_; }
  const JobTrackerConfig& config() const { return config_; }
  Scheduler& scheduler() { return scheduler_; }

  /// Invoked for every completed task (after job-state update).
  void set_report_listener(std::function<void(const TaskReport&)> fn) {
    report_listener_ = std::move(fn);
  }

  /// Invoked when a job finishes.
  void set_job_finished_listener(std::function<void(const JobState&)> fn) {
    job_finished_listener_ = std::move(fn);
  }

 private:
  JobState& job_mutable(JobId id);
  void try_assign(TaskTracker& tracker, TaskKind kind);
  void try_speculate(TaskTracker& tracker, TaskKind kind);
  Seconds base_duration(const TaskSpec& spec, const cluster::Machine& machine,
                        bool local) const;
  Seconds compute_duration(const JobState& js, const TaskSpec& spec,
                           const cluster::Machine& machine, bool local);
  void maybe_build_reduces(JobState& js);
  double shuffle_skew_penalty(const JobState& js) const;

  sim::Simulator& sim_;
  cluster::Cluster& cluster_;
  hdfs::NameNode& namenode_;
  Scheduler& scheduler_;
  NoiseModel& noise_;
  JobTrackerConfig config_;

  std::vector<std::unique_ptr<TaskTracker>> trackers_;
  std::vector<std::unique_ptr<JobState>> jobs_;
  std::vector<JobId> active_;
  std::vector<double> capability_share_;
  std::size_t jobs_expected_ = 0;
  std::size_t jobs_completed_ = 0;

  std::function<void(const TaskReport&)> report_listener_;
  std::function<void(const JobState&)> job_finished_listener_;
};

}  // namespace eant::mr
