// JobTracker: master daemon of the simulated Hadoop cluster.
//
// Holds job state, reacts to TaskTracker heartbeats by asking the pluggable
// Scheduler which job should receive each free slot, computes task runtimes
// from machine characteristics (including remote-read and shuffle costs) and
// drives the job lifecycle (maps -> shuffle/reduce gating -> completion).
//
// Fault tolerance follows Hadoop 1.x: a crashed tracker is detected only by
// heartbeat silence (tracker expiry); its running attempts AND the completed
// map outputs of in-flight jobs are re-queued, because map outputs live on
// the dead node's local disk while reduce outputs are HDFS-replicated.
// Transient attempt failures count toward a per-task max_attempts budget
// (exhaustion fails the job) and a per-tracker blacklist threshold.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <tuple>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "common/locality.h"
#include "hdfs/namenode.h"
#include "mapreduce/admission.h"
#include "mapreduce/job.h"
#include "mapreduce/noise.h"
#include "mapreduce/scheduler.h"
#include "mapreduce/task_tracker.h"
#include "net/fabric.h"
#include "workload/job_spec.h"

namespace eant::audit {
class InvariantAuditor;
}

namespace eant::mr {

/// Tunables of the MapReduce engine (defaults follow the paper's setup).
struct JobTrackerConfig {
  /// TaskTracker heartbeat / utilisation sampling period (Hadoop default).
  Seconds heartbeat_interval = 3.0;

  /// Effective per-reduce shuffle bandwidth (many small fetches over the
  /// shared network, far below NIC line rate).
  ///
  /// LEGACY FALLBACK: when no network fabric is attached (RunConfig without
  /// a topology), shuffle time is this fixed scalar regardless of how many
  /// transfers share the wire.  With a fabric attached it instead becomes
  /// the per-flow application-level rate cap, so link contention — not this
  /// constant — determines the actual shuffle time.
  double shuffle_mbps = 20.0;

  /// Bandwidth of a map task's remote split read when scheduled non-locally
  /// (the Fig. 6 penalty).  Effective rate, well below NIC line speed:
  /// remote reads compete with shuffle traffic and the source disk.
  ///
  /// LEGACY FALLBACK: same dual role as shuffle_mbps — fixed scalar cost
  /// without a fabric, per-flow rate cap with one.
  double remote_read_mbps = 10.0;

  /// Per-flow rate cap of HDFS replication-pipeline writes of reduce
  /// output.  Only used when a fabric is attached (the legacy scalar model
  /// never charged for replication traffic).
  double replication_write_mbps = 40.0;

  /// Fraction of a job's maps that must finish before its reduces become
  /// schedulable.  1.0 = reduces wait for all maps (shuffle is folded into
  /// the reduce runtime).
  double reduce_slowstart = 1.0;

  /// Model CPU oversubscription: when aggregate demand exceeds the core
  /// count, new tasks run proportionally slower.
  bool contention_slowdown = true;

  /// Weight of the map-placement-skew penalty on shuffle time (the effect
  /// Tarazu's communication-aware balancing mitigates); 0 disables.
  double skew_penalty_weight = 0.5;

  /// Hadoop's default speculative execution (on in the paper's stock
  /// 1.2.1 setup): when a machine has a free slot and no pending work, a
  /// straggling attempt may be duplicated there; the first to finish wins.
  bool speculative_execution = true;

  /// A task is a straggler once its elapsed time exceeds this multiple of
  /// the mean completed-task duration of its job and kind.
  double speculative_straggler_beta = 1.5;

  /// Hardened speculation: rank straggler candidates by estimated remaining
  /// time derived from their observed progress rate (LATE's heuristic)
  /// instead of raw elapsed-over-mean, and require the speculating machine
  /// to beat that remaining time.  Off by default — flipping it changes
  /// scheduling decisions and therefore digests.
  bool speculative_progress_ranking = false;

  /// Cap on concurrent speculative duplicates whose *original* attempt runs
  /// on the same node — stops a limping machine from eating the fleet's
  /// slots with clones before quarantine confirms it.  0 = unlimited
  /// (stock Hadoop behaviour).
  int max_speculative_per_node = 0;

  /// When set, every map task is forced local (true) or remote (false),
  /// overriding real block placement — used by the Fig. 6 experiment to
  /// control the data-locality percentage directly.
  std::function<bool(const TaskSpec&, cluster::MachineId)> locality_override;

  // --- fault tolerance --------------------------------------------------------

  /// A tracker that has not heartbeat for this long is declared lost and its
  /// work re-queued (Hadoop's mapred.tasktracker.expiry.interval, 10 min).
  /// 0 disables loss detection.
  Seconds tracker_expiry_window = 600.0;

  /// A task whose attempt fails this many times fails its whole job
  /// (Hadoop's mapred.map/reduce.max.attempts).  Attempts killed by node
  /// loss do not count — Hadoop distinguishes KILLED from FAILED.
  int max_attempts = 4;

  /// A tracker accumulating this many attempt failures is blacklisted —
  /// no new work until `blacklist_duration` passes.  0 disables.
  int blacklist_threshold = 4;

  /// How long a blacklisted tracker sits out before its failure count is
  /// forgiven.
  Seconds blacklist_duration = 3600.0;

  /// Every this many seconds each tracker's attempt-failure counter halves
  /// (Hadoop-style fault forgiveness); a blacklisted tracker whose decayed
  /// count drops below the threshold re-earns work without waiting out the
  /// full blacklist_duration.  0 disables decay (pre-decay behaviour:
  /// blacklisting is permanent until the duration lapses).
  Seconds blacklist_decay_window = 600.0;

  // --- fail-slow (gray failure) detection --------------------------------------

  /// EWMA weight of each heartbeat's mean progress-rate sample in the
  /// per-node health score (1.0 = healthy full-speed progress).
  double health_ewma_alpha = 0.25;

  /// A node whose health EWMA drops below this is quarantined: it keeps
  /// heartbeating (it is NOT dead) but receives no new work until its health
  /// recovers — the gray-failure analogue of blacklisting.  0 disables
  /// fail-slow detection entirely.  Safe to leave on: a healthy machine's
  /// progress rate is exactly 1.0, so the score never moves fault-free.
  double quarantine_threshold = 0.55;

  /// A quarantined node re-earns work once its health climbs back above
  /// this (hysteresis above the entry threshold).
  double health_recovery_threshold = 0.75;

  /// Heartbeats carrying progress samples required before the health score
  /// is trusted enough to quarantine (guards against one noisy window).
  int health_min_samples = 4;

  /// Every this many seconds a quarantined node's health heals halfway back
  /// toward 1.0 (mirrors blacklist decay) so a repaired limper is retried
  /// even when it holds no tasks to prove itself with.  0 disables decay.
  Seconds quarantine_decay_window = 600.0;

  // --- degraded-mode fault tolerance ------------------------------------------

  /// After this many failed fetches of one source's map outputs (per job)
  /// the JobTracker declares those outputs lost and re-executes the maps —
  /// Hadoop's fetch-failure mechanism (TaskCompletionEvent OBSOLETE).
  /// 0 disables (failed fetches then retry forever).
  int fetch_failure_threshold = 3;

  /// Base delay before a failed fetch is retried; doubles per consecutive
  /// failure from the same source (exponential backoff), capped at
  /// fetch_retry_backoff_max.
  Seconds fetch_retry_backoff = 10.0;
  Seconds fetch_retry_backoff_max = 160.0;

  /// A reduce task that accumulates this many failed fetches without ever
  /// completing a shuffle FAILS its attempt (burning budget) instead of
  /// being killed and relaunched for free — Hadoop's shuffle-retry suicide.
  /// Without it a pathological fetch-failure regime livelocks: attempts are
  /// KILLED (free) and re-shuffled forever while map outputs thrash between
  /// declared-lost and re-executed.  The strike counter survives kills and
  /// relaunches of the same reduce and resets only when a shuffle lands or
  /// an attempt is charged, so four hopeless shuffles end the job loudly.
  /// 0 disables the limit.
  int reduce_fetch_abort_limit = 12;

  /// Concurrent block re-replication streams the NameNode may keep in
  /// flight (Hadoop's dfs.max-repl-streams analogue).
  int max_replication_streams = 4;

  /// Per-flow rate cap of block re-replication traffic (same scale as the
  /// other application-level caps).
  double rereplication_mbps = 40.0;

  // --- control-plane fault tolerance -------------------------------------------

  /// Period of the JobTracker's edit-log checkpoint of its in-flight attempt
  /// table.  Job submissions and task completions are synchronously durable
  /// regardless; only knowledge of *running* attempts is bounded by the last
  /// committed checkpoint.  0 (the default) disables checkpointing entirely —
  /// a restarted master then recovers with full amnesia over in-flight
  /// attempts, and, crucially, the fault-free event stream is bit-identical
  /// to the pre-failover engine.
  Seconds checkpoint_interval = 0.0;

  /// Seconds between starting a checkpoint write and it becoming durable.  A
  /// master crash mid-write falls back to the previous committed checkpoint.
  Seconds checkpoint_write_cost = 5.0;

  /// Window over which the fleet's re-registration is spread after a master
  /// restart (in machine-id order) — the throttle that keeps the restarted
  /// master from absorbing every tracker's status report in one instant.
  /// Heartbeats arriving before a tracker's gate are fenced as stale.
  Seconds reregistration_window = 30.0;

  // --- data integrity -----------------------------------------------------------

  /// Period of the background replica scrubber (Hadoop's DataBlockScanner).
  /// Each tick scans up to scrub_mbps * scrub_period megabytes of replicas,
  /// resuming from a persistent cursor in block order, and feeds every
  /// checksum mismatch it confirms into the re-replication queue.  0 (the
  /// default) disables scrubbing: no event is scheduled and the event stream
  /// is bit-identical to the pre-scrubber engine.
  Seconds scrub_period = 0.0;

  /// Byte budget of one scrub tick, expressed as a rate (Hadoop's
  /// dfs.datanode.scan.period throttling analogue).  Replicas are scanned
  /// whole, so a tick may overshoot by at most one block.
  double scrub_mbps = 20.0;

  /// End-to-end verification of map output: re-check the output checksum
  /// when a map attempt reports completion, so corruption *produced* by a
  /// limping machine (not just stored corruption) is caught before the
  /// result commits.  A corrupt output is charged like an attempt failure
  /// and the map re-executes.  Needs the Run harness's task-output
  /// corruption hook; off by default.
  bool verify_task_output = false;

  // --- overload protection ------------------------------------------------------

  /// Admission control, backpressure and brownout (admission.h).  Inert by
  /// default: with enabled = false no detector events are scheduled, no RNG
  /// is consumed and every submission is admitted — digests are bit-identical
  /// to the pre-admission engine.
  AdmissionConfig admission;

  // --- scheduler-cost attribution ----------------------------------------------

  /// Measure wall-clock time spent inside Scheduler::select_job (the
  /// per-heartbeat scheduler-work attribution emitted by bench/perf_smoke).
  /// Off by default: the flag never changes simulation results, but the
  /// timing calls cost a few nanoseconds per slot offer.
  bool measure_scheduler_time = false;
};

/// Why a piece of completed-or-partial work was thrown away — tags the
/// wasted-work reports delivered to the waste listener.
enum class WasteReason {
  kCrashKilled,    ///< attempt died with its machine
  kAttemptFailed,  ///< transient task failure
  kLostMapOutput,  ///< completed map re-run because its output died with a node
  kJobFailed,      ///< attempts killed when their job ran out of retries
  kFetchFailed,    ///< completed map re-run because its output was unreachable
  kOrphaned,       ///< work discarded because the restarted master forgot it
  kPreempted,      ///< attempt killed to rebalance tenant slot shares
  kCorruption,     ///< work redone because its input or output was corrupt
};

/// Master node: job admission, heartbeat-driven assignment, lifecycle.
class JobTracker {
 public:
  JobTracker(sim::Simulator& sim, cluster::Cluster& cluster,
             hdfs::NameNode& namenode, Scheduler& scheduler,
             NoiseModel& noise, JobTrackerConfig config = {});

  ~JobTracker();

  JobTracker(const JobTracker&) = delete;
  JobTracker& operator=(const JobTracker&) = delete;

  /// Creates one TaskTracker per cluster machine (slots from the machine
  /// type).  Must be called exactly once, before any submission.
  void start_trackers();

  /// Routes shuffle fetches, remote split reads and output replication
  /// through the network fabric instead of the scalar-bandwidth formulas.
  /// The fabric must outlive the JobTracker and agree on the machine count.
  void attach_fabric(net::Fabric& fabric);

  /// Non-null once attach_fabric() was called.
  net::Fabric* fabric() { return fabric_; }

  /// True iff a task launch actually used the scalar-bandwidth fallback
  /// (i.e. modelled network traffic without a fabric attached).
  bool used_legacy_network() const { return legacy_network_noted_; }

  /// Flows restarted from a different source because theirs crashed.
  std::size_t retransferred_flows() const { return retransferred_flows_; }

  TaskTracker& tracker(cluster::MachineId id);

  /// Submits a job immediately; returns its id.
  JobId submit_now(workload::JobSpec spec);

  /// Schedules submission at spec.submit_time (absolute sim time).
  void submit(workload::JobSpec spec);

  /// Schedules a whole workload.
  void submit_all(const std::vector<workload::JobSpec>& specs);

  // --- TaskTracker callbacks --------------------------------------------------

  void handle_heartbeat(TaskTracker& tracker);
  void handle_completion(TaskReport report);

  /// True iff a report from this tracker would be applied live rather than
  /// fenced into the orphan buffer (master up + current registration epoch).
  /// The TaskTracker consults this to decide whether its completion/failure
  /// audit event fires now or at orphan resolution.
  bool accepts_reports(cluster::MachineId machine) const {
    return master_up_ && tracker_epoch_[machine] == master_epoch_;
  }

  /// A running attempt died of a transient fault (injected via the attempt
  /// fault hook).  Counts toward the task's max_attempts and the tracker's
  /// blacklist threshold; the task re-queues unless its job runs dry.
  void handle_task_failure(TaskReport report);

  /// Called by a crashing TaskTracker with the partial-work reports of its
  /// killed attempts.  Accounting + deferred-requeue bookkeeping only: the
  /// protocol reaction (re-queueing, scheduler notification) waits until the
  /// loss is *detected* — heartbeat expiry or the tracker's rejoin —
  /// mirroring real Hadoop, where a dead node is just silence.
  void record_crash_casualties(cluster::MachineId machine,
                               std::vector<TaskReport> killed);

  /// Launches a duplicate attempt of a Running task on the given tracker
  /// (LATE-style speculation).  The first attempt to finish wins; the twin
  /// is killed.  Returns false when the task is no longer running, already
  /// speculated, or the tracker has no free slot.
  bool start_speculative(JobId job, TaskKind kind, TaskIndex index,
                         TaskTracker& tracker);

  /// Scheduler-requested preemption of a Running task: every live attempt
  /// (original + speculative twin) is killed — KILLED, not FAILED, so no
  /// attempt budget is charged — its partial work reported as
  /// WasteReason::kPreempted, and the task re-queued for a later slot (the
  /// PR-1 re-queue machinery).  Returns the number of attempts killed
  /// (0 when the task was not running or the master is down).
  std::size_t preempt_attempt(JobId job, TaskKind kind, TaskIndex index);

  // --- queries (schedulers, experiments, tests) --------------------------------

  const JobState& job(JobId id) const;
  std::size_t num_jobs() const { return jobs_.size(); }

  /// Jobs that are submitted and not yet complete, in submission order.
  const std::vector<JobId>& active_jobs() const { return active_; }

  /// Active jobs with at least one pending task of the kind.
  std::vector<JobId> runnable_jobs(TaskKind kind) const;

  /// Total slots in the cluster (S_pool of Eq. 7, single-user system).
  int total_slots() const;

  /// Currently free slots of the kind, fleet-wide.
  int total_free_slots(TaskKind kind) const;

  /// Pending tasks of the kind across active jobs (reduces only counted
  /// once schedulable).
  std::size_t total_pending(TaskKind kind) const;

  /// Fraction of total cluster compute capability (cores x speed) on the
  /// machine — Tarazu's balancing target.
  double capability_share(cluster::MachineId id) const;

  /// Every expected job resolved.  A job awaiting a backpressure retry
  /// keeps jobs_expected_ above the resolved count, so the run waits for
  /// the retry to settle; a workload rejected-and-dropped in its entirety
  /// still terminates (the dropped count keeps the sum positive).
  bool all_done() const {
    return jobs_completed_ + jobs_failed_ == jobs_expected_ &&
           jobs_expected_ + jobs_dropped_ > 0;
  }
  std::size_t jobs_completed() const { return jobs_completed_; }
  std::size_t jobs_failed() const { return jobs_failed_; }

  /// Jobs rejected by admission control and dropped after exhausting their
  /// backoff retries (they never received a JobId).
  std::size_t jobs_dropped() const { return jobs_dropped_; }

  // --- overload protection ------------------------------------------------------

  /// The admission engine; null unless JobTrackerConfig::admission.enabled.
  const AdmissionControl* admission() const { return admission_.get(); }

  /// Current detector state (kNormal when the subsystem is disabled).
  OverloadState overload_state() const {
    return admission_ ? admission_->state() : OverloadState::kNormal;
  }

  /// Closes the admission ledgers and runs their conservation checks (no-op
  /// when disabled; idempotent).  Called by the Run harness before reading
  /// metrics.
  void finalize_admission();

  // --- fault-tolerance queries ------------------------------------------------

  /// True iff the machine's tracker can receive work: alive, not declared
  /// lost, not blacklisted.  Schedulers weighing "is a better machine free"
  /// must consult this, not just free_slots().
  bool tracker_available(cluster::MachineId id) const;

  bool tracker_lost(cluster::MachineId id) const;
  bool tracker_blacklisted(cluster::MachineId id) const;

  /// True iff the node is quarantined as a suspected limper (fail-slow).
  bool tracker_quarantined(cluster::MachineId id) const;

  /// The node's progress-rate health EWMA (exactly 1.0 when never degraded).
  double node_health(cluster::MachineId id) const;

  /// Times any node entered quarantine.
  std::size_t quarantine_episodes() const { return quarantine_episodes_; }

  /// Progress fraction of the task's live attempt in [0, 1] (max over its
  /// attempts when a speculative twin runs); -1 when no tracker runs it.
  double running_progress(JobId job, TaskKind kind, TaskIndex index) const;

  /// Attempts killed by machine crashes / transient failures so far.
  std::size_t killed_attempts() const { return killed_attempts_; }
  std::size_t failed_attempts() const { return failed_attempts_; }

  /// Attempts killed by scheduler preemption (subset of killed_attempts).
  std::size_t preempted_attempts() const { return preempted_attempts_; }

  // --- scheduler-cost attribution ----------------------------------------------

  /// Heartbeats processed live (fenced ones excluded).
  std::uint64_t heartbeats() const { return heartbeats_; }

  /// Scheduler::select_job invocations (one per slot offer).
  std::uint64_t select_job_calls() const { return select_job_calls_; }

  /// Wall-clock seconds spent inside Scheduler::select_job; 0 unless
  /// JobTrackerConfig::measure_scheduler_time is set.
  double select_job_wall_seconds() const { return select_job_wall_seconds_; }

  /// Completed maps re-executed because their output died with a node.
  std::size_t lost_map_outputs() const { return lost_map_outputs_; }

  // --- degraded-mode queries --------------------------------------------------

  /// Shuffle fetches that failed mid-flight (link fault, partition, or
  /// injected transient fetch error).
  std::size_t fetch_failures() const { return fetch_failures_; }

  /// Completed maps re-executed via the fetch-failure mechanism (their
  /// output was unreachable fetch_failure_threshold times).
  std::size_t fetch_reexecuted_maps() const { return fetch_reexecuted_maps_; }

  /// Reduce attempts that FAILED after exhausting their per-attempt fetch
  /// budget (reduce_fetch_abort_limit) — the escape hatch that turns a
  /// hopeless shuffle into a loud job failure instead of a livelock.
  std::size_t fetch_aborted_attempts() const { return fetch_aborted_attempts_; }

  /// Blocks restored to full replication after a datanode loss.
  std::size_t rereplicated_blocks() const { return rereplicated_blocks_; }

  /// Bytes moved by re-replication traffic.
  Megabytes rereplication_mb() const { return rereplication_mb_; }

  /// Blocks whose last replica died (each one recorded, never silent).
  std::size_t data_loss_events() const { return data_loss_events_; }

  /// Re-replication streams currently in flight (experiments drain this to
  /// zero before reading HDFS invariants).
  int rereplication_active() const { return rerep_active_; }

  // --- data integrity ----------------------------------------------------------

  /// Silently corrupts one replica — the FaultInjector's corruption handler.
  /// `block` < 0 means the strike hit the machine and the handler picks the
  /// replica: `pick` in [0, 1) indexes the machine's blocks in ascending
  /// block-id order (scripted machine strikes pass 0.0 and take the first).
  /// Nothing fails here; the damage is found by a checksummed read, by the
  /// scrubber, or never.
  void inject_corruption(cluster::MachineId machine, std::int64_t block,
                         double pick);

  /// Consulted once per completed shuffle-fetch flow; true means the fetched
  /// payload fails checksum verification (the FaultInjector plugs its
  /// shuffle-corruption draw in here).
  void set_shuffle_corruption_hook(std::function<bool()> fn) {
    shuffle_corruption_hook_ = std::move(fn);
  }

  /// Consulted once per accepted map completion when
  /// JobTrackerConfig::verify_task_output is set; true means the attempt
  /// produced a corrupt output and must re-execute.
  void set_task_output_corruption_hook(std::function<bool()> fn) {
    output_corruption_hook_ = std::move(fn);
  }

  /// Closes the corruption ledger and checks its conservation law: every
  /// detection must be repaired, lost loudly, or still queued for repair,
  /// and every undetected injection must still carry its latent checksum
  /// marker.  Idempotent; called by the Run harness before reading metrics.
  void finalize_corruption();

  /// Replica corruptions injected (strikes on a live, still-clean replica).
  std::size_t corruptions_injected() const { return corruptions_injected_; }

  /// Corrupt replicas confirmed by a checksummed read or the scrubber.
  std::size_t corruptions_detected() const { return corruptions_detected_; }

  /// Confirmed-corrupt replicas restored through the re-replication queue.
  std::size_t corruptions_repaired() const { return corruptions_repaired_; }

  /// Detections that ended in corrupt-block loss (no clean replica left, or
  /// the block died before its repair could run).
  std::size_t corruptions_lost() const { return corruptions_lost_; }

  /// Injected corruptions never detected (set by finalize_corruption).
  std::size_t corruptions_latent() const { return corruptions_latent_; }

  /// Reads that failed over past at least one corrupt replica.
  std::size_t corrupt_read_failovers() const {
    return corrupt_read_failovers_;
  }

  /// Shuffle fetches whose payload failed verification (each one also counts
  /// as a fetch failure).
  std::size_t shuffle_corruptions() const { return shuffle_corruptions_; }

  /// Map completions rejected by end-to-end output verification.
  std::size_t task_output_corruptions() const {
    return task_output_corruptions_;
  }

  /// Bytes scanned by the background scrubber.
  Megabytes scrubbed_mb() const { return scrubbed_mb_; }

  /// Scrub ticks that actually scanned (master + NameNode up, not browned
  /// out).
  std::size_t scrub_passes() const { return scrub_passes_; }

  /// Seconds from injection to detection, one entry per detected corruption.
  const std::vector<Seconds>& corruption_detection_latencies() const {
    return corruption_detection_latencies_;
  }

  // --- control-plane fault tolerance ------------------------------------------

  /// JobTracker process death: the control plane stops — heartbeats,
  /// completion reports and failure reports are fenced (buffered as
  /// orphans), the expiry sweep and the forgiveness decays freeze, no work
  /// is assigned — while the data plane (running attempts, in-flight
  /// transfers) continues untouched.  Wired to the FaultInjector's master
  /// fault stream via the Run harness.
  void crash_master();

  /// JobTracker restart: replays the durable edit log (job + completion
  /// state, plus the in-flight attempt table up to the last committed
  /// checkpoint), advances the master epoch so stale reports stay fenced,
  /// spreads tracker re-registration over reregistration_window, resets the
  /// in-memory health/quarantine view (the blacklist, derived from durable
  /// job history, persists) and hands the scheduler its
  /// on_master_recovered() hook.
  void recover_master();

  /// NameNode process death: new task assignment and the re-replication pump
  /// pause (placements and split locations need the NameNode), datanode
  /// death/rejoin marks are buffered, and the fsimage snapshot is pinned.
  /// Reads of existing block locations stay served (they are ground truth).
  void crash_namenode();

  /// NameNode restart: restores the pinned fsimage snapshot, replays the
  /// buffered datanode marks in arrival order, rebuilds the
  /// under-replication queue and restarts the pump.
  void recover_namenode();

  /// True while the JobTracker process is up (the scheduler runs inside it).
  bool master_up() const { return master_up_; }
  bool namenode_up() const { return namenode_up_; }

  /// Fencing epoch, bumped at every master recovery.  Reports from trackers
  /// registered under an older epoch are buffered until re-registration.
  std::uint64_t master_epoch() const { return master_epoch_; }

  /// Durable coverage time of the last committed checkpoint; -1 = none.  An
  /// in-flight attempt survives failover iff it launched at or before this.
  Seconds checkpoint_coverage() const { return checkpoint_coverage_; }

  /// Control-plane (JobTracker + NameNode) process deaths observed.
  std::size_t master_crashes() const { return master_crashes_; }
  std::size_t checkpoints_written() const { return checkpoints_written_; }

  /// Recoveries that replayed a non-empty checkpointed attempt table.
  std::size_t checkpoint_replays() const { return checkpoint_replays_; }

  /// Heartbeats rejected for a down master, a stale epoch or a closed
  /// re-registration gate.
  std::size_t fenced_heartbeats() const { return fenced_heartbeats_; }

  /// Completion/failure reports buffered as orphans instead of applied.
  std::size_t fenced_completions() const { return fenced_completions_; }

  /// Orphaned attempts committed from checkpoint coverage at re-registration.
  std::size_t orphans_committed() const { return orphans_committed_; }

  /// Orphaned attempts discarded and requeued (uncovered, or their node
  /// died before re-registering).
  std::size_t orphans_requeued() const { return orphans_requeued_; }

  /// Order-independent digest over every orphan resolution this run:
  /// (job, kind, index, machine) -> outcome sequence, no timestamps.  Two
  /// runs resolving the same orphans the same way hash identically even if
  /// re-registration order differs (the storm-throttle invariance test).
  std::uint64_t orphan_resolution_digest() const;

  /// Task-seconds of work thrown away (killed, failed and re-run attempts).
  double wasted_task_seconds() const { return wasted_task_seconds_; }

  /// One entry per node-loss episode that orphaned work: seconds from loss
  /// detection until every re-queued task had completed again.
  const std::vector<Seconds>& recovery_times() const {
    return recovery_times_;
  }

  cluster::Cluster& cluster() { return cluster_; }
  const hdfs::NameNode& namenode() const { return namenode_; }
  sim::Simulator& simulator() { return sim_; }
  const JobTrackerConfig& config() const { return config_; }
  Scheduler& scheduler() { return scheduler_; }

  /// Invoked for every completed task (after job-state update).
  void set_report_listener(std::function<void(const TaskReport&)> fn) {
    report_listener_ = std::move(fn);
  }

  /// Invoked when a job finishes (successfully or failed — check
  /// JobState::failed()).
  void set_job_finished_listener(std::function<void(const JobState&)> fn) {
    job_finished_listener_ = std::move(fn);
  }

  /// Consulted once per attempt launch; returning a value in (0, 1) makes
  /// the attempt fail after that fraction of its duration (the FaultInjector
  /// plugs its transient-failure draw in here).
  void set_attempt_fault_hook(
      std::function<std::optional<double>(const TaskSpec&, cluster::MachineId)>
          fn) {
    attempt_fault_hook_ = std::move(fn);
  }

  /// Invoked for every piece of wasted work, tagged with why it was wasted.
  void set_waste_listener(std::function<void(const TaskReport&, WasteReason)> fn) {
    waste_listener_ = std::move(fn);
  }

  /// Consulted once per shuffle-fetch flow launch; returning a value in
  /// (0, 1) makes the fetch fail after that fraction of its solo transfer
  /// time (the FaultInjector plugs its fetch-failure draw in here).
  void set_fetch_fault_hook(
      std::function<std::optional<double>(JobId, cluster::MachineId)> fn) {
    fetch_fault_hook_ = std::move(fn);
  }

  /// Attaches (or, with nullptr, detaches) the invariant auditor.  The
  /// JobTracker and its TaskTrackers feed it every task-attempt lifecycle
  /// event; it must outlive the JobTracker or be detached first.
  void set_auditor(audit::InvariantAuditor* auditor) { auditor_ = auditor; }
  audit::InvariantAuditor* auditor() { return auditor_; }

 private:
  /// Per-tracker master-side bookkeeping (heartbeat freshness, loss state,
  /// blacklist, and the work that dies if the node does).
  struct TrackerState {
    Seconds last_heartbeat = 0.0;
    bool lost = false;
    bool blacklisted = false;
    /// Suspected limper: healthy heartbeat but confirmed-slow progress.
    bool quarantined = false;
    /// Progress-rate health EWMA (1.0 = full speed) and sample count.
    double health = 1.0;
    int health_samples = 0;
    /// The node crashed and its casualties await detection + re-queue.
    bool crash_pending = false;
    int failures = 0;
    /// Attempts killed by a crash, awaiting detection + re-queue.
    std::vector<TaskReport> lost_attempts;
    /// Completed map outputs on the node's local disk, lost with it.
    std::map<std::pair<JobId, TaskIndex>, TaskReport> map_outputs;
  };

  /// One node-loss episode: tasks re-queued at detection, drained as they
  /// complete again; the drain instant closes the recovery window.
  struct RecoveryRecord {
    Seconds start = 0.0;
    std::set<std::tuple<JobId, TaskKind, TaskIndex>> outstanding;
  };

  /// One in-flight transfer phase: the flows feeding one task attempt.
  struct TransferKey {
    JobId job = 0;
    TaskKind kind = TaskKind::kMap;
    TaskIndex index = 0;
    cluster::MachineId machine = 0;

    auto tie() const { return std::make_tuple(job, kind, index, machine); }
    bool operator<(const TransferKey& o) const { return tie() < o.tie(); }
  };

  struct PendingTransfer {
    std::set<net::FlowId> flows;      ///< outstanding fetches
    Seconds compute_duration = 0.0;   ///< starts when the last flow lands
    Seconds fail_after = 0.0;
    /// Failed fetches awaiting their backoff retry; compute starts only when
    /// both the flow set AND this counter are empty.
    int pending_retries = 0;
    /// Distinguishes this attempt's transfer from a successor under the same
    /// key (kill -> relaunch on the same machine): backoff retries carry the
    /// generation they were scheduled against and no-op on a successor.
    std::uint64_t generation = 0;
  };

  /// Everything needed to react to a flow's fate: which attempt it feeds,
  /// where it came from, and how to restart it elsewhere.
  struct OwnedFlow {
    TransferKey key;
    cluster::MachineId src = 0;
    net::TransferClass cls = net::TransferClass::kShuffle;
    double cap_mbps = 0.0;
    /// Full payload size: a fetch whose delivered bytes fail verification is
    /// discarded whole and refetched from scratch.
    Megabytes mb = 0.0;
  };

  /// Fetch-failure bookkeeping per (job, map-output source): Hadoop's
  /// per-source failed-fetch counter behind the threshold mechanism.
  struct FetchState {
    int failures = 0;
  };

  JobState& job_mutable(JobId id);
  void try_assign(TaskTracker& tracker, TaskKind kind);
  /// select_job with the scheduler-cost attribution wrapped around it (the
  /// call counter always; the wall-clock timer only when configured).
  std::optional<JobId> timed_select_job(cluster::MachineId machine,
                                        TaskKind kind);
  void try_speculate(TaskTracker& tracker, TaskKind kind);
  Seconds base_duration(const TaskSpec& spec, const cluster::Machine& machine,
                        Locality locality) const;
  Seconds compute_duration(const JobState& js, const TaskSpec& spec,
                           const cluster::Machine& machine, Locality locality);
  void maybe_build_reduces(JobState& js);
  double shuffle_skew_penalty(const JobState& js) const;
  void launch(JobState& js, TaskKind kind, TaskIndex index,
              TaskTracker& tracker, Locality locality);
  void launch_with_fabric(JobState& js, TaskKind kind, TaskIndex index,
                          TaskTracker& tracker, Locality locality);
  void start_owned_flow(const TransferKey& key, cluster::MachineId src,
                        cluster::MachineId dst, Megabytes mb, double cap_mbps,
                        net::TransferClass cls);
  void on_flow_complete(net::FlowId id, const TransferKey& key);
  void on_flow_failed(net::FlowId id, Megabytes remaining_mb);
  void begin_compute_for(const TransferKey& key, const PendingTransfer& pt);
  void abort_transfers(const TransferKey& key);
  void handle_network_casualties(cluster::MachineId dead);
  void start_replication_flows(const JobState& js, const TaskReport& report);
  std::optional<cluster::MachineId> pick_replica_source(
      hdfs::BlockId block, cluster::MachineId dst) const;
  void handle_fetch_failure(const OwnedFlow& of, Megabytes remaining_mb);
  void retry_fetch(const TransferKey& key, cluster::MachineId src,
                   Megabytes remaining_mb, double cap_mbps,
                   std::uint64_t generation);
  void declare_map_outputs_lost(JobId job, cluster::MachineId source);
  void kill_fetching_attempt(const TransferKey& key);
  void fail_fetching_attempt(const TransferKey& key);
  void handle_datanode_loss(cluster::MachineId machine);
  /// Checksummed read of a map input: fails over past corrupt replicas,
  /// confirming each one, until a clean replica answers or the block is
  /// lost.  No-op (and no state touched) when nothing is corrupt.
  void verify_read(hdfs::BlockId block, cluster::MachineId reader);
  /// The replica read-preference order's first choice: node-local, then
  /// rack-local, then first placement — mirrors the locality ranking.
  cluster::MachineId preferred_replica(hdfs::BlockId block,
                                       cluster::MachineId reader) const;
  /// Shared detection point of read verification and the scrubber: audits
  /// the detection, drops the replica via NameNode::confirm_corrupt, and
  /// either queues the repair or books the loud corrupt-block loss.
  void confirm_corruption(hdfs::BlockId block, cluster::MachineId node);
  /// One scrub pass over the next scrub_mbps * scrub_period megabytes of
  /// replicas (whole-replica granularity, persistent cursor).
  void scrub_tick();
  /// The shared charge path of handle_task_failure and output-verification
  /// rejection: waste attribution, scheduler + blacklist credit, attempt
  /// budget, re-queue.
  void charge_attempt_failure(TaskReport report, WasteReason reason);
  void pump_rereplication();
  void finish_rereplication(net::FlowId id, hdfs::BlockId block,
                            cluster::MachineId target, Megabytes mb);
  void decay_blacklist_counters();
  void start_checkpoint_timer();
  void reregister_tracker(TaskTracker& tracker);
  void resolve_orphans(cluster::MachineId machine, bool commit_allowed);
  void reconcile_running_attempts(TaskTracker& tracker);
  void requeue_orphaned_task(const TaskSpec& spec, cluster::MachineId machine);
  void note_orphan_outcome(const TaskSpec& spec, cluster::MachineId machine,
                           int outcome);
  void replay_pending_submissions();
  /// One submission attempt entering admission control (attempt 0 = fresh
  /// arrival from the trace, >0 = backpressure retry).  Buffers across
  /// master outages, consults AdmissionControl::decide, and either admits
  /// via submit_now or routes through reject_submission.
  void submit_arrival(workload::JobSpec spec, int attempt);
  /// Schedules the backoff retry for a rejected submission, or drops the
  /// job for good once its retry budget is spent.
  void reject_submission(workload::JobSpec spec, AdmissionVerdict verdict,
                         int attempt);
  /// Periodic detector tick: samples occupancy / backlog / deadline-slack
  /// pressure and applies brownout reactions on a state change.
  void detector_tick();
  /// Applies the brownout measures for the new state (speculation,
  /// re-replication throttle, scheduler notification).
  void apply_overload_state(OverloadState state);
  void apply_datanode_mark(cluster::MachineId machine, bool dead);
  bool attempt_covered(Seconds start) const {
    return checkpoint_coverage_ >= 0.0 && start <= checkpoint_coverage_;
  }
  void update_node_health(TaskTracker& tracker);
  void decay_quarantine();
  void maybe_rejoin(cluster::MachineId machine);
  void note_legacy_network();
  void check_tracker_expiry();
  void reclaim_lost_work(cluster::MachineId machine, bool datanode_lost);
  void fail_job(JobState& js);
  void report_waste(const TaskReport& report, WasteReason reason);
  void note_recovered(JobId job, TaskKind kind, TaskIndex index);
  void drop_job_bookkeeping(JobId job);
  bool running_elsewhere(JobId job, TaskKind kind, TaskIndex index) const;

  sim::Simulator& sim_;
  cluster::Cluster& cluster_;
  hdfs::NameNode& namenode_;
  Scheduler& scheduler_;
  NoiseModel& noise_;
  JobTrackerConfig config_;
  net::Fabric* fabric_ = nullptr;
  audit::InvariantAuditor* auditor_ = nullptr;

  std::map<TransferKey, PendingTransfer> transfers_;
  std::map<net::FlowId, OwnedFlow> flow_owner_;
  std::uint64_t transfer_generation_ = 0;
  bool legacy_network_noted_ = false;
  std::size_t retransferred_flows_ = 0;

  // --- degraded-mode state ----------------------------------------------------

  std::map<std::pair<JobId, cluster::MachineId>, FetchState> fetch_state_;
  /// Fetch-failure strikes per reduce task (not per attempt: kills reset an
  /// attempt, the strikes persist until a shuffle completes or the task
  /// FAILS and is charged).
  std::map<std::pair<JobId, TaskIndex>, int> reduce_fetch_strikes_;
  /// In-flight re-replication flows: flow id -> the block being copied.
  std::map<net::FlowId, hdfs::BlockId> rerep_flows_;
  int rerep_active_ = 0;
  std::size_t fetch_failures_ = 0;
  std::size_t fetch_reexecuted_maps_ = 0;
  std::size_t fetch_aborted_attempts_ = 0;
  std::size_t rereplicated_blocks_ = 0;
  Megabytes rereplication_mb_ = 0.0;
  std::size_t data_loss_events_ = 0;
  Seconds last_fault_decay_ = 0.0;

  // --- data-integrity state ---------------------------------------------------

  std::size_t corruptions_injected_ = 0;
  std::size_t corruptions_detected_ = 0;
  std::size_t corruptions_repaired_ = 0;
  std::size_t corruptions_lost_ = 0;
  std::size_t corruptions_latent_ = 0;
  std::size_t corrupt_read_failovers_ = 0;
  std::size_t shuffle_corruptions_ = 0;
  std::size_t task_output_corruptions_ = 0;
  Megabytes scrubbed_mb_ = 0.0;
  std::size_t scrub_passes_ = 0;
  /// Injection time per still-undetected corrupt replica — erased at
  /// detection (feeding the latency histogram); what survives to finalize is
  /// the latent set.
  std::map<std::pair<hdfs::BlockId, cluster::MachineId>, Seconds>
      corrupt_injected_at_;
  /// Detections routed into the re-replication queue whose repair has not
  /// finished yet, per block.  finish_rereplication drains it one repair per
  /// completed copy; corrupt-block loss converts the remainder to lost.
  std::map<hdfs::BlockId, int> corrupt_pending_repair_;
  std::vector<Seconds> corruption_detection_latencies_;
  hdfs::BlockId scrub_cursor_ = 0;
  bool corruption_finalized_ = false;
  sim::EventId scrub_event_ = 0;

  std::vector<std::unique_ptr<TaskTracker>> trackers_;
  std::vector<std::unique_ptr<JobState>> jobs_;
  std::vector<JobId> active_;
  std::vector<double> capability_share_;
  std::size_t jobs_expected_ = 0;
  std::size_t jobs_completed_ = 0;
  std::size_t jobs_failed_ = 0;
  std::size_t jobs_dropped_ = 0;

  // --- overload protection ----------------------------------------------------

  /// Non-null iff config_.admission.enabled.
  std::unique_ptr<AdmissionControl> admission_;
  /// Brownout: speculation suspended while Saturated or worse.
  bool speculation_suspended_ = false;
  /// Brownout: live cap on concurrent re-replication streams (restored to
  /// config_.max_replication_streams on recovery).
  int rerep_limit_ = 0;

  std::vector<TrackerState> tracker_states_;
  std::vector<RecoveryRecord> recoveries_;
  std::vector<Seconds> recovery_times_;
  std::size_t killed_attempts_ = 0;
  std::size_t failed_attempts_ = 0;
  std::size_t preempted_attempts_ = 0;
  std::uint64_t heartbeats_ = 0;
  std::uint64_t select_job_calls_ = 0;
  double select_job_wall_seconds_ = 0.0;
  std::size_t lost_map_outputs_ = 0;
  double wasted_task_seconds_ = 0.0;
  std::size_t quarantine_episodes_ = 0;
  Seconds last_quarantine_decay_ = 0.0;
  sim::EventId expiry_event_ = 0;
  sim::EventId detector_event_ = 0;

  // --- control-plane state ----------------------------------------------------

  /// A completion or failure report fenced while its tracker's epoch was
  /// stale (master down, or not yet re-registered), awaiting deterministic
  /// resolution at the tracker's re-registration.
  struct Orphan {
    TaskReport report;
    bool failed = false;  ///< failure report (vs. completion)
  };

  bool master_up_ = true;
  bool namenode_up_ = true;
  std::uint64_t master_epoch_ = 1;
  Seconds checkpoint_coverage_ = -1.0;  ///< last committed checkpoint; -1 none
  std::vector<std::uint64_t> tracker_epoch_;
  std::vector<Seconds> reregistration_gate_;
  // std::map: resolution iterates per tracker in task order (deterministic).
  std::map<std::tuple<JobId, TaskKind, TaskIndex, cluster::MachineId>, Orphan>
      orphans_;
  /// Every orphan resolution, keyed without timestamps so the digest is
  /// independent of re-registration order (outcomes append in key order).
  std::map<std::tuple<JobId, TaskKind, TaskIndex, cluster::MachineId>,
           std::vector<int>>
      orphan_outcomes_;
  /// Submissions that arrived while a master was down, replayed in order
  /// (the int is the admission attempt the submission was on).
  std::vector<std::pair<workload::JobSpec, int>> pending_submissions_;
  /// Datanode death/rejoin marks buffered while the NameNode was down.
  std::vector<std::pair<cluster::MachineId, bool>> pending_datanode_marks_;
  /// fsimage pinned at NameNode crash, restored at its recovery.
  std::optional<hdfs::NameNode::Snapshot> nn_snapshot_;
  std::size_t master_crashes_ = 0;
  std::size_t checkpoints_written_ = 0;
  std::size_t checkpoint_replays_ = 0;
  std::size_t fenced_heartbeats_ = 0;
  std::size_t fenced_completions_ = 0;
  std::size_t orphans_committed_ = 0;
  std::size_t orphans_requeued_ = 0;
  sim::EventId checkpoint_event_ = 0;

  std::function<void(const TaskReport&)> report_listener_;
  std::function<void(const JobState&)> job_finished_listener_;
  std::function<std::optional<double>(const TaskSpec&, cluster::MachineId)>
      attempt_fault_hook_;
  std::function<void(const TaskReport&, WasteReason)> waste_listener_;
  std::function<std::optional<double>(JobId, cluster::MachineId)>
      fetch_fault_hook_;
  std::function<bool()> shuffle_corruption_hook_;
  std::function<bool()> output_corruption_hook_;
};

}  // namespace eant::mr
