// System-noise injection (Sec. IV-D of the paper).
//
// The paper defines system noise as "transient and anomalous behavior of
// certain tasks ... attributed to data skew, network congestion, etc.",
// manifesting as CPU-utilisation fluctuation and straggling tasks (Fig. 7).
// NoiseModel injects exactly those effects:
//   * demand jitter  — a task's true CPU demand is redrawn every heartbeat
//                      window (mean-one lognormal);
//   * measurement error — the utilisation the TaskTracker *records* differs
//                      from the true value (sampling noise);
//   * stragglers     — occasional duration blow-ups;
//   * duration jitter / data skew — per-task runtime variation.

#pragma once

#include "common/rng.h"

namespace eant::mr {

/// Noise intensity knobs; all default to zero (a noiseless, exact system).
struct NoiseConfig {
  double demand_jitter_sigma = 0.0;    ///< lognormal sigma of true-demand jitter
  double measurement_sigma = 0.0;      ///< relative error of recorded util
  double straggler_prob = 0.0;         ///< per-task probability of straggling
  double straggler_factor_min = 1.5;   ///< straggler duration multiplier range
  double straggler_factor_max = 3.0;
  double duration_jitter_sigma = 0.0;  ///< lognormal sigma of per-task runtime

  /// No noise at all — deterministic durations and exact measurements.
  static NoiseConfig none() { return NoiseConfig{}; }

  /// The noise level used by the paper-reproduction experiments: enough
  /// fluctuation to produce the Fig. 7 scatter and the Fig. 4 NRMSE band.
  static NoiseConfig typical();
};

/// Draws noise realisations from a dedicated RNG stream.
class NoiseModel {
 public:
  NoiseModel(NoiseConfig config, Rng rng);

  const NoiseConfig& config() const { return config_; }

  /// Mean-one multiplier applied to a task's true CPU demand each window.
  double demand_multiplier();

  /// The recorded (measured) value of a true utilisation; clamped to >= 0.
  double measured(double true_util);

  /// Duration multiplier for stragglers: 1.0 normally, a uniform draw in
  /// [factor_min, factor_max] with probability straggler_prob.
  double straggler_multiplier();

  /// Mean-one lognormal multiplier for per-task runtime (data skew etc.).
  double duration_multiplier();

 private:
  NoiseConfig config_;
  Rng rng_;
};

}  // namespace eant::mr
