// Task-assignment policy interface.
//
// Hadoop (and this simulator) uses a pull model: when a TaskTracker
// heartbeats with free slots, the JobTracker asks the scheduler which job
// should receive the slot; the JobTracker then picks a concrete task within
// that job, preferring data-local splits (Hadoop's own mechanics).  All
// baseline schedulers (FIFO, Fair, Tarazu) and E-Ant implement this
// interface.

#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "cluster/machine.h"
#include "mapreduce/overload.h"
#include "mapreduce/task.h"

namespace eant::mr {

class JobTracker;

/// Pluggable task-assignment policy.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Called once, before any job is submitted.
  virtual void attach(JobTracker& job_tracker) { (void)job_tracker; }

  /// Job lifecycle notifications.
  virtual void on_job_submitted(JobId job) { (void)job; }
  virtual void on_job_finished(JobId job) { (void)job; }

  /// Task-level feedback delivered with each heartbeat batch — the signal
  /// E-Ant's task analyzer consumes (Sec. III-A).
  virtual void on_task_completed(const TaskReport& report) { (void)report; }

  /// Fault notifications.  The JobTracker declares a machine's tracker lost
  /// when its heartbeats expire or it is blacklisted; `rejoined` fires when
  /// a restarted tracker heartbeats again (or the blacklist lapses).  While
  /// lost, the machine is never offered to select_job, but schedulers that
  /// keep per-machine state (E-Ant's pheromone rows) should decay or drop it
  /// so stale attraction does not survive the outage.
  virtual void on_tracker_lost(cluster::MachineId machine) { (void)machine; }
  virtual void on_tracker_rejoined(cluster::MachineId machine) {
    (void)machine;
  }

  /// A task attempt died on the machine (transient failure, not node loss).
  virtual void on_task_failed(const TaskSpec& spec,
                              cluster::MachineId machine) {
    (void)spec;
    (void)machine;
  }

  /// The JobTracker restarted after a control-plane crash and is entering
  /// `epoch` (a strictly increasing failover counter).  In-memory scheduler
  /// state not covered by the master's checkpoint died with the old
  /// process; schedulers that keep learned per-machine state (E-Ant's
  /// pheromone table) decide here whether to restore a snapshot or reseed.
  virtual void on_master_recovered(std::uint64_t epoch) { (void)epoch; }

  /// The overload detector changed state (admission.h).  Schedulers react
  /// by shedding their own optional work under Saturated/Critical — Fair
  /// drops delay-scheduling waits, Capacity pauses preemption churn, E-Ant
  /// skips decline rounds — and restore it as the state decays back.  Only
  /// fired when the admission subsystem is enabled, so schedulers that
  /// consume RNG on this path stay digest-neutral by default.
  virtual void on_overload_state(OverloadState state) { (void)state; }

  /// A reduce-side shuffle fetch of `source`'s map output failed (link
  /// fault, rack partition or transient error) — the machine is alive but
  /// its data is unreachable.  Schedulers with per-machine state can steer
  /// new work away from the degraded path.
  virtual void on_fetch_failed(JobId job, cluster::MachineId source) {
    (void)job;
    (void)source;
  }

  /// Chooses the job that should occupy one free `kind` slot on `machine`,
  /// or nothing to leave the slot idle this heartbeat.  Only jobs with a
  /// pending task of `kind` are valid choices.
  virtual std::optional<JobId> select_job(cluster::MachineId machine,
                                          TaskKind kind) = 0;

  /// Human-readable policy name ("Fair", "Tarazu", "E-Ant", ...).
  virtual std::string name() const = 0;
};

}  // namespace eant::mr
