// Overload protection: admission control, client backpressure, and graceful
// degradation ("brownout") under saturation.
//
// The continuous-traffic service model is open-loop: arrivals follow the
// trace no matter how far the cluster falls behind, so a rate-scale past
// capacity used to grow the JobTracker's queues without bound until every
// tenant's SLO collapsed together.  This module closes the protection gap in
// three layers:
//
//  * OverloadDetector — EWMA of slot occupancy, queue depth per slot, and
//    queue-wait vs. deadline slack, folded on a periodic detector tick and
//    classified into Normal / Elevated / Saturated / Critical with
//    hysteresis: escalation is immediate, de-escalation decays one level per
//    tick and only when the smoothed signals clear a fraction
//    (AdmissionConfig::hysteresis) of the escalation thresholds.  Every
//    state transition is an audit::Record, so flapping shows up in digests.
//
//  * AdmissionControl::decide — runs at JobTracker::submit time.  Per-tenant
//    queues are bounded in proportion to tenant weight (weighted-fair
//    admission); deadlined jobs face an EDF feasibility test against the
//    current backlog (reject what cannot finish by its deadline anyway);
//    under Saturated/Critical load the shedding policy rejects
//    lowest-weight non-deadlined work first, protecting deadlined tenants.
//
//  * Backpressure — a rejected JobSpec re-enters the arrival stream after a
//    capped exponential backoff drawn from a dedicated forked RNG stream
//    (deterministic, digest-stable), up to max_retries before the job is
//    dropped.  A conservation ledger (jobs and megabytes: arrivals ==
//    admitted + dropped, retries scheduled == retries that fired) is checked
//    at finalize so no job can silently vanish in the retry loop.
//
// The brownout reactions themselves live with their owners: the JobTracker
// suspends speculation and throttles re-replication, and each scheduler
// reacts to Scheduler::on_overload_state (Fair drops its locality wait,
// Capacity pauses preemption churn, E-Ant skips decline rounds).  All of it
// is restored in reverse order as the detector decays back to Normal.
//
// Everything here is inert by default (enabled = false): a run with the
// subsystem compiled in but disabled schedules no events, consumes no RNG,
// and produces bit-identical digests to the pre-admission simulator.

#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "mapreduce/overload.h"
#include "mapreduce/task.h"
#include "workload/job_spec.h"

namespace eant::audit {
class InvariantAuditor;
}

namespace eant::mr {

/// Per-tenant admission policy.  The weight drives both the queue bound
/// (bound = max(1, ceil(weight * queue_bound_per_weight))) and the shedding
/// order (lowest-weight tenants shed first).  Tenants not listed default to
/// weight 1.0.
struct AdmissionTenantPolicy {
  workload::TenantId tenant = 0;
  double weight = 1.0;
};

/// Tunables for the overload-protection subsystem.  Defaults are inert:
/// enabled = false means no detector events, no RNG consumption, and
/// digests identical to a build without the subsystem.
struct AdmissionConfig {
  /// Master switch.  Off: JobTracker::submit admits everything, exactly as
  /// before this subsystem existed.
  bool enabled = false;

  // --- overload detector ------------------------------------------------------

  /// Period of the detector tick (seconds of sim time).
  Seconds detector_interval = 15.0;

  /// EWMA smoothing factor for the detector signals (weight of the newest
  /// sample); 1.0 = no smoothing.
  double ewma_alpha = 0.3;

  /// Escalation thresholds, evaluated against the smoothed signals.
  /// Occupancy is 1 - free_slots/total_slots in [0,1].  Backlog is total
  /// outstanding demand in task waves per slot — (running + pending tasks) /
  /// slots — so 1.0 means exactly full, 1.25 means a quarter-wave queued on
  /// top, 2.5 means every slot has well over a full extra wave waiting.
  /// Demand, not queue length alone, because weighted queue bounds cap the
  /// queued fraction themselves: a threshold on the bounded queue would
  /// leave the brownout reactions permanently dormant.  Slack pressure is
  /// the fraction of active deadlined jobs whose estimated wait already
  /// overruns their deadline.
  double elevated_occupancy = 0.9;
  double elevated_backlog = 1.0;
  double saturated_backlog = 1.25;
  double critical_backlog = 2.5;
  double slack_pressure_threshold = 0.5;

  /// De-escalation hysteresis: to leave a level, the smoothed signals must
  /// drop below hysteresis * the escalation threshold; the level then decays
  /// one step per tick (so recovery restores brownout measures in reverse
  /// order of shedding).
  double hysteresis = 0.7;

  // --- admission control ------------------------------------------------------

  /// Admitted-but-unfinished jobs allowed per unit of tenant weight.
  double queue_bound_per_weight = 8.0;

  /// Reject deadlined jobs whose EDF slack test fails: estimated queue wait
  /// (backlog * mean task time / slots) plus one task time, scaled by
  /// feasibility_margin, must fit before the deadline.
  bool deadline_feasibility = true;
  double feasibility_margin = 1.0;

  /// Per-tenant weights; unlisted tenants get weight 1.0.
  std::vector<AdmissionTenantPolicy> tenants;

  // --- backpressure -----------------------------------------------------------

  /// Retries before a rejected job is dropped for good.
  int max_retries = 5;

  /// Backoff: delay = min(retry_base * 2^attempt, retry_cap) * (1 + jitter*u)
  /// with u uniform in [0,1) from the dedicated retry stream.
  Seconds retry_base = 30.0;
  Seconds retry_cap = 480.0;
  double retry_jitter = 0.5;

  /// Seed of the retry-backoff RNG stream.  0 = the Run harness substitutes
  /// the run seed, so retries are deterministic per run yet independent of
  /// every other stream.
  std::uint64_t retry_seed = 0;
};

/// Pure hysteresis classifier over the three smoothed load signals — no
/// simulator dependencies, unit-testable in isolation.  fold() is called
/// once per detector tick.
class OverloadDetector {
 public:
  explicit OverloadDetector(const AdmissionConfig& cfg);

  /// Folds one sample of each signal into the EWMAs and returns the
  /// (possibly changed) state.  Escalates immediately to the classified
  /// level; decays at most one level per call, and only when the signals
  /// clear the hysteresis-scaled thresholds.
  OverloadState fold(double occupancy, double backlog_per_slot,
                     double slack_pressure);

  OverloadState state() const { return static_cast<OverloadState>(level_); }
  double occupancy_ewma() const { return occ_; }
  double backlog_ewma() const { return backlog_; }
  double slack_pressure_ewma() const { return slack_; }

 private:
  /// The level the smoothed signals justify when thresholds are scaled by
  /// `scale` (1.0 = escalation thresholds, hysteresis = floor for decay).
  int classify(double scale) const;

  AdmissionConfig cfg_;
  double occ_ = 0.0;
  double backlog_ = 0.0;
  double slack_ = 0.0;
  bool primed_ = false;  ///< first fold seeds the EWMAs instead of blending
  int level_ = 0;
};

/// Why a submission was rejected (or not).  Values are mixed into audit
/// records — append only.
enum class AdmissionVerdict : std::uint32_t {
  kAdmit = 0,
  kQueueFull = 1,   ///< tenant's weighted queue bound reached
  kShed = 2,        ///< load shedding under Saturated/Critical state
  kInfeasible = 3,  ///< deadlined job cannot finish in time anyway
};

/// "admit" / "queue-full" / "shed" / "infeasible".
const char* admission_verdict_name(AdmissionVerdict v);

/// Per-tenant admission ledger: conservation counters plus the live backlog
/// against its bound.  Exposed read-only through AdmissionControl::ledgers()
/// and folded into exp::TenantMetrics.
struct TenantAdmissionLedger {
  double weight = 1.0;
  std::size_t bound = 1;  ///< admitted-but-unfinished job bound

  std::size_t arrivals = 0;        ///< fresh submissions (attempt 0)
  std::size_t admitted = 0;        ///< decide() said kAdmit
  std::size_t rejections = 0;      ///< rejection events (retries re-count)
  std::size_t retries = 0;         ///< backoff retries scheduled
  std::size_t retry_arrivals = 0;  ///< backoff retries that fired
  std::size_t dropped = 0;         ///< gave up after max_retries

  std::size_t backlog = 0;  ///< currently admitted-but-unfinished
  std::size_t peak_backlog = 0;

  Megabytes arrived_mb = 0.0;
  Megabytes admitted_mb = 0.0;
  Megabytes dropped_mb = 0.0;
};

/// The admission-control engine owned by the JobTracker.  The JobTracker
/// calls decide() per submission, the note_* taps as jobs move through their
/// lifecycle, tick() from the periodic detector event, and finalize() at end
/// of run for the conservation checks.  This class never touches the
/// simulator; all timing flows in through `now` arguments, which keeps it
/// deterministic and unit-testable.
class AdmissionControl {
 public:
  AdmissionControl(const AdmissionConfig& cfg, audit::InvariantAuditor* auditor);

  const AdmissionConfig& config() const { return cfg_; }

  // --- admission --------------------------------------------------------------

  /// The admission decision for one submission attempt.  Pure with respect
  /// to simulator state: the caller supplies the cluster signals.
  AdmissionVerdict decide(const workload::JobSpec& spec, int attempt,
                          int total_slots, std::size_t pending_tasks,
                          Seconds now);

  /// A fresh job arrived from the trace (attempt 0, counted exactly once
  /// even if the submission is buffered across a master outage).
  void note_arrival(const workload::JobSpec& spec);

  /// decide() said kAdmit and submit_now assigned `id`.  Audits the queue
  /// bound ("admission-queue-bound": backlog must never exceed it).
  void note_admitted(JobId id, const workload::JobSpec& spec, Seconds now);

  /// decide() rejected the submission.  Emits the kJobReject record; when a
  /// retry is still allowed, draws the backoff delay into *retry_delay,
  /// emits kJobRetry, and returns true.  Returns false when the job is
  /// dropped for good.
  bool note_rejection(const workload::JobSpec& spec, AdmissionVerdict verdict,
                      int attempt, Seconds now, Seconds* retry_delay);

  /// A scheduled backoff retry fired (conservation: must eventually match
  /// every note_rejection that returned true).
  void note_retry_arrival(workload::TenantId tenant);

  /// First task of an admitted job launched (the admitted-then-starved
  /// check keys off jobs that never reach this point).
  void note_first_launch(JobId id);

  /// An admitted job finished (completed or failed).  Releases its backlog
  /// slot; audits "admission-deadline-starved" if a deadlined job was
  /// admitted but never launched a task before its deadline passed.
  void note_job_finished(JobId id, const workload::JobSpec& spec, Seconds now);

  /// Feeds one observed task duration into the EDF feasibility estimate.
  void note_task_duration(Seconds duration);

  // --- detector ---------------------------------------------------------------

  /// One detector tick: folds the signals, emits kOverloadState on a
  /// transition, accumulates time-in-state.  Returns the new state.
  OverloadState tick(double occupancy, double backlog_per_slot,
                     double slack_pressure, Seconds now);

  // --- end of run -------------------------------------------------------------

  /// Closes the time-in-state accounting and runs the conservation checks
  /// ("admission-conservation", "admission-retry-conservation").
  /// Idempotent.
  void finalize(Seconds now);

  // --- accessors --------------------------------------------------------------

  OverloadState state() const { return state_; }
  const std::map<workload::TenantId, TenantAdmissionLedger>& ledgers() const {
    return ledgers_;
  }
  std::size_t total_rejections() const;
  std::size_t total_dropped() const;
  std::size_t total_retries() const;
  std::size_t transitions() const { return transitions_; }
  Seconds time_in(OverloadState s) const {
    return time_in_state_[static_cast<int>(s)];
  }
  double mean_task_seconds() const { return task_s_ewma_; }

 private:
  struct AdmittedJob {
    workload::TenantId tenant = 0;
    Seconds deadline = -1.0;
    bool launched = false;
  };

  /// The tenant's ledger, created on first touch with its configured (or
  /// default) weight and the derived queue bound.
  TenantAdmissionLedger& ledger(workload::TenantId tenant);

  /// Sole mutation site of state_: accumulates time-in-state, bumps the
  /// transition count, and emits the kOverloadState audit record.
  void transition_to(OverloadState next, Seconds now);

  AdmissionConfig cfg_;
  audit::InvariantAuditor* auditor_;  // may be null (unaudited run)
  OverloadDetector detector_;
  Rng retry_rng_;  ///< dedicated stream: Rng(retry_seed).fork(0x0ad)

  OverloadState state_ = OverloadState::kNormal;
  Seconds state_since_ = 0.0;
  Seconds time_in_state_[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t transitions_ = 0;

  double min_weight_ = 1.0;  ///< lowest configured tenant weight (shed first)
  double task_s_ewma_ = 0.0;
  std::size_t task_samples_ = 0;

  std::map<workload::TenantId, TenantAdmissionLedger> ledgers_;
  std::map<JobId, AdmittedJob> admitted_;
  bool finalized_ = false;
};

}  // namespace eant::mr
