// TaskTracker: per-machine slave daemon.
//
// Runs tasks in map/reduce slots, heartbeats the JobTracker every 3 seconds
// (Hadoop's default, which the paper uses as the utilisation-sampling
// granularity for its energy model) and records the per-window CPU
// utilisation samples that E-Ant's task analyzer turns into per-task energy
// estimates.  True task demand is redrawn per heartbeat window by the noise
// model; the recorded samples additionally carry measurement error.

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cluster/machine.h"
#include "mapreduce/noise.h"
#include "mapreduce/task.h"
#include "sim/simulator.h"

namespace eant::mr {

class JobTracker;

/// Slave-side task executor bound to one Machine.
class TaskTracker {
 public:
  /// `heartbeat_phase` (in [0, heartbeat_interval)) staggers this tracker's
  /// heartbeat relative to its peers — real TaskTrackers are not
  /// synchronised, and a synchronised fleet would hand all work to whichever
  /// machines happen to be offered slots first.
  TaskTracker(sim::Simulator& sim, cluster::Machine& machine,
              JobTracker& job_tracker, NoiseModel& noise,
              Seconds heartbeat_interval, int map_slots, int reduce_slots,
              Seconds heartbeat_phase = 0.0);
  ~TaskTracker();

  TaskTracker(const TaskTracker&) = delete;
  TaskTracker& operator=(const TaskTracker&) = delete;

  cluster::Machine& machine() { return machine_; }
  cluster::MachineId machine_id() const { return machine_.id(); }

  int map_slots() const { return map_slots_; }
  int reduce_slots() const { return reduce_slots_; }
  int running(TaskKind kind) const;
  int free_slots(TaskKind kind) const;

  /// Launches a task in a free slot; `duration` is the task's wall time as
  /// computed by the JobTracker.  Requires a free slot of the task's kind.
  void start_task(const TaskSpec& spec, Seconds duration, bool data_local);

  /// Kills a running attempt (speculative-execution support).  Returns
  /// false if the attempt already finished.  No report is produced.
  bool cancel_task(JobId job, TaskKind kind, TaskIndex index);

  /// True iff the given attempt is still running here.
  bool is_running(JobId job, TaskKind kind, TaskIndex index) const;

  Seconds heartbeat_interval() const { return heartbeat_; }

  /// Total tasks completed by this tracker (per kind).
  std::size_t completed(TaskKind kind) const;

 private:
  struct Running {
    TaskSpec spec;
    Seconds start = 0.0;
    bool data_local = false;
    double current_demand = 0.0;
    Seconds last_sample = 0.0;
    std::vector<UtilSample> samples;
    sim::EventId completion_event = 0;
  };

  bool heartbeat();
  void finish_task(std::uint64_t attempt_id);
  void close_sample_window(Running& r);
  std::uint64_t find_attempt(JobId job, TaskKind kind, TaskIndex index) const;

  sim::Simulator& sim_;
  cluster::Machine& machine_;
  JobTracker& job_tracker_;
  NoiseModel& noise_;
  Seconds heartbeat_;
  int map_slots_;
  int reduce_slots_;
  int running_maps_ = 0;
  int running_reduces_ = 0;
  std::size_t completed_maps_ = 0;
  std::size_t completed_reduces_ = 0;
  std::uint64_t next_attempt_id_ = 1;
  std::unordered_map<std::uint64_t, Running> running_;
  sim::EventId heartbeat_event_;
};

}  // namespace eant::mr
