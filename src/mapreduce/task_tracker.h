// TaskTracker: per-machine slave daemon.
//
// Runs tasks in map/reduce slots, heartbeats the JobTracker every 3 seconds
// (Hadoop's default, which the paper uses as the utilisation-sampling
// granularity for its energy model) and records the per-window CPU
// utilisation samples that E-Ant's task analyzer turns into per-task energy
// estimates.  True task demand is redrawn per heartbeat window by the noise
// model; the recorded samples additionally carry measurement error.
//
// Fault model: the daemon can crash() — every running attempt dies, the
// heartbeat stops and the machine powers down — and later restart().  The
// JobTracker learns about the crash only through the missing heartbeats
// (tracker expiry), exactly like real Hadoop; the partial work of killed
// attempts is reported to the JobTracker immediately for *accounting only*
// (the simulator's equivalent of reading the dead node's logs afterwards).

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "cluster/machine.h"
#include "common/locality.h"
#include "mapreduce/noise.h"
#include "mapreduce/task.h"
#include "sim/simulator.h"

namespace eant::mr {

class JobTracker;

/// Slave-side task executor bound to one Machine.
class TaskTracker {
 public:
  /// `heartbeat_phase` (in [0, heartbeat_interval)) staggers this tracker's
  /// heartbeat relative to its peers — real TaskTrackers are not
  /// synchronised, and a synchronised fleet would hand all work to whichever
  /// machines happen to be offered slots first.
  TaskTracker(sim::Simulator& sim, cluster::Machine& machine,
              JobTracker& job_tracker, NoiseModel& noise,
              Seconds heartbeat_interval, int map_slots, int reduce_slots,
              Seconds heartbeat_phase = 0.0);
  ~TaskTracker();

  TaskTracker(const TaskTracker&) = delete;
  TaskTracker& operator=(const TaskTracker&) = delete;

  cluster::Machine& machine() { return machine_; }
  cluster::MachineId machine_id() const { return machine_.id(); }

  int map_slots() const { return map_slots_; }
  int reduce_slots() const { return reduce_slots_; }
  int running(TaskKind kind) const;

  /// Free slots of the kind; 0 while the daemon is down.
  int free_slots(TaskKind kind) const;

  /// True while the daemon is running (heartbeating, accepting tasks).
  bool alive() const { return alive_; }

  /// Launches a task in a free slot; `duration` is the task's wall time as
  /// computed by the JobTracker.  Requires a free slot of the task's kind
  /// and a live daemon.  A positive `fail_after` makes the attempt die after
  /// that many seconds instead of completing (transient task failure); the
  /// JobTracker receives the failure via handle_task_failure.
  void start_task(const TaskSpec& spec, Seconds duration, bool data_local,
                  Seconds fail_after = 0.0);

  /// Occupies a slot for an attempt whose network-transfer phase (remote
  /// split read or shuffle fetch) is in flight on the fabric; no completion
  /// timer runs yet.  `abort_transfer` is invoked exactly once if the
  /// attempt is killed (cancel/crash) while still fetching, so the owner can
  /// tear down its flows.  Call begin_compute() once the last flow lands.
  void start_fetching_task(const TaskSpec& spec, Locality locality,
                           std::function<void()> abort_transfer);

  /// Ends the transfer phase of a fetching attempt: records the transfer
  /// time and schedules completion `duration` seconds from now (or a
  /// transient failure after `fail_after`, as in start_task).
  void begin_compute(JobId job, TaskKind kind, TaskIndex index,
                     Seconds duration, Seconds fail_after = 0.0);

  /// Kills a running attempt (speculative-execution support).  Returns
  /// false if the attempt already finished.  No report is produced.
  bool cancel_task(JobId job, TaskKind kind, TaskIndex index);

  /// Kills a running attempt for scheduler preemption and returns its
  /// partial-work report (the wasted-work/energy accounting input).  Same
  /// teardown as cancel_task — KILLED, not FAILED: no attempt budget is
  /// charged.  Returns nothing if the attempt is not running here.
  std::optional<TaskReport> preempt_task(JobId job, TaskKind kind,
                                         TaskIndex index);

  /// Kills every running attempt of the job (job-failure cleanup); returns
  /// the partial-work reports of the killed attempts.
  std::vector<TaskReport> cancel_job(JobId job);

  /// True iff the given attempt is still running here.
  bool is_running(JobId job, TaskKind kind, TaskIndex index) const;

  /// Machine crash: kills every running attempt, stops the heartbeat and
  /// powers the machine down.  The killed attempts' partial work is handed
  /// to the JobTracker for wasted-work accounting and later requeue (the
  /// JobTracker acts on it only once it *detects* the loss).
  void crash();

  /// Restart after repair: powers the machine up and resumes heartbeats.
  /// Slots start empty; the JobTracker learns of the rejoin from the first
  /// heartbeat.
  void restart();

  /// Fail-slow transition: updates the machine's dynamic performance
  /// multipliers and re-estimates every in-flight compute phase
  /// event-deterministically — the work done so far at the old stretch is
  /// integrated, the completion (or scheduled-failure) event is cancelled
  /// and rescheduled for the remaining work at the new stretch.  Tasks still
  /// in their network-transfer phase pick up the new stretch when compute
  /// begins.  No-op re-rates (unchanged stretch) leave events untouched.
  void set_perf_factors(double cpu, double io);

  /// Nominal-work progress rate of each running compute-phase attempt:
  /// (nominal seconds of work completed) / (wall seconds elapsed since
  /// compute began).  Exactly 1.0 on a healthy machine; ≈ the slowdown
  /// factor on a limping one.  Attempts still fetching or started this
  /// instant are skipped.  The JobTracker folds these into its per-node
  /// health score at every heartbeat.
  std::vector<double> progress_rate_samples() const;

  /// Fraction of the attempt's nominal duration completed, in [0, 1];
  /// 0 while fetching.  Returns -1 if the attempt is not running here.
  double running_progress(JobId job, TaskKind kind, TaskIndex index) const;

  Seconds heartbeat_interval() const { return heartbeat_; }

  /// Total tasks completed by this tracker (per kind); survives crashes.
  std::size_t completed(TaskKind kind) const;

  /// Identity and launch time of one in-flight attempt, as reported to a
  /// restarted JobTracker during re-registration (Hadoop's tracker status
  /// report): enough for the master to reconcile the attempt against its
  /// replayed checkpoint.
  struct AttemptInfo {
    TaskSpec spec;
    Seconds start = 0.0;
  };

  /// Every attempt currently running here, in attempt-id (launch) order.
  std::vector<AttemptInfo> running_attempts() const;

 private:
  struct Running {
    TaskSpec spec;
    Seconds start = 0.0;
    bool data_local = false;
    Locality locality = Locality::kOffRack;
    bool fetching = false;     // transfer phase in flight, no timer yet
    Seconds fetch_end = -1.0;  // transfer-phase end; <0 = not measured
    std::function<void()> abort_transfer;  // set only while fetching
    double current_demand = 0.0;
    Seconds last_sample = 0.0;
    std::vector<UtilSample> samples;
    sim::EventId completion_event = 0;  // completion or scheduled failure
    // Fail-slow re-estimation state (compute phase only).  `event_work` is
    // the nominal seconds of work until the scheduled event (the full
    // duration, or fail_after for a doomed attempt); `work_done` the nominal
    // work banked at previous stretches; `stretch` the wall-seconds-per-
    // nominal-second factor currently in force (exactly 1.0 healthy).
    Seconds compute_start = -1.0;  // <0 = compute not begun (fetching)
    Seconds nominal_duration = 0.0;
    Seconds event_work = 0.0;
    bool fails = false;  // scheduled event is a transient failure
    double stretch = 1.0;
    Seconds last_rescale = 0.0;
    double work_done = 0.0;
    double last_progress = 0.0;  // audit: progress must be monotonic
  };

  bool heartbeat();
  void start_heartbeat(Seconds first_delay);
  void schedule_compute(Running& r, std::uint64_t attempt, Seconds duration,
                        Seconds fail_after);
  double work_now(const Running& r) const;
  void check_work_integral(const Running& r);
  void finish_task(std::uint64_t attempt_id);
  void fail_task(std::uint64_t attempt_id);
  void close_sample_window(Running& r);
  void abort_transfer_if_fetching(Running& r);
  Running& occupy_slot(const TaskSpec& spec, std::uint64_t attempt);
  TaskReport make_report(Running& r);
  void release_slot(TaskKind kind);
  std::uint64_t find_attempt(JobId job, TaskKind kind, TaskIndex index) const;

  sim::Simulator& sim_;
  cluster::Machine& machine_;
  JobTracker& job_tracker_;
  NoiseModel& noise_;
  Seconds heartbeat_;
  int map_slots_;
  int reduce_slots_;
  int running_maps_ = 0;
  int running_reduces_ = 0;
  bool alive_ = true;
  std::size_t completed_maps_ = 0;
  std::size_t completed_reduces_ = 0;
  std::uint64_t next_attempt_id_ = 1;
  // std::map: heartbeat() draws per-task noise while iterating, so the
  // iteration order (attempt-id order here) is part of the deterministic
  // RNG-consumption sequence the audit digest certifies.
  std::map<std::uint64_t, Running> running_;
  sim::EventId heartbeat_event_;
};

}  // namespace eant::mr
