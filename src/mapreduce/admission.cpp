#include "mapreduce/admission.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "audit/auditor.h"
#include "common/error.h"

namespace eant::mr {

const char* overload_state_name(OverloadState s) {
  switch (s) {
    case OverloadState::kNormal:
      return "normal";
    case OverloadState::kElevated:
      return "elevated";
    case OverloadState::kSaturated:
      return "saturated";
    case OverloadState::kCritical:
      return "critical";
  }
  return "?";
}

const char* admission_verdict_name(AdmissionVerdict v) {
  switch (v) {
    case AdmissionVerdict::kAdmit:
      return "admit";
    case AdmissionVerdict::kQueueFull:
      return "queue-full";
    case AdmissionVerdict::kShed:
      return "shed";
    case AdmissionVerdict::kInfeasible:
      return "infeasible";
  }
  return "?";
}

// --- OverloadDetector ---------------------------------------------------------

OverloadDetector::OverloadDetector(const AdmissionConfig& cfg) : cfg_(cfg) {}

int OverloadDetector::classify(double scale) const {
  if (backlog_ >= cfg_.critical_backlog * scale) return 3;
  if (backlog_ >= cfg_.saturated_backlog * scale ||
      (occ_ >= cfg_.elevated_occupancy * scale &&
       slack_ >= cfg_.slack_pressure_threshold * scale)) {
    return 2;
  }
  if (occ_ >= cfg_.elevated_occupancy * scale ||
      backlog_ >= cfg_.elevated_backlog * scale) {
    return 1;
  }
  return 0;
}

OverloadState OverloadDetector::fold(double occupancy, double backlog_per_slot,
                                     double slack_pressure) {
  if (!primed_) {
    occ_ = occupancy;
    backlog_ = backlog_per_slot;
    slack_ = slack_pressure;
    primed_ = true;
  } else {
    const double a = cfg_.ewma_alpha;
    occ_ = a * occupancy + (1.0 - a) * occ_;
    backlog_ = a * backlog_per_slot + (1.0 - a) * backlog_;
    slack_ = a * slack_pressure + (1.0 - a) * slack_;
  }
  const int target = classify(1.0);
  if (target > level_) {
    // Escalate immediately: the point of protection is reacting before the
    // backlog compounds.
    level_ = target;
  } else if (classify(cfg_.hysteresis) < level_) {
    // De-escalate one level per tick, and only once the smoothed signals
    // clear the hysteresis floor — brownout measures restore in reverse
    // order of shedding, without flapping at a threshold.
    --level_;
  }
  return static_cast<OverloadState>(level_);
}

// --- AdmissionControl ---------------------------------------------------------

AdmissionControl::AdmissionControl(const AdmissionConfig& cfg,
                                   audit::InvariantAuditor* auditor)
    : cfg_(cfg),
      auditor_(auditor),
      detector_(cfg),
      retry_rng_(Rng(cfg.retry_seed).fork(0x0ad)) {
  for (const auto& t : cfg_.tenants) {
    min_weight_ = std::min(min_weight_, t.weight);
    ledger(t.tenant);  // materialise configured tenants up front
  }
}

TenantAdmissionLedger& AdmissionControl::ledger(workload::TenantId tenant) {
  auto it = ledgers_.find(tenant);
  if (it != ledgers_.end()) return it->second;
  TenantAdmissionLedger led;
  for (const auto& t : cfg_.tenants) {
    if (t.tenant == tenant) led.weight = t.weight;
  }
  led.bound = static_cast<std::size_t>(std::max(
      1.0, std::ceil(led.weight * cfg_.queue_bound_per_weight)));
  return ledgers_.emplace(tenant, led).first->second;
}

AdmissionVerdict AdmissionControl::decide(const workload::JobSpec& spec,
                                          int attempt, int total_slots,
                                          std::size_t pending_tasks,
                                          Seconds now) {
  (void)attempt;
  const TenantAdmissionLedger& led = ledger(spec.tenant);

  // 1. Weighted-fair bounded queue: the tenant's admitted-but-unfinished
  //    backlog may not exceed its weight-proportional bound.
  if (led.backlog >= led.bound) return AdmissionVerdict::kQueueFull;

  // 2. Load shedding: under Critical, every non-deadlined job is turned
  //    away; under Saturated, only the lowest-weight (background) tenants'
  //    non-deadlined work is.  Deadlined work is never shed here — it is
  //    what the shedding protects.
  if (!spec.has_deadline()) {
    if (state_ >= OverloadState::kCritical) return AdmissionVerdict::kShed;
    if (state_ >= OverloadState::kSaturated &&
        led.weight <= min_weight_ + 1e-12) {
      return AdmissionVerdict::kShed;
    }
  }

  // 3. EDF feasibility: a deadlined job whose estimated queue wait plus one
  //    task service time already overruns the deadline would only be
  //    admitted to miss — reject it now so the client can back off.  Needs
  //    at least one observed task duration to estimate with.
  if (cfg_.deadline_feasibility && spec.has_deadline() && task_samples_ > 0 &&
      total_slots > 0) {
    const double est_wait = static_cast<double>(pending_tasks) * task_s_ewma_ /
                            static_cast<double>(total_slots);
    if (now + (est_wait + task_s_ewma_) * cfg_.feasibility_margin >
        spec.deadline) {
      return AdmissionVerdict::kInfeasible;
    }
  }

  return AdmissionVerdict::kAdmit;
}

void AdmissionControl::note_arrival(const workload::JobSpec& spec) {
  TenantAdmissionLedger& led = ledger(spec.tenant);
  ++led.arrivals;
  led.arrived_mb += spec.input_mb;
}

void AdmissionControl::note_admitted(JobId id, const workload::JobSpec& spec,
                                     Seconds now) {
  TenantAdmissionLedger& led = ledger(spec.tenant);
  ++led.admitted;
  led.admitted_mb += spec.input_mb;
  ++led.backlog;
  led.peak_backlog = std::max(led.peak_backlog, led.backlog);
  if (auditor_ != nullptr && led.backlog > led.bound) {
    std::ostringstream os;
    os << "tenant " << spec.tenant << " backlog " << led.backlog
       << " exceeds bound " << led.bound << " at t=" << now;
    auditor_->report_violation("admission-queue-bound", audit::Severity::kError,
                               os.str());
  }
  admitted_.emplace(id, AdmittedJob{spec.tenant, spec.deadline, false});
}

bool AdmissionControl::note_rejection(const workload::JobSpec& spec,
                                      AdmissionVerdict verdict, int attempt,
                                      Seconds now, Seconds* retry_delay) {
  (void)now;
  TenantAdmissionLedger& led = ledger(spec.tenant);
  ++led.rejections;
  if (auditor_ != nullptr) {
    // Entity encodes who was rejected and why: tenant in the high bits, the
    // verdict in the low two.
    auditor_->record(audit::Record::kJobReject,
                     (static_cast<std::uint64_t>(spec.tenant) << 2) |
                         static_cast<std::uint64_t>(verdict));
  }
  if (attempt >= cfg_.max_retries) {
    ++led.dropped;
    led.dropped_mb += spec.input_mb;
    return false;
  }
  // Capped exponential backoff with deterministic jitter from the dedicated
  // retry stream.  The jitter draw happens on every retry regardless of
  // verdict, so the stream's consumption order is a pure function of the
  // rejection sequence.
  const double factor = std::pow(2.0, static_cast<double>(attempt));
  const Seconds backoff = std::min(cfg_.retry_base * factor, cfg_.retry_cap);
  *retry_delay = backoff * (1.0 + cfg_.retry_jitter * retry_rng_.uniform());
  ++led.retries;
  if (auditor_ != nullptr) {
    auditor_->record(audit::Record::kJobRetry,
                     static_cast<std::uint64_t>(spec.tenant));
  }
  return true;
}

void AdmissionControl::note_retry_arrival(workload::TenantId tenant) {
  ++ledger(tenant).retry_arrivals;
}

void AdmissionControl::note_first_launch(JobId id) {
  auto it = admitted_.find(id);
  if (it != admitted_.end()) it->second.launched = true;
}

void AdmissionControl::note_job_finished(JobId id,
                                         const workload::JobSpec& spec,
                                         Seconds now) {
  auto it = admitted_.find(id);
  if (it == admitted_.end()) return;  // submitted before admission engaged
  TenantAdmissionLedger& led = ledger(spec.tenant);
  EANT_ASSERT(led.backlog > 0, "admission backlog underflow");
  --led.backlog;
  if (auditor_ != nullptr && it->second.deadline >= 0.0 &&
      !it->second.launched && now > it->second.deadline) {
    // Admitted-then-starved: admission promised the job a queue slot but it
    // never ran a task before its deadline passed.  The admission test that
    // let it in was too optimistic — survivable, but worth flagging.
    std::ostringstream os;
    os << "job " << id << " (tenant " << spec.tenant
       << ") admitted but never launched before deadline " << it->second.deadline
       << " (finished t=" << now << ")";
    auditor_->report_violation("admission-deadline-starved",
                               audit::Severity::kWarning, os.str());
  }
  admitted_.erase(it);
}

void AdmissionControl::note_task_duration(Seconds duration) {
  if (duration <= 0.0) return;
  if (task_samples_ == 0) {
    task_s_ewma_ = duration;
  } else {
    task_s_ewma_ = cfg_.ewma_alpha * duration +
                   (1.0 - cfg_.ewma_alpha) * task_s_ewma_;
  }
  ++task_samples_;
}

OverloadState AdmissionControl::tick(double occupancy, double backlog_per_slot,
                                     double slack_pressure, Seconds now) {
  const OverloadState next =
      detector_.fold(occupancy, backlog_per_slot, slack_pressure);
  if (next != state_) transition_to(next, now);
  return state_;
}

void AdmissionControl::transition_to(OverloadState next, Seconds now) {
  time_in_state_[static_cast<int>(state_)] += now - state_since_;
  state_ = next;
  state_since_ = now;
  ++transitions_;
  if (auditor_ != nullptr) {
    auditor_->record(audit::Record::kOverloadState,
                     static_cast<std::uint64_t>(next));
  }
}

void AdmissionControl::finalize(Seconds now) {
  if (finalized_) return;
  finalized_ = true;
  time_in_state_[static_cast<int>(state_)] += now - state_since_;
  state_since_ = now;
  if (auditor_ == nullptr) return;
  for (const auto& [tenant, led] : ledgers_) {
    // Job conservation: every arrival is eventually admitted or dropped
    // (each submission attempt gets exactly one verdict, and every retry
    // both fires and resolves before the run can drain).
    if (led.arrivals != led.admitted + led.dropped) {
      std::ostringstream os;
      os << "tenant " << tenant << ": arrivals " << led.arrivals
         << " != admitted " << led.admitted << " + dropped " << led.dropped;
      auditor_->report_violation("admission-conservation",
                                 audit::Severity::kError, os.str());
    }
    // Retry conservation: every scheduled backoff fired exactly once.
    if (led.retries != led.retry_arrivals) {
      std::ostringstream os;
      os << "tenant " << tenant << ": retries scheduled " << led.retries
         << " != retries fired " << led.retry_arrivals;
      auditor_->report_violation("admission-retry-conservation",
                                 audit::Severity::kError, os.str());
    }
    // Byte conservation across the retry loop.
    const Megabytes resolved = led.admitted_mb + led.dropped_mb;
    if (std::fabs(led.arrived_mb - resolved) > 1e-6) {
      std::ostringstream os;
      os << "tenant " << tenant << ": arrived " << led.arrived_mb
         << " MB != admitted " << led.admitted_mb << " + dropped "
         << led.dropped_mb << " MB";
      auditor_->report_violation("admission-conservation",
                                 audit::Severity::kError, os.str());
    }
  }
}

std::size_t AdmissionControl::total_rejections() const {
  std::size_t n = 0;
  for (const auto& [t, led] : ledgers_) n += led.rejections;
  return n;
}

std::size_t AdmissionControl::total_dropped() const {
  std::size_t n = 0;
  for (const auto& [t, led] : ledgers_) n += led.dropped;
  return n;
}

std::size_t AdmissionControl::total_retries() const {
  std::size_t n = 0;
  for (const auto& [t, led] : ledgers_) n += led.retries;
  return n;
}

}  // namespace eant::mr
