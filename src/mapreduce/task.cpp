#include "mapreduce/task.h"

#include "common/error.h"

namespace eant::mr {

std::string kind_name(TaskKind kind) {
  switch (kind) {
    case TaskKind::kMap:
      return "map";
    case TaskKind::kReduce:
      return "reduce";
  }
  throw PreconditionError("unknown TaskKind");
}

}  // namespace eant::mr
