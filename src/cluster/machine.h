// Machine model: hardware description plus runtime CPU-demand tracking and
// exact energy integration.
//
// The power substrate follows the paper's own model family (Sec. IV-B):
// machine power is linear in CPU utilisation, P(u) = P_idle + alpha * u with
// u in [0, 1].  The Machine integrates P(u(t)) dt continuously as tasks come
// and go, giving the "wall power" ground truth that the paper obtained from
// WattsUP meters; a sampling PowerMeter (power_meter.h) reproduces the
// metering path itself.

#pragma once

#include <cstddef>
#include <string>

#include "common/error.h"
#include "common/units.h"
#include "sim/simulator.h"

namespace eant::cluster {

/// Index of a machine within its Cluster.
using MachineId = std::size_t;

/// Passive observer of a machine's power-relevant state (the audit layer's
/// tap for redundant energy integration).  Notified after every change to
/// the hosted CPU demand or the power state, with the simulation time of the
/// change.  Must not mutate the machine.
class MachineObserver {
 public:
  virtual ~MachineObserver() = default;
  virtual void on_machine_state(MachineId id, Seconds now, double demand_cores,
                                bool up) = 0;
};

/// Static hardware description of a machine model (catalog entry).
struct MachineType {
  std::string name;       ///< model name, e.g. "Desktop", "T420", "Atom"
  int cores = 1;          ///< physical core count
  double cpu_factor = 1;  ///< per-core speed relative to the reference core
  double io_mbps = 100;   ///< effective local disk bandwidth per task stream
  double net_mbps = 1000; ///< NIC bandwidth (Gigabit Ethernet in the paper)
  int memory_gb = 8;      ///< descriptive only (Table I)
  int disk_tb = 1;        ///< descriptive only (Table I)
  int map_slots = 4;      ///< Hadoop map slots (paper: 4 per slave)
  int reduce_slots = 2;   ///< Hadoop reduce slots (paper: 2 per slave)
  Watts idle_power = 50;  ///< P_idle: power with zero CPU utilisation
  Watts alpha = 80;       ///< slope: extra power at 100% CPU utilisation

  int total_slots() const { return map_slots + reduce_slots; }

  /// Instantaneous power at utilisation u (clamped to [0,1]).
  Watts power_at(Utilization u) const;

  /// Seconds a task needs on this machine for the given reference-core CPU
  /// seconds and IO megabytes (sequential phases, the dominant-cost model).
  Seconds task_runtime(double cpu_ref_seconds, Megabytes io_mb) const;
};

/// A live machine in the simulation: tracks the aggregate CPU demand of the
/// tasks it hosts and integrates energy exactly across demand changes.
class Machine {
 public:
  Machine(sim::Simulator& sim, MachineId id, MachineType type);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  MachineId id() const { return id_; }
  const MachineType& type() const { return type_; }

  /// Adjusts the aggregate CPU demand (in cores) hosted on this machine;
  /// negative deltas release demand.  The resulting demand must stay >= 0.
  void adjust_demand(double delta_cores);

  /// Current busy cores (sum of task demands, not clamped).
  double demand_cores() const { return demand_cores_; }

  /// Machine-level CPU utilisation in [0, 1]; 0 while powered down.
  Utilization utilization() const;

  /// Powers the machine down (crash) or back up.  While down the machine
  /// draws zero power and its energy/utilisation integrals stop accruing.
  /// Going down requires all task demand to have been released first (the
  /// TaskTracker kills its attempts before pulling the plug).
  void set_up(bool up);

  /// True while the machine is powered on (the default).
  bool is_up() const { return up_; }

  /// Cumulative seconds spent powered down so far.
  Seconds downtime();

  /// Instantaneous wall power at the current utilisation; 0 while down.
  Watts power() const {
    return up_ ? type_.power_at(utilization()) : 0.0;
  }

  /// Exact cumulative energy in joules from t=0 to the current sim time.
  Joules energy();

  /// Integral of utilisation over time (used for average-utilisation
  /// metrics, Fig. 8(b)); exact, like the energy integral.
  double utilization_integral();

  /// True iff the aggregate demand exceeds the core count (tasks would be
  /// time-sliced); schedulers can consult this for contention modelling.
  bool oversubscribed() const { return demand_cores_ > type_.cores; }

  /// Sets the dynamic performance multipliers of a fail-slow (gray) fault:
  /// cpu scales the effective per-core speed, io the effective disk
  /// throughput, both in (0, 1] with 1 = healthy.  Deliberately power-
  /// neutral — a limping machine keeps drawing P(u) for its hosted demand
  /// while every task takes longer, which is exactly the wasted-energy
  /// signature of a gray failure.
  void set_perf_factors(double cpu, double io);

  /// Current dynamic performance multipliers (1 when healthy).
  double perf_cpu_factor() const { return perf_cpu_factor_; }
  double perf_io_factor() const { return perf_io_factor_; }

  /// Seconds a task needs on this machine *right now*, with the dynamic
  /// performance multipliers applied on top of the static type speed.
  /// Identical to type().task_runtime() while the machine is healthy.
  Seconds effective_task_runtime(double cpu_ref_seconds,
                                 Megabytes io_mb) const;

  /// Ratio effective / nominal runtime for the given task shape — the
  /// stretch factor the TaskTracker applies to in-flight service times.
  /// Exactly 1.0 while healthy (no floating-point drift on the fault-free
  /// path: healthy factors are the literal 1.0).
  double stretch_for(double cpu_ref_seconds, Megabytes io_mb) const;

  /// Attaches (or, with nullptr, detaches) a state observer.  At most one;
  /// it must outlive the machine or be detached first.
  void set_observer(MachineObserver* observer) { observer_ = observer; }

 private:
  void settle();  // accumulate energy/util integrals up to now

  sim::Simulator& sim_;
  MachineId id_;
  MachineType type_;
  double demand_cores_ = 0.0;
  bool up_ = true;
  double perf_cpu_factor_ = 1.0;
  double perf_io_factor_ = 1.0;
  MachineObserver* observer_ = nullptr;
  Seconds last_settle_ = 0.0;
  Joules energy_ = 0.0;
  double util_integral_ = 0.0;
  Seconds downtime_ = 0.0;
};

}  // namespace eant::cluster
