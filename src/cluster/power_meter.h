// Sampling power meter — the simulation stand-in for the WattsUP Pro meters
// the paper attaches to every machine (Sec. V-B).
//
// Unlike Machine::energy(), which integrates exactly, the PowerMeter samples
// instantaneous power on a fixed interval and accumulates a rectangle-rule
// estimate, exactly as a wall-plug meter does.  Experiments report metered
// energy; tests verify the meter tracks the exact integral closely.

#pragma once

#include <vector>

#include "cluster/machine.h"
#include "common/units.h"
#include "sim/simulator.h"

namespace eant::cluster {

/// Periodically samples one machine's power draw.
class PowerMeter {
 public:
  /// Starts metering immediately; samples every `sample_interval` seconds.
  /// When `record_series` is set, keeps every (time, watts) sample for
  /// inspection (used by tests and the Fig. 1(b) breakdown).
  PowerMeter(sim::Simulator& sim, Machine& machine,
             Seconds sample_interval = 1.0, bool record_series = false);
  ~PowerMeter();

  PowerMeter(const PowerMeter&) = delete;
  PowerMeter& operator=(const PowerMeter&) = delete;

  /// Metered cumulative energy since construction.
  Joules energy() const { return energy_; }

  /// Number of samples taken so far.
  std::size_t samples() const { return samples_; }

  /// Mean metered power over the metering window so far (0 if no samples).
  Watts mean_power() const;

  /// Recorded series; empty unless record_series was requested.
  struct Sample {
    Seconds time;
    Watts watts;
  };
  const std::vector<Sample>& series() const { return series_; }

  /// Resets the accumulated energy and series (e.g. after warm-up).
  void reset();

 private:
  bool sample();

  sim::Simulator& sim_;
  Machine& machine_;
  Seconds interval_;
  bool record_series_;
  sim::EventId event_;
  Joules energy_ = 0.0;
  std::size_t samples_ = 0;
  std::vector<Sample> series_;
};

}  // namespace eant::cluster
