#include "cluster/power_meter.h"

namespace eant::cluster {

PowerMeter::PowerMeter(sim::Simulator& sim, Machine& machine,
                       Seconds sample_interval, bool record_series)
    : sim_(sim),
      machine_(machine),
      interval_(sample_interval),
      record_series_(record_series) {
  EANT_CHECK(sample_interval > 0.0, "sample interval must be positive");
  event_ = sim_.schedule_periodic(interval_, [this] { return sample(); });
}

PowerMeter::~PowerMeter() { sim_.cancel(event_); }

bool PowerMeter::sample() {
  const Watts w = machine_.power();
  energy_ += w * interval_;
  ++samples_;
  if (record_series_) series_.push_back(Sample{sim_.now(), w});
  return true;
}

Watts PowerMeter::mean_power() const {
  if (samples_ == 0) return 0.0;
  return energy_ / (static_cast<double>(samples_) * interval_);
}

void PowerMeter::reset() {
  energy_ = 0.0;
  samples_ = 0;
  series_.clear();
}

}  // namespace eant::cluster
