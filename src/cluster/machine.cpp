#include "cluster/machine.h"

#include <algorithm>

namespace eant::cluster {

Watts MachineType::power_at(Utilization u) const {
  const Utilization clamped = std::clamp(u, 0.0, 1.0);
  return idle_power + alpha * clamped;
}

Seconds MachineType::task_runtime(double cpu_ref_seconds,
                                  Megabytes io_mb) const {
  EANT_CHECK(cpu_ref_seconds >= 0.0, "cpu work must be non-negative");
  EANT_CHECK(io_mb >= 0.0, "io volume must be non-negative");
  EANT_ASSERT(cpu_factor > 0.0 && io_mbps > 0.0, "machine type misconfigured");
  return cpu_ref_seconds / cpu_factor + io_mb / io_mbps;
}

Machine::Machine(sim::Simulator& sim, MachineId id, MachineType type)
    : sim_(sim), id_(id), type_(std::move(type)) {
  EANT_CHECK(type_.cores > 0, "machine needs at least one core");
  EANT_CHECK(type_.cpu_factor > 0.0, "cpu_factor must be positive");
  EANT_CHECK(type_.io_mbps > 0.0, "io_mbps must be positive");
  EANT_CHECK(type_.net_mbps > 0.0, "net_mbps must be positive");
  EANT_CHECK(type_.idle_power >= 0.0 && type_.alpha >= 0.0,
             "power parameters must be non-negative");
  EANT_CHECK(type_.map_slots >= 0 && type_.reduce_slots >= 0,
             "slot counts must be non-negative");
  last_settle_ = sim_.now();
}

void Machine::adjust_demand(double delta_cores) {
  settle();
  demand_cores_ += delta_cores;
  // Guard against floating-point drift when demands are released in a
  // different order than they were acquired.
  if (demand_cores_ < 0.0) {
    EANT_ASSERT(demand_cores_ > -1e-6, "task demand released twice");
    demand_cores_ = 0.0;
  }
  if (observer_) observer_->on_machine_state(id_, sim_.now(), demand_cores_, up_);
}

Utilization Machine::utilization() const {
  if (!up_) return 0.0;
  return std::clamp(demand_cores_ / type_.cores, 0.0, 1.0);
}

void Machine::set_up(bool up) {
  if (up == up_) return;
  settle();  // integrate the old power state up to now
  if (!up) {
    EANT_CHECK(demand_cores_ < 1e-9,
               "machine cannot power down while hosting task demand");
  }
  up_ = up;
  if (observer_) observer_->on_machine_state(id_, sim_.now(), demand_cores_, up_);
}

Seconds Machine::downtime() {
  settle();
  return downtime_;
}

Joules Machine::energy() {
  settle();
  return energy_;
}

double Machine::utilization_integral() {
  settle();
  return util_integral_;
}

void Machine::set_perf_factors(double cpu, double io) {
  EANT_CHECK(cpu > 0.0 && cpu <= 1.0, "perf cpu factor must lie in (0, 1]");
  EANT_CHECK(io > 0.0 && io <= 1.0, "perf io factor must lie in (0, 1]");
  perf_cpu_factor_ = cpu;
  perf_io_factor_ = io;
}

Seconds Machine::effective_task_runtime(double cpu_ref_seconds,
                                        Megabytes io_mb) const {
  EANT_CHECK(cpu_ref_seconds >= 0.0, "cpu work must be non-negative");
  EANT_CHECK(io_mb >= 0.0, "io volume must be non-negative");
  return cpu_ref_seconds / (type_.cpu_factor * perf_cpu_factor_) +
         io_mb / (type_.io_mbps * perf_io_factor_);
}

double Machine::stretch_for(double cpu_ref_seconds, Megabytes io_mb) const {
  // Fast path doubles as the bit-identity guarantee: a healthy machine's
  // factors are the assigned literal 1.0 (never arithmetic results), so the
  // exact comparison is sound and nominal * stretch stays exact.
  if (perf_cpu_factor_ == 1.0 && perf_io_factor_ == 1.0) {  // lint-ok: float-eq
    return 1.0;
  }
  const Seconds nominal = type_.task_runtime(cpu_ref_seconds, io_mb);
  if (nominal <= 0.0) return 1.0 / perf_cpu_factor_;
  return effective_task_runtime(cpu_ref_seconds, io_mb) / nominal;
}

void Machine::settle() {
  const Seconds now = sim_.now();
  EANT_ASSERT(now >= last_settle_, "simulation clock went backwards");
  const Seconds dt = now - last_settle_;
  if (dt > 0.0) {
    energy_ += power() * dt;  // power() is 0 while the machine is down
    util_integral_ += utilization() * dt;
    if (!up_) downtime_ += dt;
    last_settle_ = now;
  }
}

}  // namespace eant::cluster
