// Cluster: the fleet of machines plus the homogeneous-group index that
// E-Ant's machine-level exchange strategy (Sec. IV-D) relies on.

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/machine.h"
#include "sim/simulator.h"

namespace eant::cluster {

/// Owns the machines of a simulated Hadoop cluster.
class Cluster {
 public:
  explicit Cluster(sim::Simulator& sim) : sim_(sim) {}

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Adds `count` machines of the given type; returns the id of the first.
  MachineId add_machines(const MachineType& type, std::size_t count = 1);

  std::size_t size() const { return machines_.size(); }
  Machine& machine(MachineId id);
  const Machine& machine(MachineId id) const;

  /// All machine ids, in id order.
  std::vector<MachineId> machine_ids() const;

  /// Ids of all machines whose type name matches the given machine's type —
  /// the homogeneous sub-cluster used for machine-level exchange.  Always
  /// contains `id` itself.
  const std::vector<MachineId>& homogeneous_group(MachineId id) const;

  /// Distinct type names present in the cluster, in first-added order.
  const std::vector<std::string>& type_names() const { return type_order_; }

  /// Machines of a given type name (empty vector if none).
  std::vector<MachineId> machines_of_type(const std::string& type_name) const;

  /// Total map (resp. reduce) slots across the fleet.
  int total_map_slots() const;
  int total_reduce_slots() const;

  /// Sum of exact machine energies up to the current simulation time.
  Joules total_energy() const;

  sim::Simulator& simulator() { return sim_; }

 private:
  sim::Simulator& sim_;
  std::vector<std::unique_ptr<Machine>> machines_;
  std::map<std::string, std::vector<MachineId>> groups_;
  std::vector<std::string> type_order_;
};

}  // namespace eant::cluster
