#include "cluster/cluster.h"

#include <algorithm>

namespace eant::cluster {

MachineId Cluster::add_machines(const MachineType& type, std::size_t count) {
  EANT_CHECK(count >= 1, "must add at least one machine");
  const MachineId first = machines_.size();
  if (!groups_.contains(type.name)) type_order_.push_back(type.name);
  for (std::size_t i = 0; i < count; ++i) {
    const MachineId id = machines_.size();
    machines_.push_back(std::make_unique<Machine>(sim_, id, type));
    groups_[type.name].push_back(id);
  }
  return first;
}

Machine& Cluster::machine(MachineId id) {
  EANT_CHECK(id < machines_.size(), "machine id out of range");
  return *machines_[id];
}

const Machine& Cluster::machine(MachineId id) const {
  EANT_CHECK(id < machines_.size(), "machine id out of range");
  return *machines_[id];
}

std::vector<MachineId> Cluster::machine_ids() const {
  std::vector<MachineId> ids(machines_.size());
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = i;
  return ids;
}

const std::vector<MachineId>& Cluster::homogeneous_group(MachineId id) const {
  EANT_CHECK(id < machines_.size(), "machine id out of range");
  return groups_.at(machines_[id]->type().name);
}

std::vector<MachineId> Cluster::machines_of_type(
    const std::string& type_name) const {
  auto it = groups_.find(type_name);
  if (it == groups_.end()) return {};
  return it->second;
}

int Cluster::total_map_slots() const {
  int total = 0;
  for (const auto& m : machines_) total += m->type().map_slots;
  return total;
}

int Cluster::total_reduce_slots() const {
  int total = 0;
  for (const auto& m : machines_) total += m->type().reduce_slots;
  return total;
}

Joules Cluster::total_energy() const {
  Joules total = 0.0;
  for (const auto& m : machines_) total += m->energy();
  return total;
}

}  // namespace eant::cluster
