#include "cluster/catalog.h"

// Calibration notes.  The power/speed constants below are chosen so the
// paper's qualitative findings hold in simulation:
//   * Fig. 1(a): the desktop is more efficient below ~10-12 tasks/min, the
//     Xeon above (desktop: low idle, steep slope, few cores that saturate;
//     Xeon: high idle, shallow slope, many cores).
//   * Sec. II: Wordcount on the Atom takes ~2.8x longer than on the i7
//     (cpu_factor 0.35) but burns less energy.
//   * Fig. 8/9: a CPU-bound task costs noticeably less energy on the Xeon
//     boxes than on a desktop (steep desktop slope vs the Xeons' shallow
//     slope spread over many cores), so E-Ant learns to shed desktop load
//     — the source of the Fig. 8(a) savings and the Fig. 8(b) shift.

namespace eant::cluster::catalog {

MachineType desktop() {
  MachineType t;
  t.name = "Desktop";
  t.cores = 4;  // Table I's "8 x 3.4 GHz" are hyperthreads: 4 physical cores
  t.cpu_factor = 1.0;  // the 3.4 GHz i7 core is the reference core
  t.io_mbps = 40;
  t.memory_gb = 16;
  t.idle_power = 45;
  t.alpha = 175;  // steep slope: ~22 W per busy core, 210 W at full tilt
  return t;
}

MachineType t420() {
  MachineType t;
  t.name = "T420";
  t.cores = 24;
  t.cpu_factor = 0.85;  // 1.9 GHz server core vs the 3.4 GHz reference (better IPC)
  t.io_mbps = 60;
  t.memory_gb = 32;
  t.idle_power = 130;
  t.alpha = 60;  // shallow slope: efficient under heavy load
  return t;
}

MachineType xeon_e5() {
  MachineType t = t420();
  t.name = "XeonE5";
  return t;
}

MachineType t110() {
  MachineType t;
  t.name = "T110";
  t.cores = 8;
  t.cpu_factor = 0.80;
  t.io_mbps = 45;
  t.memory_gb = 16;
  t.idle_power = 60;
  t.alpha = 60;
  return t;
}

MachineType t320() {
  MachineType t;
  t.name = "T320";
  t.cores = 12;
  t.cpu_factor = 0.80;
  t.io_mbps = 50;
  t.memory_gb = 24;
  t.idle_power = 80;
  t.alpha = 58;
  return t;
}

MachineType t620() {
  MachineType t;
  t.name = "T620";
  t.cores = 24;
  t.cpu_factor = 0.82;
  t.io_mbps = 60;
  t.memory_gb = 16;
  t.idle_power = 120;
  t.alpha = 65;
  return t;
}

MachineType atom() {
  MachineType t;
  t.name = "Atom";
  t.cores = 4;
  t.cpu_factor = 0.35;
  t.io_mbps = 20;
  t.memory_gb = 8;
  t.idle_power = 16;
  t.alpha = 18;  // near-flat: the low-power node of Sec. V-B
  return t;
}

}  // namespace eant::cluster::catalog

namespace eant::cluster {

void add_paper_fleet(Cluster& cluster) {
  cluster.add_machines(catalog::desktop(), 8);
  cluster.add_machines(catalog::t110(), 3);
  cluster.add_machines(catalog::t420(), 2);
  cluster.add_machines(catalog::t620(), 1);
  cluster.add_machines(catalog::t320(), 1);
  cluster.add_machines(catalog::atom(), 1);
}

}  // namespace eant::cluster
