// Catalog of the machine models used in the paper.
//
// Table I (motivation study) lists the Core i7 desktop and the PowerEdge
// Xeon E5 server; Sec. V-B lists the full evaluation fleet: 1 Atom, 3 T110,
// 2 T420, 1 T320, 1 T620 and 8 Dell desktops.  The power parameters
// (P_idle, alpha) and speed factors are calibrated — not measured — values
// chosen so the qualitative behaviour the paper reports holds:
//
//   * Xeon servers: high idle power, shallow power slope, many slower cores
//     (energy-efficient only under heavy load — Fig. 1(a)/(b));
//   * Core i7 desktops: low idle power, steep slope, fast cores
//     (energy-efficient under light load);
//   * Atom: very low power, slow cores (efficient for IO-bound tasks).

#pragma once

#include "cluster/cluster.h"
#include "cluster/machine.h"

namespace eant::cluster {

/// Machine models from the paper (Table I and Sec. V-B).
namespace catalog {

/// Dell desktop, Core i7, 8 x 3.4 GHz, 16 GB (Table I "Desktop").
MachineType desktop();

/// PowerEdge T420, dual Xeon E5, 24 x 1.9 GHz, 32 GB (Table I "PowerEdge").
MachineType t420();

/// Alias for the motivation study's "Xeon E5" server (same box as T420).
MachineType xeon_e5();

/// PowerEdge T110, 8-core entry server, 16 GB.
MachineType t110();

/// PowerEdge T320, 12-core, 24 GB.
MachineType t320();

/// PowerEdge T620, 24-core, 16 GB.
MachineType t620();

/// Atom micro-server, 4 cores, 8 GB (the low-power node of Sec. V-B).
MachineType atom();

}  // namespace catalog

/// Builds the 16-machine evaluation fleet of Sec. V-B:
/// 8 Desktop + 3 T110 + 2 T420 + 1 T620 + 1 T320 + 1 Atom.
/// (The paper hosts the master on one desktop; the master does not run
/// tasks, so the fleet here is the set of slave machines.)
void add_paper_fleet(Cluster& cluster);

}  // namespace eant::cluster
