#include "sched/tarazu.h"

#include <algorithm>
#include <vector>

#include "common/error.h"

namespace eant::sched {

TarazuScheduler::TarazuScheduler(double slack, std::size_t min_samples)
    : slack_(slack), min_samples_(min_samples) {
  EANT_CHECK(slack >= 1.0, "slack must be >= 1");
}

bool TarazuScheduler::over_quota(const mr::JobState& job,
                                 cluster::MachineId machine) const {
  // Tarazu's balancing targets wimpy nodes.  "Wimpy" for a tail task means
  // slow per slot (a straggling last map is bound by one core's speed, not
  // by the machine's aggregate throughput), so machines at or above the
  // fleet's median per-core speed are never throttled.
  auto speed = [this](cluster::MachineId m) {
    return jt_->cluster().machine(m).type().cpu_factor;
  };
  std::vector<double> speeds;
  const std::size_t n = jt_->cluster().size();
  speeds.reserve(n);
  for (cluster::MachineId m = 0; m < n; ++m) speeds.push_back(speed(m));
  std::nth_element(speeds.begin(), speeds.begin() + speeds.size() / 2,
                   speeds.end());
  if (speed(machine) >= speeds[speeds.size() / 2]) return false;

  const auto& per_machine = job.started_per_machine(mr::TaskKind::kMap);
  std::size_t total = 0;
  for (auto c : per_machine) total += c;
  if (total < min_samples_) return false;  // not enough signal yet
  const double share = static_cast<double>(per_machine[machine] + 1) /
                       static_cast<double>(total + 1);
  return share > slack_ * jt_->capability_share(machine);
}

std::optional<mr::JobId> TarazuScheduler::select_job(cluster::MachineId machine,
                                                     mr::TaskKind kind) {
  const auto order = fair_order(kind);
  if (order.empty()) return std::nullopt;
  if (kind == mr::TaskKind::kReduce) return order.front();

  // Map assignment: prefer the most-starved job for which this machine is
  // still under its capability-proportional quota.  Mid-job Tarazu stays
  // work-conserving (every slot adds throughput), but in a job's final
  // waves — when its remaining maps fit within the cluster's map slots — a
  // machine over its quota declines, so slow nodes cannot capture tail
  // tasks and stretch the job (the straggler effect Tarazu eliminates).
  // On a multi-rack topology, locality breaks ties among eligible jobs: a
  // job that can feed this machine a node-local (or failing that,
  // rack-local) split keeps its traffic off the oversubscribed uplinks.
  // With one flat rack this is inert and the first eligible job runs.
  const bool racked = jt_->namenode().num_racks() > 1;
  const int tail_threshold = jt_->cluster().total_map_slots();
  std::optional<mr::JobId> rack_choice;
  std::optional<mr::JobId> any_choice;
  for (mr::JobId id : order) {
    const auto& js = jt_->job(id);
    const bool in_tail =
        js.pending(mr::TaskKind::kMap) + js.running(mr::TaskKind::kMap) <=
        static_cast<std::size_t>(tail_threshold);
    if (in_tail && over_quota(js, machine)) continue;
    if (!racked) return id;
    if (js.has_local_pending_map(machine)) return id;
    if (!rack_choice && js.has_rack_local_pending_map(machine)) {
      rack_choice = id;
    }
    if (!any_choice) any_choice = id;
  }
  return rack_choice ? rack_choice : any_choice;
}

}  // namespace eant::sched
