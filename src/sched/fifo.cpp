#include "sched/fifo.h"

#include "common/error.h"

namespace eant::sched {

std::optional<mr::JobId> FifoScheduler::select_job(
    cluster::MachineId /*machine*/, mr::TaskKind kind) {
  EANT_CHECK(jt_ != nullptr, "scheduler not attached");
  // active_jobs() is kept in submission order, so the first job with
  // pending work of the requested kind is the FIFO choice.
  for (mr::JobId id : jt_->active_jobs()) {
    if (jt_->job(id).has_pending(kind)) return id;
  }
  return std::nullopt;
}

}  // namespace eant::sched
