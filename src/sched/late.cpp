#include "sched/late.h"

#include <algorithm>

#include "common/error.h"

namespace eant::sched {

LateScheduler::LateScheduler(double straggler_beta,
                             double fast_machine_quantile)
    : straggler_beta_(straggler_beta),
      fast_machine_quantile_(fast_machine_quantile) {
  EANT_CHECK(straggler_beta >= 1.0, "straggler beta must be >= 1");
  EANT_CHECK(fast_machine_quantile >= 0.0 && fast_machine_quantile <= 1.0,
             "quantile out of range");
}

bool LateScheduler::machine_is_fast(cluster::MachineId machine) const {
  // "Fast" = capability share at or above the chosen quantile of the fleet.
  std::vector<double> shares;
  const std::size_t n = jt_->cluster().size();
  shares.reserve(n);
  for (cluster::MachineId m = 0; m < n; ++m) {
    shares.push_back(jt_->capability_share(m));
  }
  std::vector<double> sorted = shares;
  std::sort(sorted.begin(), sorted.end());
  const auto idx = static_cast<std::size_t>(
      fast_machine_quantile_ * static_cast<double>(n - 1));
  return shares[machine] >= sorted[idx];
}

bool LateScheduler::try_speculate(cluster::MachineId machine,
                                  mr::TaskKind kind) {
  if (!machine_is_fast(machine)) return false;
  const Seconds now = jt_->simulator().now();

  // Longest-elapsed straggler across active jobs; with the JobTracker's
  // speculative_progress_ranking enabled the candidates are instead ranked
  // by estimated time-left from observed progress (LATE's actual heuristic),
  // which singles out attempts crawling on a limping machine rather than
  // merely old ones.
  const bool by_progress = jt_->config().speculative_progress_ranking;
  mr::JobId best_job = 0;
  mr::TaskIndex best_index = 0;
  Seconds best_score = 0.0;
  bool found = false;
  for (mr::JobId id : jt_->active_jobs()) {
    const auto& js = jt_->job(id);
    const Seconds mean = js.mean_completed_duration(kind);
    if (mean <= 0.0) continue;  // no baseline yet
    const std::size_t total =
        kind == mr::TaskKind::kMap ? js.num_maps() : js.num_reduces();
    for (mr::TaskIndex i = 0; i < total; ++i) {
      if (js.status(kind, i) != mr::TaskStatus::kRunning) continue;
      if (js.is_speculative(kind, i)) continue;
      const Seconds elapsed = now - js.task_start_time(kind, i);
      if (elapsed <= straggler_beta_ * mean) continue;
      Seconds score = elapsed;
      if (by_progress) {
        const double p = jt_->running_progress(id, kind, i);
        score = p > 0.0 ? elapsed * (1.0 - p) / p : elapsed;
      }
      if (score > best_score) {
        best_job = id;
        best_index = i;
        best_score = score;
        found = true;
      }
    }
  }
  if (!found) return false;
  if (!jt_->start_speculative(best_job, kind, best_index,
                              jt_->tracker(machine))) {
    return false;
  }
  ++speculations_;
  return true;
}

std::optional<mr::JobId> LateScheduler::select_job(cluster::MachineId machine,
                                                   mr::TaskKind kind) {
  const auto order = fair_order(kind);
  if (!order.empty()) return order.front();
  // No pending work anywhere: consider speculating on a straggler.  The
  // speculative attempt is launched directly (consuming the free slot), so
  // the answer to the JobTracker remains "no pending assignment".
  try_speculate(machine, kind);
  return std::nullopt;
}

}  // namespace eant::sched
