// Hadoop Capacity Scheduler (referenced in the paper's related work,
// Sec. VII) in two modes:
//
//  * LEGACY (default): the cluster is divided into fixed-fraction queues;
//    jobs map to queues round-robin at submission (a stand-in for per-user
//    queue assignment), within a queue jobs run FIFO, and idle capacity
//    spills over to the busiest queues.  This mode's decision sequence is
//    digest-frozen — fig6b depends on it bit-for-bit.
//
//  * TENANT (TenantShareConfig ctor): the multi-tenant scheduler behind
//    bench/continuous_traffic.  Each tenant owns a queue with a weighted
//    slot share; queues are ranked by occupancy-per-weight (weighted
//    max-min, spill-over automatic), jobs carrying deadlines run EDF ahead
//    of their queue's FIFO backlog, a queue whose earliest deadline is
//    inside deadline_boost_window jumps the ranking entirely, and a
//    periodic sweep preempts the youngest attempts of over-share tenants
//    when an under-share tenant is starving (JobTracker::preempt_attempt —
//    KILLED, not FAILED, wasted work accounted).
//
// Both modes rebuild their job->queue map from the replayed job table at
// master failover (on_master_recovered): the map lived in the dead master's
// memory.

#pragma once

#include <map>
#include <string>
#include <vector>

#include "mapreduce/job_tracker.h"
#include "mapreduce/scheduler.h"
#include "workload/job_spec.h"

namespace eant::sched {

/// One tenant's queue in tenant mode.
struct TenantQueue {
  workload::TenantId tenant = 0;
  std::string name;
  double weight = 1.0;  ///< relative slot share (weighted max-min)
};

/// Tenant-mode configuration.
struct TenantShareConfig {
  std::vector<TenantQueue> tenants;

  /// Preempt over-share tenants' attempts when an under-share tenant
  /// starves (off = shares converge only as tasks finish naturally).
  bool preemption = true;

  /// Period of the preemption sweep.
  Seconds preemption_interval = 30.0;

  /// Attempts killed per sweep and kind, fleet-wide — bounds wasted work
  /// per rebalancing round.
  int max_preemptions_per_round = 2;

  /// A queue whose earliest runnable deadline is closer than this jumps
  /// ahead of every non-urgent queue regardless of its share.
  Seconds deadline_boost_window = 120.0;
};

/// Multi-queue capacity scheduling (legacy fixed fractions or per-tenant
/// weighted shares — see the file comment).
class CapacityScheduler final : public mr::Scheduler {
 public:
  /// Legacy mode: `capacities` are the queues' guaranteed slot fractions;
  /// they must be positive and sum to 1 (within a small tolerance).
  explicit CapacityScheduler(std::vector<double> capacities = {0.5, 0.3,
                                                               0.2});

  /// Tenant mode: one queue per configured tenant; jobs map to queues by
  /// JobSpec::tenant.  An unknown tenant gets a weight-1.0 queue on first
  /// sight (first-seen order, deterministic).
  explicit CapacityScheduler(TenantShareConfig config);

  void attach(mr::JobTracker& job_tracker) override;
  void on_job_submitted(mr::JobId job) override;
  void on_master_recovered(std::uint64_t epoch) override;

  /// Brownout: under Saturated/Critical overload the preemption sweep is
  /// paused — killing attempts to fine-tune shares wastes finished work
  /// exactly when slots are scarcest.  EDF and deadline boosting still run.
  void on_overload_state(mr::OverloadState state) override {
    overload_paused_ = state >= mr::OverloadState::kSaturated;
  }
  std::optional<mr::JobId> select_job(cluster::MachineId machine,
                                      mr::TaskKind kind) override;
  std::string name() const override { return "Capacity"; }

  bool tenant_mode() const { return tenant_mode_; }
  std::size_t num_queues() const {
    return tenant_mode_ ? queues_.size() : capacities_.size();
  }

  /// Queue a job was assigned to (for tests/observability).
  std::size_t queue_of(mr::JobId job) const;

  /// Successful preemptions this scheduler initiated (tenant mode only).
  std::size_t preemptions() const { return preemptions_; }

 private:
  /// Slots currently occupied by each queue's jobs, in one pass over the
  /// active jobs (select_job used to recount per comparator evaluation —
  /// quadratic in jobs for no change in ranking).
  std::vector<int> occupancy_by_queue() const;

  std::optional<mr::JobId> select_legacy(const std::vector<mr::JobId>& runnable);
  std::optional<mr::JobId> select_tenant(const std::vector<mr::JobId>& runnable,
                                         mr::TaskKind kind);
  std::size_t queue_for_tenant(workload::TenantId tenant);
  void preemption_sweep();
  void rebalance_kind(mr::TaskKind kind);

  // Legacy mode.
  std::vector<double> capacities_;
  std::size_t next_queue_ = 0;

  // Tenant mode.
  bool tenant_mode_ = false;
  TenantShareConfig share_;
  std::vector<TenantQueue> queues_;
  std::map<workload::TenantId, std::size_t> tenant_queue_;
  std::size_t preemptions_ = 0;
  bool overload_paused_ = false;

  std::map<mr::JobId, std::size_t> job_queue_;
  mr::JobTracker* jt_ = nullptr;
};

}  // namespace eant::sched
