// Hadoop Capacity Scheduler (referenced in the paper's related work,
// Sec. VII): the cluster is divided into queues, each guaranteed a fraction
// of the slots; within a queue jobs run FIFO, and idle capacity spills over
// to the busiest queues.  Jobs are mapped to queues round-robin at
// submission (a stand-in for per-user queue assignment).

#pragma once

#include <map>
#include <vector>

#include "mapreduce/job_tracker.h"
#include "mapreduce/scheduler.h"

namespace eant::sched {

/// Multi-queue capacity scheduling.
class CapacityScheduler final : public mr::Scheduler {
 public:
  /// `capacities` are the queues' guaranteed slot fractions; they must be
  /// positive and sum to 1 (within a small tolerance).
  explicit CapacityScheduler(std::vector<double> capacities = {0.5, 0.3,
                                                               0.2});

  void attach(mr::JobTracker& job_tracker) override { jt_ = &job_tracker; }
  void on_job_submitted(mr::JobId job) override;
  std::optional<mr::JobId> select_job(cluster::MachineId machine,
                                      mr::TaskKind kind) override;
  std::string name() const override { return "Capacity"; }

  std::size_t num_queues() const { return capacities_.size(); }

  /// Queue a job was assigned to (for tests/observability).
  std::size_t queue_of(mr::JobId job) const;

 private:
  /// Slots currently occupied by a queue's jobs.
  int queue_occupancy(std::size_t queue) const;

  std::vector<double> capacities_;
  std::map<mr::JobId, std::size_t> job_queue_;
  std::size_t next_queue_ = 0;
  mr::JobTracker* jt_ = nullptr;
};

}  // namespace eant::sched
