#include "sched/capacity.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace eant::sched {

CapacityScheduler::CapacityScheduler(std::vector<double> capacities)
    : capacities_(std::move(capacities)) {
  EANT_CHECK(!capacities_.empty(), "need at least one queue");
  double sum = 0.0;
  for (double c : capacities_) {
    EANT_CHECK(c > 0.0, "queue capacities must be positive");
    sum += c;
  }
  EANT_CHECK(std::abs(sum - 1.0) < 1e-6, "queue capacities must sum to 1");
}

void CapacityScheduler::on_job_submitted(mr::JobId job) {
  job_queue_[job] = next_queue_;
  next_queue_ = (next_queue_ + 1) % capacities_.size();
}

std::size_t CapacityScheduler::queue_of(mr::JobId job) const {
  const auto it = job_queue_.find(job);
  EANT_CHECK(it != job_queue_.end(), "unknown job");
  return it->second;
}

int CapacityScheduler::queue_occupancy(std::size_t queue) const {
  int occupied = 0;
  for (mr::JobId id : jt_->active_jobs()) {
    if (job_queue_.at(id) == queue) {
      occupied += jt_->job(id).occupied_slots();
    }
  }
  return occupied;
}

std::optional<mr::JobId> CapacityScheduler::select_job(
    cluster::MachineId /*machine*/, mr::TaskKind kind) {
  EANT_CHECK(jt_ != nullptr, "scheduler not attached");
  const auto runnable = jt_->runnable_jobs(kind);
  if (runnable.empty()) return std::nullopt;

  // Rank queues by occupancy relative to their guaranteed capacity, most
  // starved first; spill-over is automatic because a queue with no runnable
  // jobs simply never matches, letting the next-ranked queue take the slot.
  const double total_slots = static_cast<double>(jt_->total_slots());
  std::vector<std::size_t> order(capacities_.size());
  for (std::size_t q = 0; q < order.size(); ++q) order[q] = q;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     const double ra = queue_occupancy(a) /
                                       (capacities_[a] * total_slots);
                     const double rb = queue_occupancy(b) /
                                       (capacities_[b] * total_slots);
                     return ra < rb;
                   });

  for (std::size_t q : order) {
    // FIFO within the queue: runnable_jobs() is in submission order.
    for (mr::JobId id : runnable) {
      if (job_queue_.at(id) == q) return id;
    }
  }
  return std::nullopt;
}

}  // namespace eant::sched
