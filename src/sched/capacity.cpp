#include "sched/capacity.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/error.h"

namespace eant::sched {

CapacityScheduler::CapacityScheduler(std::vector<double> capacities)
    : capacities_(std::move(capacities)) {
  EANT_CHECK(!capacities_.empty(), "need at least one queue");
  double sum = 0.0;
  for (double c : capacities_) {
    EANT_CHECK(c > 0.0, "queue capacities must be positive");
    sum += c;
  }
  EANT_CHECK(std::abs(sum - 1.0) < 1e-6, "queue capacities must sum to 1");
}

CapacityScheduler::CapacityScheduler(TenantShareConfig config)
    : tenant_mode_(true), share_(std::move(config)) {
  EANT_CHECK(share_.preemption_interval > 0.0,
             "preemption interval must be positive");
  EANT_CHECK(share_.max_preemptions_per_round >= 0,
             "preemption budget must be non-negative");
  EANT_CHECK(share_.deadline_boost_window >= 0.0,
             "deadline boost window must be non-negative");
  for (const TenantQueue& q : share_.tenants) {
    EANT_CHECK(q.weight > 0.0, "tenant weights must be positive");
    EANT_CHECK(tenant_queue_.find(q.tenant) == tenant_queue_.end(),
               "duplicate tenant in TenantShareConfig");
    tenant_queue_[q.tenant] = queues_.size();
    queues_.push_back(q);
  }
}

void CapacityScheduler::attach(mr::JobTracker& job_tracker) {
  jt_ = &job_tracker;
  if (tenant_mode_ && share_.preemption &&
      share_.max_preemptions_per_round > 0) {
    // Legacy mode schedules nothing here: an extra periodic event would
    // shift event ids and break the frozen fig6b digest.
    jt_->simulator().schedule_periodic(share_.preemption_interval, [this] {
      preemption_sweep();
      return true;
    });
  }
}

std::size_t CapacityScheduler::queue_for_tenant(workload::TenantId tenant) {
  const auto it = tenant_queue_.find(tenant);
  if (it != tenant_queue_.end()) return it->second;
  // Unconfigured tenant: open a default-weight queue in first-seen order
  // (submission order, hence deterministic).
  tenant_queue_[tenant] = queues_.size();
  queues_.push_back(
      TenantQueue{tenant, "tenant-" + std::to_string(tenant), 1.0});
  return queues_.size() - 1;
}

void CapacityScheduler::on_job_submitted(mr::JobId job) {
  if (tenant_mode_) {
    // submit_now registers the job before notifying the scheduler, so the
    // spec (and its tenant tag) is already readable.
    job_queue_[job] = queue_for_tenant(jt_->job(job).spec().tenant);
    return;
  }
  job_queue_[job] = next_queue_;
  next_queue_ = (next_queue_ + 1) % capacities_.size();
}

void CapacityScheduler::on_master_recovered(std::uint64_t /*epoch*/) {
  // The job->queue map lived in the dead master's memory.  Rebuild it from
  // the replayed job table in submission order — recover_master replays
  // buffered submissions (which re-enter via on_job_submitted) before this
  // hook runs, so active_jobs() is the complete post-recovery picture.
  job_queue_.clear();
  next_queue_ = 0;
  for (mr::JobId id : jt_->active_jobs()) {
    if (tenant_mode_) {
      job_queue_[id] = queue_for_tenant(jt_->job(id).spec().tenant);
    } else {
      job_queue_[id] = next_queue_;
      next_queue_ = (next_queue_ + 1) % capacities_.size();
    }
  }
}

std::size_t CapacityScheduler::queue_of(mr::JobId job) const {
  const auto it = job_queue_.find(job);
  EANT_CHECK(it != job_queue_.end(), "unknown job");
  return it->second;
}

std::vector<int> CapacityScheduler::occupancy_by_queue() const {
  std::vector<int> occ(num_queues(), 0);
  for (mr::JobId id : jt_->active_jobs()) {
    occ[job_queue_.at(id)] += jt_->job(id).occupied_slots();
  }
  return occ;
}

std::optional<mr::JobId> CapacityScheduler::select_job(
    cluster::MachineId /*machine*/, mr::TaskKind kind) {
  EANT_CHECK(jt_ != nullptr, "scheduler not attached");
  const auto runnable = jt_->runnable_jobs(kind);
  if (runnable.empty()) return std::nullopt;
  return tenant_mode_ ? select_tenant(runnable, kind) : select_legacy(runnable);
}

std::optional<mr::JobId> CapacityScheduler::select_legacy(
    const std::vector<mr::JobId>& runnable) {
  // Rank queues by occupancy relative to their guaranteed capacity, most
  // starved first; spill-over is automatic because a queue with no runnable
  // jobs simply never matches, letting the next-ranked queue take the slot.
  const double total_slots = static_cast<double>(jt_->total_slots());
  const std::vector<int> occ = occupancy_by_queue();
  std::vector<std::size_t> order(capacities_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     const double ra = occ[a] / (capacities_[a] * total_slots);
                     const double rb = occ[b] / (capacities_[b] * total_slots);
                     return ra < rb;
                   });

  for (std::size_t q : order) {
    // FIFO within the queue: runnable_jobs() is in submission order.
    for (mr::JobId id : runnable) {
      if (job_queue_.at(id) == q) return id;
    }
  }
  return std::nullopt;
}

std::optional<mr::JobId> CapacityScheduler::select_tenant(
    const std::vector<mr::JobId>& runnable, mr::TaskKind kind) {
  const Seconds now = jt_->simulator().now();
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // One pass over the active jobs: per-queue kind occupancy; one pass over
  // the runnable jobs: earliest runnable deadline per queue.
  std::vector<int> occ(queues_.size(), 0);
  for (mr::JobId id : jt_->active_jobs()) {
    occ[job_queue_.at(id)] += static_cast<int>(jt_->job(id).running(kind));
  }
  std::vector<double> earliest_deadline(queues_.size(), kInf);
  std::vector<bool> has_runnable(queues_.size(), false);
  for (mr::JobId id : runnable) {
    const std::size_t q = job_queue_.at(id);
    has_runnable[q] = true;
    const workload::JobSpec& spec = jt_->job(id).spec();
    if (spec.has_deadline() && spec.deadline < earliest_deadline[q]) {
      earliest_deadline[q] = spec.deadline;
    }
  }

  // Weighted max-min ranking: most starved queue (lowest occupied slots per
  // unit weight) first; a queue with an imminent deadline jumps the whole
  // ranking, earlier deadline first.
  std::vector<std::size_t> order;
  for (std::size_t q = 0; q < queues_.size(); ++q) {
    if (has_runnable[q]) order.push_back(q);
  }
  const auto urgent = [&](std::size_t q) {
    return earliest_deadline[q] < now + share_.deadline_boost_window;
  };
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     const bool ua = urgent(a);
                     const bool ub = urgent(b);
                     if (ua && !ub) return true;
                     if (ub && !ua) return false;
                     if (ua && ub) {
                       if (earliest_deadline[a] < earliest_deadline[b]) {
                         return true;
                       }
                       if (earliest_deadline[b] < earliest_deadline[a]) {
                         return false;
                       }
                     }
                     const double ra = occ[a] / queues_[a].weight;
                     const double rb = occ[b] / queues_[b].weight;
                     return ra < rb;
                   });

  for (std::size_t q : order) {
    // EDF ahead of the queue's FIFO backlog: the earliest-deadline runnable
    // job wins; without deadline candidates, submission order (runnable
    // order) decides.
    std::optional<mr::JobId> edf;
    double edf_deadline = kInf;
    std::optional<mr::JobId> fifo;
    for (mr::JobId id : runnable) {
      if (job_queue_.at(id) != q) continue;
      const workload::JobSpec& spec = jt_->job(id).spec();
      if (spec.has_deadline()) {
        if (spec.deadline < edf_deadline) {
          edf_deadline = spec.deadline;
          edf = id;
        }
      } else if (!fifo) {
        fifo = id;
      }
    }
    if (edf) return edf;
    if (fifo) return fifo;
  }
  return std::nullopt;
}

void CapacityScheduler::preemption_sweep() {
  // The sweep runs inside the master process: while it is down (or before
  // trackers exist) nothing rebalances.
  if (jt_ == nullptr || !jt_->master_up() || overload_paused_) return;
  rebalance_kind(mr::TaskKind::kMap);
  rebalance_kind(mr::TaskKind::kReduce);
}

void CapacityScheduler::rebalance_kind(mr::TaskKind kind) {
  // Preemption is a last resort: with free slots of the kind anywhere, the
  // starved queue gets them at the next heartbeat without killing work.
  if (queues_.empty()) return;
  if (jt_->total_free_slots(kind) > 0) return;

  const std::size_t nq = queues_.size();
  std::vector<int> occ(nq, 0);
  std::vector<int> pending(nq, 0);
  for (mr::JobId id : jt_->active_jobs()) {
    const mr::JobState& js = jt_->job(id);
    const std::size_t q = job_queue_.at(id);
    occ[q] += static_cast<int>(js.running(kind));
    pending[q] += static_cast<int>(js.pending(kind));
  }

  // Weighted max-min shares over the demanding queues only: an idle tenant
  // cedes its share, it does not strand slots.
  int pool = 0;
  double demand_weight = 0.0;
  for (std::size_t q = 0; q < nq; ++q) {
    pool += occ[q];
    if (occ[q] > 0 || pending[q] > 0) demand_weight += queues_[q].weight;
  }
  if (pool == 0 || demand_weight <= 0.0) return;

  std::vector<double> share(nq, 0.0);
  int deficit = 0;
  for (std::size_t q = 0; q < nq; ++q) {
    if (occ[q] == 0 && pending[q] == 0) continue;
    share[q] = queues_[q].weight / demand_weight * pool;
    if (pending[q] > 0 && occ[q] + 1 <= share[q] + 1e-9) {
      // A whole slot (or more) below fair share with work waiting.
      deficit += static_cast<int>(share[q] + 1e-9) - occ[q];
    }
  }
  if (deficit == 0) return;
  int budget = std::min(deficit, share_.max_preemptions_per_round);

  // Victims: running tasks of over-share queues, youngest attempt first
  // (least work wasted), never driving a queue below its own share.
  struct Victim {
    Seconds start = 0.0;
    mr::JobId job = 0;
    mr::TaskIndex index = 0;
    std::size_t queue = 0;
  };
  const auto above_share_after_kill = [&](std::size_t q) {
    return static_cast<double>(occ[q] - 1) >= share[q] - 1e-9;
  };
  std::vector<Victim> victims;
  for (mr::JobId id : jt_->active_jobs()) {
    const std::size_t q = job_queue_.at(id);
    if (!above_share_after_kill(q)) continue;
    const mr::JobState& js = jt_->job(id);
    const std::size_t total =
        kind == mr::TaskKind::kMap ? js.num_maps() : js.num_reduces();
    for (mr::TaskIndex i = 0; i < total; ++i) {
      if (js.status(kind, i) != mr::TaskStatus::kRunning) continue;
      victims.push_back(Victim{js.task_start_time(kind, i), id, i, q});
    }
  }
  std::stable_sort(victims.begin(), victims.end(),
                   [](const Victim& a, const Victim& b) {
                     if (b.start < a.start) return true;  // youngest first
                     if (a.start < b.start) return false;
                     if (a.job < b.job) return true;
                     if (b.job < a.job) return false;
                     return a.index < b.index;
                   });

  for (const Victim& v : victims) {
    if (budget <= 0) break;
    if (!above_share_after_kill(v.queue)) continue;
    if (jt_->preempt_attempt(v.job, kind, v.index) == 0) continue;
    --occ[v.queue];
    --budget;
    ++preemptions_;
  }
}

}  // namespace eant::sched
