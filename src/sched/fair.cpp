#include "sched/fair.h"

#include <algorithm>

#include "common/error.h"

namespace eant::sched {

FairScheduler::FairScheduler(int locality_delay)
    : locality_delay_(locality_delay) {
  EANT_CHECK(locality_delay >= 0, "locality delay must be non-negative");
}

std::vector<mr::JobId> FairScheduler::fair_order(mr::TaskKind kind) const {
  EANT_CHECK(jt_ != nullptr, "scheduler not attached");
  std::vector<mr::JobId> runnable = jt_->runnable_jobs(kind);
  if (runnable.empty()) return runnable;

  const std::size_t active = jt_->active_jobs().size();
  const double share =
      static_cast<double>(jt_->total_slots()) / static_cast<double>(active);
  EANT_ASSERT(share > 0.0, "cluster has no slots");

  // Sort most-starved-first by occupied/share; ties resolved by submission
  // order (earlier job first), matching the Hadoop Fair Scheduler.
  std::stable_sort(runnable.begin(), runnable.end(),
                   [&](mr::JobId a, mr::JobId b) {
                     const double ra = jt_->job(a).occupied_slots() / share;
                     const double rb = jt_->job(b).occupied_slots() / share;
                     if (ra != rb) return ra < rb;
                     return a < b;
                   });
  return runnable;
}

std::optional<mr::JobId> FairScheduler::select_job(
    cluster::MachineId machine, mr::TaskKind kind) {
  const auto order = fair_order(kind);
  if (order.empty()) return std::nullopt;
  if (locality_delay_ == 0 || overload_relaxed_ ||
      kind != mr::TaskKind::kMap) {
    return order.front();
  }

  // Delay scheduling: walk the fair ordering; a job with node-local data
  // here runs (resetting its skip budget), a job without waits until it has
  // been skipped long enough.  With a multi-rack topology the wait is
  // two-level (Zaharia's D1/D2): one delay budget buys a rack-local launch,
  // twice that buys launching anywhere.  With one flat rack this reduces to
  // the classic single threshold.
  const bool racked = jt_->namenode().num_racks() > 1;
  for (mr::JobId id : order) {
    const auto& js = jt_->job(id);
    if (js.has_local_pending_map(machine)) {
      skip_counts_[id] = 0;
      return id;
    }
    const bool rack_here = racked && js.has_rack_local_pending_map(machine);
    const int needed =
        !racked ? locality_delay_
                : (rack_here ? locality_delay_ : 2 * locality_delay_);
    int& skips = skip_counts_[id];
    if (skips >= needed) {
      skips = 0;
      return id;  // waited long enough: run at the best level available
    }
    ++skips;
    ++locality_waits_;
  }
  return std::nullopt;  // everyone is waiting for a better-placed machine
}

}  // namespace eant::sched
