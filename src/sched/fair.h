// Hadoop Fair Scheduler (single pool, equal min-shares) — the paper's first
// baseline (Sec. VI).  Each active job's fair share is total_slots / #jobs;
// the job furthest below its share (smallest occupied/share ratio) receives
// the next slot.  Heterogeneity-oblivious by construction: it never looks at
// machine characteristics.

#pragma once

#include <map>

#include "mapreduce/job_tracker.h"
#include "mapreduce/scheduler.h"

namespace eant::sched {

/// Deficit-based fair sharing across active jobs, with optional delay
/// scheduling (Zaharia et al., EuroSys'10): a head-of-line job without
/// node-local data on the offering machine is skipped a bounded number of
/// times, waiting for a machine that holds one of its splits.
class FairScheduler : public mr::Scheduler {
 public:
  /// `locality_delay` is the number of times a job may be skipped for
  /// lacking local data before it runs non-locally anyway; 0 disables
  /// delay scheduling (plain Hadoop Fair Scheduler).
  explicit FairScheduler(int locality_delay = 0);

  void attach(mr::JobTracker& job_tracker) override { jt_ = &job_tracker; }

  std::optional<mr::JobId> select_job(cluster::MachineId machine,
                                      mr::TaskKind kind) override;

  /// Brownout: under Saturated/Critical overload the locality wait is a
  /// luxury — holding slots idle for better placement only deepens the
  /// backlog — so delay scheduling is suspended until the detector decays
  /// back below Saturated.
  void on_overload_state(mr::OverloadState state) override {
    overload_relaxed_ = state >= mr::OverloadState::kSaturated;
  }

  std::string name() const override { return "Fair"; }

  /// Number of times delay scheduling held a job back (observability).
  std::size_t locality_waits() const { return locality_waits_; }

 protected:
  /// Runnable jobs ordered most-starved-first (the fair-share ordering);
  /// shared with the schedulers that refine Fair's choice (Tarazu, LATE).
  std::vector<mr::JobId> fair_order(mr::TaskKind kind) const;

  mr::JobTracker* jt_ = nullptr;

 private:
  int locality_delay_;
  std::map<mr::JobId, int> skip_counts_;
  std::size_t locality_waits_ = 0;
  bool overload_relaxed_ = false;
};

}  // namespace eant::sched
