// Tarazu-style communication-aware load balancing (Ahmad et al., ASPLOS'12)
// — the paper's second baseline.
//
// Tarazu improves MapReduce on heterogeneous clusters by (a) balancing map
// placement in proportion to machine compute capability, which avoids both
// overloading wimpy nodes and the bursty shuffle traffic caused by skewed
// map-output placement, and (b) otherwise sharing fairly.  This
// reimplementation refines the Fair ordering with a capability-proportional
// map quota per machine: a machine already holding more than slack x its
// capability share of a job's maps must wait a heartbeat before taking more
// of that job's work.  The balanced placement pays off through the
// JobTracker's shuffle-skew penalty and by keeping slow nodes uncongested —
// exactly the mechanism (performance, not energy) the paper credits Tarazu
// with in Sec. VI-A.

#pragma once

#include "sched/fair.h"

namespace eant::sched {

/// Capability-proportional, communication-aware balancing on top of Fair.
class TarazuScheduler final : public FairScheduler {
 public:
  /// `slack` is the tolerated overshoot of a machine's capability share
  /// before it is throttled for a heartbeat; `min_samples` is the number of
  /// started maps required before the quota binds.
  explicit TarazuScheduler(double slack = 1.5, std::size_t min_samples = 8);

  std::optional<mr::JobId> select_job(cluster::MachineId machine,
                                      mr::TaskKind kind) override;

  std::string name() const override { return "Tarazu"; }

 private:
  bool over_quota(const mr::JobState& job, cluster::MachineId machine) const;

  double slack_;
  std::size_t min_samples_;
};

}  // namespace eant::sched
