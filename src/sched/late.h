// LATE-style speculative execution (Zaharia et al., OSDI'08), provided as an
// extension baseline from the paper's related work (Sec. VII).
//
// On top of Fair sharing, when a machine has a free slot and no pending work
// exists, LATE looks for the longest-running straggler task — one whose
// elapsed time exceeds `straggler_beta` x the mean duration of the job's
// completed tasks of the same kind — and launches a duplicate attempt on
// this machine if it is among the faster machines of the cluster.  The
// first attempt to finish wins.

#pragma once

#include "sched/fair.h"

namespace eant::sched {

/// Fair sharing plus straggler speculation.
class LateScheduler final : public FairScheduler {
 public:
  explicit LateScheduler(double straggler_beta = 1.5,
                         double fast_machine_quantile = 0.5);

  std::optional<mr::JobId> select_job(cluster::MachineId machine,
                                      mr::TaskKind kind) override;

  std::string name() const override { return "LATE"; }

  /// Number of speculative attempts launched so far (observability).
  std::size_t speculations() const { return speculations_; }

 private:
  bool machine_is_fast(cluster::MachineId machine) const;
  bool try_speculate(cluster::MachineId machine, mr::TaskKind kind);

  double straggler_beta_;
  double fast_machine_quantile_;
  std::size_t speculations_ = 0;
};

}  // namespace eant::sched
