// Hadoop's default FIFO scheduler: the earliest-submitted job with pending
// work receives every slot.  Included as the heterogeneity-agnostic default
// the paper's Fig. 10/12 energy savings are measured against.

#pragma once

#include "mapreduce/job_tracker.h"
#include "mapreduce/scheduler.h"

namespace eant::sched {

/// First-in-first-out job scheduling (Hadoop default).
class FifoScheduler final : public mr::Scheduler {
 public:
  void attach(mr::JobTracker& job_tracker) override { jt_ = &job_tracker; }

  std::optional<mr::JobId> select_job(cluster::MachineId machine,
                                      mr::TaskKind kind) override;

  std::string name() const override { return "FIFO"; }

 private:
  mr::JobTracker* jt_ = nullptr;
};

}  // namespace eant::sched
