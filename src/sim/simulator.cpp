#include "sim/simulator.h"

#include <utility>

namespace eant::sim {

EventId Simulator::schedule_at(Seconds t, std::function<void()> fn) {
  EANT_CHECK(t >= now_, "cannot schedule in the past");
  EANT_CHECK(static_cast<bool>(fn), "event callback must be set");
  const EventId id = next_id_++;
  queue_.push(Entry{t, next_seq_++, id, std::move(fn), 0.0, nullptr});
  queued_.insert(id);
  if (observer_) observer_->on_event_scheduled(t, id);
  return id;
}

EventId Simulator::schedule_periodic(Seconds interval,
                                     std::function<bool()> fn,
                                     Seconds first_delay) {
  EANT_CHECK(interval > 0.0, "periodic interval must be positive");
  EANT_CHECK(static_cast<bool>(fn), "event callback must be set");
  if (first_delay < 0.0) first_delay = interval;
  const EventId id = next_id_++;
  queue_.push(Entry{now_ + first_delay, next_seq_++, id, nullptr, interval,
                    std::move(fn)});
  queued_.insert(id);
  if (observer_) observer_->on_event_scheduled(now_ + first_delay, id);
  return id;
}

bool Simulator::step() {
  while (!queue_.empty()) {
    Entry entry = queue_.top();
    queue_.pop();
    queued_.erase(entry.id);
    if (auto it = cancelled_.find(entry.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    execute(std::move(entry));
    return true;
  }
  return false;
}

void Simulator::execute(Entry entry) {
  EANT_ASSERT(entry.time >= now_, "event queue went backwards");
  now_ = entry.time;
  ++executed_;
  executing_id_ = entry.id;
  if (observer_) observer_->on_event_executed(now_, entry.id);
  if (entry.repeat_fn) {
    const bool keep = entry.repeat_fn();
    if (keep && !cancelled_.contains(entry.id)) {
      entry.time = now_ + entry.repeat_interval;
      entry.seq = next_seq_++;
      const Seconds next_time = entry.time;
      const EventId id = entry.id;
      queued_.insert(id);
      queue_.push(std::move(entry));
      if (observer_) observer_->on_event_scheduled(next_time, id);
    } else {
      cancelled_.erase(entry.id);
    }
  } else {
    entry.fn();
    // A one-shot callback may have cancelled its own (already-fired) id;
    // drop the tombstone so it cannot skew pending().
    cancelled_.erase(entry.id);
  }
  executing_id_ = 0;
}

void Simulator::run_until(Seconds t) {
  EANT_CHECK(t >= now_, "cannot run to the past");
  while (!queue_.empty() && queue_.top().time <= t) {
    Entry entry = queue_.top();
    queue_.pop();
    queued_.erase(entry.id);
    if (auto it = cancelled_.find(entry.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    execute(std::move(entry));
  }
  now_ = t;
}

void Simulator::run() {
  while (step()) {
  }
}

}  // namespace eant::sim
