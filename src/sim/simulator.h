// Discrete-event simulation engine.
//
// The whole cluster reproduction is driven by one Simulator: task completions,
// TaskTracker heartbeats (3 s), power-meter samples, control-interval ticks
// (5 min) and job arrivals are all events.  Events at equal timestamps run in
// schedule order (FIFO), which keeps every experiment deterministic for a
// fixed seed.

#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/error.h"
#include "common/units.h"

namespace eant::sim {

/// Identifies a scheduled event so it can be cancelled before it fires.
using EventId = std::uint64_t;

/// Passive observer of the event loop (the audit layer's tap).  Callbacks
/// fire synchronously inside schedule/execute and must not mutate the
/// simulator.
class SimObserver {
 public:
  virtual ~SimObserver() = default;

  /// An event was enqueued for absolute time t.
  virtual void on_event_scheduled(Seconds t, EventId id) = 0;

  /// An event is about to run; `t` is the (already advanced) clock.
  virtual void on_event_executed(Seconds t, EventId id) = 0;
};

/// Single-threaded event-driven simulator with a monotone clock.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time in seconds; starts at 0.
  Seconds now() const { return now_; }

  /// Schedules fn to run at absolute time t (t >= now).
  EventId schedule_at(Seconds t, std::function<void()> fn);

  /// Schedules fn to run dt seconds from now (dt >= 0).
  EventId schedule_after(Seconds dt, std::function<void()> fn) {
    EANT_CHECK(dt >= 0.0, "delay must be non-negative");
    return schedule_at(now_ + dt, std::move(fn));
  }

  /// Schedules fn every `interval` seconds starting at now + first_delay
  /// (defaults to one full interval), until fn returns false or the event is
  /// cancelled.  A non-default first_delay staggers the phase of otherwise
  /// synchronised periodic activities (e.g. TaskTracker heartbeats).
  EventId schedule_periodic(Seconds interval, std::function<bool()> fn,
                            Seconds first_delay = -1.0);

  /// Cancels a pending event; a no-op if it already fired or was cancelled.
  /// Cancelling the event currently executing (a periodic callback cancelling
  /// itself) stops its repetition.
  void cancel(EventId id) {
    // Only ids that are actually live may enter cancelled_, otherwise a
    // stale id would sit in the set forever and skew pending().
    if (queued_.contains(id) || id == executing_id_) cancelled_.insert(id);
  }

  /// Executes the next pending event; returns false when the queue is empty.
  bool step();

  /// Runs every event with a timestamp <= t, then advances the clock to t.
  void run_until(Seconds t);

  /// Runs until the queue drains.
  void run();

  /// Number of live (not-yet-cancelled) pending events.
  std::size_t pending() const { return queue_.size() - cancelled_.size(); }

  /// Total number of events executed so far (for perf reporting and tests).
  std::uint64_t executed() const { return executed_; }

  /// Attaches (or, with nullptr, detaches) an observer that is notified of
  /// every schedule and execution.  At most one observer; it must outlive
  /// the simulator or be detached first.
  void set_observer(SimObserver* observer) { observer_ = observer; }

 private:
  struct Entry {
    Seconds time;
    std::uint64_t seq;  // tie-break: equal-time events fire in schedule order
    EventId id;
    std::function<void()> fn;
    Seconds repeat_interval;          // 0 when one-shot
    std::function<bool()> repeat_fn;  // set for periodic entries

    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  void execute(Entry entry);

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::unordered_set<EventId> queued_;     // ids currently in the queue
  std::unordered_set<EventId> cancelled_;  // always a subset of live ids
  Seconds now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  EventId executing_id_ = 0;  // id of the event being executed (0 = none)
  std::uint64_t executed_ = 0;
  SimObserver* observer_ = nullptr;
};

}  // namespace eant::sim
