// Fault injection for the cluster simulation.
//
// A FaultPlan describes *what* goes wrong: scripted machine crash/recover
// events, stochastic machine failures (exponential MTBF) with exponential
// repair times (MTTR), and a transient per-attempt task-failure probability.
// The FaultInjector turns the plan into simulator events and invokes
// machine-level handlers (wired to TaskTracker::crash/restart by the exp
// harness) when a machine goes down or comes back.
//
// The injector lives in the sim layer on purpose: it knows machines only as
// indices and reports faults through callbacks, so the MapReduce engine owns
// all recovery semantics.  Every random draw comes from dedicated forked RNG
// streams (one per machine for MTBF/MTTR, one for task failures), so a run
// is exactly reproducible per seed and adding fault injection never perturbs
// the draws of other components.

#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "sim/simulator.h"

namespace eant::sim {

/// One scripted machine fault transition.
struct FaultEvent {
  enum class Kind { kCrash, kRecover };
  Seconds time = 0.0;
  std::size_t machine = 0;
  Kind kind = Kind::kCrash;
};

/// Declarative description of the faults to inject into a run.
struct FaultPlan {
  /// Scripted transitions (applied in time order; redundant transitions —
  /// crashing a machine that is already down — are ignored).
  std::vector<FaultEvent> events;

  /// Mean time between stochastic failures per machine (exponential);
  /// 0 disables stochastic machine failures.
  Seconds mtbf = 0.0;

  /// Mean time to repair a stochastically failed machine (exponential);
  /// 0 with mtbf > 0 means crashed machines stay down forever.
  Seconds mttr = 0.0;

  /// Probability that any single task attempt dies before completing
  /// (Hadoop's transient task failures: bad disk sector, JVM crash, ...).
  double task_failure_prob = 0.0;

  /// True when the plan injects anything at all.
  bool enabled() const {
    return !events.empty() || mtbf > 0.0 || task_failure_prob > 0.0;
  }

  /// Scripting helpers.
  FaultPlan& crash_at(std::size_t machine, Seconds t);
  FaultPlan& recover_at(std::size_t machine, Seconds t);
  /// Crash at t and recover `downtime` seconds later.
  FaultPlan& crash_for(std::size_t machine, Seconds t, Seconds downtime);
};

/// Executes a FaultPlan against a Simulator.
class FaultInjector {
 public:
  using MachineHandler = std::function<void(std::size_t machine)>;

  /// One applied machine transition (for logs, tests and determinism
  /// checks).
  struct Transition {
    Seconds time = 0.0;
    std::size_t machine = 0;
    bool up = false;  ///< state after the transition
  };

  FaultInjector(Simulator& sim, FaultPlan plan, Rng rng,
                std::size_t num_machines);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Installs the crash/recover callbacks.  Must precede start().
  void set_handlers(MachineHandler on_crash, MachineHandler on_recover);

  /// Schedules every scripted event and seeds the stochastic failure
  /// processes.  Call exactly once.
  void start();

  /// The injector's view of a machine's state.
  bool is_up(std::size_t machine) const;

  /// Transient task-failure draw, consulted once per launched attempt.
  /// Empty: the attempt runs to completion.  Otherwise: the fraction of the
  /// attempt's nominal duration after which it fails.
  std::optional<double> draw_attempt_failure();

  /// Every machine transition actually applied, in simulation order.
  const std::vector<Transition>& log() const { return log_; }

  /// Number of crash transitions applied so far.
  std::size_t crashes() const;

  const FaultPlan& plan() const { return plan_; }

 private:
  void crash(std::size_t machine);
  void recover(std::size_t machine);
  void schedule_stochastic_crash(std::size_t machine);
  void schedule_stochastic_recovery(std::size_t machine);

  Simulator& sim_;
  FaultPlan plan_;
  std::vector<Rng> machine_rng_;  // one stream per machine (MTBF/MTTR draws)
  Rng task_rng_;                  // transient task-failure stream
  std::vector<bool> up_;
  MachineHandler on_crash_;
  MachineHandler on_recover_;
  std::vector<Transition> log_;
  bool started_ = false;
};

}  // namespace eant::sim
