// Fault injection for the cluster simulation.
//
// A FaultPlan describes *what* goes wrong: scripted machine crash/recover
// events, stochastic machine failures (exponential MTBF) with exponential
// repair times (MTTR), a transient per-attempt task-failure probability,
// scripted and stochastic *network* faults (access-link and rack-trunk
// degradation/failure — a trunk factor of 0 partitions the rack), a
// transient shuffle-fetch failure probability, and scripted and stochastic
// *fail-slow* (gray) faults — CPU slowdown and disk-throughput degradation
// factors, including progressive "rot" ramps, under which a machine keeps
// accepting work but runs it at a fraction of nominal speed — and scripted
// and stochastic *control-plane* faults that crash the cluster masters
// (JobTracker, NameNode) while the data plane keeps running, and scripted
// and stochastic *silent data corruption* — bit rot in stored HDFS replicas
// and garbled shuffle payloads — that damages bytes without failing
// anything at injection time (the damage surfaces only through checksum
// verification at read time, the background scrubber, or never).  The
// FaultInjector turns the plan into simulator events and invokes handlers
// (wired to TaskTracker::crash/restart, Fabric::set_*_factor and
// TaskTracker::set_perf_factors by the exp harness) when a machine or link
// changes state.
//
// The injector lives in the sim layer on purpose: it knows machines, racks
// and links only as indices and reports faults through callbacks, so the
// MapReduce engine owns all recovery semantics.  Every random draw comes
// from dedicated forked RNG streams (one per machine for MTBF/MTTR, one per
// machine for link flaps, one for task failures, one for fetch failures,
// one per machine for slow faults), so a run is exactly reproducible per
// seed and adding fault injection never perturbs the draws of other
// components.
//
// Stochastic failure processes are *restart-anchored*: a machine's next
// crash is always sampled from the instant it (re)entered service, never
// from a schedule drawn before an intervening scripted fault — so
// back-to-back failures can never fire "in the past" relative to the
// recovery that preceded them.

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "sim/simulator.h"

namespace eant::sim {

/// One scripted machine fault transition.
struct FaultEvent {
  enum class Kind { kCrash, kRecover };
  Seconds time = 0.0;
  std::size_t machine = 0;
  Kind kind = Kind::kCrash;
};

/// One scripted network fault transition: sets the capacity factor of a
/// machine's access link (tx + rx together) or a rack's trunk (up + down).
/// Factor 1 restores full capacity, (0, 1) degrades, 0 takes the link down —
/// a down trunk partitions its rack from the rest of the fabric.
struct NetFaultEvent {
  enum class Target { kNodeLink, kRackTrunk };
  Seconds time = 0.0;
  Target target = Target::kNodeLink;
  std::size_t index = 0;  ///< machine id (kNodeLink) or rack id (kRackTrunk)
  double factor = 0.0;
};

/// One scripted control-plane fault transition: crashes or recovers a
/// cluster *master* — the JobTracker or the NameNode — rather than a worker.
/// While a master is down the data plane keeps running (tasks compute,
/// flows drain) but the control functions the master provides are
/// unavailable; the MapReduce engine owns the recovery semantics
/// (checkpoint replay, epoch fencing, re-registration).
struct MasterFaultEvent {
  enum class Target { kJobTracker, kNameNode };
  enum class Kind { kCrash, kRecover };
  Seconds time = 0.0;
  Target target = Target::kJobTracker;
  Kind kind = Kind::kCrash;
};

/// One scripted fail-slow (gray failure) transition: sets a machine's CPU
/// slowdown factor and disk/IO throughput factor.  Both factors multiply
/// the machine's nominal speed: 1 restores full speed, (0, 1) limps —
/// a cpu_factor of 0.5 doubles the compute phase of every task on the
/// machine.  Unlike crashes the machine stays up and keeps accepting work.
struct SlowFaultEvent {
  Seconds time = 0.0;
  std::size_t machine = 0;
  double cpu_factor = 1.0;
  double io_factor = 1.0;
};

/// One scripted silent-corruption event: flips bits in one stored HDFS
/// replica.  `block >= 0` targets that block's replica on `machine`;
/// `block < 0` corrupts a deterministically chosen replica currently stored
/// on `machine` (the handler owns the choice — the injector knows no
/// blocks).  Corruption is *silent*: nothing fails at injection time; the
/// damage is discovered only by a verified read, the background scrubber,
/// or never (a latent corruption).
struct CorruptFaultEvent {
  Seconds time = 0.0;
  std::size_t machine = 0;
  std::int64_t block = -1;
};

/// Declarative description of the faults to inject into a run.
struct FaultPlan {
  /// Scripted transitions (applied in time order; redundant transitions —
  /// crashing a machine that is already down — are ignored).
  std::vector<FaultEvent> events;

  /// Mean time between stochastic failures per machine (exponential);
  /// 0 disables stochastic machine failures.
  Seconds mtbf = 0.0;

  /// Mean time to repair a stochastically failed machine (exponential);
  /// 0 with mtbf > 0 means crashed machines stay down forever.
  Seconds mttr = 0.0;

  /// Probability that any single task attempt dies before completing
  /// (Hadoop's transient task failures: bad disk sector, JVM crash, ...).
  double task_failure_prob = 0.0;

  /// Scripted network fault transitions (link/trunk degradation, failure,
  /// partition, repair).
  std::vector<NetFaultEvent> net_events;

  /// Mean time between stochastic access-link faults per machine
  /// (exponential); 0 disables link flapping.
  Seconds link_mtbf = 0.0;

  /// Mean time to repair a stochastically faulted link (exponential);
  /// 0 with link_mtbf > 0 means faulted links stay degraded forever.
  Seconds link_mttr = 0.0;

  /// Capacity factor a stochastically faulted link drops to while the fault
  /// is active (0 = hard down, (0, 1) = degraded).
  double link_fault_factor = 0.0;

  /// Probability that any single shuffle fetch dies mid-transfer for a
  /// transient reason (connection reset, fetcher thread death, ...) even on
  /// a healthy network.
  double fetch_failure_prob = 0.0;

  /// Scripted fail-slow transitions (performance degradation and recovery).
  std::vector<SlowFaultEvent> slow_events;

  /// Mean time between stochastic fail-slow episodes per machine
  /// (exponential); 0 disables stochastic slowdowns.
  Seconds slow_mtbf = 0.0;

  /// Mean duration of a stochastic fail-slow episode (exponential);
  /// 0 with slow_mtbf > 0 means limping machines never recover.
  Seconds slow_mttr = 0.0;

  /// CPU factor a stochastically limping machine drops to while the episode
  /// is active (must be in (0, 1) when slow_mtbf > 0).
  double slow_cpu_factor = 1.0;

  /// IO throughput factor during a stochastic fail-slow episode.
  double slow_io_factor = 1.0;

  /// Scripted control-plane (master) fault transitions.
  std::vector<MasterFaultEvent> master_events;

  /// Mean time between stochastic JobTracker crashes (exponential);
  /// 0 disables stochastic JobTracker failures.
  Seconds jt_mtbf = 0.0;

  /// Mean time to repair a stochastically crashed JobTracker (exponential);
  /// 0 with jt_mtbf > 0 means a crashed JobTracker stays down forever.
  Seconds jt_mttr = 0.0;

  /// Mean time between stochastic NameNode crashes (exponential).
  Seconds nn_mtbf = 0.0;

  /// Mean time to repair a stochastically crashed NameNode (exponential).
  Seconds nn_mttr = 0.0;

  /// Scripted silent replica corruption.
  std::vector<CorruptFaultEvent> corrupt_events;

  /// Mean time between stochastic silent corruptions per machine
  /// (exponential); 0 disables stochastic bit rot.  Each strike corrupts
  /// one replica on the struck machine (chosen by the handler from a
  /// uniform pick drawn on the machine's corruption stream).
  Seconds corruption_mtbf = 0.0;

  /// Probability that any single completed shuffle fetch delivered a
  /// corrupt payload (detected by the reduce-side checksum on arrival).
  double shuffle_corruption_prob = 0.0;

  /// Probability that a completed map attempt *produced* corrupt output (a
  /// limping machine writing garbage); consulted only when the JobTracker's
  /// end-to-end task-output verification is enabled.
  double task_output_corruption_prob = 0.0;

  /// True when the plan injects network faults (needs a Fabric to act on).
  bool has_net_faults() const {
    return !net_events.empty() || link_mtbf > 0.0;
  }

  /// True when the plan injects fail-slow faults (needs a slow handler).
  bool has_slow_faults() const {
    return !slow_events.empty() || slow_mtbf > 0.0;
  }

  /// True when the plan injects control-plane (master) faults.
  bool has_master_faults() const {
    return !master_events.empty() || jt_mtbf > 0.0 || nn_mtbf > 0.0;
  }

  /// True when the plan injects stored-replica corruption (needs a
  /// corruption handler).
  bool has_corruption_faults() const {
    return !corrupt_events.empty() || corruption_mtbf > 0.0;
  }

  /// True when the plan injects anything at all.
  bool enabled() const {
    return !events.empty() || mtbf > 0.0 || task_failure_prob > 0.0 ||
           has_net_faults() || fetch_failure_prob > 0.0 ||
           has_slow_faults() || has_master_faults() ||
           has_corruption_faults() || shuffle_corruption_prob > 0.0 ||
           task_output_corruption_prob > 0.0;
  }

  /// Scripting helpers.
  FaultPlan& crash_at(std::size_t machine, Seconds t);
  FaultPlan& recover_at(std::size_t machine, Seconds t);
  /// Crash at t and recover `downtime` seconds later.
  FaultPlan& crash_for(std::size_t machine, Seconds t, Seconds downtime);
  /// Take a machine's access link down at t, restore it `duration` later.
  FaultPlan& fail_link_for(std::size_t machine, Seconds t, Seconds duration);
  /// Degrade a machine's access link to `factor` capacity for `duration`.
  FaultPlan& degrade_link_for(std::size_t machine, Seconds t, Seconds duration,
                              double factor);
  /// Take a rack's trunk down at t (partitioning the rack), restore it
  /// `duration` later.
  FaultPlan& partition_rack(std::size_t rack, Seconds t, Seconds duration);
  /// Degrade a rack's trunk to `factor` capacity for `duration`.
  FaultPlan& degrade_trunk_for(std::size_t rack, Seconds t, Seconds duration,
                               double factor);
  /// Slow a machine to `cpu_factor` (and `io_factor`) of nominal speed at t,
  /// restore full speed `duration` seconds later.
  FaultPlan& slow_for(std::size_t machine, Seconds t, Seconds duration,
                      double cpu_factor, double io_factor = 1.0);
  /// Progressive rot: degrade a machine's CPU in `steps` equal-time scripted
  /// steps from full speed down to `final_cpu_factor` over `duration`,
  /// then restore at t + duration (the dying-disk / thermal-throttle ramp).
  FaultPlan& rot(std::size_t machine, Seconds t, Seconds duration,
                 double final_cpu_factor, int steps = 4);
  /// Crash the JobTracker at t and bring it back `downtime` seconds later.
  FaultPlan& crash_jobtracker_for(Seconds t, Seconds downtime);
  /// Crash the NameNode at t and bring it back `downtime` seconds later.
  FaultPlan& crash_namenode_for(Seconds t, Seconds downtime);
  /// Silently corrupt the replica of `block` stored on `machine` at t.
  FaultPlan& corrupt_replica_at(std::size_t machine, std::int64_t block,
                                Seconds t);
  /// Silently corrupt a deterministically chosen replica on `machine` at t
  /// (the handler picks the first replica in its storage order — no RNG).
  FaultPlan& corrupt_machine_at(std::size_t machine, Seconds t);
};

/// Executes a FaultPlan against a Simulator.
class FaultInjector {
 public:
  using MachineHandler = std::function<void(std::size_t machine)>;
  /// Receives applied network fault transitions (wired by the exp harness to
  /// Fabric::set_node_link_factor / set_trunk_factor).
  using NetHandler = std::function<void(NetFaultEvent::Target target,
                                        std::size_t index, double factor)>;
  /// Receives applied fail-slow transitions (wired by the exp harness to
  /// TaskTracker::set_perf_factors).
  using SlowHandler = std::function<void(std::size_t machine,
                                         double cpu_factor, double io_factor)>;
  /// Receives applied control-plane transitions (wired by the exp harness to
  /// JobTracker::crash_master / recover_master).
  using MasterHandler =
      std::function<void(MasterFaultEvent::Target target, bool up)>;
  /// Receives silent-corruption strikes (wired by the exp harness to
  /// JobTracker::inject_corruption).  `block >= 0` names the replica to rot;
  /// `block < 0` means "one replica on `machine`", and `pick` in [0, 1)
  /// selects it from the machine's replica list (the injector knows no
  /// blocks, so the handler owns the mapping).  Scripted machine-level
  /// events pass pick = 0 — no RNG is consumed for scripted strikes.
  using CorruptionHandler = std::function<void(
      std::size_t machine, std::int64_t block, double pick)>;

  /// One applied machine transition (for logs, tests and determinism
  /// checks).
  struct Transition {
    Seconds time = 0.0;
    std::size_t machine = 0;
    bool up = false;  ///< state after the transition
  };

  /// One applied network transition.
  struct NetTransition {
    Seconds time = 0.0;
    NetFaultEvent::Target target = NetFaultEvent::Target::kNodeLink;
    std::size_t index = 0;
    double factor = 1.0;  ///< factor after the transition
  };

  /// One applied fail-slow transition.
  struct SlowTransition {
    Seconds time = 0.0;
    std::size_t machine = 0;
    double cpu_factor = 1.0;  ///< factors after the transition
    double io_factor = 1.0;
  };

  /// One applied control-plane transition.
  struct MasterTransition {
    Seconds time = 0.0;
    MasterFaultEvent::Target target = MasterFaultEvent::Target::kJobTracker;
    bool up = false;  ///< state after the transition
  };

  /// One delivered silent-corruption strike (block as passed to the
  /// handler: -1 when the handler picked the replica).
  struct CorruptTransition {
    Seconds time = 0.0;
    std::size_t machine = 0;
    std::int64_t block = -1;
  };

  FaultInjector(Simulator& sim, FaultPlan plan, Rng rng,
                std::size_t num_machines, std::size_t num_racks = 1);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Installs the crash/recover callbacks.  Must precede start().
  void set_handlers(MachineHandler on_crash, MachineHandler on_recover);

  /// Installs the network fault callback.  Must precede start() when the
  /// plan has network faults.
  void set_net_handler(NetHandler handler);

  /// Installs the fail-slow callback.  Must precede start() when the plan
  /// has fail-slow faults.
  void set_slow_handler(SlowHandler handler);

  /// Installs the control-plane callback.  Must precede start() when the
  /// plan has master faults.
  void set_master_handler(MasterHandler handler);

  /// Installs the silent-corruption callback.  Must precede start() when
  /// the plan has stored-replica corruption faults.
  void set_corruption_handler(CorruptionHandler handler);

  /// Schedules every scripted event and seeds the stochastic failure
  /// processes.  Call exactly once.
  void start();

  /// The injector's view of a machine's state.
  bool is_up(std::size_t machine) const;

  /// The injector's view of a machine's access-link capacity factor.
  double node_link_factor(std::size_t machine) const;

  /// The injector's view of a rack's trunk capacity factor.
  double trunk_factor(std::size_t rack) const;

  /// The injector's view of a machine's CPU / IO performance factors.
  double cpu_factor(std::size_t machine) const;
  double io_factor(std::size_t machine) const;

  /// Transient task-failure draw, consulted once per launched attempt.
  /// Empty: the attempt runs to completion.  Otherwise: the fraction of the
  /// attempt's nominal duration after which it fails.
  std::optional<double> draw_attempt_failure();

  /// Transient fetch-failure draw, consulted once per started shuffle fetch.
  /// Empty: the fetch is not sabotaged.  Otherwise: the fraction of the
  /// fetch's solo duration after which it dies.
  std::optional<double> draw_fetch_failure();

  /// Shuffle-payload corruption draw, consulted once per *completed* shuffle
  /// fetch.  True: the delivered payload fails its checksum.  Consumes no
  /// RNG when shuffle_corruption_prob is 0.
  bool draw_shuffle_corruption();

  /// Task-output corruption draw, consulted once per verified map
  /// completion.  True: the attempt produced garbage despite finishing
  /// "successfully".  Consumes no RNG when task_output_corruption_prob is 0.
  bool draw_task_output_corruption();

  /// Every machine transition actually applied, in simulation order.
  const std::vector<Transition>& log() const { return log_; }

  /// Every network transition actually applied, in simulation order.
  const std::vector<NetTransition>& net_log() const { return net_log_; }

  /// Every fail-slow transition actually applied, in simulation order.
  const std::vector<SlowTransition>& slow_log() const { return slow_log_; }

  /// Every control-plane transition actually applied, in simulation order.
  const std::vector<MasterTransition>& master_log() const {
    return master_log_;
  }

  /// Every silent-corruption strike delivered, in simulation order.
  const std::vector<CorruptTransition>& corrupt_log() const {
    return corrupt_log_;
  }

  /// The injector's view of the masters' state.
  bool jobtracker_up() const { return jt_up_; }
  bool namenode_up() const { return nn_up_; }

  /// Number of crash transitions applied so far.
  std::size_t crashes() const;

  /// Number of applied network transitions that degraded a link or trunk
  /// (factor < 1).
  std::size_t link_faults() const;

  /// Number of applied fail-slow transitions that degraded a machine
  /// (cpu or io factor < 1).
  std::size_t slow_faults() const;

  /// Number of applied control-plane crash transitions.
  std::size_t master_crashes() const;

  /// Number of silent-corruption strikes delivered so far.
  std::size_t corruptions() const { return corrupt_log_.size(); }

  const FaultPlan& plan() const { return plan_; }

 private:
  void crash(std::size_t machine);
  void recover(std::size_t machine);
  void schedule_stochastic_crash(std::size_t machine);
  void schedule_stochastic_recovery(std::size_t machine);
  void schedule_link_flap(std::size_t machine);
  void schedule_slow_episode(std::size_t machine);
  void apply_net(NetFaultEvent::Target target, std::size_t index,
                 double factor);
  void apply_slow(std::size_t machine, double cpu_factor, double io_factor);
  void crash_master(MasterFaultEvent::Target target);
  void recover_master(MasterFaultEvent::Target target);
  void schedule_stochastic_master_crash(MasterFaultEvent::Target target);
  void apply_corruption(std::size_t machine, std::int64_t block, double pick);
  void schedule_stochastic_corruption(std::size_t machine);

  Simulator& sim_;
  FaultPlan plan_;
  std::vector<Rng> machine_rng_;  // one stream per machine (MTBF/MTTR draws)
  Rng task_rng_;                  // transient task-failure stream
  std::vector<Rng> link_rng_;     // one stream per machine (link flap draws)
  Rng fetch_rng_;                 // transient fetch-failure stream
  std::vector<Rng> slow_rng_;     // one stream per machine (fail-slow draws)
  Rng jt_rng_;                    // JobTracker MTBF/MTTR stream
  Rng nn_rng_;                    // NameNode MTBF/MTTR stream
  std::vector<Rng> corrupt_rng_;  // one stream per machine (bit-rot draws)
  Rng shuffle_corrupt_rng_;       // shuffle-payload corruption stream
  Rng output_corrupt_rng_;        // task-output corruption stream
  std::vector<bool> up_;
  // Pending stochastic crash per machine: cancelled when a scripted crash
  // intervenes, re-armed (with a fresh draw) at every recovery.
  std::vector<EventId> crash_event_;
  bool jt_up_ = true;
  bool nn_up_ = true;
  // Pending stochastic master crash, same cancel/re-arm protocol as above.
  EventId jt_crash_event_ = 0;
  EventId nn_crash_event_ = 0;
  std::vector<double> node_link_factor_;
  std::vector<double> trunk_factor_;
  std::vector<double> cpu_factor_;
  std::vector<double> io_factor_;
  MachineHandler on_crash_;
  MachineHandler on_recover_;
  NetHandler on_net_;
  SlowHandler on_slow_;
  MasterHandler on_master_;
  CorruptionHandler on_corrupt_;
  std::vector<Transition> log_;
  std::vector<NetTransition> net_log_;
  std::vector<SlowTransition> slow_log_;
  std::vector<MasterTransition> master_log_;
  std::vector<CorruptTransition> corrupt_log_;
  bool started_ = false;
};

}  // namespace eant::sim
