#include "sim/fault_injector.h"

#include <algorithm>
#include <utility>

#include "common/error.h"

namespace eant::sim {

FaultPlan& FaultPlan::crash_at(std::size_t machine, Seconds t) {
  events.push_back(FaultEvent{t, machine, FaultEvent::Kind::kCrash});
  return *this;
}

FaultPlan& FaultPlan::recover_at(std::size_t machine, Seconds t) {
  events.push_back(FaultEvent{t, machine, FaultEvent::Kind::kRecover});
  return *this;
}

FaultPlan& FaultPlan::crash_for(std::size_t machine, Seconds t,
                                Seconds downtime) {
  EANT_CHECK(downtime > 0.0, "downtime must be positive");
  crash_at(machine, t);
  recover_at(machine, t + downtime);
  return *this;
}

FaultInjector::FaultInjector(Simulator& sim, FaultPlan plan, Rng rng,
                             std::size_t num_machines)
    : sim_(sim),
      plan_(std::move(plan)),
      task_rng_(rng.fork(0)),
      up_(num_machines, true) {
  EANT_CHECK(num_machines >= 1, "fault injector needs machines");
  EANT_CHECK(plan_.mtbf >= 0.0 && plan_.mttr >= 0.0,
             "MTBF/MTTR must be non-negative");
  EANT_CHECK(
      plan_.task_failure_prob >= 0.0 && plan_.task_failure_prob < 1.0,
      "task failure probability must be in [0, 1)");
  for (const auto& e : plan_.events) {
    EANT_CHECK(e.machine < num_machines, "fault plan names unknown machine");
    EANT_CHECK(e.time >= 0.0, "fault plan event in the past");
  }
  machine_rng_.reserve(num_machines);
  for (std::size_t m = 0; m < num_machines; ++m) {
    machine_rng_.push_back(rng.fork(m + 1));
  }
}

void FaultInjector::set_handlers(MachineHandler on_crash,
                                 MachineHandler on_recover) {
  EANT_CHECK(static_cast<bool>(on_crash) && static_cast<bool>(on_recover),
             "both fault handlers must be set");
  on_crash_ = std::move(on_crash);
  on_recover_ = std::move(on_recover);
}

void FaultInjector::start() {
  EANT_CHECK(!started_, "fault injector already started");
  EANT_CHECK(static_cast<bool>(on_crash_),
             "set_handlers() must precede start()");
  started_ = true;
  for (const auto& e : plan_.events) {
    if (e.kind == FaultEvent::Kind::kCrash) {
      sim_.schedule_at(e.time, [this, m = e.machine] { crash(m); });
    } else {
      sim_.schedule_at(e.time, [this, m = e.machine] { recover(m); });
    }
  }
  if (plan_.mtbf > 0.0) {
    for (std::size_t m = 0; m < up_.size(); ++m) {
      schedule_stochastic_crash(m);
    }
  }
}

bool FaultInjector::is_up(std::size_t machine) const {
  EANT_CHECK(machine < up_.size(), "machine index out of range");
  return up_[machine];
}

std::optional<double> FaultInjector::draw_attempt_failure() {
  if (plan_.task_failure_prob <= 0.0) return std::nullopt;
  if (!task_rng_.bernoulli(plan_.task_failure_prob)) return std::nullopt;
  // Failures strike part-way through the attempt: never at the very start
  // (zero wasted work would be invisible) nor at the very end (that would be
  // a completed task whose report got lost, a different failure mode).
  return task_rng_.uniform(0.05, 0.95);
}

std::size_t FaultInjector::crashes() const {
  return static_cast<std::size_t>(
      std::count_if(log_.begin(), log_.end(),
                    [](const Transition& t) { return !t.up; }));
}

void FaultInjector::crash(std::size_t machine) {
  if (!up_[machine]) return;  // scripted/stochastic overlap: already down
  up_[machine] = false;
  log_.push_back(Transition{sim_.now(), machine, false});
  on_crash_(machine);
}

void FaultInjector::recover(std::size_t machine) {
  if (up_[machine]) return;  // already recovered by another path
  up_[machine] = true;
  log_.push_back(Transition{sim_.now(), machine, true});
  on_recover_(machine);
}

void FaultInjector::schedule_stochastic_crash(std::size_t machine) {
  const Seconds dt = machine_rng_[machine].exponential(1.0 / plan_.mtbf);
  sim_.schedule_after(dt, [this, machine] {
    if (up_[machine]) {
      crash(machine);
      if (plan_.mttr > 0.0) schedule_stochastic_recovery(machine);
      // mttr == 0: the machine stays down; its failure process ends.
    } else {
      // The machine was already down (scripted crash); keep the failure
      // process alive so stochastic faults resume after it recovers.
      schedule_stochastic_crash(machine);
    }
  });
}

void FaultInjector::schedule_stochastic_recovery(std::size_t machine) {
  const Seconds dt = machine_rng_[machine].exponential(1.0 / plan_.mttr);
  sim_.schedule_after(dt, [this, machine] {
    recover(machine);
    schedule_stochastic_crash(machine);
  });
}

}  // namespace eant::sim
