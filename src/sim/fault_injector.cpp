#include "sim/fault_injector.h"

#include <algorithm>
#include <utility>

#include "common/error.h"
#include "common/fp.h"

namespace eant::sim {

FaultPlan& FaultPlan::crash_at(std::size_t machine, Seconds t) {
  events.push_back(FaultEvent{t, machine, FaultEvent::Kind::kCrash});
  return *this;
}

FaultPlan& FaultPlan::recover_at(std::size_t machine, Seconds t) {
  events.push_back(FaultEvent{t, machine, FaultEvent::Kind::kRecover});
  return *this;
}

FaultPlan& FaultPlan::crash_for(std::size_t machine, Seconds t,
                                Seconds downtime) {
  EANT_CHECK(downtime > 0.0, "downtime must be positive");
  crash_at(machine, t);
  recover_at(machine, t + downtime);
  return *this;
}

FaultPlan& FaultPlan::fail_link_for(std::size_t machine, Seconds t,
                                    Seconds duration) {
  return degrade_link_for(machine, t, duration, 0.0);
}

FaultPlan& FaultPlan::degrade_link_for(std::size_t machine, Seconds t,
                                       Seconds duration, double factor) {
  EANT_CHECK(duration > 0.0, "fault duration must be positive");
  EANT_CHECK(factor >= 0.0 && factor < 1.0,
             "a fault's capacity factor must lie in [0, 1)");
  net_events.push_back(
      NetFaultEvent{t, NetFaultEvent::Target::kNodeLink, machine, factor});
  net_events.push_back(NetFaultEvent{t + duration,
                                     NetFaultEvent::Target::kNodeLink, machine,
                                     1.0});
  return *this;
}

FaultPlan& FaultPlan::partition_rack(std::size_t rack, Seconds t,
                                     Seconds duration) {
  return degrade_trunk_for(rack, t, duration, 0.0);
}

FaultPlan& FaultPlan::degrade_trunk_for(std::size_t rack, Seconds t,
                                        Seconds duration, double factor) {
  EANT_CHECK(duration > 0.0, "fault duration must be positive");
  EANT_CHECK(factor >= 0.0 && factor < 1.0,
             "a fault's capacity factor must lie in [0, 1)");
  net_events.push_back(
      NetFaultEvent{t, NetFaultEvent::Target::kRackTrunk, rack, factor});
  net_events.push_back(NetFaultEvent{t + duration,
                                     NetFaultEvent::Target::kRackTrunk, rack,
                                     1.0});
  return *this;
}

FaultPlan& FaultPlan::slow_for(std::size_t machine, Seconds t,
                               Seconds duration, double cpu_factor,
                               double io_factor) {
  EANT_CHECK(duration > 0.0, "fault duration must be positive");
  EANT_CHECK(cpu_factor > 0.0 && cpu_factor <= 1.0,
             "a slow fault's cpu factor must lie in (0, 1]");
  EANT_CHECK(io_factor > 0.0 && io_factor <= 1.0,
             "a slow fault's io factor must lie in (0, 1]");
  EANT_CHECK(cpu_factor < 1.0 || io_factor < 1.0,
             "a slow fault must degrade at least one factor");
  slow_events.push_back(SlowFaultEvent{t, machine, cpu_factor, io_factor});
  slow_events.push_back(SlowFaultEvent{t + duration, machine, 1.0, 1.0});
  return *this;
}

FaultPlan& FaultPlan::rot(std::size_t machine, Seconds t, Seconds duration,
                          double final_cpu_factor, int steps) {
  EANT_CHECK(duration > 0.0, "fault duration must be positive");
  EANT_CHECK(final_cpu_factor > 0.0 && final_cpu_factor < 1.0,
             "a rot's final cpu factor must lie in (0, 1)");
  EANT_CHECK(steps >= 1, "a rot needs at least one step");
  // Equal-time steps, linearly interpolated factors ending exactly at
  // final_cpu_factor; the machine snaps back to full speed when the rot
  // episode ends (the disk was swapped / the throttle released).
  for (int s = 1; s <= steps; ++s) {
    const double frac = static_cast<double>(s) / steps;
    const double factor = 1.0 + frac * (final_cpu_factor - 1.0);
    slow_events.push_back(SlowFaultEvent{
        t + duration * (s - 1) / steps, machine, factor, 1.0});
  }
  slow_events.push_back(SlowFaultEvent{t + duration, machine, 1.0, 1.0});
  return *this;
}

FaultPlan& FaultPlan::crash_jobtracker_for(Seconds t, Seconds downtime) {
  EANT_CHECK(downtime > 0.0, "downtime must be positive");
  master_events.push_back(MasterFaultEvent{
      t, MasterFaultEvent::Target::kJobTracker, MasterFaultEvent::Kind::kCrash});
  master_events.push_back(MasterFaultEvent{t + downtime,
                                           MasterFaultEvent::Target::kJobTracker,
                                           MasterFaultEvent::Kind::kRecover});
  return *this;
}

FaultPlan& FaultPlan::crash_namenode_for(Seconds t, Seconds downtime) {
  EANT_CHECK(downtime > 0.0, "downtime must be positive");
  master_events.push_back(MasterFaultEvent{
      t, MasterFaultEvent::Target::kNameNode, MasterFaultEvent::Kind::kCrash});
  master_events.push_back(MasterFaultEvent{t + downtime,
                                           MasterFaultEvent::Target::kNameNode,
                                           MasterFaultEvent::Kind::kRecover});
  return *this;
}

FaultPlan& FaultPlan::corrupt_replica_at(std::size_t machine,
                                         std::int64_t block, Seconds t) {
  EANT_CHECK(block >= 0, "a scripted replica corruption needs a block id");
  corrupt_events.push_back(CorruptFaultEvent{t, machine, block});
  return *this;
}

FaultPlan& FaultPlan::corrupt_machine_at(std::size_t machine, Seconds t) {
  corrupt_events.push_back(CorruptFaultEvent{t, machine, -1});
  return *this;
}

FaultInjector::FaultInjector(Simulator& sim, FaultPlan plan, Rng rng,
                             std::size_t num_machines, std::size_t num_racks)
    : sim_(sim),
      plan_(std::move(plan)),
      task_rng_(rng.fork(0)),
      fetch_rng_(rng.fork(2 * num_machines + 1)),
      // Master streams fork at 3N + 2 (JobTracker) and 3N + 3 (NameNode),
      // past every stream the worker-fault eras claimed (task = 0, machines
      // = 1..N, links = N+1..2N, fetch = 2N+1, slow = 2N+2..3N+1) — Rng::fork
      // is pure, so a plan without master faults consumes exactly the draws
      // it always did.
      jt_rng_(rng.fork(3 * num_machines + 2)),
      nn_rng_(rng.fork(3 * num_machines + 3)),
      // Corruption streams fork at 3N + 4 .. 4N + 3 (per-machine bit rot),
      // 4N + 4 (shuffle payloads), and 4N + 5 (task output), past every
      // stream the earlier fault eras claimed — Rng::fork is pure, so a plan
      // without corruption consumes exactly the draws it always did.
      shuffle_corrupt_rng_(rng.fork(4 * num_machines + 4)),
      output_corrupt_rng_(rng.fork(4 * num_machines + 5)),
      up_(num_machines, true),
      crash_event_(num_machines, 0),
      node_link_factor_(num_machines, 1.0),
      trunk_factor_(num_racks, 1.0),
      cpu_factor_(num_machines, 1.0),
      io_factor_(num_machines, 1.0) {
  EANT_CHECK(num_machines >= 1, "fault injector needs machines");
  EANT_CHECK(num_racks >= 1, "fault injector needs at least one rack");
  EANT_CHECK(plan_.mtbf >= 0.0 && plan_.mttr >= 0.0,
             "MTBF/MTTR must be non-negative");
  EANT_CHECK(plan_.link_mtbf >= 0.0 && plan_.link_mttr >= 0.0,
             "link MTBF/MTTR must be non-negative");
  EANT_CHECK(
      plan_.task_failure_prob >= 0.0 && plan_.task_failure_prob < 1.0,
      "task failure probability must be in [0, 1)");
  EANT_CHECK(
      plan_.fetch_failure_prob >= 0.0 && plan_.fetch_failure_prob < 1.0,
      "fetch failure probability must be in [0, 1)");
  EANT_CHECK(
      plan_.link_fault_factor >= 0.0 && plan_.link_fault_factor < 1.0,
      "link fault factor must be in [0, 1)");
  EANT_CHECK(plan_.slow_mtbf >= 0.0 && plan_.slow_mttr >= 0.0,
             "slow MTBF/MTTR must be non-negative");
  EANT_CHECK(plan_.slow_cpu_factor > 0.0 && plan_.slow_cpu_factor <= 1.0,
             "stochastic slow cpu factor must lie in (0, 1]");
  EANT_CHECK(plan_.slow_io_factor > 0.0 && plan_.slow_io_factor <= 1.0,
             "stochastic slow io factor must lie in (0, 1]");
  EANT_CHECK(plan_.slow_mtbf == 0.0 ||  // lint-ok: float-eq (config sentinel)
                 plan_.slow_cpu_factor < 1.0 || plan_.slow_io_factor < 1.0,
             "stochastic slow faults must degrade at least one factor");
  for (const auto& e : plan_.events) {
    EANT_CHECK(e.machine < num_machines, "fault plan names unknown machine");
    EANT_CHECK(e.time >= 0.0, "fault plan event in the past");
  }
  for (const auto& e : plan_.net_events) {
    if (e.target == NetFaultEvent::Target::kNodeLink) {
      EANT_CHECK(e.index < num_machines,
                 "net fault plan names unknown machine");
    } else {
      EANT_CHECK(e.index < num_racks, "net fault plan names unknown rack");
    }
    EANT_CHECK(e.time >= 0.0, "net fault plan event in the past");
    EANT_CHECK(e.factor >= 0.0 && e.factor <= 1.0,
               "net fault factor must lie in [0, 1]");
  }
  for (const auto& e : plan_.slow_events) {
    EANT_CHECK(e.machine < num_machines,
               "slow fault plan names unknown machine");
    EANT_CHECK(e.time >= 0.0, "slow fault plan event in the past");
    EANT_CHECK(e.cpu_factor > 0.0 && e.cpu_factor <= 1.0,
               "slow fault cpu factor must lie in (0, 1]");
    EANT_CHECK(e.io_factor > 0.0 && e.io_factor <= 1.0,
               "slow fault io factor must lie in (0, 1]");
  }
  EANT_CHECK(plan_.jt_mtbf >= 0.0 && plan_.jt_mttr >= 0.0,
             "JobTracker MTBF/MTTR must be non-negative");
  EANT_CHECK(plan_.nn_mtbf >= 0.0 && plan_.nn_mttr >= 0.0,
             "NameNode MTBF/MTTR must be non-negative");
  for (const auto& e : plan_.master_events) {
    EANT_CHECK(e.time >= 0.0, "master fault plan event in the past");
  }
  EANT_CHECK(plan_.corruption_mtbf >= 0.0,
             "corruption MTBF must be non-negative");
  EANT_CHECK(plan_.shuffle_corruption_prob >= 0.0 &&
                 plan_.shuffle_corruption_prob < 1.0,
             "shuffle corruption probability must be in [0, 1)");
  EANT_CHECK(plan_.task_output_corruption_prob >= 0.0 &&
                 plan_.task_output_corruption_prob < 1.0,
             "task output corruption probability must be in [0, 1)");
  for (const auto& e : plan_.corrupt_events) {
    EANT_CHECK(e.machine < num_machines,
               "corruption fault plan names unknown machine");
    EANT_CHECK(e.time >= 0.0, "corruption fault plan event in the past");
  }
  machine_rng_.reserve(num_machines);
  for (std::size_t m = 0; m < num_machines; ++m) {
    machine_rng_.push_back(rng.fork(m + 1));
  }
  link_rng_.reserve(num_machines);
  for (std::size_t m = 0; m < num_machines; ++m) {
    link_rng_.push_back(rng.fork(num_machines + 1 + m));
  }
  // Slow-fault streams fork at 2N + 2 .. 3N + 1, past every stream the
  // fail-stop era claimed (task = 0, machines = 1..N, links = N+1..2N,
  // fetch = 2N+1) — Rng::fork is pure, so a plan without slow faults
  // consumes exactly the draws it always did.
  slow_rng_.reserve(num_machines);
  for (std::size_t m = 0; m < num_machines; ++m) {
    slow_rng_.push_back(rng.fork(2 * num_machines + 2 + m));
  }
  corrupt_rng_.reserve(num_machines);
  for (std::size_t m = 0; m < num_machines; ++m) {
    corrupt_rng_.push_back(rng.fork(3 * num_machines + 4 + m));
  }
}

void FaultInjector::set_handlers(MachineHandler on_crash,
                                 MachineHandler on_recover) {
  EANT_CHECK(static_cast<bool>(on_crash) && static_cast<bool>(on_recover),
             "both fault handlers must be set");
  on_crash_ = std::move(on_crash);
  on_recover_ = std::move(on_recover);
}

void FaultInjector::set_net_handler(NetHandler handler) {
  EANT_CHECK(static_cast<bool>(handler), "net handler must be callable");
  on_net_ = std::move(handler);
}

void FaultInjector::set_slow_handler(SlowHandler handler) {
  EANT_CHECK(static_cast<bool>(handler), "slow handler must be callable");
  on_slow_ = std::move(handler);
}

void FaultInjector::set_master_handler(MasterHandler handler) {
  EANT_CHECK(static_cast<bool>(handler), "master handler must be callable");
  on_master_ = std::move(handler);
}

void FaultInjector::set_corruption_handler(CorruptionHandler handler) {
  EANT_CHECK(static_cast<bool>(handler),
             "corruption handler must be callable");
  on_corrupt_ = std::move(handler);
}

void FaultInjector::start() {
  EANT_CHECK(!started_, "fault injector already started");
  EANT_CHECK(static_cast<bool>(on_crash_),
             "set_handlers() must precede start()");
  EANT_CHECK(!plan_.has_net_faults() || static_cast<bool>(on_net_),
             "set_net_handler() must precede start() with network faults");
  EANT_CHECK(!plan_.has_slow_faults() || static_cast<bool>(on_slow_),
             "set_slow_handler() must precede start() with fail-slow faults");
  EANT_CHECK(!plan_.has_master_faults() || static_cast<bool>(on_master_),
             "set_master_handler() must precede start() with master faults");
  EANT_CHECK(
      !plan_.has_corruption_faults() || static_cast<bool>(on_corrupt_),
      "set_corruption_handler() must precede start() with corruption faults");
  started_ = true;
  for (const auto& e : plan_.events) {
    if (e.kind == FaultEvent::Kind::kCrash) {
      sim_.schedule_at(e.time, [this, m = e.machine] { crash(m); });
    } else {
      sim_.schedule_at(e.time, [this, m = e.machine] { recover(m); });
    }
  }
  for (const auto& e : plan_.net_events) {
    sim_.schedule_at(e.time, [this, e] {
      apply_net(e.target, e.index, e.factor);
    });
  }
  if (plan_.mtbf > 0.0) {
    for (std::size_t m = 0; m < up_.size(); ++m) {
      schedule_stochastic_crash(m);
    }
  }
  if (plan_.link_mtbf > 0.0) {
    for (std::size_t m = 0; m < up_.size(); ++m) {
      schedule_link_flap(m);
    }
  }
  for (const auto& e : plan_.slow_events) {
    sim_.schedule_at(e.time, [this, e] {
      apply_slow(e.machine, e.cpu_factor, e.io_factor);
    });
  }
  if (plan_.slow_mtbf > 0.0) {
    for (std::size_t m = 0; m < up_.size(); ++m) {
      schedule_slow_episode(m);
    }
  }
  for (const auto& e : plan_.master_events) {
    if (e.kind == MasterFaultEvent::Kind::kCrash) {
      sim_.schedule_at(e.time, [this, t = e.target] { crash_master(t); });
    } else {
      sim_.schedule_at(e.time, [this, t = e.target] { recover_master(t); });
    }
  }
  if (plan_.jt_mtbf > 0.0) {
    schedule_stochastic_master_crash(MasterFaultEvent::Target::kJobTracker);
  }
  if (plan_.nn_mtbf > 0.0) {
    schedule_stochastic_master_crash(MasterFaultEvent::Target::kNameNode);
  }
  for (const auto& e : plan_.corrupt_events) {
    // Scripted strikes consume no RNG: machine-level events pass pick = 0
    // (the handler takes the first replica in its deterministic order).
    sim_.schedule_at(e.time, [this, e] {
      apply_corruption(e.machine, e.block, 0.0);
    });
  }
  if (plan_.corruption_mtbf > 0.0) {
    for (std::size_t m = 0; m < up_.size(); ++m) {
      schedule_stochastic_corruption(m);
    }
  }
}

bool FaultInjector::is_up(std::size_t machine) const {
  EANT_CHECK(machine < up_.size(), "machine index out of range");
  return up_[machine];
}

double FaultInjector::node_link_factor(std::size_t machine) const {
  EANT_CHECK(machine < node_link_factor_.size(),
             "machine index out of range");
  return node_link_factor_[machine];
}

double FaultInjector::trunk_factor(std::size_t rack) const {
  EANT_CHECK(rack < trunk_factor_.size(), "rack index out of range");
  return trunk_factor_[rack];
}

double FaultInjector::cpu_factor(std::size_t machine) const {
  EANT_CHECK(machine < cpu_factor_.size(), "machine index out of range");
  return cpu_factor_[machine];
}

double FaultInjector::io_factor(std::size_t machine) const {
  EANT_CHECK(machine < io_factor_.size(), "machine index out of range");
  return io_factor_[machine];
}

std::optional<double> FaultInjector::draw_attempt_failure() {
  if (plan_.task_failure_prob <= 0.0) return std::nullopt;
  if (!task_rng_.bernoulli(plan_.task_failure_prob)) return std::nullopt;
  // Failures strike part-way through the attempt: never at the very start
  // (zero wasted work would be invisible) nor at the very end (that would be
  // a completed task whose report got lost, a different failure mode).
  return task_rng_.uniform(0.05, 0.95);
}

std::optional<double> FaultInjector::draw_fetch_failure() {
  if (plan_.fetch_failure_prob <= 0.0) return std::nullopt;
  if (!fetch_rng_.bernoulli(plan_.fetch_failure_prob)) return std::nullopt;
  return fetch_rng_.uniform(0.05, 0.95);
}

bool FaultInjector::draw_shuffle_corruption() {
  if (plan_.shuffle_corruption_prob <= 0.0) return false;
  return shuffle_corrupt_rng_.bernoulli(plan_.shuffle_corruption_prob);
}

bool FaultInjector::draw_task_output_corruption() {
  if (plan_.task_output_corruption_prob <= 0.0) return false;
  return output_corrupt_rng_.bernoulli(plan_.task_output_corruption_prob);
}

std::size_t FaultInjector::crashes() const {
  return static_cast<std::size_t>(
      std::count_if(log_.begin(), log_.end(),
                    [](const Transition& t) { return !t.up; }));
}

std::size_t FaultInjector::link_faults() const {
  return static_cast<std::size_t>(
      std::count_if(net_log_.begin(), net_log_.end(),
                    [](const NetTransition& t) { return t.factor < 1.0; }));
}

std::size_t FaultInjector::master_crashes() const {
  return static_cast<std::size_t>(
      std::count_if(master_log_.begin(), master_log_.end(),
                    [](const MasterTransition& t) { return !t.up; }));
}

std::size_t FaultInjector::slow_faults() const {
  return static_cast<std::size_t>(std::count_if(
      slow_log_.begin(), slow_log_.end(), [](const SlowTransition& t) {
        return t.cpu_factor < 1.0 || t.io_factor < 1.0;
      }));
}

void FaultInjector::crash(std::size_t machine) {
  if (!up_[machine]) return;  // scripted/stochastic overlap: already down
  // A scripted crash preempts any pending stochastic one: the failure
  // process re-arms with a fresh draw at the next recovery, so stale draws
  // can never fire against a machine that already failed and restarted.
  sim_.cancel(crash_event_[machine]);
  crash_event_[machine] = 0;
  up_[machine] = false;
  log_.push_back(Transition{sim_.now(), machine, false});
  on_crash_(machine);
}

void FaultInjector::recover(std::size_t machine) {
  if (up_[machine]) return;  // already recovered by another path
  up_[machine] = true;
  log_.push_back(Transition{sim_.now(), machine, true});
  on_recover_(machine);
  // Restart-anchored resampling: the machine just (re)entered service, so
  // its next stochastic failure is exponential from *now* — regardless of
  // whether the recovery was scripted or stochastic.
  if (plan_.mtbf > 0.0) schedule_stochastic_crash(machine);
}

void FaultInjector::schedule_stochastic_crash(std::size_t machine) {
  const Seconds dt = machine_rng_[machine].exponential(1.0 / plan_.mtbf);
  crash_event_[machine] = sim_.schedule_after(dt, [this, machine] {
    crash_event_[machine] = 0;
    if (!up_[machine]) return;  // lost a race with a scripted crash
    crash(machine);
    if (plan_.mttr > 0.0) schedule_stochastic_recovery(machine);
    // mttr == 0: the machine stays down; its failure process ends.
  });
}

void FaultInjector::schedule_stochastic_recovery(std::size_t machine) {
  const Seconds dt = machine_rng_[machine].exponential(1.0 / plan_.mttr);
  sim_.schedule_after(dt, [this, machine] { recover(machine); });
}

void FaultInjector::schedule_link_flap(std::size_t machine) {
  const Seconds dt = link_rng_[machine].exponential(1.0 / plan_.link_mtbf);
  sim_.schedule_after(dt, [this, machine] {
    if (node_link_factor_[machine] < 1.0) {
      // Already faulted (scripted overlap): skip this flap and resample from
      // now, mirroring the restart-anchored machine semantics.
      schedule_link_flap(machine);
      return;
    }
    apply_net(NetFaultEvent::Target::kNodeLink, machine,
              plan_.link_fault_factor);
    if (plan_.link_mttr > 0.0) {
      const Seconds repair =
          link_rng_[machine].exponential(1.0 / plan_.link_mttr);
      sim_.schedule_after(repair, [this, machine] {
        apply_net(NetFaultEvent::Target::kNodeLink, machine, 1.0);
        schedule_link_flap(machine);
      });
    }
    // link_mttr == 0: the link stays degraded; its flap process ends.
  });
}

void FaultInjector::schedule_slow_episode(std::size_t machine) {
  const Seconds dt = slow_rng_[machine].exponential(1.0 / plan_.slow_mtbf);
  sim_.schedule_after(dt, [this, machine] {
    if (cpu_factor_[machine] < 1.0 || io_factor_[machine] < 1.0) {
      // Already limping (scripted overlap): skip this episode and resample
      // from now, mirroring the link-flap semantics.
      schedule_slow_episode(machine);
      return;
    }
    apply_slow(machine, plan_.slow_cpu_factor, plan_.slow_io_factor);
    if (plan_.slow_mttr > 0.0) {
      const Seconds repair =
          slow_rng_[machine].exponential(1.0 / plan_.slow_mttr);
      sim_.schedule_after(repair, [this, machine] {
        apply_slow(machine, 1.0, 1.0);
        schedule_slow_episode(machine);
      });
    }
    // slow_mttr == 0: the machine limps forever; its episode process ends.
  });
}

void FaultInjector::crash_master(MasterFaultEvent::Target target) {
  const bool jt = target == MasterFaultEvent::Target::kJobTracker;
  bool& up = jt ? jt_up_ : nn_up_;
  if (!up) return;  // scripted/stochastic overlap: already down
  // A scripted master crash preempts any pending stochastic one — the same
  // restart-anchored protocol the worker failure process uses.
  EventId& pending = jt ? jt_crash_event_ : nn_crash_event_;
  sim_.cancel(pending);
  pending = 0;
  up = false;
  master_log_.push_back(MasterTransition{sim_.now(), target, false});
  on_master_(target, false);
}

void FaultInjector::recover_master(MasterFaultEvent::Target target) {
  const bool jt = target == MasterFaultEvent::Target::kJobTracker;
  bool& up = jt ? jt_up_ : nn_up_;
  if (up) return;  // already recovered by another path
  up = true;
  master_log_.push_back(MasterTransition{sim_.now(), target, true});
  on_master_(target, true);
  // Restart-anchored resampling, exactly like the worker processes.
  if ((jt ? plan_.jt_mtbf : plan_.nn_mtbf) > 0.0) {
    schedule_stochastic_master_crash(target);
  }
}

void FaultInjector::schedule_stochastic_master_crash(
    MasterFaultEvent::Target target) {
  const bool jt = target == MasterFaultEvent::Target::kJobTracker;
  Rng& rng = jt ? jt_rng_ : nn_rng_;
  const Seconds dt =
      rng.exponential(1.0 / (jt ? plan_.jt_mtbf : plan_.nn_mtbf));
  EventId& pending = jt ? jt_crash_event_ : nn_crash_event_;
  pending = sim_.schedule_after(dt, [this, target, jt] {
    (jt ? jt_crash_event_ : nn_crash_event_) = 0;
    if (!(jt ? jt_up_ : nn_up_)) return;  // raced a scripted crash
    crash_master(target);
    const Seconds mttr = jt ? plan_.jt_mttr : plan_.nn_mttr;
    if (mttr > 0.0) {
      Rng& r = jt ? jt_rng_ : nn_rng_;
      sim_.schedule_after(r.exponential(1.0 / mttr),
                          [this, target] { recover_master(target); });
    }
    // mttr == 0: the master stays down; its failure process ends.
  });
}

void FaultInjector::apply_corruption(std::size_t machine, std::int64_t block,
                                     double pick) {
  corrupt_log_.push_back(CorruptTransition{sim_.now(), machine, block});
  on_corrupt_(machine, block, pick);
}

void FaultInjector::schedule_stochastic_corruption(std::size_t machine) {
  // Bit rot strikes a machine's disks on an exponential clock.  Unlike the
  // crash/slow processes it is *not* gated on the machine being up: rot
  // damages platters whether or not the node is serving, and the handler
  // no-ops harmlessly when the machine holds no replicas.  The replica pick
  // is drawn on the same per-machine stream, so the process stays
  // reproducible per seed no matter what other fault families do.
  const Seconds dt =
      corrupt_rng_[machine].exponential(1.0 / plan_.corruption_mtbf);
  const double pick = corrupt_rng_[machine].uniform(0.0, 1.0);
  sim_.schedule_after(dt, [this, machine, pick] {
    apply_corruption(machine, -1, pick);
    schedule_stochastic_corruption(machine);
  });
}

void FaultInjector::apply_net(NetFaultEvent::Target target, std::size_t index,
                              double factor) {
  double& state = target == NetFaultEvent::Target::kNodeLink
                      ? node_link_factor_[index]
                      : trunk_factor_[index];
  if (approx_equal(state, factor)) return;  // redundant transition
  state = factor;
  net_log_.push_back(NetTransition{sim_.now(), target, index, factor});
  on_net_(target, index, factor);
}

void FaultInjector::apply_slow(std::size_t machine, double cpu_factor,
                               double io_factor) {
  if (approx_equal(cpu_factor_[machine], cpu_factor) &&
      approx_equal(io_factor_[machine], io_factor)) {
    return;  // redundant transition
  }
  cpu_factor_[machine] = cpu_factor;
  io_factor_[machine] = io_factor;
  slow_log_.push_back(
      SlowTransition{sim_.now(), machine, cpu_factor, io_factor});
  on_slow_(machine, cpu_factor, io_factor);
}

}  // namespace eant::sim
