// Canonical tenant mixes shared by bench/continuous_traffic, the CI smoke
// run and the tenancy test suite, so "the three-tenant diurnal mix" means
// the same trace everywhere.

#pragma once

#include "tenancy/traffic.h"

namespace eant::tenancy::presets {

/// The headline continuous-traffic mix on the paper's 16-node fleet:
///
///   tenant 0 "batch"        weight 2, diurnal Terasort/Grep, medium inputs;
///   tenant 1 "interactive"  weight 3, bursty small Wordcount/Grep jobs, all
///                           carrying deadlines;
///   tenant 2 "background"   weight 1, flat low-rate mixed filler.
///
/// `rate_scale` multiplies every tenant's arrival rate (1.0 ≈ 25 jobs/hour
/// fleet-wide — ~1200 jobs over the default two-day horizon).
TrafficConfig three_tenant_mix(Seconds horizon = 2.0 * 86400.0,
                               double rate_scale = 1.0);

}  // namespace eant::tenancy::presets
