#include "tenancy/traffic.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace eant::tenancy {

namespace {

constexpr std::uint64_t kTenantStreamBase = 0x7e00;

}  // namespace

TrafficGenerator::TrafficGenerator(TrafficConfig config)
    : config_(std::move(config)) {
  EANT_CHECK(config_.horizon > 0.0, "traffic horizon must be positive");
  EANT_CHECK(!config_.tenants.empty(), "traffic needs at least one tenant");
  for (const auto& t : config_.tenants) {
    EANT_CHECK(t.arrivals != nullptr, "every tenant needs an arrival process");
    EANT_CHECK(t.profile.weight > 0.0, "tenant weight must be positive");
    EANT_CHECK(!t.profile.apps.empty(), "tenant app mix must be non-empty");
    const double band_weight = t.profile.small.weight +
                               t.profile.medium.weight +
                               t.profile.large.weight;
    EANT_CHECK(band_weight > 0.0, "tenant needs a positive size-band weight");
    EANT_CHECK(t.profile.deadline_fraction >= 0.0 &&
                   t.profile.deadline_fraction <= 1.0,
               "deadline fraction out of range");
  }
}

workload::JobSpec TrafficGenerator::sample_job(const TenantProfile& tenant,
                                               Seconds submit,
                                               Rng& rng) const {
  workload::JobSpec job;
  job.tenant = tenant.tenant;
  job.submit_time = submit;

  std::vector<double> app_weights;
  app_weights.reserve(tenant.apps.size());
  for (const auto& a : tenant.apps) app_weights.push_back(a.weight);
  job.app = tenant.apps[rng.weighted_index(app_weights)].app;

  const std::size_t band_index = rng.weighted_index(
      {tenant.small.weight, tenant.medium.weight, tenant.large.weight});
  const SizeBand* bands[] = {&tenant.small, &tenant.medium, &tenant.large};
  const SizeBand& band = *bands[band_index];
  job.size_class = band_index == 0   ? workload::SizeClass::kSmall
                   : band_index == 1 ? workload::SizeClass::kMedium
                                     : workload::SizeClass::kLarge;
  // Log-uniform within the band, like production job-size distributions
  // (and MsdGenerator).
  job.input_mb = std::exp(rng.uniform(std::log(band.min_mb),
                                      std::log(band.max_mb)));
  job.num_reduces = static_cast<int>(
      rng.uniform_int(band.min_reduces, band.max_reduces));

  if (tenant.deadline_fraction > 0.0 &&
      rng.bernoulli(tenant.deadline_fraction)) {
    job.deadline = submit + tenant.deadline_base +
                   tenant.deadline_per_gb * job.input_mb / 1024.0;
  }
  return job;
}

std::vector<workload::JobSpec> TrafficGenerator::generate(Rng& rng) const {
  std::vector<workload::JobSpec> jobs;
  for (const auto& t : config_.tenants) {
    // One forked stream per tenant: its trace is a pure function of the root
    // seed and its own id, independent of the other tenants' configuration.
    Rng tenant_rng = rng.fork(kTenantStreamBase + t.profile.tenant);
    const auto times = t.arrivals->arrivals(config_.horizon, tenant_rng);
    jobs.reserve(jobs.size() + times.size());
    for (Seconds at : times) {
      jobs.push_back(sample_job(t.profile, at, tenant_rng));
    }
  }
  std::stable_sort(jobs.begin(), jobs.end(),
                   [](const workload::JobSpec& a, const workload::JobSpec& b) {
                     if (a.submit_time < b.submit_time) return true;
                     if (b.submit_time < a.submit_time) return false;
                     return a.tenant < b.tenant;
                   });
  return jobs;
}

}  // namespace eant::tenancy
