// Open-loop continuous-traffic generator: turns per-tenant rate profiles
// (flat Poisson, diurnal sinusoid, bursty MMPP — workload/arrival.h) into a
// merged, submit-time-sorted JobSpec stream spanning simulated days.
//
// Unlike the 87-job MSD batch (workload/msd.h), the stream is open-loop:
// arrivals do not wait for completions, so the cluster sees genuine queueing
// under load peaks — the regime per-tenant SLO metrics are measured in.
//
// Determinism: each tenant samples from its own forked RNG stream keyed by
// tenant id, so adding or editing one tenant never perturbs another's trace.

#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "tenancy/tenant.h"
#include "workload/arrival.h"
#include "workload/job_spec.h"

namespace eant::tenancy {

/// One tenant's traffic: its profile plus the arrival process shaping its
/// submit-rate over time.
struct TenantTraffic {
  TenantProfile profile;
  std::unique_ptr<workload::ArrivalProcess> arrivals;
};

/// Configuration of one generated trace.
struct TrafficConfig {
  Seconds horizon = 2.0 * 86400.0;  ///< trace length (default: two days)
  std::vector<TenantTraffic> tenants;
};

/// Samples the full multi-tenant job stream.
class TrafficGenerator {
 public:
  explicit TrafficGenerator(TrafficConfig config);

  /// Jobs from every tenant, merged and sorted by submit time (ties broken
  /// by tenant id, so the merge order is total and deterministic).
  std::vector<workload::JobSpec> generate(Rng& rng) const;

  const TrafficConfig& config() const { return config_; }

 private:
  workload::JobSpec sample_job(const TenantProfile& tenant, Seconds submit,
                               Rng& rng) const;

  TrafficConfig config_;
};

}  // namespace eant::tenancy
