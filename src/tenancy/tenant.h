// Tenant model for the multi-tenant continuous-traffic subsystem.
//
// A tenant is a paying user of the shared cluster: it owns a weighted share
// of the slot pool (consumed by the capacity scheduler's tenant mode), an
// application/size mix describing what it submits, and an optional deadline
// policy attached to its jobs.  Job-level multi-tenant scheduling follows
// the framing of "Hybrid Job-driven Scheduling for Virtual MapReduce
// Clusters" (arXiv 1808.08040); deadlines connect to "Energy Efficient
// Scheduling of MapReduce Jobs" (arXiv 1402.2810).

#pragma once

#include <string>
#include <vector>

#include "common/units.h"
#include "workload/apps.h"
#include "workload/job_spec.h"

namespace eant::tenancy {

/// One entry of a tenant's application mix: the app and its sampling weight.
struct AppShare {
  workload::AppKind app = workload::AppKind::kWordcount;
  double weight = 1.0;
};

/// Input-size sampling range of one size class (already at simulation scale,
/// cf. MsdConfig::input_scale) plus its reduce-count range.
struct SizeBand {
  double weight = 0.0;  ///< sampling weight of the class; 0 disables it
  Megabytes min_mb = 64.0;
  Megabytes max_mb = 512.0;
  int min_reduces = 1;
  int max_reduces = 4;
};

/// Static description of one tenant: identity, share weight, workload mix
/// and deadline policy.  The traffic generator samples jobs from it; the
/// capacity scheduler's tenant mode consumes (id, weight).
struct TenantProfile {
  workload::TenantId tenant = 0;
  std::string name;

  /// Weighted slot share relative to the other tenants (2.0 vs 1.0 entitles
  /// this tenant to twice the slots when both are backlogged).
  double weight = 1.0;

  /// Application sampling mix; must be non-empty with positive weights.
  std::vector<AppShare> apps = {{workload::AppKind::kWordcount, 1.0}};

  /// Size-class sampling bands (Small/Medium/Large); at least one must have
  /// positive weight.
  SizeBand small{0.7, 64.0, 512.0, 1, 4};
  SizeBand medium{0.3, 512.0, 2048.0, 2, 8};
  SizeBand large{0.0, 2048.0, 8192.0, 4, 16};

  /// Fraction of this tenant's jobs that carry a completion deadline.
  double deadline_fraction = 0.0;

  /// Deadline = submit + deadline_base + deadline_per_gb * input_gb: a flat
  /// grace plus a size-proportional allowance, so small interactive jobs get
  /// tight budgets and bigger ones proportionally more.
  Seconds deadline_base = 600.0;
  Seconds deadline_per_gb = 600.0;
};

}  // namespace eant::tenancy
