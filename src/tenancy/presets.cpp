#include "tenancy/presets.h"

#include <memory>

#include "common/error.h"

namespace eant::tenancy::presets {

TrafficConfig three_tenant_mix(Seconds horizon, double rate_scale) {
  EANT_CHECK(rate_scale > 0.0, "rate scale must be positive");
  TrafficConfig cfg;
  cfg.horizon = horizon;

  // Tenant 0: the batch organisation — shuffle-heavy apps following the
  // office day (peak mid-period, trough at night), no deadlines.
  TenantTraffic batch;
  batch.profile.tenant = 0;
  batch.profile.name = "batch";
  batch.profile.weight = 2.0;
  batch.profile.apps = {{workload::AppKind::kTerasort, 2.0},
                        {workload::AppKind::kGrep, 1.0}};
  batch.profile.small = SizeBand{0.5, 128.0, 512.0, 1, 4};
  batch.profile.medium = SizeBand{0.5, 512.0, 1536.0, 2, 6};
  batch.profile.large = SizeBand{0.0};
  batch.arrivals = std::make_unique<workload::DiurnalArrivals>(
      /*base_per_minute=*/0.18 * rate_scale, /*amplitude=*/0.8);
  cfg.tenants.push_back(std::move(batch));

  // Tenant 1: interactive analysts — bursts of small jobs, every one with a
  // completion deadline (the SLO tenant).
  TenantTraffic interactive;
  interactive.profile.tenant = 1;
  interactive.profile.name = "interactive";
  interactive.profile.weight = 3.0;
  interactive.profile.apps = {{workload::AppKind::kWordcount, 2.0},
                              {workload::AppKind::kGrep, 1.0}};
  interactive.profile.small = SizeBand{1.0, 64.0, 384.0, 1, 2};
  interactive.profile.medium = SizeBand{0.0};
  interactive.profile.large = SizeBand{0.0};
  interactive.profile.deadline_fraction = 1.0;
  interactive.profile.deadline_base = 900.0;
  interactive.profile.deadline_per_gb = 1200.0;
  interactive.arrivals = std::make_unique<workload::BurstyArrivals>(
      /*base_per_minute=*/0.12 * rate_scale, /*burst_multiplier=*/4.0,
      /*mean_calm=*/2400.0, /*mean_burst=*/300.0);
  cfg.tenants.push_back(std::move(interactive));

  // Tenant 2: background maintenance — a flat trickle of mixed work.
  TenantTraffic background;
  background.profile.tenant = 2;
  background.profile.name = "background";
  background.profile.weight = 1.0;
  background.profile.apps = {{workload::AppKind::kWordcount, 1.0},
                             {workload::AppKind::kTerasort, 1.0},
                             {workload::AppKind::kGrep, 1.0}};
  background.profile.small = SizeBand{0.7, 128.0, 512.0, 1, 4};
  background.profile.medium = SizeBand{0.3, 512.0, 1024.0, 2, 4};
  background.profile.large = SizeBand{0.0};
  background.arrivals = std::make_unique<workload::PoissonArrivals>(
      /*rate_per_minute=*/0.08 * rate_scale);
  cfg.tenants.push_back(std::move(background));

  return cfg;
}

}  // namespace eant::tenancy::presets
