#include "exp/csv.h"

#include <sstream>

#include "common/error.h"

namespace eant::exp {

std::string to_csv_by_type(const RunMetrics& metrics) {
  std::ostringstream os;
  os << "type,machines,energy_j,avg_utilization,completed_maps,"
        "completed_reduces\n";
  for (const auto& t : metrics.by_type) {
    os << t.type_name << ',' << t.machine_count << ',' << t.energy << ','
       << t.avg_utilization << ',' << t.completed_maps << ','
       << t.completed_reduces << '\n';
  }
  return os.str();
}

std::string to_csv_jobs(const RunMetrics& metrics) {
  std::ostringstream os;
  os << "job,class,submit_s,completion_s,maps,reduces,map_task_s,"
        "shuffle_s,reduce_task_s\n";
  for (const auto& j : metrics.jobs) {
    os << j.id << ',' << j.class_name << ',' << j.submit_time << ','
       << j.completion_time << ',' << j.maps << ',' << j.reduces << ','
       << j.map_task_seconds << ',' << j.shuffle_seconds << ','
       << j.reduce_task_seconds << '\n';
  }
  return os.str();
}

TimelineCollector::TimelineCollector(sim::Simulator& sim,
                                     cluster::Cluster& cluster,
                                     Seconds period)
    : sim_(sim), cluster_(cluster), period_(period) {
  EANT_CHECK(period > 0.0, "sampling period must be positive");
  event_ = sim_.schedule_periodic(period_, [this] { return sample(); });
}

TimelineCollector::~TimelineCollector() { sim_.cancel(event_); }

bool TimelineCollector::sample() {
  Sample s;
  s.time = sim_.now();
  double util = 0.0;
  for (cluster::MachineId id = 0; id < cluster_.size(); ++id) {
    s.fleet_power += cluster_.machine(id).power();
    util += cluster_.machine(id).utilization();
  }
  s.mean_utilization = util / static_cast<double>(cluster_.size());
  samples_.push_back(s);
  return true;
}

std::string TimelineCollector::to_csv() const {
  std::ostringstream os;
  os << "time_s,fleet_power_w,mean_utilization\n";
  for (const auto& s : samples_) {
    os << s.time << ',' << s.fleet_power << ',' << s.mean_utilization << '\n';
  }
  return os.str();
}

}  // namespace eant::exp
