#include "exp/builders.h"

#include "cluster/catalog.h"

namespace eant::exp {

ClusterBuilder paper_fleet() {
  return [](cluster::Cluster& c) { cluster::add_paper_fleet(c); };
}

ClusterBuilder homogeneous(cluster::MachineType type, std::size_t count) {
  return [type, count](cluster::Cluster& c) { c.add_machines(type, count); };
}

ClusterBuilder machines(std::vector<cluster::MachineType> types) {
  return [types](cluster::Cluster& c) {
    for (const auto& t : types) c.add_machines(t, 1);
  };
}

workload::JobSpec single_job(workload::AppKind app, Megabytes input_mb,
                             int num_reduces) {
  workload::JobSpec spec;
  spec.app = app;
  spec.input_mb = input_mb;
  spec.num_reduces = num_reduces;
  spec.submit_time = 0.0;
  // Classify by scaled size for class_key purposes.
  if (input_mb < 2048) {
    spec.size_class = workload::SizeClass::kSmall;
  } else if (input_mb < 16384) {
    spec.size_class = workload::SizeClass::kMedium;
  } else {
    spec.size_class = workload::SizeClass::kLarge;
  }
  return spec;
}

std::vector<workload::JobSpec> job_batch(workload::AppKind app,
                                         Megabytes input_mb, int num_reduces,
                                         int count) {
  std::vector<workload::JobSpec> jobs;
  jobs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    jobs.push_back(single_job(app, input_mb, num_reduces));
  }
  return jobs;
}

}  // namespace eant::exp
