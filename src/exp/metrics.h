// Metric collection for experiments: per-machine energy/utilisation,
// per-job completion times, task-placement histograms and locality — the raw
// material for every figure in the paper's evaluation section.

#pragma once

#include <map>
#include <string>
#include <vector>

#include "audit/report.h"
#include "cluster/cluster.h"
#include "common/units.h"
#include "core/energy_model.h"
#include "mapreduce/job_tracker.h"
#include "net/fabric.h"
#include "workload/job_spec.h"

namespace eant::exp {

/// Aggregates per machine type (Fig. 8(a)/(b)).
struct TypeMetrics {
  std::string type_name;
  std::size_t machine_count = 0;
  Joules energy = 0.0;        ///< exact integrated energy, summed over machines
  double avg_utilization = 0; ///< time-averaged CPU utilisation (fraction)
  std::size_t completed_maps = 0;
  std::size_t completed_reduces = 0;
  /// Completed tasks per application name (Fig. 9(a)).
  std::map<std::string, std::size_t> tasks_by_app;
};

/// Per-job results (Fig. 8(c), fairness).
struct JobMetrics {
  mr::JobId id = 0;
  std::string class_name;  ///< e.g. "Wordcount-S"
  workload::TenantId tenant = 0;
  Seconds submit_time = 0.0;
  Seconds completion_time = 0.0;  ///< finish - submit
  Seconds deadline = -1.0;        ///< absolute deadline; < 0 = none
  bool missed_deadline = false;   ///< had a deadline and blew (or failed) it
  std::size_t maps = 0;
  std::size_t reduces = 0;
  double map_task_seconds = 0.0;
  double shuffle_seconds = 0.0;
  double reduce_task_seconds = 0.0;
  bool failed = false;  ///< ran out of task attempts; excluded from means
};

/// Per-tenant SLO aggregates over one run (the continuous-traffic bench's
/// reporting unit).  Latency percentiles are over completed jobs only.
struct TenantMetrics {
  workload::TenantId tenant = 0;
  std::size_t jobs = 0;         ///< finished jobs (completed + failed)
  std::size_t jobs_failed = 0;
  Seconds latency_p50 = 0.0;
  Seconds latency_p95 = 0.0;
  Seconds latency_p99 = 0.0;
  Seconds mean_latency = 0.0;
  Joules energy = 0.0;          ///< Eq. 2 estimate over completed tasks
  double slot_seconds = 0.0;    ///< completed task-seconds
  std::size_t preemptions = 0;  ///< attempts preempted from this tenant
  std::size_t deadline_jobs = 0;
  std::size_t deadline_misses = 0;

  // --- admission control (zero unless the overload subsystem is enabled) ------
  /// Rejections are counted apart from deadline misses: a rejected job never
  /// ran, so it appears in no latency percentile and no miss count.
  std::size_t jobs_rejected = 0;  ///< rejection events (retries re-count)
  std::size_t jobs_dropped = 0;   ///< gave up after the retry budget
  std::size_t retries = 0;        ///< backpressure retries scheduled
  std::size_t jobs_goodput = 0;   ///< completed on time (deadlined or not)
  std::size_t peak_backlog = 0;   ///< max admitted-but-unfinished jobs
  std::size_t backlog_bound = 0;  ///< configured queue bound (0 = disabled)

  /// Mean Eq. 2 task energy per completed job, in kJ (0 when none).
  double energy_per_job_kj() const {
    const std::size_t completed = jobs - jobs_failed;
    return completed == 0
               ? 0.0
               : energy / kJoulesPerKilojoule / static_cast<double>(completed);
  }
};

/// Everything measured over one experiment run.
struct RunMetrics {
  std::string scheduler_name;
  Seconds makespan = 0.0;   ///< sim time when the last job finished
  Joules total_energy = 0.0;
  std::vector<TypeMetrics> by_type;
  std::vector<JobMetrics> jobs;
  std::vector<TenantMetrics> by_tenant;  ///< sorted by tenant id
  std::size_t preempted_attempts = 0;    ///< scheduler-preempted attempts
  std::size_t deadline_misses = 0;       ///< over all tenants
  std::size_t total_tasks = 0;
  std::size_t local_maps = 0;       ///< node-local maps
  std::size_t rack_local_maps = 0;  ///< fed from a same-rack replica
  std::size_t total_maps = 0;

  // --- network fabric (only meaningful when fabric_active) -------------------
  bool fabric_active = false;  ///< flow-model network vs legacy scalars
  net::FabricMetrics network;

  // --- fault & recovery accounting (fig. 13) ---------------------------------
  std::size_t jobs_failed = 0;
  std::size_t killed_attempts = 0;    ///< attempts that died with a machine
  std::size_t failed_attempts = 0;    ///< transient attempt failures
  std::size_t lost_map_outputs = 0;   ///< completed maps re-run after node loss
  double wasted_task_seconds = 0.0;   ///< task-seconds of discarded work
  Joules wasted_energy = 0.0;         ///< Eq. 2 estimate over discarded work
  std::vector<Seconds> recovery_times;  ///< per node-loss episode

  // --- degraded-mode accounting ----------------------------------------------
  std::size_t fetch_failures = 0;        ///< shuffle fetches that died mid-flight
  std::size_t fetch_reexecuted_maps = 0; ///< maps re-run via fetch-failure path
  std::size_t rereplicated_blocks = 0;   ///< HDFS blocks restored after node loss
  Megabytes rereplication_mb = 0.0;      ///< bytes moved by block recovery
  std::size_t data_loss_events = 0;      ///< blocks whose last replica died
  std::size_t link_faults = 0;           ///< applied degrading net transitions
  std::size_t perf_faults = 0;           ///< applied fail-slow degradations
  std::size_t quarantine_episodes = 0;   ///< limper quarantine entries
  std::size_t under_replicated_blocks = 0;  ///< still queued at snapshot time
  /// Blocks short of `replication` live replicas that are neither recorded
  /// lost nor queued/in-flight for recovery — must be 0 (the "no block falls
  /// through the cracks" invariant).
  std::size_t replication_violations = 0;

  // --- data-integrity accounting (zero unless corruption faults ran) ----------
  std::size_t corruptions_injected = 0;  ///< strikes on live clean replicas
  std::size_t corruptions_detected = 0;  ///< confirmed by a read or the scrubber
  std::size_t corruptions_repaired = 0;  ///< settled by a completed block copy
  std::size_t corruptions_lost = 0;      ///< ended in corrupt-block loss
  std::size_t corruptions_latent = 0;    ///< still undetected at run end
  std::size_t corrupt_read_failovers = 0;  ///< reads that skipped bad replicas
  std::size_t shuffle_corruptions = 0;     ///< fetched payloads failing checksum
  std::size_t task_output_corruptions = 0; ///< map outputs rejected end-to-end
  Megabytes scrubbed_mb = 0.0;             ///< bytes scanned by the scrubber
  std::size_t scrub_passes = 0;            ///< scrub ticks that actually scanned
  /// Mean seconds from injection to detection, over detected corruptions.
  Seconds mean_detection_latency = 0.0;
  /// Eq. 2 estimate over work discarded for corruption (subset of
  /// wasted_energy) — the energy bill of silent data corruption.
  Joules wasted_energy_corruption = 0.0;

  // --- overload protection (zero unless admission is enabled) -----------------
  bool admission_active = false;    ///< the run had the subsystem enabled
  std::size_t jobs_rejected = 0;    ///< rejection events across tenants
  std::size_t jobs_dropped = 0;     ///< jobs dropped after the retry budget
  std::size_t admission_retries = 0;  ///< backpressure retries scheduled
  std::size_t overload_transitions = 0;  ///< detector state changes
  Seconds time_elevated = 0.0;   ///< sim time spent in Elevated
  Seconds time_saturated = 0.0;  ///< sim time spent in Saturated
  Seconds time_critical = 0.0;   ///< sim time spent in Critical

  // --- control-plane failover accounting --------------------------------------
  std::size_t master_crashes = 0;       ///< JT + NN crash transitions applied
  std::size_t checkpoints_written = 0;  ///< committed edit-log checkpoints
  std::size_t checkpoint_replays = 0;   ///< recoveries that replayed one
  std::size_t fenced_heartbeats = 0;    ///< heartbeats rejected by epoch fencing
  std::size_t fenced_completions = 0;   ///< reports buffered as orphans
  std::size_t orphans_committed = 0;    ///< orphaned attempts committed on replay
  std::size_t orphans_requeued = 0;     ///< orphaned attempts discarded + requeued

  // --- invariant audit (only meaningful when audited) ------------------------
  bool audited = false;  ///< the run had the InvariantAuditor attached
  /// FNV-1a over the ordered observation stream; bit-identical across two
  /// runs of the same RunConfig + seed, different otherwise.
  std::uint64_t determinism_digest = 0;
  audit::AuditReport audit;

  Seconds mean_recovery_time() const;
  double wasted_energy_kj() const {
    return wasted_energy / kJoulesPerKilojoule;
  }

  /// Fraction of the fleet's total energy that went into discarded work.
  double wasted_energy_fraction() const {
    return total_energy <= 0.0 ? 0.0 : wasted_energy / total_energy;
  }

  double locality_fraction() const {
    return total_maps == 0
               ? 0.0
               : static_cast<double>(local_maps) / static_cast<double>(total_maps);
  }

  /// Fraction of maps fed from a same-rack (but not same-node) replica.
  double rack_locality_fraction() const {
    return total_maps == 0 ? 0.0
                           : static_cast<double>(rack_local_maps) /
                                 static_cast<double>(total_maps);
  }

  /// Mean completion time of jobs whose class matches (empty = all jobs).
  Seconds mean_completion(const std::string& class_name = {}) const;

  /// Total energy in kilojoules (the paper's plotting unit).
  double total_energy_kj() const { return total_energy / kJoulesPerKilojoule; }

  const TypeMetrics& type(const std::string& name) const;
  const TenantMetrics& tenant(workload::TenantId id) const;
};

/// Collects reports/energies during a run; owned by the Run harness.
class MetricsCollector {
 public:
  MetricsCollector(cluster::Cluster& cluster, mr::JobTracker& jt);

  /// Installs listeners on the JobTracker.  Call once, before execution.
  void install();

  /// Snapshots final metrics (energies/utilisations read at call time).
  RunMetrics finalize(const std::string& scheduler_name);

 private:
  cluster::Cluster& cluster_;
  mr::JobTracker& jt_;
  core::EnergyModel model_;  ///< Eq. 2 estimator for wasted-work energy
  Joules wasted_energy_ = 0.0;
  Joules wasted_energy_corruption_ = 0.0;
  std::map<workload::TenantId, Joules> tenant_energy_;
  std::map<workload::TenantId, double> tenant_slot_seconds_;
  std::map<workload::TenantId, std::size_t> tenant_preemptions_;
  std::map<std::string, std::map<std::string, std::size_t>> tasks_by_type_app_;
  std::map<std::string, std::size_t> maps_by_type_;
  std::map<std::string, std::size_t> reduces_by_type_;
  std::vector<JobMetrics> jobs_;
  std::size_t total_tasks_ = 0;
  std::size_t local_maps_ = 0;
  std::size_t rack_local_maps_ = 0;
  std::size_t total_maps_ = 0;
  Seconds last_finish_ = 0.0;
};

}  // namespace eant::exp
