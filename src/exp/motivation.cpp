#include "exp/motivation.h"

#include <deque>

#include "cluster/catalog.h"
#include "cluster/cluster.h"
#include "common/error.h"
#include "common/rng.h"
#include "exp/runner.h"
#include "sim/simulator.h"
#include "workload/arrival.h"

namespace eant::exp {

namespace {

/// Minimal open-loop executor: FIFO queue feeding `concurrency` slots on a
/// single machine; no Hadoop machinery so arrival-rate sweeps stay cheap.
class OpenLoopExecutor {
 public:
  OpenLoopExecutor(sim::Simulator& sim, cluster::Machine& machine,
                   int concurrency, double cpu_ref_seconds, Megabytes io_mb,
                   double cpu_demand)
      : sim_(sim),
        machine_(machine),
        concurrency_(concurrency),
        cpu_ref_seconds_(cpu_ref_seconds),
        io_mb_(io_mb),
        cpu_demand_(cpu_demand) {
    EANT_CHECK(concurrency >= 1, "need at least one slot");
  }

  void arrive() {
    if (running_ < concurrency_) {
      start();
    } else {
      ++queued_;
    }
  }

  std::size_t completed() const { return completed_; }

 private:
  void start() {
    ++running_;
    machine_.adjust_demand(cpu_demand_);
    // Stand-alone motivation experiment predates the fail-slow model; its
    // machines are never degraded.
    Seconds d = machine_.type().task_runtime(cpu_ref_seconds_, io_mb_);  // lint-ok: machine-speed
    const double projected =
        machine_.demand_cores() / machine_.type().cores;
    if (projected > 1.0) d *= projected;
    sim_.schedule_after(d, [this] { finish(); });
  }

  void finish() {
    machine_.adjust_demand(-cpu_demand_);
    --running_;
    ++completed_;
    if (queued_ > 0) {
      --queued_;
      start();
    }
  }

  sim::Simulator& sim_;
  cluster::Machine& machine_;
  int concurrency_;
  double cpu_ref_seconds_;
  Megabytes io_mb_;
  double cpu_demand_;
  int running_ = 0;
  std::size_t queued_ = 0;
  std::size_t completed_ = 0;
};

}  // namespace

StreamResult run_task_stream(const cluster::MachineType& type,
                             workload::AppKind app, double rate_per_minute,
                             Seconds horizon, int concurrency,
                             std::uint64_t seed, Megabytes split_mb) {
  EANT_CHECK(horizon > 0.0, "horizon must be positive");
  sim::Simulator sim;
  cluster::Cluster cluster(sim);
  cluster.add_machines(type, 1);
  auto& machine = cluster.machine(0);

  const auto& profile = workload::profile_for(app);
  OpenLoopExecutor exec(sim, machine, concurrency,
                        profile.map_cpu_s_per_mb * split_mb,
                        profile.map_io_mb_per_mb * split_mb,
                        profile.map_cpu_demand);

  Rng rng(seed);
  const workload::PoissonArrivals arrivals(rate_per_minute);
  const auto times = arrivals.arrivals(horizon, rng);
  for (Seconds t : times) {
    sim.schedule_at(t, [&exec] { exec.arrive(); });
  }

  sim.run_until(horizon);

  StreamResult r;
  r.rate_per_minute = rate_per_minute;
  r.arrivals = times.size();
  r.completed = exec.completed();
  r.horizon = horizon;
  r.energy = machine.energy();
  r.idle_energy = type.idle_power * horizon;
  r.mean_power = r.energy / horizon;
  return r;
}

PhaseBreakdown phase_breakdown(workload::AppKind app, Megabytes input_mb,
                               std::uint64_t seed) {
  RunConfig config;
  config.seed = seed;
  Run run(homogeneous(cluster::catalog::xeon_e5(), 4), SchedulerKind::kFifo,
          config);
  run.submit({single_job(app, input_mb, 8)});
  run.execute();
  const RunMetrics metrics = run.metrics();
  const JobMetrics& jm = metrics.jobs.at(0);
  const double total =
      jm.map_task_seconds + jm.shuffle_seconds + jm.reduce_task_seconds;
  EANT_ASSERT(total > 0.0, "job accumulated no task time");
  PhaseBreakdown b;
  b.map = jm.map_task_seconds / total;
  b.shuffle = jm.shuffle_seconds / total;
  b.reduce = jm.reduce_task_seconds / total;
  return b;
}

}  // namespace eant::exp
