#include "exp/chaos.h"

#include "common/error.h"
#include "exp/parallel_for.h"

namespace eant::exp {

namespace {

/// Deterministic victim choice: spread across the fleet by seed without
/// consuming any RNG stream.
std::size_t pick(std::uint64_t seed, std::size_t salt, std::size_t n) {
  return static_cast<std::size_t>((seed * 2654435761u + salt * 40503u) % n);
}

/// Two distinct victims (n >= 2).
std::pair<std::size_t, std::size_t> pick_two(std::uint64_t seed,
                                             std::size_t salt, std::size_t n) {
  const std::size_t a = pick(seed, salt, n);
  const std::size_t b = (a + 1 + pick(seed, salt + 1, n - 1)) % n;
  return {a, b};
}

}  // namespace

std::vector<ChaosMix> default_chaos_mixes() {
  std::vector<ChaosMix> mixes;

  // Two machine crashes of very different depths: a brief outage and a long
  // one.  Against a short expiry window both are declared losses (datanode
  // death, re-replication, map-output reclamation); against Hadoop's 600 s
  // default the brief one exercises the fast-restart path instead.
  mixes.push_back({"machine-crashes",
                   [](RunConfig& cfg, std::size_t machines, std::size_t,
                      Seconds h, std::uint64_t seed) {
                     const auto [a, b] = pick_two(seed, 1, machines);
                     cfg.faults.crash_for(a, 0.25 * h, 0.05 * h);
                     cfg.faults.crash_for(b, 0.45 * h, 0.30 * h);
                   }});

  // Access-link faults: one scripted hard link failure plus background
  // stochastic flaps that degrade links to 25% capacity.
  mixes.push_back({"link-faults",
                   [](RunConfig& cfg, std::size_t machines, std::size_t,
                      Seconds h, std::uint64_t seed) {
                     const std::size_t victim = pick(seed, 3, machines);
                     cfg.faults.fail_link_for(victim, 0.30 * h, 0.10 * h);
                     cfg.faults.link_mtbf = 2.0 * h;
                     cfg.faults.link_mttr = 0.04 * h;
                     cfg.faults.link_fault_factor = 0.25;
                   }});

  // Rack partition: one rack's trunk goes hard down mid-run, cutting every
  // cross-rack flow touching it; shuffle fetch recovery and read failover
  // must carry the fleet until it heals.
  mixes.push_back({"rack-partition",
                   [](RunConfig& cfg, std::size_t, std::size_t racks,
                      Seconds h, std::uint64_t seed) {
                     EANT_CHECK(racks >= 2,
                                "rack-partition mix needs a multi-rack fabric");
                     cfg.faults.partition_rack(pick(seed, 5, racks), 0.35 * h,
                                               0.12 * h);
                   }});

  // Datanode loss: two machines in (usually) different racks stay dark far
  // past the expiry window, dropping their replicas.  At replication 3, two
  // concurrent deaths never lose a block — the NameNode re-replicates and
  // the invariant "every block recovers or is recorded lost" is exercised
  // for real.
  mixes.push_back({"datanode-loss",
                   [](RunConfig& cfg, std::size_t machines, std::size_t,
                      Seconds h, std::uint64_t seed) {
                     const auto [a, b] = pick_two(seed, 7, machines);
                     cfg.faults.crash_for(a, 0.20 * h, 0.50 * h);
                     cfg.faults.crash_for(b, 0.30 * h, 0.45 * h);
                   }});

  // Transient noise: every attempt and every shuffle fetch can die with a
  // small probability, exercising backoff/retry and the blacklist decay.
  mixes.push_back({"fetch-noise",
                   [](RunConfig& cfg, std::size_t, std::size_t, Seconds,
                      std::uint64_t) {
                     cfg.faults.task_failure_prob = 0.01;
                     cfg.faults.fetch_failure_prob = 0.03;
                   }});

  // Fail-slow (gray failure): nothing crashes, nothing times out — machines
  // just get slow.  One victim drops to 30% CPU for a long stretch, another
  // rots progressively toward 40%, and background stochastic episodes limp
  // random machines to 50% for short spells.  The detection loop (progress
  // rates -> health EWMA -> quarantine) plus hardened speculation must keep
  // the workload finishing with zero audit violations.
  mixes.push_back({"fail-slow",
                   [](RunConfig& cfg, std::size_t machines, std::size_t,
                      Seconds h, std::uint64_t seed) {
                     const auto [a, b] = pick_two(seed, 17, machines);
                     cfg.faults.slow_for(a, 0.15 * h, 0.55 * h, 0.3, 0.5);
                     cfg.faults.rot(b, 0.30 * h, 0.40 * h, 0.4);
                     cfg.faults.slow_mtbf = 2.0 * h;
                     cfg.faults.slow_mttr = 0.05 * h;
                     cfg.faults.slow_cpu_factor = 0.5;
                     cfg.job_tracker.speculative_progress_ranking = true;
                     cfg.job_tracker.max_speculative_per_node = 2;
                   }});

  // Gray-and-stop: a limping machine coexists with a hard crash and fetch
  // noise, so quarantine (fail-slow) and blacklist/expiry (fail-stop) run
  // concurrently and their state-priority interaction is exercised for real.
  mixes.push_back({"gray-and-stop",
                   [](RunConfig& cfg, std::size_t machines, std::size_t,
                      Seconds h, std::uint64_t seed) {
                     const auto [a, b] = pick_two(seed, 19, machines);
                     cfg.faults.slow_for(a, 0.10 * h, 0.60 * h, 0.35);
                     cfg.faults.crash_for(b, 0.30 * h, 0.25 * h);
                     cfg.faults.fetch_failure_prob = 0.01;
                     cfg.job_tracker.speculative_progress_ranking = true;
                     cfg.job_tracker.max_speculative_per_node = 2;
                   }});

  // Control-plane only: the JobTracker crashes twice — a brief blip the
  // buffered reports ride out, and a long outage that spans tracker activity
  // — with checkpointing enabled so the second recovery replays real
  // coverage.  Epoch fencing, the re-registration storm and orphan
  // resolution all run while the data plane stays perfectly healthy.
  mixes.push_back({"jobtracker-crash",
                   [](RunConfig& cfg, std::size_t, std::size_t, Seconds h,
                      std::uint64_t seed) {
                     const Seconds t1 = (0.15 + 0.02 * pick(seed, 23, 5)) * h;
                     cfg.faults.crash_jobtracker_for(t1, 0.03 * h);
                     cfg.faults.crash_jobtracker_for(0.55 * h, 0.15 * h);
                     cfg.job_tracker.checkpoint_interval = 0.05 * h;
                     cfg.job_tracker.checkpoint_write_cost = 0.002 * h;
                     cfg.job_tracker.reregistration_window = 0.01 * h;
                   }});

  // Correlated control-plane + network disaster: the JobTracker and the
  // NameNode both crash while one rack is partitioned, so recovery must
  // interleave checkpoint replay, block-map restoration, buffered datanode
  // marks and fetch-failure handling.  The NameNode comes back first (the
  // JobTracker replays buffered submissions only once both are up).
  mixes.push_back({"master-and-partition",
                   [](RunConfig& cfg, std::size_t, std::size_t racks,
                      Seconds h, std::uint64_t seed) {
                     EANT_CHECK(racks >= 2,
                                "master-and-partition mix needs a multi-rack "
                                "fabric");
                     cfg.faults.partition_rack(pick(seed, 29, racks), 0.30 * h,
                                               0.15 * h);
                     const Seconds t = (0.32 + 0.01 * pick(seed, 31, 4)) * h;
                     cfg.faults.crash_namenode_for(t, 0.08 * h);
                     cfg.faults.crash_jobtracker_for(t + 0.01 * h, 0.10 * h);
                     cfg.job_tracker.checkpoint_interval = 0.04 * h;
                     cfg.job_tracker.checkpoint_write_cost = 0.002 * h;
                     cfg.job_tracker.reregistration_window = 0.01 * h;
                   }});

  // Corruption storm: silent bit rot everywhere — two scripted replica
  // corruptions land early, stochastic rot keeps striking machines, and a
  // fraction of shuffle payloads arrive garbled.  The background scrubber
  // runs aggressively so latent damage is found and repaired inside the run;
  // the corruption-conservation audit (every injected corruption detected +
  // repaired, lost loudly, or still latent at finalize) is the oracle.
  mixes.push_back({"corruption-storm",
                   [](RunConfig& cfg, std::size_t machines, std::size_t,
                      Seconds h, std::uint64_t seed) {
                     const auto [a, b] = pick_two(seed, 37, machines);
                     cfg.faults.corrupt_machine_at(a, 0.10 * h);
                     cfg.faults.corrupt_machine_at(b, 0.25 * h);
                     cfg.faults.corruption_mtbf = 4.0 * h;
                     cfg.faults.shuffle_corruption_prob = 0.01;
                     cfg.job_tracker.scrub_period = 0.02 * h;
                     cfg.job_tracker.scrub_mbps = 200.0;
                   }});

  // Corrupt-and-limp: bit rot on a machine that is also failing slow — the
  // classic dying-disk signature (garbage reads AND degraded throughput).
  // Scrubbing, read failover and re-replication must run concurrently with
  // quarantine and hardened speculation; end-to-end task-output verification
  // catches the limping machine writing garbage that "completes" cleanly.
  mixes.push_back({"corrupt-and-limp",
                   [](RunConfig& cfg, std::size_t machines, std::size_t,
                      Seconds h, std::uint64_t seed) {
                     const auto [a, b] = pick_two(seed, 41, machines);
                     cfg.faults.slow_for(a, 0.10 * h, 0.50 * h, 0.35, 0.5);
                     cfg.faults.corrupt_machine_at(a, 0.15 * h);
                     cfg.faults.corrupt_machine_at(b, 0.35 * h);
                     cfg.faults.shuffle_corruption_prob = 0.005;
                     cfg.faults.task_output_corruption_prob = 0.005;
                     cfg.job_tracker.scrub_period = 0.03 * h;
                     cfg.job_tracker.scrub_mbps = 150.0;
                     cfg.job_tracker.verify_task_output = true;
                     cfg.job_tracker.speculative_progress_ranking = true;
                     cfg.job_tracker.max_speculative_per_node = 2;
                   }});

  // Everything at once (moderated so at most two machines are ever dark
  // together): a declared node loss, link flaps, a partition and transient
  // fetch errors.
  mixes.push_back({"everything",
                   [](RunConfig& cfg, std::size_t machines, std::size_t racks,
                      Seconds h, std::uint64_t seed) {
                     EANT_CHECK(racks >= 2,
                                "everything mix needs a multi-rack fabric");
                     const std::size_t victim = pick(seed, 11, machines);
                     cfg.faults.crash_for(victim, 0.20 * h, 0.35 * h);
                     cfg.faults.partition_rack(pick(seed, 13, racks), 0.55 * h,
                                               0.08 * h);
                     cfg.faults.link_mtbf = 3.0 * h;
                     cfg.faults.link_mttr = 0.03 * h;
                     cfg.faults.link_fault_factor = 0.2;
                     cfg.faults.fetch_failure_prob = 0.01;
                   }});

  return mixes;
}

namespace {

ChaosOutcome run_cell(const ClusterBuilder& build_cluster,
                      SchedulerKind scheduler, const RunConfig& cfg,
                      const std::vector<workload::JobSpec>& jobs,
                      const std::string& mix_name, std::uint64_t seed) {
  ChaosOutcome o;
  o.mix = mix_name;
  o.seed = seed;
  Run run(build_cluster, scheduler, cfg);
  run.submit(jobs);
  run.execute();
  o.metrics = run.metrics();
  o.audit_violations = o.metrics.audit.total_violations();
  o.survived = o.metrics.jobs_failed == 0 &&
               o.metrics.jobs.size() == jobs.size() &&
               o.metrics.audit.clean() && o.audit_violations == 0 &&
               o.metrics.replication_violations == 0;
  return o;
}

}  // namespace

std::vector<ChaosOutcome> run_chaos_campaign(
    const ClusterBuilder& build_cluster, SchedulerKind scheduler,
    const RunConfig& base, const std::vector<workload::JobSpec>& jobs,
    const std::vector<ChaosMix>& mixes, const ChaosConfig& cc) {
  EANT_CHECK(!cc.seeds.empty(), "campaign needs at least one seed");
  EANT_CHECK(cc.horizon > 0.0, "campaign horizon must be positive");

  // Probe the fleet shape once so mixes can size their fault plans.
  std::size_t machines = 0;
  {
    sim::Simulator probe_sim;
    cluster::Cluster probe(probe_sim);
    build_cluster(probe);
    machines = probe.size();
  }
  const std::size_t racks = base.topology ? base.topology->racks : 1;

  // Flatten the (mix-major, seed-minor) matrix into independent cells and
  // run them through the thread-per-seed driver: every cell builds its own
  // simulator stack, so cells share nothing but immutable inputs, and the
  // pre-allocated result slots keep the output order identical to the old
  // serial loop no matter which cell finishes first.
  std::vector<ChaosOutcome> out(mixes.size() * cc.seeds.size());
  parallel_for(out.size(), cc.threads, [&](std::size_t i) {
    const ChaosMix& mix = mixes[i / cc.seeds.size()];
    const std::uint64_t seed = cc.seeds[i % cc.seeds.size()];
    RunConfig cfg = base;
    cfg.seed = seed;
    cfg.audit.enabled = true;  // the campaign's oracle is non-negotiable
    mix.apply(cfg, machines, racks, cc.horizon, seed);
    ChaosOutcome o =
        run_cell(build_cluster, scheduler, cfg, jobs, mix.name, seed);
    if (cc.verify_determinism && seed == cc.seeds.front()) {
      const ChaosOutcome again =
          run_cell(build_cluster, scheduler, cfg, jobs, mix.name, seed);
      o.deterministic =
          again.metrics.determinism_digest == o.metrics.determinism_digest;
    }
    out[i] = std::move(o);
  });
  return out;
}

}  // namespace eant::exp
