// The Run harness: wires simulator, cluster, HDFS, noise, a scheduler and
// the JobTracker together, executes a workload to completion and returns
// RunMetrics.  Every bench and most integration tests go through this.

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "audit/auditor.h"
#include "core/eant_scheduler.h"
#include "exp/builders.h"
#include "exp/metrics.h"
#include "hdfs/namenode.h"
#include "mapreduce/job_tracker.h"
#include "mapreduce/noise.h"
#include "net/fabric.h"
#include "sched/capacity.h"
#include "sim/fault_injector.h"
#include "sim/simulator.h"

namespace eant::exp {

/// Which task-assignment policy a run uses.
enum class SchedulerKind { kFifo, kFair, kCapacity, kTarazu, kLate, kEAnt };

std::string scheduler_kind_name(SchedulerKind kind);

/// Run-wide knobs.
struct RunConfig {
  std::uint64_t seed = 1;
  mr::NoiseConfig noise = mr::NoiseConfig::none();
  mr::JobTrackerConfig job_tracker;
  core::EAntConfig eant;       ///< used when scheduler == kEAnt
  /// When set, kCapacity runs in tenant mode: per-tenant weighted-share
  /// queues, EDF deadline boost and share-rebalancing preemption.  Unset =
  /// the digest-frozen legacy fixed-fraction queues.
  std::optional<sched::TenantShareConfig> tenancy;
  sim::FaultPlan faults;       ///< machine/task fault injection (off by default)
  Seconds time_limit = 14.0 * 24 * 3600;  ///< safety stop (sim time)

  /// When set, the run builds a network fabric over this topology: HDFS
  /// places blocks rack-aware, and shuffles / remote reads / replication
  /// writes become contending flows instead of scalar-bandwidth costs.
  /// Presets: net::TopologySpec::flat() (one rack, infinite links — the
  /// legacy timing, but with flow metrics) and
  /// net::TopologySpec::oversubscribed() (4 racks, finite access links and a
  /// 1.5x-oversubscribed rack uplink).  Unset = legacy scalar model.
  std::optional<net::TopologySpec> topology;

  /// Invariant-audit layer (off by default; the EANT_AUDIT environment
  /// variable forces it on for any run regardless of this field).  When
  /// active, every event, task transition, flow and machine-state change is
  /// cross-checked and folded into RunMetrics::determinism_digest, and the
  /// aggregated AuditReport lands in RunMetrics::audit.
  audit::AuditConfig audit;
};

/// One experiment execution.  Construct, submit jobs, execute, read metrics.
class Run {
 public:
  Run(const ClusterBuilder& build_cluster, SchedulerKind scheduler,
      RunConfig config = {});
  ~Run();

  Run(const Run&) = delete;
  Run& operator=(const Run&) = delete;

  /// Schedules jobs at their submit times.
  void submit(const std::vector<workload::JobSpec>& jobs);

  /// Runs the simulation until every submitted job finished (or the safety
  /// time limit is hit, which throws — a run that cannot finish is a bug).
  void execute();

  /// Final metrics; valid after execute().
  RunMetrics metrics();

  // Component access for specialised experiments/tests.
  sim::Simulator& simulator() { return *sim_; }
  cluster::Cluster& cluster() { return *cluster_; }
  mr::JobTracker& job_tracker() { return *jt_; }
  hdfs::NameNode& namenode() { return *namenode_; }
  mr::Scheduler& scheduler() { return *scheduler_; }

  /// Non-null only for SchedulerKind::kEAnt runs.
  core::EAntScheduler* eant() { return eant_; }

  /// Non-null only when the RunConfig's FaultPlan injects something.
  sim::FaultInjector* fault_injector() { return injector_.get(); }

  /// Non-null only when the RunConfig set a topology.
  net::Fabric* fabric() { return fabric_.get(); }

  /// Non-null only when auditing is active for this run.
  audit::InvariantAuditor* auditor() { return auditor_.get(); }

 private:
  RunConfig config_;
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<audit::InvariantAuditor> auditor_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<net::Fabric> fabric_;  ///< must outlive the JobTracker
  std::unique_ptr<hdfs::NameNode> namenode_;
  std::unique_ptr<mr::NoiseModel> noise_;
  std::unique_ptr<mr::Scheduler> scheduler_;
  core::EAntScheduler* eant_ = nullptr;
  std::unique_ptr<mr::JobTracker> jt_;
  std::unique_ptr<sim::FaultInjector> injector_;
  std::unique_ptr<MetricsCollector> collector_;
};

/// Completion time of a job running alone on the given cluster under FIFO —
/// the "standalone execution time" used by the paper's slowdown-based
/// fairness metric (Sec. VI-D).
Seconds standalone_runtime(const ClusterBuilder& build_cluster,
                           const workload::JobSpec& job,
                           RunConfig config = {});

/// Fairness = 1 / variance(slowdown) over the run's jobs, where slowdown is
/// completion time / standalone time (Sec. VI-D).  `standalone` maps each
/// job class to its standalone runtime.
double slowdown_fairness(const RunMetrics& metrics,
                         const std::map<std::string, Seconds>& standalone);

}  // namespace eant::exp
