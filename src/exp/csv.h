// CSV export of run results and a fleet timeline sampler — for plotting the
// paper figures from bench output with external tooling.

#pragma once

#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "exp/metrics.h"
#include "sim/simulator.h"

namespace eant::exp {

/// Per-machine-type rows ("type,machines,energy_j,avg_utilization,...").
std::string to_csv_by_type(const RunMetrics& metrics);

/// Per-job rows ("job,class,submit_s,completion_s,maps,reduces,...").
std::string to_csv_jobs(const RunMetrics& metrics);

/// Samples fleet-wide power and utilisation on a fixed period while a run
/// executes; attach before Run::execute().
class TimelineCollector {
 public:
  TimelineCollector(sim::Simulator& sim, cluster::Cluster& cluster,
                    Seconds period = 30.0);
  ~TimelineCollector();

  TimelineCollector(const TimelineCollector&) = delete;
  TimelineCollector& operator=(const TimelineCollector&) = delete;

  struct Sample {
    Seconds time = 0.0;
    Watts fleet_power = 0.0;
    double mean_utilization = 0.0;
  };

  const std::vector<Sample>& samples() const { return samples_; }

  /// "time_s,fleet_power_w,mean_utilization" rows.
  std::string to_csv() const;

 private:
  bool sample();

  sim::Simulator& sim_;
  cluster::Cluster& cluster_;
  Seconds period_;
  sim::EventId event_;
  std::vector<Sample> samples_;
};

}  // namespace eant::exp
