#include "exp/runner.h"

#include "common/error.h"
#include "common/stats.h"
#include "sched/capacity.h"
#include "sched/fair.h"
#include "sched/fifo.h"
#include "sched/late.h"
#include "sched/tarazu.h"

namespace eant::exp {

std::string scheduler_kind_name(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kFifo:
      return "FIFO";
    case SchedulerKind::kFair:
      return "Fair";
    case SchedulerKind::kCapacity:
      return "Capacity";
    case SchedulerKind::kTarazu:
      return "Tarazu";
    case SchedulerKind::kLate:
      return "LATE";
    case SchedulerKind::kEAnt:
      return "E-Ant";
  }
  throw PreconditionError("unknown SchedulerKind");
}

namespace {

std::unique_ptr<mr::Scheduler> make_scheduler(SchedulerKind kind,
                                              const cluster::Cluster& cluster,
                                              const RunConfig& config) {
  switch (kind) {
    case SchedulerKind::kFifo:
      return std::make_unique<sched::FifoScheduler>();
    case SchedulerKind::kFair:
      return std::make_unique<sched::FairScheduler>();
    case SchedulerKind::kCapacity:
      return config.tenancy
                 ? std::make_unique<sched::CapacityScheduler>(*config.tenancy)
                 : std::make_unique<sched::CapacityScheduler>();
    case SchedulerKind::kTarazu:
      return std::make_unique<sched::TarazuScheduler>();
    case SchedulerKind::kLate:
      return std::make_unique<sched::LateScheduler>();
    case SchedulerKind::kEAnt: {
      const Rng seed_rng = Rng(config.seed).fork(0xea);
      return std::make_unique<core::EAntScheduler>(
          core::EnergyModel::from_cluster(cluster), seed_rng, config.eant);
    }
  }
  throw PreconditionError("unknown SchedulerKind");
}

}  // namespace

Run::Run(const ClusterBuilder& build_cluster, SchedulerKind scheduler,
         RunConfig config)
    : config_(config) {
  EANT_CHECK(static_cast<bool>(build_cluster), "cluster builder required");
  sim_ = std::make_unique<sim::Simulator>();
  if (config_.audit.enabled || audit::audit_env_enabled()) {
    auditor_ = std::make_unique<audit::InvariantAuditor>(*sim_, config_.audit);
    sim_->set_observer(auditor_.get());
  }
  cluster_ = std::make_unique<cluster::Cluster>(*sim_);
  build_cluster(*cluster_);
  EANT_CHECK(cluster_->size() >= 1, "cluster builder added no machines");
  if (auditor_) auditor_->attach_cluster(*cluster_);

  const Rng root(config_.seed);
  std::vector<std::size_t> racks;  // empty = one flat rack
  if (config_.topology) {
    net::Topology topo(*config_.topology, cluster_->size());
    racks = topo.rack_assignment();
    fabric_ = std::make_unique<net::Fabric>(*sim_, std::move(topo));
  }
  namenode_ = std::make_unique<hdfs::NameNode>(
      root.fork(1), cluster_->size(), hdfs::kDefaultReplication, racks);
  noise_ = std::make_unique<mr::NoiseModel>(config_.noise, root.fork(2));
  scheduler_ = make_scheduler(scheduler, *cluster_, config_);
  eant_ = dynamic_cast<core::EAntScheduler*>(scheduler_.get());
  if (config_.job_tracker.admission.enabled &&
      config_.job_tracker.admission.retry_seed == 0) {
    // Default the backpressure retry stream to the run seed: deterministic
    // per run, independent of the namenode/noise/injector forks.
    config_.job_tracker.admission.retry_seed = config_.seed;
  }
  jt_ = std::make_unique<mr::JobTracker>(*sim_, *cluster_, *namenode_,
                                         *scheduler_, *noise_,
                                         config_.job_tracker);
  if (fabric_) jt_->attach_fabric(*fabric_);
  if (auditor_) {
    if (fabric_) auditor_->attach_fabric(*fabric_);
    jt_->set_auditor(auditor_.get());
    if (eant_ != nullptr) eant_->set_auditor(auditor_.get());
  }
  jt_->start_trackers();

  if (config_.faults.enabled()) {
    EANT_CHECK(!config_.faults.has_net_faults() || fabric_ != nullptr,
               "network fault injection requires a topology");
    // A dedicated RNG fork: enabling fault injection never perturbs the
    // namenode/noise/scheduler draws of an otherwise-identical run.
    injector_ = std::make_unique<sim::FaultInjector>(
        *sim_, config_.faults, root.fork(3), cluster_->size(),
        fabric_ ? fabric_->topology().num_racks() : 1);
    injector_->set_handlers(
        [this](std::size_t m) { jt_->tracker(m).crash(); },
        [this](std::size_t m) { jt_->tracker(m).restart(); });
    if (config_.faults.has_slow_faults()) {
      // Fail-slow transitions land on the TaskTracker, which re-rates its
      // in-flight attempts and lets the health/quarantine loop observe the
      // limp through heartbeat progress samples.
      injector_->set_slow_handler(
          [this](std::size_t m, double cpu, double io) {
            jt_->tracker(m).set_perf_factors(cpu, io);
          });
    }
    if (config_.faults.has_net_faults()) {
      injector_->set_net_handler([this](sim::NetFaultEvent::Target target,
                                        std::size_t index, double factor) {
        if (target == sim::NetFaultEvent::Target::kNodeLink) {
          fabric_->set_node_link_factor(index, factor);
        } else {
          fabric_->set_trunk_factor(index, factor);
        }
      });
    }
    if (config_.faults.has_master_faults()) {
      injector_->set_master_handler(
          [this](sim::MasterFaultEvent::Target target, bool up) {
            if (target == sim::MasterFaultEvent::Target::kJobTracker) {
              up ? jt_->recover_master() : jt_->crash_master();
            } else {
              up ? jt_->recover_namenode() : jt_->crash_namenode();
            }
          });
    }
    if (config_.faults.has_corruption_faults()) {
      // Silent bit rot: the handler damages a replica without any failure —
      // detection happens (or not) at a checksummed read or a scrub pass.
      injector_->set_corruption_handler(
          [this](std::size_t m, std::int64_t block, double pick) {
            jt_->inject_corruption(m, block, pick);
          });
    }
    injector_->start();
    if (config_.faults.shuffle_corruption_prob > 0.0) {
      jt_->set_shuffle_corruption_hook(
          [this] { return injector_->draw_shuffle_corruption(); });
    }
    if (config_.faults.task_output_corruption_prob > 0.0) {
      jt_->set_task_output_corruption_hook(
          [this] { return injector_->draw_task_output_corruption(); });
    }
    if (config_.faults.task_failure_prob > 0.0) {
      jt_->set_attempt_fault_hook(
          [this](const mr::TaskSpec&, cluster::MachineId) {
            return injector_->draw_attempt_failure();
          });
    }
    if (config_.faults.fetch_failure_prob > 0.0) {
      jt_->set_fetch_fault_hook([this](mr::JobId, cluster::MachineId) {
        return injector_->draw_fetch_failure();
      });
    }
  }

  collector_ = std::make_unique<MetricsCollector>(*cluster_, *jt_);
  collector_->install();
}

Run::~Run() = default;

void Run::submit(const std::vector<workload::JobSpec>& jobs) {
  jt_->submit_all(jobs);
}

void Run::execute() {
  // Heartbeats and control-interval events repeat forever, so the queue
  // never drains; step until the workload completes.
  while (!jt_->all_done()) {
    EANT_CHECK(sim_->now() <= config_.time_limit,
               "run exceeded the safety time limit without completing");
    const bool progressed = sim_->step();
    EANT_ASSERT(progressed, "event queue drained with jobs outstanding");
  }
  // Drain in-flight block recovery so the post-run HDFS state is stable:
  // every block fully replicated, queued (endpoints still down), or recorded
  // lost — never silently mid-copy.
  while (jt_->rereplication_active() > 0) {
    EANT_CHECK(sim_->now() <= config_.time_limit,
               "block recovery exceeded the safety time limit");
    const bool progressed = sim_->step();
    EANT_ASSERT(progressed, "event queue drained with recovery in flight");
  }
}

RunMetrics Run::metrics() {
  // Close the admission and corruption ledgers (conservation checks) before
  // the collector reads them and before the auditor aggregates its report.
  jt_->finalize_admission();
  jt_->finalize_corruption();
  RunMetrics rm = collector_->finalize(scheduler_->name());
  if (fabric_) {
    rm.fabric_active = true;
    rm.network = fabric_->metrics();
  }
  if (injector_) {
    rm.link_faults = injector_->link_faults();
    rm.perf_faults = injector_->slow_faults();
  }
  rm.master_crashes = jt_->master_crashes();
  rm.checkpoints_written = jt_->checkpoints_written();
  rm.checkpoint_replays = jt_->checkpoint_replays();
  rm.fenced_heartbeats = jt_->fenced_heartbeats();
  rm.fenced_completions = jt_->fenced_completions();
  rm.orphans_committed = jt_->orphans_committed();
  rm.orphans_requeued = jt_->orphans_requeued();
  rm.quarantine_episodes = jt_->quarantine_episodes();
  if (auditor_) {
    rm.audited = true;
    rm.audit = auditor_->finalize();
    rm.determinism_digest = rm.audit.digest;
  }
  return rm;
}

Seconds standalone_runtime(const ClusterBuilder& build_cluster,
                           const workload::JobSpec& job, RunConfig config) {
  Run run(build_cluster, SchedulerKind::kFifo, config);
  workload::JobSpec spec = job;
  spec.submit_time = 0.0;
  run.submit({spec});
  run.execute();
  return run.metrics().jobs.at(0).completion_time;
}

double slowdown_fairness(const RunMetrics& metrics,
                         const std::map<std::string, Seconds>& standalone) {
  EANT_CHECK(!metrics.jobs.empty(), "run has no jobs");
  std::vector<double> slowdowns;
  slowdowns.reserve(metrics.jobs.size());
  for (const auto& j : metrics.jobs) {
    const auto it = standalone.find(j.class_name);
    EANT_CHECK(it != standalone.end(),
               "missing standalone runtime for class " + j.class_name);
    EANT_CHECK(it->second > 0.0, "standalone runtime must be positive");
    slowdowns.push_back(j.completion_time / it->second);
  }
  const double var = variance_of(slowdowns);
  // A perfectly uniform slowdown (variance 0) is clamped to a large finite
  // fairness instead of infinity.
  return 1.0 / std::max(var, 1e-6);
}

}  // namespace eant::exp
