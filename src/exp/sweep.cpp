#include "exp/sweep.h"

#include "common/error.h"
#include "exp/parallel_for.h"

namespace eant::exp {

namespace {

SeedOutcome run_cell(const ClusterBuilder& build_cluster,
                     SchedulerKind scheduler, const RunConfig& base,
                     const std::vector<workload::JobSpec>& jobs,
                     std::uint64_t seed, bool verify) {
  RunConfig cfg = base;
  cfg.seed = seed;
  if (verify) cfg.audit.enabled = true;  // digests need the auditor

  SeedOutcome o;
  o.seed = seed;
  {
    Run run(build_cluster, scheduler, cfg);
    run.submit(jobs);
    run.execute();
    o.metrics = run.metrics();
  }
  if (verify) {
    Run again(build_cluster, scheduler, cfg);
    again.submit(jobs);
    again.execute();
    o.deterministic =
        again.metrics().determinism_digest == o.metrics.determinism_digest;
  }
  return o;
}

}  // namespace

std::vector<SeedOutcome> sweep_seeds(const ClusterBuilder& build_cluster,
                                     SchedulerKind scheduler,
                                     const RunConfig& base,
                                     const std::vector<workload::JobSpec>& jobs,
                                     const std::vector<std::uint64_t>& seeds,
                                     const SweepConfig& sc) {
  EANT_CHECK(!seeds.empty(), "sweep needs at least one seed");
  std::vector<SeedOutcome> out(seeds.size());
  parallel_for(seeds.size(), sc.threads, [&](std::size_t i) {
    out[i] = run_cell(build_cluster, scheduler, base, jobs, seeds[i],
                      sc.verify_determinism);
  });
  return out;
}

}  // namespace eant::exp
