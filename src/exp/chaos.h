// Chaos-campaign harness: run a (seed x fault-mix) matrix of full workloads
// with the InvariantAuditor as the oracle.  Each fault mix is a named recipe
// that scripts or parameterises machine crashes, access-link faults, rack
// partitions, datanode losses, fail-slow (gray failure) performance
// degradations, control-plane (JobTracker / NameNode) crashes, transient
// fetch errors and silent data corruption (bit rot in stored replicas,
// garbled shuffle payloads, corrupt task output); a campaign asserts
// that every run survives — all jobs complete, zero invariant violations,
// no unexplained under-replication — and that re-running a (seed, mix) cell
// reproduces its determinism digest bit-for-bit.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "exp/builders.h"
#include "exp/metrics.h"
#include "exp/runner.h"
#include "sim/fault_injector.h"
#include "workload/job_spec.h"

namespace eant::exp {

/// One named fault recipe.  `apply` edits the run's FaultPlan (and may tweak
/// other RunConfig fields) knowing the fleet size, rack count and the
/// horizon (an estimate of the fault-free makespan used to place scripted
/// events mid-run); `seed` varies stochastic placement across campaign rows
/// without touching the RunConfig seed.
struct ChaosMix {
  std::string name;
  std::function<void(RunConfig& cfg, std::size_t machines, std::size_t racks,
                     Seconds horizon, std::uint64_t seed)>
      apply;
};

/// Outcome of one campaign cell (one seed under one mix).
struct ChaosOutcome {
  std::string mix;
  std::uint64_t seed = 0;
  RunMetrics metrics;
  std::size_t audit_violations = 0;
  bool survived = false;      ///< all jobs completed, zero violations
  bool deterministic = true;  ///< re-run digest matched (when verified)
};

/// Campaign-wide knobs.
struct ChaosConfig {
  std::vector<std::uint64_t> seeds = {1, 2, 3, 4};
  /// Rough fault-free makespan of the workload; scripted faults land inside
  /// (0, horizon).
  Seconds horizon = 3600.0;
  /// Re-run the first seed of every mix and compare digests.
  bool verify_determinism = true;
  /// Worker threads for the (seed x mix) matrix — each cell is one fully
  /// independent single-threaded Run (see exp/sweep.h).  1 = serial,
  /// 0 = one per hardware thread.  Cell order in the result is unaffected.
  unsigned threads = 1;
};

/// The default gauntlet: machine crashes, link flaps, a rack partition, a
/// datanode loss deep enough to trigger re-replication, fetch-failure noise,
/// two fail-slow mixes (pure gray failures, and gray-failures-plus-crash),
/// two control-plane mixes (JobTracker-only crashes with checkpoint replay,
/// and a correlated JobTracker + NameNode outage during a rack partition),
/// two silent-corruption mixes (a corruption storm with aggressive
/// scrubbing, and bit rot on a fail-slow machine with task-output
/// verification), and everything at once.
std::vector<ChaosMix> default_chaos_mixes();

/// Runs the full (seed x mix) matrix over the workload and returns one
/// outcome per cell, in (mix-major, seed-minor) order.  Auditing is forced
/// on for every run.
std::vector<ChaosOutcome> run_chaos_campaign(
    const ClusterBuilder& build_cluster, SchedulerKind scheduler,
    const RunConfig& base, const std::vector<workload::JobSpec>& jobs,
    const std::vector<ChaosMix>& mixes, const ChaosConfig& cc);

}  // namespace eant::exp
