// Motivation-study drivers (paper Sec. II, Fig. 1): open-loop task streams
// against a single machine at a controlled arrival rate, measuring
// throughput-per-watt and the idle/workload power split; plus the per-app
// map/shuffle/reduce completion-time breakdown.

#pragma once

#include "cluster/machine.h"
#include "common/units.h"
#include "workload/apps.h"

namespace eant::exp {

/// Result of one open-loop stream measurement.
struct StreamResult {
  double rate_per_minute = 0.0;
  std::size_t arrivals = 0;
  std::size_t completed = 0;
  Seconds horizon = 0.0;
  Joules energy = 0.0;       ///< total machine energy over the horizon
  Joules idle_energy = 0.0;  ///< P_idle x horizon ("idle system used")
  Watts mean_power = 0.0;

  /// Tasks per second per watt — the y-axis of Fig. 1(a)/(c).
  double throughput_per_watt() const {
    return energy <= 0.0 ? 0.0 : static_cast<double>(completed) / energy;
  }

  /// "Workload used" power component of Fig. 1(b).
  Joules workload_energy() const { return energy - idle_energy; }
};

/// Streams map tasks of `app` (splits of `split_mb`) at `rate_per_minute`
/// into one machine with `concurrency` task slots for `horizon` seconds.
/// Queueing is FIFO; CPU contention slows tasks when aggregate demand
/// exceeds the cores.
StreamResult run_task_stream(const cluster::MachineType& type,
                             workload::AppKind app, double rate_per_minute,
                             Seconds horizon, int concurrency,
                             std::uint64_t seed, Megabytes split_mb = 64.0);

/// Normalised map/shuffle/reduce time shares of one application run as a
/// full job (Fig. 1(d)); the three shares sum to 1.
struct PhaseBreakdown {
  double map = 0.0;
  double shuffle = 0.0;
  double reduce = 0.0;
};

PhaseBreakdown phase_breakdown(workload::AppKind app,
                               Megabytes input_mb = 4096.0,
                               std::uint64_t seed = 1);

}  // namespace eant::exp
