#include "exp/metrics.h"

#include <algorithm>

#include "common/error.h"
#include "common/stats.h"

namespace eant::exp {

Seconds RunMetrics::mean_completion(const std::string& class_name) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& j : jobs) {
    if (j.failed) continue;  // a failed job has no completion time
    if (!class_name.empty() && j.class_name != class_name) continue;
    sum += j.completion_time;
    ++n;
  }
  EANT_CHECK(n > 0, "no jobs match the requested class");
  return sum / static_cast<double>(n);
}

Seconds RunMetrics::mean_recovery_time() const {
  if (recovery_times.empty()) return 0.0;
  double sum = 0.0;
  for (Seconds t : recovery_times) sum += t;
  return sum / static_cast<double>(recovery_times.size());
}

const TypeMetrics& RunMetrics::type(const std::string& name) const {
  for (const auto& t : by_type) {
    if (t.type_name == name) return t;
  }
  throw PreconditionError("no metrics for machine type " + name);
}

const TenantMetrics& RunMetrics::tenant(workload::TenantId id) const {
  for (const auto& t : by_tenant) {
    if (t.tenant == id) return t;
  }
  throw PreconditionError("no metrics for tenant " + std::to_string(id));
}

MetricsCollector::MetricsCollector(cluster::Cluster& cluster,
                                   mr::JobTracker& jt)
    : cluster_(cluster),
      jt_(jt),
      model_(core::EnergyModel::from_cluster(cluster)) {}

void MetricsCollector::install() {
  jt_.set_report_listener([this](const mr::TaskReport& r) {
    const auto& type_name = cluster_.machine(r.machine).type().name;
    const auto& js = jt_.job(r.spec.job);
    ++tasks_by_type_app_[type_name][workload::app_name(js.spec().app)];
    ++total_tasks_;
    // Per-tenant SLO accounting: completed task-seconds and Eq. 2 energy.
    tenant_slot_seconds_[js.spec().tenant] += r.duration();
    tenant_energy_[js.spec().tenant] += model_.estimate(r);
    if (r.spec.kind == mr::TaskKind::kMap) {
      ++maps_by_type_[type_name];
      ++total_maps_;
      if (r.data_local) ++local_maps_;
      if (r.locality == Locality::kRackLocal) ++rack_local_maps_;
    } else {
      ++reduces_by_type_[type_name];
    }
  });

  jt_.set_job_finished_listener([this](const mr::JobState& js) {
    JobMetrics jm;
    jm.id = js.id();
    jm.class_name = js.spec().class_key();
    jm.tenant = js.spec().tenant;
    jm.submit_time = js.submit_time();
    jm.completion_time = js.completion_time();
    jm.deadline = js.spec().deadline;
    jm.missed_deadline = js.spec().has_deadline() &&
                         (js.failed() || js.spec().deadline < js.finish_time());
    jm.maps = js.num_maps();
    jm.reduces = js.num_reduces();
    jm.map_task_seconds = js.map_task_seconds();
    jm.shuffle_seconds = js.shuffle_seconds();
    jm.reduce_task_seconds = js.reduce_task_seconds();
    jm.failed = js.failed();
    jobs_.push_back(jm);
    last_finish_ = std::max(last_finish_, js.finish_time());
  });

  // Wasted work is costed with the same Eq. 2 estimator E-Ant itself uses,
  // so "energy spent on discarded attempts" is directly comparable to the
  // per-task energies the scheduler learned from.
  jt_.set_waste_listener(
      [this](const mr::TaskReport& r, mr::WasteReason reason) {
        wasted_energy_ += model_.estimate(r);
        if (reason == mr::WasteReason::kPreempted) {
          ++tenant_preemptions_[jt_.job(r.spec.job).spec().tenant];
        }
        // Corruption-attributed waste is a labelled subset of wasted_energy_,
        // so the corruption bill always sums into the total.
        if (reason == mr::WasteReason::kCorruption) {
          wasted_energy_corruption_ += model_.estimate(r);
        }
      });
}

RunMetrics MetricsCollector::finalize(const std::string& scheduler_name) {
  RunMetrics rm;
  rm.scheduler_name = scheduler_name;
  rm.makespan = last_finish_;
  rm.jobs = jobs_;
  rm.total_tasks = total_tasks_;
  rm.local_maps = local_maps_;
  rm.rack_local_maps = rack_local_maps_;
  rm.total_maps = total_maps_;
  rm.jobs_failed = jt_.jobs_failed();
  rm.killed_attempts = jt_.killed_attempts();
  rm.failed_attempts = jt_.failed_attempts();
  rm.lost_map_outputs = jt_.lost_map_outputs();
  rm.wasted_task_seconds = jt_.wasted_task_seconds();
  rm.wasted_energy = wasted_energy_;
  rm.recovery_times = jt_.recovery_times();
  rm.preempted_attempts = jt_.preempted_attempts();

  // Per-tenant SLO aggregates (std::map: by_tenant sorted by tenant id).
  // Admission ledgers merge in first: a tenant whose every arrival was
  // rejected still gets a row (zero latencies — rejected jobs never ran and
  // never enter the percentile input, distinctly from deadline misses).
  std::map<workload::TenantId, TenantMetrics> tenants;
  std::map<workload::TenantId, std::vector<double>> latencies;
  if (const mr::AdmissionControl* adm = jt_.admission()) {
    rm.admission_active = true;
    for (const auto& [tenant_id, led] : adm->ledgers()) {
      TenantMetrics& t = tenants[tenant_id];
      t.tenant = tenant_id;
      t.jobs_rejected = led.rejections;
      t.jobs_dropped = led.dropped;
      t.retries = led.retries;
      t.peak_backlog = led.peak_backlog;
      t.backlog_bound = led.bound;
      rm.jobs_rejected += led.rejections;
      rm.jobs_dropped += led.dropped;
      rm.admission_retries += led.retries;
    }
    rm.overload_transitions = adm->transitions();
    rm.time_elevated = adm->time_in(mr::OverloadState::kElevated);
    rm.time_saturated = adm->time_in(mr::OverloadState::kSaturated);
    rm.time_critical = adm->time_in(mr::OverloadState::kCritical);
  }
  for (const auto& j : rm.jobs) {
    TenantMetrics& t = tenants[j.tenant];
    t.tenant = j.tenant;
    ++t.jobs;
    if (j.failed) {
      ++t.jobs_failed;
    } else {
      latencies[j.tenant].push_back(j.completion_time);
    }
    if (j.deadline >= 0.0) {
      ++t.deadline_jobs;
      if (j.missed_deadline) {
        ++t.deadline_misses;
        ++rm.deadline_misses;
      }
    }
    // Goodput: jobs that completed and met their deadline (non-deadlined
    // completions count — finishing is their only obligation).
    if (!j.failed && !j.missed_deadline) ++t.jobs_goodput;
  }
  for (auto& [tenant_id, t] : tenants) {
    const auto& lat = latencies[tenant_id];
    if (!lat.empty()) {
      t.latency_p50 = percentile(lat, 50.0);
      t.latency_p95 = percentile(lat, 95.0);
      t.latency_p99 = percentile(lat, 99.0);
      t.mean_latency = mean_of(lat);
    }
    t.energy = tenant_energy_[tenant_id];
    t.slot_seconds = tenant_slot_seconds_[tenant_id];
    t.preemptions = tenant_preemptions_[tenant_id];
    rm.by_tenant.push_back(t);
  }

  rm.fetch_failures = jt_.fetch_failures();
  rm.fetch_reexecuted_maps = jt_.fetch_reexecuted_maps();
  rm.rereplicated_blocks = jt_.rereplicated_blocks();
  rm.rereplication_mb = jt_.rereplication_mb();
  rm.data_loss_events = jt_.data_loss_events();
  rm.corruptions_injected = jt_.corruptions_injected();
  rm.corruptions_detected = jt_.corruptions_detected();
  rm.corruptions_repaired = jt_.corruptions_repaired();
  rm.corruptions_lost = jt_.corruptions_lost();
  rm.corruptions_latent = jt_.corruptions_latent();
  rm.corrupt_read_failovers = jt_.corrupt_read_failovers();
  rm.shuffle_corruptions = jt_.shuffle_corruptions();
  rm.task_output_corruptions = jt_.task_output_corruptions();
  rm.scrubbed_mb = jt_.scrubbed_mb();
  rm.scrub_passes = jt_.scrub_passes();
  if (!jt_.corruption_detection_latencies().empty()) {
    rm.mean_detection_latency = mean_of(jt_.corruption_detection_latencies());
  }
  rm.wasted_energy_corruption = wasted_energy_corruption_;
  const hdfs::NameNode& nn = jt_.namenode();
  rm.under_replicated_blocks = nn.under_replicated_count();
  if (jt_.rereplication_active() == 0) {
    // With no stream in flight, every short block must be accounted for:
    // recorded lost or sitting in the recovery queue.
    for (hdfs::BlockId b = 0; b < nn.num_blocks(); ++b) {
      if (nn.block_lost(b)) continue;
      if (nn.live_replicas(b) >=
          static_cast<std::size_t>(nn.replication())) {
        continue;
      }
      if (nn.queued_for_rereplication(b)) continue;
      ++rm.replication_violations;
    }
  }

  const Seconds elapsed = jt_.simulator().now();
  for (const auto& type_name : cluster_.type_names()) {
    TypeMetrics tm;
    tm.type_name = type_name;
    double util_sum = 0.0;
    for (cluster::MachineId id : cluster_.machines_of_type(type_name)) {
      auto& m = cluster_.machine(id);
      tm.energy += m.energy();
      if (elapsed > 0.0) util_sum += m.utilization_integral() / elapsed;
      ++tm.machine_count;
    }
    tm.avg_utilization =
        tm.machine_count == 0 ? 0.0 : util_sum / tm.machine_count;
    if (auto it = maps_by_type_.find(type_name); it != maps_by_type_.end()) {
      tm.completed_maps = it->second;
    }
    if (auto it = reduces_by_type_.find(type_name);
        it != reduces_by_type_.end()) {
      tm.completed_reduces = it->second;
    }
    if (auto it = tasks_by_type_app_.find(type_name);
        it != tasks_by_type_app_.end()) {
      tm.tasks_by_app = it->second;
    }
    rm.total_energy += tm.energy;
    rm.by_type.push_back(std::move(tm));
  }
  return rm;
}

}  // namespace eant::exp
