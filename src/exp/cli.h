// Strict positional argument parsing for the bench binaries.
//
// The benches used to atoi() their argv, silently turning typos ("fulll",
// "1O") into default or zero-valued runs — an easy way to publish numbers
// from the wrong configuration.  Cli consumes positionals left to right,
// validates each against an explicit range or keyword, and on any malformed
// value, unknown trailing argument or unexpected flag prints the usage line
// to stderr and exits with status 2 (the conventional usage-error code).

#pragma once

#include <string>

namespace eant::exp {

/// One-pass positional parser.  Construct with main()'s argc/argv and the
/// usage synopsis, consume arguments in declaration order, then call done().
class Cli {
 public:
  Cli(int argc, char** argv, std::string usage);

  /// Consumes the next positional as an integer in [lo, hi]; returns `def`
  /// when absent.  Rejects partial parses ("1O"), empty strings and
  /// out-of-range values.
  long int_arg(const char* name, long def, long lo, long hi);

  /// Consumes the next positional as a double in [lo, hi]; returns `def`
  /// when absent.  Rejects partial parses, NaN (which fails every range
  /// comparison) and infinities — "rate-scale nan" must be a usage error,
  /// not a degenerate run.
  double double_arg(const char* name, double def, double lo, double hi);

  /// Consumes the next positional iff it equals `word`; returns whether it
  /// did.  An argument in this position that is NOT the keyword is a usage
  /// error (there is nothing else it could legally be).
  bool keyword_arg(const char* word);

  /// Consumes the next positional as a boolean flag; returns `def` when
  /// absent.  Accepts on/off, true/false, 1/0, and the flag's own name as a
  /// bare "turn it on" keyword (the idiom the benches previously hand-rolled
  /// with keyword_arg); anything else is a usage error.
  bool bool_arg(const char* name, bool def);

  /// Consumes the next positional as a free-form string (e.g. an output
  /// path); returns `def` when absent.  Flag-shaped arguments still die —
  /// the benches take only positionals.
  std::string string_arg(const char* name, std::string def);

  /// Call after the last declared argument: any unconsumed argv is an error.
  void done() const;

 private:
  [[noreturn]] void die(const std::string& message) const;
  const char* peek() const;

  int argc_;
  char** argv_;
  int next_ = 1;
  std::string usage_;
};

}  // namespace eant::exp
