// Minimal thread-pool parallel_for for embarrassingly parallel sweeps.
//
// Workers claim indices from a shared atomic counter and invoke fn(index);
// the call returns once every index completed.  The first exception thrown
// by any fn is captured and rethrown in the caller after the pool joined
// (remaining unclaimed indices are abandoned).
//
// Concurrency contract: fn must confine itself to state owned by its index —
// the intended use is one fully independent, *single-threaded* simulation
// per index writing into its own pre-allocated result slot, which keeps
// result ordering deterministic regardless of completion order.  The
// simulator itself stays single-threaded; only whole runs parallelise.

#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace eant::exp {

/// Worker count actually used for `n` items when `requested` are asked for
/// (0 = one per hardware thread); clamped to [1, n] for n > 0.
inline unsigned parallel_workers(std::size_t n, unsigned requested) {
  unsigned t = requested != 0 ? requested : std::thread::hardware_concurrency();
  if (t == 0) t = 1;  // hardware_concurrency may report 0
  if (n > 0 && n < static_cast<std::size_t>(t)) t = static_cast<unsigned>(n);
  return t;
}

/// Runs fn(i) for every i in [0, n) across up to `threads` workers
/// (0 = hardware concurrency).  threads <= 1 degenerates to a plain serial
/// loop on the calling thread — the fallback that keeps single-threaded
/// callers free of any pool overhead.
template <typename Fn>
void parallel_for(std::size_t n, unsigned threads, Fn&& fn) {
  if (n == 0) return;
  const unsigned workers = parallel_workers(n, threads);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> abort{false};
  std::exception_ptr error;
  std::mutex error_mu;

  auto worker = [&] {
    for (;;) {
      if (abort.load(std::memory_order_relaxed)) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mu);
          if (!error) error = std::current_exception();
        }
        abort.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace eant::exp
