// Server-consolidation extension (the paper's stated future work, Sec. VIII,
// in the spirit of Leverich & Kozyrakis's covering subset [13]).
//
// A ProvisioningPlan keeps a "covering subset" of machines fully powered —
// enough nodes to keep one replica of every block available — and puts the
// rest to sleep at a small standby power.  Combined with E-Ant on the active
// subset, this trades peak capacity for idle-power savings under light load;
// bench/ablation_provisioning quantifies the trade-off.

#pragma once

#include <vector>

#include "cluster/machine.h"
#include "exp/builders.h"
#include "exp/metrics.h"
#include "exp/runner.h"

namespace eant::exp {

/// Which machines of a fleet stay powered; the rest sleep.
struct ProvisioningPlan {
  /// Indices (into the full fleet's machine list) of powered machines.
  std::vector<std::size_t> active;
  /// Standby draw of each sleeping machine.
  Watts sleep_power = 3.0;
};

/// Picks a covering subset of the fleet heuristically: the most
/// energy-proportional machines first (lowest idle power per unit of
/// compute capability), keeping at least `min_active` machines and at least
/// `capacity_fraction` of the fleet's total compute capability.
ProvisioningPlan covering_subset(const std::vector<cluster::MachineType>& fleet,
                                 double capacity_fraction,
                                 std::size_t min_active = 3);

/// Result of a provisioned run: the active-subset run metrics plus the
/// standby energy of the sleeping machines over the same makespan.
struct ProvisionedResult {
  RunMetrics metrics;
  Joules sleeping_energy = 0.0;
  Joules total_energy() const { return metrics.total_energy + sleeping_energy; }
};

/// Runs a workload on the plan's active subset only, charging sleeping
/// machines their standby power for the whole makespan.
ProvisionedResult run_provisioned(const std::vector<cluster::MachineType>& fleet,
                                  const ProvisioningPlan& plan,
                                  SchedulerKind scheduler,
                                  const std::vector<workload::JobSpec>& jobs,
                                  RunConfig config = {});

/// The paper fleet as an explicit machine list (for provisioning plans).
std::vector<cluster::MachineType> paper_fleet_types();

}  // namespace eant::exp
