#include "exp/provisioning.h"

#include <algorithm>
#include <numeric>

#include "cluster/catalog.h"
#include "common/error.h"

namespace eant::exp {

std::vector<cluster::MachineType> paper_fleet_types() {
  namespace cat = cluster::catalog;
  std::vector<cluster::MachineType> fleet;
  for (int i = 0; i < 8; ++i) fleet.push_back(cat::desktop());
  for (int i = 0; i < 3; ++i) fleet.push_back(cat::t110());
  for (int i = 0; i < 2; ++i) fleet.push_back(cat::t420());
  fleet.push_back(cat::t620());
  fleet.push_back(cat::t320());
  fleet.push_back(cat::atom());
  return fleet;
}

ProvisioningPlan covering_subset(
    const std::vector<cluster::MachineType>& fleet, double capacity_fraction,
    std::size_t min_active) {
  EANT_CHECK(!fleet.empty(), "fleet must not be empty");
  EANT_CHECK(capacity_fraction > 0.0 && capacity_fraction <= 1.0,
             "capacity fraction must be in (0, 1]");
  EANT_CHECK(min_active >= 1, "must keep at least one machine active");

  std::vector<std::size_t> order(fleet.size());
  std::iota(order.begin(), order.end(), 0);
  auto capability = [&](std::size_t i) {
    return fleet[i].cores * fleet[i].cpu_factor;
  };
  // Most energy-proportional first: lowest idle watts per unit capability.
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return fleet[a].idle_power / capability(a) <
           fleet[b].idle_power / capability(b);
  });

  double total_capability = 0.0;
  for (std::size_t i = 0; i < fleet.size(); ++i) total_capability += capability(i);

  ProvisioningPlan plan;
  double kept = 0.0;
  for (std::size_t i : order) {
    if (plan.active.size() >= std::max(min_active, std::size_t{1}) &&
        kept >= capacity_fraction * total_capability) {
      break;
    }
    plan.active.push_back(i);
    kept += capability(i);
  }
  std::sort(plan.active.begin(), plan.active.end());
  return plan;
}

ProvisionedResult run_provisioned(
    const std::vector<cluster::MachineType>& fleet,
    const ProvisioningPlan& plan, SchedulerKind scheduler,
    const std::vector<workload::JobSpec>& jobs, RunConfig config) {
  EANT_CHECK(!plan.active.empty(), "plan must keep at least one machine");
  std::vector<cluster::MachineType> active_types;
  active_types.reserve(plan.active.size());
  for (std::size_t i : plan.active) {
    EANT_CHECK(i < fleet.size(), "plan references unknown machine");
    active_types.push_back(fleet[i]);
  }

  Run run(machines(active_types), scheduler, config);
  run.submit(jobs);
  run.execute();

  ProvisionedResult result;
  result.metrics = run.metrics();
  const std::size_t sleeping = fleet.size() - plan.active.size();
  result.sleeping_energy = static_cast<double>(sleeping) * plan.sleep_power *
                           result.metrics.makespan;
  return result;
}

}  // namespace eant::exp
