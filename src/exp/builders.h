// Cluster/workload builders shared by benches, examples and tests.

#pragma once

#include <functional>
#include <vector>

#include "cluster/cluster.h"
#include "workload/job_spec.h"

namespace eant::exp {

/// A function that populates an empty cluster with machines.
using ClusterBuilder = std::function<void(cluster::Cluster&)>;

/// The paper's 16-machine heterogeneous fleet (Sec. V-B).
ClusterBuilder paper_fleet();

/// `count` machines of a single type (homogeneous sub-cluster experiments).
ClusterBuilder homogeneous(cluster::MachineType type, std::size_t count);

/// An explicit machine list.
ClusterBuilder machines(std::vector<cluster::MachineType> types);

/// A single job of the given application and input size, submitted at t=0.
workload::JobSpec single_job(workload::AppKind app, Megabytes input_mb,
                             int num_reduces);

/// `count` identical jobs submitted together at t=0 (multi-job scenarios).
std::vector<workload::JobSpec> job_batch(workload::AppKind app,
                                         Megabytes input_mb, int num_reduces,
                                         int count);

}  // namespace eant::exp
