// Thread-per-seed sweep driver: runs the same experiment once per seed with
// one fully independent, single-threaded Run per worker thread.
//
// The simulator's determinism contract — a run is a pure function of
// RunConfig + seed — means seeds never need to share anything: each cell
// builds its own Simulator, Cluster, NameNode, JobTracker and scheduler.
// The driver exploits exactly that and nothing more; no simulator object is
// ever touched by two threads.  Results land in pre-allocated per-index
// slots, so output order is seed order no matter which cell finishes first,
// and an N-seed parallel sweep produces bit-identical RunMetrics (and
// determinism digests) to the serial loop it replaces.
//
// Thread-safety requirements on the inputs, enforced by convention and by
// tools/lint2's global-state check over src/: the ClusterBuilder and the job
// list are invoked/read concurrently and must be stateless (capture only
// immutable data); everything mutable is per-cell.

#pragma once

#include <cstdint>
#include <vector>

#include "exp/builders.h"
#include "exp/metrics.h"
#include "exp/runner.h"
#include "workload/job_spec.h"

namespace eant::exp {

/// Sweep-wide knobs.
struct SweepConfig {
  /// Worker threads (0 = one per hardware thread, 1 = serial on the calling
  /// thread).  Cells beyond the thread count queue and run as workers free.
  unsigned threads = 0;

  /// Re-run every cell a second time and record whether the determinism
  /// digest reproduced (requires auditing; forced on when set).
  bool verify_determinism = false;
};

/// Outcome of one seed's run.
struct SeedOutcome {
  std::uint64_t seed = 0;
  RunMetrics metrics;
  /// Digest of the verification re-run matched (always true when
  /// SweepConfig::verify_determinism is off).
  bool deterministic = true;
};

/// Runs (cluster, scheduler, base config, jobs) once per seed — base.seed is
/// overwritten per cell — and returns outcomes in the order of `seeds`,
/// regardless of completion order.  Exceptions from any cell propagate to
/// the caller after in-flight cells drain.
std::vector<SeedOutcome> sweep_seeds(const ClusterBuilder& build_cluster,
                                     SchedulerKind scheduler,
                                     const RunConfig& base,
                                     const std::vector<workload::JobSpec>& jobs,
                                     const std::vector<std::uint64_t>& seeds,
                                     const SweepConfig& sc = {});

}  // namespace eant::exp
