#include "exp/cli.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace eant::exp {

Cli::Cli(int argc, char** argv, std::string usage)
    : argc_(argc), argv_(argv), usage_(std::move(usage)) {}

const char* Cli::peek() const {
  return next_ < argc_ ? argv_[next_] : nullptr;
}

void Cli::die(const std::string& message) const {
  std::fprintf(stderr, "error: %s\nusage: %s\n", message.c_str(),
               usage_.c_str());
  std::exit(2);
}

long Cli::int_arg(const char* name, long def, long lo, long hi) {
  const char* arg = peek();
  if (arg == nullptr) return def;
  // Anything flag-shaped is unknown by construction: the benches take only
  // positionals.
  if (arg[0] == '-' && !(arg[1] >= '0' && arg[1] <= '9')) {
    die(std::string("unknown flag '") + arg + "'");
  }
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(arg, &end, 10);
  if (*arg == '\0' || end == arg || *end != '\0' || errno == ERANGE) {
    die(std::string("malformed ") + name + " '" + arg + "'");
  }
  if (value < lo || value > hi) {
    die(std::string(name) + " must lie in [" + std::to_string(lo) + ", " +
        std::to_string(hi) + "], got " + std::to_string(value));
  }
  ++next_;
  return value;
}

double Cli::double_arg(const char* name, double def, double lo, double hi) {
  const char* arg = peek();
  if (arg == nullptr) return def;
  if (arg[0] == '-' && !((arg[1] >= '0' && arg[1] <= '9') || arg[1] == '.')) {
    die(std::string("unknown flag '") + arg + "'");
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(arg, &end);
  if (*arg == '\0' || end == arg || *end != '\0' || errno == ERANGE) {
    die(std::string("malformed ") + name + " '" + arg + "'");
  }
  // Written as a negated conjunction so NaN (all comparisons false) dies.
  if (!(value >= lo && value <= hi)) {
    die(std::string(name) + " must lie in [" + std::to_string(lo) + ", " +
        std::to_string(hi) + "], got '" + arg + "'");
  }
  ++next_;
  return value;
}

bool Cli::keyword_arg(const char* word) {
  const char* arg = peek();
  if (arg == nullptr) return false;
  if (std::strcmp(arg, word) != 0) {
    die(std::string("unexpected argument '") + arg + "' (expected '" + word +
        "')");
  }
  ++next_;
  return true;
}

bool Cli::bool_arg(const char* name, bool def) {
  const char* arg = peek();
  if (arg == nullptr) return def;
  if (arg[0] == '-') {
    die(std::string("unknown flag '") + arg + "'");
  }
  const auto is = [arg](const char* word) {
    return std::strcmp(arg, word) == 0;
  };
  bool value = false;
  if (is("on") || is("true") || is("1") || is(name)) {
    value = true;
  } else if (is("off") || is("false") || is("0")) {
    value = false;
  } else {
    die(std::string("malformed ") + name + " '" + arg +
        "' (expected on/off, true/false, 1/0 or '" + name + "')");
  }
  ++next_;
  return value;
}

std::string Cli::string_arg(const char* name, std::string def) {
  const char* arg = peek();
  if (arg == nullptr) return def;
  if (arg[0] == '-') {
    die(std::string("unknown flag '") + arg + "'");
  }
  if (*arg == '\0') {
    die(std::string("empty ") + name);
  }
  ++next_;
  return arg;
}

void Cli::done() const {
  if (const char* arg = peek()) {
    die(std::string("unexpected trailing argument '") + arg + "'");
  }
}

}  // namespace eant::exp
