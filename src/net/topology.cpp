#include "net/topology.h"

#include "common/error.h"

namespace eant::net {

TopologySpec TopologySpec::flat() { return TopologySpec{}; }

TopologySpec TopologySpec::oversubscribed(std::size_t racks, double node_mbps,
                                          double rack_uplink_mbps) {
  TopologySpec spec;
  spec.racks = racks;
  spec.node_mbps = node_mbps;
  spec.rack_uplink_mbps = rack_uplink_mbps;
  return spec;
}

Topology::Topology(TopologySpec spec, std::size_t num_nodes)
    : spec_(spec), num_nodes_(num_nodes) {
  EANT_CHECK(num_nodes >= 1, "topology needs at least one node");
  EANT_CHECK(spec_.racks >= 1, "topology needs at least one rack");
  EANT_CHECK(spec_.node_mbps > 0.0, "node link capacity must be positive");
  EANT_CHECK(spec_.rack_uplink_mbps > 0.0,
             "rack uplink capacity must be positive");
  // More racks than nodes would leave empty racks and skew the rack-aware
  // placement policy; clamp like HDFS clamps the replication factor.
  if (spec_.racks > num_nodes_) spec_.racks = num_nodes_;
}

std::size_t Topology::rack_of(NodeId node) const {
  EANT_CHECK(node < num_nodes_, "unknown node");
  return node % spec_.racks;
}

std::vector<std::size_t> Topology::rack_assignment() const {
  std::vector<std::size_t> racks(num_nodes_);
  for (NodeId n = 0; n < num_nodes_; ++n) racks[n] = rack_of(n);
  return racks;
}

Locality Topology::locality(NodeId a, NodeId b) const {
  if (a == b) return Locality::kNodeLocal;
  return rack_of(a) == rack_of(b) ? Locality::kRackLocal : Locality::kOffRack;
}

LinkId Topology::node_tx(NodeId node) const {
  EANT_CHECK(node < num_nodes_, "unknown node");
  return node;
}

LinkId Topology::node_rx(NodeId node) const {
  EANT_CHECK(node < num_nodes_, "unknown node");
  return num_nodes_ + node;
}

LinkId Topology::rack_up(std::size_t rack) const {
  EANT_CHECK(rack < spec_.racks, "unknown rack");
  return 2 * num_nodes_ + rack;
}

LinkId Topology::rack_down(std::size_t rack) const {
  EANT_CHECK(rack < spec_.racks, "unknown rack");
  return 2 * num_nodes_ + spec_.racks + rack;
}

double Topology::capacity_mbps(LinkId link) const {
  EANT_CHECK(link < num_links(), "unknown link");
  return link < 2 * num_nodes_ ? spec_.node_mbps : spec_.rack_uplink_mbps;
}

std::string Topology::link_name(LinkId link) const {
  EANT_CHECK(link < num_links(), "unknown link");
  if (link < num_nodes_) return "node" + std::to_string(link) + ".tx";
  if (link < 2 * num_nodes_)
    return "node" + std::to_string(link - num_nodes_) + ".rx";
  if (link < 2 * num_nodes_ + spec_.racks)
    return "rack" + std::to_string(link - 2 * num_nodes_) + ".up";
  return "rack" + std::to_string(link - 2 * num_nodes_ - spec_.racks) + ".down";
}

void Topology::append_path(NodeId src, NodeId dst,
                           std::vector<LinkId>& out) const {
  if (src == dst) return;  // loopback: data never leaves the node
  out.push_back(node_tx(src));
  const std::size_t src_rack = rack_of(src);
  const std::size_t dst_rack = rack_of(dst);
  if (src_rack != dst_rack) {
    out.push_back(rack_up(src_rack));
    out.push_back(rack_down(dst_rack));
  }
  out.push_back(node_rx(dst));
}

}  // namespace eant::net
