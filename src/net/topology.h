// Rack-level network topology: every node hangs off its rack switch through a
// full-duplex access link, and every rack switch reaches the core through an
// (optionally oversubscribed) full-duplex uplink.  A transfer from node A to
// node B therefore crosses
//
//   A.tx                      when A and B share a rack, plus
//   rack(A).up + rack(B).down when they do not, plus
//   B.rx
//
// and nothing at all when A == B (loopback).  This is the standard two-tier
// tree that `replicant-opera`-style storage simulators and Hadoop's own
// NetworkTopology assume, and it is what turns the paper's "Grep/Terasort are
// shuffle-bound" observation (Fig. 1(d)) into an emergent property instead of
// a constant.

#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/locality.h"
#include "common/units.h"

namespace eant::net {

/// Machines double as network nodes; ids are the cluster's MachineIds.
using NodeId = std::size_t;

/// Identifies one directed link in a Topology.
using LinkId = std::size_t;

/// Capacity value meaning "this link never binds".
constexpr double kUnlimitedMbps = std::numeric_limits<double>::infinity();

/// Declarative description of a fabric; `Topology` expands it for a concrete
/// node count.  Capacities are in MB/s, matching the JobTrackerConfig
/// bandwidth scalars they replace.
struct TopologySpec {
  std::size_t racks = 1;
  double node_mbps = kUnlimitedMbps;         ///< per-node access link, each way
  double rack_uplink_mbps = kUnlimitedMbps;  ///< rack<->core trunk, each way

  /// One rack, infinite links: flows are limited only by their own caps, so
  /// runs reproduce the legacy scalar-bandwidth model exactly.
  static TopologySpec flat();

  /// The default contended experiment: GbE-class access links (~100 MB/s as
  /// in the paper's 1 GbE testbed) and a rack trunk shared by every node in
  /// the rack.  Capacities are application-effective rates on the same scale
  /// as the JobTrackerConfig scalars (shuffle 20, remote read 10 MB/s), so a
  /// 25 MB/s trunk saturates as soon as two rack-crossing fetches overlap —
  /// the regime where the paper's Fig. 1(d) "Grep/Terasort are
  /// shuffle-bound" ordering emerges from contention alone.
  static TopologySpec oversubscribed(std::size_t racks = 4,
                                     double node_mbps = 100.0,
                                     double rack_uplink_mbps = 25.0);
};

/// Immutable expanded topology: rack membership plus directed link table.
class Topology {
 public:
  Topology(TopologySpec spec, std::size_t num_nodes);

  const TopologySpec& spec() const { return spec_; }
  std::size_t num_nodes() const { return num_nodes_; }
  std::size_t num_racks() const { return spec_.racks; }

  /// Round-robin rack membership (node n lives in rack n % racks), so the
  /// heterogeneous machine types of the paper's fleet spread across racks
  /// instead of clustering by hardware generation.
  std::size_t rack_of(NodeId node) const;

  /// rack_of() for all nodes, in node order (handed to the NameNode).
  std::vector<std::size_t> rack_assignment() const;

  Locality locality(NodeId a, NodeId b) const;

  // --- directed link table ---------------------------------------------------
  // Layout: [node tx][node rx][rack up][rack down].
  std::size_t num_links() const { return 2 * num_nodes_ + 2 * spec_.racks; }
  LinkId node_tx(NodeId node) const;
  LinkId node_rx(NodeId node) const;
  LinkId rack_up(std::size_t rack) const;
  LinkId rack_down(std::size_t rack) const;

  double capacity_mbps(LinkId link) const;
  bool is_finite(LinkId link) const {
    return std::isfinite(capacity_mbps(link));
  }
  std::string link_name(LinkId link) const;

  /// Appends the links a src->dst transfer crosses (empty for loopback).
  void append_path(NodeId src, NodeId dst, std::vector<LinkId>& out) const;

 private:
  TopologySpec spec_;
  std::size_t num_nodes_;
};

}  // namespace eant::net
