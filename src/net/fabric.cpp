#include "net/fabric.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/fp.h"

namespace eant::net {
namespace {

// Absolute slack (MB/s) below which a link counts as saturated and a flow as
// capped during progressive filling.  Capacities are O(10..1000) MB/s, so
// this is ~12 digits below the working range — far inside the 1e-6 analytic
// tolerance the tests assert.
constexpr double kRateTol = 1e-9;

}  // namespace

std::string transfer_class_name(TransferClass cls) {
  switch (cls) {
    case TransferClass::kShuffle:
      return "shuffle";
    case TransferClass::kRemoteRead:
      return "remote-read";
    case TransferClass::kReplication:
      return "replication";
  }
  return "?";
}

Fabric::Fabric(sim::Simulator& sim, Topology topology)
    : sim_(sim), topo_(std::move(topology)) {
  link_load_.resize(topo_.num_links());
  link_active_.resize(topo_.num_links());
  link_factor_.assign(topo_.num_links(), 1.0);
}

Fabric::~Fabric() {
  // Pending completion events capture `this`; never let them outlive us.
  for (const auto& [id, flow] : flows_) sim_.cancel(flow.completion_event);
}

FlowId Fabric::start_flow(NodeId src, NodeId dst, Megabytes mb, double cap_mbps,
                          TransferClass cls,
                          std::function<void(FlowId)> on_complete,
                          FailureHandler on_failed) {
  EANT_CHECK(src != dst, "loopback transfers do not enter the fabric");
  EANT_CHECK(mb > 0.0, "flow size must be positive");
  EANT_CHECK(cap_mbps > 0.0 && std::isfinite(cap_mbps),
             "flow rate cap must be positive and finite");

  advance_all();

  Flow flow;
  flow.src = src;
  flow.dst = dst;
  flow.total = mb;
  flow.cap_mbps = cap_mbps;
  flow.started = sim_.now();
  flow.cls = cls;
  flow.on_complete = std::move(on_complete);
  flow.on_failed = std::move(on_failed);

  // Keep the full path: a link that is unlimited today can be degraded or
  // killed by a fault tomorrow, so in-flight flows must remember every link
  // they cross.  Links that cannot bind are skipped inside reallocate().
  topo_.append_path(src, dst, flow.path);
  flow.solo_mbps = cap_mbps;
  for (LinkId link : flow.path) {
    const double eff = effective_capacity_mbps(link);
    if (std::isfinite(eff)) flow.solo_mbps = std::min(flow.solo_mbps, eff);
  }

  const FlowId id = next_id_++;
  flows_.emplace(id, std::move(flow));
  if (observer_) observer_->on_flow_started(id, cls, mb);
  reallocate();
  return id;
}

void Fabric::abort_flow(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  advance_all();  // credit the bytes that did arrive before the abort
  sim_.cancel(it->second.completion_event);
  ++aborted_;
  const Megabytes requested = it->second.total;
  const Megabytes delivered = it->second.sent;
  flows_.erase(it);
  if (observer_) observer_->on_flow_aborted(id, requested, delivered);
  reallocate();
}

void Fabric::fail_flow(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  advance_all();  // credit the bytes that did arrive before the fault hit
  sim_.cancel(it->second.completion_event);
  ++failed_;
  Flow flow = std::move(it->second);
  flows_.erase(it);
  if (observer_) observer_->on_flow_aborted(id, flow.total, flow.sent);
  reallocate();
  if (flow.on_failed)
    flow.on_failed(id, std::max(0.0, flow.total - flow.sent));
}

// --- degraded link state -----------------------------------------------------

bool Fabric::link_down(LinkId link) const { return link_factor_[link] <= 0.0; }

bool Fabric::binds(LinkId link) const {
  // A dead link binds (at zero); an unlimited healthy/degraded one never does.
  return std::isfinite(effective_capacity_mbps(link));
}

double Fabric::effective_capacity_mbps(LinkId link) const {
  const double factor = link_factor_[link];
  if (factor <= 0.0) return 0.0;
  return topo_.capacity_mbps(link) * factor;
}

void Fabric::set_link_factor(LinkId link, double factor) {
  EANT_CHECK(link < link_factor_.size(), "unknown link");
  EANT_CHECK(factor >= 0.0 && factor <= 1.0,
             "link capacity factor must lie in [0, 1]");
  if (approx_equal(factor, link_factor_[link])) return;
  advance_all();  // bytes moved at the old rates up to this instant
  link_factor_[link] = factor;
  if (observer_) observer_->on_link_state(link, factor);
  reallocate();  // re-rates survivors; stranded flows get fail events at now
}

void Fabric::set_node_link_factor(NodeId node, double factor) {
  set_link_factor(topo_.node_tx(node), factor);
  set_link_factor(topo_.node_rx(node), factor);
}

void Fabric::set_trunk_factor(std::size_t rack, double factor) {
  set_link_factor(topo_.rack_up(rack), factor);
  set_link_factor(topo_.rack_down(rack), factor);
}

double Fabric::link_factor(LinkId link) const {
  EANT_CHECK(link < link_factor_.size(), "unknown link");
  return link_factor_[link];
}

double Fabric::node_link_factor(NodeId node) const {
  return std::min(link_factor(topo_.node_tx(node)),
                  link_factor(topo_.node_rx(node)));
}

double Fabric::trunk_factor(std::size_t rack) const {
  return std::min(link_factor(topo_.rack_up(rack)),
                  link_factor(topo_.rack_down(rack)));
}

bool Fabric::degraded() const {
  for (const double factor : link_factor_)
    if (factor < 1.0) return true;
  return false;
}

bool Fabric::reachable(NodeId src, NodeId dst) const {
  if (src == dst) return true;
  std::vector<LinkId> path;
  topo_.append_path(src, dst, path);
  for (LinkId link : path)
    if (link_down(link)) return false;
  return true;
}

NodeId Fabric::flow_src(FlowId id) const { return flows_.at(id).src; }
NodeId Fabric::flow_dst(FlowId id) const { return flows_.at(id).dst; }
TransferClass Fabric::flow_class(FlowId id) const { return flows_.at(id).cls; }
double Fabric::flow_cap_mbps(FlowId id) const { return flows_.at(id).cap_mbps; }
double Fabric::flow_rate_mbps(FlowId id) const {
  return flows_.at(id).rate_mbps;
}

Megabytes Fabric::flow_remaining_mb(FlowId id) const {
  const Flow& flow = flows_.at(id);
  const Seconds dt = sim_.now() - last_advance_;
  const Megabytes in_flight = dt > 0.0 ? flow.rate_mbps * dt : 0.0;
  return std::max(0.0, flow.total - flow.sent - in_flight);
}

std::vector<FlowId> Fabric::flows_touching(NodeId node) const {
  std::vector<FlowId> out;
  for (const auto& [id, flow] : flows_)
    if (flow.src == node || flow.dst == node) out.push_back(id);
  return out;
}

FabricMetrics Fabric::metrics() const {
  FabricMetrics m;
  m.shuffle_mb = class_mb_[static_cast<int>(TransferClass::kShuffle)];
  m.remote_read_mb = class_mb_[static_cast<int>(TransferClass::kRemoteRead)];
  m.replication_mb = class_mb_[static_cast<int>(TransferClass::kReplication)];
  m.flows_completed = completed_;
  m.flows_aborted = aborted_;
  m.flows_failed = failed_;
  m.mean_flow_slowdown =
      completed_ == 0 ? 1.0 : slowdown_sum_ / static_cast<double>(completed_);
  m.peak_link_utilization = peak_utilization_;
  return m;
}

void Fabric::advance_all() {
  const Seconds dt = sim_.now() - last_advance_;
  last_advance_ = sim_.now();
  if (dt <= 0.0) return;
  for (auto& [id, flow] : flows_) {
    const Megabytes delta =
        std::min(flow.total - flow.sent, flow.rate_mbps * dt);
    flow.sent += delta;
    account_bytes(flow.cls, delta);
  }
}

void Fabric::reallocate() {
  if (flows_.empty()) return;

  // Progressive filling: raise every unfrozen flow's rate in lockstep; when
  // a flow hits its cap it freezes, and when a link saturates every flow
  // crossing it freezes at the current (max-min fair) level.
  std::fill(link_load_.begin(), link_load_.end(), 0.0);
  std::fill(link_active_.begin(), link_active_.end(), std::size_t{0});

  std::size_t unfrozen = 0;
  for (auto& [id, flow] : flows_) {
    flow.rate_mbps = 0.0;
    ++unfrozen;
    for (LinkId link : flow.path) ++link_active_[link];
  }

  std::vector<bool> frozen(flows_.size(), false);
  while (unfrozen > 0) {
    // Largest uniform rate increment the caps and link residuals allow.
    double inc = kUnlimitedMbps;
    std::size_t i = 0;
    for (auto& [id, flow] : flows_) {
      if (!frozen[i]) inc = std::min(inc, flow.cap_mbps - flow.rate_mbps);
      ++i;
    }
    for (LinkId link = 0; link < link_load_.size(); ++link) {
      if (link_active_[link] == 0 || !binds(link)) continue;
      const double residual = effective_capacity_mbps(link) - link_load_[link];
      inc = std::min(inc,
                     residual / static_cast<double>(link_active_[link]));
    }
    inc = std::max(inc, 0.0);  // float slack can drive the residual negative

    // Apply the increment, then freeze whatever became binding.
    i = 0;
    for (auto& [id, flow] : flows_) {
      if (!frozen[i]) {
        flow.rate_mbps =
            std::isinf(inc) ? flow.cap_mbps : flow.rate_mbps + inc;
        for (LinkId link : flow.path) link_load_[link] += inc;
      }
      ++i;
    }
    i = 0;
    for (auto& [id, flow] : flows_) {
      if (!frozen[i]) {
        bool stop = flow.rate_mbps >= flow.cap_mbps - kRateTol;
        for (LinkId link : flow.path) {
          if (binds(link) &&
              link_load_[link] >= effective_capacity_mbps(link) - kRateTol)
            stop = true;
        }
        if (stop) {
          frozen[i] = true;
          --unfrozen;
          for (LinkId link : flow.path) --link_active_[link];
        }
      }
      ++i;
    }
  }

  // Peak utilisation over binding links, observed at reallocation instants
  // (rates are constant between instants, so this is the true peak).
  for (LinkId link = 0; link < link_load_.size(); ++link) {
    if (!binds(link) || link_down(link) || link_load_[link] <= 0.0) continue;
    peak_utilization_ = std::max(
        peak_utilization_,
        std::min(1.0, link_load_[link] / effective_capacity_mbps(link)));
  }

  // Reschedule every completion at the new rates.  A flow stranded on a
  // down link holds rate 0 and will never deliver another byte; it gets a
  // fail event at `now` instead of a completion in the infinite future.
  for (auto& [id, flow] : flows_) {
    sim_.cancel(flow.completion_event);
    const Megabytes remaining = std::max(0.0, flow.total - flow.sent);
    const FlowId flow_id = id;
    if (remaining > 0.0 && flow.rate_mbps <= kRateTol) {
      flow.completion_event =
          sim_.schedule_after(0.0, [this, flow_id] { fail_flow(flow_id); });
      continue;
    }
    const Seconds dt =
        std::isinf(flow.rate_mbps) ? 0.0 : remaining / flow.rate_mbps;
    flow.completion_event =
        sim_.schedule_after(dt, [this, flow_id] { finish_flow(flow_id); });
  }
}

void Fabric::finish_flow(FlowId id) {
  advance_all();
  auto it = flows_.find(id);
  EANT_CHECK(it != flows_.end(), "completion event for unknown flow");
  Flow flow = std::move(it->second);
  if (observer_) observer_->on_flow_finished(id, flow.total, flow.sent);
  // Float residue: the completion event fired, so the last byte is in.
  account_bytes(flow.cls, std::max(0.0, flow.total - flow.sent));

  ++completed_;
  const Seconds actual = sim_.now() - flow.started;
  const Seconds solo =
      std::isinf(flow.solo_mbps) ? 0.0 : flow.total / flow.solo_mbps;
  slowdown_sum_ += solo > 0.0 ? std::max(1.0, actual / solo) : 1.0;

  flows_.erase(it);
  reallocate();
  if (flow.on_complete) flow.on_complete(id);
}

void Fabric::account_bytes(TransferClass cls, Megabytes mb) {
  class_mb_[static_cast<int>(cls)] += mb;
}

}  // namespace eant::net
