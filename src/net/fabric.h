// Contention-aware flow model over a Topology.
//
// Every in-flight transfer is a fluid flow with a fixed path, a per-flow rate
// cap (the application-level bandwidth it could use on an idle network — for
// shuffle/remote-read flows this is the legacy JobTrackerConfig scalar, which
// makes the flat infinite-capacity topology reproduce the old model exactly)
// and a progressive-filling max-min fair share of every link it crosses.
//
// The model is purely event-driven: rates only change when a flow starts,
// finishes or aborts.  At each such instant the fabric advances all flows'
// transferred bytes at their previous rates, re-runs the water-filling
// allocation, and reschedules each flow's completion event in the Simulator.
// There is no per-tick polling.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/units.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace eant::net {

/// Why bytes are moving; used to attribute traffic and contention per class.
enum class TransferClass {
  kShuffle,      ///< reduce fetching map output partitions
  kRemoteRead,   ///< non-local map reading its split from a replica holder
  kReplication,  ///< HDFS pipeline writing job output replicas
};

std::string transfer_class_name(TransferClass cls);

/// Identifies an in-flight flow; never reused within a Fabric.
using FlowId = std::uint64_t;

/// Passive observer of flow lifecycle (the audit layer's byte-conservation
/// tap).  Callbacks fire synchronously inside start/finish/abort and must
/// not mutate the fabric.
class FabricObserver {
 public:
  virtual ~FabricObserver() = default;
  virtual void on_flow_started(FlowId id, TransferClass cls,
                               Megabytes total_mb) = 0;
  /// `delivered_mb` is the bytes credited to the flow when its completion
  /// event fired (before the fabric tops up the float residue).
  virtual void on_flow_finished(FlowId id, Megabytes requested_mb,
                                Megabytes delivered_mb) = 0;
  /// Fires for both voluntary aborts and fault-driven kills; `delivered_mb`
  /// is the bytes that arrived before teardown (they stay in the per-class
  /// byte accounting — partial transfers are real traffic).
  virtual void on_flow_aborted(FlowId id, Megabytes requested_mb,
                               Megabytes delivered_mb) = 0;
  /// A link's capacity factor changed (fault, degradation or repair).
  virtual void on_link_state(LinkId link, double factor) {
    (void)link;
    (void)factor;
  }
};

/// Aggregate counters, snapshot via Fabric::metrics().
struct FabricMetrics {
  Megabytes shuffle_mb = 0.0;      ///< bytes delivered, incl. aborted partials
  Megabytes remote_read_mb = 0.0;
  Megabytes replication_mb = 0.0;
  std::size_t flows_completed = 0;
  std::size_t flows_aborted = 0;
  /// Flows killed by a network fault (dead link on the path or an injected
  /// fetch failure); disjoint from flows_aborted.
  std::size_t flows_failed = 0;
  /// Mean over completed flows of actual duration / solo duration, where the
  /// solo duration assumes the flow had every link to itself (>= 1).
  double mean_flow_slowdown = 1.0;
  /// Highest sum(rate)/capacity observed on any finite link at any
  /// reallocation instant, in [0, 1].
  double peak_link_utilization = 0.0;

  Megabytes total_mb() const {
    return shuffle_mb + remote_read_mb + replication_mb;
  }
};

/// The live flow table + max-min fair allocator.
class Fabric {
 public:
  Fabric(sim::Simulator& sim, Topology topology);

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;
  ~Fabric();

  /// Handler for fault-driven flow death; receives the flow id and the bytes
  /// that never arrived.  Unlike on_complete it fires from fail_flow (either
  /// an explicit fault injection or a dead link stranding the flow), so the
  /// owner can retry, fail over or give up.
  using FailureHandler = std::function<void(FlowId, Megabytes remaining_mb)>;

  /// Starts a flow of `mb` megabytes from src to dst, rate-capped at
  /// `cap_mbps` MB/s.  `on_complete` fires (with the flow's id) once the last
  /// byte arrives; it may start further flows.  src must differ from dst and
  /// mb must be positive — loopback "transfers" are free and should not
  /// enter the fabric.  `on_failed`, if set, fires instead of `on_complete`
  /// when the flow is killed by a network fault.
  FlowId start_flow(NodeId src, NodeId dst, Megabytes mb, double cap_mbps,
                    TransferClass cls, std::function<void(FlowId)> on_complete,
                    FailureHandler on_failed = nullptr);

  /// Kills an in-flight flow without firing its callback; a no-op if the
  /// flow already completed or was aborted.
  void abort_flow(FlowId id);

  /// Kills an in-flight flow *as a network fault*: the observer sees an
  /// abort, flows_failed increments, and the flow's failure handler (if any)
  /// fires with the undelivered bytes.  A no-op for unknown ids.  Called
  /// internally when a dead link strands a flow, and externally by the
  /// fetch-failure injection path.
  void fail_flow(FlowId id);

  // --- degraded link state ---------------------------------------------------
  // Each directed link carries a capacity factor: 1 = healthy, (0, 1) =
  // degraded (partial capacity), 0 = down.  Changing a factor re-rates every
  // flow event-deterministically; flows whose path crosses a down link are
  // failed (they can make no progress).  Note an unlimited link stays
  // unlimited under any positive factor — only 0 can take it down.

  /// Sets one directed link's capacity factor (in [0, 1]).
  void set_link_factor(LinkId link, double factor);
  /// Sets the factor of a node's access links (tx and rx together).
  void set_node_link_factor(NodeId node, double factor);
  /// Sets the factor of a rack's trunk links (up and down together);
  /// factor 0 partitions the rack from the rest of the fabric.
  void set_trunk_factor(std::size_t rack, double factor);

  double link_factor(LinkId link) const;
  /// min(tx factor, rx factor) for the node's access links.
  double node_link_factor(NodeId node) const;
  /// min(up factor, down factor) for the rack's trunk.
  double trunk_factor(std::size_t rack) const;
  /// Capacity after applying the factor; 0 when the link is down.
  double effective_capacity_mbps(LinkId link) const;
  /// True iff any link is currently degraded or down.
  bool degraded() const;
  /// True iff every link on the src->dst path is up (factor > 0).  Loopback
  /// is always reachable.  The scheduler's degraded-state query.
  bool reachable(NodeId src, NodeId dst) const;

  bool active(FlowId id) const { return flows_.contains(id); }
  std::size_t active_flows() const { return flows_.size(); }

  // Introspection for the JobTracker's crash handling and for tests.
  NodeId flow_src(FlowId id) const;
  NodeId flow_dst(FlowId id) const;
  TransferClass flow_class(FlowId id) const;
  double flow_cap_mbps(FlowId id) const;
  /// Current allocated rate (MB/s); advances are lazy, so this is the rate
  /// since the last reallocation.
  double flow_rate_mbps(FlowId id) const;
  /// Bytes still to deliver as of `sim.now()`.
  Megabytes flow_remaining_mb(FlowId id) const;
  /// Ids of active flows with src or dst on `node`, ascending (deterministic).
  std::vector<FlowId> flows_touching(NodeId node) const;

  const Topology& topology() const { return topo_; }
  FabricMetrics metrics() const;

  /// Attaches (or, with nullptr, detaches) a flow-lifecycle observer.  At
  /// most one; it must outlive the fabric or be detached first.
  void set_observer(FabricObserver* observer) { observer_ = observer; }

 private:
  struct Flow {
    NodeId src = 0;
    NodeId dst = 0;
    std::vector<LinkId> path;       // every link crossed (faults can make
                                    // any of them binding later)
    Megabytes total = 0.0;
    Megabytes sent = 0.0;
    double cap_mbps = 0.0;
    double rate_mbps = 0.0;         // current max-min share
    double solo_mbps = 0.0;         // rate on an idle network
    Seconds started = 0.0;
    TransferClass cls;
    sim::EventId completion_event = 0;  // completion or stranded-fail event
    std::function<void(FlowId)> on_complete;
    FailureHandler on_failed;
  };

  /// Credits every flow with rate * elapsed bytes since the last call.
  void advance_all();
  /// Water-filling over the current flow set + completion rescheduling.
  void reallocate();
  void finish_flow(FlowId id);
  void account_bytes(TransferClass cls, Megabytes mb);
  /// True iff this link can constrain flow rates right now.
  bool binds(LinkId link) const;
  bool link_down(LinkId link) const;

  sim::Simulator& sim_;
  Topology topo_;
  // std::map: deterministic iteration order (flows allocate and complete in
  // id order at equal timestamps) regardless of hash seeds.
  std::map<FlowId, Flow> flows_;
  FlowId next_id_ = 1;
  Seconds last_advance_ = 0.0;
  FabricObserver* observer_ = nullptr;

  // per-link capacity factors; 1 everywhere on a healthy fabric
  std::vector<double> link_factor_;

  // metrics accumulators
  Megabytes class_mb_[3] = {0.0, 0.0, 0.0};
  std::size_t completed_ = 0;
  std::size_t aborted_ = 0;
  std::size_t failed_ = 0;
  double slowdown_sum_ = 0.0;
  double peak_utilization_ = 0.0;

  // scratch buffers reused across reallocations
  std::vector<double> link_load_;
  std::vector<std::size_t> link_active_;
};

}  // namespace eant::net
