// Contention-aware flow model over a Topology.
//
// Every in-flight transfer is a fluid flow with a fixed path, a per-flow rate
// cap (the application-level bandwidth it could use on an idle network — for
// shuffle/remote-read flows this is the legacy JobTrackerConfig scalar, which
// makes the flat infinite-capacity topology reproduce the old model exactly)
// and a progressive-filling max-min fair share of every link it crosses.
//
// The model is purely event-driven: rates only change when a flow starts,
// finishes or aborts.  At each such instant the fabric advances all flows'
// transferred bytes at their previous rates, re-runs the water-filling
// allocation, and reschedules each flow's completion event in the Simulator.
// There is no per-tick polling.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/units.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace eant::net {

/// Why bytes are moving; used to attribute traffic and contention per class.
enum class TransferClass {
  kShuffle,      ///< reduce fetching map output partitions
  kRemoteRead,   ///< non-local map reading its split from a replica holder
  kReplication,  ///< HDFS pipeline writing job output replicas
};

std::string transfer_class_name(TransferClass cls);

/// Identifies an in-flight flow; never reused within a Fabric.
using FlowId = std::uint64_t;

/// Passive observer of flow lifecycle (the audit layer's byte-conservation
/// tap).  Callbacks fire synchronously inside start/finish/abort and must
/// not mutate the fabric.
class FabricObserver {
 public:
  virtual ~FabricObserver() = default;
  virtual void on_flow_started(FlowId id, TransferClass cls,
                               Megabytes total_mb) = 0;
  /// `delivered_mb` is the bytes credited to the flow when its completion
  /// event fired (before the fabric tops up the float residue).
  virtual void on_flow_finished(FlowId id, Megabytes requested_mb,
                                Megabytes delivered_mb) = 0;
  virtual void on_flow_aborted(FlowId id) = 0;
};

/// Aggregate counters, snapshot via Fabric::metrics().
struct FabricMetrics {
  Megabytes shuffle_mb = 0.0;      ///< bytes delivered, incl. aborted partials
  Megabytes remote_read_mb = 0.0;
  Megabytes replication_mb = 0.0;
  std::size_t flows_completed = 0;
  std::size_t flows_aborted = 0;
  /// Mean over completed flows of actual duration / solo duration, where the
  /// solo duration assumes the flow had every link to itself (>= 1).
  double mean_flow_slowdown = 1.0;
  /// Highest sum(rate)/capacity observed on any finite link at any
  /// reallocation instant, in [0, 1].
  double peak_link_utilization = 0.0;

  Megabytes total_mb() const {
    return shuffle_mb + remote_read_mb + replication_mb;
  }
};

/// The live flow table + max-min fair allocator.
class Fabric {
 public:
  Fabric(sim::Simulator& sim, Topology topology);

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;
  ~Fabric();

  /// Starts a flow of `mb` megabytes from src to dst, rate-capped at
  /// `cap_mbps` MB/s.  `on_complete` fires (with the flow's id) once the last
  /// byte arrives; it may start further flows.  src must differ from dst and
  /// mb must be positive — loopback "transfers" are free and should not
  /// enter the fabric.
  FlowId start_flow(NodeId src, NodeId dst, Megabytes mb, double cap_mbps,
                    TransferClass cls, std::function<void(FlowId)> on_complete);

  /// Kills an in-flight flow without firing its callback; a no-op if the
  /// flow already completed or was aborted.
  void abort_flow(FlowId id);

  bool active(FlowId id) const { return flows_.contains(id); }
  std::size_t active_flows() const { return flows_.size(); }

  // Introspection for the JobTracker's crash handling and for tests.
  NodeId flow_src(FlowId id) const;
  NodeId flow_dst(FlowId id) const;
  TransferClass flow_class(FlowId id) const;
  double flow_cap_mbps(FlowId id) const;
  /// Current allocated rate (MB/s); advances are lazy, so this is the rate
  /// since the last reallocation.
  double flow_rate_mbps(FlowId id) const;
  /// Bytes still to deliver as of `sim.now()`.
  Megabytes flow_remaining_mb(FlowId id) const;
  /// Ids of active flows with src or dst on `node`, ascending (deterministic).
  std::vector<FlowId> flows_touching(NodeId node) const;

  const Topology& topology() const { return topo_; }
  FabricMetrics metrics() const;

  /// Attaches (or, with nullptr, detaches) a flow-lifecycle observer.  At
  /// most one; it must outlive the fabric or be detached first.
  void set_observer(FabricObserver* observer) { observer_ = observer; }

 private:
  struct Flow {
    NodeId src = 0;
    NodeId dst = 0;
    std::vector<LinkId> path;       // finite links only
    Megabytes total = 0.0;
    Megabytes sent = 0.0;
    double cap_mbps = 0.0;
    double rate_mbps = 0.0;         // current max-min share
    double solo_mbps = 0.0;         // rate on an idle network
    Seconds started = 0.0;
    TransferClass cls;
    sim::EventId completion_event = 0;
    std::function<void(FlowId)> on_complete;
  };

  /// Credits every flow with rate * elapsed bytes since the last call.
  void advance_all();
  /// Water-filling over the current flow set + completion rescheduling.
  void reallocate();
  void finish_flow(FlowId id);
  void account_bytes(TransferClass cls, Megabytes mb);

  sim::Simulator& sim_;
  Topology topo_;
  // std::map: deterministic iteration order (flows allocate and complete in
  // id order at equal timestamps) regardless of hash seeds.
  std::map<FlowId, Flow> flows_;
  FlowId next_id_ = 1;
  Seconds last_advance_ = 0.0;
  FabricObserver* observer_ = nullptr;

  // metrics accumulators
  Megabytes class_mb_[3] = {0.0, 0.0, 0.0};
  std::size_t completed_ = 0;
  std::size_t aborted_ = 0;
  double slowdown_sum_ = 0.0;
  double peak_utilization_ = 0.0;

  // scratch buffers reused across reallocations
  std::vector<double> link_load_;
  std::vector<std::size_t> link_active_;
};

}  // namespace eant::net
