// Minimal HDFS model: files are split into 64 MB blocks, each replicated on
// `replication` distinct datanodes.  Schedulers query block locations to make
// locality-aware assignments (the paper's Fig. 6 and Eq. 7's locality branch);
// map tasks whose split is not local pay a remote-read cost in the MapReduce
// engine (a fabric flow when a topology is configured, a scalar otherwise).
//
// When the NameNode knows a rack assignment it applies Hadoop's default
// BlockPlacementPolicy: first replica on a node in the writer's rack, second
// replica off-rack, third in the second replica's rack — one rack failure
// never loses a block, yet two thirds of replicas share a rack to keep write
// traffic off the core.  Locality queries then answer at three levels
// (node-local / rack-local / off-rack) instead of a boolean.

#pragma once

#include <cstdint>
#include <vector>

#include "cluster/machine.h"
#include "common/locality.h"
#include "common/rng.h"
#include "common/units.h"

namespace eant::hdfs {

/// Identifies an HDFS block.
using BlockId = std::uint64_t;

/// Hadoop's default dfs.replication.
inline constexpr int kDefaultReplication = 3;

/// Placement-balance summary (see locality_stats()).
struct LocalityStats {
  std::vector<std::size_t> blocks_per_node;    ///< replicas hosted per node
  std::vector<std::size_t> replicas_per_rack;  ///< replicas hosted per rack
  std::size_t min_per_node = 0;
  std::size_t max_per_node = 0;
  double mean_per_node = 0.0;

  /// max - min replica count across nodes; the balance-drift metric.
  std::size_t node_spread() const { return max_per_node - min_per_node; }
};

/// Block placement and location service (the NameNode role).
class NameNode {
 public:
  /// `num_datanodes` is the number of machines storing blocks.  `racks`
  /// optionally maps each datanode to its rack id (empty = one flat rack);
  /// with more than one rack the Hadoop rack-aware policy above applies.
  /// Candidate nodes are chosen by power-of-two-choices on current load, so
  /// placement stays balanced instead of drifting like the old
  /// uniform-random sampling did.  The NameNode owns its own RNG stream, so
  /// file-creation order is the only source of placement variation.
  NameNode(Rng rng, std::size_t num_datanodes,
           int replication = kDefaultReplication,
           std::vector<std::size_t> racks = {});

  /// Allocates blocks for a file of the given size (last block may be
  /// short); returns the block ids in file order.
  std::vector<BlockId> create_file(Megabytes size,
                                   Megabytes block_size = kHdfsBlockMb);

  /// Datanodes holding a replica of the block.
  const std::vector<cluster::MachineId>& locations(BlockId id) const;

  /// True iff the machine holds a replica of the block.
  bool is_local(BlockId id, cluster::MachineId machine) const;

  /// Three-level locality of the block relative to the machine.
  Locality locality(BlockId id, cluster::MachineId machine) const;

  /// Size of the block in megabytes.
  Megabytes block_size(BlockId id) const;

  /// Number of blocks hosted per datanode (placement-balance metric).
  const std::vector<std::size_t>& blocks_per_node() const {
    return per_node_counts_;
  }

  /// Replica spread per rack and per node, for balance assertions and the
  /// topology benches.
  LocalityStats locality_stats() const;

  std::size_t num_blocks() const { return blocks_.size(); }
  int replication() const { return replication_; }
  std::size_t num_datanodes() const { return num_datanodes_; }
  std::size_t num_racks() const { return num_racks_; }
  std::size_t rack_of(cluster::MachineId machine) const;

 private:
  struct BlockInfo {
    Megabytes size;
    std::vector<cluster::MachineId> locations;
  };

  /// Least-loaded of two random candidates from `pool` (power of two
  /// choices); removes and returns it.  pool must be non-empty.
  cluster::MachineId take_balanced(std::vector<cluster::MachineId>& pool);

  std::vector<cluster::MachineId> place_flat();
  std::vector<cluster::MachineId> place_rack_aware();

  Rng rng_;
  std::size_t num_datanodes_;
  int replication_;
  std::vector<std::size_t> racks_;  ///< rack id per datanode
  std::size_t num_racks_ = 1;
  std::vector<BlockInfo> blocks_;
  std::vector<std::size_t> per_node_counts_;
  std::vector<std::size_t> per_rack_counts_;
};

}  // namespace eant::hdfs
