// Minimal HDFS model: files are split into 64 MB blocks, each replicated on
// `replication` distinct datanodes.  Schedulers query block locations to make
// locality-aware assignments (the paper's Fig. 6 and Eq. 7's locality branch);
// map tasks whose split is not local pay a remote-read penalty in the
// MapReduce engine.

#pragma once

#include <cstdint>
#include <vector>

#include "cluster/machine.h"
#include "common/rng.h"
#include "common/units.h"

namespace eant::hdfs {

/// Identifies an HDFS block.
using BlockId = std::uint64_t;

/// Block placement and location service (the NameNode role).
class NameNode {
 public:
  /// `num_datanodes` is the number of machines storing blocks; placement is
  /// uniform-random over distinct nodes, like default HDFS with one rack.
  /// The NameNode owns its own RNG stream, so file-creation order is the
  /// only source of placement variation.
  NameNode(Rng rng, std::size_t num_datanodes, int replication = 3);

  /// Allocates blocks for a file of the given size (last block may be
  /// short); returns the block ids in file order.
  std::vector<BlockId> create_file(Megabytes size,
                                   Megabytes block_size = kHdfsBlockMb);

  /// Datanodes holding a replica of the block.
  const std::vector<cluster::MachineId>& locations(BlockId id) const;

  /// True iff the machine holds a replica of the block.
  bool is_local(BlockId id, cluster::MachineId machine) const;

  /// Size of the block in megabytes.
  Megabytes block_size(BlockId id) const;

  /// Number of blocks hosted per datanode (placement-balance metric).
  const std::vector<std::size_t>& blocks_per_node() const {
    return per_node_counts_;
  }

  std::size_t num_blocks() const { return blocks_.size(); }
  int replication() const { return replication_; }
  std::size_t num_datanodes() const { return num_datanodes_; }

 private:
  struct BlockInfo {
    Megabytes size;
    std::vector<cluster::MachineId> locations;
  };

  Rng rng_;
  std::size_t num_datanodes_;
  int replication_;
  std::vector<BlockInfo> blocks_;
  std::vector<std::size_t> per_node_counts_;
};

}  // namespace eant::hdfs
