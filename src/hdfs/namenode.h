// Minimal HDFS model: files are split into 64 MB blocks, each replicated on
// `replication` distinct datanodes.  Schedulers query block locations to make
// locality-aware assignments (the paper's Fig. 6 and Eq. 7's locality branch);
// map tasks whose split is not local pay a remote-read cost in the MapReduce
// engine (a fabric flow when a topology is configured, a scalar otherwise).
//
// When the NameNode knows a rack assignment it applies Hadoop's default
// BlockPlacementPolicy: first replica on a node in the writer's rack, second
// replica off-rack, third in the second replica's rack — one rack failure
// never loses a block, yet two thirds of replicas share a rack to keep write
// traffic off the core.  Locality queries then answer at three levels
// (node-local / rack-local / off-rack) instead of a boolean.

// Degraded mode: mark_datanode_dead() drops a dead node's replicas, records
// blocks whose last replica vanished as lost (data loss is never silent) and
// queues the rest for prioritized re-replication — fewest-live-replicas
// first, rack-aware re-placement, one work item per block at a time.  The
// JobTracker drains next_rereplication() into real fabric flows and confirms
// with add_replica() / requeue_rereplication().  Placement of *new* files
// skips dead datanodes.  Re-replication targets come from a dedicated forked
// RNG stream, so degraded-mode traffic never perturbs file-creation draws.
//
// Data integrity: every replica carries an implicit per-block checksum (real
// HDFS stores CRC32C per 512-byte chunk in a .meta sidecar).  The corrupt_
// map records *physical disk truth* — which stored replicas have silently
// rotted — which the NameNode metadata does not know until a checksummed
// read or the background scrubber *confirms* the damage.  confirm_corrupt()
// is that detection point: it drops the replica from the block map (feeding
// the normal under-replication queue, or the loss record when it was the
// last one) while retaining the physical marker, so a control-plane snapshot
// restore can never silently resurrect a rotten replica as clean.
// Re-replication refuses corrupt source replicas (the copy would just
// propagate bad bytes); a fresh copy placed by add_replica() clears the
// marker for its target.  Corruption never touches the placement or
// re-replication RNG streams.

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "cluster/machine.h"
#include "common/locality.h"
#include "common/rng.h"
#include "common/units.h"

namespace eant::hdfs {

/// Identifies an HDFS block.
using BlockId = std::uint64_t;

/// Hadoop's default dfs.replication.
inline constexpr int kDefaultReplication = 3;

/// Placement-balance summary (see locality_stats()).
struct LocalityStats {
  std::vector<std::size_t> blocks_per_node;    ///< replicas hosted per node
  std::vector<std::size_t> replicas_per_rack;  ///< replicas hosted per rack
  std::size_t min_per_node = 0;
  std::size_t max_per_node = 0;
  double mean_per_node = 0.0;

  /// max - min replica count across nodes; the balance-drift metric.
  std::size_t node_spread() const { return max_per_node - min_per_node; }
};

/// Block placement and location service (the NameNode role).
class NameNode {
 public:
  /// `num_datanodes` is the number of machines storing blocks.  `racks`
  /// optionally maps each datanode to its rack id (empty = one flat rack);
  /// with more than one rack the Hadoop rack-aware policy above applies.
  /// Candidate nodes are chosen by power-of-two-choices on current load, so
  /// placement stays balanced instead of drifting like the old
  /// uniform-random sampling did.  The NameNode owns its own RNG stream, so
  /// file-creation order is the only source of placement variation.
  NameNode(Rng rng, std::size_t num_datanodes,
           int replication = kDefaultReplication,
           std::vector<std::size_t> racks = {});

  /// Allocates blocks for a file of the given size (last block may be
  /// short); returns the block ids in file order.
  std::vector<BlockId> create_file(Megabytes size,
                                   Megabytes block_size = kHdfsBlockMb);

  /// Datanodes holding a replica of the block.
  const std::vector<cluster::MachineId>& locations(BlockId id) const;

  /// True iff the machine holds a replica of the block.
  bool is_local(BlockId id, cluster::MachineId machine) const;

  /// Three-level locality of the block relative to the machine.
  Locality locality(BlockId id, cluster::MachineId machine) const;

  /// Size of the block in megabytes.
  Megabytes block_size(BlockId id) const;

  /// Number of blocks hosted per datanode (placement-balance metric).
  const std::vector<std::size_t>& blocks_per_node() const {
    return per_node_counts_;
  }

  /// Replica spread per rack and per node, for balance assertions and the
  /// topology benches.
  LocalityStats locality_stats() const;

  std::size_t num_blocks() const { return blocks_.size(); }
  int replication() const { return replication_; }
  std::size_t num_datanodes() const { return num_datanodes_; }
  std::size_t num_racks() const { return num_racks_; }
  std::size_t rack_of(cluster::MachineId machine) const;

  // --- degraded mode ---------------------------------------------------------

  /// One block-recovery work item: copy `block` from `source` (a surviving
  /// holder) to `target` (a live non-holder).
  struct ReplicationWork {
    BlockId block = 0;
    cluster::MachineId source = 0;
    cluster::MachineId target = 0;
  };

  /// Drops every replica the dead node held.  Blocks left with no replica
  /// are recorded in lost_blocks(); the rest join the under-replication
  /// queue.  Idempotent while the node stays dead.
  void mark_datanode_dead(cluster::MachineId machine);

  /// Returns a rejoined node to placement eligibility.  Its disk is treated
  /// as wiped (Hadoop re-registers blocks, but our crash model already
  /// reverted them), so it returns as an empty re-replication target.
  void mark_datanode_alive(cluster::MachineId machine);

  bool datanode_alive(cluster::MachineId machine) const;

  /// Live replicas of the block (0 for a lost block).
  std::size_t live_replicas(BlockId id) const { return locations(id).size(); }

  /// True iff every replica of the block died before it could be recovered.
  bool block_lost(BlockId id) const;

  /// Blocks whose last replica died, in detection order — the permanent
  /// data-loss record.
  const std::vector<BlockId>& lost_blocks() const { return lost_blocks_; }

  /// Blocks currently queued for re-replication.
  std::size_t under_replicated_count() const {
    return under_replicated_.size();
  }

  /// True iff the block sits in the re-replication queue right now.
  bool queued_for_rereplication(BlockId id) const {
    return under_replicated_.count(id) > 0;
  }

  /// Highest-priority satisfiable work item (fewest live replicas first,
  /// block id as tie-break); rack-aware target choice restores the >= 2-rack
  /// spread when the surviving replicas collapsed into one rack.  The block
  /// leaves the queue — confirm with add_replica() on success or give it
  /// back with requeue_rereplication() on failure.  Empty when the queue is
  /// empty or no queued block has a live non-holder target right now.
  std::optional<ReplicationWork> next_rereplication();

  /// Registers a freshly copied replica on `node` and, if the block is still
  /// short, re-queues it for another round.
  void add_replica(BlockId id, cluster::MachineId node);

  /// Returns a block to the under-replication queue after a failed copy.
  void requeue_rereplication(BlockId id);

  /// True iff a live non-holder exists for the block (re-replication could
  /// make progress).
  bool rereplication_possible(BlockId id) const;

  /// True once any replica was ever dropped — the cheap gate for degraded
  /// code paths (stale-locality recomputation etc.).
  bool mutated() const { return mutated_; }

  // --- data integrity --------------------------------------------------------

  /// Silently rots the replica of `id` stored on `node` (physical damage;
  /// the NameNode metadata is *not* updated — detection happens at read or
  /// scrub time).  Returns true iff the strike marked a live, previously
  /// clean replica; strikes on non-holders or already-rotten replicas land
  /// on nothing and return false.
  bool corrupt_replica(BlockId id, cluster::MachineId node);

  /// Physical truth: is the replica of `id` on `node` rotten?
  bool replica_corrupt(BlockId id, cluster::MachineId node) const;

  /// True iff the block still has replicas and every one of them is rotten —
  /// a checksummed read cannot succeed anywhere.
  bool all_replicas_corrupt(BlockId id) const;

  /// Holders of `id` whose replica is clean, in placement order.
  std::vector<cluster::MachineId> clean_locations(BlockId id) const;

  /// Detection point: a checksummed read or scrub pass found the replica of
  /// `id` on `node` corrupt.  Drops it from the block map exactly like a
  /// dead-node replica drop (under-replication queue, or the loss record
  /// when it was the last replica) but *retains* the physical corruption
  /// marker, so a snapshot restore cannot resurrect the replica as clean.
  /// No-op if the node no longer holds the replica.
  void confirm_corrupt(BlockId id, cluster::MachineId node);

  /// Every block with a replica on `machine`, ascending block id — the
  /// deterministic strike surface for machine-level corruption events.
  std::vector<BlockId> blocks_on(cluster::MachineId machine) const;

  /// Number of (block, node) replicas currently marked physically corrupt
  /// and still present in the block map (latent, undetected damage).
  std::size_t latent_corrupt_replicas() const;

  // --- control-plane failover --------------------------------------------------

  /// Size and replica locations of one block.
  struct BlockInfo {
    Megabytes size;
    std::vector<cluster::MachineId> locations;
  };

  /// Full mutable state of the NameNode — the fsimage + edit-log analogue.
  /// The RNG streams and the immutable shape (datanode count, replication,
  /// racks) are not part of the snapshot: a restarted NameNode is the same
  /// process image resuming from its persisted namespace.  The corrupt_
  /// replica markers are not part of it either — they are physical disk
  /// truth, not NameNode metadata, and survive a failover untouched.
  struct Snapshot {
    std::vector<BlockInfo> blocks;
    std::vector<std::size_t> per_node_counts;
    std::vector<std::size_t> per_rack_counts;
    std::vector<bool> alive;
    std::set<BlockId> under_replicated;
    std::vector<BlockId> lost_blocks;
    bool mutated = false;
  };

  /// Captures the block map, liveness view, under-replication queue and
  /// loss record (the periodic fsimage checkpoint).
  Snapshot snapshot() const;

  /// Restores a snapshot taken from this NameNode (shapes must match).
  void restore(const Snapshot& snap);

  /// Recomputes the under-replication queue from the block map and the
  /// current liveness view — the failover recovery step after replaying
  /// buffered datanode death/rejoin marks: every short-but-live block is
  /// re-queued, fully replicated blocks leave the queue, and the append-only
  /// loss record is left untouched (block locations themselves are ground
  /// truth, rebuilt from datanode block reports in real HDFS).
  void rebuild_under_replication();

 private:
  /// Least-loaded of two random candidates from `pool` (power of two
  /// choices) using `rng`; removes and returns it.  pool must be non-empty.
  cluster::MachineId take_balanced_with(Rng& rng,
                                        std::vector<cluster::MachineId>& pool);
  /// take_balanced_with on the file-creation stream.
  cluster::MachineId take_balanced(std::vector<cluster::MachineId>& pool);

  /// Every live datanode, ascending (the placement candidate pool).
  std::vector<cluster::MachineId> alive_pool() const;

  std::vector<cluster::MachineId> place_flat();
  std::vector<cluster::MachineId> place_rack_aware();

  /// Rack-aware target for re-replicating `id`, or nothing if no live
  /// non-holder exists.
  std::optional<cluster::MachineId> pick_rereplication_target(BlockId id);

  void drop_replica(BlockId id, cluster::MachineId node);

  Rng rng_;
  Rng rerep_rng_;  ///< dedicated stream for re-replication target draws
  std::size_t num_datanodes_;
  int replication_;
  std::vector<std::size_t> racks_;  ///< rack id per datanode
  std::size_t num_racks_ = 1;
  std::vector<BlockInfo> blocks_;
  std::vector<std::size_t> per_node_counts_;
  std::vector<std::size_t> per_rack_counts_;
  std::vector<bool> alive_;
  // std::set: next_rereplication scans in block-id order (deterministic).
  std::set<BlockId> under_replicated_;
  std::vector<BlockId> lost_blocks_;
  // Physical disk truth: silently rotten replicas, by block.  Ordered
  // containers keep every iteration deterministic.  Not part of Snapshot
  // (see above); cleared per target only when add_replica() lands a fresh
  // copy there.
  std::map<BlockId, std::set<cluster::MachineId>> corrupt_;
  bool mutated_ = false;
};

}  // namespace eant::hdfs
