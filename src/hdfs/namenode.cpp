#include "hdfs/namenode.h"

#include <algorithm>
#include <numeric>

namespace eant::hdfs {

NameNode::NameNode(Rng rng, std::size_t num_datanodes, int replication,
                   std::vector<std::size_t> racks)
    : rng_(rng),
      rerep_rng_(rng.fork(0x5e)),
      num_datanodes_(num_datanodes),
      replication_(replication),
      racks_(std::move(racks)),
      per_node_counts_(num_datanodes, 0),
      alive_(num_datanodes, true) {
  EANT_CHECK(num_datanodes >= 1, "need at least one datanode");
  EANT_CHECK(replication >= 1, "replication factor must be >= 1");
  // Like real HDFS, degrade gracefully when the cluster is smaller than the
  // requested replication factor.
  replication_ = static_cast<int>(
      std::min<std::size_t>(num_datanodes, static_cast<std::size_t>(replication)));

  if (racks_.empty()) racks_.assign(num_datanodes_, 0);
  EANT_CHECK(racks_.size() == num_datanodes_,
             "rack assignment must cover every datanode");
  num_racks_ = 1 + *std::max_element(racks_.begin(), racks_.end());
  per_rack_counts_.assign(num_racks_, 0);
}

cluster::MachineId NameNode::take_balanced_with(
    Rng& rng, std::vector<cluster::MachineId>& pool) {
  EANT_CHECK(!pool.empty(), "no placement candidates left");
  const auto draw = [&] {
    return static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(pool.size()) - 1));
  };
  std::size_t best = draw();
  const std::size_t other = draw();
  // Power of two choices: the emptier of two random candidates.  This keeps
  // the per-node counts within a tight band where plain uniform sampling
  // drifts O(sqrt(n)) apart.
  if (per_node_counts_[pool[other]] < per_node_counts_[pool[best]])
    best = other;
  const cluster::MachineId node = pool[best];
  pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(best));
  return node;
}

cluster::MachineId NameNode::take_balanced(
    std::vector<cluster::MachineId>& pool) {
  return take_balanced_with(rng_, pool);
}

std::vector<cluster::MachineId> NameNode::alive_pool() const {
  std::vector<cluster::MachineId> pool;
  pool.reserve(num_datanodes_);
  for (cluster::MachineId n = 0; n < num_datanodes_; ++n)
    if (alive_[n]) pool.push_back(n);
  return pool;
}

std::vector<cluster::MachineId> NameNode::place_flat() {
  std::vector<cluster::MachineId> pool = alive_pool();
  EANT_CHECK(!pool.empty(), "no live datanode to place a block on");
  std::vector<cluster::MachineId> nodes;
  const std::size_t want = std::min<std::size_t>(
      static_cast<std::size_t>(replication_), pool.size());
  nodes.reserve(want);
  for (std::size_t r = 0; r < want; ++r) nodes.push_back(take_balanced(pool));
  return nodes;
}

std::vector<cluster::MachineId> NameNode::place_rack_aware() {
  std::vector<cluster::MachineId> nodes;
  nodes.reserve(static_cast<std::size_t>(replication_));

  // Replica 1: anywhere (the "writer's node" — writers are uniformly spread
  // here, so a balanced pick over the whole fleet models it).
  std::vector<cluster::MachineId> pool = alive_pool();
  EANT_CHECK(!pool.empty(), "no live datanode to place a block on");
  nodes.push_back(take_balanced(pool));
  const std::size_t first_rack = racks_[nodes[0]];

  if (replication_ >= 2 && !pool.empty()) {
    // Replica 2: any node outside the first replica's rack.
    std::vector<cluster::MachineId> off_rack;
    for (cluster::MachineId n : pool)
      if (racks_[n] != first_rack) off_rack.push_back(n);
    if (!off_rack.empty()) {
      nodes.push_back(take_balanced(off_rack));
    } else {
      nodes.push_back(take_balanced(pool));  // degenerate: one populated rack
    }
  }

  if (replication_ >= 3 && nodes.size() >= 2) {
    // Replica 3: same rack as replica 2 if possible, else anywhere distinct.
    const std::size_t second_rack = racks_[nodes[1]];
    std::vector<cluster::MachineId> same_rack;
    std::vector<cluster::MachineId> rest;
    for (cluster::MachineId n : pool) {
      if (n == nodes[1]) continue;
      (racks_[n] == second_rack ? same_rack : rest).push_back(n);
    }
    if (!same_rack.empty()) {
      nodes.push_back(take_balanced(same_rack));
    } else if (!rest.empty()) {
      nodes.push_back(take_balanced(rest));
    }
  }

  // Replicas beyond 3: anywhere distinct (Hadoop's policy is "random").
  if (replication_ > 3) {
    std::vector<cluster::MachineId> rest;
    for (cluster::MachineId n : pool)
      if (std::find(nodes.begin(), nodes.end(), n) == nodes.end())
        rest.push_back(n);
    for (int r = 3; r < replication_ && !rest.empty(); ++r)
      nodes.push_back(take_balanced(rest));
  }
  return nodes;
}

std::vector<BlockId> NameNode::create_file(Megabytes size,
                                           Megabytes block_size) {
  EANT_CHECK(size > 0.0, "file size must be positive");
  EANT_CHECK(block_size > 0.0, "block size must be positive");
  std::vector<BlockId> ids;
  Megabytes remaining = size;
  while (remaining > 0.0) {
    const Megabytes this_block = std::min(remaining, block_size);
    remaining -= this_block;

    std::vector<cluster::MachineId> nodes =
        num_racks_ > 1 ? place_rack_aware() : place_flat();
    for (cluster::MachineId n : nodes) {
      ++per_node_counts_[n];
      ++per_rack_counts_[racks_[n]];
    }

    const BlockId id = blocks_.size();
    ids.push_back(id);
    const bool short_placed =
        nodes.size() < static_cast<std::size_t>(replication_);
    blocks_.push_back(BlockInfo{this_block, std::move(nodes)});
    // Created short (dead datanodes shrank the candidate pool): queue for
    // re-replication once capacity returns.
    if (short_placed) under_replicated_.insert(id);
  }
  return ids;
}

// --- degraded mode -----------------------------------------------------------

void NameNode::mark_datanode_dead(cluster::MachineId machine) {
  EANT_CHECK(machine < num_datanodes_, "unknown datanode");
  if (!alive_[machine]) return;
  alive_[machine] = false;
  mutated_ = true;
  for (BlockId id = 0; id < blocks_.size(); ++id) {
    drop_replica(id, machine);
  }
}

void NameNode::drop_replica(BlockId id, cluster::MachineId node) {
  BlockInfo& b = blocks_[id];
  auto it = std::find(b.locations.begin(), b.locations.end(), node);
  if (it == b.locations.end()) return;
  b.locations.erase(it);
  --per_node_counts_[node];
  --per_rack_counts_[racks_[node]];
  if (b.locations.empty()) {
    // Last replica gone: permanent data loss, recorded, never re-queued.
    under_replicated_.erase(id);
    lost_blocks_.push_back(id);
  } else if (b.locations.size() < static_cast<std::size_t>(replication_)) {
    under_replicated_.insert(id);
  }
}

void NameNode::mark_datanode_alive(cluster::MachineId machine) {
  EANT_CHECK(machine < num_datanodes_, "unknown datanode");
  alive_[machine] = true;
}

bool NameNode::datanode_alive(cluster::MachineId machine) const {
  EANT_CHECK(machine < num_datanodes_, "unknown datanode");
  return alive_[machine];
}

bool NameNode::block_lost(BlockId id) const {
  EANT_CHECK(id < blocks_.size(), "unknown block id");
  return blocks_[id].locations.empty();
}

std::optional<cluster::MachineId> NameNode::pick_rereplication_target(
    BlockId id) {
  const BlockInfo& b = blocks_[id];
  std::vector<cluster::MachineId> candidates;
  for (cluster::MachineId n = 0; n < num_datanodes_; ++n) {
    if (!alive_[n]) continue;
    if (std::find(b.locations.begin(), b.locations.end(), n) !=
        b.locations.end())
      continue;
    candidates.push_back(n);
  }
  if (candidates.empty()) return std::nullopt;
  // Rack-aware re-placement: if the survivors collapsed into a single rack,
  // prefer an off-rack target so one rack failure can no longer lose the
  // block (restores the invariant of the original placement policy).
  if (num_racks_ > 1 && !b.locations.empty()) {
    const std::size_t rack0 = racks_[b.locations.front()];
    bool single_rack = true;
    for (cluster::MachineId n : b.locations) {
      if (racks_[n] != rack0) {
        single_rack = false;
        break;
      }
    }
    if (single_rack) {
      std::vector<cluster::MachineId> off_rack;
      for (cluster::MachineId n : candidates)
        if (racks_[n] != rack0) off_rack.push_back(n);
      if (!off_rack.empty()) candidates = std::move(off_rack);
    }
  }
  return take_balanced_with(rerep_rng_, candidates);
}

std::optional<NameNode::ReplicationWork> NameNode::next_rereplication() {
  // Priority: fewest live replicas first (a one-replica block is one failure
  // away from data loss), block id as the deterministic tie-break (std::set
  // iteration order is ascending, stable_sort keeps it).
  std::vector<BlockId> queue(under_replicated_.begin(),
                             under_replicated_.end());
  std::stable_sort(queue.begin(), queue.end(), [&](BlockId a, BlockId b) {
    return blocks_[a].locations.size() < blocks_[b].locations.size();
  });
  for (BlockId id : queue) {
    if (blocks_[id].locations.empty()) continue;  // raced into loss
    // Never clone a rotten replica: the copy would checksum-fail at the
    // source (real HDFS verifies before streaming) and only propagate bad
    // bytes if it didn't.  No clean holder right now → the block stays
    // queued until a read or the scrubber confirms the rot away.
    const std::vector<cluster::MachineId> clean = clean_locations(id);
    if (clean.empty()) continue;
    const auto target = pick_rereplication_target(id);
    if (!target) continue;  // unsatisfiable right now; stays queued
    // Source: the clean holder nearest the target (rack-local preferred,
    // placement order as tie-break).
    cluster::MachineId source = clean.front();
    for (cluster::MachineId n : clean) {
      const bool n_rack_local = racks_[n] == racks_[*target];
      const bool s_rack_local = racks_[source] == racks_[*target];
      if (n_rack_local && !s_rack_local) source = n;
    }
    under_replicated_.erase(id);
    return ReplicationWork{id, source, *target};
  }
  return std::nullopt;
}

void NameNode::add_replica(BlockId id, cluster::MachineId node) {
  EANT_CHECK(id < blocks_.size(), "unknown block id");
  EANT_CHECK(node < num_datanodes_, "unknown datanode");
  BlockInfo& b = blocks_[id];
  EANT_CHECK(std::find(b.locations.begin(), b.locations.end(), node) ==
                 b.locations.end(),
             "node already holds a replica of the block");
  if (!alive_[node]) {
    // Target was declared dead while the copy ran; the bytes are gone.
    requeue_rereplication(id);
    return;
  }
  b.locations.push_back(node);
  ++per_node_counts_[node];
  ++per_rack_counts_[racks_[node]];
  // A freshly copied replica overwrites whatever rot the node's disk held
  // for this block — the new bytes checksum clean.
  if (auto it = corrupt_.find(id); it != corrupt_.end()) {
    it->second.erase(node);
    if (it->second.empty()) corrupt_.erase(it);
  }
  mutated_ = true;
  if (b.locations.size() < static_cast<std::size_t>(replication_)) {
    under_replicated_.insert(id);  // still short: another round
  } else {
    under_replicated_.erase(id);
  }
}

void NameNode::requeue_rereplication(BlockId id) {
  EANT_CHECK(id < blocks_.size(), "unknown block id");
  const BlockInfo& b = blocks_[id];
  if (b.locations.empty()) return;  // lost meanwhile; never re-queued
  if (b.locations.size() < static_cast<std::size_t>(replication_))
    under_replicated_.insert(id);
}

bool NameNode::rereplication_possible(BlockId id) const {
  EANT_CHECK(id < blocks_.size(), "unknown block id");
  const BlockInfo& b = blocks_[id];
  if (b.locations.empty()) return false;
  for (cluster::MachineId n = 0; n < num_datanodes_; ++n) {
    if (!alive_[n]) continue;
    if (std::find(b.locations.begin(), b.locations.end(), n) ==
        b.locations.end())
      return true;
  }
  return false;
}

// --- data integrity ----------------------------------------------------------

bool NameNode::corrupt_replica(BlockId id, cluster::MachineId node) {
  EANT_CHECK(id < blocks_.size(), "unknown block id");
  EANT_CHECK(node < num_datanodes_, "unknown datanode");
  const BlockInfo& b = blocks_[id];
  if (std::find(b.locations.begin(), b.locations.end(), node) ==
      b.locations.end()) {
    return false;  // no replica there any more: the strike lands on nothing
  }
  return corrupt_[id].insert(node).second;  // false: already rotten
}

bool NameNode::replica_corrupt(BlockId id, cluster::MachineId node) const {
  EANT_CHECK(id < blocks_.size(), "unknown block id");
  const auto it = corrupt_.find(id);
  return it != corrupt_.end() && it->second.count(node) > 0;
}

bool NameNode::all_replicas_corrupt(BlockId id) const {
  EANT_CHECK(id < blocks_.size(), "unknown block id");
  const BlockInfo& b = blocks_[id];
  if (b.locations.empty()) return false;  // lost, not corrupt
  for (cluster::MachineId n : b.locations) {
    if (!replica_corrupt(id, n)) return false;
  }
  return true;
}

std::vector<cluster::MachineId> NameNode::clean_locations(BlockId id) const {
  EANT_CHECK(id < blocks_.size(), "unknown block id");
  std::vector<cluster::MachineId> clean;
  for (cluster::MachineId n : blocks_[id].locations) {
    if (!replica_corrupt(id, n)) clean.push_back(n);
  }
  return clean;
}

void NameNode::confirm_corrupt(BlockId id, cluster::MachineId node) {
  EANT_CHECK(id < blocks_.size(), "unknown block id");
  EANT_CHECK(node < num_datanodes_, "unknown datanode");
  EANT_CHECK(replica_corrupt(id, node),
             "confirming a replica that is not corrupt");
  // Metadata-side drop: the block map forgets the replica (feeding the
  // under-replication queue or the loss record), while the physical marker
  // in corrupt_ stays — see the header comment on snapshot restore.
  mutated_ = true;
  drop_replica(id, node);
}

std::vector<BlockId> NameNode::blocks_on(cluster::MachineId machine) const {
  EANT_CHECK(machine < num_datanodes_, "unknown datanode");
  std::vector<BlockId> out;
  for (BlockId id = 0; id < blocks_.size(); ++id) {
    if (is_local(id, machine)) out.push_back(id);
  }
  return out;
}

std::size_t NameNode::latent_corrupt_replicas() const {
  std::size_t n = 0;
  for (const auto& [id, nodes] : corrupt_) {
    for (cluster::MachineId node : nodes) {
      const auto& locs = blocks_[id].locations;
      if (std::find(locs.begin(), locs.end(), node) != locs.end()) ++n;
    }
  }
  return n;
}

const std::vector<cluster::MachineId>& NameNode::locations(BlockId id) const {
  EANT_CHECK(id < blocks_.size(), "unknown block id");
  return blocks_[id].locations;
}

bool NameNode::is_local(BlockId id, cluster::MachineId machine) const {
  const auto& locs = locations(id);
  return std::find(locs.begin(), locs.end(), machine) != locs.end();
}

Locality NameNode::locality(BlockId id, cluster::MachineId machine) const {
  EANT_CHECK(machine < num_datanodes_, "unknown datanode");
  const auto& locs = locations(id);
  Locality best = Locality::kOffRack;
  for (cluster::MachineId n : locs) {
    if (n == machine) return Locality::kNodeLocal;
    if (racks_[n] == racks_[machine]) best = Locality::kRackLocal;
  }
  return best;
}

Megabytes NameNode::block_size(BlockId id) const {
  EANT_CHECK(id < blocks_.size(), "unknown block id");
  return blocks_[id].size;
}

LocalityStats NameNode::locality_stats() const {
  LocalityStats stats;
  stats.blocks_per_node = per_node_counts_;
  stats.replicas_per_rack = per_rack_counts_;
  const auto [lo, hi] =
      std::minmax_element(per_node_counts_.begin(), per_node_counts_.end());
  stats.min_per_node = *lo;
  stats.max_per_node = *hi;
  const auto total =
      std::accumulate(per_node_counts_.begin(), per_node_counts_.end(),
                      std::size_t{0});
  stats.mean_per_node =
      static_cast<double>(total) / static_cast<double>(num_datanodes_);
  return stats;
}

NameNode::Snapshot NameNode::snapshot() const {
  return Snapshot{blocks_,       per_node_counts_, per_rack_counts_,
                  alive_,        under_replicated_, lost_blocks_,
                  mutated_};
}

void NameNode::restore(const Snapshot& snap) {
  EANT_CHECK(snap.per_node_counts.size() == num_datanodes_ &&
                 snap.alive.size() == num_datanodes_ &&
                 snap.per_rack_counts.size() == num_racks_,
             "snapshot shape does not match this NameNode");
  blocks_ = snap.blocks;
  per_node_counts_ = snap.per_node_counts;
  per_rack_counts_ = snap.per_rack_counts;
  alive_ = snap.alive;
  under_replicated_ = snap.under_replicated;
  lost_blocks_ = snap.lost_blocks;
  mutated_ = snap.mutated;
}

void NameNode::rebuild_under_replication() {
  under_replicated_.clear();
  for (BlockId id = 0; id < blocks_.size(); ++id) {
    const BlockInfo& b = blocks_[id];
    if (b.locations.empty()) continue;  // lost: recorded, never re-queued
    if (b.locations.size() < static_cast<std::size_t>(replication_)) {
      under_replicated_.insert(id);
    }
  }
}

std::size_t NameNode::rack_of(cluster::MachineId machine) const {
  EANT_CHECK(machine < num_datanodes_, "unknown datanode");
  return racks_[machine];
}

}  // namespace eant::hdfs
