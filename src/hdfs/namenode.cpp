#include "hdfs/namenode.h"

#include <algorithm>
#include <numeric>

namespace eant::hdfs {

NameNode::NameNode(Rng rng, std::size_t num_datanodes, int replication,
                   std::vector<std::size_t> racks)
    : rng_(rng),
      num_datanodes_(num_datanodes),
      replication_(replication),
      racks_(std::move(racks)),
      per_node_counts_(num_datanodes, 0) {
  EANT_CHECK(num_datanodes >= 1, "need at least one datanode");
  EANT_CHECK(replication >= 1, "replication factor must be >= 1");
  // Like real HDFS, degrade gracefully when the cluster is smaller than the
  // requested replication factor.
  replication_ = static_cast<int>(
      std::min<std::size_t>(num_datanodes, static_cast<std::size_t>(replication)));

  if (racks_.empty()) racks_.assign(num_datanodes_, 0);
  EANT_CHECK(racks_.size() == num_datanodes_,
             "rack assignment must cover every datanode");
  num_racks_ = 1 + *std::max_element(racks_.begin(), racks_.end());
  per_rack_counts_.assign(num_racks_, 0);
}

cluster::MachineId NameNode::take_balanced(
    std::vector<cluster::MachineId>& pool) {
  EANT_CHECK(!pool.empty(), "no placement candidates left");
  const auto draw = [&] {
    return static_cast<std::size_t>(rng_.uniform_int(
        0, static_cast<std::int64_t>(pool.size()) - 1));
  };
  std::size_t best = draw();
  const std::size_t other = draw();
  // Power of two choices: the emptier of two random candidates.  This keeps
  // the per-node counts within a tight band where plain uniform sampling
  // drifts O(sqrt(n)) apart.
  if (per_node_counts_[pool[other]] < per_node_counts_[pool[best]])
    best = other;
  const cluster::MachineId node = pool[best];
  pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(best));
  return node;
}

std::vector<cluster::MachineId> NameNode::place_flat() {
  std::vector<cluster::MachineId> pool(num_datanodes_);
  std::iota(pool.begin(), pool.end(), 0);
  std::vector<cluster::MachineId> nodes;
  nodes.reserve(static_cast<std::size_t>(replication_));
  for (int r = 0; r < replication_; ++r) nodes.push_back(take_balanced(pool));
  return nodes;
}

std::vector<cluster::MachineId> NameNode::place_rack_aware() {
  std::vector<cluster::MachineId> nodes;
  nodes.reserve(static_cast<std::size_t>(replication_));

  // Replica 1: anywhere (the "writer's node" — writers are uniformly spread
  // here, so a balanced pick over the whole fleet models it).
  std::vector<cluster::MachineId> pool(num_datanodes_);
  std::iota(pool.begin(), pool.end(), 0);
  nodes.push_back(take_balanced(pool));
  const std::size_t first_rack = racks_[nodes[0]];

  if (replication_ >= 2) {
    // Replica 2: any node outside the first replica's rack.
    std::vector<cluster::MachineId> off_rack;
    for (cluster::MachineId n : pool)
      if (racks_[n] != first_rack) off_rack.push_back(n);
    if (!off_rack.empty()) {
      nodes.push_back(take_balanced(off_rack));
    } else {
      nodes.push_back(take_balanced(pool));  // degenerate: one populated rack
    }
  }

  if (replication_ >= 3) {
    // Replica 3: same rack as replica 2 if possible, else anywhere distinct.
    const std::size_t second_rack = racks_[nodes[1]];
    std::vector<cluster::MachineId> same_rack;
    std::vector<cluster::MachineId> rest;
    for (cluster::MachineId n : pool) {
      if (n == nodes[1]) continue;
      (racks_[n] == second_rack ? same_rack : rest).push_back(n);
    }
    if (!same_rack.empty()) {
      nodes.push_back(take_balanced(same_rack));
    } else {
      nodes.push_back(take_balanced(rest));
    }
  }

  // Replicas beyond 3: anywhere distinct (Hadoop's policy is "random").
  if (replication_ > 3) {
    std::vector<cluster::MachineId> rest;
    for (cluster::MachineId n : pool)
      if (std::find(nodes.begin(), nodes.end(), n) == nodes.end())
        rest.push_back(n);
    for (int r = 3; r < replication_; ++r) nodes.push_back(take_balanced(rest));
  }
  return nodes;
}

std::vector<BlockId> NameNode::create_file(Megabytes size,
                                           Megabytes block_size) {
  EANT_CHECK(size > 0.0, "file size must be positive");
  EANT_CHECK(block_size > 0.0, "block size must be positive");
  std::vector<BlockId> ids;
  Megabytes remaining = size;
  while (remaining > 0.0) {
    const Megabytes this_block = std::min(remaining, block_size);
    remaining -= this_block;

    std::vector<cluster::MachineId> nodes =
        num_racks_ > 1 ? place_rack_aware() : place_flat();
    for (cluster::MachineId n : nodes) {
      ++per_node_counts_[n];
      ++per_rack_counts_[racks_[n]];
    }

    ids.push_back(blocks_.size());
    blocks_.push_back(BlockInfo{this_block, std::move(nodes)});
  }
  return ids;
}

const std::vector<cluster::MachineId>& NameNode::locations(BlockId id) const {
  EANT_CHECK(id < blocks_.size(), "unknown block id");
  return blocks_[id].locations;
}

bool NameNode::is_local(BlockId id, cluster::MachineId machine) const {
  const auto& locs = locations(id);
  return std::find(locs.begin(), locs.end(), machine) != locs.end();
}

Locality NameNode::locality(BlockId id, cluster::MachineId machine) const {
  EANT_CHECK(machine < num_datanodes_, "unknown datanode");
  const auto& locs = locations(id);
  Locality best = Locality::kOffRack;
  for (cluster::MachineId n : locs) {
    if (n == machine) return Locality::kNodeLocal;
    if (racks_[n] == racks_[machine]) best = Locality::kRackLocal;
  }
  return best;
}

Megabytes NameNode::block_size(BlockId id) const {
  EANT_CHECK(id < blocks_.size(), "unknown block id");
  return blocks_[id].size;
}

LocalityStats NameNode::locality_stats() const {
  LocalityStats stats;
  stats.blocks_per_node = per_node_counts_;
  stats.replicas_per_rack = per_rack_counts_;
  const auto [lo, hi] =
      std::minmax_element(per_node_counts_.begin(), per_node_counts_.end());
  stats.min_per_node = *lo;
  stats.max_per_node = *hi;
  const auto total =
      std::accumulate(per_node_counts_.begin(), per_node_counts_.end(),
                      std::size_t{0});
  stats.mean_per_node =
      static_cast<double>(total) / static_cast<double>(num_datanodes_);
  return stats;
}

std::size_t NameNode::rack_of(cluster::MachineId machine) const {
  EANT_CHECK(machine < num_datanodes_, "unknown datanode");
  return racks_[machine];
}

}  // namespace eant::hdfs
