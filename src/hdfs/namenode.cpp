#include "hdfs/namenode.h"

#include <algorithm>

namespace eant::hdfs {

NameNode::NameNode(Rng rng, std::size_t num_datanodes, int replication)
    : rng_(rng),
      num_datanodes_(num_datanodes),
      replication_(replication),
      per_node_counts_(num_datanodes, 0) {
  EANT_CHECK(num_datanodes >= 1, "need at least one datanode");
  EANT_CHECK(replication >= 1, "replication factor must be >= 1");
  // Like real HDFS, degrade gracefully when the cluster is smaller than the
  // requested replication factor.
  replication_ = static_cast<int>(
      std::min<std::size_t>(num_datanodes, static_cast<std::size_t>(replication)));
}

std::vector<BlockId> NameNode::create_file(Megabytes size,
                                           Megabytes block_size) {
  EANT_CHECK(size > 0.0, "file size must be positive");
  EANT_CHECK(block_size > 0.0, "block size must be positive");
  std::vector<BlockId> ids;
  Megabytes remaining = size;
  while (remaining > 0.0) {
    const Megabytes this_block = std::min(remaining, block_size);
    remaining -= this_block;

    // Sample `replication_` distinct datanodes (partial Fisher-Yates over a
    // virtual identity permutation; cheap because replication is small).
    std::vector<cluster::MachineId> nodes;
    nodes.reserve(static_cast<std::size_t>(replication_));
    std::vector<cluster::MachineId> pool(num_datanodes_);
    for (std::size_t i = 0; i < num_datanodes_; ++i) pool[i] = i;
    for (int r = 0; r < replication_; ++r) {
      const auto pick = static_cast<std::size_t>(rng_.uniform_int(
          static_cast<std::int64_t>(r),
          static_cast<std::int64_t>(num_datanodes_) - 1));
      std::swap(pool[static_cast<std::size_t>(r)], pool[pick]);
      nodes.push_back(pool[static_cast<std::size_t>(r)]);
      ++per_node_counts_[pool[static_cast<std::size_t>(r)]];
    }

    ids.push_back(blocks_.size());
    blocks_.push_back(BlockInfo{this_block, std::move(nodes)});
  }
  return ids;
}

const std::vector<cluster::MachineId>& NameNode::locations(BlockId id) const {
  EANT_CHECK(id < blocks_.size(), "unknown block id");
  return blocks_[id].locations;
}

bool NameNode::is_local(BlockId id, cluster::MachineId machine) const {
  const auto& locs = locations(id);
  return std::find(locs.begin(), locs.end(), machine) != locs.end();
}

Megabytes NameNode::block_size(BlockId id) const {
  EANT_CHECK(id < blocks_.size(), "unknown block id");
  return blocks_[id].size;
}

}  // namespace eant::hdfs
