// Deterministic random number generation.
//
// Every stochastic component in the system (ACO sampling, noise injection,
// workload generation, HDFS placement) draws from an Rng that is seeded
// explicitly, so that every experiment in the paper reproduction is exactly
// replayable.  Rng also supports cheap forking: child streams derived from a
// parent seed plus a stream id, so adding a consumer never perturbs the draws
// seen by existing consumers.

#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "common/error.h"

namespace eant {

/// A seedable, forkable pseudo-random stream (mt19937_64 core).
class Rng {
 public:
  /// Creates a stream from an explicit seed.
  explicit Rng(std::uint64_t seed) : seed_(seed), engine_(mix(seed)) {}

  /// Derives an independent child stream; deterministic in (parent seed used
  /// at construction, stream_id).  The parent's own sequence is unaffected.
  Rng fork(std::uint64_t stream_id) const {
    return Rng(seed_ ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() { return unit_(engine_); }

  /// Uniform double in [lo, hi); requires lo <= hi.
  double uniform(double lo, double hi) {
    EANT_CHECK(lo <= hi, "uniform range must be ordered");
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    EANT_CHECK(lo <= hi, "uniform_int range must be ordered");
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Normal draw with the given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma) {
    EANT_CHECK(sigma >= 0.0, "sigma must be non-negative");
    if (sigma <= 0.0) return mean;
    return std::normal_distribution<double>(mean, sigma)(engine_);
  }

  /// Exponential draw with the given rate (rate > 0); mean is 1/rate.
  double exponential(double rate) {
    EANT_CHECK(rate > 0.0, "rate must be positive");
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Log-normal draw parameterised by the underlying normal's mu/sigma.
  double lognormal(double mu, double sigma) {
    EANT_CHECK(sigma >= 0.0, "sigma must be non-negative");
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  /// Bernoulli draw; requires p in [0, 1].
  bool bernoulli(double p) {
    EANT_CHECK(p >= 0.0 && p <= 1.0, "probability out of range");
    return uniform() < p;
  }

  /// Samples an index in [0, weights.size()) proportional to the weights.
  /// Weights must be non-negative with a positive sum.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Shuffles a vector in place (Fisher-Yates).
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  // splitmix64 finaliser: decorrelates adjacent user-provided seeds.
  static std::uint64_t mix(std::uint64_t seed) {
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::uint64_t seed_ = 0;
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

}  // namespace eant
