// Unit aliases used throughout the simulator.
//
// We deliberately use documented aliases of double rather than heavyweight
// strong types: every quantity crosses module boundaries constantly and the
// arithmetic (power x time = energy, size / bandwidth = time) is the whole
// point of the code.  The aliases plus the naming convention (suffix the
// variable with its unit when ambiguous) keep call sites readable.

#pragma once

namespace eant {

/// Simulated wall-clock time and durations, in seconds.
using Seconds = double;

/// Instantaneous electrical power, in watts.
using Watts = double;

/// Electrical energy, in joules (1 kJ = 1000 J as used in the paper's plots).
using Joules = double;

/// Data sizes, in megabytes (HDFS block granularity in the paper is 64 MB).
using Megabytes = double;

/// CPU utilisation as a fraction of the whole machine, in [0, 1].
using Utilization = double;

constexpr Seconds kSecondsPerMinute = 60.0;
constexpr Joules kJoulesPerKilojoule = 1000.0;
constexpr Megabytes kHdfsBlockMb = 64.0;

constexpr Seconds minutes(double m) { return m * kSecondsPerMinute; }
constexpr Joules kilojoules(double kj) { return kj * kJoulesPerKilojoule; }

}  // namespace eant
