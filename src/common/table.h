// ASCII table rendering for the benchmark harness.  Every bench binary
// prints the rows/series of the paper table or figure it reproduces; this
// keeps that output aligned and uniform.

#pragma once

#include <string>
#include <vector>

namespace eant {

/// A simple right-padded text table with a header row and a title.
class TextTable {
 public:
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  /// Sets the column headers; must be called before add_row.
  void set_header(std::vector<std::string> header);

  /// Appends a data row; must match the header width.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 3);

  /// Renders the table (title, rule, header, rows) as a string.
  std::string render() const;

  /// Renders to stdout.
  void print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace eant
