// Error handling utilities shared by every e-ant module.
//
// Following the project convention (exceptions signal failure to meet a
// contract), EANT_CHECK is used for precondition validation on public API
// boundaries and EANT_ASSERT for internal invariants.  Both throw; neither is
// compiled out, because the simulator is the test oracle for every
// experiment and silent invariant violations would invalidate results.

#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace eant {

/// Thrown when a caller violates a documented precondition of a public API.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant of the library is broken; indicates a
/// bug in e-ant itself rather than in calling code.
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void throw_precondition(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw PreconditionError(os.str());
}

[[noreturn]] inline void throw_invariant(const char* expr, const char* file,
                                         int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantError(os.str());
}

}  // namespace detail
}  // namespace eant

/// Validate a precondition on a public interface; throws PreconditionError.
#define EANT_CHECK(expr, msg)                                              \
  do {                                                                     \
    if (!(expr))                                                           \
      ::eant::detail::throw_precondition(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

/// Validate an internal invariant; throws InvariantError.
#define EANT_ASSERT(expr, msg)                                          \
  do {                                                                  \
    if (!(expr))                                                        \
      ::eant::detail::throw_invariant(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
