#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace eant {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double nrmse(const std::vector<double>& measured,
             const std::vector<double>& estimated) {
  EANT_CHECK(!measured.empty(), "nrmse requires samples");
  EANT_CHECK(measured.size() == estimated.size(),
             "nrmse requires equal-length series");
  double sq = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < measured.size(); ++i) {
    const double d = measured[i] - estimated[i];
    sq += d * d;
    total += measured[i];
  }
  const double mean = total / static_cast<double>(measured.size());
  EANT_CHECK(std::abs(mean) > 0.0, "nrmse requires a non-zero measured mean");
  return std::sqrt(sq / static_cast<double>(measured.size())) / std::abs(mean);
}

double percentile(std::vector<double> values, double p) {
  EANT_CHECK(!values.empty(), "percentile requires samples");
  EANT_CHECK(p >= 0.0 && p <= 100.0, "percentile p must be in [0,100]");
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

LineFit least_squares(const std::vector<double>& x,
                      const std::vector<double>& y) {
  EANT_CHECK(x.size() == y.size(), "least_squares requires paired samples");
  EANT_CHECK(x.size() >= 2, "least_squares requires at least two points");
  const auto n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  EANT_CHECK(std::abs(denom) > 0.0, "least_squares requires non-constant x");
  LineFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  if (ss_tot <= 0.0) {
    fit.r_squared = 1.0;  // constant y fitted exactly by the intercept
  } else {
    double ss_res = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double e = y[i] - (fit.intercept + fit.slope * x[i]);
      ss_res += e * e;
    }
    fit.r_squared = 1.0 - ss_res / ss_tot;
  }
  return fit;
}

double mean_of(const std::vector<double>& values) {
  EANT_CHECK(!values.empty(), "mean_of requires samples");
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

double variance_of(const std::vector<double>& values) {
  const double m = mean_of(values);
  double s = 0.0;
  for (double v : values) s += (v - m) * (v - m);
  return s / static_cast<double>(values.size());
}

}  // namespace eant
