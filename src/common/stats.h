// Small statistics toolkit used by the energy model, the experiment metrics
// and the test suite: online mean/variance, NRMSE (the paper's accuracy
// metric for the energy model, Sec. IV-B), percentiles and least-squares
// line fitting (the paper's method for identifying the power-model slope α).

#pragma once

#include <cstddef>
#include <vector>

#include "common/error.h"

namespace eant {

/// Welford online accumulator for mean and variance.
class OnlineStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ == 0 ? 0.0 : mean_; }
  /// Population variance (n denominator); 0 for fewer than 2 samples.
  double variance() const { return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_); }
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Normalised root mean square error between a measured (reference) series
/// and an estimated series, normalised by the mean of the measured series —
/// the deviation metric the paper reports for Fig. 4.
/// Requires equal, non-zero lengths and a non-zero measured mean.
double nrmse(const std::vector<double>& measured,
             const std::vector<double>& estimated);

/// Linear interpolation percentile (p in [0,100]) of an unsorted sample.
double percentile(std::vector<double> values, double p);

/// Result of fitting y ~ intercept + slope * x by ordinary least squares.
struct LineFit {
  double intercept = 0.0;
  double slope = 0.0;
  /// Coefficient of determination of the fit, in [0, 1] for well-posed data.
  double r_squared = 0.0;
};

/// Ordinary least squares fit; requires >= 2 points and non-constant x.
/// This is the "standard system identification technique" the paper uses to
/// obtain the power-model slope α from (utilisation, power) samples.
LineFit least_squares(const std::vector<double>& x,
                      const std::vector<double>& y);

/// Arithmetic mean; requires a non-empty vector.
double mean_of(const std::vector<double>& values);

/// Population variance; requires a non-empty vector.
double variance_of(const std::vector<double>& values);

}  // namespace eant
