// Floating-point comparison helpers.
//
// The project lint (tools/lint.py) bans raw `==`/`!=` on floating-point
// values: exact equality is almost always a latent bug once a value has been
// through arithmetic.  Code that genuinely needs to compare floats goes
// through these helpers, which make the tolerance explicit.

#pragma once

#include <algorithm>
#include <cmath>

namespace eant {

/// True iff a and b agree within `abs_tol` absolutely or `rel_tol`
/// relative to the larger magnitude — the standard combined tolerance that
/// behaves sanely both near zero and at large magnitudes.
inline bool approx_equal(double a, double b, double rel_tol = 1e-9,
                         double abs_tol = 1e-12) {
  const double diff = std::abs(a - b);
  if (diff <= abs_tol) return true;
  return diff <= rel_tol * std::max(std::abs(a), std::abs(b));
}

/// True iff x is within `abs_tol` of zero.
inline bool near_zero(double x, double abs_tol = 1e-12) {
  return std::abs(x) <= abs_tol;
}

}  // namespace eant
