// Three-level data locality, shared by the HDFS placement model, the network
// fabric and the schedulers.  Hadoop's NetworkTopology distinguishes exactly
// these levels: a split read from the task's own node, from another node in
// the same rack (one switch hop, no core traversal), or from a different
// rack (crosses the oversubscribed rack-to-core uplink).

#pragma once

#include <string>

namespace eant {

enum class Locality {
  kNodeLocal,  ///< a replica lives on the task's machine
  kRackLocal,  ///< a replica lives in the task's rack (but not its node)
  kOffRack,    ///< every replica is in another rack
};

inline std::string locality_name(Locality l) {
  switch (l) {
    case Locality::kNodeLocal:
      return "node-local";
    case Locality::kRackLocal:
      return "rack-local";
    case Locality::kOffRack:
      return "off-rack";
  }
  return "?";
}

}  // namespace eant
