#include "common/rng.h"

#include <numeric>

namespace eant {

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  EANT_CHECK(!weights.empty(), "weighted_index requires at least one weight");
  double total = 0.0;
  for (double w : weights) {
    EANT_CHECK(w >= 0.0, "weights must be non-negative");
    total += w;
  }
  EANT_CHECK(total > 0.0, "weights must have a positive sum");
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  // Floating-point slack: r can stay non-negative when the draw lands on the
  // very top of the range; the last positive-weight bucket is the owner.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  throw InvariantError("weighted_index: unreachable");
}

}  // namespace eant
