#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <sstream>

#include "common/error.h"

namespace eant {

void TextTable::set_header(std::vector<std::string> header) {
  EANT_CHECK(rows_.empty(), "set_header must precede add_row");
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  EANT_CHECK(row.size() == header_.size(), "row width must match header");
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  }

  std::ostringstream os;
  os << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void TextTable::print() const { std::fputs(render().c_str(), stdout); }

}  // namespace eant
