// MicroSoft-Derived (MSD) synthetic workload generator.
//
// Models the production workload of Sec. V-C / Table III: a mix of Small
// (40%), Medium (20%) and Large (10%) jobs (proportions renormalised after
// the paper's own trimming of the tail classes) running Wordcount, Terasort
// and Grep with varying input sizes.  The paper scales the month-long
// 174,000-job trace down to 87 jobs for its 16-node cluster; we additionally
// scale input sizes by `input_scale` so that simulated experiments finish in
// seconds of wall time while keeping task-count ratios between classes.

#pragma once

#include <vector>

#include "common/rng.h"
#include "workload/job_spec.h"

namespace eant::workload {

/// Configuration of the MSD workload generator (defaults follow the paper).
struct MsdConfig {
  int num_jobs = 87;  ///< the paper's scaled-down job count

  // Class shares from Table III (40/20/10), renormalised to sum to 1.
  double small_share = 4.0 / 7.0;
  double medium_share = 2.0 / 7.0;
  double large_share = 1.0 / 7.0;

  // Input-size ranges from Table III (Small 1-100 GB, Medium 0.1-1 TB,
  // Large 1-10 TB), in MB, before scaling.
  Megabytes small_min_mb = 1.0 * 1024;
  Megabytes small_max_mb = 100.0 * 1024;
  Megabytes medium_min_mb = 100.0 * 1024;
  Megabytes medium_max_mb = 1024.0 * 1024;
  Megabytes large_min_mb = 1024.0 * 1024;
  Megabytes large_max_mb = 10.0 * 1024 * 1024;

  /// Multiplied into sampled input sizes; 1/40 keeps the Table III 10x
  /// class ratios while making an 87-job run simulate in seconds.
  double input_scale = 1.0 / 40.0;

  /// Multiplied into sampled reduce counts.  Scaled more gently than the
  /// input (reduce counts grow sublinearly with input in production
  /// configurations), so per-reduce shuffle volumes stay realistic at
  /// simulation scale.
  double reduce_scale = 1.0 / 8.0;

  // Reduce counts from Table III (4-128 / 128-256 / 256-1024), scaled with
  // the same factor (at least one reduce per job).
  int small_min_reduces = 4, small_max_reduces = 128;
  int medium_min_reduces = 128, medium_max_reduces = 256;
  int large_min_reduces = 256, large_max_reduces = 1024;

  /// Mean inter-arrival time for the Poisson job-arrival process.
  Seconds mean_interarrival = 120.0;
};

/// Generates a deterministic (given rng) MSD job list sorted by submit time.
class MsdGenerator {
 public:
  explicit MsdGenerator(MsdConfig config) : config_(config) {}

  /// Samples the full workload; jobs carry submit times from a Poisson
  /// arrival process starting at t=0.
  std::vector<JobSpec> generate(Rng& rng) const;

  const MsdConfig& config() const { return config_; }

 private:
  JobSpec sample_job(Rng& rng) const;

  MsdConfig config_;
};

}  // namespace eant::workload
