// Arrival processes: open-loop event streams at a controlled rate.
//
// Seeded by the motivation experiments (Sec. II) — task streams submitted to
// a single machine to measure throughput-per-watt curves (Fig. 1(a)/(c)) —
// and grown into the rate profiles of the multi-tenant continuous-traffic
// subsystem (src/tenancy/): diurnal sinusoids and Markov-modulated bursts
// layered over the same Poisson machinery, emitting job arrivals over
// simulated days.

#pragma once

#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace eant::workload {

/// Generates arrival timestamps over a horizon.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  /// Arrival times in [0, horizon), sorted ascending.
  virtual std::vector<Seconds> arrivals(Seconds horizon, Rng& rng) const = 0;
};

/// Poisson arrivals at `rate_per_minute` tasks/min (the x-axis of Fig. 1).
class PoissonArrivals final : public ArrivalProcess {
 public:
  explicit PoissonArrivals(double rate_per_minute);

  std::vector<Seconds> arrivals(Seconds horizon, Rng& rng) const override;

  double rate_per_minute() const { return rate_per_minute_; }

 private:
  double rate_per_minute_;
};

/// Deterministic, evenly spaced arrivals (useful for exact-math tests).
class UniformArrivals final : public ArrivalProcess {
 public:
  explicit UniformArrivals(double rate_per_minute);

  std::vector<Seconds> arrivals(Seconds horizon, Rng& rng) const override;

 private:
  double rate_per_minute_;
};

/// Non-homogeneous Poisson arrivals with a sinusoidal day/night rate:
///
///   rate(t) = base * (1 + amplitude * sin(2*pi * (t + phase) / period))
///
/// the classic diurnal shape of production cluster traces.  Sampled by
/// thinning against the peak rate base * (1 + amplitude), so the empirical
/// rate tracks rate(t) exactly in expectation.
class DiurnalArrivals final : public ArrivalProcess {
 public:
  /// `amplitude` in [0, 1): 0 degenerates to flat Poisson, 0.9 swings the
  /// rate between 10% and 190% of base over one `period` (default: a day).
  DiurnalArrivals(double base_per_minute, double amplitude,
                  Seconds period = 86400.0, Seconds phase = 0.0);

  std::vector<Seconds> arrivals(Seconds horizon, Rng& rng) const override;

  /// Instantaneous rate (per minute) at absolute time t.
  double rate_at(Seconds t) const;

  double base_per_minute() const { return base_per_minute_; }

 private:
  double base_per_minute_;
  double amplitude_;
  Seconds period_;
  Seconds phase_;
};

/// Markov-modulated Poisson arrivals (MMPP-2): the process alternates
/// between a calm state at `base_per_minute` and a burst state at
/// `burst_multiplier * base_per_minute`, with exponentially distributed
/// dwell times — the bursty submit pattern of interactive tenants.
class BurstyArrivals final : public ArrivalProcess {
 public:
  BurstyArrivals(double base_per_minute, double burst_multiplier,
                 Seconds mean_calm = 1800.0, Seconds mean_burst = 300.0);

  std::vector<Seconds> arrivals(Seconds horizon, Rng& rng) const override;

  /// Long-run mean rate (per minute) over the two states.
  double mean_rate_per_minute() const;

 private:
  double base_per_minute_;
  double burst_multiplier_;
  Seconds mean_calm_;
  Seconds mean_burst_;
};

}  // namespace eant::workload
