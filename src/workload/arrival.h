// Arrival processes for the motivation experiments (Sec. II): open-loop task
// streams submitted to a single machine at a controlled rate, used to
// measure throughput-per-watt curves (Fig. 1(a)/(c)).

#pragma once

#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace eant::workload {

/// Generates arrival timestamps over a horizon.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  /// Arrival times in [0, horizon), sorted ascending.
  virtual std::vector<Seconds> arrivals(Seconds horizon, Rng& rng) const = 0;
};

/// Poisson arrivals at `rate_per_minute` tasks/min (the x-axis of Fig. 1).
class PoissonArrivals final : public ArrivalProcess {
 public:
  explicit PoissonArrivals(double rate_per_minute);

  std::vector<Seconds> arrivals(Seconds horizon, Rng& rng) const override;

  double rate_per_minute() const { return rate_per_minute_; }

 private:
  double rate_per_minute_;
};

/// Deterministic, evenly spaced arrivals (useful for exact-math tests).
class UniformArrivals final : public ArrivalProcess {
 public:
  explicit UniformArrivals(double rate_per_minute);

  std::vector<Seconds> arrivals(Seconds horizon, Rng& rng) const override;

 private:
  double rate_per_minute_;
};

}  // namespace eant::workload
