#include "workload/arrival.h"

#include <cmath>
#include <numbers>

#include "common/error.h"

namespace eant::workload {

PoissonArrivals::PoissonArrivals(double rate_per_minute)
    : rate_per_minute_(rate_per_minute) {
  EANT_CHECK(rate_per_minute > 0.0, "arrival rate must be positive");
}

std::vector<Seconds> PoissonArrivals::arrivals(Seconds horizon,
                                               Rng& rng) const {
  EANT_CHECK(horizon > 0.0, "horizon must be positive");
  std::vector<Seconds> times;
  const double rate_per_second = rate_per_minute_ / kSecondsPerMinute;
  Seconds t = rng.exponential(rate_per_second);
  while (t < horizon) {
    times.push_back(t);
    t += rng.exponential(rate_per_second);
  }
  return times;
}

UniformArrivals::UniformArrivals(double rate_per_minute)
    : rate_per_minute_(rate_per_minute) {
  EANT_CHECK(rate_per_minute > 0.0, "arrival rate must be positive");
}

std::vector<Seconds> UniformArrivals::arrivals(Seconds horizon,
                                               Rng& /*rng*/) const {
  EANT_CHECK(horizon > 0.0, "horizon must be positive");
  std::vector<Seconds> times;
  const Seconds gap = kSecondsPerMinute / rate_per_minute_;
  for (Seconds t = 0.0; t < horizon; t += gap) times.push_back(t);
  return times;
}

DiurnalArrivals::DiurnalArrivals(double base_per_minute, double amplitude,
                                 Seconds period, Seconds phase)
    : base_per_minute_(base_per_minute),
      amplitude_(amplitude),
      period_(period),
      phase_(phase) {
  EANT_CHECK(base_per_minute > 0.0, "arrival rate must be positive");
  EANT_CHECK(amplitude >= 0.0 && amplitude < 1.0,
             "diurnal amplitude must be in [0, 1)");
  EANT_CHECK(period > 0.0, "diurnal period must be positive");
}

double DiurnalArrivals::rate_at(Seconds t) const {
  const double angle = 2.0 * std::numbers::pi * (t + phase_) / period_;
  return base_per_minute_ * (1.0 + amplitude_ * std::sin(angle));
}

std::vector<Seconds> DiurnalArrivals::arrivals(Seconds horizon,
                                               Rng& rng) const {
  EANT_CHECK(horizon > 0.0, "horizon must be positive");
  // Thinning (Lewis-Shedler): draw candidates from a homogeneous Poisson
  // process at the peak rate, keep each with probability rate(t) / peak.
  const double peak_per_second =
      base_per_minute_ * (1.0 + amplitude_) / kSecondsPerMinute;
  std::vector<Seconds> times;
  Seconds t = rng.exponential(peak_per_second);
  while (t < horizon) {
    const double keep = rate_at(t) / (base_per_minute_ * (1.0 + amplitude_));
    if (rng.bernoulli(keep)) times.push_back(t);
    t += rng.exponential(peak_per_second);
  }
  return times;
}

BurstyArrivals::BurstyArrivals(double base_per_minute, double burst_multiplier,
                               Seconds mean_calm, Seconds mean_burst)
    : base_per_minute_(base_per_minute),
      burst_multiplier_(burst_multiplier),
      mean_calm_(mean_calm),
      mean_burst_(mean_burst) {
  EANT_CHECK(base_per_minute > 0.0, "arrival rate must be positive");
  EANT_CHECK(burst_multiplier >= 1.0, "burst multiplier must be >= 1");
  EANT_CHECK(mean_calm > 0.0 && mean_burst > 0.0,
             "state dwell times must be positive");
}

double BurstyArrivals::mean_rate_per_minute() const {
  // Stationary state probabilities are proportional to the dwell times.
  const double p_burst = mean_burst_ / (mean_calm_ + mean_burst_);
  return base_per_minute_ * ((1.0 - p_burst) + p_burst * burst_multiplier_);
}

std::vector<Seconds> BurstyArrivals::arrivals(Seconds horizon,
                                              Rng& rng) const {
  EANT_CHECK(horizon > 0.0, "horizon must be positive");
  std::vector<Seconds> times;
  Seconds segment_start = 0.0;
  bool burst = false;  // start calm; the first burst arrives stochastically
  while (segment_start < horizon) {
    const Seconds dwell =
        rng.exponential(1.0 / (burst ? mean_burst_ : mean_calm_));
    const Seconds segment_end = std::min(segment_start + dwell, horizon);
    const double rate_per_second =
        base_per_minute_ * (burst ? burst_multiplier_ : 1.0) /
        kSecondsPerMinute;
    Seconds t = segment_start + rng.exponential(rate_per_second);
    while (t < segment_end) {
      times.push_back(t);
      t += rng.exponential(rate_per_second);
    }
    segment_start = segment_start + dwell;
    burst = !burst;
  }
  return times;
}

}  // namespace eant::workload
