#include "workload/arrival.h"

#include "common/error.h"

namespace eant::workload {

PoissonArrivals::PoissonArrivals(double rate_per_minute)
    : rate_per_minute_(rate_per_minute) {
  EANT_CHECK(rate_per_minute > 0.0, "arrival rate must be positive");
}

std::vector<Seconds> PoissonArrivals::arrivals(Seconds horizon,
                                               Rng& rng) const {
  EANT_CHECK(horizon > 0.0, "horizon must be positive");
  std::vector<Seconds> times;
  const double rate_per_second = rate_per_minute_ / kSecondsPerMinute;
  Seconds t = rng.exponential(rate_per_second);
  while (t < horizon) {
    times.push_back(t);
    t += rng.exponential(rate_per_second);
  }
  return times;
}

UniformArrivals::UniformArrivals(double rate_per_minute)
    : rate_per_minute_(rate_per_minute) {
  EANT_CHECK(rate_per_minute > 0.0, "arrival rate must be positive");
}

std::vector<Seconds> UniformArrivals::arrivals(Seconds horizon,
                                               Rng& /*rng*/) const {
  EANT_CHECK(horizon > 0.0, "horizon must be positive");
  std::vector<Seconds> times;
  const Seconds gap = kSecondsPerMinute / rate_per_minute_;
  for (Seconds t = 0.0; t < horizon; t += gap) times.push_back(t);
  return times;
}

}  // namespace eant::workload
