#include "workload/msd.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace eant::workload {

std::string size_class_suffix(SizeClass c) {
  switch (c) {
    case SizeClass::kSmall:
      return "S";
    case SizeClass::kMedium:
      return "M";
    case SizeClass::kLarge:
      return "L";
  }
  throw PreconditionError("unknown SizeClass");
}

JobSpec MsdGenerator::sample_job(Rng& rng) const {
  const auto& c = config_;
  JobSpec job;

  const std::size_t cls = rng.weighted_index(
      {c.small_share, c.medium_share, c.large_share});
  Megabytes lo = 0, hi = 0;
  int rlo = 1, rhi = 1;
  switch (cls) {
    case 0:
      job.size_class = SizeClass::kSmall;
      lo = c.small_min_mb;
      hi = c.small_max_mb;
      rlo = c.small_min_reduces;
      rhi = c.small_max_reduces;
      break;
    case 1:
      job.size_class = SizeClass::kMedium;
      lo = c.medium_min_mb;
      hi = c.medium_max_mb;
      rlo = c.medium_min_reduces;
      rhi = c.medium_max_reduces;
      break;
    default:
      job.size_class = SizeClass::kLarge;
      lo = c.large_min_mb;
      hi = c.large_max_mb;
      rlo = c.large_min_reduces;
      rhi = c.large_max_reduces;
      break;
  }

  // Sample log-uniformly within the class range, like production job-size
  // distributions (heavier mass towards the small end of each class).
  const double log_size = rng.uniform(std::log(lo), std::log(hi));
  job.input_mb = std::max(kHdfsBlockMb, std::exp(log_size) * c.input_scale);

  const double reduces =
      static_cast<double>(rng.uniform_int(rlo, rhi)) * c.reduce_scale;
  job.num_reduces = std::max(1, static_cast<int>(std::lround(reduces)));

  const auto& apps = all_apps();
  job.app = apps[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(apps.size()) - 1))];
  return job;
}

std::vector<JobSpec> MsdGenerator::generate(Rng& rng) const {
  EANT_CHECK(config_.num_jobs >= 1, "workload needs at least one job");
  EANT_CHECK(config_.input_scale > 0.0, "input_scale must be positive");
  EANT_CHECK(config_.reduce_scale > 0.0, "reduce_scale must be positive");
  std::vector<JobSpec> jobs;
  jobs.reserve(static_cast<std::size_t>(config_.num_jobs));
  Seconds t = 0.0;
  for (int i = 0; i < config_.num_jobs; ++i) {
    JobSpec job = sample_job(rng);
    job.submit_time = t;
    t += rng.exponential(1.0 / config_.mean_interarrival);
    jobs.push_back(job);
  }
  return jobs;
}

}  // namespace eant::workload
