// Application profiles for the PUMA benchmarks the paper runs (Wordcount,
// Grep, Terasort — Sec. II and V-C).
//
// A profile expresses what a task of the application costs per megabyte of
// input: reference-core CPU seconds, local IO volume, the CPU demand (cores)
// the task's JVM occupies while running, and the map-output ratio that
// determines shuffle volume.  The values are calibrated to reproduce the
// paper's qualitative characterisation (Fig. 1(c)/(d)): Wordcount is
// map/CPU-intensive; Grep and Terasort are shuffle/reduce/IO-intensive.

#pragma once

#include <string>
#include <vector>

#include "common/units.h"

namespace eant::workload {

/// The three PUMA applications used throughout the paper.
enum class AppKind { kWordcount, kGrep, kTerasort };

/// All application kinds, in a stable order.
const std::vector<AppKind>& all_apps();

/// Short name ("Wordcount", "Grep", "Terasort").
std::string app_name(AppKind kind);

/// Per-MB resource costs of one application.
struct AppProfile {
  AppKind kind = AppKind::kWordcount;
  std::string name;

  // Map task costs, per MB of input split.
  double map_cpu_s_per_mb = 0.1;   ///< reference-core seconds per input MB
  double map_io_mb_per_mb = 1.0;   ///< local disk traffic per input MB
  double map_cpu_demand = 1.0;     ///< cores the map JVM occupies
  double map_output_ratio = 0.1;   ///< map output MB per input MB (shuffle)

  // Reduce task costs, per MB of shuffle input.
  double reduce_cpu_s_per_mb = 0.1;
  double reduce_io_mb_per_mb = 1.0;
  double reduce_cpu_demand = 1.0;
  double reduce_output_ratio = 1.0;
};

/// Profile lookup for an application kind.
const AppProfile& profile_for(AppKind kind);

/// CPU-bound share of a map task's runtime on the reference machine
/// (used by tests to assert the Fig. 1(d) characterisation).
double map_cpu_fraction(const AppProfile& p, double ref_io_mbps);

}  // namespace eant::workload
