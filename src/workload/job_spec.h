// Job specification: what a user submits to the JobTracker.

#pragma once

#include <cstddef>
#include <string>

#include "common/units.h"
#include "workload/apps.h"

namespace eant::workload {

/// Size class of a job, following Table III of the paper.
enum class SizeClass { kSmall, kMedium, kLarge };

/// "S", "M" or "L".
std::string size_class_suffix(SizeClass c);

/// Identifies the tenant (user / organisation / queue owner) a job belongs
/// to.  Single-tenant workloads leave every job on the default tenant 0.
using TenantId = std::size_t;

/// A MapReduce job submission.
struct JobSpec {
  AppKind app = AppKind::kWordcount;
  SizeClass size_class = SizeClass::kSmall;
  Megabytes input_mb = 64.0;
  int num_reduces = 1;
  Seconds submit_time = 0.0;

  /// Owning tenant; drives queue assignment under multi-tenant scheduling.
  TenantId tenant = 0;

  /// Absolute completion deadline (sim time); negative = no deadline.
  Seconds deadline = -1.0;

  bool has_deadline() const { return deadline >= 0.0; }

  /// Display name, e.g. "Wordcount-S" (the Fig. 8(c) class labels).
  std::string display_name() const {
    return app_name(app) + "-" + size_class_suffix(size_class);
  }

  /// Display/class label used for reporting (the Fig. 8(c) categories).
  std::string class_key() const { return display_name(); }

  /// Key identifying "homogeneous jobs" for E-Ant's job-level exchange and
  /// cross-colony feedback (Sec. IV-D): the paper groups jobs "based on
  /// their resource demands", and per-task resource character is set by the
  /// application, not the input size — a small and a large Wordcount job
  /// run identical tasks and must share experiences, not compete.
  std::string exchange_key() const { return app_name(app); }
};

}  // namespace eant::workload
