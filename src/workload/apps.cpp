#include "workload/apps.h"

#include "common/error.h"

namespace eant::workload {

const std::vector<AppKind>& all_apps() {
  static const std::vector<AppKind> kinds = {
      AppKind::kWordcount, AppKind::kGrep, AppKind::kTerasort};
  return kinds;
}

std::string app_name(AppKind kind) {
  switch (kind) {
    case AppKind::kWordcount:
      return "Wordcount";
    case AppKind::kGrep:
      return "Grep";
    case AppKind::kTerasort:
      return "Terasort";
  }
  throw PreconditionError("unknown AppKind");
}

namespace {

AppProfile make_wordcount() {
  AppProfile p;
  p.kind = AppKind::kWordcount;
  p.name = "Wordcount";
  // Map/CPU-intensive: tokenising and counting dominates; output is small
  // (word histograms), so shuffle and reduce are cheap (Fig. 1(d)).
  p.map_cpu_s_per_mb = 0.45;
  p.map_io_mb_per_mb = 0.5;
  p.map_cpu_demand = 1.8;
  p.map_output_ratio = 0.06;
  p.reduce_cpu_s_per_mb = 0.20;
  p.reduce_io_mb_per_mb = 1.0;
  p.reduce_cpu_demand = 0.8;
  p.reduce_output_ratio = 0.5;
  return p;
}

AppProfile make_grep() {
  AppProfile p;
  p.kind = AppKind::kGrep;
  p.name = "Grep";
  // Scan-light maps; the PUMA grep job sorts matches, so the measured
  // behaviour in the paper is shuffle/reduce-intensive (Fig. 1(d)).
  p.map_cpu_s_per_mb = 0.06;
  p.map_io_mb_per_mb = 1.2;
  p.map_cpu_demand = 0.7;
  p.map_output_ratio = 0.35;
  p.reduce_cpu_s_per_mb = 0.15;
  p.reduce_io_mb_per_mb = 2.5;
  p.reduce_cpu_demand = 0.7;
  p.reduce_output_ratio = 0.3;
  return p;
}

AppProfile make_terasort() {
  AppProfile p;
  p.kind = AppKind::kTerasort;
  p.name = "Terasort";
  // Full-volume sort: map output equals input, shuffle dominates, reduces
  // are IO-heavy merge/write phases (Fig. 1(d)).
  p.map_cpu_s_per_mb = 0.08;
  p.map_io_mb_per_mb = 2.0;
  p.map_cpu_demand = 0.9;
  p.map_output_ratio = 1.0;
  p.reduce_cpu_s_per_mb = 0.10;
  p.reduce_io_mb_per_mb = 3.0;
  p.reduce_cpu_demand = 0.9;
  p.reduce_output_ratio = 1.0;
  return p;
}

}  // namespace

const AppProfile& profile_for(AppKind kind) {
  static const AppProfile wordcount = make_wordcount();
  static const AppProfile grep = make_grep();
  static const AppProfile terasort = make_terasort();
  switch (kind) {
    case AppKind::kWordcount:
      return wordcount;
    case AppKind::kGrep:
      return grep;
    case AppKind::kTerasort:
      return terasort;
  }
  throw PreconditionError("unknown AppKind");
}

double map_cpu_fraction(const AppProfile& p, double ref_io_mbps) {
  EANT_CHECK(ref_io_mbps > 0.0, "io bandwidth must be positive");
  const double cpu = p.map_cpu_s_per_mb;
  const double io = p.map_io_mb_per_mb / ref_io_mbps;
  return cpu / (cpu + io);
}

}  // namespace eant::workload
