#include "core/pheromone.h"

#include <algorithm>

#include "common/error.h"

namespace eant::core {

PheromoneTable::PheromoneTable(std::size_t num_machines, double rho,
                               double tau_init, double tau_min)
    : num_machines_(num_machines),
      rho_(rho),
      tau_init_(tau_init),
      tau_min_(tau_min) {
  EANT_CHECK(num_machines >= 1, "pheromone table needs machines");
  EANT_CHECK(rho >= 0.0 && rho <= 1.0, "evaporation rho must be in [0,1]");
  EANT_CHECK(tau_init > 0.0, "tau_init must be positive");
  EANT_CHECK(tau_min > 0.0 && tau_min <= tau_init,
             "tau_min must be in (0, tau_init]");
}

void PheromoneTable::add_job(mr::JobId job, const std::string& class_key) {
  for (mr::TaskKind kind : {mr::TaskKind::kMap, mr::TaskKind::kReduce}) {
    const TrailKey key{job, kind};
    EANT_CHECK(!trails_.contains(key), "colony already registered");
    const auto* prior =
        class_key.empty() ? nullptr : class_prior(class_key, kind);
    if (prior != nullptr) {
      trails_[key] = *prior;
    } else {
      trails_[key].assign(num_machines_, tau_init_);
    }
    if (!class_key.empty()) classes_[key] = class_key;
  }
}

void PheromoneTable::remove_job(mr::JobId job) {
  for (mr::TaskKind kind : {mr::TaskKind::kMap, mr::TaskKind::kReduce}) {
    const TrailKey key{job, kind};
    // Remember the departing colony's learning for future same-class jobs.
    // The classes_ entry is retained: the colony's final task reports are
    // still buffered in the scheduler and their deposits must reach the
    // class prior at the next control tick (a short job often finishes
    // before a single tick — without this, small jobs would never learn,
    // the pathology Sec. VI-C warns about).
    if (auto cit = classes_.find(key); cit != classes_.end()) {
      if (auto tit = trails_.find(key); tit != trails_.end()) {
        priors_[{cit->second, kind}] = tit->second;
      }
    }
    trails_.erase(key);
  }
}

bool PheromoneTable::has_job(mr::JobId job) const {
  return trails_.contains(TrailKey{job, mr::TaskKind::kMap});
}

double PheromoneTable::tau(mr::JobId job, mr::TaskKind kind,
                           cluster::MachineId machine) const {
  EANT_CHECK(machine < num_machines_, "machine id out of range");
  const auto it = trails_.find(TrailKey{job, kind});
  EANT_CHECK(it != trails_.end(), "unknown colony");
  return it->second[machine];
}

double PheromoneTable::row_sum(mr::JobId job, mr::TaskKind kind) const {
  const auto it = trails_.find(TrailKey{job, kind});
  EANT_CHECK(it != trails_.end(), "unknown colony");
  double sum = 0.0;
  for (double v : it->second) sum += v;
  return sum;
}

double PheromoneTable::row_max(mr::JobId job, mr::TaskKind kind) const {
  const auto it = trails_.find(TrailKey{job, kind});
  EANT_CHECK(it != trails_.end(), "unknown colony");
  double best = 0.0;
  for (double v : it->second) best = std::max(best, v);
  return best;
}

void PheromoneTable::apply(const DeltaMap& deposits) {
  for (const auto& [key, per_machine] : deposits) {
    EANT_CHECK(per_machine.size() == num_machines_,
               "deposit vector has wrong machine count");
    std::vector<double>* target = nullptr;
    auto it = trails_.find(key);
    if (it != trails_.end()) {
      target = &it->second;
    } else if (auto cit = classes_.find(key); cit != classes_.end()) {
      // Colony finished mid-interval: its final deposits update the class
      // prior directly so the learning is inherited by the next same-class
      // job rather than discarded.
      auto& prior = priors_[{cit->second, key.second}];
      if (prior.empty()) prior.assign(num_machines_, tau_init_);
      target = &prior;
    } else {
      continue;  // anonymous colony finished; nothing to learn into
    }
    for (std::size_t m = 0; m < num_machines_; ++m) {
      const double updated =
          (1.0 - rho_) * (*target)[m] + rho_ * per_machine[m];
      (*target)[m] = std::max(tau_min_, updated);
    }
    // Keep the class memory fresh while colonies are alive, so a colony
    // that finishes between ticks still leaves its latest learning behind.
    if (it != trails_.end()) {
      if (auto cit = classes_.find(key); cit != classes_.end()) {
        priors_[{cit->second, key.second}] = *target;
      }
    }
  }
}

void PheromoneTable::evaporate_machine(cluster::MachineId machine) {
  EANT_CHECK(machine < num_machines_, "machine id out of range");
  for (auto& [key, row] : trails_) row[machine] = tau_min_;
  for (auto& [key, row] : priors_) row[machine] = tau_min_;
}

void PheromoneTable::reseed_machine(cluster::MachineId machine) {
  EANT_CHECK(machine < num_machines_, "machine id out of range");
  const auto reseed = [this, machine](std::vector<double>& row) {
    if (num_machines_ == 1) {
      row[machine] = tau_init_;
      return;
    }
    double sum = 0.0;
    for (std::size_t m = 0; m < num_machines_; ++m) {
      if (m != machine) sum += row[m];
    }
    row[machine] =
        std::max(tau_min_, sum / static_cast<double>(num_machines_ - 1));
  };
  for (auto& [key, row] : trails_) reseed(row);
  for (auto& [key, row] : priors_) reseed(row);
}

void PheromoneTable::penalize(mr::JobId job, mr::TaskKind kind,
                              cluster::MachineId machine, double factor) {
  EANT_CHECK(machine < num_machines_, "machine id out of range");
  EANT_CHECK(factor >= 0.0 && factor <= 1.0, "penalty factor must be in [0,1]");
  const auto it = trails_.find(TrailKey{job, kind});
  if (it == trails_.end()) return;
  it->second[machine] = std::max(tau_min_, it->second[machine] * factor);
}

const std::vector<double>* PheromoneTable::class_prior(
    const std::string& class_key, mr::TaskKind kind) const {
  const auto it = priors_.find({class_key, kind});
  return it == priors_.end() ? nullptr : &it->second;
}

std::vector<double> PheromoneTable::trail(mr::JobId job,
                                          mr::TaskKind kind) const {
  const auto it = trails_.find(TrailKey{job, kind});
  EANT_CHECK(it != trails_.end(), "unknown colony");
  return it->second;
}

PheromoneTable::Snapshot PheromoneTable::snapshot() const {
  return Snapshot{trails_, classes_, priors_};
}

void PheromoneTable::restore(const Snapshot& snap) {
  for (const auto& [key, row] : snap.trails) {
    EANT_CHECK(row.size() == num_machines_,
               "snapshot shape does not match the table");
  }
  trails_ = snap.trails;
  classes_ = snap.classes;
  priors_ = snap.priors;
}

}  // namespace eant::core
