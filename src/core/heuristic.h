// Heuristic information (paper Sec. IV-C-4, Eq. 7): data locality gets
// absolute priority, and jobs below their fair share of slots get boosted.
//
//   eta(j) = infinity                                 if j has a local task
//          = 1 / (1 - (S_min - S_occ) / S_pool)       otherwise
//
// S_min is the job's minimum (fair) share of slots, S_occ the slots it
// currently occupies, S_pool the pool's share (for a single-user system,
// the total slots of the cluster; sum over jobs of S_min == S_pool).

#pragma once

#include "common/error.h"

namespace eant::core {

/// Eq. 7's finite branch: the fairness boost for a job without local data.
/// Greater than 1 when the job is below its fair share, 1 at its share,
/// and below 1 when above.  The result is clamped to [eta_min, eta_max] to
/// keep the assignment weights well-conditioned (the unclamped expression
/// diverges as S_min - S_occ approaches S_pool).
double fairness_eta(double s_min, double s_occ, double s_pool,
                    double eta_min = 1e-3, double eta_max = 1e3);

/// The per-job fair share for a single-user pool with J active jobs.
inline double fair_share(int total_slots, std::size_t active_jobs) {
  EANT_CHECK(active_jobs >= 1, "no active jobs");
  return static_cast<double>(total_slots) / static_cast<double>(active_jobs);
}

}  // namespace eant::core
