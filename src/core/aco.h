// ACO mechanics (paper Sec. IV-C): deposit computation from task-energy
// feedback (Eq. 5) and probabilistic job sampling (Eq. 3/8).
//
// Eq. 8 defines the task->machine probability
//     P(j, m) = tau(j,m) * eta(j)^beta / sum over m' of tau(j,m')
// Hadoop assigns when machine m heartbeats (pull model), so the sampler
// draws a *job* for the given machine with weight proportional to exactly
// that expression — the pull-model dual documented in DESIGN.md.

#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "core/pheromone.h"

namespace eant::core {

/// A completed task report annotated with its Eq. 2 energy estimate.
struct EstimatedReport {
  mr::TaskReport report;
  Joules energy = 0.0;
};

/// Eq. 5 over one control interval: for each colony (job, kind), the deposit
/// of task n on machine m is  (mean energy of the colony's completed tasks)
/// / (energy of task n); deposits are summed per machine (Eq. 4's inner
/// sum).  Near-zero task energies are floored to keep ratios finite.
DeltaMap compute_deposits(const std::vector<EstimatedReport>& interval,
                          std::size_t num_machines,
                          Joules energy_floor = 1.0);

/// Samples one candidate job for a slot on `machine` with probability
/// proportional to  tau(j,kind,machine)/row_sum(j,kind) * eta(j)^beta.
/// Returns nothing when candidates is empty.
std::optional<mr::JobId> sample_job(
    const PheromoneTable& table, Rng& rng,
    const std::vector<mr::JobId>& candidates, mr::TaskKind kind,
    cluster::MachineId machine,
    const std::function<double(mr::JobId)>& eta, double beta);

}  // namespace eant::core
