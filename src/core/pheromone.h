// Pheromone table for E-Ant's ant-colony optimisation (paper Sec. IV-C).
//
// Each job is an ant colony; the trail value tau(j, m) encodes the learned
// goodness (energy efficiency) of assigning the job's tasks to machine m.
// Trails are kept per task kind (map/reduce) because the two phases of the
// same job have very different resource profiles — this is what lets E-Ant
// place maps and reduces differently (the paper's Fig. 9(b)).
//
// Updates follow Eq. 4 (evaporation + deposit), Eq. 5 (deposit = average
// task energy of the colony / this task's energy) and Eq. 6 (negative
// cross-colony feedback).  A tau floor keeps every path explorable, the
// standard MMAS-style guard against probabilities collapsing to zero.

#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "cluster/machine.h"
#include "mapreduce/task.h"

namespace eant::core {

/// Identifies one colony trail: a job's map trails or reduce trails.
using TrailKey = std::pair<mr::JobId, mr::TaskKind>;

/// Per-interval pheromone deposits: for each trail, the summed deposit on
/// each machine (Eq. 4's  sum over n of delta-tau^n).
using DeltaMap = std::map<TrailKey, std::vector<double>>;

/// The tau(j, kind, m) table with evaporation and floor.
class PheromoneTable {
 public:
  PheromoneTable(std::size_t num_machines, double rho, double tau_init = 1.0,
                 double tau_min = 0.05);

  /// Creates the two trails (map/reduce) of a new colony.  When a non-empty
  /// class key is given and colonies of that class have learned before, the
  /// new trails start from the class's remembered trail state instead of
  /// tau_init — the job-level exchange extended across time, without which
  /// a short job always dies before its first pheromone update and every
  /// recurring workload would relearn from scratch (Sec. VI-C notes exactly
  /// this small-job pathology).
  void add_job(mr::JobId job, const std::string& class_key = "");

  /// Drops a finished colony's trails.
  void remove_job(mr::JobId job);

  bool has_job(mr::JobId job) const;

  double tau(mr::JobId job, mr::TaskKind kind,
             cluster::MachineId machine) const;

  /// Sum of tau over machines for a trail — Eq. 3/8's denominator.
  double row_sum(mr::JobId job, mr::TaskKind kind) const;

  /// Largest tau in a trail (the colony's best-ranked machine).
  double row_max(mr::JobId job, mr::TaskKind kind) const;

  /// Applies one control-interval update: tau <- (1-rho) tau + rho * deposit,
  /// clamped at tau_min.  Deposits for unknown (already removed) trails are
  /// ignored.  Trails with no deposit this interval are left untouched,
  /// matching the paper's rule that "the higher the task completion rate,
  /// the greater the chance of updating the pheromone value of that path".
  void apply(const DeltaMap& deposits);

  /// Drops the machine's tau to the floor in every live trail and class
  /// prior: a lost machine's accumulated attraction must not survive the
  /// outage, or colonies keep declining working machines waiting for it.
  void evaporate_machine(cluster::MachineId machine);

  /// Re-seeds a rejoined machine's tau in every live trail and class prior
  /// to the row's mean over the other machines — neutral standing at the
  /// row's current scale, so the machine is explored again without
  /// inheriting its pre-crash rank.
  void reseed_machine(cluster::MachineId machine);

  /// Multiplies one trail entry by `factor` (clamped at the floor) — the
  /// immediate reaction to a failed attempt on the machine, ahead of the
  /// next control tick.  Unknown colonies are ignored.
  void penalize(mr::JobId job, mr::TaskKind kind, cluster::MachineId machine,
                double factor);

  double rho() const { return rho_; }
  double tau_min() const { return tau_min_; }
  std::size_t num_machines() const { return num_machines_; }

  /// Snapshot of one trail (for tests/observability).
  std::vector<double> trail(mr::JobId job, mr::TaskKind kind) const;

  /// The remembered class trail, if any colonies of the class have learned.
  const std::vector<double>* class_prior(const std::string& class_key,
                                         mr::TaskKind kind) const;

  /// Full-state snapshot/restore (the control-plane failover model): the
  /// trails, class bindings and class priors of every colony, restorable
  /// onto a table of the same shape.  Used by E-Ant's master-recovery hook
  /// to rewind the ant trail to the last persisted control tick.
  struct Snapshot {
    std::map<TrailKey, std::vector<double>> trails;
    std::map<TrailKey, std::string> classes;
    std::map<std::pair<std::string, mr::TaskKind>, std::vector<double>> priors;
  };
  Snapshot snapshot() const;
  void restore(const Snapshot& snap);

 private:
  std::size_t num_machines_;
  double rho_;
  double tau_init_;
  double tau_min_;
  std::map<TrailKey, std::vector<double>> trails_;
  std::map<TrailKey, std::string> classes_;
  std::map<std::pair<std::string, mr::TaskKind>, std::vector<double>> priors_;
};

}  // namespace eant::core
