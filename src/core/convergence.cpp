#include "core/convergence.h"

#include <algorithm>

#include "common/error.h"

namespace eant::core {

ConvergenceTracker::ConvergenceTracker(double threshold)
    : threshold_(threshold) {
  EANT_CHECK(threshold > 0.0 && threshold <= 1.0,
             "threshold must be in (0, 1]");
}

void ConvergenceTracker::record_interval(
    mr::JobId job, Seconds submit_time, Seconds now,
    const std::vector<std::size_t>& counts) {
  std::size_t total = 0;
  for (auto c : counts) total += c;
  if (total == 0) return;  // nothing assigned this interval

  auto& trace = traces_[job];
  if (!trace.previous.empty()) {
    EANT_CHECK(trace.previous.size() == counts.size(),
               "machine count changed between intervals");
    std::size_t prev_total = 0;
    std::size_t inter = 0;
    for (std::size_t m = 0; m < counts.size(); ++m) {
      prev_total += trace.previous[m];
      inter += std::min(counts[m], trace.previous[m]);
    }
    const double overlap = static_cast<double>(inter) /
                           static_cast<double>(std::max(total, prev_total));
    trace.last_overlap = overlap;
    if (!trace.converged_at && overlap >= threshold_) {
      trace.converged_at = now - submit_time;
    }
  }
  trace.previous = counts;
}

bool ConvergenceTracker::converged(mr::JobId job) const {
  const auto it = traces_.find(job);
  return it != traces_.end() && it->second.converged_at.has_value();
}

std::optional<Seconds> ConvergenceTracker::convergence_time(
    mr::JobId job) const {
  const auto it = traces_.find(job);
  if (it == traces_.end()) return std::nullopt;
  return it->second.converged_at;
}

std::optional<double> ConvergenceTracker::last_overlap(mr::JobId job) const {
  const auto it = traces_.find(job);
  if (it == traces_.end()) return std::nullopt;
  return it->second.last_overlap;
}

}  // namespace eant::core
