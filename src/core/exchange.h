// Information-exchange strategies for robustness against system noise
// (paper Sec. IV-D).
//
// The pheromone deposits computed from one control interval's task reports
// are smoothed across (a) homogeneous machines — machines of the same
// hardware type should look equally good for the same job — and (b)
// homogeneous jobs — jobs of the same application/size class share their
// experiences.  Both transforms operate on the DeltaMap before it is
// applied to the pheromone table; either can be enabled independently
// (the Fig. 10 ablation).
//
// Negative cross-colony feedback (Eq. 6) is also implemented here: a
// machine's deposit for one colony is subtracted from every competing
// colony of the same task kind, steering different jobs toward the machines
// that are energy-efficient *for them specifically*.

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "core/pheromone.h"

namespace eant::core {

/// Machine-level exchange: for every trail, replaces each machine's deposit
/// with the mean deposit over that machine's homogeneous group
/// (delta(j,m) = Avg over m' in Mh of delta(j,m'), Sec. IV-D).
DeltaMap machine_level_exchange(const DeltaMap& deltas,
                                const cluster::Cluster& cluster);

/// Job-level exchange: replaces each colony's deposits with the mean over
/// all colonies of the same class (same application and size class, same
/// task kind).  `class_key(job)` supplies the homogeneity key.
DeltaMap job_level_exchange(
    const DeltaMap& deltas,
    const std::function<std::string(mr::JobId)>& class_key);

/// Eq. 6: competing colonies push each other off contested machines.  For
/// each machine and task kind, colony j receives its own deposit minus the
/// mean deposit of colonies of *other* job classes on that machine.
/// Homogeneous jobs (same class) are not each other's competitors — they
/// already pool their experiences through the job-level exchange — so a
/// literal sum over all other colonies would make identical jobs cannibalise
/// their own shared ranking; differentiating across classes is what makes
/// each job type gravitate to the machines that are energy-efficient for it
/// specifically (Fig. 9(a)).
DeltaMap apply_negative_feedback(
    const DeltaMap& deltas,
    const std::function<std::string(mr::JobId)>& class_key);

/// Re-centres every deposit row around `center` while preserving the
/// per-machine differences exactly: d'(m) = center + d(m) - mean(d).
/// Eq. 3/8's probabilities and the slot-acceptance rule are invariant to a
/// trail's absolute scale, but the scale still matters numerically: raw
/// deposit sums swing from ~0 (after negative feedback) to ~task-count,
/// which would either evaporate trails into the tau floor (losing the
/// ranking) or blow them up.  Centring pins the scale at tau_init so the
/// evaporated trail is an EWMA of the *relative* machine ranking.
DeltaMap center_deposits(const DeltaMap& deltas, double center);

}  // namespace eant::core
