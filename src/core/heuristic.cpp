#include "core/heuristic.h"

#include <algorithm>

namespace eant::core {

double fairness_eta(double s_min, double s_occ, double s_pool, double eta_min,
                    double eta_max) {
  EANT_CHECK(s_pool > 0.0, "slot pool must be positive");
  EANT_CHECK(s_min >= 0.0 && s_occ >= 0.0, "shares must be non-negative");
  EANT_CHECK(eta_min > 0.0 && eta_max >= eta_min, "eta bounds misordered");
  const double denom = 1.0 - (s_min - s_occ) / s_pool;
  if (denom <= 0.0) return eta_max;  // fully starved job: maximum urgency
  return std::clamp(1.0 / denom, eta_min, eta_max);
}

}  // namespace eant::core
