#include "core/aco.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/error.h"

namespace eant::core {

DeltaMap compute_deposits(const std::vector<EstimatedReport>& interval,
                          std::size_t num_machines, Joules energy_floor) {
  EANT_CHECK(energy_floor > 0.0, "energy floor must be positive");

  // Mean task energy per colony (Eq. 5's numerator).
  struct Acc {
    Joules sum = 0.0;
    std::size_t count = 0;
  };
  std::map<TrailKey, Acc> means;
  for (const auto& er : interval) {
    EANT_CHECK(er.energy >= 0.0, "negative task energy estimate");
    auto& acc = means[{er.report.spec.job, er.report.spec.kind}];
    acc.sum += std::max(er.energy, energy_floor);
    ++acc.count;
  }

  DeltaMap deposits;
  for (const auto& er : interval) {
    const TrailKey key{er.report.spec.job, er.report.spec.kind};
    const auto& acc = means.at(key);
    const Joules avg = acc.sum / static_cast<double>(acc.count);
    const Joules e = std::max(er.energy, energy_floor);
    auto& row = deposits[key];
    if (row.empty()) row.assign(num_machines, 0.0);
    EANT_CHECK(er.report.machine < num_machines, "machine id out of range");
    row[er.report.machine] += avg / e;
  }
  return deposits;
}

std::optional<mr::JobId> sample_job(
    const PheromoneTable& table, Rng& rng,
    const std::vector<mr::JobId>& candidates, mr::TaskKind kind,
    cluster::MachineId machine,
    const std::function<double(mr::JobId)>& eta, double beta) {
  if (candidates.empty()) return std::nullopt;
  EANT_CHECK(static_cast<bool>(eta), "eta function must be callable");
  EANT_CHECK(beta >= 0.0, "beta must be non-negative");

  std::vector<double> weights;
  weights.reserve(candidates.size());
  for (mr::JobId j : candidates) {
    const double row = table.row_sum(j, kind);
    EANT_ASSERT(row > 0.0, "pheromone row sum must stay positive");
    const double normalized_tau = table.tau(j, kind, machine) / row;
    const double boost = beta <= 0.0 ? 1.0 : std::pow(eta(j), beta);
    weights.push_back(normalized_tau * boost);
  }
  return candidates[rng.weighted_index(weights)];
}

}  // namespace eant::core
