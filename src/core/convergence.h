// Convergence tracking for E-Ant's search speed evaluation (paper Sec. VI-C).
//
// The paper calls a job's task assignment "stable" when more than 80% of its
// tasks revisit the same machines compared with the previous control
// interval.  We measure that as the overlap coefficient between the
// consecutive per-machine assignment histograms:
//
//   overlap = sum over m of min(c_t[m], c_{t-1}[m]) / max(|c_t|, |c_{t-1}|)
//
// and record the first interval end at which overlap >= threshold as the
// job's convergence time (relative to its submission).

#pragma once

#include <map>
#include <optional>
#include <vector>

#include "common/units.h"
#include "mapreduce/task.h"

namespace eant::core {

/// Detects when each colony's assignment distribution stabilises.
class ConvergenceTracker {
 public:
  explicit ConvergenceTracker(double threshold = 0.8);

  /// Feeds one control interval's per-machine completed-task counts for a
  /// job; `now` is the interval end (sim time), `submit_time` the job's
  /// submission time.  Intervals with zero tasks are skipped.
  void record_interval(mr::JobId job, Seconds submit_time, Seconds now,
                       const std::vector<std::size_t>& counts);

  /// True once the job has had a stable interval pair.
  bool converged(mr::JobId job) const;

  /// Time from submission to the first stable interval, if converged.
  std::optional<Seconds> convergence_time(mr::JobId job) const;

  /// Latest overlap coefficient computed for the job (for observability).
  std::optional<double> last_overlap(mr::JobId job) const;

  double threshold() const { return threshold_; }

 private:
  struct JobTrace {
    std::vector<std::size_t> previous;
    std::optional<Seconds> converged_at;
    std::optional<double> last_overlap;
  };

  double threshold_;
  std::map<mr::JobId, JobTrace> traces_;
};

}  // namespace eant::core
