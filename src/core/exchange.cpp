#include "core/exchange.h"

#include <map>

#include "common/error.h"

namespace eant::core {

DeltaMap machine_level_exchange(const DeltaMap& deltas,
                                const cluster::Cluster& cluster) {
  DeltaMap out;
  for (const auto& [key, per_machine] : deltas) {
    EANT_CHECK(per_machine.size() == cluster.size(),
               "delta vector does not match cluster size");
    std::vector<double> smoothed(per_machine.size(), 0.0);
    for (cluster::MachineId m = 0; m < per_machine.size(); ++m) {
      const auto& group = cluster.homogeneous_group(m);
      double sum = 0.0;
      for (cluster::MachineId peer : group) sum += per_machine[peer];
      smoothed[m] = sum / static_cast<double>(group.size());
    }
    out[key] = std::move(smoothed);
  }
  return out;
}

DeltaMap job_level_exchange(
    const DeltaMap& deltas,
    const std::function<std::string(mr::JobId)>& class_key) {
  EANT_CHECK(static_cast<bool>(class_key), "class_key must be callable");
  if (deltas.empty()) return {};

  // Group colonies by (class, kind) and average their deposit vectors.
  struct Group {
    std::vector<double> sum;
    std::size_t count = 0;
  };
  std::map<std::pair<std::string, mr::TaskKind>, Group> groups;
  for (const auto& [key, per_machine] : deltas) {
    auto& g = groups[{class_key(key.first), key.second}];
    if (g.sum.empty()) g.sum.assign(per_machine.size(), 0.0);
    EANT_CHECK(g.sum.size() == per_machine.size(),
               "delta vectors disagree on machine count");
    for (std::size_t m = 0; m < per_machine.size(); ++m) {
      g.sum[m] += per_machine[m];
    }
    ++g.count;
  }

  DeltaMap out;
  for (const auto& [key, per_machine] : deltas) {
    const auto& g = groups.at({class_key(key.first), key.second});
    std::vector<double> avg(per_machine.size());
    for (std::size_t m = 0; m < avg.size(); ++m) {
      avg[m] = g.sum[m] / static_cast<double>(g.count);
    }
    out[key] = std::move(avg);
  }
  return out;
}

DeltaMap apply_negative_feedback(
    const DeltaMap& deltas,
    const std::function<std::string(mr::JobId)>& class_key) {
  EANT_CHECK(static_cast<bool>(class_key), "class_key must be callable");
  if (deltas.empty()) return {};

  // Per (kind): the per-class mean deposit vector, so each colony can
  // subtract the average experience of competing (other-class) colonies.
  struct ClassAcc {
    std::vector<double> sum;
    std::size_t count = 0;
  };
  std::map<std::pair<mr::TaskKind, std::string>, ClassAcc> classes;
  for (const auto& [key, per_machine] : deltas) {
    auto& acc = classes[{key.second, class_key(key.first)}];
    if (acc.sum.empty()) acc.sum.assign(per_machine.size(), 0.0);
    EANT_CHECK(acc.sum.size() == per_machine.size(),
               "delta vectors disagree on machine count");
    for (std::size_t m = 0; m < per_machine.size(); ++m) {
      acc.sum[m] += per_machine[m];
    }
    ++acc.count;
  }

  DeltaMap out;
  for (const auto& [key, per_machine] : deltas) {
    const std::string own_class = class_key(key.first);
    // Mean deposit per machine over all colonies of other classes (same
    // task kind).
    std::vector<double> competitor_mean(per_machine.size(), 0.0);
    std::size_t competitors = 0;
    for (const auto& [ck, acc] : classes) {
      if (ck.first != key.second || ck.second == own_class) continue;
      for (std::size_t m = 0; m < per_machine.size(); ++m) {
        competitor_mean[m] += acc.sum[m];
      }
      competitors += acc.count;
    }
    std::vector<double> adjusted(per_machine.size());
    for (std::size_t m = 0; m < per_machine.size(); ++m) {
      const double mean = competitors == 0
                              ? 0.0
                              : competitor_mean[m] /
                                    static_cast<double>(competitors);
      adjusted[m] = per_machine[m] - mean;
    }
    out[key] = std::move(adjusted);
  }
  return out;
}

DeltaMap center_deposits(const DeltaMap& deltas, double center) {
  EANT_CHECK(center > 0.0, "center must be positive");
  DeltaMap out;
  for (const auto& [key, per_machine] : deltas) {
    EANT_CHECK(!per_machine.empty(), "empty deposit row");
    double mean = 0.0;
    for (double d : per_machine) mean += d;
    mean /= static_cast<double>(per_machine.size());
    std::vector<double> centered(per_machine.size());
    for (std::size_t m = 0; m < per_machine.size(); ++m) {
      centered[m] = center + per_machine[m] - mean;
    }
    out[key] = std::move(centered);
  }
  return out;
}

}  // namespace eant::core
