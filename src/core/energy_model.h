// Task-level energy model (paper Sec. IV-B, Eq. 2).
//
// A Hadoop task runs in a JVM occupying one slot; its energy is estimated
// from the CPU-utilisation samples its TaskTracker reports each heartbeat:
//
//   E(T) = sum over windows [ P_idle(m)/slots(m) + alpha(m) * u_w ] * dt_w
//
// The per-machine-type parameters (P_idle, alpha) are constants; the paper
// obtains alpha with the least-squares method, which `calibrate()`
// reimplements from (utilisation, wall-power) observations.

#pragma once

#include <vector>

#include "cluster/cluster.h"
#include "common/stats.h"
#include "common/units.h"
#include "mapreduce/task.h"

namespace eant::core {

/// Power-model constants of one machine (type): P = idle + alpha * u.
struct PowerParams {
  Watts idle = 0.0;
  Watts alpha = 0.0;
  int slots = 1;  ///< divisor apportioning idle power to tasks (Eq. 2)
};

/// One observation for system identification: machine utilisation vs
/// metered wall power.
struct CalibrationSample {
  Utilization util = 0.0;
  Watts power = 0.0;
};

/// Fits PowerParams from metered samples by ordinary least squares — the
/// "standard system identification technique" of Sec. IV-B.  Requires at
/// least two samples with non-constant utilisation.
PowerParams calibrate(const std::vector<CalibrationSample>& samples,
                      int slots);

/// Per-machine task-energy estimator.
class EnergyModel {
 public:
  /// Model with no machines; add parameters with set_params.
  EnergyModel() = default;

  /// Builds a model whose parameters match the cluster's true machine types
  /// (the paper's calibrated per-type models).
  static EnergyModel from_cluster(const cluster::Cluster& cluster);

  void set_params(cluster::MachineId machine, PowerParams params);
  const PowerParams& params(cluster::MachineId machine) const;
  std::size_t num_machines() const { return params_.size(); }

  /// Eq. 2: energy of a completed task from its utilisation samples.
  Joules estimate(const mr::TaskReport& report) const;

 private:
  std::vector<PowerParams> params_;
};

}  // namespace eant::core
