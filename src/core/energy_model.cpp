#include "core/energy_model.h"

#include "common/error.h"

namespace eant::core {

PowerParams calibrate(const std::vector<CalibrationSample>& samples,
                      int slots) {
  EANT_CHECK(slots >= 1, "slots must be positive");
  std::vector<double> x, y;
  x.reserve(samples.size());
  y.reserve(samples.size());
  for (const auto& s : samples) {
    x.push_back(s.util);
    y.push_back(s.power);
  }
  const LineFit fit = least_squares(x, y);
  EANT_CHECK(fit.intercept >= 0.0, "calibrated idle power is negative");
  EANT_CHECK(fit.slope >= 0.0, "calibrated alpha is negative");
  return PowerParams{fit.intercept, fit.slope, slots};
}

EnergyModel EnergyModel::from_cluster(const cluster::Cluster& cluster) {
  EnergyModel model;
  for (cluster::MachineId id = 0; id < cluster.size(); ++id) {
    const auto& type = cluster.machine(id).type();
    model.set_params(
        id, PowerParams{type.idle_power, type.alpha, type.total_slots()});
  }
  return model;
}

void EnergyModel::set_params(cluster::MachineId machine, PowerParams params) {
  EANT_CHECK(params.slots >= 1, "slots must be positive");
  EANT_CHECK(params.idle >= 0.0 && params.alpha >= 0.0,
             "power parameters must be non-negative");
  if (machine >= params_.size()) params_.resize(machine + 1);
  params_[machine] = params;
}

const PowerParams& EnergyModel::params(cluster::MachineId machine) const {
  EANT_CHECK(machine < params_.size(), "no parameters for machine");
  return params_[machine];
}

Joules EnergyModel::estimate(const mr::TaskReport& report) const {
  const PowerParams& p = params(report.machine);
  Joules total = 0.0;
  for (const auto& w : report.samples) {
    EANT_ASSERT(w.duration >= 0.0, "negative sample window");
    total += (p.idle / p.slots + p.alpha * w.util) * w.duration;
  }
  return total;
}

}  // namespace eant::core
