#include "core/eant_scheduler.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>

#include "audit/auditor.h"
#include "common/error.h"

namespace eant::core {

EAntScheduler::EAntScheduler(EnergyModel model, Rng rng, EAntConfig config)
    : model_(std::move(model)), rng_(rng), config_(config) {
  EANT_CHECK(config.control_interval > 0.0,
             "control interval must be positive");
  EANT_CHECK(config.beta >= 0.0, "beta must be non-negative");
  EANT_CHECK(config.slow_completion_beta == 0.0 ||  // lint-ok: float-eq
                 config.slow_completion_beta >= 1.0,
             "slow-completion beta must be 0 (off) or >= 1");
}

void EAntScheduler::attach(mr::JobTracker& job_tracker) {
  EANT_CHECK(jt_ == nullptr, "E-Ant already attached");
  jt_ = &job_tracker;
  const std::size_t machines = jt_->cluster().size();
  EANT_CHECK(model_.num_machines() >= machines,
             "energy model lacks parameters for some machines");
  table_ = std::make_unique<PheromoneTable>(machines, config_.rho,
                                            config_.tau_init, config_.tau_min);
  convergence_ = ConvergenceTracker(config_.stability_threshold);
  estimated_per_machine_.assign(machines, 0.0);
  jt_->simulator().schedule_periodic(config_.control_interval, [this] {
    control_tick();
    return true;
  });
}

void EAntScheduler::on_job_submitted(mr::JobId job) {
  table_->add_job(job, jt_->job(job).spec().exchange_key());
}

void EAntScheduler::on_job_finished(mr::JobId job) {
  // Retire the colony's trails.  Its reports from the current (partial)
  // interval stay buffered: deposits for removed trails are ignored by
  // apply(), while the interval counts still feed convergence statistics.
  table_->remove_job(job);
}

void EAntScheduler::on_task_completed(const mr::TaskReport& report) {
  const Joules energy = model_.estimate(report);
  estimated_per_machine_[report.machine] += energy;
  interval_reports_.push_back(EstimatedReport{report, energy});

  auto& counts = interval_counts_[report.spec.job];
  if (counts.empty()) counts.assign(jt_->cluster().size(), 0);
  ++counts[report.machine];

  if (config_.slow_completion_beta > 0.0) {
    // Anomalously slow completion (a limping machine's signature): treat it
    // as negative path evidence right away, one evaporation step like a
    // failure.  The mean includes this report, biasing conservatively.
    const auto& js = jt_->job(report.spec.job);
    const Seconds mean = js.mean_completed_duration(report.spec.kind);
    if (mean > 0.0 &&
        report.duration() > config_.slow_completion_beta * mean) {
      table_->penalize(report.spec.job, report.spec.kind, report.machine,
                       1.0 - config_.rho);
    }
  }
}

void EAntScheduler::on_tracker_lost(cluster::MachineId machine) {
  // The dead machine's learned attraction is void: floor its tau in every
  // colony (and every class prior) so no colony declines live machines
  // waiting for a corpse.  Pending interval reports from the machine are
  // kept — the work *was* done and its energy was real.
  table_->evaporate_machine(machine);
}

void EAntScheduler::on_tracker_rejoined(cluster::MachineId machine) {
  // Neutral re-entry: the machine competes again at its rows' current scale
  // and earns rank back through deposits.
  table_->reseed_machine(machine);
}

void EAntScheduler::on_master_recovered(std::uint64_t /*epoch*/) {
  // The partial interval's buffered reports lived in the dead master's
  // memory; re-depositing them after the failover would double-count task
  // energy across epochs (the auditor checks exactly that on the commit
  // side), so both ablation modes drop the buffers.
  interval_reports_.clear();
  interval_counts_.clear();
  const std::vector<mr::JobId> active = jt_->active_jobs();
  if (config_.pheromone_snapshot_on_master_recovery) {
    // Rewind to the trail state persisted at the last control tick; only
    // the intra-interval learning is lost.
    table_->restore(tick_snapshot_);
    // Colonies that finished between that tick and the crash were
    // resurrected by the restore: retire them again.
    for (const auto& [key, row] : tick_snapshot_.trails) {
      if (std::find(active.begin(), active.end(), key.first) == active.end()) {
        table_->remove_job(key.first);
      }
    }
  } else {
    // Amnesia ablation: the trail died with the master.  Every live colony
    // restarts at tau_init, and the class priors are gone too.
    table_ = std::make_unique<PheromoneTable>(
        table_->num_machines(), config_.rho, config_.tau_init,
        config_.tau_min);
  }
  // Colonies submitted after the snapshot (under amnesia, all of them) need
  // fresh trails before the next heartbeat samples them.
  for (mr::JobId job : active) {
    if (!table_->has_job(job)) {
      table_->add_job(job, jt_->job(job).spec().exchange_key());
    }
  }
}

void EAntScheduler::on_task_failed(const mr::TaskSpec& spec,
                                   cluster::MachineId machine) {
  // A failed attempt is negative evidence about the (job, machine) path —
  // apply one evaporation step immediately rather than waiting for the
  // control tick.
  table_->penalize(spec.job, spec.kind, machine, 1.0 - config_.rho);
}

void EAntScheduler::on_fetch_failed(mr::JobId job,
                                    cluster::MachineId source) {
  // The source's map output is unreachable: its path is degraded even
  // though the machine itself heartbeats fine.  Penalize the map trail so
  // new work routes around the bad link until it heals and deposits rebuild
  // the attraction.
  table_->penalize(job, mr::TaskKind::kMap, source, 1.0 - config_.rho);
}

void EAntScheduler::control_tick() {
  // The scheduler runs inside the master process: while the JobTracker is
  // down there is no one to tick.  The interval whose tick lands in an
  // outage is simply lost, like the edit-log entries past the checkpoint.
  if (!jt_->master_up()) return;
  ++intervals_;
  if (!interval_reports_.empty()) {
    DeltaMap deposits = compute_deposits(
        interval_reports_, jt_->cluster().size(), config_.energy_floor);
    if (config_.machine_exchange) {
      deposits = machine_level_exchange(deposits, jt_->cluster());
    }
    const auto class_key = [this](mr::JobId j) {
      return jt_->job(j).spec().exchange_key();
    };
    if (config_.job_exchange) {
      deposits = job_level_exchange(deposits, class_key);
    }
    if (config_.negative_feedback) {
      deposits = apply_negative_feedback(deposits, class_key);
    }
    deposits = center_deposits(deposits, config_.tau_init);
    table_->apply(deposits);
  }

  const Seconds now = jt_->simulator().now();
  for (const auto& [job, counts] : interval_counts_) {
    convergence_.record_interval(job, jt_->job(job).submit_time(), now,
                                 counts);
  }

  interval_reports_.clear();
  interval_counts_.clear();

  if (config_.pheromone_snapshot_on_master_recovery) {
    // Persist the trail alongside this tick (the failover snapshot): a
    // master crash rewinds the table to here, not to scratch.
    tick_snapshot_ = table_->snapshot();
  }

  if (auditor_) {
    auditor_->record(audit::Record::kControlTick, intervals_);
    audit_pheromone_bounds();
  }
}

void EAntScheduler::audit_pheromone_bounds() {
  // MMAS floor + blow-up ceiling over every live trail value: a tau below
  // tau_min means apply()/penalize() skipped the clamp somewhere; a huge or
  // non-finite tau means a deposit computation diverged.  Tiny slack under
  // the floor absorbs the clamp's own rounding.
  const double lo = table_->tau_min() * (1.0 - 1e-12);
  const double hi = auditor_->config().pheromone_ceiling;
  for (mr::JobId job : jt_->active_jobs()) {
    if (!table_->has_job(job)) continue;
    for (mr::TaskKind kind : {mr::TaskKind::kMap, mr::TaskKind::kReduce}) {
      const std::vector<double> trail = table_->trail(job, kind);
      for (std::size_t m = 0; m < trail.size(); ++m) {
        std::ostringstream context;
        context << "tau(job=" << job << ", " << mr::kind_name(kind)
                << ", machine=" << m << ')';
        auditor_->check_in_range("pheromone-bounds", trail[m], lo, hi,
                                 context.str());
      }
    }
  }
}

double EAntScheduler::eta_for(mr::JobId job) const {
  const double s_pool = static_cast<double>(jt_->total_slots());
  const double s_min = fair_share(jt_->total_slots(),
                                  jt_->active_jobs().size());
  const double s_occ =
      static_cast<double>(jt_->job(job).occupied_slots());
  return fairness_eta(s_min, s_occ, s_pool);
}

std::optional<mr::JobId> EAntScheduler::select_job(cluster::MachineId machine,
                                                   mr::TaskKind kind) {
  EANT_CHECK(jt_ != nullptr, "scheduler not attached");
  const std::vector<mr::JobId> runnable = jt_->runnable_jobs(kind);
  if (runnable.empty()) return std::nullopt;

  // Eq. 7: a job with a node-local pending split on this machine takes the
  // "infinite" eta branch — realised as the eta cap, so after the beta
  // exponent of Eq. 8 it becomes a strong but finite boost (the same cap a
  // real implementation needs to keep the weights representable).  All
  // other jobs carry the fairness eta.
  auto eta = [this, machine, kind](mr::JobId j) {
    if (kind == mr::TaskKind::kMap) {
      if (jt_->job(j).has_local_pending_map(machine)) return kLocalityEta;
      // Middle tier on multi-rack topologies: a rack-local split avoids the
      // oversubscribed core but still crosses a wire (false on a flat rack).
      if (jt_->job(j).has_rack_local_pending_map(machine)) {
        return kRackLocalityEta;
      }
    }
    return eta_for(j);
  };
  // Pull-model realisation of Eq. 3/8's machine dimension: the policy says
  // what fraction of job j's tasks machine m should host, namely
  // tau(j,m)/row_sum.  A greedy pull would ignore that and saturate every
  // slot, so a sampled job accepts the slot with probability proportional
  // to m's normalised pheromone for that job (scaled so the fleet average
  // is 1 — with uniform trails every slot is accepted, i.e. the first
  // interval follows Hadoop's default behaviour, Sec. III-A).  A job that
  // declines frees the slot for the next-sampled job; when every runnable
  // job declines, the slot idles until the next heartbeat (3 s) — this is
  // how E-Ant sheds load from energy-inefficient machines (Fig. 8(b)).
  //
  // Shedding must stay work-conserving: a declined slot only pays off when
  // a better machine can pick the task up immediately — otherwise the
  // whole fleet idles (>1 kW of idle power here) while the task waits, and
  // the makespan stretch burns far more than the per-task delta saves.  So
  // a sampled job may decline machine m only while some machine with a
  // meaningfully higher trail for it has a free slot of this kind; the
  // declined work is then picked up within one heartbeat (3 s).
  // The decline decision races against other assignments: the free slot on
  // the better machine may be gone before its next heartbeat claims the
  // declined work.  At high fleet occupancy those races strand tasks in
  // limbo and inflate completion times, so occupancy raises the acceptance
  // floor — full steering on an idle fleet, Hadoop-default behaviour at
  // saturation.
  const double total_kind_slots = static_cast<double>(
      kind == mr::TaskKind::kMap ? jt_->cluster().total_map_slots()
                                 : jt_->cluster().total_reduce_slots());
  const double occupancy =
      1.0 - static_cast<double>(jt_->total_free_slots(kind)) /
                std::max(total_kind_slots, 1.0);
  std::vector<mr::JobId> candidates = runnable;
  while (!candidates.empty()) {
    const auto choice =
        sample_job(*table_, rng_, candidates, kind, machine, eta, config_.beta);
    EANT_ASSERT(choice.has_value(), "sampler returned nothing for candidates");
    // Brownout: declining slots to steer energy is shed load we cannot
    // afford while saturated — take the sampled job and keep the slot busy.
    if (overload_relaxed_) return choice;
    // A decline is work-conserving in two situations: another runnable job
    // remains to take this very slot (a *trade*: under a deep backlog every
    // slot stays busy either way, but swapping a CPU-heavy task off a
    // steep-slope machine for an IO-heavy one still lowers the fleet's
    // power draw), or a better machine has a free slot to pick the task up
    // within a heartbeat.
    const bool has_trade = candidates.size() > 1;
    const bool has_better = better_machine_free(*choice, kind, machine);
    if (!has_trade && !has_better) return choice;
    // Acceptance is proportional to this machine's standing against the
    // colony's best-ranked machine.  (Normalising by the row mean instead
    // would let trails floored by negative feedback drag the mean down and
    // make every remaining machine look above-average.)
    const double best = table_->row_max(*choice, kind);
    EANT_ASSERT(best > 0.0, "pheromone trail must stay positive");
    const double normalized = table_->tau(*choice, kind, machine) / best;
    double floor = config_.min_acceptance;
    if (kind == mr::TaskKind::kMap) {
      if (jt_->job(*choice).has_local_pending_map(machine)) {
        floor = std::max(floor, config_.local_acceptance_floor);
      } else if (jt_->job(*choice).has_rack_local_pending_map(machine)) {
        floor = std::max(floor, config_.rack_local_acceptance_floor);
      }
    }
    if (!has_trade) {
      // The free-slot decline races other assignments (the slot may be
      // taken before the better machine's next heartbeat); the race gets
      // costlier as the fleet fills, so occupancy raises the floor.
      // Squaring keeps it gentle at the paper's moderate utilisations.
      floor = std::max(floor, occupancy * occupancy);
    }
    const double steered = std::clamp(
        std::pow(normalized, config_.acceptance_sharpness), floor, 1.0);
    if (rng_.uniform() <= steered) return choice;
    candidates.erase(std::find(candidates.begin(), candidates.end(), *choice));
  }
  return std::nullopt;
}

bool EAntScheduler::better_machine_free(mr::JobId job, mr::TaskKind kind,
                                        cluster::MachineId machine) const {
  const double own_tau = table_->tau(job, kind, machine);
  const std::size_t n = jt_->cluster().size();
  for (cluster::MachineId m = 0; m < n; ++m) {
    if (m == machine) continue;
    if (!jt_->tracker_available(m)) continue;
    if (jt_->tracker(m).free_slots(kind) <= 0) continue;
    if (table_->tau(job, kind, m) > kBetterMachineMargin * own_tau) {
      return true;
    }
  }
  return false;
}

}  // namespace eant::core
