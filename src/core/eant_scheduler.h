// E-Ant: the paper's heterogeneity-aware, energy-minimising task assigner
// (Sec. III & IV), implemented as a pluggable Scheduler.
//
// Per control interval (default 5 minutes, Sec. V-B):
//   1. the task analyzer estimates the energy of every task completed in the
//      interval from its TaskTracker utilisation samples (Eq. 2);
//   2. deposits are computed per colony (Eq. 5), smoothed by the
//      machine-level and job-level exchange strategies (Sec. IV-D), and
//      cross-colony negative feedback is applied (Eq. 6);
//   3. the pheromone table evaporates and absorbs the deposits (Eq. 4).
// Between ticks, every free slot offered by a heartbeat is filled by
// sampling a job with probability proportional to
// tau(j,kind,m)/row_sum * eta(j)^beta (Eq. 8), with absolute priority for
// jobs holding node-local data (Eq. 7, when beta > 0).

#pragma once

#include <map>
#include <vector>

#include "common/rng.h"
#include "core/aco.h"
#include "core/convergence.h"
#include "core/energy_model.h"
#include "core/exchange.h"
#include "core/heuristic.h"
#include "core/pheromone.h"
#include "mapreduce/job_tracker.h"
#include "mapreduce/scheduler.h"

namespace eant::core {

/// E-Ant tunables (defaults are the paper's choices).
struct EAntConfig {
  Seconds control_interval = 300.0;  ///< 5 minutes (Sec. V-B)
  double rho = 0.5;                  ///< evaporation (the worked example's value)
  double beta = 0.1;                 ///< locality/fairness weight (Fig. 12(a) knee)
  double tau_init = 1.0;
  double tau_min = 0.05;
  bool machine_exchange = true;      ///< Sec. IV-D machine-level strategy
  bool job_exchange = true;          ///< Sec. IV-D job-level strategy
  bool negative_feedback = true;     ///< Eq. 6 cross-colony update
  double stability_threshold = 0.8;  ///< Sec. VI-C convergence definition
  Joules energy_floor = 1.0;         ///< guards Eq. 5 ratios

  /// Floor of the slot-acceptance probability (see select_job): even the
  /// worst-ranked machine keeps exploring occasionally, the acceptance-side
  /// analogue of the tau floor.
  double min_acceptance = 0.05;

  /// Exponent sharpening the slot-acceptance probability.  A machine whose
  /// slots turn over faster is offered tasks more often, which counteracts
  /// proportional routing; sharpening restores the pheromone ratio's
  /// authority over placement.
  double acceptance_sharpness = 3.0;

  /// Acceptance floor when the sampled job has a node-local pending split
  /// on the offering machine: Eq. 7 ranks locality above everything, and a
  /// declined local slot usually turns into a remote read elsewhere, so
  /// local offers decline only half-heartedly.
  double local_acceptance_floor = 0.5;

  /// Acceptance floor for a rack-local offer on a multi-rack topology —
  /// between the node-local floor and min_acceptance, because a declined
  /// rack-local slot risks a cross-rack read over the oversubscribed
  /// uplink.  Inert with one flat rack.
  double rack_local_acceptance_floor = 0.25;

  /// Master-failover ablation (does the ant trail survive amnesia?): when
  /// true (default), E-Ant snapshots its pheromone table at every control
  /// tick — modeling the trail being persisted alongside the JobTracker's
  /// edit-log — and a master recovery restores the last tick's snapshot,
  /// losing only the intra-interval learning.  When false the trail dies
  /// with the master: recovery reseeds every live colony at tau_init and
  /// the fleet relearns its ranking from scratch.
  bool pheromone_snapshot_on_master_recovery = true;

  /// Optional slow-completion feedback: a task whose duration exceeds this
  /// multiple of its job's mean completed duration depresses the
  /// (job, kind, machine) trail immediately, like a failure, instead of
  /// waiting for the energy deposits to starve it.  0 disables (default):
  /// E-Ant's energy loop already routes around limping machines — their
  /// tasks burn more energy, so their deposits shrink — and the fail-slow
  /// tests prove that collapse happens without this explicit signal.
  double slow_completion_beta = 0.0;
};

/// Realisation of Eq. 7's "infinite" eta for data-local candidates: the cap
/// at which the heuristic saturates (1000^beta ~= 2 at the paper's beta=0.1).
constexpr double kLocalityEta = 1e3;

/// Intermediate eta tier for rack-local candidates on a multi-rack topology
/// (the paper's testbed was one flat rack, so Eq. 7 had no middle branch):
/// the geometric mean of the local boost and no boost, i.e. sqrt(kLocalityEta).
constexpr double kRackLocalityEta = 31.6227766016838;

/// A machine only counts as a "better" placement (justifying a declined
/// slot) when its trail exceeds the offering machine's by this margin.
constexpr double kBetterMachineMargin = 1.02;

/// The adaptive task assigner.
class EAntScheduler final : public mr::Scheduler {
 public:
  EAntScheduler(EnergyModel model, Rng rng, EAntConfig config = {});

  void attach(mr::JobTracker& job_tracker) override;
  void on_job_submitted(mr::JobId job) override;
  void on_job_finished(mr::JobId job) override;
  void on_task_completed(const mr::TaskReport& report) override;
  void on_tracker_lost(cluster::MachineId machine) override;
  void on_tracker_rejoined(cluster::MachineId machine) override;
  void on_task_failed(const mr::TaskSpec& spec,
                      cluster::MachineId machine) override;
  void on_master_recovered(std::uint64_t epoch) override;
  void on_fetch_failed(mr::JobId job, cluster::MachineId source) override;

  /// Brownout: under Saturated/Critical overload the decline loop is
  /// suspended — energy steering by shedding slots is a luxury when the
  /// backlog is compounding, so select_job accepts the sampled choice
  /// outright (Hadoop-default behaviour, the paper's saturation limit).
  /// Only fired when admission is enabled, so the skipped acceptance draw
  /// cannot perturb a default run's RNG stream.
  void on_overload_state(mr::OverloadState state) override {
    overload_relaxed_ = state >= mr::OverloadState::kSaturated;
  }

  std::optional<mr::JobId> select_job(cluster::MachineId machine,
                                      mr::TaskKind kind) override;
  std::string name() const override { return "E-Ant"; }

  // --- observability -----------------------------------------------------------

  const PheromoneTable& pheromone() const { return *table_; }
  const ConvergenceTracker& convergence() const { return convergence_; }
  const EAntConfig& config() const { return config_; }
  std::size_t intervals() const { return intervals_; }

  /// Cumulative Eq. 2 energy estimates per machine (the task analyzer's view
  /// of where energy went).
  const std::vector<Joules>& estimated_energy_per_machine() const {
    return estimated_per_machine_;
  }

  /// Attaches (or, with nullptr, detaches) the invariant auditor: after
  /// every control tick it re-checks the pheromone bounds (tau >= tau_min,
  /// finite, below the blow-up ceiling) across all live trails.
  void set_auditor(audit::InvariantAuditor* auditor) { auditor_ = auditor; }

 private:
  void control_tick();
  void audit_pheromone_bounds();
  double eta_for(mr::JobId job) const;
  bool better_machine_free(mr::JobId job, mr::TaskKind kind,
                           cluster::MachineId machine) const;

  EnergyModel model_;
  Rng rng_;
  EAntConfig config_;

  mr::JobTracker* jt_ = nullptr;
  audit::InvariantAuditor* auditor_ = nullptr;
  std::unique_ptr<PheromoneTable> table_;  // sized at attach time
  ConvergenceTracker convergence_;

  std::vector<EstimatedReport> interval_reports_;
  std::map<mr::JobId, std::vector<std::size_t>> interval_counts_;
  std::vector<Joules> estimated_per_machine_;
  std::size_t intervals_ = 0;
  bool overload_relaxed_ = false;
  /// Trail state persisted at the last control tick (the failover snapshot).
  PheromoneTable::Snapshot tick_snapshot_;
};

}  // namespace eant::core
