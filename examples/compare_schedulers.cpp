// Compare every scheduler (FIFO, Fair, Tarazu, LATE, E-Ant) on the same
// workload and cluster: energy, makespan, mean completion time, locality.
//
//   ./compare_schedulers [num_jobs] [seed]

#include <cstdio>

#include "common/rng.h"
#include "common/table.h"
#include "exp/builders.h"
#include "exp/cli.h"
#include "exp/runner.h"
#include "workload/msd.h"

using namespace eant;

int main(int argc, char** argv) {
  exp::Cli cli(argc, argv, "compare_schedulers [num_jobs] [seed]");
  const int num_jobs = static_cast<int>(cli.int_arg("num_jobs", 30, 1, 100000));
  const auto seed =
      static_cast<std::uint64_t>(cli.int_arg("seed", 5, 0, 1000000000L));
  cli.done();

  workload::MsdConfig wl;
  wl.num_jobs = num_jobs;
  wl.input_scale = 1.0 / 200.0;
  wl.mean_interarrival = 60.0;
  Rng rng(seed);
  const auto jobs = workload::MsdGenerator(wl).generate(rng);

  TextTable t("scheduler comparison — " + std::to_string(num_jobs) +
              " MSD jobs on the paper fleet");
  t.set_header({"scheduler", "energy (kJ)", "vs Fair", "makespan (s)",
                "mean JCT (s)", "locality"});

  double fair_energy = 0.0;
  for (exp::SchedulerKind kind :
       {exp::SchedulerKind::kFair, exp::SchedulerKind::kFifo,
        exp::SchedulerKind::kCapacity, exp::SchedulerKind::kTarazu,
        exp::SchedulerKind::kLate, exp::SchedulerKind::kEAnt}) {
    exp::RunConfig cfg;
    cfg.seed = seed;
    cfg.noise = mr::NoiseConfig::typical();
    cfg.eant.control_interval = 120.0;
    cfg.eant.negative_feedback = false;  // see DESIGN.md / EXPERIMENTS.md
    exp::Run run(exp::paper_fleet(), kind, cfg);
    run.submit(jobs);
    run.execute();
    const auto m = run.metrics();
    if (kind == exp::SchedulerKind::kFair) fair_energy = m.total_energy;
    t.add_row({m.scheduler_name, TextTable::num(m.total_energy_kj(), 0),
               TextTable::num(
                   100.0 * (m.total_energy - fair_energy) / fair_energy, 1) +
                   "%",
               TextTable::num(m.makespan, 0),
               TextTable::num(m.mean_completion(), 0),
               TextTable::num(m.locality_fraction(), 2)});
  }
  t.print();
  return 0;
}
