// Replay the MicroSoft-Derived workload (Table III) under E-Ant and watch
// the scheduler adapt: per-control-interval energy estimates, convergence
// of long jobs and the final placement by machine type and application.
//
//   ./msd_replay [num_jobs] [seed]

#include <cstdio>

#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/eant_scheduler.h"
#include "exp/builders.h"
#include "exp/cli.h"
#include "exp/runner.h"
#include "workload/msd.h"

using namespace eant;

int main(int argc, char** argv) {
  exp::Cli cli(argc, argv, "msd_replay [num_jobs] [seed]");
  const int num_jobs = static_cast<int>(cli.int_arg("num_jobs", 40, 1, 100000));
  const auto seed =
      static_cast<std::uint64_t>(cli.int_arg("seed", 9, 0, 1000000000L));
  cli.done();

  workload::MsdConfig wl;
  wl.num_jobs = num_jobs;
  wl.input_scale = 1.0 / 200.0;
  wl.mean_interarrival = 60.0;
  Rng rng(seed);
  const auto jobs = workload::MsdGenerator(wl).generate(rng);

  exp::RunConfig cfg;
  cfg.seed = seed;
  cfg.noise = mr::NoiseConfig::typical();
  cfg.eant.control_interval = 120.0;
  cfg.eant.negative_feedback = false;
  exp::Run run(exp::paper_fleet(), exp::SchedulerKind::kEAnt, cfg);
  run.submit(jobs);
  run.execute();

  const auto m = run.metrics();
  const auto* eant = run.eant();

  std::printf("replayed %d MSD jobs: makespan %.0f s, energy %.0f kJ, "
              "%zu control intervals\n\n",
              num_jobs, m.makespan, m.total_energy_kj(), eant->intervals());

  TextTable placement("final placement: completed tasks by type and app");
  placement.set_header({"machine type", "Wordcount", "Grep", "Terasort",
                        "energy (kJ)", "avg util"});
  auto count = [](const exp::TypeMetrics& t, const char* app) {
    const auto it = t.tasks_by_app.find(app);
    return it == t.tasks_by_app.end() ? std::size_t{0} : it->second;
  };
  for (const auto& t : m.by_type) {
    placement.add_row({t.type_name, std::to_string(count(t, "Wordcount")),
                       std::to_string(count(t, "Grep")),
                       std::to_string(count(t, "Terasort")),
                       TextTable::num(t.energy / 1000.0, 0),
                       TextTable::num(t.avg_utilization, 3)});
  }
  placement.print();

  // Convergence of the jobs that lived long enough to be tracked.
  std::size_t converged = 0, tracked = 0;
  OnlineStats conv_time;
  for (const auto& j : m.jobs) {
    if (auto t = eant->convergence().convergence_time(j.id)) {
      ++converged;
      conv_time.add(*t / 60.0);
    }
    ++tracked;
  }
  std::printf("\nconvergence (80%%-revisit rule): %zu of %zu jobs converged",
              converged, tracked);
  if (converged > 0) {
    std::printf(", mean time-to-stability %.1f min", conv_time.mean());
  }
  std::printf("\n");
  return 0;
}
