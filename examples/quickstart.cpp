// Quickstart: build a small heterogeneous cluster, submit a few MapReduce
// jobs, run them under the E-Ant scheduler and read the results.
//
//   ./quickstart
//
// This walks through the library's main entry points: cluster construction
// from the machine catalog, the Run harness (simulator + HDFS + JobTracker
// + scheduler wiring), job submission and metric collection.

#include <cstdio>

#include "cluster/catalog.h"
#include "common/table.h"
#include "exp/builders.h"
#include "exp/runner.h"

using namespace eant;

int main() {
  // 1. Describe the cluster: two Core i7 desktops, one PowerEdge T420 and
  //    one Atom micro-server (types from the paper's Table I / Sec. V-B).
  const exp::ClusterBuilder cluster = exp::machines({
      cluster::catalog::desktop(),
      cluster::catalog::desktop(),
      cluster::catalog::t420(),
      cluster::catalog::atom(),
  });

  // 2. Configure the run: seed, noise level and E-Ant's control interval.
  exp::RunConfig config;
  config.seed = 1;
  config.noise = mr::NoiseConfig::typical();
  config.eant.control_interval = 60.0;

  // 3. Wire everything together with the E-Ant scheduler.
  exp::Run run(cluster, exp::SchedulerKind::kEAnt, config);

  // 4. Submit a small mixed workload: one job per PUMA application.
  std::vector<workload::JobSpec> jobs;
  Seconds t = 0.0;
  for (workload::AppKind app : workload::all_apps()) {
    auto job = exp::single_job(app, /*input_mb=*/64.0 * 16, /*reduces=*/2);
    job.submit_time = t;
    t += 30.0;
    jobs.push_back(job);
  }
  run.submit(jobs);

  // 5. Execute to completion and inspect the results.
  run.execute();
  const exp::RunMetrics m = run.metrics();

  std::printf("scheduler: %s\n", m.scheduler_name.c_str());
  std::printf("makespan: %.1f s, total energy: %.1f kJ, locality: %.0f%%\n\n",
              m.makespan, m.total_energy_kj(), 100.0 * m.locality_fraction());

  TextTable jobs_table("job results");
  jobs_table.set_header({"job", "completion (s)", "maps", "reduces"});
  for (const auto& j : m.jobs) {
    jobs_table.add_row({j.class_name, TextTable::num(j.completion_time, 1),
                        std::to_string(j.maps), std::to_string(j.reduces)});
  }
  jobs_table.print();

  TextTable machines_table("per machine type");
  machines_table.set_header({"type", "energy (kJ)", "avg utilisation"});
  for (const auto& tm : m.by_type) {
    machines_table.add_row({tm.type_name,
                            TextTable::num(tm.energy / 1000.0, 1),
                            TextTable::num(tm.avg_utilization, 3)});
  }
  machines_table.print();
  return 0;
}
