// Identify a machine's power model the way the paper does (Sec. IV-B):
// drive the machine at different load levels, sample (utilisation, wall
// power) pairs from a metered run, and fit P = P_idle + alpha * u with
// ordinary least squares.  The fitted parameters feed core::EnergyModel.
//
//   ./energy_calibration

#include <cstdio>

#include "cluster/catalog.h"
#include "cluster/cluster.h"
#include "cluster/power_meter.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/energy_model.h"
#include "sim/simulator.h"

using namespace eant;

namespace {

/// Meters one machine while stepping its load through several plateaus and
/// returns the collected (utilisation, power) samples.
std::vector<core::CalibrationSample> profile(const cluster::MachineType& type) {
  sim::Simulator sim;
  cluster::Cluster cluster(sim);
  cluster.add_machines(type, 1);
  auto& machine = cluster.machine(0);

  // Load plateaus: 0%, 25%, 50%, 75%, 100% of the cores, 60 s each.
  for (int step = 0; step <= 4; ++step) {
    const double target = 0.25 * step * type.cores;
    sim.schedule_at(step * 60.0, [&machine, target] {
      machine.adjust_demand(target - machine.demand_cores());
    });
  }

  // Sample (utilisation, wall power) once per second; a real rig jitters,
  // so light measurement noise is added to the meter reading.
  auto rng = std::make_shared<Rng>(3);
  auto samples = std::make_shared<std::vector<core::CalibrationSample>>();
  sim.schedule_periodic(1.0, [&machine, rng, samples] {
    samples->push_back(
        {machine.utilization(), machine.power() + rng->normal(0.0, 1.0)});
    return true;
  });
  sim.run_until(5 * 60.0);
  return *samples;
}

}  // namespace

int main() {
  TextTable t("least-squares power-model identification");
  t.set_header({"machine", "true idle (W)", "fit idle (W)", "true alpha (W)",
                "fit alpha (W)", "R^2"});
  for (const auto& type :
       {cluster::catalog::desktop(), cluster::catalog::t110(),
        cluster::catalog::xeon_e5(), cluster::catalog::atom()}) {
    const auto samples = profile(type);
    const core::PowerParams fit =
        core::calibrate(samples, type.total_slots());
    std::vector<double> x, y;
    for (const auto& s : samples) {
      x.push_back(s.util);
      y.push_back(s.power);
    }
    const LineFit lf = least_squares(x, y);
    t.add_row({type.name, TextTable::num(type.idle_power, 1),
               TextTable::num(fit.idle, 1), TextTable::num(type.alpha, 1),
               TextTable::num(fit.alpha, 1), TextTable::num(lf.r_squared, 4)});
  }
  t.print();
  std::puts(
      "\nfitted parameters plug straight into core::EnergyModel::set_params()");
  return 0;
}
