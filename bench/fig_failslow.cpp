// Fail-slow comparison (extension) — gray failures instead of crashes: 1, 2
// or 4 machines silently drop to 30% CPU / 50% disk speed early in the run
// and never recover.  Nothing times out, nothing blacklists; the only
// symptom is stretched task durations — the limping nodes burn nearly full
// power for far longer per task, the classic fail-slow wasted-energy
// signature.
//
// Fair (blind), LATE (progress-rate speculation) and E-Ant run the MSD
// workload under each limper count with the detection stack enabled
// (progress-rate health scores, quarantine, hardened speculation).  Reported
// per cell: makespan stretch, energy overhead, wasted energy, the share of
// tasks the limping nodes completed, and quarantine episodes.  E-Ant's
// energy feedback depresses the limpers' trails on its own — their tasks
// cost more Eq. 2 energy, so deposits shrink — which shows up as a smaller
// limper task share than Fair's even before quarantine bites.
//
// Usage: fig_failslow [quick]
//   quick: small Terasort batch instead of the full MSD mix (CI smoke)

#include <cstdio>

#include "bench_common.h"
#include "common/table.h"
#include "exp/cli.h"

using namespace eant;

namespace {

struct Cell {
  std::string scheduler;
  int limpers = 0;
  exp::RunMetrics metrics;
  double limper_task_share = 0.0;  ///< completed-task share of limping nodes
};

/// Evenly spread victims across the fleet so every scheduler faces the same
/// limping machines (ids, not load-dependent picks: cross-scheduler cells
/// must be comparable).
std::vector<cluster::MachineId> victims(std::size_t machines, int count) {
  std::vector<cluster::MachineId> out;
  for (int k = 0; k < count; ++k) {
    out.push_back((k * machines) / 4 + 1);
  }
  return out;
}

Cell run_cell(exp::SchedulerKind kind,
              const std::vector<workload::JobSpec>& jobs, int limpers,
              std::size_t machines, Seconds horizon) {
  exp::RunConfig cfg = bench::run_config();
  // The hardened-speculation knobs are off by default (digest compatibility);
  // this bench is their showcase.
  cfg.job_tracker.speculative_progress_ranking = true;
  cfg.job_tracker.max_speculative_per_node = 2;

  std::vector<cluster::MachineId> slow = victims(machines, limpers);
  for (cluster::MachineId v : slow) {
    // Onset at 20% of the fault-free makespan, lasting far past the end of
    // any plausible faulted run: the limp is effectively permanent.
    cfg.faults.slow_for(v, 0.2 * horizon, 50.0 * horizon, 0.3, 0.5);
  }

  exp::Run run(exp::paper_fleet(), kind, cfg);
  run.submit(jobs);
  run.execute();

  Cell cell;
  cell.scheduler = exp::scheduler_kind_name(kind);
  cell.limpers = limpers;
  std::size_t on_limpers = 0;
  std::size_t total = 0;
  for (cluster::MachineId m = 0; m < machines; ++m) {
    const auto& t = run.job_tracker().tracker(m);
    const std::size_t c =
        t.completed(mr::TaskKind::kMap) + t.completed(mr::TaskKind::kReduce);
    total += c;
    for (cluster::MachineId v : slow) {
      if (v == m) on_limpers += c;
    }
  }
  cell.limper_task_share =
      total > 0 ? static_cast<double>(on_limpers) / static_cast<double>(total)
                : 0.0;
  cell.metrics = run.metrics();
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  exp::Cli cli(argc, argv, "fig_failslow [quick]");
  const bool quick = cli.keyword_arg("quick");
  cli.done();

  const std::vector<workload::JobSpec> jobs =
      quick ? exp::job_batch(workload::AppKind::kTerasort, 3000.0, 8, 3)
            : bench::msd_workload();

  const exp::SchedulerKind kinds[] = {exp::SchedulerKind::kFair,
                                      exp::SchedulerKind::kLate,
                                      exp::SchedulerKind::kEAnt};

  // Fault-free baselines double as the horizon calibration.
  std::vector<Cell> cells;
  std::vector<exp::RunMetrics> baselines;
  std::size_t machines = 0;
  for (exp::SchedulerKind kind : kinds) {
    exp::RunConfig cfg = bench::run_config();
    cfg.job_tracker.speculative_progress_ranking = true;
    cfg.job_tracker.max_speculative_per_node = 2;
    exp::Run base(exp::paper_fleet(), kind, cfg);
    machines = base.cluster().size();
    base.submit(jobs);
    base.execute();
    baselines.push_back(base.metrics());
  }
  const Seconds horizon = baselines.front().makespan;

  for (std::size_t s = 0; s < std::size(kinds); ++s) {
    for (int limpers : {1, 2, 4}) {
      cells.push_back(run_cell(kinds[s], jobs, limpers, machines, horizon));
    }
  }

  TextTable t(
      "Fail-slow: 1/2/4 machines limping at 30% CPU from 20% of the run");
  t.set_header({"scheduler", "limpers", "makespan (s)", "stretch",
                "energy (kJ)", "overhead", "wasted (kJ)", "limper share",
                "quarantines", "jobs failed"});
  for (std::size_t s = 0; s < std::size(kinds); ++s) {
    const exp::RunMetrics& base = baselines[s];
    for (int limpers : {1, 2, 4}) {
      const Cell* cell = nullptr;
      for (const auto& c : cells) {
        if (c.scheduler == exp::scheduler_kind_name(kinds[s]) &&
            c.limpers == limpers) {
          cell = &c;
        }
      }
      const exp::RunMetrics& m = cell->metrics;
      t.add_row(
          {cell->scheduler, std::to_string(limpers),
           TextTable::num(m.makespan, 0),
           TextTable::num(100.0 * (m.makespan - base.makespan) / base.makespan,
                          1) +
               "%",
           TextTable::num(m.total_energy_kj(), 0),
           TextTable::num(100.0 * (m.total_energy - base.total_energy) /
                              base.total_energy,
                          1) +
               "%",
           TextTable::num(m.wasted_energy_kj(), 1),
           TextTable::num(100.0 * cell->limper_task_share, 1) + "%",
           std::to_string(m.quarantine_episodes),
           std::to_string(m.jobs_failed)});
    }
  }
  t.print();
  std::puts(
      "\nlimper share = fraction of all completed tasks that ran on the "
      "limping nodes; a limping node\nburns near-full power for 3.3x longer "
      "per task, so routing around it is an energy decision.\nE-Ant's "
      "deposits shrink with the limpers' Eq. 2 energy, collapsing their "
      "trails without any\nexplicit health signal; quarantine and "
      "progress-ranked speculation then cap the residual damage.");
  return 0;
}
