// Reproduces Table III: the MicroSoft-Derived workload's class structure.
// Generates the canonical 87-job workload and reports, per size class, the
// job share and the (scaled) input-size, map-count and reduce-count ranges,
// next to the paper's unscaled figures.

#include <cstdio>
#include <map>

#include "bench_common.h"
#include "common/table.h"
#include "exp/cli.h"

using namespace eant;

int main(int argc, char** argv) {
  exp::Cli cli(argc, argv, "table3_msd");
  cli.done();

  const auto jobs = bench::msd_workload();
  const auto cfg = bench::msd_config();

  struct ClassAgg {
    int count = 0;
    double min_mb = 1e18, max_mb = 0;
    int min_maps = 1 << 30, max_maps = 0;
    int min_red = 1 << 30, max_red = 0;
  };
  std::map<workload::SizeClass, ClassAgg> agg;
  for (const auto& j : jobs) {
    auto& a = agg[j.size_class];
    ++a.count;
    a.min_mb = std::min(a.min_mb, j.input_mb);
    a.max_mb = std::max(a.max_mb, j.input_mb);
    const int maps = static_cast<int>(std::ceil(j.input_mb / kHdfsBlockMb));
    a.min_maps = std::min(a.min_maps, maps);
    a.max_maps = std::max(a.max_maps, maps);
    a.min_red = std::min(a.min_red, j.num_reduces);
    a.max_red = std::max(a.max_red, j.num_reduces);
  }

  TextTable t("Table III: MSD workload characteristics (scale 1/" +
              TextTable::num(1.0 / cfg.input_scale, 0) + ", " +
              std::to_string(jobs.size()) + " jobs)");
  t.set_header({"size", "% jobs (paper)", "% jobs (ours)", "input (GB)",
                "# maps", "# reduces"});
  const struct {
    workload::SizeClass cls;
    const char* name;
    const char* paper_share;
  } rows[] = {{workload::SizeClass::kSmall, "Small", "40% (4/7 renorm.)"},
              {workload::SizeClass::kMedium, "Medium", "20% (2/7 renorm.)"},
              {workload::SizeClass::kLarge, "Large", "10% (1/7 renorm.)"}};
  for (const auto& r : rows) {
    const auto& a = agg[r.cls];
    t.add_row({r.name, r.paper_share,
               TextTable::num(100.0 * a.count / jobs.size(), 1) + "%",
               TextTable::num(a.min_mb / 1024.0, 2) + "-" +
                   TextTable::num(a.max_mb / 1024.0, 2),
               std::to_string(a.min_maps) + "-" + std::to_string(a.max_maps),
               std::to_string(a.min_red) + "-" + std::to_string(a.max_red)});
  }
  t.print();
  std::puts(
      "paper (unscaled): Small 1-100 GB / 16-1600 maps / 4-128 reduces; "
      "Medium 0.1-1 TB / 1600-16000 / 128-256; Large 1-10 TB / "
      "16000-160000 / 256-1024");
  return 0;
}
