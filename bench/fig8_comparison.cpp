// Reproduces Fig. 8 — the paper's headline evaluation: Fair Scheduler,
// Tarazu and E-Ant on the MSD workload over the 16-machine fleet.
//   (a) energy consumption per machine type and overall savings
//       (paper: E-Ant saves 17% vs Fair and 12% vs Tarazu);
//   (b) CPU utilisation per machine type (paper: E-Ant doubles the T420's
//       utilisation and lowers the desktops');
//   (c) job completion times per application/size class, normalised to
//       Fair's.

#include <cstdio>
#include <map>

#include "bench_common.h"
#include "common/table.h"
#include "exp/cli.h"

using namespace eant;

int main(int argc, char** argv) {
  exp::Cli cli(argc, argv, "fig8_comparison");
  cli.done();

  std::map<exp::SchedulerKind, exp::RunMetrics> results;
  for (exp::SchedulerKind kind :
       {exp::SchedulerKind::kFair, exp::SchedulerKind::kTarazu,
        exp::SchedulerKind::kEAnt}) {
    results.emplace(kind, bench::run_msd(kind));
  }
  const auto& fair = results.at(exp::SchedulerKind::kFair);
  const auto& tarazu = results.at(exp::SchedulerKind::kTarazu);
  const auto& eant = results.at(exp::SchedulerKind::kEAnt);

  // --- (a) energy per machine type ------------------------------------------
  TextTable a("Fig 8(a): energy consumption by machine type (kJ)");
  a.set_header({"machine type", "Fair", "Tarazu", "E-Ant", "E-Ant vs Fair"});
  for (std::size_t i = 0; i < fair.by_type.size(); ++i) {
    const auto& f = fair.by_type[i];
    const auto& tz = tarazu.by_type[i];
    const auto& ea = eant.by_type[i];
    a.add_row({f.type_name + " x" + std::to_string(f.machine_count),
               TextTable::num(f.energy / 1000.0, 0),
               TextTable::num(tz.energy / 1000.0, 0),
               TextTable::num(ea.energy / 1000.0, 0),
               TextTable::num(100.0 * (ea.energy - f.energy) / f.energy, 1) +
                   "%"});
  }
  a.add_row({"TOTAL", TextTable::num(fair.total_energy_kj(), 0),
             TextTable::num(tarazu.total_energy_kj(), 0),
             TextTable::num(eant.total_energy_kj(), 0),
             TextTable::num(100.0 * (eant.total_energy - fair.total_energy) /
                                fair.total_energy,
                            1) +
                 "%"});
  a.print();
  std::printf(
      "overall: E-Ant uses %.1f%% less energy than Fair and %.1f%% less "
      "than Tarazu (paper: 17%% and 12%%)\n\n",
      100.0 * (fair.total_energy - eant.total_energy) / fair.total_energy,
      100.0 * (tarazu.total_energy - eant.total_energy) /
          tarazu.total_energy);

  // --- (b) utilisation per machine type --------------------------------------
  TextTable b("Fig 8(b): average CPU utilisation by machine type (%)");
  b.set_header({"machine type", "Fair", "Tarazu", "E-Ant"});
  for (std::size_t i = 0; i < fair.by_type.size(); ++i) {
    b.add_row({fair.by_type[i].type_name,
               TextTable::num(100.0 * fair.by_type[i].avg_utilization, 1),
               TextTable::num(100.0 * tarazu.by_type[i].avg_utilization, 1),
               TextTable::num(100.0 * eant.by_type[i].avg_utilization, 1)});
  }
  b.print();
  std::puts(
      "paper: E-Ant raises the T420's utilisation and lowers the "
      "desktops' relative to Fair/Tarazu\n");

  // --- (c) completion time by job class ---------------------------------------
  TextTable c("Fig 8(c): mean job completion time, normalised to Fair");
  c.set_header({"job class", "Fair", "Tarazu", "E-Ant"});
  std::map<std::string, bool> seen;
  for (const auto& j : fair.jobs) seen[j.class_name] = true;
  for (const auto& [cls, _] : seen) {
    const double f = fair.mean_completion(cls);
    c.add_row({cls, "1.00", TextTable::num(tarazu.mean_completion(cls) / f, 2),
               TextTable::num(eant.mean_completion(cls) / f, 2)});
  }
  c.print();
  std::puts(
      "paper: Tarazu and E-Ant are comparable to Fair; E-Ant may allow some "
      "slow task executions in exchange for energy savings");
  return 0;
}
