// Fig. 13 (extension) — fault recovery: each scheduler runs the MSD
// workload twice, once fault-free and once with a scripted mid-run crash of
// its most-loaded server (the machine that completed the most tasks in the
// fault-free run — for E-Ant that is the machine its pheromone trails
// steered work towards, making the crash an adversarial probe of the learned
// placement).  The node stays down long past the tracker-expiry window, so
// the JobTracker re-queues its running attempts and the completed map
// outputs of in-flight jobs, and E-Ant's trails must re-converge without the
// machine — then absorb it again when it rejoins.
//
// Reported per scheduler: makespan stretch, recovery time (loss detection to
// full re-execution of the orphaned work), wasted work/energy, and the
// energy-efficiency comparison against the fault-free run.
//
// A second section repeats the probe against *network* degradation on the
// oversubscribed topology: an access-link failure on the most-loaded server
// (its shuffle fetches die and the fetch-failure path re-executes maps) and a
// full partition of that server's rack (trackers expire, the fabric heals,
// and the run must re-converge) — same wasted-energy columns.

#include <cstdio>

#include "bench_common.h"
#include "common/table.h"
#include "net/topology.h"
#include "exp/cli.h"

using namespace eant;

namespace {

struct SchedulerOutcome {
  std::string name;
  cluster::MachineId victim = 0;
  std::string victim_type;
  exp::RunMetrics base;
  exp::RunMetrics faulted;
};

SchedulerOutcome run_pair(exp::SchedulerKind kind) {
  SchedulerOutcome out;
  out.name = exp::scheduler_kind_name(kind);

  exp::Run base(exp::paper_fleet(), kind, bench::run_config());
  base.submit(bench::msd_workload());
  base.execute();
  out.base = base.metrics();

  // The most-loaded server of the fault-free run is the crash victim.
  std::size_t most = 0;
  for (cluster::MachineId m = 0; m < base.cluster().size(); ++m) {
    const auto& t = base.job_tracker().tracker(m);
    const std::size_t c =
        t.completed(mr::TaskKind::kMap) + t.completed(mr::TaskKind::kReduce);
    if (c > most) {
      most = c;
      out.victim = m;
    }
  }
  out.victim_type = base.cluster().machine(out.victim).type().name;

  // Crash mid-run, stay down for ~30% of the fault-free makespan — far past
  // the tracker-expiry window, so the loss is detected and recovered from
  // while the machine is still dark, then the node rejoins.  The expiry
  // window is scaled along with the rest of the bench (inputs are 1/200th,
  // the control interval 120 s instead of 300 s): Hadoop's 600 s default is
  // longer than this workload's whole jobs, and would let speculative
  // execution quietly rescue everything before the loss is ever declared.
  exp::RunConfig cfg = bench::run_config();
  cfg.job_tracker.tracker_expiry_window = 30.0;
  const Seconds crash_time = 0.4 * out.base.makespan;
  const Seconds downtime = 0.3 * out.base.makespan;
  cfg.faults.crash_for(out.victim, crash_time, downtime);

  exp::Run faulted(exp::paper_fleet(), kind, cfg);
  faulted.submit(bench::msd_workload());
  faulted.execute();
  out.faulted = faulted.metrics();
  return out;
}

struct NetOutcome {
  std::string name;
  std::string scenario;
  cluster::MachineId victim = 0;
  exp::RunMetrics base;
  exp::RunMetrics faulted;
};

// Runs the MSD workload on the oversubscribed topology fault-free, then once
// more with a network fault aimed at the most-loaded server of the baseline.
std::vector<NetOutcome> run_network_pair(exp::SchedulerKind kind) {
  exp::RunConfig cfg = bench::run_config();
  cfg.topology = net::TopologySpec::oversubscribed();
  cfg.job_tracker.tracker_expiry_window = 30.0;

  exp::Run base(exp::paper_fleet(), kind, cfg);
  base.submit(bench::msd_workload());
  base.execute();
  const exp::RunMetrics base_m = base.metrics();

  cluster::MachineId victim = 0;
  std::size_t most = 0;
  for (cluster::MachineId m = 0; m < base.cluster().size(); ++m) {
    const auto& t = base.job_tracker().tracker(m);
    const std::size_t c =
        t.completed(mr::TaskKind::kMap) + t.completed(mr::TaskKind::kReduce);
    if (c > most) {
      most = c;
      victim = m;
    }
  }

  std::vector<NetOutcome> out;
  const Seconds fault_time = 0.4 * base_m.makespan;
  const struct {
    const char* name;
    Seconds duration_frac;
  } scenarios[] = {{"link fault", 0.15}, {"rack partition", 0.10}};
  for (const auto& s : scenarios) {
    exp::RunConfig fcfg = cfg;
    const Seconds duration = s.duration_frac * base_m.makespan;
    if (std::string(s.name) == "link fault") {
      fcfg.faults.fail_link_for(victim, fault_time, duration);
    } else {
      fcfg.faults.partition_rack(victim % cfg.topology->racks, fault_time,
                                 duration);
    }
    exp::Run faulted(exp::paper_fleet(), kind, fcfg);
    faulted.submit(bench::msd_workload());
    faulted.execute();
    out.push_back({exp::scheduler_kind_name(kind), s.name, victim, base_m,
                   faulted.metrics()});
  }
  return out;
}

struct MasterOutcome {
  std::string name;
  std::string variant;
  exp::RunMetrics base;
  exp::RunMetrics faulted;
};

// Runs the MSD workload with a mid-run JobTracker crash long enough for
// whole tasks to start and finish into the fence, with edit-log
// checkpointing enabled so the recovery replays real coverage.  For E-Ant
// the `snapshot` flag selects the pheromone recovery policy: restore the
// last control-tick snapshot, or reseed the colony table from scratch.
MasterOutcome run_master_pair(exp::SchedulerKind kind,
                              const exp::RunMetrics& base, bool snapshot) {
  MasterOutcome out;
  out.name = exp::scheduler_kind_name(kind);
  out.variant = kind == exp::SchedulerKind::kEAnt
                    ? (snapshot ? "snapshot" : "reseed")
                    : "-";
  out.base = base;

  exp::RunConfig cfg = bench::run_config();
  cfg.job_tracker.checkpoint_interval = 0.05 * base.makespan;
  cfg.job_tracker.checkpoint_write_cost = 1.0;
  cfg.job_tracker.reregistration_window = 5.0;
  cfg.eant.pheromone_snapshot_on_master_recovery = snapshot;
  cfg.faults.crash_jobtracker_for(0.35 * base.makespan, 0.15 * base.makespan);

  exp::Run faulted(exp::paper_fleet(), kind, cfg);
  faulted.submit(bench::msd_workload());
  faulted.execute();
  out.faulted = faulted.metrics();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  exp::Cli cli(argc, argv, "fig13_fault_recovery");
  cli.done();

  std::vector<SchedulerOutcome> results;
  for (exp::SchedulerKind kind :
       {exp::SchedulerKind::kFifo, exp::SchedulerKind::kFair,
        exp::SchedulerKind::kTarazu, exp::SchedulerKind::kEAnt}) {
    results.push_back(run_pair(kind));
  }

  TextTable rec(
      "Fig 13(a): recovery from a mid-run crash of the most-loaded server");
  rec.set_header({"scheduler", "victim", "makespan (s)", "w/ crash (s)",
                  "stretch", "recovery (s)", "killed", "maps re-run",
                  "jobs failed"});
  for (const auto& r : results) {
    rec.add_row(
        {r.name, r.victim_type + " #" + std::to_string(r.victim),
         TextTable::num(r.base.makespan, 0),
         TextTable::num(r.faulted.makespan, 0),
         TextTable::num(
             100.0 * (r.faulted.makespan - r.base.makespan) / r.base.makespan,
             1) +
             "%",
         TextTable::num(r.faulted.mean_recovery_time(), 0),
         std::to_string(r.faulted.killed_attempts),
         std::to_string(r.faulted.lost_map_outputs),
         std::to_string(r.faulted.jobs_failed)});
  }
  rec.print();
  std::puts(
      "recovery = loss detection (tracker expiry) to full re-execution of "
      "the orphaned work; all jobs must still complete\n");

  TextTable en("Fig 13(b): energy efficiency under the same crash");
  en.set_header({"scheduler", "energy (kJ)", "w/ crash (kJ)", "overhead",
                 "wasted (kJ)", "wasted share"});
  for (const auto& r : results) {
    en.add_row(
        {r.name, TextTable::num(r.base.total_energy_kj(), 0),
         TextTable::num(r.faulted.total_energy_kj(), 0),
         TextTable::num(100.0 *
                            (r.faulted.total_energy - r.base.total_energy) /
                            r.base.total_energy,
                        1) +
             "%",
         TextTable::num(r.faulted.wasted_energy_kj(), 1),
         TextTable::num(100.0 * r.faulted.wasted_energy_fraction(), 2) + "%"});
  }
  en.print();
  std::puts(
      "wasted = Eq. 2 energy of crash-killed attempts plus completed map "
      "outputs that had to be re-executed");

  std::vector<NetOutcome> net_results;
  for (exp::SchedulerKind kind :
       {exp::SchedulerKind::kFair, exp::SchedulerKind::kEAnt}) {
    for (auto& o : run_network_pair(kind)) net_results.push_back(o);
  }

  TextTable deg(
      "Fig 13(c): network degradation on the oversubscribed topology "
      "(access-link failure / rack partition at the most-loaded server)");
  deg.set_header({"scheduler", "scenario", "makespan (s)", "w/ fault (s)",
                  "stretch", "fetch fail", "maps re-run", "wasted (kJ)",
                  "wasted share", "jobs failed"});
  for (const auto& r : net_results) {
    deg.add_row(
        {r.name, r.scenario, TextTable::num(r.base.makespan, 0),
         TextTable::num(r.faulted.makespan, 0),
         TextTable::num(
             100.0 * (r.faulted.makespan - r.base.makespan) / r.base.makespan,
             1) +
             "%",
         std::to_string(r.faulted.fetch_failures),
         std::to_string(r.faulted.fetch_reexecuted_maps +
                        r.faulted.lost_map_outputs),
         TextTable::num(r.faulted.wasted_energy_kj(), 1),
         TextTable::num(100.0 * r.faulted.wasted_energy_fraction(), 2) + "%",
         std::to_string(r.faulted.jobs_failed)});
  }
  deg.print();
  std::puts(
      "a dead access link strands in-flight shuffle fetches (the "
      "fetch-failure path re-executes the unreachable maps); a partition "
      "expires every tracker in the rack and the run re-converges on the "
      "survivors until the fabric heals\n");

  // (d) Control-plane probe: the JobTracker itself crashes mid-run.  Tasks
  // keep computing into the fence; the recovered master replays its
  // checkpoint, re-registers the fleet and resolves the orphaned reports.
  // E-Ant runs the ablation both ways: restore the pheromone snapshot vs
  // reseed the colony table from scratch.
  std::vector<MasterOutcome> master_results;
  master_results.push_back(
      run_master_pair(exp::SchedulerKind::kFair, results[1].base, false));
  master_results.push_back(
      run_master_pair(exp::SchedulerKind::kEAnt, results.back().base, true));
  master_results.push_back(
      run_master_pair(exp::SchedulerKind::kEAnt, results.back().base, false));

  TextTable mc(
      "Fig 13(d): mid-run JobTracker crash with checkpointed recovery "
      "(outage = 15% of the fault-free makespan)");
  mc.set_header({"scheduler", "pheromone", "makespan (s)", "w/ crash (s)",
                 "stretch", "fenced", "orphans c/r", "ckpt replays",
                 "wasted (kJ)", "jobs failed"});
  for (const auto& r : master_results) {
    mc.add_row(
        {r.name, r.variant, TextTable::num(r.base.makespan, 0),
         TextTable::num(r.faulted.makespan, 0),
         TextTable::num(
             100.0 * (r.faulted.makespan - r.base.makespan) / r.base.makespan,
             1) +
             "%",
         std::to_string(r.faulted.fenced_heartbeats),
         std::to_string(r.faulted.orphans_committed) + "/" +
             std::to_string(r.faulted.orphans_requeued),
         std::to_string(r.faulted.checkpoint_replays),
         TextTable::num(r.faulted.wasted_energy_kj(), 1),
         std::to_string(r.faulted.jobs_failed)});
  }
  mc.print();
  std::puts(
      "fenced = heartbeats rejected by epoch fencing; orphans c/r = fenced "
      "task reports committed from checkpoint coverage / discarded and "
      "requeued; the snapshot variant resumes E-Ant's learned placement, "
      "reseed restarts the colony table from priors");

  // E-Ant's re-convergence: after expiry its trails floor the dead machine,
  // so no colony keeps declining live slots waiting for it; the rejoined
  // machine is re-seeded at neutral rank and earns work back.
  const auto& ea = results.back();
  std::printf(
      "\nE-Ant: crash of %s #%zu stretched the makespan %.1f%% and the "
      "energy bill %.1f%% (recovery %.0f s); the fleet re-converged without "
      "scheduling to the dead node.\n",
      ea.victim_type.c_str(), ea.victim,
      100.0 * (ea.faulted.makespan - ea.base.makespan) / ea.base.makespan,
      100.0 * (ea.faulted.total_energy - ea.base.total_energy) /
          ea.base.total_energy,
      ea.faulted.mean_recovery_time());
  return 0;
}
