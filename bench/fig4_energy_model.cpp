// Reproduces Fig. 4: accuracy of the Eq. 2 task-energy model.  For each
// application, one job runs on a single metered machine (a Dell desktop and
// the Xeon E5 server, as in the paper); the sum of the per-task energy
// estimates is compared with the WattsUP-style metered energy, and the
// deviation over a 30-second time series is reported as NRMSE (the paper
// reports 7.9% / 10.5% / 11.6% for Wordcount / Terasort / Grep).
//
// Because Eq. 2 attributes idle power only to occupied slots, the estimate
// is compared against the metered energy above the unoccupied-idle floor.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "cluster/catalog.h"
#include "cluster/power_meter.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/energy_model.h"
#include "exp/builders.h"
#include "exp/runner.h"
#include "exp/cli.h"

using namespace eant;

namespace {

constexpr Seconds kBucket = 30.0;

struct Accuracy {
  double measured_kj = 0.0;
  double estimated_kj = 0.0;
  double nrmse_value = 0.0;
};

Accuracy measure(const cluster::MachineType& type, workload::AppKind app) {
  exp::RunConfig cfg;
  cfg.seed = 11;
  cfg.noise = mr::NoiseConfig::typical();
  exp::Run run(exp::homogeneous(type, 1), exp::SchedulerKind::kFifo, cfg);

  const core::EnergyModel model =
      core::EnergyModel::from_cluster(run.cluster());
  cluster::PowerMeter meter(run.simulator(), run.cluster().machine(0), 1.0,
                            /*record_series=*/true);

  std::vector<double> est_series;
  double estimated = 0.0;
  run.job_tracker().set_report_listener([&](const mr::TaskReport& r) {
    estimated += model.estimate(r);
    // Spread the Eq. 2 estimate over the task's utilisation windows so the
    // estimated series is time-aligned with the meter.
    const auto& p = model.params(r.machine);
    Seconds t = r.start;
    for (const auto& w : r.samples) {
      const double e = (p.idle / p.slots + p.alpha * w.util) * w.duration;
      const auto bucket = static_cast<std::size_t>(t / kBucket);
      if (est_series.size() <= bucket) est_series.resize(bucket + 1, 0.0);
      est_series[bucket] += e;
      t += w.duration;
    }
  });

  // Several concurrent jobs keep the machine's slots occupied, matching the
  // paper's setup (a machine running a job at full tilt): with every slot
  // busy, Eq. 2 attributes the entire idle power.
  run.submit(exp::job_batch(app, 64.0 * 16, 2, 3));
  run.execute();

  // Metered energy bucketed like the estimates.
  std::vector<double> meas_series(est_series.size(), 0.0);
  double meas_total = 0.0;
  for (const auto& s : meter.series()) {
    const auto bucket = static_cast<std::size_t>(s.time / kBucket);
    if (bucket >= meas_series.size()) break;
    meas_series[bucket] += s.watts * 1.0;
    meas_total += s.watts * 1.0;
  }

  // Eq. 2 attributes idle power only to occupied slots, so the estimate
  // systematically undershoots the wall total; the paper's NRMSE is about
  // tracking quality, so compare the *shapes* (series normalised to unit
  // mass) and report the level agreement separately as est/metered.
  if (meas_total > 0.0 && estimated > 0.0) {
    for (std::size_t b = 0; b < meas_series.size(); ++b) {
      meas_series[b] /= meas_total;
      est_series[b] /= estimated;
    }
  }

  Accuracy a;
  a.measured_kj = meter.energy() / kJoulesPerKilojoule;
  a.estimated_kj = estimated / kJoulesPerKilojoule;
  a.nrmse_value = nrmse(meas_series, est_series);
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  exp::Cli cli(argc, argv, "fig4_energy_model");
  cli.done();

  for (const auto& type :
       {cluster::catalog::desktop(), cluster::catalog::xeon_e5()}) {
    TextTable t("Fig 4: energy-model accuracy on " + type.name);
    t.set_header({"app", "metered (kJ)", "estimated (kJ)", "est/metered",
                  "series NRMSE"});
    for (workload::AppKind app : workload::all_apps()) {
      const auto a = measure(type, app);
      t.add_row({workload::app_name(app), TextTable::num(a.measured_kj, 1),
                 TextTable::num(a.estimated_kj, 1),
                 TextTable::num(a.estimated_kj / a.measured_kj, 2),
                 TextTable::num(a.nrmse_value, 3)});
    }
    t.print();
  }
  std::puts(
      "paper: estimated and measured energies are close (NRMSE 7.9-11.6%); "
      "the estimate attributes idle power only to occupied slots, so it "
      "lower-bounds the metered total");
  return 0;
}
