// Reproduces the paper's motivation study (Sec. II, Fig. 1):
//   (a) throughput-per-watt vs task arrival rate on the Core i7 desktop and
//       the Xeon E5 server — the energy-efficiency crossover;
//   (b) idle-system vs workload power split at light (10/min) and heavy
//       (20/min) load on both machines;
//   (c) throughput-per-watt vs arrival rate for Wordcount / Terasort / Grep
//       on the Xeon server — per-application efficiency peaks;
//   (d) normalised map/shuffle/reduce completion-time breakdown per app.

#include <array>
#include <cstdio>
#include <vector>

#include "cluster/catalog.h"
#include "common/table.h"
#include "exp/motivation.h"
#include "exp/cli.h"

using namespace eant;

namespace {

// The motivation study streams small tasks (16 MB splits); concurrency is
// sized to each machine's cores, as the study probes machine capacity
// rather than the Hadoop slot configuration.
constexpr Megabytes kSplitMb = 16.0;
constexpr Seconds kHorizon = 4.0 * 3600.0;

exp::StreamResult stream(const cluster::MachineType& type,
                         workload::AppKind app, double rate) {
  return exp::run_task_stream(type, app, rate, kHorizon, type.cores, 7,
                              kSplitMb);
}

void fig1a() {
  TextTable t("Fig 1(a): throughput/watt vs arrival rate (Wordcount)");
  t.set_header({"rate (tasks/min)", "Xeon E5 (t/s/W)", "Core i7 (t/s/W)",
                "winner"});
  const auto xeon = cluster::catalog::xeon_e5();
  const auto i7 = cluster::catalog::desktop();
  for (double rate : {2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 15.0, 20.0, 25.0}) {
    const auto x = stream(xeon, workload::AppKind::kWordcount, rate);
    const auto d = stream(i7, workload::AppKind::kWordcount, rate);
    t.add_row({TextTable::num(rate, 0),
               TextTable::num(x.throughput_per_watt(), 6),
               TextTable::num(d.throughput_per_watt(), 6),
               x.throughput_per_watt() > d.throughput_per_watt() ? "Xeon E5"
                                                                 : "Core i7"});
  }
  t.print();
  std::puts(
      "paper: Core i7 wins below ~12 tasks/min, Xeon E5 above (crossover)\n");
}

void fig1b() {
  TextTable t("Fig 1(b): idle vs workload power split");
  t.set_header({"machine", "load", "idle power (W)", "workload power (W)",
                "idle share"});
  const auto xeon = cluster::catalog::xeon_e5();
  const auto i7 = cluster::catalog::desktop();
  for (const auto* m : {&i7, &xeon}) {
    for (double rate : {10.0, 20.0}) {
      const auto r = stream(*m, workload::AppKind::kWordcount, rate);
      const Watts idle = r.idle_energy / r.horizon;
      const Watts work = r.workload_energy() / r.horizon;
      t.add_row({m->name, rate < 15 ? "light (10/min)" : "heavy (20/min)",
                 TextTable::num(idle, 1), TextTable::num(work, 1),
                 TextTable::num(idle / (idle + work), 2)});
    }
  }
  t.print();
  std::puts(
      "paper: the Xeon's power is dominated by idle-system usage; the i7's "
      "workload component grows steeply with load\n");
}

void fig1c() {
  TextTable t("Fig 1(c): per-app throughput/watt on the Xeon E5");
  t.set_header({"rate (tasks/min)", "Wordcount", "Terasort", "Grep"});
  const auto xeon = cluster::catalog::xeon_e5();
  const std::vector<double> rates = {10.0,  15.0,  20.0,  25.0, 30.0, 40.0,
                                     60.0,  100.0, 160.0, 250.0, 400.0};
  const workload::AppKind apps[3] = {workload::AppKind::kWordcount,
                                     workload::AppKind::kTerasort,
                                     workload::AppKind::kGrep};
  std::vector<std::array<double, 3>> curves;
  for (double rate : rates) {
    std::array<double, 3> tpw{};
    for (int i = 0; i < 3; ++i) {
      tpw[i] = stream(xeon, apps[i], rate).throughput_per_watt();
    }
    curves.push_back(tpw);
    t.add_row({TextTable::num(rate, 0), TextTable::num(tpw[0], 6),
               TextTable::num(tpw[1], 6), TextTable::num(tpw[2], 6)});
  }
  t.print();
  // The efficiency "knee": the lowest rate reaching 95% of the app's best
  // observed throughput/watt (the curves plateau at saturation rather than
  // dipping, so the knee marks the efficiency-optimal operating rate).
  std::printf("efficiency knees (95%% of peak): ");
  for (int i = 0; i < 3; ++i) {
    double best = 0.0;
    for (const auto& c : curves) best = std::max(best, c[i]);
    double knee = rates.back();
    for (std::size_t r = 0; r < rates.size(); ++r) {
      if (curves[r][i] >= 0.95 * best) {
        knee = rates[r];
        break;
      }
    }
    std::printf("%s %s%.0f  ", workload::app_name(apps[i]).c_str(),
                knee >= rates.back() ? ">=" : "", knee);
  }
  std::printf("tasks/min\n");
  std::puts(
      "paper: the three applications peak at different arrival rates "
      "(20/35/25 on their hardware)\n");
}

void fig1d() {
  TextTable t("Fig 1(d): normalised job completion-time breakdown");
  t.set_header({"app", "map", "shuffle", "reduce"});
  for (workload::AppKind app : workload::all_apps()) {
    const auto b = exp::phase_breakdown(app);
    t.add_row({workload::app_name(app), TextTable::num(b.map, 2),
               TextTable::num(b.shuffle, 2), TextTable::num(b.reduce, 2)});
  }
  t.print();
  std::puts(
      "paper: Wordcount is map(CPU)-intensive; Grep and Terasort are "
      "shuffle/reduce(IO)-intensive\n");
}

}  // namespace

int main(int argc, char** argv) {
  exp::Cli cli(argc, argv, "fig1_motivation");
  cli.done();

  fig1a();
  fig1b();
  fig1c();
  fig1d();
  return 0;
}
