// Shared configuration of the paper-reproduction benches.
//
// The canonical evaluation workload (Sec. V-C): the 87-job MicroSoft-Derived
// mix on the 16-machine fleet, scaled so one run simulates in seconds while
// keeping the cluster at the paper's moderate utilisation regime (Fair's
// desktop utilisation lands near Fig. 8(b)'s 40-45%).

#pragma once

#include "common/rng.h"
#include "exp/builders.h"
#include "exp/runner.h"
#include "workload/msd.h"

namespace eant::bench {

constexpr std::uint64_t kSeed = 42;

inline workload::MsdConfig msd_config() {
  workload::MsdConfig wl;
  wl.num_jobs = 87;  // the paper's job count
  wl.input_scale = 1.0 / 200.0;
  wl.mean_interarrival = 60.0;
  return wl;
}

inline std::vector<workload::JobSpec> msd_workload(
    std::uint64_t seed = kSeed) {
  Rng rng(seed);
  return workload::MsdGenerator(msd_config()).generate(rng);
}

inline exp::RunConfig run_config(std::uint64_t seed = kSeed) {
  exp::RunConfig cfg;
  cfg.seed = seed;
  cfg.noise = mr::NoiseConfig::typical();
  cfg.eant.control_interval = 120.0;  // scaled with the workload (paper: 5 min)
  // In this calibrated fleet every job class shares the same efficiency
  // ranking (the steep-slope desktops are the worst host for all task
  // types), so Eq. 6's cross-class anti-correlation pressure only injects
  // noise; the headline configuration disables it.  bench/ablation_feedback
  // quantifies the effect; see EXPERIMENTS.md.
  cfg.eant.negative_feedback = false;
  return cfg;
}

/// Runs the canonical MSD workload under one scheduler.
inline exp::RunMetrics run_msd(exp::SchedulerKind kind,
                               exp::RunConfig cfg = run_config()) {
  exp::Run run(exp::paper_fleet(), kind, cfg);
  run.submit(msd_workload(cfg.seed));
  run.execute();
  return run.metrics();
}

}  // namespace eant::bench
