// overload_sweep — the goodput-cliff experiment for overload protection.
//
// Sweeps the three-tenant diurnal mix through rate scales 0.5x–4x under
// tenant-mode Capacity, with and without the admission/backpressure/brownout
// subsystem, and reports what saturation does to the deadlined interactive
// tenant: goodput (jobs completed within deadline) over offered load, p99
// latency, drops and deadline misses.  Without protection the open-loop
// queue grows without bound past the knee and interactive p99 collapses;
// with it, admission sheds background work first and goodput degrades
// gracefully.  Emits BENCH_overload_sweep.json.
//
// Every cell runs audited.  The whole grid is executed twice — once on the
// thread-per-seed driver at `threads` workers, once serially — and the
// per-cell determinism digests must match bit-for-bit; any mismatch or any
// error-severity audit violation exits 1.
//
// Usage: overload_sweep [hours] [seed] [seeds] [threads] [out.json]
// (default: 6-hour horizon, seed 42, 1 sweep seed, 4 workers,
// BENCH_overload_sweep.json)

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "exp/cli.h"
#include "exp/parallel_for.h"
#include "exp/runner.h"
#include "tenancy/presets.h"
#include "tenancy/traffic.h"

using namespace eant;

namespace {

constexpr double kRateScales[] = {0.5, 1.0, 2.0, 3.0, 4.0};
constexpr workload::TenantId kInteractive = 1;  ///< the all-deadlined tenant

/// Sweep rate 1.0 in preset units: three_tenant_mix's base arrival rates are
/// calibrated for the 48-hour SLO bake-off and leave the paper fleet mostly
/// idle, with the saturation knee near 45x.  The sweep re-bases so that 1.0x
/// is a busy-but-stable cluster and 2.0x is past the knee — the regime the
/// protection subsystem exists for.
constexpr double kBaseRate = 25.0;

struct Cell {
  double rate_scale = 1.0;
  bool admission = false;
  std::uint64_t seed = 0;
};

struct CellResult {
  std::size_t jobs = 0;            ///< jobs that ran (admitted)
  std::size_t t1_offered = 0;      ///< interactive arrivals (ran + dropped)
  std::size_t t1_goodput = 0;      ///< interactive jobs finished in deadline
  double t1_p99 = 0.0;
  std::size_t t1_misses = 0;
  std::size_t t1_dropped = 0;
  std::size_t rejected = 0;
  std::size_t dropped = 0;
  std::size_t retries = 0;
  std::size_t transitions = 0;
  Seconds time_saturated = 0.0;
  Seconds time_critical = 0.0;
  std::size_t audit_errors = 0;
  std::uint64_t digest = 0;
};

CellResult run_cell(const Cell& cell, const sched::TenantShareConfig& shares,
                    const std::vector<workload::JobSpec>& jobs) {
  exp::RunConfig cfg = bench::run_config(cell.seed);
  cfg.audit.enabled = true;
  cfg.tenancy = shares;
  if (cell.admission) {
    cfg.job_tracker.admission.enabled = true;
    for (const auto& q : shares.tenants) {
      cfg.job_tracker.admission.tenants.push_back(
          mr::AdmissionTenantPolicy{q.tenant, q.weight});
    }
  }
  exp::Run run(exp::paper_fleet(), exp::SchedulerKind::kCapacity, cfg);
  run.submit(jobs);
  run.execute();
  const exp::RunMetrics m = run.metrics();

  CellResult r;
  r.jobs = m.jobs.size();
  r.rejected = m.jobs_rejected;
  r.dropped = m.jobs_dropped;
  r.retries = m.admission_retries;
  r.transitions = m.overload_transitions;
  r.time_saturated = m.time_saturated;
  r.time_critical = m.time_critical;
  for (const auto& t : m.by_tenant) {
    if (t.tenant != kInteractive) continue;
    r.t1_offered = t.jobs + t.jobs_dropped;
    r.t1_goodput = t.jobs_goodput;
    r.t1_p99 = t.latency_p99;
    r.t1_misses = t.deadline_misses;
    r.t1_dropped = t.jobs_dropped;
  }
  for (const auto& v : m.audit.violations) {
    if (v.severity == audit::Severity::kError) r.audit_errors += v.count;
  }
  r.digest = m.determinism_digest;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  exp::Cli cli(argc, argv,
               "overload_sweep [hours] [seed] [seeds] [threads] [out.json] "
               "[admission]");
  const int hours = static_cast<int>(cli.int_arg("hours", 4, 1, 24 * 4));
  const auto seed =
      static_cast<std::uint64_t>(cli.int_arg("seed", 42, 1, 1 << 30));
  const auto num_seeds =
      static_cast<std::size_t>(cli.int_arg("seeds", 1, 1, 16));
  const auto threads = static_cast<unsigned>(cli.int_arg("threads", 4, 0, 64));
  const std::string out_path =
      cli.string_arg("out", "BENCH_overload_sweep.json");
  // Off drops the protected cells (a baseline-only sweep); on (the default)
  // keeps the full on/off comparison grid.
  const bool with_admission = cli.bool_arg("admission", true);
  cli.done();

  // One trace per (rate scale, seed): on/off cells at the same coordinates
  // replay the identical arrival stream, so the comparison isolates the
  // protection subsystem.  Traces and share config are generated up front;
  // cells only read them.
  sched::TenantShareConfig shares;
  std::map<std::pair<double, std::uint64_t>, std::vector<workload::JobSpec>>
      traces;
  for (const double rate : kRateScales) {
    auto mix =
        tenancy::presets::three_tenant_mix(hours * 3600.0, rate * kBaseRate);
    if (shares.tenants.empty()) {
      for (const auto& t : mix.tenants) {
        shares.tenants.push_back(sched::TenantQueue{
            t.profile.tenant, t.profile.name, t.profile.weight});
      }
    }
    const tenancy::TrafficGenerator generator(std::move(mix));
    for (std::size_t i = 0; i < num_seeds; ++i) {
      Rng rng(seed + i);
      traces[{rate, seed + i}] = generator.generate(rng);
    }
  }

  std::vector<Cell> cells;
  for (const double rate : kRateScales) {
    for (const bool admission : {false, true}) {
      if (admission && !with_admission) continue;
      for (std::size_t i = 0; i < num_seeds; ++i) {
        cells.push_back(Cell{rate, admission, seed + i});
      }
    }
  }
  std::printf("== overload sweep: %zu cells (%d h horizon, %zu seeds) ==\n",
              cells.size(), hours, num_seeds);

  std::vector<CellResult> results(cells.size());
  exp::parallel_for(cells.size(), threads, [&](std::size_t i) {
    results[i] = run_cell(cells[i], shares,
                          traces.at({cells[i].rate_scale, cells[i].seed}));
  });

  // Serial replay: the sweep driver must not perturb the simulations.
  std::vector<CellResult> serial(cells.size());
  exp::parallel_for(cells.size(), 1, [&](std::size_t i) {
    serial[i] = run_cell(cells[i], shares,
                         traces.at({cells[i].rate_scale, cells[i].seed}));
  });

  int failures = 0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (results[i].digest != serial[i].digest) {
      std::fprintf(stderr,
                   "DIGEST MISMATCH rate=%.1f admission=%d seed=%llu: "
                   "%016llx (threads=%u) vs %016llx (serial)\n",
                   cells[i].rate_scale, cells[i].admission ? 1 : 0,
                   static_cast<unsigned long long>(cells[i].seed),
                   static_cast<unsigned long long>(results[i].digest), threads,
                   static_cast<unsigned long long>(serial[i].digest));
      ++failures;
    }
    if (results[i].audit_errors > 0) {
      std::fprintf(stderr,
                   "AUDIT ERRORS rate=%.1f admission=%d seed=%llu: %zu\n",
                   cells[i].rate_scale, cells[i].admission ? 1 : 0,
                   static_cast<unsigned long long>(cells[i].seed),
                   results[i].audit_errors);
      ++failures;
    }
  }

  std::printf("\n%6s %-4s %7s %9s %9s %9s %7s %8s %8s %7s %7s\n", "rate",
              "adm", "jobs", "t1 good", "t1 offer", "t1 p99", "t1 miss",
              "rejected", "dropped", "retry", "sat h");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    const CellResult& r = results[i];
    std::printf(
        "%6.1f %-4s %7zu %9zu %9zu %9.0f %7zu %8zu %8zu %7zu %7.2f\n",
        c.rate_scale, c.admission ? "on" : "off", r.jobs, r.t1_goodput,
        r.t1_offered, r.t1_p99, r.t1_misses, r.rejected, r.dropped, r.retries,
        r.time_saturated / 3600.0);
  }

  // Dominance check (seed-0 cells): past the 2x knee the protected runs
  // should beat the unprotected ones on interactive goodput AND p99.
  for (const double rate : kRateScales) {
    if (!with_admission) break;  // baseline-only sweep: nothing to compare
    if (rate < 2.0) continue;
    const CellResult* off = nullptr;
    const CellResult* on = nullptr;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (cells[i].rate_scale != rate || cells[i].seed != seed) continue;
      (cells[i].admission ? on : off) = &results[i];
    }
    const bool dominates = on != nullptr && off != nullptr &&
                           on->t1_goodput >= off->t1_goodput &&
                           on->t1_p99 <= off->t1_p99;
    std::printf("rate %.1fx: admission %s (goodput %zu vs %zu, p99 %.0f vs "
                "%.0f)\n",
                rate, dominates ? "dominates" : "DOES NOT DOMINATE",
                on ? on->t1_goodput : 0, off ? off->t1_goodput : 0,
                on ? on->t1_p99 : 0.0, off ? off->t1_p99 : 0.0);
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"overload_sweep\",\n  \"rows\": [\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    const CellResult& r = results[i];
    std::fprintf(out,
                 "    {\"rate_scale\": %.2f, \"admission\": %s, "
                 "\"seed\": %llu, \"jobs\": %zu, "
                 "\"t1_goodput\": %zu, \"t1_offered\": %zu, "
                 "\"t1_p99_s\": %.1f, \"t1_misses\": %zu, "
                 "\"t1_dropped\": %zu, \"rejected\": %zu, \"dropped\": %zu, "
                 "\"retries\": %zu, \"transitions\": %zu, "
                 "\"saturated_s\": %.0f, \"critical_s\": %.0f, "
                 "\"digest\": \"%016llx\"}%s\n",
                 c.rate_scale, c.admission ? "true" : "false",
                 static_cast<unsigned long long>(c.seed), r.jobs, r.t1_goodput,
                 r.t1_offered, r.t1_p99, r.t1_misses, r.t1_dropped, r.rejected,
                 r.dropped, r.retries, r.transitions, r.time_saturated,
                 r.time_critical,
                 static_cast<unsigned long long>(r.digest),
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  if (failures > 0) {
    std::fprintf(stderr, "%d digest/audit failure(s)\n", failures);
    return 1;
  }
  return 0;
}
