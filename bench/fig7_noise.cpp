// Reproduces Fig. 7: impact of system noise on per-task energy estimates.
// A Wordcount job runs on a T420-class server under the typical noise level
// (utilisation jitter, measurement error, stragglers); the Eq. 2 estimate of
// every task is printed as a scatter (task id, energy) summary.  The paper's
// plot shows most tasks near a common level with straggler outliers.

#include <cstdio>
#include <vector>

#include "cluster/catalog.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/energy_model.h"
#include "exp/builders.h"
#include "exp/runner.h"
#include "exp/cli.h"

using namespace eant;

int main(int argc, char** argv) {
  exp::Cli cli(argc, argv, "fig7_noise");
  cli.done();

  exp::RunConfig cfg;
  cfg.seed = 17;
  cfg.noise = mr::NoiseConfig::typical();
  // The paper's Fig. 7 machine is a T420-class server.
  exp::Run run(exp::homogeneous(cluster::catalog::t420(), 1),
               exp::SchedulerKind::kFifo, cfg);

  const core::EnergyModel model = core::EnergyModel::from_cluster(run.cluster());
  std::vector<double> energies_kj;
  run.job_tracker().set_report_listener([&](const mr::TaskReport& r) {
    if (r.spec.kind == mr::TaskKind::kMap) {
      energies_kj.push_back(model.estimate(r) / kJoulesPerKilojoule);
    }
  });
  run.submit({exp::single_job(workload::AppKind::kWordcount, 64.0 * 200, 8)});
  run.execute();

  OnlineStats s;
  for (double e : energies_kj) s.add(e);

  TextTable t("Fig 7: per-task energy under system noise (Wordcount, T420)");
  t.set_header({"metric", "value"});
  t.add_row({"tasks", std::to_string(energies_kj.size())});
  t.add_row({"mean (kJ)", TextTable::num(s.mean(), 3)});
  t.add_row({"stddev (kJ)", TextTable::num(s.stddev(), 3)});
  t.add_row({"min (kJ)", TextTable::num(s.min(), 3)});
  t.add_row({"p50 (kJ)", TextTable::num(percentile(energies_kj, 50), 3)});
  t.add_row({"p95 (kJ)", TextTable::num(percentile(energies_kj, 95), 3)});
  t.add_row({"max (kJ)", TextTable::num(s.max(), 3)});
  t.add_row({"max/median",
             TextTable::num(s.max() / percentile(energies_kj, 50), 2)});
  t.print();

  // A terminal-friendly scatter: one bucket of 10 tasks per row.
  std::puts("\nscatter (10-task buckets, * = 0.25 kJ):");
  for (std::size_t i = 0; i < energies_kj.size(); i += 10) {
    double peak = 0.0;
    for (std::size_t j = i; j < std::min(i + 10, energies_kj.size()); ++j) {
      peak = std::max(peak, energies_kj[j]);
    }
    std::printf("%4zu | ", i);
    for (int stars = 0; stars < static_cast<int>(peak / 0.25); ++stars) {
      std::putchar('*');
    }
    std::printf(" %.2f\n", peak);
  }
  std::puts(
      "\npaper: most tasks cluster near a common energy level with "
      "straggler outliers well above it");
  return 0;
}
