// Extension bench (the paper's stated future work, Sec. VIII): combining
// E-Ant with covering-subset server consolidation.  Under light load, a
// covering subset of the fleet stays powered (the rest sleep at standby
// power); E-Ant schedules within the subset.  Compares full-fleet Fair,
// full-fleet E-Ant and provisioned E-Ant at several capacity fractions.

#include <cstdio>

#include "bench_common.h"
#include "common/table.h"
#include "exp/provisioning.h"
#include "exp/cli.h"

using namespace eant;

int main(int argc, char** argv) {
  exp::Cli cli(argc, argv, "ablation_provisioning");
  cli.done();

  // Light load: a thin trickle of MSD jobs leaves most of the fleet idle,
  // which is where consolidation pays.
  workload::MsdConfig wl = bench::msd_config();
  wl.num_jobs = 25;
  wl.mean_interarrival = 150.0;
  Rng rng(bench::kSeed);
  const auto jobs = workload::MsdGenerator(wl).generate(rng);

  exp::RunConfig cfg = bench::run_config();

  TextTable t("ablation: covering-subset consolidation under light load");
  t.set_header({"configuration", "active machines", "energy (kJ)",
                "makespan (s)"});

  for (exp::SchedulerKind kind :
       {exp::SchedulerKind::kFair, exp::SchedulerKind::kEAnt}) {
    exp::Run run(exp::paper_fleet(), kind, cfg);
    run.submit(jobs);
    run.execute();
    const auto m = run.metrics();
    t.add_row({"full fleet + " + m.scheduler_name, "16",
               TextTable::num(m.total_energy_kj(), 0),
               TextTable::num(m.makespan, 0)});
  }

  const auto fleet = exp::paper_fleet_types();
  for (double fraction : {0.4, 0.6, 0.8}) {
    const auto plan = exp::covering_subset(fleet, fraction);
    const auto result = exp::run_provisioned(fleet, plan,
                                             exp::SchedulerKind::kEAnt, jobs,
                                             cfg);
    t.add_row({"covering subset (" + TextTable::num(100 * fraction, 0) +
                   "% capability) + E-Ant",
               std::to_string(plan.active.size()),
               TextTable::num(result.total_energy() / 1000.0, 0),
               TextTable::num(result.metrics.makespan, 0)});
  }
  t.print();
  std::puts(
      "\nconsolidation removes idle power entirely where adaptive "
      "assignment can only avoid the dynamic (alpha) component — the two "
      "compose, as the paper's future-work section anticipates");
  return 0;
}
