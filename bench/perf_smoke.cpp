// perf_smoke — the simulator-throughput baseline for the scale arc.
//
// Runs a homogeneous Terasort batch at three fleet sizes under E-Ant and
// Capacity and emits BENCH_perf_smoke.json: simulated events per wall-clock
// second, wall-clock seconds, peak RSS, and the scheduler-work attribution
// (time inside Scheduler::select_job, per processed heartbeat) against node
// and task count.  Future scale/speed PRs diff their numbers against this
// file's committed trajectory; the absolute values are machine-dependent,
// the shape (events/sec should stay roughly flat as the fleet grows, and
// select_job time per heartbeat should not blow up with job count) is not.
//
// It also times the thread-per-seed sweep driver (exp/sweep.h): an 8-seed
// audited sweep of a 16-node Terasort batch at 4 workers vs serial, emitted
// as seeds/min — the wall-clock win every multi-seed bench (chaos_campaign,
// continuous_traffic) inherits.  On a single-core runner the speedup is ~1;
// the field still tracks driver overhead.
//
// Usage: perf_smoke [out.json]   (default BENCH_perf_smoke.json)

#include <sys/resource.h>

#include <chrono>  // lint-ok: wall-clock
#include <cstdio>
#include <string>
#include <vector>

#include "cluster/catalog.h"
#include "exp/builders.h"
#include "exp/cli.h"
#include "exp/runner.h"
#include "exp/sweep.h"

using namespace eant;

namespace {

/// Peak resident set size in MiB (ru_maxrss is KiB on Linux).
double peak_rss_mib() {
  struct rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;
}

struct Row {
  std::string scheduler;
  std::size_t nodes = 0;
  std::size_t jobs = 0;
  std::size_t tasks = 0;
  std::uint64_t events = 0;
  Seconds sim_makespan = 0.0;
  double wall_seconds = 0.0;
  double events_per_sec = 0.0;
  double peak_rss_mib = 0.0;
  std::uint64_t heartbeats = 0;
  std::uint64_t select_job_calls = 0;
  double select_job_wall_s = 0.0;
  double select_us_per_heartbeat = 0.0;
};

Row measure(exp::SchedulerKind kind, std::size_t nodes) {
  // Work scales with the fleet: jobs proportional to nodes so every size
  // runs at comparable utilisation and the per-event cost is comparable.
  const int jobs = static_cast<int>(nodes / 4);
  exp::RunConfig cfg;
  cfg.seed = 7;
  cfg.job_tracker.measure_scheduler_time = true;
  exp::Run run(exp::homogeneous(cluster::catalog::xeon_e5(), nodes), kind,
               cfg);
  run.submit(exp::job_batch(workload::AppKind::kTerasort, 4000.0, 8, jobs));

  const auto t0 = std::chrono::steady_clock::now();  // lint-ok: wall-clock
  run.execute();
  const auto t1 = std::chrono::steady_clock::now();  // lint-ok: wall-clock

  Row r;
  r.scheduler = exp::scheduler_kind_name(kind);
  r.nodes = nodes;
  r.jobs = static_cast<std::size_t>(jobs);
  const exp::RunMetrics m = run.metrics();
  r.tasks = m.total_tasks;
  r.events = run.simulator().executed();
  r.sim_makespan = m.makespan;
  r.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  r.events_per_sec =
      r.wall_seconds > 0.0 ? static_cast<double>(r.events) / r.wall_seconds
                           : 0.0;
  r.peak_rss_mib = peak_rss_mib();
  const mr::JobTracker& jt = run.job_tracker();
  r.heartbeats = jt.heartbeats();
  r.select_job_calls = jt.select_job_calls();
  r.select_job_wall_s = jt.select_job_wall_seconds();
  r.select_us_per_heartbeat =
      r.heartbeats > 0 ? r.select_job_wall_s * 1e6 /
                             static_cast<double>(r.heartbeats)
                       : 0.0;
  return r;
}

struct SweepRow {
  std::size_t seeds = 0;
  unsigned threads = 0;
  double wall_parallel_s = 0.0;
  double wall_serial_s = 0.0;
  double seeds_per_min = 0.0;  ///< at `threads` workers
  double speedup = 0.0;        ///< serial wall / parallel wall
};

SweepRow measure_sweep() {
  constexpr std::size_t kSeeds = 8;
  constexpr unsigned kThreads = 4;
  exp::RunConfig cfg;
  cfg.audit.enabled = true;  // digest on: the production sweep configuration
  const auto jobs = exp::job_batch(workload::AppKind::kTerasort, 3000.0, 8, 3);
  const auto fleet = exp::homogeneous(cluster::catalog::xeon_e5(), 16);
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 1; s <= kSeeds; ++s) seeds.push_back(s);

  exp::SweepConfig sweep;
  SweepRow r;
  r.seeds = kSeeds;
  r.threads = kThreads;

  sweep.threads = kThreads;
  auto t0 = std::chrono::steady_clock::now();  // lint-ok: wall-clock
  exp::sweep_seeds(fleet, exp::SchedulerKind::kEAnt, cfg, jobs, seeds, sweep);
  auto t1 = std::chrono::steady_clock::now();  // lint-ok: wall-clock
  r.wall_parallel_s = std::chrono::duration<double>(t1 - t0).count();

  sweep.threads = 1;
  t0 = std::chrono::steady_clock::now();  // lint-ok: wall-clock
  exp::sweep_seeds(fleet, exp::SchedulerKind::kEAnt, cfg, jobs, seeds, sweep);
  t1 = std::chrono::steady_clock::now();  // lint-ok: wall-clock
  r.wall_serial_s = std::chrono::duration<double>(t1 - t0).count();

  r.seeds_per_min = r.wall_parallel_s > 0.0
                        ? 60.0 * static_cast<double>(kSeeds) / r.wall_parallel_s
                        : 0.0;
  r.speedup =
      r.wall_parallel_s > 0.0 ? r.wall_serial_s / r.wall_parallel_s : 0.0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  exp::Cli cli(argc, argv, "perf_smoke [out.json]");
  const std::string out_path = cli.string_arg("out", "BENCH_perf_smoke.json");
  cli.done();

  std::vector<Row> rows;
  for (const exp::SchedulerKind kind :
       {exp::SchedulerKind::kEAnt, exp::SchedulerKind::kCapacity}) {
    for (std::size_t nodes : {16, 64, 256}) {
      rows.push_back(measure(kind, nodes));
      const Row& r = rows.back();
      std::printf(
          "%-8s nodes=%3zu jobs=%3zu tasks=%6zu events=%9llu wall=%6.2fs "
          "events/s=%9.0f rss=%6.1f MiB select/hb=%6.2fus\n",
          r.scheduler.c_str(), r.nodes, r.jobs, r.tasks,
          static_cast<unsigned long long>(r.events), r.wall_seconds,
          r.events_per_sec, r.peak_rss_mib, r.select_us_per_heartbeat);
    }
  }

  const SweepRow sweep = measure_sweep();
  std::printf(
      "sweep    seeds=%3zu threads=%u wall=%6.2fs serial=%6.2fs "
      "seeds/min=%6.1f speedup=%4.2fx\n",
      sweep.seeds, sweep.threads, sweep.wall_parallel_s, sweep.wall_serial_s,
      sweep.seeds_per_min, sweep.speedup);

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"perf_smoke\",\n  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out,
                 "    {\"scheduler\": \"%s\", \"nodes\": %zu, \"jobs\": %zu, "
                 "\"tasks\": %zu, "
                 "\"events\": %llu, \"sim_makespan_s\": %.3f, "
                 "\"wall_s\": %.3f, \"events_per_s\": %.0f, "
                 "\"peak_rss_mib\": %.1f, "
                 "\"heartbeats\": %llu, \"select_job_calls\": %llu, "
                 "\"select_job_wall_s\": %.4f, "
                 "\"select_us_per_heartbeat\": %.3f}%s\n",
                 r.scheduler.c_str(), r.nodes, r.jobs, r.tasks,
                 static_cast<unsigned long long>(r.events), r.sim_makespan,
                 r.wall_seconds, r.events_per_sec, r.peak_rss_mib,
                 static_cast<unsigned long long>(r.heartbeats),
                 static_cast<unsigned long long>(r.select_job_calls),
                 r.select_job_wall_s, r.select_us_per_heartbeat,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n  \"sweep\": {\"seeds\": %zu, \"threads\": %u, "
               "\"wall_s\": %.3f, \"serial_wall_s\": %.3f, "
               "\"seeds_per_min_4t\": %.2f, \"speedup\": %.2f}\n",
               sweep.seeds, sweep.threads, sweep.wall_parallel_s,
               sweep.wall_serial_s, sweep.seeds_per_min, sweep.speedup);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
