// Ablation of E-Ant's pheromone-update design choices (DESIGN.md Sec. 4):
//   * cross-colony negative feedback (Eq. 6) on/off — in this calibrated
//     fleet all classes share one efficiency ranking, so the paper's
//     anti-correlation pressure is expected to cost energy here;
//   * the evaporation coefficient rho (Eq. 4), swept around the paper's 0.5.

#include <cstdio>

#include "bench_common.h"
#include "common/table.h"
#include "exp/cli.h"

using namespace eant;

int main(int argc, char** argv) {
  exp::Cli cli(argc, argv, "ablation_feedback");
  cli.done();

  TextTable nf("ablation: cross-colony negative feedback (Eq. 6)");
  nf.set_header({"variant", "energy (kJ)", "mean JCT (s)"});
  for (bool enabled : {false, true}) {
    exp::RunConfig cfg = bench::run_config();
    cfg.eant.negative_feedback = enabled;
    const auto m = bench::run_msd(exp::SchedulerKind::kEAnt, cfg);
    nf.add_row({enabled ? "with Eq. 6" : "without Eq. 6",
                TextTable::num(m.total_energy_kj(), 0),
                TextTable::num(m.mean_completion(), 1)});
  }
  nf.print();
  std::puts("");

  TextTable rho("ablation: evaporation coefficient rho (Eq. 4)");
  rho.set_header({"rho", "energy (kJ)", "mean JCT (s)"});
  for (double r : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    exp::RunConfig cfg = bench::run_config();
    cfg.eant.rho = r;
    const auto m = bench::run_msd(exp::SchedulerKind::kEAnt, cfg);
    rho.add_row({TextTable::num(r, 1), TextTable::num(m.total_energy_kj(), 0),
                 TextTable::num(m.mean_completion(), 1)});
  }
  rho.print();
  std::puts(
      "\nlow rho = slow learning (stale trails); high rho = jittery trails; "
      "the paper's worked example uses 0.5");
  return 0;
}
