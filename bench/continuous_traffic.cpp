// continuous_traffic — the multi-tenant open-loop bake-off.
//
// Replays the canonical three-tenant diurnal mix (tenancy/presets.h) on the
// paper's 16-node fleet under Fair, tenant-mode Capacity and E-Ant, and
// reports the per-tenant SLO picture: latency percentiles, mean slowdown
// against per-class standalone runtimes, Eq. 2 energy per job, preemptions
// and deadline misses.  Unlike the closed fig8 batch, arrivals are open-loop
// — load follows the trace no matter how far the scheduler falls behind —
// so tenant interference, share enforcement and deadline pressure are
// visible instead of averaged away.
//
// Usage: continuous_traffic [hours] [seed] [rate-scale]
// (default: 48-hour horizon, seed 42, 1x arrival rates — ~25 jobs/hour;
// rate-scale multiplies every tenant's arrival rate, pushing the diurnal
// peaks into saturation where share enforcement and preemption engage)

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "exp/cli.h"
#include "exp/runner.h"
#include "tenancy/presets.h"
#include "tenancy/traffic.h"

using namespace eant;

namespace {

sched::TenantShareConfig tenant_shares(const tenancy::TrafficConfig& mix) {
  sched::TenantShareConfig share;
  for (const auto& t : mix.tenants) {
    share.tenants.push_back(
        sched::TenantQueue{t.profile.tenant, t.profile.name, t.profile.weight});
  }
  return share;
}

/// Standalone runtime per job class, calibrated from the class's median-input
/// job — the denominator of the slowdown metric (Sec. VI-D).
std::map<std::string, Seconds> calibrate_standalone(
    const std::vector<workload::JobSpec>& jobs, const exp::RunConfig& cfg) {
  std::map<std::string, std::vector<workload::JobSpec>> by_class;
  for (const auto& j : jobs) by_class[j.class_key()].push_back(j);
  std::map<std::string, Seconds> standalone;
  for (auto& [key, members] : by_class) {
    std::sort(members.begin(), members.end(),
              [](const workload::JobSpec& a, const workload::JobSpec& b) {
                return a.input_mb < b.input_mb;
              });
    workload::JobSpec rep = members[members.size() / 2];
    rep.tenant = 0;
    rep.deadline = -1.0;
    standalone[key] = exp::standalone_runtime(exp::paper_fleet(), rep, cfg);
  }
  return standalone;
}

}  // namespace

int main(int argc, char** argv) {
  exp::Cli cli(argc, argv, "continuous_traffic [hours] [seed] [rate-scale]");
  const int hours = static_cast<int>(cli.int_arg("hours", 48, 1, 24 * 10));
  const auto seed =
      static_cast<std::uint64_t>(cli.int_arg("seed", 42, 1, 1 << 30));
  const int rate_scale = static_cast<int>(cli.int_arg("rate-scale", 1, 1, 50));
  cli.done();

  auto mix = tenancy::presets::three_tenant_mix(
      hours * 3600.0, static_cast<double>(rate_scale));
  const sched::TenantShareConfig shares = tenant_shares(mix);
  std::map<workload::TenantId, std::string> tenant_names;
  for (const auto& t : mix.tenants) {
    tenant_names[t.profile.tenant] = t.profile.name;
  }
  const tenancy::TrafficGenerator generator(std::move(mix));
  Rng rng(seed);
  const std::vector<workload::JobSpec> jobs = generator.generate(rng);

  std::printf("== continuous traffic: %zu jobs over %d h, %zu tenants ==\n",
              jobs.size(), hours, shares.tenants.size());

  const exp::RunConfig base_cfg = bench::run_config(seed);
  const auto standalone = calibrate_standalone(jobs, base_cfg);

  std::printf(
      "\n%-9s %-12s %6s %9s %9s %9s %10s %9s %8s %7s\n", "scheduler", "tenant",
      "jobs", "p50 (s)", "p95 (s)", "p99 (s)", "slowdown", "kJ/job", "preempt",
      "miss");
  for (const exp::SchedulerKind kind :
       {exp::SchedulerKind::kFair, exp::SchedulerKind::kCapacity,
        exp::SchedulerKind::kEAnt}) {
    exp::RunConfig cfg = base_cfg;
    if (kind == exp::SchedulerKind::kCapacity) cfg.tenancy = shares;
    exp::Run run(exp::paper_fleet(), kind, cfg);
    run.submit(jobs);
    run.execute();
    const exp::RunMetrics m = run.metrics();

    // Mean slowdown per tenant over completed jobs.
    std::map<workload::TenantId, double> slowdown_sum;
    std::map<workload::TenantId, std::size_t> slowdown_n;
    for (const auto& j : m.jobs) {
      if (j.failed) continue;
      slowdown_sum[j.tenant] += j.completion_time / standalone.at(j.class_name);
      ++slowdown_n[j.tenant];
    }

    for (const auto& t : m.by_tenant) {
      const double slowdown =
          slowdown_n[t.tenant] == 0
              ? 0.0
              : slowdown_sum[t.tenant] /
                    static_cast<double>(slowdown_n[t.tenant]);
      std::printf(
          "%-9s %-12s %6zu %9.0f %9.0f %9.0f %10.2f %9.1f %8zu %7zu\n",
          m.scheduler_name.c_str(), tenant_names[t.tenant].c_str(), t.jobs,
          t.latency_p50, t.latency_p95, t.latency_p99, slowdown,
          t.energy_per_job_kj(), t.preemptions, t.deadline_misses);
    }
    std::printf(
        "%-9s %-12s makespan %.1f h  energy %.0f kJ  preemptions %zu  "
        "deadline misses %zu  jobs failed %zu\n\n",
        m.scheduler_name.c_str(), "(total)", m.makespan / 3600.0,
        m.total_energy_kj(), m.preempted_attempts, m.deadline_misses,
        m.jobs_failed);
  }
  return 0;
}
