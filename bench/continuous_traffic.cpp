// continuous_traffic — the multi-tenant open-loop bake-off.
//
// Replays the canonical three-tenant diurnal mix (tenancy/presets.h) on the
// paper's 16-node fleet under Fair, tenant-mode Capacity and E-Ant, and
// reports the per-tenant SLO picture: latency percentiles, mean slowdown
// against per-class standalone runtimes, Eq. 2 energy per job, preemptions
// and deadline misses.  Unlike the closed fig8 batch, arrivals are open-loop
// — load follows the trace no matter how far the scheduler falls behind —
// so tenant interference, share enforcement and deadline pressure are
// visible instead of averaged away.
//
// Usage: continuous_traffic [hours] [seed] [rate-scale] [seeds] [threads]
//                           [admission]
// (default: 48-hour horizon, seed 42, 1x arrival rates — ~25 jobs/hour;
// rate-scale multiplies every tenant's arrival rate, pushing the diurnal
// peaks into saturation where share enforcement and preemption engage;
// seeds > 1 sweeps consecutive seeds — each with its own generated arrival
// trace — through the thread-per-seed driver and appends a cross-seed
// aggregate per scheduler; threads sizes the worker pool, 0 = hardware;
// the trailing `admission` keyword turns on overload protection — admission
// control, backpressure and brownout — and appends its per-run accounting)

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "exp/cli.h"
#include "exp/parallel_for.h"
#include "exp/runner.h"
#include "tenancy/presets.h"
#include "tenancy/traffic.h"

using namespace eant;

namespace {

sched::TenantShareConfig tenant_shares(const tenancy::TrafficConfig& mix) {
  sched::TenantShareConfig share;
  for (const auto& t : mix.tenants) {
    share.tenants.push_back(
        sched::TenantQueue{t.profile.tenant, t.profile.name, t.profile.weight});
  }
  return share;
}

/// Standalone runtime per job class, calibrated from the class's median-input
/// job — the denominator of the slowdown metric (Sec. VI-D).
std::map<std::string, Seconds> calibrate_standalone(
    const std::vector<workload::JobSpec>& jobs, const exp::RunConfig& cfg) {
  std::map<std::string, std::vector<workload::JobSpec>> by_class;
  for (const auto& j : jobs) by_class[j.class_key()].push_back(j);
  std::map<std::string, Seconds> standalone;
  for (auto& [key, members] : by_class) {
    std::sort(members.begin(), members.end(),
              [](const workload::JobSpec& a, const workload::JobSpec& b) {
                return a.input_mb < b.input_mb;
              });
    workload::JobSpec rep = members[members.size() / 2];
    rep.tenant = 0;
    rep.deadline = -1.0;
    standalone[key] = exp::standalone_runtime(exp::paper_fleet(), rep, cfg);
  }
  return standalone;
}

}  // namespace

int main(int argc, char** argv) {
  exp::Cli cli(argc, argv,
               "continuous_traffic [hours] [seed] [rate-scale] [seeds] "
               "[threads] [admission]");
  const int hours = static_cast<int>(cli.int_arg("hours", 48, 1, 24 * 10));
  const auto seed =
      static_cast<std::uint64_t>(cli.int_arg("seed", 42, 1, 1 << 30));
  const double rate_scale = cli.double_arg("rate-scale", 1.0, 0.05, 50.0);
  const auto num_seeds =
      static_cast<std::size_t>(cli.int_arg("seeds", 1, 1, 64));
  const auto threads = static_cast<unsigned>(cli.int_arg("threads", 1, 0, 64));
  // bool_arg keeps the historical bare-"admission" spelling working while
  // also taking on/off — so "... 1 1 off" and "... 1 1 admission" both parse.
  const bool admission = cli.bool_arg("admission", false);
  cli.done();

  auto mix = tenancy::presets::three_tenant_mix(hours * 3600.0, rate_scale);
  const sched::TenantShareConfig shares = tenant_shares(mix);
  std::map<workload::TenantId, std::string> tenant_names;
  for (const auto& t : mix.tenants) {
    tenant_names[t.profile.tenant] = t.profile.name;
  }
  const tenancy::TrafficGenerator generator(std::move(mix));

  // One arrival trace per sweep seed: the trace is a function of the seed,
  // so every cell gets its own job list (generated up front — the cells
  // themselves must only read shared state).
  std::vector<std::vector<workload::JobSpec>> jobs_by_seed(num_seeds);
  for (std::size_t i = 0; i < num_seeds; ++i) {
    Rng rng(seed + i);
    jobs_by_seed[i] = generator.generate(rng);
  }
  const std::vector<workload::JobSpec>& jobs = jobs_by_seed.front();

  std::printf("== continuous traffic: %zu jobs over %d h, %zu tenants ==\n",
              jobs.size(), hours, shares.tenants.size());

  const exp::RunConfig base_cfg = bench::run_config(seed);
  const auto standalone = calibrate_standalone(jobs, base_cfg);

  std::printf(
      "\n%-9s %-12s %6s %9s %9s %9s %10s %9s %8s %7s\n", "scheduler", "tenant",
      "jobs", "p50 (s)", "p95 (s)", "p99 (s)", "slowdown", "kJ/job", "preempt",
      "miss");
  for (const exp::SchedulerKind kind :
       {exp::SchedulerKind::kFair, exp::SchedulerKind::kCapacity,
        exp::SchedulerKind::kEAnt}) {
    // Thread-per-seed sweep (exp/parallel_for.h): cell i runs seed + i on
    // its own single-threaded simulator stack against its own trace.  The
    // detailed tenant table below reads cell 0, which is bit-identical to
    // the pre-sweep single-run output at any thread count.
    std::vector<exp::RunMetrics> results(num_seeds);
    exp::parallel_for(num_seeds, threads, [&](std::size_t i) {
      exp::RunConfig cfg = bench::run_config(seed + i);
      if (kind == exp::SchedulerKind::kCapacity) cfg.tenancy = shares;
      if (admission) {
        cfg.job_tracker.admission.enabled = true;
        for (const auto& q : shares.tenants) {
          cfg.job_tracker.admission.tenants.push_back(
              mr::AdmissionTenantPolicy{q.tenant, q.weight});
        }
      }
      exp::Run run(exp::paper_fleet(), kind, cfg);
      run.submit(jobs_by_seed[i]);
      run.execute();
      results[i] = run.metrics();
    });
    const exp::RunMetrics& m = results.front();

    // Mean slowdown per tenant over completed jobs.
    std::map<workload::TenantId, double> slowdown_sum;
    std::map<workload::TenantId, std::size_t> slowdown_n;
    for (const auto& j : m.jobs) {
      if (j.failed) continue;
      slowdown_sum[j.tenant] += j.completion_time / standalone.at(j.class_name);
      ++slowdown_n[j.tenant];
    }

    for (const auto& t : m.by_tenant) {
      const double slowdown =
          slowdown_n[t.tenant] == 0
              ? 0.0
              : slowdown_sum[t.tenant] /
                    static_cast<double>(slowdown_n[t.tenant]);
      std::printf(
          "%-9s %-12s %6zu %9.0f %9.0f %9.0f %10.2f %9.1f %8zu %7zu\n",
          m.scheduler_name.c_str(), tenant_names[t.tenant].c_str(), t.jobs,
          t.latency_p50, t.latency_p95, t.latency_p99, slowdown,
          t.energy_per_job_kj(), t.preemptions, t.deadline_misses);
    }
    std::printf(
        "%-9s %-12s makespan %.1f h  energy %.0f kJ  preemptions %zu  "
        "deadline misses %zu  jobs failed %zu\n",
        m.scheduler_name.c_str(), "(total)", m.makespan / 3600.0,
        m.total_energy_kj(), m.preempted_attempts, m.deadline_misses,
        m.jobs_failed);
    if (m.admission_active) {
      // Extra line only in admission mode: the default output stays
      // bit-identical to the pre-admission bench.
      std::printf(
          "%-9s %-12s rejected %zu  dropped %zu  retries %zu  "
          "transitions %zu  saturated %.2f h  critical %.2f h\n",
          m.scheduler_name.c_str(), "(admission)", m.jobs_rejected,
          m.jobs_dropped, m.admission_retries, m.overload_transitions,
          m.time_saturated / 3600.0, m.time_critical / 3600.0);
    }
    if (num_seeds > 1) {
      // Cross-seed aggregate: mean +/- population stddev over the sweep.
      double sum_mk = 0.0, sq_mk = 0.0, sum_kj = 0.0;
      std::size_t misses = 0, preempts = 0, failed = 0;
      for (const auto& r : results) {
        const double h_mk = r.makespan / 3600.0;
        sum_mk += h_mk;
        sq_mk += h_mk * h_mk;
        sum_kj += r.total_energy_kj();
        misses += r.deadline_misses;
        preempts += r.preempted_attempts;
        failed += r.jobs_failed;
      }
      const double n = static_cast<double>(num_seeds);
      const double mean_mk = sum_mk / n;
      const double var_mk = std::max(0.0, sq_mk / n - mean_mk * mean_mk);
      std::printf(
          "%-9s %-12s makespan %.1f +/- %.1f h  energy %.0f kJ/seed  "
          "preemptions %zu  deadline misses %zu  jobs failed %zu  "
          "(%zu seeds)\n",
          m.scheduler_name.c_str(), "(sweep)", mean_mk, std::sqrt(var_mk),
          sum_kj / n, preempts, misses, failed, num_seeds);
    }
    std::printf("\n");
  }
  return 0;
}
