// Chaos campaign — the degraded-mode acceptance gauntlet.  Runs the MSD
// workload on the oversubscribed 4-rack fabric under every default fault mix
// (machine crashes, link flaps, a rack partition, datanode losses deep
// enough to force re-replication, fetch-failure noise, two fail-slow mixes,
// two control-plane mixes — JobTracker crashes with checkpoint replay, and a
// correlated JobTracker + NameNode outage during a rack partition — two
// silent-corruption mixes — a corruption storm under aggressive scrubbing,
// and bit rot on a fail-slow machine with task-output verification — and
// everything at once) across a seed matrix, with the InvariantAuditor as the
// oracle.
//
// A cell passes only if every job completes, the auditor reports zero
// violations, and no block ends the run under-replicated without either a
// queued repair or a recorded data-loss event; the first seed of each mix is
// re-run and must reproduce its determinism digest bit-for-bit.  The binary
// exits non-zero if any cell fails, so CI can use it as a smoke gate.
//
// Usage: chaos_campaign [num_seeds] [quick] [threads]
//   num_seeds: seeds per mix (default 4 -> 12 mixes x 4 seeds = 48 cells)
//   quick:     replace the full MSD workload with a small Terasort batch —
//              the CI smoke configuration (every fault path still fires;
//              the scripted fault times scale with the probed horizon)
//   threads:   worker threads for the (seed x mix) matrix (default 1 =
//              serial; 0 = one per hardware thread).  Each cell is an
//              independent single-threaded Run, so the table and every
//              digest are bit-identical at any thread count — the TSan CI
//              lane runs this binary parallel to prove it race-free.

#include <cstdio>

#include "bench_common.h"
#include "common/table.h"
#include "exp/chaos.h"
#include "exp/cli.h"

using namespace eant;

int main(int argc, char** argv) {
  exp::Cli cli(argc, argv, "chaos_campaign [num_seeds] [quick] [threads]");
  const auto num_seeds =
      static_cast<std::size_t>(cli.int_arg("num_seeds", 4, 1, 64));
  const bool quick = cli.keyword_arg("quick");
  const auto threads = static_cast<unsigned>(cli.int_arg("threads", 1, 0, 64));
  cli.done();

  // Base configuration: the canonical workload on the oversubscribed fabric.
  // The expiry window is scaled with the bench (see fig13_fault_recovery):
  // Hadoop's 600 s default would outlast most of these scaled jobs and let
  // speculation mask every loss before it is declared.
  exp::RunConfig base = bench::run_config();
  base.topology = net::TopologySpec::oversubscribed();
  base.job_tracker.tracker_expiry_window = 30.0;

  const std::vector<workload::JobSpec> jobs =
      quick ? exp::job_batch(workload::AppKind::kTerasort, 3000.0, 8, 3)
            : bench::msd_workload();

  // Calibrate the fault horizon from a fault-free run, so scripted faults
  // land mid-campaign regardless of workload scaling.
  exp::Run probe(exp::paper_fleet(), exp::SchedulerKind::kEAnt, base);
  probe.submit(jobs);
  probe.execute();
  const Seconds horizon = probe.metrics().makespan;
  std::printf("fault-free E-Ant makespan: %.0f s (campaign horizon)\n\n",
              horizon);

  exp::ChaosConfig cc;
  cc.seeds.clear();
  for (std::uint64_t s = 1; s <= num_seeds; ++s) cc.seeds.push_back(s);
  cc.horizon = horizon;
  cc.verify_determinism = true;
  cc.threads = threads;

  const std::vector<exp::ChaosOutcome> outcomes =
      exp::run_chaos_campaign(exp::paper_fleet(), exp::SchedulerKind::kEAnt,
                              base, jobs, exp::default_chaos_mixes(), cc);

  TextTable t("Chaos campaign: E-Ant on the oversubscribed fabric (" +
              std::to_string(outcomes.size()) + " cells)");
  t.set_header({"mix", "seed", "makespan (s)", "jobs failed", "fetch fail",
                "maps re-run", "re-repl", "data loss", "link faults",
                "master", "orphans", "violations", "det", "verdict"});
  std::size_t failures = 0;
  for (const auto& o : outcomes) {
    const bool ok = o.survived && o.deterministic;
    if (!ok) ++failures;
    t.add_row({o.mix, std::to_string(o.seed),
               TextTable::num(o.metrics.makespan, 0),
               std::to_string(o.metrics.jobs_failed),
               std::to_string(o.metrics.fetch_failures),
               std::to_string(o.metrics.lost_map_outputs),
               std::to_string(o.metrics.rereplicated_blocks),
               std::to_string(o.metrics.data_loss_events),
               std::to_string(o.metrics.link_faults),
               std::to_string(o.metrics.master_crashes),
               std::to_string(o.metrics.orphans_committed +
                              o.metrics.orphans_requeued),
               std::to_string(o.audit_violations),
               o.deterministic ? "yes" : "NO",
               ok ? "survived" : "FAILED"});
  }
  t.print();
  std::puts(
      "\nsurvived = all jobs completed, zero auditor violations, every block "
      "either fully replicated,\nqueued for repair, or recorded as lost; det "
      "= first-seed re-run reproduced the determinism digest");

  if (failures > 0) {
    std::printf("\nCHAOS CAMPAIGN FAILED: %zu of %zu cells\n", failures,
                outcomes.size());
    return 1;
  }
  std::printf("\nCHAOS CAMPAIGN PASSED: %zu/%zu cells survived\n",
              outcomes.size(), outcomes.size());
  return 0;
}
