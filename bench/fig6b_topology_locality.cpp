// Topology companion to Fig. 6: what rack-level contention does to each
// application class.  The same three-app workload (Wordcount / Grep /
// Terasort batches) runs under every scheduler on two fabrics:
//
//   flat    — one rack, unlimited links; flows are bound only by their own
//             caps, so results match the legacy scalar-bandwidth model;
//   oversub — four racks behind scarce 25 MB/s trunks (the Fig. 1(d)
//             regime, see TopologySpec::oversubscribed).
//
// The closing table reruns each application alone (Fair scheduler, as in the
// paper's motivation experiments) and shows its oversub/flat completion
// ratio: the shuffle-bound apps (Grep, Terasort) degrade more than the
// map-dominated Wordcount, reproducing the paper's observation that network
// cost — not CPU — separates the application classes.
//
// Usage: fig6b_topology_locality [jobs-per-app]   (default 3)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/table.h"
#include "exp/cli.h"
#include "net/topology.h"

using namespace eant;

namespace {

constexpr double kInputMb = 3000.0;
constexpr int kReduces = 8;

const std::vector<exp::SchedulerKind> kSchedulers = {
    exp::SchedulerKind::kFifo,   exp::SchedulerKind::kFair,
    exp::SchedulerKind::kCapacity, exp::SchedulerKind::kTarazu,
    exp::SchedulerKind::kLate,   exp::SchedulerKind::kEAnt};

exp::RunMetrics run_one(exp::SchedulerKind kind,
                        std::optional<net::TopologySpec> topo,
                        int jobs_per_app) {
  exp::RunConfig cfg = bench::run_config();
  cfg.topology = topo;
  exp::Run run(exp::paper_fleet(), kind, cfg);
  for (workload::AppKind app : workload::all_apps()) {
    run.submit(exp::job_batch(app, kInputMb, kReduces, jobs_per_app));
  }
  run.execute();
  return run.metrics();
}

/// One application alone under Fair, as in the paper's Fig. 1 motivation.
Seconds run_solo(workload::AppKind app, std::optional<net::TopologySpec> topo,
                 int jobs_per_app) {
  exp::RunConfig cfg = bench::run_config();
  cfg.topology = topo;
  exp::Run run(exp::paper_fleet(), exp::SchedulerKind::kFair, cfg);
  run.submit(exp::job_batch(app, kInputMb, kReduces, jobs_per_app));
  run.execute();
  return run.metrics().mean_completion();
}

std::string pct(double fraction) {
  return TextTable::num(100.0 * fraction, 1) + "%";
}

}  // namespace

int main(int argc, char** argv) {
  exp::Cli cli(argc, argv, "fig6b_topology_locality [jobs-per-app]");
  const int jobs_per_app =
      static_cast<int>(cli.int_arg("jobs-per-app", 3, 1, 1000));
  cli.done();

  struct Case {
    std::string label;
    std::optional<net::TopologySpec> topo;
  };
  const std::vector<Case> cases = {
      {"flat", net::TopologySpec::flat()},
      {"oversub", net::TopologySpec::oversubscribed()}};

  // results[case][scheduler]
  std::vector<std::vector<exp::RunMetrics>> results;
  for (const auto& c : cases) {
    auto& row = results.emplace_back();
    for (exp::SchedulerKind kind : kSchedulers) {
      row.push_back(run_one(kind, c.topo, jobs_per_app));
    }
  }

  TextTable t("Fig 6(b): schedulers on a flat vs oversubscribed fabric (" +
              std::to_string(3 * jobs_per_app) + " jobs)");
  t.set_header({"topology", "scheduler", "makespan (min)", "energy (kJ)",
                "node-local", "rack-local", "off-rack", "flow slowdown",
                "peak link util"});
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    for (std::size_t si = 0; si < kSchedulers.size(); ++si) {
      const auto& rm = results[ci][si];
      const double off = 1.0 - rm.locality_fraction() -
                         rm.rack_locality_fraction();
      t.add_row({cases[ci].label, rm.scheduler_name,
                 TextTable::num(rm.makespan / 60.0, 1),
                 TextTable::num(rm.total_energy_kj(), 0),
                 pct(rm.locality_fraction()), pct(rm.rack_locality_fraction()),
                 pct(off), TextTable::num(rm.network.mean_flow_slowdown, 3),
                 TextTable::num(rm.network.peak_link_utilization, 2)});
    }
  }
  t.print();
  std::puts("");

  TextTable r(
      "each application alone (Fair): mean completion time, "
      "oversubscribed / flat");
  r.set_header({"application", "flat (min)", "oversub (min)", "ratio"});
  for (workload::AppKind app : workload::all_apps()) {
    const Seconds flat = run_solo(app, cases[0].topo, jobs_per_app);
    const Seconds over = run_solo(app, cases[1].topo, jobs_per_app);
    r.add_row({workload::app_name(app), TextTable::num(flat / 60.0, 2),
               TextTable::num(over / 60.0, 2), TextTable::num(over / flat, 3)});
  }
  r.print();
  std::puts(
      "paper (Fig. 1(d)): the shuffle-heavy Grep/Terasort pay more for the "
      "oversubscribed trunks than the map-dominated Wordcount");
  return 0;
}
