// Reproduces Fig. 9: E-Ant's task-assignment adaptiveness.
//   (a) completed tasks per machine type per application — CPU-bound work
//       concentrates on the compute-optimised servers, IO-bound work on the
//       desktops/Atom (relative shares);
//   (b) map vs reduce placement per machine type.

#include <cstdio>

#include "bench_common.h"
#include "common/table.h"
#include "exp/cli.h"

using namespace eant;

int main(int argc, char** argv) {
  exp::Cli cli(argc, argv, "fig9_adaptiveness");
  cli.done();

  const auto m = bench::run_msd(exp::SchedulerKind::kEAnt);

  TextTable a("Fig 9(a): completed tasks by machine type and application");
  a.set_header({"machine type", "Wordcount", "Grep", "Terasort",
                "Wordcount share"});
  auto count = [](const exp::TypeMetrics& t, const char* app) {
    const auto it = t.tasks_by_app.find(app);
    return it == t.tasks_by_app.end() ? std::size_t{0} : it->second;
  };
  for (const auto& t : m.by_type) {
    const double wc = static_cast<double>(count(t, "Wordcount"));
    const double gr = static_cast<double>(count(t, "Grep"));
    const double ts = static_cast<double>(count(t, "Terasort"));
    const double total = std::max(1.0, wc + gr + ts);
    a.add_row({t.type_name, TextTable::num(wc, 0), TextTable::num(gr, 0),
               TextTable::num(ts, 0), TextTable::num(wc / total, 2)});
  }
  a.print();
  std::puts(
      "paper: the compute-optimised servers host relatively more Wordcount "
      "(CPU-bound); desktops/Atom host relatively more Grep/Terasort "
      "(IO-bound)\n");

  TextTable b("Fig 9(b): map vs reduce placement by machine type");
  b.set_header({"machine type", "maps", "reduces", "reduce share"});
  for (const auto& t : m.by_type) {
    const double maps = static_cast<double>(t.completed_maps);
    const double reds = static_cast<double>(t.completed_reduces);
    b.add_row({t.type_name, TextTable::num(maps, 0), TextTable::num(reds, 0),
               TextTable::num(reds / std::max(1.0, maps + reds), 2)});
  }
  b.print();
  std::puts(
      "paper: servers host relatively more (CPU-intensive) maps; desktops "
      "and the Atom host relatively more (IO-intensive) reduces");
  return 0;
}
