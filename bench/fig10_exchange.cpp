// Reproduces Fig. 10: effectiveness of the information-exchange strategies
// (Sec. IV-D) under system noise.  The same noisy MSD workload runs with
// no exchange, machine-level only, job-level only, and both; the energy
// saving over heterogeneity-agnostic Hadoop (FIFO) is reported.
// (Paper: machine-level +7%, job-level +10%, both +15% over no exchange.)

#include <cstdio>

#include "bench_common.h"
#include "common/table.h"
#include "exp/cli.h"

using namespace eant;

int main(int argc, char** argv) {
  exp::Cli cli(argc, argv, "fig10_exchange");
  cli.done();

  // Heavier noise than the default makes the smoothing earn its keep.
  exp::RunConfig base = bench::run_config();
  base.noise = mr::NoiseConfig::typical();
  base.noise.measurement_sigma = 0.15;
  base.noise.demand_jitter_sigma = 0.25;

  const auto baseline = bench::run_msd(exp::SchedulerKind::kFifo, base);

  struct Variant {
    const char* name;
    bool machine;
    bool job;
  };
  const Variant variants[] = {
      {"no exchange", false, false},
      {"+ machine-level", true, false},
      {"+ job-level", false, true},
      {"+ both", true, true},
  };

  TextTable t("Fig 10: energy saving vs heterogeneity-agnostic Hadoop");
  t.set_header({"exchange strategy", "energy (kJ)", "saving vs FIFO"});
  t.add_row({"FIFO baseline", TextTable::num(baseline.total_energy_kj(), 0),
             "-"});
  double no_exchange_saving = 0.0;
  for (const auto& v : variants) {
    exp::RunConfig cfg = base;
    cfg.eant.machine_exchange = v.machine;
    cfg.eant.job_exchange = v.job;
    const auto m = bench::run_msd(exp::SchedulerKind::kEAnt, cfg);
    const double saving =
        100.0 * (baseline.total_energy - m.total_energy) /
        baseline.total_energy;
    if (!v.machine && !v.job) no_exchange_saving = saving;
    t.add_row({v.name, TextTable::num(m.total_energy_kj(), 0),
               TextTable::num(saving, 1) + "%"});
  }
  t.print();
  std::printf(
      "no-exchange saving: %.1f%%; paper: exchange adds +7%% "
      "(machine-level), +10%% (job-level), +15%% (both) relative to "
      "no-exchange\n",
      no_exchange_saving);
  return 0;
}
