// Reproduces Fig. 6: impact of data locality on job completion time.  The
// same Wordcount job runs with a forced fraction of node-local map tasks
// (10% / 40% / 80%, as in the paper); completion time decreases as locality
// increases because remote splits pay the network read penalty.

#include <cstdio>

#include "common/rng.h"
#include "common/table.h"
#include "exp/builders.h"
#include "exp/runner.h"
#include "exp/cli.h"

using namespace eant;

namespace {

Seconds run_with_locality(double local_fraction) {
  exp::RunConfig cfg;
  cfg.seed = 21;
  // Deterministic per-task coin with its own stream, so every run forces
  // the same expected locality fraction regardless of scheduler choices.
  auto coin = std::make_shared<Rng>(Rng(99).fork(7));
  cfg.job_tracker.locality_override =
      [coin, local_fraction](const mr::TaskSpec&, cluster::MachineId) {
        return coin->bernoulli(local_fraction);
      };
  exp::Run run(exp::paper_fleet(), exp::SchedulerKind::kFair, cfg);
  // Multiple Wordcount jobs with the same input size, as in the paper.
  auto jobs = exp::job_batch(workload::AppKind::kWordcount, 64.0 * 48, 4, 4);
  run.submit(jobs);
  run.execute();
  return run.metrics().mean_completion();
}

}  // namespace

int main(int argc, char** argv) {
  exp::Cli cli(argc, argv, "fig6_locality");
  cli.done();

  TextTable t("Fig 6: job completion time vs data locality");
  t.set_header({"% local data", "mean completion (min)"});
  for (double pct : {10.0, 40.0, 80.0}) {
    const Seconds jct = run_with_locality(pct / 100.0);
    t.add_row({TextTable::num(pct, 0), TextTable::num(jct / 60.0, 2)});
  }
  t.print();
  std::puts(
      "paper: completion time decreases as the fraction of node-local map "
      "tasks increases");
  return 0;
}
