// Microbenchmarks (google-benchmark) of E-Ant's hot paths.  The paper
// reports the self-adaptive ACO step at ~120 ms per 5-minute control
// interval on their JobTracker (Sec. VI-D); these benches measure our
// equivalents: deposit computation, the exchange transforms, pheromone
// application and the per-heartbeat job sampler, plus the event queue.

#include <benchmark/benchmark.h>

#include "cluster/catalog.h"
#include "cluster/cluster.h"
#include "common/rng.h"
#include "core/aco.h"
#include "core/exchange.h"
#include "core/pheromone.h"
#include "sim/simulator.h"

using namespace eant;

namespace {

std::vector<core::EstimatedReport> make_interval(std::size_t tasks,
                                                 std::size_t jobs,
                                                 std::size_t machines) {
  Rng rng(1);
  std::vector<core::EstimatedReport> interval;
  interval.reserve(tasks);
  for (std::size_t i = 0; i < tasks; ++i) {
    core::EstimatedReport er;
    er.report.spec.job = i % jobs;
    er.report.spec.kind =
        i % 5 == 0 ? mr::TaskKind::kReduce : mr::TaskKind::kMap;
    er.report.machine = static_cast<cluster::MachineId>(
        rng.uniform_int(0, static_cast<std::int64_t>(machines) - 1));
    er.energy = rng.uniform(100.0, 2000.0);
    interval.push_back(er);
  }
  return interval;
}

void BM_ComputeDeposits(benchmark::State& state) {
  const auto tasks = static_cast<std::size_t>(state.range(0));
  const auto interval = make_interval(tasks, 16, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compute_deposits(interval, 16));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(tasks));
}
BENCHMARK(BM_ComputeDeposits)->Arg(100)->Arg(1000)->Arg(10000);

void BM_FullControlTickPipeline(benchmark::State& state) {
  // The complete per-interval update for a 16-machine, 16-colony cluster:
  // deposits -> machine exchange -> job exchange -> centring -> apply.
  const auto interval =
      make_interval(static_cast<std::size_t>(state.range(0)), 16, 16);
  sim::Simulator sim;
  cluster::Cluster cluster(sim);
  cluster::add_paper_fleet(cluster);
  core::PheromoneTable table(16, 0.5);
  for (mr::JobId j = 0; j < 16; ++j) table.add_job(j, "class");
  const auto key = [](mr::JobId j) {
    return j % 2 == 0 ? std::string("Wordcount") : std::string("Grep");
  };
  for (auto _ : state) {
    auto deposits = core::compute_deposits(interval, 16);
    deposits = core::machine_level_exchange(deposits, cluster);
    deposits = core::job_level_exchange(deposits, key);
    deposits = core::apply_negative_feedback(deposits, key);
    deposits = core::center_deposits(deposits, 1.0);
    table.apply(deposits);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_FullControlTickPipeline)->Arg(1000)->Arg(10000);

void BM_SampleJob(benchmark::State& state) {
  const auto jobs = static_cast<std::size_t>(state.range(0));
  core::PheromoneTable table(16, 0.5);
  std::vector<mr::JobId> candidates;
  for (mr::JobId j = 0; j < jobs; ++j) {
    table.add_job(j);
    candidates.push_back(j);
  }
  Rng rng(2);
  const auto eta = [](mr::JobId) { return 1.0; };
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::sample_job(
        table, rng, candidates, mr::TaskKind::kMap, 3, eta, 0.1));
  }
}
BENCHMARK(BM_SampleJob)->Arg(4)->Arg(16)->Arg(87);

void BM_EventQueue(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    Rng rng(3);
    for (std::size_t i = 0; i < events; ++i) {
      sim.schedule_at(rng.uniform(0.0, 1000.0), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.executed());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_EventQueue)->Arg(1000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
