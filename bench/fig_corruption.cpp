// fig_corruption — silent-data-corruption economics (extension).
//
// Sweeps stochastic replica bit rot (plus rate-proportional shuffle-payload
// and task-output corruption, so all three detection paths carry traffic)
// at two strike rates against three scrub configurations (no scrubbing —
// read-time detection only — plus a lazy and an aggressive scrub period)
// under Fair, Tarazu and E-Ant on the MSD workload (on the oversubscribed
// fabric, where the verified shuffle actually rides the fetch path), and
// reports the
// integrity picture per cell: corruptions injected / detected / repaired /
// lost / still latent, shuffle and task-output corruptions caught,
// mean detection latency, scrub and repair traffic, and the energy bill —
// wasted_energy_corruption (work redone because its input or output was
// corrupt) as an attributed slice of total wasted energy.  Every cell runs
// audited, so the corruption-conservation invariant (every injected
// corruption is detected + repaired, lost loudly, or latent at finalize) is
// checked inside every run.  Emits BENCH_fig_corruption.json.
//
// The bench exits 1 if any scheduler fails a job at the default (low)
// corruption rate, if any cell's wasted-energy attribution is inconsistent
// (corruption waste must be a subset of wasted energy, which is a subset of
// total energy), or if any cell reports an error-severity audit violation.
//
// Usage: fig_corruption [quick] [seed] [threads] [out.json]
//   quick:    on/off (or the bare word "quick"): small Terasort batch
//             instead of the full MSD mix (CI smoke); default off
//   seed:     base RNG seed (default 42)
//   threads:  workers for the cell matrix (default 4, 0 = hardware)
//   out.json: output path (default BENCH_fig_corruption.json)

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/table.h"
#include "exp/cli.h"
#include "exp/parallel_for.h"
#include "exp/runner.h"
#include "net/topology.h"

using namespace eant;

namespace {

/// Expected corruption strikes per machine over the fault-free horizon.
constexpr double kRates[] = {0.5, 2.0};
/// Scrub period as a fraction of the horizon; 0 = scrubbing disabled.
constexpr double kScrubPeriods[] = {0.0, 0.10, 0.02};

struct Cell {
  exp::SchedulerKind kind = exp::SchedulerKind::kFair;
  double rate = 0.0;          ///< strikes per machine over the horizon
  double scrub_frac = 0.0;    ///< scrub period / horizon (0 = off)
};

struct CellRow {
  Cell cell;
  exp::RunMetrics m;
  std::size_t audit_errors = 0;
};

CellRow run_cell(const Cell& cell, const std::vector<workload::JobSpec>& jobs,
                 Seconds horizon, std::uint64_t seed) {
  exp::RunConfig cfg = bench::run_config(seed);
  // Shuffle verification lives on the fabric fetch path (on_flow_complete);
  // without a topology the legacy scalar model skips flows entirely and the
  // verified shuffle would be inert, so every cell runs on the
  // oversubscribed fabric.
  cfg.topology = net::TopologySpec::oversubscribed();
  cfg.audit.enabled = true;  // conservation invariant checked in every cell
  cfg.faults.corruption_mtbf = horizon / cell.rate;
  // The same strike rate also garbles shuffle payloads and (under
  // end-to-end verification) task output, so all three detection paths —
  // checksummed reads + scrubbing, verified shuffle, verified completion —
  // carry traffic in every cell.
  cfg.faults.shuffle_corruption_prob = 0.01 * cell.rate;
  cfg.faults.task_output_corruption_prob = 0.001 * cell.rate;
  cfg.job_tracker.verify_task_output = true;
  if (cell.scrub_frac > 0.0) {
    cfg.job_tracker.scrub_period = cell.scrub_frac * horizon;
    cfg.job_tracker.scrub_mbps = 200.0;
  }
  exp::Run run(exp::paper_fleet(), cell.kind, cfg);
  run.submit(jobs);
  run.execute();

  CellRow r;
  r.cell = cell;
  r.m = run.metrics();
  for (const auto& v : r.m.audit.violations) {
    if (v.severity == audit::Severity::kError) r.audit_errors += v.count;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  exp::Cli cli(argc, argv, "fig_corruption [quick] [seed] [threads] [out.json]");
  // bool_arg, not keyword_arg: the nightly grid spells it "off" so it can
  // reach the later positionals ("fig_corruption off 42 4 out.json").
  const bool quick = cli.bool_arg("quick", false);
  const auto seed =
      static_cast<std::uint64_t>(cli.int_arg("seed", 42, 1, 1 << 30));
  const auto threads = static_cast<unsigned>(cli.int_arg("threads", 4, 0, 64));
  const std::string out_path =
      cli.string_arg("out", "BENCH_fig_corruption.json");
  cli.done();

  const std::vector<workload::JobSpec> jobs =
      quick ? exp::job_batch(workload::AppKind::kTerasort, 3000.0, 8, 3)
            : bench::msd_workload(seed);

  const exp::SchedulerKind kinds[] = {exp::SchedulerKind::kFair,
                                      exp::SchedulerKind::kTarazu,
                                      exp::SchedulerKind::kEAnt};

  // Fault-free baselines give the energy-overhead denominators; the first
  // one's makespan is the shared horizon so every scheduler faces the same
  // expected strike count.
  std::vector<exp::RunMetrics> baselines;
  for (exp::SchedulerKind kind : kinds) {
    exp::RunConfig bcfg = bench::run_config(seed);
    bcfg.topology = net::TopologySpec::oversubscribed();  // match the cells
    exp::Run base(exp::paper_fleet(), kind, bcfg);
    base.submit(jobs);
    base.execute();
    baselines.push_back(base.metrics());
  }
  const Seconds horizon = baselines.front().makespan;
  std::printf("fault-free horizon: %.0f s (Fair baseline)\n\n", horizon);

  std::vector<Cell> cells;
  for (exp::SchedulerKind kind : kinds) {
    for (double rate : kRates) {
      for (double scrub : kScrubPeriods) {
        cells.push_back(Cell{kind, rate, scrub});
      }
    }
  }

  std::vector<CellRow> rows(cells.size());
  exp::parallel_for(cells.size(), threads, [&](std::size_t i) {
    rows[i] = run_cell(cells[i], jobs, horizon, seed);
  });

  TextTable t("Silent corruption: strikes/machine x scrub period (0 = off)");
  t.set_header({"scheduler", "rate", "scrub", "inject", "detect", "repair",
                "lost", "latent", "shuffle", "output", "lat (s)", "scrub MB",
                "rerep MB", "energy +%", "corrupt kJ", "fail"});
  int failures = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const CellRow& r = rows[i];
    const exp::RunMetrics& base =
        baselines[i / (std::size(kRates) * std::size(kScrubPeriods))];
    t.add_row(
        {r.m.scheduler_name, TextTable::num(r.cell.rate, 1),
         r.cell.scrub_frac > 0.0 ? TextTable::num(r.cell.scrub_frac * horizon, 0)
                                 : std::string("off"),
         std::to_string(r.m.corruptions_injected),
         std::to_string(r.m.corruptions_detected),
         std::to_string(r.m.corruptions_repaired),
         std::to_string(r.m.corruptions_lost),
         std::to_string(r.m.corruptions_latent),
         std::to_string(r.m.shuffle_corruptions),
         std::to_string(r.m.task_output_corruptions),
         TextTable::num(r.m.mean_detection_latency, 0),
         TextTable::num(r.m.scrubbed_mb, 0),
         TextTable::num(r.m.rereplication_mb, 0),
         TextTable::num(100.0 * (r.m.total_energy - base.total_energy) /
                            base.total_energy,
                        1),
         TextTable::num(r.m.wasted_energy_corruption / 1000.0, 2),
         std::to_string(r.m.jobs_failed)});

    // The acceptance gates: completion at the default rate, a consistent
    // wasted-energy attribution chain, and a clean audit everywhere.
    if (r.cell.rate <= kRates[0] && r.m.jobs_failed > 0) {
      std::fprintf(stderr,
                   "FAIL %s rate=%.1f scrub=%.2f: %zu job(s) failed at the "
                   "default corruption rate\n",
                   r.m.scheduler_name.c_str(), r.cell.rate, r.cell.scrub_frac,
                   r.m.jobs_failed);
      ++failures;
    }
    if (r.m.wasted_energy_corruption > r.m.wasted_energy + 1e-6 ||
        r.m.wasted_energy > r.m.total_energy + 1e-6) {
      std::fprintf(stderr,
                   "FAIL %s rate=%.1f scrub=%.2f: inconsistent waste "
                   "attribution (corrupt %.1f J, wasted %.1f J, total %.1f "
                   "J)\n",
                   r.m.scheduler_name.c_str(), r.cell.rate, r.cell.scrub_frac,
                   r.m.wasted_energy_corruption, r.m.wasted_energy,
                   r.m.total_energy);
      ++failures;
    }
    if (r.audit_errors > 0) {
      std::fprintf(stderr, "FAIL %s rate=%.1f scrub=%.2f: %zu audit error(s)\n",
                   r.m.scheduler_name.c_str(), r.cell.rate, r.cell.scrub_frac,
                   r.audit_errors);
      ++failures;
    }
  }
  t.print();
  std::puts(
      "\nrate = expected replica-rot strikes per machine over the fault-free "
      "horizon (shuffle/output corruption\nscale with it); scrub = scrubber "
      "period in seconds (off = read-time detection only, so undiscovered "
      "damage\nstays latent); shuffle/output = garbled payloads and corrupt "
      "completions caught by verification; lat = mean\ninjection->detection "
      "latency; corrupt kJ = Eq. 2 energy of work redone because of "
      "corruption (a subset of\nwasted energy).  Aggressive scrubbing trades "
      "scan traffic for shorter latent windows.");

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"fig_corruption\",\n  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const CellRow& r = rows[i];
    std::fprintf(
        out,
        "    {\"scheduler\": \"%s\", \"rate\": %.2f, \"scrub_s\": %.0f, "
        "\"injected\": %zu, \"detected\": %zu, \"repaired\": %zu, "
        "\"lost\": %zu, \"latent\": %zu, \"read_failovers\": %zu, "
        "\"shuffle_corruptions\": %zu, \"task_output_corruptions\": %zu, "
        "\"mean_detection_latency_s\": %.1f, "
        "\"scrubbed_mb\": %.0f, \"scrub_passes\": %zu, "
        "\"rereplication_mb\": %.0f, \"total_energy_kj\": %.1f, "
        "\"wasted_energy_kj\": %.2f, \"wasted_energy_corruption_kj\": %.2f, "
        "\"makespan_s\": %.0f, \"jobs_failed\": %zu, "
        "\"digest\": \"%016llx\"}%s\n",
        r.m.scheduler_name.c_str(), r.cell.rate, r.cell.scrub_frac * horizon,
        r.m.corruptions_injected, r.m.corruptions_detected,
        r.m.corruptions_repaired, r.m.corruptions_lost, r.m.corruptions_latent,
        r.m.corrupt_read_failovers, r.m.shuffle_corruptions,
        r.m.task_output_corruptions,
        r.m.mean_detection_latency, r.m.scrubbed_mb, r.m.scrub_passes,
        r.m.rereplication_mb, r.m.total_energy_kj(), r.m.wasted_energy_kj(),
        r.m.wasted_energy_corruption / 1000.0, r.m.makespan, r.m.jobs_failed,
        static_cast<unsigned long long>(r.m.determinism_digest),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  if (failures > 0) {
    std::fprintf(stderr, "%d acceptance failure(s)\n", failures);
    return 1;
  }
  return 0;
}
