// Reproduces Fig. 11: E-Ant's search speed (time to a stable assignment,
// Sec. VI-C's 80%-revisit rule) as a function of
//   (a) the number of homogeneous machines available for machine-level
//       exchange (paper: 1, 2, 3, 8 — convergence gets faster), and
//   (b) the number of homogeneous jobs available for job-level exchange
//       (paper: 10..40 — convergence gets faster).

#include <cstdio>
#include <optional>

#include "cluster/catalog.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/eant_scheduler.h"
#include "exp/builders.h"
#include "exp/runner.h"
#include "exp/cli.h"

using namespace eant;

namespace {

exp::RunConfig config() {
  exp::RunConfig cfg;
  cfg.seed = 31;
  cfg.noise = mr::NoiseConfig::typical();
  cfg.eant.control_interval = 60.0;
  cfg.eant.negative_feedback = false;
  return cfg;
}

/// Mean convergence time of long tracked jobs in a run (minutes).
std::optional<double> mean_convergence_minutes(exp::Run& run) {
  OnlineStats s;
  const auto& conv = run.eant()->convergence();
  for (mr::JobId id = 0; id < run.job_tracker().num_jobs(); ++id) {
    if (auto t = conv.convergence_time(id)) s.add(*t / 60.0);
  }
  if (s.count() == 0) return std::nullopt;
  return s.mean();
}

void fig11a() {
  TextTable t("Fig 11(a): convergence time vs # homogeneous machines");
  t.set_header({"# desktops (homogeneous)", "mean convergence (min)"});
  for (std::size_t n : {1u, 2u, 3u, 8u}) {
    // n desktops plus a fixed heterogeneous backdrop.
    std::vector<cluster::MachineType> fleet;
    for (std::size_t i = 0; i < n; ++i) {
      fleet.push_back(cluster::catalog::desktop());
    }
    fleet.push_back(cluster::catalog::t420());
    fleet.push_back(cluster::catalog::t110());
    exp::Run run(exp::machines(fleet), exp::SchedulerKind::kEAnt, config());
    // One long Wordcount job per desktop keeps per-interval sample counts
    // comparable across fleet sizes.
    std::vector<workload::JobSpec> jobs;
    for (std::size_t i = 0; i < 2; ++i) {
      jobs.push_back(
          exp::single_job(workload::AppKind::kWordcount,
                          64.0 * 120 * static_cast<double>(n + 2), 8));
    }
    run.submit(jobs);
    run.execute();
    const auto m = mean_convergence_minutes(run);
    t.add_row({std::to_string(n),
               m ? TextTable::num(*m, 1) : std::string("did not converge")});
  }
  t.print();
  std::puts(
      "paper: convergence accelerates as machine-level exchange pools more "
      "homogeneous machines\n");
}

void fig11b() {
  TextTable t("Fig 11(b): convergence time vs # homogeneous jobs");
  t.set_header({"# concurrent Wordcount jobs", "mean convergence (min)"});
  for (int n : {10, 20, 30, 40}) {
    exp::Run run(exp::paper_fleet(), exp::SchedulerKind::kEAnt, config());
    std::vector<workload::JobSpec> jobs;
    for (int i = 0; i < n; ++i) {
      // Long jobs so every colony spans several control intervals.
      auto j = exp::single_job(workload::AppKind::kWordcount, 64.0 * 100, 4);
      j.submit_time = 5.0 * i;
      jobs.push_back(j);
    }
    run.submit(jobs);
    run.execute();
    const auto m = mean_convergence_minutes(run);
    t.add_row({std::to_string(n),
               m ? TextTable::num(*m, 1) : std::string("did not converge")});
  }
  t.print();
  std::puts(
      "paper: convergence accelerates as job-level exchange pools more "
      "homogeneous jobs");
}

}  // namespace

int main(int argc, char** argv) {
  exp::Cli cli(argc, argv, "fig11_convergence");
  cli.done();

  fig11a();
  fig11b();
  return 0;
}
