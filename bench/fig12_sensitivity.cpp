// Reproduces Fig. 12: sensitivity of E-Ant's design parameters.
//   (a) the weighting parameter beta (Eq. 8): energy saving over
//       heterogeneity-agnostic Hadoop and slowdown-based job fairness as
//       beta sweeps 0..0.4 (paper: saving peaks near 0.1, fairness rises
//       with beta);
//   (b) the control interval: energy saving as the interval sweeps 2..8
//       minutes (paper: peak at 5 minutes).

#include <cstdio>
#include <map>

#include "bench_common.h"
#include "common/table.h"
#include "exp/cli.h"

using namespace eant;

namespace {

// The canonical Fig. 8 workload; each simulated run costs milliseconds.
std::vector<workload::JobSpec> sweep_workload() {
  return bench::msd_workload();
}

exp::RunMetrics run_eant(exp::RunConfig cfg) {
  exp::Run run(exp::paper_fleet(), exp::SchedulerKind::kEAnt, cfg);
  run.submit(sweep_workload());
  run.execute();
  return run.metrics();
}

}  // namespace

int main(int argc, char** argv) {
  exp::Cli cli(argc, argv, "fig12_sensitivity");
  cli.done();

  const auto jobs = sweep_workload();

  // Baseline: heterogeneity-agnostic Hadoop (FIFO).
  exp::RunConfig base_cfg = bench::run_config();
  exp::Run baseline_run(exp::paper_fleet(), exp::SchedulerKind::kFifo,
                        base_cfg);
  baseline_run.submit(jobs);
  baseline_run.execute();
  const auto baseline = baseline_run.metrics();

  // Standalone runtimes per job class for the slowdown-based fairness
  // metric (Sec. VI-D).
  std::map<std::string, Seconds> standalone;
  for (const auto& j : jobs) {
    if (!standalone.contains(j.class_key())) {
      standalone[j.class_key()] =
          exp::standalone_runtime(exp::paper_fleet(), j, base_cfg);
    }
  }

  TextTable a("Fig 12(a): beta sweep — energy saving and job fairness");
  a.set_header({"beta", "energy (kJ)", "saving vs FIFO", "fairness"});
  for (double beta : {0.0, 0.1, 0.2, 0.3, 0.4}) {
    exp::RunConfig cfg = bench::run_config();
    cfg.eant.beta = beta;
    const auto m = run_eant(cfg);
    a.add_row({TextTable::num(beta, 1), TextTable::num(m.total_energy_kj(), 0),
               TextTable::num(100.0 * (baseline.total_energy - m.total_energy) /
                                  baseline.total_energy,
                              1) +
                   "%",
               TextTable::num(exp::slowdown_fairness(m, standalone), 3)});
  }
  a.print();
  std::puts(
      "paper: saving rises from beta=0 to 0.1 (locality kicks in), then "
      "falls as fairness outranks energy; fairness increases with beta\n");

  TextTable b("Fig 12(b): control-interval sweep — energy saving");
  b.set_header({"interval (scaled s)", "energy (kJ)", "saving vs FIFO"});
  for (double interval : {30.0, 60.0, 120.0, 180.0, 240.0}) {
    exp::RunConfig cfg = bench::run_config();
    cfg.eant.control_interval = interval;
    const auto m = run_eant(cfg);
    b.add_row({TextTable::num(interval, 0),
               TextTable::num(m.total_energy_kj(), 0),
               TextTable::num(100.0 * (baseline.total_energy - m.total_energy) /
                                  baseline.total_energy,
                              1) +
                   "%"});
  }
  b.print();
  std::puts(
      "paper: too-short intervals lack samples, too-long intervals adapt "
      "too rarely; the sweet spot was 5 minutes on their timescale "
      "(x2.5 scaled here)");
  return 0;
}
