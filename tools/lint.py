#!/usr/bin/env python3
"""Project-specific static checks for the e-ant simulator.

The simulator is the test oracle for every experiment in the paper
reproduction, so two properties are load-bearing and worth enforcing
mechanically:

  determinism   — a run is a pure function of its RunConfig + seed.  Wall
                  clocks, unseeded RNGs and hash-ordered iteration feeding
                  scheduling decisions all silently break that.
  exactness     — raw floating-point ==/!= comparisons are latent bugs once
                  a value has been through arithmetic; common/fp.h provides
                  the explicit-tolerance helpers.

Rules (each can be suppressed on a line with `// lint-ok: <rule>`):

  wall-clock     system_clock / steady_clock / time(NULL) / clock() outside
                 src/common/rng.* — sim time comes from sim::Simulator, and
                 all randomness from the seeded common/rng.h Rng.
  raw-random     rand(), srand(), std::random_device — unseeded entropy.
  float-eq       == or != with a floating-point literal operand; use
                 eant::approx_equal / near_zero (common/fp.h) or restructure
                 into an ordered comparison.
  ns-in-header   `using namespace` at file scope in a header.
  unordered-iter range-for over an unordered_{map,set} member in files that
                 make scheduling decisions (allowlisted containers only) —
                 iteration order is hash-seed dependent and anything drawn
                 from an RNG inside such a loop diverges across platforms.
  machine-speed  `.type().task_runtime(...)` outside src/cluster/machine.* —
                 the nominal per-type runtime ignores the fail-slow
                 performance multipliers; use Machine::effective_task_runtime
                 (or suppress where nominal time is deliberate, e.g. the
                 launch path that lets the TaskTracker apply the stretch).

Exit status: 0 when clean, 1 when any finding is reported.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SCAN_DIRS = ["src", "tests", "bench", "examples"]
SUPPRESS = re.compile(r"//\s*lint-ok:\s*([\w-]+)")

# Files allowed to touch entropy / wall-clock primitives: the seeded RNG
# wrapper itself.
RNG_ALLOWLIST = {"src/common/rng.h", "src/common/rng.cpp"}

WALL_CLOCK = re.compile(
    r"\b(?:std::chrono::)?(?:system_clock|steady_clock|high_resolution_clock)\b"
    r"|(?<![\w:.])time\s*\(\s*(?:NULL|nullptr|0|&)"
    r"|(?<![\w:.])clock\s*\(\s*\)"
)
RAW_RANDOM = re.compile(
    r"(?<![\w:.])s?rand\s*\(|std::random_device|(?<!\w)random_device\s+\w"
)

FLOAT_LITERAL = r"(?:\d+\.\d*|\.\d+)(?:[eE][-+]?\d+)?[fF]?|\d+[eE][-+]?\d+[fF]?"
# ==/!= with a float literal on either side.  `!=` must not match `<=`/`>=`,
# and `==` must not match a preceding `!=`/`<=`/`>=` or C++20 `<=>`.
FLOAT_EQ = re.compile(
    r"(?:%(lit)s)\s*[=!]=(?!=)|(?<![<>!=])[=!]=(?!=)\s*[-+]?(?:%(lit)s)"
    % {"lit": FLOAT_LITERAL}
)

USING_NAMESPACE = re.compile(r"^\s*using\s+namespace\s+[\w:]+\s*;")

# Hash-ordered containers whose iteration may feed scheduling or RNG draws.
# Declaring one of these as a member is flagged in the listed subsystems;
# deterministic alternatives are std::map / std::set / sorted vectors.
UNORDERED_MEMBER = re.compile(r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<")
ORDER_SENSITIVE_DIRS = ("src/mapreduce", "src/sched", "src/core", "src/sim",
                        "src/net", "src/hdfs", "src/tenancy", "src/audit")
# Members where hash ordering is provably harmless: lookups only, never
# iterated where order can leak into decisions or RNG consumption.
UNORDERED_ALLOWLIST: set[tuple[str, str]] = {
    ("src/sim/simulator.h", "queued_"),     # membership test only
    ("src/sim/simulator.h", "cancelled_"),  # membership test only
}

# Nominal (type-level) task runtime read outside the Machine wrapper: every
# src/ call site must either go through Machine::effective_task_runtime —
# which folds in the fail-slow performance multipliers — or carry an explicit
# `// lint-ok: machine-speed` acknowledging that nominal time is intended.
MACHINE_SPEED = re.compile(r"\.\s*type\s*\(\s*\)\s*\.\s*task_runtime\s*\(")
MACHINE_SPEED_ALLOWLIST = {"src/cluster/machine.h", "src/cluster/machine.cpp"}


def strip_comments_and_strings(line: str, in_block: bool) -> tuple[str, bool]:
    """Blanks out string/char literals and comments, preserving length.

    Tracks /* */ across lines via `in_block`.  Good enough for regex rules;
    raw strings spanning lines are rare here and acceptable noise.
    """
    out = []
    i, n = 0, len(line)
    while i < n:
        if in_block:
            end = line.find("*/", i)
            if end == -1:
                out.append(" " * (n - i))
                i = n
            else:
                out.append(" " * (end + 2 - i))
                i = end + 2
                in_block = False
            continue
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            out.append(" " * (n - i))
            break
        if c == "/" and i + 1 < n and line[i + 1] == "*":
            in_block = True
            out.append("  ")
            i += 2
            continue
        if c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if line[j] == "\\":
                    j += 2
                    continue
                if line[j] == quote:
                    break
                j += 1
            j = min(j, n - 1)
            out.append(quote + " " * (j - i - 1) + (line[j] if j < n else ""))
            i = j + 1
            continue
        out.append(c)
        i += 1
    return "".join(out), in_block


def lint_file(path: Path) -> list[str]:
    rel = path.relative_to(REPO).as_posix()
    is_header = path.suffix == ".h"
    raw_lines = path.read_text(encoding="utf-8").splitlines()
    findings = []
    in_block = False
    for lineno, raw in enumerate(raw_lines, start=1):
        suppressed = {m.group(1) for m in SUPPRESS.finditer(raw)}
        code, in_block = strip_comments_and_strings(raw, in_block)

        def report(rule: str, message: str) -> None:
            if rule not in suppressed:
                findings.append(f"{rel}:{lineno}: [{rule}] {message}")

        if rel not in RNG_ALLOWLIST:
            if WALL_CLOCK.search(code):
                report("wall-clock",
                       "wall-clock call; use sim::Simulator time instead")
            if RAW_RANDOM.search(code):
                report("raw-random",
                       "unseeded entropy; use the seeded eant::Rng")

        if FLOAT_EQ.search(code):
            report("float-eq",
                   "float ==/!=; use approx_equal/near_zero (common/fp.h) "
                   "or an ordered comparison")

        if is_header and USING_NAMESPACE.search(code):
            report("ns-in-header", "`using namespace` in a header")

        if (rel.startswith("src/") and rel not in MACHINE_SPEED_ALLOWLIST
                and MACHINE_SPEED.search(code)):
            report("machine-speed",
                   "nominal type-level runtime bypasses the fail-slow "
                   "perf multipliers; use Machine::effective_task_runtime")

        if rel.startswith(ORDER_SENSITIVE_DIRS):
            m = UNORDERED_MEMBER.search(code)
            if m:
                member = re.search(r">\s*(\w+)\s*;", code)
                name = member.group(1) if member else ""
                if (rel, name) not in UNORDERED_ALLOWLIST:
                    report("unordered-iter",
                           "hash-ordered container in an order-sensitive "
                           "subsystem; use std::map/std::set or add to the "
                           "allowlist with a determinism argument")
    return findings


def main() -> int:
    findings = []
    for d in SCAN_DIRS:
        root = REPO / d
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*")):
            if path.suffix in {".h", ".cpp", ".cc"}:
                findings.extend(lint_file(path))
    for f in findings:
        print(f)
    if findings:
        print(f"\n{len(findings)} finding(s).", file=sys.stderr)
        return 1
    print(f"lint clean ({sum(1 for d in SCAN_DIRS if (REPO / d).is_dir())} "
          "directories scanned).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
