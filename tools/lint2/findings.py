"""Finding record shared by the text and AST check backends."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Finding:
    rule: str      # one of tools.lint2.RULES
    rel: str       # repo-relative posix path
    line: int      # 1-based
    symbol: str    # subject for allowlist matching (var/function/container)
    message: str

    def render(self) -> str:
        return f"{self.rel}:{self.line}: [{self.rule}] {self.message}"
