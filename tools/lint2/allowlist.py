"""File/symbol-level exemptions for lint2 findings.

Every entry must carry a written justification: the reviewer-facing argument
for why the flagged construct cannot break determinism or thread safety.
Line-level escapes use `// lint-ok: <rule>` in the source instead; this file
is for structural exemptions where an inline comment would be misleading
(e.g. a whole function blessed as a delegate) or where the justification is
too long for a trailing comment.

Keys are (rule, repo-relative path, symbol).  `symbol` is matched against the
finding's subject: the variable name for global-state, the enclosing function
name (unqualified) for observer-completeness, the container expression for
unordered-iter.  An empty symbol exempts the whole file for that rule.
"""

from __future__ import annotations

ALLOWLIST: dict[tuple[str, str, str], str] = {
    ("observer-completeness", "src/mapreduce/task_tracker.cpp",
     "release_slot"):
        "Pure slot-count delegate: decrements running_maps_/running_reduces_ "
        "on behalf of the finish/fail/kill/timeout paths, every one of which "
        "emits its attempt-level audit_transition() before calling here.  "
        "Emitting again inside the delegate would double-count transitions "
        "in the auditor's conservation ledger.",
}


def allowed(rule: str, rel: str, symbol: str) -> bool:
    """True when (rule, rel, symbol) is exempted (exact or whole-file)."""
    key = (rule, rel, _unqualify(symbol))
    if key in ALLOWLIST:
        return True
    return (rule, rel, "") in ALLOWLIST


def _unqualify(symbol: str) -> str:
    return symbol.rsplit("::", 1)[-1] if symbol else symbol
