"""Textual (regex + scope-scan) backend for the lint2 rules.

This is the fallback when libclang is unavailable and the reference
implementation the self-tests pin down: the AST backend must find a superset
of what these checks find on the project tree.  Each check operates on the
`SourceFile` model from tools/lint2/source.py — comment/string-stripped
lines plus the heuristic scope scan — so string literals and comments can
never produce findings.

Heuristics and their known limits (acceptable for the project style, which
is clang-formatted with definitions at column 0):

  * Declarations are matched per line; a declaration split across lines is
    joined with its successor once.
  * `Rng a(b)` cannot be distinguished from seeding vs copying without
    types, so copies are flagged only when the initializer *names* an RNG
    (identifier containing `rng`) — which is every real stream variable in
    this codebase.  The AST backend removes the naming requirement.
  * Loops over hash-ordered containers are found via the declared names of
    unordered_* variables in the same file (members and locals) plus any
    range expression that textually mentions `unordered`.
"""

from __future__ import annotations

import re

from tools.lint import ORDER_SENSITIVE_DIRS
from tools.lint2.findings import Finding
from tools.lint2.source import CLASS, FUNCTION, SourceFile

# ---------------------------------------------------------------------------
# global-state
# ---------------------------------------------------------------------------

_STATIC = re.compile(r"(?<![\w_])static(?![\w_])")
_CONST_AFTER = re.compile(r"^\s*(?:inline\s+)?(?:const\b|constexpr\b|"
                          r"consteval\b|constinit\b)")
_DECL_NAME = re.compile(r"([A-Za-z_]\w*)\s*$")


def check_global_state(sf: SourceFile) -> list[Finding]:
    """Namespace-scope or function-local mutable `static` variables in src/.

    Such a variable is shared across every Run in the process: a thread-race
    under the parallel sweep driver, and a cross-run determinism leak even
    single-threaded.  Immutable statics (const/constexpr) and static member
    declarations are out of scope; static free *functions* (internal
    linkage) are excluded by requiring the declarator to end in `;`, `=`,
    `{` or `[` without an intervening `(`.
    """
    out: list[Finding] = []
    if not sf.rel.startswith("src/"):
        return out
    for lineno, code in enumerate(sf.code, start=1):
        m = _STATIC.search(code)
        if not m:
            continue
        rest = code[m.end():]
        if _CONST_AFTER.match(rest):
            continue
        scope = sf.scope_at(lineno)
        if scope and scope[-1] == CLASS:
            continue  # static data-member declaration, not namespace scope
        # Walk the declarator: the first structural token decides whether
        # this is a variable (terminator before any paren) or a function.
        stop = len(rest)
        terminator = ""
        for i, ch in enumerate(rest):
            if ch in ";={[(":
                stop, terminator = i, ch
                break
        if terminator in ("(", ""):
            continue  # function declaration/definition (or spans lines)
        name_m = _DECL_NAME.search(rest[:stop].rstrip())
        # Template arguments hide the name behind '>': peel the declarator.
        if not name_m:
            peeled = re.sub(r"<[^<>]*>", " ", rest[:stop])
            name_m = _DECL_NAME.search(peeled.rstrip())
        name = name_m.group(1) if name_m else "?"
        where = ("function-local" if any(s == FUNCTION for s in scope)
                 else "namespace-scope")
        out.append(Finding(
            "global-state", sf.rel, lineno, name,
            f"{where} mutable static `{name}`: shared across every Run in "
            "the process — a race under thread-per-seed sweeps and a "
            "cross-run determinism leak; justify via allowlist or "
            "`lint-ok: global-state` if provably benign"))
    return out


# ---------------------------------------------------------------------------
# rng-discipline
# ---------------------------------------------------------------------------

_RNG_DEFAULT = re.compile(r"\bRng\s+(\w+)\s*;")
_RNG_COPY_INIT = re.compile(
    r"\bRng\s+(\w+)\s*(?:=|\(|\{)\s*(\w*[Rr]ng\w*)\s*[;)}]")
_AUTO_COPY = re.compile(r"\bauto\s+(\w+)\s*=\s*(\w*[Rr]ng\w*)\s*;")
_RNG_BYVAL_PARAM = re.compile(r"[(,]\s*(?:eant::)?Rng\s+(\w+)\s*[,)]")
_IDENT_BEFORE_PAREN = re.compile(r"([A-Za-z_~][\w:~]*)\s*\($")
_RNG_DRAW = re.compile(
    r"\b\w*[Rr]ng\w*\s*\.\s*(?:uniform|normal|exponential|lognormal|"
    r"bernoulli|shuffle|fork)\s*\(")


def _owning_callable(sf: SourceFile, lineno: int, col: int) -> str:
    """Identifier before the innermost '(' enclosing (lineno, col).

    Joins up to three preceding lines so multi-line parameter lists find
    their function name.  Empty string when none is found.
    """
    start = max(1, lineno - 3)
    joined = " ".join(sf.code[start - 1:lineno - 1])
    joined += " " + sf.code[lineno - 1][:col]
    stack: list[int] = []
    for i, ch in enumerate(joined):
        if ch == "(":
            stack.append(i)
        elif ch == ")" and stack:
            stack.pop()
        elif ch == ";":
            stack.clear()  # a statement boundary ends any param list
    if not stack:
        return ""
    m = _IDENT_BEFORE_PAREN.search(joined[:stack[-1]].rstrip() + "(")
    return m.group(1) if m else ""


def check_rng_discipline(sf: SourceFile) -> list[Finding]:
    """eant::Rng construction and consumption discipline.

    A Run's randomness is one seeded tree of streams: Rng values enter a
    component either as a seed (`Rng(seed)`) or as a forked child
    (`parent.fork(id)`), and by-value Rng parameters are legal only on
    constructors (the sink idiom — the caller forks, the member consumes).
    Anything else replays or reorders a stream:

      * default construction — no such ctor exists today; flagging keeps it
        that way,
      * copying an existing stream (init or `auto x = rng`) — the copy
        replays the parent's future draws,
      * by-value Rng parameter on a non-constructor — a hidden copy per
        call,
      * a draw inside a loop over a hash-ordered container — the draw
        order follows the hash seed, not the RunConfig (reported under
        this rule *and* located by the unordered-iter machinery).
    """
    out: list[Finding] = []
    if not (sf.rel.startswith("src/") or sf.rel.startswith("bench/")):
        return out
    for lineno, code in enumerate(sf.code, start=1):
        scope = sf.scope_at(lineno)
        in_class = bool(scope) and scope[-1] == CLASS
        m = _RNG_DEFAULT.search(code)
        # A bare `Rng x;` at class scope is a member *declaration* (the
        # ctor-init-list seeds it); everywhere else it is a default
        # construction attempt.
        if m and not in_class:
            out.append(Finding(
                "rng-discipline", sf.rel, lineno, m.group(1),
                f"default-constructed Rng `{m.group(1)}`: every stream must "
                "derive from the run seed via Rng(seed) or fork()"))
        for m in _RNG_COPY_INIT.finditer(code):
            out.append(Finding(
                "rng-discipline", sf.rel, lineno, m.group(1),
                f"`{m.group(1)}` copies the stream of `{m.group(2)}`; the "
                "copy replays the parent's future draws — fork() a child "
                "stream instead"))
        for m in _AUTO_COPY.finditer(code):
            out.append(Finding(
                "rng-discipline", sf.rel, lineno, m.group(1),
                f"`auto {m.group(1)} = {m.group(2)}` copies an Rng stream "
                "(use a reference or fork())"))
        for m in _RNG_BYVAL_PARAM.finditer(code):
            owner = _owning_callable(sf, lineno, m.start() + 1)
            bare = owner.rsplit("::", 1)[-1] if owner else ""
            if bare[:1].isupper() or bare[:1] == "~":
                continue  # constructor sink: caller forks, member consumes
            out.append(Finding(
                "rng-discipline", sf.rel, lineno, m.group(1),
                f"by-value Rng parameter `{m.group(1)}`"
                + (f" on `{owner}`" if owner else "")
                + ": hidden stream copy per call — pass Rng& or make the "
                  "consumer a constructor sink"))
    # Draws inside hash-ordered loops.
    for lineno, body_end, expr in _unordered_loops(sf):
        for body_line in range(lineno, body_end + 1):
            if _RNG_DRAW.search(sf.code[body_line - 1]):
                out.append(Finding(
                    "rng-discipline", sf.rel, body_line, expr,
                    f"RNG draw inside a loop over hash-ordered `{expr}`: "
                    "draw order follows the hash seed, not the config — "
                    "iterate a sorted view or hoist the draws"))
    return out


# ---------------------------------------------------------------------------
# unordered-iter (v2: iteration sites, not member declarations)
# ---------------------------------------------------------------------------

_UNORDERED_DECL = re.compile(r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<")
_RANGE_FOR = re.compile(r"\bfor\s*\(\s*(?:const\s+)?(?:auto|[\w:<>]+)"
                        r"[&\s\[\]\w,]*:\s*([^)]+?)\s*\)")
_BEGIN_CALL = re.compile(r"(\w+)\s*\.\s*c?begin\s*\(")


def _unordered_names(sf: SourceFile) -> set[str]:
    """Names of variables declared as std::unordered_* in this file.

    Members and locals alike; a declaration split across lines is joined
    with the following line once.
    """
    names: set[str] = set()
    for i, code in enumerate(sf.code):
        m = _UNORDERED_DECL.search(code)
        if not m:
            continue
        text = code[m.end() - 1:]
        if i + 1 < len(sf.code):
            text += " " + sf.code[i + 1]
        # Skip the balanced template argument list, then take the declared
        # identifier.
        depth, j = 0, 0
        for j, ch in enumerate(text):
            if ch == "<":
                depth += 1
            elif ch == ">":
                depth -= 1
                if depth == 0:
                    break
        name_m = re.match(r"\s*&?\s*([A-Za-z_]\w*)", text[j + 1:])
        if name_m:
            names.add(name_m.group(1))
    return names


def _loop_body_end(sf: SourceFile, lineno: int) -> int:
    """Last line of the loop whose header is at `lineno` (brace scan)."""
    depth = 0
    opened = False
    for ln in range(lineno, len(sf.code) + 1):
        for ch in sf.code[ln - 1]:
            if ch == "{":
                depth += 1
                opened = True
            elif ch == "}":
                depth -= 1
                if opened and depth == 0:
                    return ln
        if not opened and ln > lineno:
            return ln  # braceless single-statement body
    return len(sf.code)


def _unordered_loops(sf: SourceFile) -> list[tuple[int, int, str]]:
    """(header_line, body_end_line, container_expr) for every iteration
    site over a hash-ordered container in this file."""
    names = _unordered_names(sf)
    loops: list[tuple[int, int, str]] = []
    for lineno, code in enumerate(sf.code, start=1):
        expr = ""
        m = _RANGE_FOR.search(code)
        if m:
            range_expr = m.group(1).strip()
            idents = set(re.findall(r"[A-Za-z_]\w*", range_expr))
            if idents & names or "unordered" in range_expr:
                expr = range_expr
        if not expr:
            b = _BEGIN_CALL.search(code)
            if b and b.group(1) in names:
                expr = b.group(1)
        if expr:
            loops.append((lineno, _loop_body_end(sf, lineno), expr))
    return loops


def check_unordered_iter(sf: SourceFile) -> list[Finding]:
    """Iteration sites over unordered_* containers in order-sensitive dirs.

    v1 (tools/lint.py) flags member *declarations*; this rule flags the
    actual loops — range-for (incl. structured bindings), and explicit
    .begin()/.cbegin() iteration — over members AND locals, plus range
    expressions that mention `unordered` textually.  Iteration order is
    hash-seed dependent: any scheduling decision, RNG draw or output
    ordering derived from it diverges across platforms and libstdc++
    versions.
    """
    out: list[Finding] = []
    if not sf.rel.startswith(ORDER_SENSITIVE_DIRS):
        return out
    for lineno, _, expr in _unordered_loops(sf):
        out.append(Finding(
            "unordered-iter", sf.rel, lineno, expr,
            f"iteration over hash-ordered `{expr}` in an order-sensitive "
            "subsystem; iterate a sorted snapshot (std::map / sorted "
            "vector) or justify via allowlist"))
    return out


# ---------------------------------------------------------------------------
# observer-completeness
# ---------------------------------------------------------------------------

_SLOT_MUTATION = re.compile(
    r"(?:\+\+|--)\s*running_(?:maps|reduces)_"
    r"|running_(?:maps|reduces)_\s*(?:\+\+|--|[+\-]?=(?!=))")
_TAP = re.compile(r"\b(?:audit_transition|on_task_transition)\s*\(")
_REVERT = re.compile(r"\brevert_done_map\s*\(")
_ORPHAN_WASTE = re.compile(r"\breport_waste\s*\([^;]*WasteReason::kOrphaned")
# cancel_task() routes through TaskTracker::cancel_task, which emits the
# attempt-level kKill tap itself — a blessed delegate for orphan sites.
_ORPHAN_TAP_OR_DELEGATE = re.compile(
    r"\bon_task_transition\s*\(|\bcancel_task\s*\(")
_REVERT_WINDOW = 8
_ORPHAN_WINDOW = 14

# Admission-control emission points (src/mapreduce/admission.cpp): the
# overload-state field may only change beside its kOverloadState record, and
# the rejection/drop and retry counters beside their kJobReject / kJobRetry
# records — otherwise an admission decision mutates the ledger invisibly to
# the digest.
_ADM_STATE_MUT = re.compile(r"\bstate_\s*=(?!=)")
_ADM_STATE_TAP = re.compile(r"\bkOverloadState\b")
_ADM_REJECT_MUT = re.compile(
    r"(?:\+\+|--)\s*[\w.]*\b(?:rejections|dropped)\b"
    r"|[\w.]*\b(?:rejections|dropped)\s*(?:\+\+|--|[+\-]?=(?!=))")
_ADM_REJECT_TAP = re.compile(r"\bkJobReject\b")
_ADM_RETRY_MUT = re.compile(
    r"(?:\+\+|--)\s*[\w.]*\bretries\b"
    r"|[\w.]*\bretries\s*(?:\+\+|--|[+\-]?=(?!=))")
_ADM_RETRY_TAP = re.compile(r"\bkJobRetry\b")
_ADM_WINDOW = 10

# Data-integrity emission points (src/mapreduce/job_tracker.cpp): every
# corruption-detection counter bump (checksummed read, shuffle payload or
# verified task output) must sit beside its kCorruptionDetected record,
# every scrub-traffic accumulation beside its pass's kScrub record, and
# every repair settlement beside its kRepair record — otherwise the
# detect -> repair ledger the corruption-conservation audit sums at finalize
# drifts from the record stream (and the digest) invisibly.  The patterns
# match mutations only: reads (the conservation sums, the accessors) have no
# ++/--/compound-assignment and never fire.
_CORRUPT_DETECT_MUT = re.compile(
    r"(?:\+\+|--)\s*(?:corruptions_detected_|shuffle_corruptions_|"
    r"task_output_corruptions_)\b"
    r"|(?:corruptions_detected_|shuffle_corruptions_|"
    r"task_output_corruptions_)\s*(?:\+\+|--|[+\-]?=(?!=))")
_CORRUPT_DETECT_TAP = re.compile(r"\bkCorruptionDetected\b")
_SCRUB_MUT = re.compile(
    r"(?:\+\+|--)\s*scrubbed_mb_\b|scrubbed_mb_\s*(?:\+\+|--|[+\-]?=(?!=))")
_SCRUB_TAP = re.compile(r"\bkScrub\b")
_REPAIR_MUT = re.compile(
    r"(?:\+\+|--)\s*corruptions_repaired_\b"
    r"|corruptions_repaired_\s*(?:\+\+|--|[+\-]?=(?!=))")
_REPAIR_TAP = re.compile(r"\bkRepair\b")
_CORRUPT_WINDOW = 8


def check_observer_completeness(sf: SourceFile) -> list[Finding]:
    """Every task-attempt lifecycle emission point passes the audit tap.

    Two concrete obligations, derived from the auditor's conservation
    ledger (audit/auditor.h):

      * task_tracker.cpp — any function that mutates the running-slot
        counters (running_maps_/running_reduces_) marks an attempt
        lifecycle edge, so its body must call audit_transition() /
        on_task_transition() (or be an allowlisted delegate whose callers
        all emit the tap first).
      * job_tracker.cpp — every revert_done_map() site is a kRevertDone
        emission point (tap within +-8 lines), and every orphan
        write-off (report_waste with WasteReason::kOrphaned) must sit
        beside its kOrphan* tap or a cancel_task() delegate (within +-14
        lines).  The data-integrity ledger has the same shape: every
        corruption-detection counter bump sits beside its
        kCorruptionDetected record, every scrubbed_mb_ accumulation
        beside its pass's kScrub record, and every repair settlement
        beside its kRepair record (all within +-8 lines).
      * admission.cpp — every overload-state assignment sits beside its
        kOverloadState record, every rejection/drop counter mutation
        beside a kJobReject record, and every retry counter mutation
        beside a kJobRetry record (all within +-10 lines).  A state or
        ledger change without its record is invisible to the digest and
        to the conservation checks.

    Window-based matching keeps the check honest under refactoring: moving
    the tap away from the transition is exactly the regression this guards
    against.
    """
    out: list[Finding] = []
    if sf.rel == "src/mapreduce/task_tracker.cpp":
        for region in sf.regions:
            body = range(region.start, region.end + 1)
            mutates = any(_SLOT_MUTATION.search(sf.code[ln - 1]) for ln in body)
            if not mutates:
                continue
            taps = any(_TAP.search(sf.code[ln - 1]) for ln in body)
            if not taps:
                out.append(Finding(
                    "observer-completeness", sf.rel, region.start, region.name,
                    f"`{region.name}` mutates the running-slot counters "
                    "without emitting the attempt audit tap "
                    "(audit_transition/on_task_transition)"))
    if sf.rel == "src/mapreduce/job_tracker.cpp":
        for lineno, code in enumerate(sf.code, start=1):
            if _REVERT.search(code):
                if not _near(sf, lineno, _TAP, _REVERT_WINDOW):
                    out.append(Finding(
                        "observer-completeness", sf.rel, lineno,
                        "revert_done_map",
                        "revert_done_map() without a kRevertDone "
                        f"on_task_transition tap within {_REVERT_WINDOW} "
                        "lines"))
            if _ORPHAN_WASTE.search(code):
                if not _near(sf, lineno, _ORPHAN_TAP_OR_DELEGATE,
                             _ORPHAN_WINDOW):
                    out.append(Finding(
                        "observer-completeness", sf.rel, lineno,
                        "report_waste",
                        "orphan write-off without a kOrphan* tap or "
                        f"cancel_task() delegate within {_ORPHAN_WINDOW} "
                        "lines"))
        for mut, tap, subject, what in (
                (_CORRUPT_DETECT_MUT, _CORRUPT_DETECT_TAP,
                 "corruptions_detected_",
                 "corruption-detection counter mutation without its "
                 "kCorruptionDetected record"),
                (_SCRUB_MUT, _SCRUB_TAP, "scrubbed_mb_",
                 "scrub-traffic accumulation without its pass's kScrub "
                 "record"),
                (_REPAIR_MUT, _REPAIR_TAP, "corruptions_repaired_",
                 "repair settlement without its kRepair record")):
            for lineno, code in enumerate(sf.code, start=1):
                if mut.search(code) and not _near(sf, lineno, tap,
                                                 _CORRUPT_WINDOW):
                    out.append(Finding(
                        "observer-completeness", sf.rel, lineno, subject,
                        f"{what} within {_CORRUPT_WINDOW} lines"))
    if sf.rel == "src/mapreduce/admission.cpp":
        for mut, tap, subject, what in (
                (_ADM_STATE_MUT, _ADM_STATE_TAP, "state_",
                 "overload-state mutation without its kOverloadState record"),
                (_ADM_REJECT_MUT, _ADM_REJECT_TAP, "rejections",
                 "rejection/drop counter mutation without a kJobReject "
                 "record"),
                (_ADM_RETRY_MUT, _ADM_RETRY_TAP, "retries",
                 "retry counter mutation without a kJobRetry record")):
            for lineno, code in enumerate(sf.code, start=1):
                if mut.search(code) and not _near(sf, lineno, tap,
                                                 _ADM_WINDOW):
                    out.append(Finding(
                        "observer-completeness", sf.rel, lineno, subject,
                        f"{what} within {_ADM_WINDOW} lines"))
    return out


def _near(sf: SourceFile, lineno: int, pat: re.Pattern[str],
          window: int) -> bool:
    lo = max(1, lineno - window)
    hi = min(len(sf.code), lineno + window)
    return any(pat.search(sf.code[ln - 1]) for ln in range(lo, hi + 1))


ALL_CHECKS = (
    check_global_state,
    check_rng_discipline,
    check_unordered_iter,
    check_observer_completeness,
)


def run_text_checks(files: list[SourceFile]) -> list[Finding]:
    findings: list[Finding] = []
    for sf in files:
        for check in ALL_CHECKS:
            findings.extend(check(sf))
    return findings
