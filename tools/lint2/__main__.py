"""Entry point: `python3 tools/lint2` or `python3 -m tools.lint2`.

Both invocation styles must work from the repo root (CI uses the first).
When run as a directory argument, Python puts tools/lint2 itself on
sys.path with no package context, so the repo root is inserted explicitly
and all intra-package imports are absolute (`tools.lint2.*`); `tools` is a
PEP 420 namespace package — no __init__.py required in tools/.
"""

import sys
from pathlib import Path

_REPO = Path(__file__).resolve().parent.parent.parent
if str(_REPO) not in sys.path:
    sys.path.insert(0, str(_REPO))

from tools.lint2.engine import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
