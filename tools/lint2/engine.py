"""lint2 driver: file discovery, backend selection, suppression/allowlist
filtering, reporting.

Backend policy: the textual checks ALWAYS run (they are the committed
baseline and the self-tested reference); the AST backend, when libclang is
importable (or forced with --ast), runs on top and its findings are merged,
deduplicated per (rule, file, line).  Both funnels pass through the same
filters, so a `// lint-ok: <rule>` comment or an allowlist.py entry
silences a finding regardless of which backend produced it.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from tools.lint2 import RULES
from tools.lint2.allowlist import allowed
from tools.lint2.findings import Finding
from tools.lint2.source import SourceFile, load
from tools.lint2.text_checks import run_text_checks

REPO = Path(__file__).resolve().parent.parent.parent
SCAN_DIRS = ["src", "bench"]
EXTS = {".h", ".cpp", ".cc"}


def discover(paths: list[str]) -> list[Path]:
    roots = [REPO / p for p in paths] if paths else [REPO / d
                                                    for d in SCAN_DIRS]
    files: list[Path] = []
    for root in roots:
        if root.is_file():
            files.append(root)
        elif root.is_dir():
            files.extend(p for p in sorted(root.rglob("*"))
                         if p.suffix in EXTS)
    return files


def filter_findings(findings: list[Finding],
                    files: dict[str, SourceFile]) -> list[Finding]:
    """Drop suppressed/allowlisted findings; dedup (rule, rel, line)."""
    kept: list[Finding] = []
    seen: set[tuple[str, str, int]] = set()
    for f in sorted(findings, key=lambda f: (f.rel, f.line, f.rule)):
        key = (f.rule, f.rel, f.line)
        if key in seen:
            continue
        seen.add(key)
        sf = files.get(f.rel)
        if sf is not None and 1 <= f.line <= len(sf.suppressed):
            if f.rule in sf.suppressed[f.line - 1]:
                continue
        if allowed(f.rule, f.rel, f.symbol):
            continue
        kept.append(f)
    return kept


def run(paths: list[str], mode: str,
        compile_commands: str | None) -> tuple[list[Finding], list[str]]:
    """Returns (findings, notes).  `mode` is auto | ast | text."""
    notes: list[str] = []
    sources = [load(p, REPO) for p in discover(paths)]
    by_rel = {sf.rel: sf for sf in sources}

    findings = run_text_checks(sources)

    if mode != "text":
        from tools.lint2.ast_checks import ast_available, run_ast_checks
        reason = ast_available()
        if reason is None:
            cc = Path(compile_commands) if compile_commands else None
            if cc is not None and not cc.is_file():
                notes.append(f"lint2: compile commands not found at {cc}; "
                             "AST mode parsing with default flags")
                cc = None
            findings.extend(run_ast_checks(sources, cc, REPO, notes))
            notes.append("lint2: backends = text + AST (libclang)")
        elif mode == "ast":
            raise SystemExit(f"lint2: --ast requested but {reason}")
        else:
            notes.append(f"lint2: {reason}; textual fallback only")
    else:
        notes.append("lint2: backend = text (forced)")

    return filter_findings(findings, by_rel), notes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="lint2",
        description="Concurrency-grade static checks for the e-ant "
                    "simulator (see tools/lint2/__init__.py for the rules).")
    parser.add_argument("paths", nargs="*",
                        help="files or directories relative to the repo "
                             "root (default: src bench)")
    backend = parser.add_mutually_exclusive_group()
    backend.add_argument("--ast", action="store_true",
                         help="require the libclang backend (error if "
                              "unavailable)")
    backend.add_argument("--no-ast", action="store_true",
                         help="textual backend only")
    parser.add_argument("--compile-commands", metavar="JSON",
                        help="compile_commands.json for AST parsing "
                             "(e.g. build/compile_commands.json)")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for r in RULES:
            print(r)
        return 0

    mode = "ast" if args.ast else "text" if args.no_ast else "auto"
    findings, notes = run(args.paths, mode, args.compile_commands)

    for n in notes:
        print(n, file=sys.stderr)
    for f in findings:
        print(f.render())
    if findings:
        print(f"\n{len(findings)} finding(s).", file=sys.stderr)
        return 1
    print(f"lint2 clean ({len(discover(args.paths))} files).")
    return 0
