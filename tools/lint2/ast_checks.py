"""libclang (AST) backend for the lint2 rules.

Mirrors the textual rules in tools/lint2/text_checks.py with real types and
scopes instead of heuristics: multi-line declarations, typedef'd containers
and non-`rng`-named stream copies are all visible here.  The backend is
strictly additive — the engine always runs the text checks and merges AST
findings on top (deduplicated per rule+file+line) — so an environment
without libclang loses recall, never soundness of the committed baseline.

Everything is defensive: clang.cindex may be missing (the dev container
ships no python bindings), the library may fail to load, and individual
translation units may fail to parse.  Any of those degrades to the text
backend for the affected files; `--ast` turns the first two into hard
errors for CI lanes that install python3-clang.

observer-completeness is deliberately NOT re-implemented here: it is a
project-specific emission-point audit over two named files, and the text
check is already exact for them.
"""

from __future__ import annotations

import json
import shlex
from pathlib import Path

from tools.lint import ORDER_SENSITIVE_DIRS
from tools.lint2.findings import Finding


def ast_available() -> str | None:
    """None when usable, else a one-line reason it is not."""
    try:
        from clang import cindex  # noqa: F401
    except Exception as e:  # pragma: no cover - environment dependent
        return f"python clang bindings unavailable ({e.__class__.__name__})"
    try:
        from clang import cindex
        cindex.Index.create()
    except Exception as e:  # pragma: no cover - environment dependent
        return f"libclang failed to load ({e})"
    return None


def _compile_args(cc_path: Path | None, repo: Path) -> dict[str, list[str]]:
    """source-path -> compiler args from compile_commands.json (sans -c/-o)."""
    args: dict[str, list[str]] = {}
    if cc_path is None or not cc_path.is_file():
        return args
    for entry in json.loads(cc_path.read_text(encoding="utf-8")):
        if "command" in entry:
            argv = shlex.split(entry["command"])
        else:
            argv = list(entry.get("arguments", []))
        keep: list[str] = []
        skip_next = False
        for a in argv[1:]:
            if skip_next:
                skip_next = False
                continue
            if a in ("-c", "-o"):
                skip_next = a == "-o"
                continue
            if a.endswith((".cpp", ".cc", ".o")):
                continue
            keep.append(a)
        src = str((Path(entry["directory"]) / entry["file"]).resolve())
        args[src] = keep
    return args


_FALLBACK_ARGS = ["-std=c++20", "-xc++"]


def run_ast_checks(files, cc_path: Path | None, repo: Path,
                   notes: list[str]) -> list[Finding]:
    """AST findings for the given SourceFiles (parse failures are noted and
    skipped, never fatal)."""
    from clang import cindex

    index = cindex.Index.create()
    by_abs = {str((repo / sf.rel).resolve()): sf for sf in files}
    compile_args = _compile_args(cc_path, repo)
    findings: list[Finding] = []

    # Parse every .cpp as a TU; headers are analysed through their includers.
    for abs_path, sf in sorted(by_abs.items()):
        if not abs_path.endswith((".cpp", ".cc")):
            continue
        args = compile_args.get(abs_path)
        if args is None:
            args = _FALLBACK_ARGS + [f"-I{repo / 'src'}"]
        try:
            tu = index.parse(abs_path, args=args)
        except Exception as e:  # pragma: no cover - environment dependent
            notes.append(f"lint2: AST parse failed for {sf.rel}: {e}")
            continue
        findings.extend(_walk(tu, by_abs, repo))
    return findings


def _rel_of(cursor, by_abs, repo: Path) -> str | None:
    loc = cursor.location
    if loc.file is None:
        return None
    abs_name = str(Path(loc.file.name).resolve())
    sf = by_abs.get(abs_name)
    if sf is not None:
        return sf.rel
    try:
        rel = Path(abs_name).relative_to(repo).as_posix()
    except ValueError:
        return None
    return rel if rel.startswith(("src/", "bench/")) else None


def _walk(tu, by_abs, repo: Path) -> list[Finding]:
    from clang import cindex

    K = cindex.CursorKind
    out: list[Finding] = []
    class_kinds = {K.CLASS_DECL, K.STRUCT_DECL, K.CLASS_TEMPLATE,
                   K.UNION_DECL}

    for c in tu.cursor.walk_preorder():
        rel = _rel_of(c, by_abs, repo)
        if rel is None:
            continue
        line = c.location.line

        # global-state: static VAR_DECL outside class bodies, mutable type.
        if (c.kind == K.VAR_DECL
                and c.storage_class == cindex.StorageClass.STATIC
                and rel.startswith("src/")):
            parent = c.semantic_parent
            in_class = parent is not None and parent.kind in class_kinds
            const = (c.type.is_const_qualified()
                     or c.type.get_canonical().is_const_qualified())
            if not in_class and not const:
                out.append(Finding(
                    "global-state", rel, line, c.spelling,
                    f"mutable static `{c.spelling}` (AST): shared across "
                    "every Run in the process — race under thread-per-seed "
                    "sweeps; justify via allowlist or lint-ok"))

        # rng-discipline: by-value Rng parameters outside constructors, and
        # Rng variables initialised from another Rng lvalue (copy).
        if c.kind == K.PARM_DECL and _is_rng_value(c.type):
            parent = c.semantic_parent
            if parent is not None and parent.kind not in (
                    K.CONSTRUCTOR, K.FUNCTION_TEMPLATE):
                out.append(Finding(
                    "rng-discipline", rel, line, c.spelling,
                    f"by-value Rng parameter `{c.spelling}` on "
                    f"`{parent.spelling}` (AST): hidden stream copy per "
                    "call — pass Rng& or make the consumer a constructor "
                    "sink"))
        if c.kind == K.VAR_DECL and _is_rng_value(c.type):
            if _initialized_from_rng_lvalue(c):
                out.append(Finding(
                    "rng-discipline", rel, line, c.spelling,
                    f"`{c.spelling}` copy-constructs from an existing Rng "
                    "(AST): the copy replays the parent's future draws — "
                    "fork() a child stream instead"))

        # unordered-iter: range-for whose range type is an unordered_*.
        if (c.kind == K.CXX_FOR_RANGE_STMT
                and rel.startswith(ORDER_SENSITIVE_DIRS)):
            expr = _range_expr_of(c)
            if expr is not None and "unordered_" in _type_spelling(expr):
                out.append(Finding(
                    "unordered-iter", rel, line,
                    expr.spelling or "<range>",
                    "range-for over a hash-ordered container (AST) in an "
                    "order-sensitive subsystem; iterate a sorted snapshot"))
    return out


def _is_rng_value(t) -> bool:
    canon = t.get_canonical()
    spelling = canon.spelling
    return (spelling.endswith("::Rng") or spelling == "Rng") \
        and canon.kind.name not in ("LVALUEREFERENCE", "RVALUEREFERENCE",
                                    "POINTER")


def _initialized_from_rng_lvalue(var_cursor) -> bool:
    """True when a VAR_DECL's initializer is (a cast of) a plain DECL_REF to
    another Rng variable — i.e. a copy, not Rng(seed) / fork()."""
    from clang import cindex
    K = cindex.CursorKind
    for child in var_cursor.get_children():
        node = child
        # Unwrap trivial wrappers around the initializer expression.
        for _ in range(6):
            kids = list(node.get_children())
            if node.kind == K.DECL_REF_EXPR:
                return _is_rng_value(node.type)
            if node.kind == K.CALL_EXPR:
                # Rng(seed) / x.fork(i): a call producing a fresh stream.
                # The implicit copy-ctor also shows up as CALL_EXPR with a
                # single DECL_REF argument of type Rng.
                if len(kids) == 1 and kids[0].kind == K.DECL_REF_EXPR:
                    return _is_rng_value(kids[0].type)
                return False
            if len(kids) != 1:
                return False
            node = kids[0]
    return False


def _range_expr_of(for_range_cursor):
    kids = list(for_range_cursor.get_children())
    # Children: [loop var decl, range expr, body] in libclang's exposure;
    # pick the first expression-like child after the decl.
    for k in kids[1:]:
        if k.kind.is_expression():
            return k
    return kids[1] if len(kids) > 1 else None


def _type_spelling(cursor) -> str:
    try:
        return cursor.type.get_canonical().spelling
    except Exception:  # pragma: no cover
        return ""
