"""Source model shared by the lint2 checks.

Loads a C++ file once into a `SourceFile`: raw lines, comment/string-stripped
lines (reusing tools/lint.py's stripper so both linters agree on what counts
as code), per-line `// lint-ok:` suppressions, and a brace-scope scan that
classifies every line's enclosing scope chain (namespace / class / function /
block).  The scope scan is a heuristic, not a parser — it keys off statement
keywords and the identifier-before-`(` shape of function definition headers —
but it is exact for the project style (clang-format, 2-space indent,
definitions at column 0), and the AST mode replaces it wholesale when
libclang is available.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

from tools.lint import SUPPRESS, strip_comments_and_strings

# Scope kinds pushed by the brace scanner.
NAMESPACE, CLASS, FUNCTION, BLOCK = "namespace", "class", "function", "block"

_CLASS_HEADER = re.compile(r"\b(?:class|struct|union|enum)\b")
_NAMESPACE_HEADER = re.compile(r"\bnamespace\b")
# Statement keywords whose parenthesised header must not be mistaken for a
# function definition.
_CONTROL = re.compile(r"\b(?:if|for|while|switch|catch|do|else|return)\b")


@dataclass
class Region:
    """A function definition: [start, end] line range (1-based, inclusive)."""

    name: str
    start: int
    end: int


@dataclass
class SourceFile:
    rel: str                      # repo-relative posix path
    raw: list[str]                # verbatim lines
    code: list[str]               # comment/string-stripped, same line count
    suppressed: list[set[str]]    # per-line `lint-ok:` rules
    scopes: list[tuple[str, ...]] = field(default_factory=list)  # per line
    regions: list[Region] = field(default_factory=list)

    def scope_at(self, lineno: int) -> tuple[str, ...]:
        """Scope chain in effect at the *start* of 1-based line `lineno`."""
        return self.scopes[lineno - 1]

    def region_at(self, lineno: int) -> Region | None:
        for r in self.regions:
            if r.start <= lineno <= r.end:
                return r
        return None


def load(path: Path, repo: Path) -> SourceFile:
    rel = path.relative_to(repo).as_posix()
    raw = path.read_text(encoding="utf-8").splitlines()
    code: list[str] = []
    suppressed: list[set[str]] = []
    in_block = False
    for line in raw:
        suppressed.append({m.group(1) for m in SUPPRESS.finditer(line)})
        stripped, in_block = strip_comments_and_strings(line, in_block)
        code.append(stripped)
    sf = SourceFile(rel=rel, raw=raw, code=code, suppressed=suppressed)
    _scan_scopes(sf)
    return sf


def _classify_open(header: str) -> str:
    """Classify the scope a `{` opens from the statement text before it."""
    if _NAMESPACE_HEADER.search(header):
        return NAMESPACE
    if _CLASS_HEADER.search(header) and "(" not in header.split("class")[-1]:
        return CLASS
    if "(" in header and not _CONTROL.search(header):
        return FUNCTION
    return BLOCK


_FUNC_NAME = re.compile(r"([\w:~]+)\s*\([^()]*$|([\w:~]+)\s*\(.*\)")


def _header_func_name(header: str) -> str:
    """Best-effort function name from a definition header."""
    # Last identifier (possibly qualified) directly before a '('.
    best = ""
    for m in re.finditer(r"([A-Za-z_~][\w:~]*)\s*\(", header):
        best = m.group(1)
    return best


def _scan_scopes(sf: SourceFile) -> None:
    """Populate sf.scopes (chain at start of each line) and sf.regions."""
    stack: list[tuple[str, str, int]] = []  # (kind, name, open_line)
    # Text of the statement currently being accumulated before its '{'.
    header = ""
    for lineno, line in enumerate(sf.code, start=1):
        sf.scopes.append(tuple(k for k, _, _ in stack))
        for ch in line:
            if ch == "{":
                kind = _classify_open(header)
                name = _header_func_name(header) if kind == FUNCTION else ""
                # A '{' inside a function is a plain block (lambdas inside a
                # function stay part of the enclosing region).
                if any(k == FUNCTION for k, _, _ in stack):
                    kind, name = BLOCK, ""
                stack.append((kind, name, lineno))
                header = ""
            elif ch == "}":
                if stack:
                    kind, name, open_line = stack.pop()
                    if kind == FUNCTION:
                        sf.regions.append(Region(name, open_line, lineno))
                header = ""
            elif ch == ";":
                header = ""
            else:
                header += ch
        header += " "  # line break separates tokens
    # Unterminated regions (truncated file): close at EOF.
    for kind, name, open_line in stack:
        if kind == FUNCTION:
            sf.regions.append(Region(name, open_line, len(sf.code)))
    sf.regions.sort(key=lambda r: r.start)
