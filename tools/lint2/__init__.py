"""eant-lint v2: concurrency-grade static analysis for the e-ant simulator.

Grown from the regex pass in tools/lint.py for the pre-parallelism hardening
of the simulator core: before the thread-per-seed sweep driver (exp/sweep.h)
instantiates one Run per thread, these checks prove — at the AST level when
libclang is available, via a structured textual fallback otherwise — that the
core has no shared mutable state and no RNG-discipline violations the regex
lint structurally cannot see.

Rules (suppress a line with `// lint-ok: <rule>`; file-level exemptions live
in tools/lint2/allowlist.py and each carries a written justification):

  global-state     any namespace-scope or function-local `static` mutable
                   variable in src/ — thread-hostile for per-thread
                   simulators, and a determinism leak across Runs even
                   single-threaded.
  rng-discipline   eant::Rng must be constructed from a seed or fork(),
                   never copied or default-constructed mid-run (a copy
                   silently replays a stream; sink-style by-value
                   constructor parameters consuming a fork are the one
                   blessed pattern), and no RNG draw may execute inside a
                   loop over a hash-ordered container (the draw order would
                   follow the hash seed, not the config).
  unordered-iter   actual iteration sites (range-for, structured bindings,
                   .begin()/.cbegin() loops) over unordered_* containers in
                   order-sensitive subsystems — the v1 rule only saw member
                   *declarations*; this one sees the loops, including over
                   locals.
  observer-completeness
                   every task-attempt lifecycle emission point must pass
                   through the audit tap: TaskTracker functions that mutate
                   the running-slot bookkeeping must call audit_transition /
                   on_task_transition, every JobTracker revert_done_map
                   site must have the kRevertDone tap beside it, and the
                   data-integrity ledger's mutation sites (corruption
                   detection, scrub traffic, repair settlement) must sit
                   beside their kCorruptionDetected / kScrub / kRepair
                   records.  (Job-level
                   mirrors — mark_started/mark_done/unclaim — are excluded:
                   their attempt-level taps fire in the TaskTracker paths.)

Modes: `--ast` forces libclang (error if unavailable), `--no-ast` forces the
textual fallback, default auto-detects.  The AST mode is driven by
compile_commands.json (CMAKE_EXPORT_COMPILE_COMMANDS is ON in the top-level
CMakeLists); pass `--compile-commands build/compile_commands.json`.
"""

RULES = (
    "global-state",
    "rng-discipline",
    "unordered-iter",
    "observer-completeness",
)
