#!/usr/bin/env python3
"""Self-tests for the project linters (tools/lint.py and tools/lint2/).

Each rule gets fixture snippets that must fire and near-miss snippets that
must not, plus coverage of the `// lint-ok:` suppression syntax, the
allowlist, and the libclang-unavailable fallback path.  Fixtures are
written to a throwaway directory that stands in for the repo root, so the
tests never touch the real tree; a final test asserts the committed tree
itself is clean under both linters (the same gate CI applies).

Run directly: `python3 tools/lint_test.py` (CI runs this in the lint job).
"""

from __future__ import annotations

import subprocess
import sys
import tempfile
import textwrap
import unittest
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
if str(REPO) not in sys.path:
    sys.path.insert(0, str(REPO))

from tools import lint  # noqa: E402
from tools.lint2 import RULES, allowlist, engine, source, text_checks  # noqa: E402


class FixtureRepo:
    """Throwaway directory posing as a repo root for fixture files."""

    def __init__(self) -> None:
        self._tmp = tempfile.TemporaryDirectory(prefix="lint_selftest_")
        self.root = Path(self._tmp.name)

    def write(self, rel: str, body: str) -> Path:
        p = self.root / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(textwrap.dedent(body), encoding="utf-8")
        return p

    def cleanup(self) -> None:
        self._tmp.cleanup()


class LintV1Base(unittest.TestCase):
    """lint.py fixtures run with lint.REPO retargeted at the fixture dir."""

    def setUp(self) -> None:
        self.repo = FixtureRepo()
        self._saved_repo = lint.REPO
        lint.REPO = self.repo.root

    def tearDown(self) -> None:
        lint.REPO = self._saved_repo
        self.repo.cleanup()

    def v1(self, rel: str, body: str) -> list[str]:
        return lint.lint_file(self.repo.write(rel, body))

    def rules_of(self, findings: list[str]) -> set[str]:
        return {f.split("[", 1)[1].split("]", 1)[0] for f in findings}


class LintV1Rules(LintV1Base):
    def test_wall_clock_fires_and_suppresses(self) -> None:
        hit = self.v1("src/a.cpp",
                      "auto t = std::chrono::steady_clock::now();\n")
        self.assertIn("wall-clock", self.rules_of(hit))
        ok = self.v1("src/b.cpp",
                     "auto t = std::chrono::steady_clock::now();"
                     "  // lint-ok: wall-clock\n")
        self.assertEqual(ok, [])

    def test_wall_clock_ignores_strings_and_comments(self) -> None:
        self.assertEqual(self.v1("src/a.cpp",
                                 's = "steady_clock";\n'
                                 "// steady_clock in a comment\n"), [])

    def test_raw_random(self) -> None:
        self.assertIn("raw-random",
                      self.rules_of(self.v1("src/a.cpp",
                                            "int x = rand();\n")))

    def test_float_eq_fires_on_literal_not_ordered(self) -> None:
        self.assertIn("float-eq",
                      self.rules_of(self.v1("src/a.cpp",
                                            "if (a == 1.0) {}\n")))
        self.assertEqual(self.v1("src/b.cpp", "if (a <= 1.0) {}\n"), [])

    def test_ns_in_header_only(self) -> None:
        body = "using namespace std;\n"
        self.assertIn("ns-in-header", self.rules_of(self.v1("src/a.h", body)))
        self.assertEqual(self.v1("src/a.cpp", body), [])

    def test_machine_speed_outside_machine(self) -> None:
        body = "double d = m.type().task_runtime(spec);\n"
        self.assertIn("machine-speed",
                      self.rules_of(self.v1("src/sched/a.cpp", body)))

    def test_unordered_member_in_every_order_sensitive_dir(self) -> None:
        # Includes the dirs this PR added: net, hdfs, tenancy, audit.
        body = "std::unordered_map<int, int> m_;\n"
        for d in ("mapreduce", "sched", "core", "sim",
                  "net", "hdfs", "tenancy", "audit"):
            with self.subTest(dir=d):
                self.assertIn(
                    "unordered-iter",
                    self.rules_of(self.v1(f"src/{d}/x_{d}.h", body)))
        self.assertEqual(self.v1("src/workload/x.h", body), [])

    def test_strip_comments_tracks_block_state(self) -> None:
        code, in_block = lint.strip_comments_and_strings("a /* b", False)
        self.assertTrue(in_block)
        code, in_block = lint.strip_comments_and_strings("c */ d", in_block)
        self.assertFalse(in_block)
        self.assertIn("d", code)
        self.assertNotIn("c", code)


class LintV2Base(unittest.TestCase):
    def setUp(self) -> None:
        self.repo = FixtureRepo()

    def tearDown(self) -> None:
        self.repo.cleanup()

    def v2(self, rel: str, body: str, rule: str | None = None):
        sf = source.load(self.repo.write(rel, body), self.repo.root)
        found = engine.filter_findings(text_checks.run_text_checks([sf]),
                                       {sf.rel: sf})
        return [f for f in found if rule is None or f.rule == rule]


class GlobalState(LintV2Base):
    def test_namespace_scope_static_fires(self) -> None:
        hits = self.v2("src/core/a.cpp",
                       "namespace eant {\nstatic int counter = 0;\n}\n",
                       "global-state")
        self.assertEqual(len(hits), 1)
        self.assertEqual(hits[0].symbol, "counter")
        self.assertIn("namespace-scope", hits[0].message)

    def test_function_local_static_fires(self) -> None:
        hits = self.v2("src/core/a.cpp", """\
            void f() {
              static bool warned = false;
              warned = true;
            }
            """, "global-state")
        self.assertEqual(len(hits), 1)
        self.assertIn("function-local", hits[0].message)

    def test_const_and_constexpr_are_immutable(self) -> None:
        self.assertEqual(self.v2("src/core/a.cpp", """\
            static const int kA = 1;
            static constexpr double kB = 2.0;
            void f() { static constexpr int kC = 3; }
            """, "global-state"), [])

    def test_static_function_is_linkage_not_state(self) -> None:
        self.assertEqual(self.v2("src/core/a.cpp",
                                 "static int helper(int x) { return x; }\n",
                                 "global-state"), [])

    def test_static_member_declaration_is_out_of_scope(self) -> None:
        self.assertEqual(self.v2("src/core/a.h", """\
            class Foo {
              static int next_id_;
            };
            """, "global-state"), [])

    def test_suppression_comment(self) -> None:
        self.assertEqual(self.v2(
            "src/core/a.cpp",
            "static int hits = 0;  // lint-ok: global-state\n",
            "global-state"), [])

    def test_outside_src_is_not_scanned(self) -> None:
        self.assertEqual(self.v2("bench/a.cpp", "static int n = 0;\n",
                                 "global-state"), [])


class RngDiscipline(LintV2Base):
    def test_default_construction_fires(self) -> None:
        hits = self.v2("src/core/a.cpp", "void f() { Rng rng; }\n",
                       "rng-discipline")
        self.assertEqual(len(hits), 1)

    def test_member_declaration_is_fine(self) -> None:
        self.assertEqual(self.v2("src/core/a.h", """\
            class Foo {
              Rng rng_;
            };
            """, "rng-discipline"), [])

    def test_copy_init_fires_fork_does_not(self) -> None:
        self.assertEqual(len(self.v2("src/core/a.cpp",
                                     "Rng copy = rng;\n",
                                     "rng-discipline")), 1)
        self.assertEqual(self.v2("src/core/b.cpp",
                                 "Rng child = rng.fork(1);\n",
                                 "rng-discipline"), [])
        self.assertEqual(self.v2("src/core/c.cpp",
                                 "Rng rng(seed);\n", "rng-discipline"), [])

    def test_auto_copy_fires_reference_does_not(self) -> None:
        self.assertEqual(len(self.v2("src/core/a.cpp", "auto r = rng;\n",
                                     "rng-discipline")), 1)
        self.assertEqual(self.v2("src/core/b.cpp", "auto& r = rng;\n",
                                 "rng-discipline"), [])

    def test_byval_param_constructor_sink_is_blessed(self) -> None:
        self.assertEqual(self.v2("src/core/a.h", """\
            class Widget {
             public:
              Widget(int n, Rng rng);
            };
            """, "rng-discipline"), [])

    def test_byval_param_multiline_constructor_is_blessed(self) -> None:
        self.assertEqual(self.v2("src/core/a.h", """\
            class Injector {
             public:
              Injector(int a, int b,
                       Rng rng, double x);
            };
            """, "rng-discipline"), [])

    def test_byval_param_on_free_function_fires(self) -> None:
        hits = self.v2("src/core/a.h", "double jitter(Rng rng);\n",
                       "rng-discipline")
        self.assertEqual(len(hits), 1)
        self.assertIn("jitter", hits[0].message)

    def test_reference_param_is_fine(self) -> None:
        self.assertEqual(self.v2("src/core/a.h",
                                 "double jitter(Rng& rng);\n",
                                 "rng-discipline"), [])

    def test_draw_inside_unordered_loop_fires(self) -> None:
        hits = self.v2("src/core/a.h", """\
            class Thing {
             public:
              void tick(Rng& rng) {
                for (const auto& [k, v] : table_) {
                  total_ += v * rng.uniform();
                }
              }
             private:
              std::unordered_map<int, double> table_;
              double total_ = 0.0;
            };
            """, "rng-discipline")
        self.assertEqual(len(hits), 1)
        self.assertIn("hash-ordered", hits[0].message)

    def test_draw_in_ordered_loop_is_fine(self) -> None:
        self.assertEqual(self.v2("src/core/a.h", """\
            class Thing {
             public:
              void tick(Rng& rng) {
                for (const auto& [k, v] : table_) {
                  total_ += v * rng.uniform();
                }
              }
             private:
              std::map<int, double> table_;
              double total_ = 0.0;
            };
            """, "rng-discipline"), [])


class UnorderedIter(LintV2Base):
    FIXTURE = """\
        class Thing {
         public:
          double sum() const {
            double s = 0.0;
            for (const auto& [k, v] : table_) {
              s += v;
            }
            return s;
          }
         private:
          std::unordered_map<int, double> table_;
        };
        """

    def test_range_for_fires_in_order_sensitive_dir(self) -> None:
        hits = self.v2("src/core/a.h", self.FIXTURE, "unordered-iter")
        self.assertEqual(len(hits), 1)
        self.assertEqual(hits[0].symbol, "table_")

    def test_not_flagged_outside_order_sensitive_dirs(self) -> None:
        self.assertEqual(self.v2("src/workload/a.h", self.FIXTURE,
                                 "unordered-iter"), [])

    def test_begin_iteration_fires(self) -> None:
        hits = self.v2("src/sched/a.cpp", """\
            void drain(std::unordered_set<int>& live_) {
              for (auto it = live_.begin(); it != live_.end(); ++it) {
                use(*it);
              }
            }
            """, "unordered-iter")
        self.assertEqual(len(hits), 1)

    def test_ordered_map_is_fine(self) -> None:
        self.assertEqual(self.v2("src/core/a.h", """\
            class Thing {
              std::map<int, double> table_;
              double sum() const {
                double s = 0.0;
                for (const auto& [k, v] : table_) s += v;
                return s;
              }
            };
            """, "unordered-iter"), [])

    def test_allowlist_silences(self) -> None:
        key = ("unordered-iter", "src/core/a.h", "table_")
        allowlist.ALLOWLIST[key] = "self-test entry"
        try:
            self.assertEqual(self.v2("src/core/a.h", self.FIXTURE,
                                     "unordered-iter"), [])
        finally:
            del allowlist.ALLOWLIST[key]


class ObserverCompleteness(LintV2Base):
    def test_mutation_without_tap_fires(self) -> None:
        hits = self.v2("src/mapreduce/task_tracker.cpp", """\
            void TaskTracker::occupy_slot(const TaskSpec& spec) {
              ++running_maps_;
            }
            """, "observer-completeness")
        self.assertEqual(len(hits), 1)
        self.assertEqual(hits[0].symbol, "TaskTracker::occupy_slot")

    def test_mutation_with_tap_is_complete(self) -> None:
        self.assertEqual(self.v2("src/mapreduce/task_tracker.cpp", """\
            void TaskTracker::occupy_slot(const TaskSpec& spec) {
              ++running_maps_;
              audit_transition(job_tracker_, spec, machine_.id(),
                               audit::TaskEvent::kLaunch);
            }
            """, "observer-completeness"), [])

    def test_release_slot_delegate_is_allowlisted(self) -> None:
        # The real allowlist blesses the slot-release delegate by name.
        self.assertEqual(self.v2("src/mapreduce/task_tracker.cpp", """\
            void TaskTracker::release_slot(TaskKind kind) {
              --running_maps_;
            }
            """, "observer-completeness"), [])

    def test_other_files_are_not_audited(self) -> None:
        self.assertEqual(self.v2("src/mapreduce/other.cpp", """\
            void f() { ++running_maps_; }
            """, "observer-completeness"), [])

    def test_revert_without_tap_fires(self) -> None:
        hits = self.v2("src/mapreduce/job_tracker.cpp", """\
            void JobTracker::replay(JobState& js) {
              js.revert_done_map(1, 2.0, 3);
            }
            """, "observer-completeness")
        self.assertEqual(len(hits), 1)
        self.assertIn("kRevertDone", hits[0].message)

    def test_revert_with_nearby_tap_is_complete(self) -> None:
        self.assertEqual(self.v2("src/mapreduce/job_tracker.cpp", """\
            void JobTracker::replay(JobState& js) {
              js.revert_done_map(1, 2.0, 3);
              if (auditor_) {
                auditor_->on_task_transition(job, true, 1,
                                             audit::TaskEvent::kRevertDone, 3);
              }
            }
            """, "observer-completeness"), [])

    def test_orphan_writeoff_needs_tap_or_delegate(self) -> None:
        bare = self.v2("src/mapreduce/job_tracker.cpp", """\
            void JobTracker::drop(const TaskReport& waste) {
              report_waste(waste, WasteReason::kOrphaned);
            }
            """, "observer-completeness")
        self.assertEqual(len(bare), 1)
        with_delegate = self.v2("src/mapreduce/job_tracker.cpp", """\
            void JobTracker::drop(TaskTracker& t, const TaskReport& waste) {
              t.cancel_task(waste.spec.job, waste.spec.kind, waste.spec.index);
              report_waste(waste, WasteReason::kOrphaned);
            }
            """, "observer-completeness")
        self.assertEqual(with_delegate, [])

    def test_corruption_detection_needs_record(self) -> None:
        bare = self.v2("src/mapreduce/job_tracker.cpp", """\
            void JobTracker::confirm_corruption(hdfs::BlockId block,
                                                cluster::MachineId node) {
              ++corruptions_detected_;
            }
            """, "observer-completeness")
        self.assertEqual(len(bare), 1)
        self.assertIn("kCorruptionDetected", bare[0].message)
        with_record = self.v2("src/mapreduce/job_tracker.cpp", """\
            void JobTracker::confirm_corruption(hdfs::BlockId block,
                                                cluster::MachineId node) {
              ++corruptions_detected_;
              if (auditor_) {
                auditor_->record(audit::Record::kCorruptionDetected,
                                 (block << 32) ^ node);
              }
            }
            """, "observer-completeness")
        self.assertEqual(with_record, [])
        # The shuffle and task-output detection counters are held to the
        # same obligation.
        shuffle = self.v2("src/mapreduce/job_tracker.cpp", """\
            void JobTracker::on_flow_complete(net::FlowId id) {
              ++shuffle_corruptions_;
            }
            """, "observer-completeness")
        self.assertEqual(len(shuffle), 1)

    def test_scrub_and_repair_need_records(self) -> None:
        bare = self.v2("src/mapreduce/job_tracker.cpp", """\
            void JobTracker::scrub_tick() {
              scrubbed_mb_ += mb;
              ++corruptions_repaired_;
            }
            """, "observer-completeness")
        self.assertEqual({h.symbol for h in bare},
                         {"scrubbed_mb_", "corruptions_repaired_"})
        with_records = self.v2("src/mapreduce/job_tracker.cpp", """\
            void JobTracker::scrub_tick() {
              scrubbed_mb_ += mb;
              if (auditor_) auditor_->record(audit::Record::kScrub, scanned);
              ++corruptions_repaired_;
              auditor_->record(audit::Record::kRepair, (block << 32) ^ target);
            }
            """, "observer-completeness")
        self.assertEqual(with_records, [])
        # The conservation sums in finalize_corruption only *read* the
        # counters — comparisons and additions are not mutations.
        self.assertEqual(self.v2("src/mapreduce/job_tracker.cpp", """\
            void JobTracker::finalize_corruption() {
              if (corruptions_detected_ !=
                  corruptions_repaired_ + corruptions_lost_ + pending) {
                report();
              }
            }
            """, "observer-completeness"), [])

    def test_admission_state_mutation_needs_record(self) -> None:
        bare = self.v2("src/mapreduce/admission.cpp", """\
            void AdmissionControl::transition_to(OverloadState next) {
              state_ = next;
            }
            """, "observer-completeness")
        self.assertEqual(len(bare), 1)
        self.assertIn("kOverloadState", bare[0].message)
        with_record = self.v2("src/mapreduce/admission.cpp", """\
            void AdmissionControl::transition_to(OverloadState next) {
              state_ = next;
              if (auditor_ != nullptr) {
                auditor_->record(audit::Record::kOverloadState,
                                 static_cast<std::uint64_t>(next));
              }
            }
            """, "observer-completeness")
        self.assertEqual(with_record, [])

    def test_admission_ledger_mutations_need_records(self) -> None:
        bare = self.v2("src/mapreduce/admission.cpp", """\
            bool AdmissionControl::note_rejection(const JobSpec& spec) {
              ++led.rejections;
              ++led.dropped;
              ++led.retries;
              return false;
            }
            """, "observer-completeness")
        self.assertEqual({h.symbol for h in bare}, {"rejections", "retries"})
        with_records = self.v2("src/mapreduce/admission.cpp", """\
            bool AdmissionControl::note_rejection(const JobSpec& spec) {
              ++led.rejections;
              auditor_->record(audit::Record::kJobReject, spec.tenant);
              ++led.retries;
              auditor_->record(audit::Record::kJobRetry, spec.tenant);
              return true;
            }
            """, "observer-completeness")
        self.assertEqual(with_records, [])
        # Reads of the counters (aggregation loops) are not mutations.
        self.assertEqual(self.v2("src/mapreduce/admission.cpp", """\
            std::size_t AdmissionControl::total_rejections() const {
              std::size_t n = 0;
              for (const auto& [t, led] : ledgers_) n += led.rejections;
              return n;
            }
            """, "observer-completeness"), [])


class EngineAndFallback(unittest.TestCase):
    def test_rule_registry_matches_docs(self) -> None:
        self.assertEqual(set(RULES),
                         {"global-state", "rng-discipline",
                          "unordered-iter", "observer-completeness"})

    def test_committed_tree_is_clean_text_mode(self) -> None:
        findings, notes = engine.run([], "text", None)
        self.assertEqual([f.render() for f in findings], [])
        self.assertTrue(any("text" in n for n in notes))

    def test_auto_mode_degrades_gracefully(self) -> None:
        # Whether or not libclang is present, auto mode must complete and
        # say which backend ran.
        findings, notes = engine.run(["src/common"], None or "auto", None)
        self.assertIsInstance(findings, list)
        self.assertTrue(any("AST" in n or "fallback" in n for n in notes))

    def test_committed_tree_is_clean_under_ast_when_available(self) -> None:
        from tools.lint2.ast_checks import ast_available
        reason = ast_available()
        if reason is not None:
            self.skipTest(f"AST backend unavailable: {reason}")
        cc = REPO / "build" / "compile_commands.json"
        findings, _ = engine.run([], "ast", str(cc) if cc.is_file() else None)
        self.assertEqual([f.render() for f in findings], [])

    def test_cli_entrypoint_lists_rules(self) -> None:
        out = subprocess.run(
            [sys.executable, str(REPO / "tools" / "lint2"), "--list-rules"],
            capture_output=True, text=True, cwd=REPO, check=True)
        self.assertEqual(out.stdout.split(), list(RULES))

    def test_v1_committed_tree_is_clean(self) -> None:
        out = subprocess.run(
            [sys.executable, str(REPO / "tools" / "lint.py")],
            capture_output=True, text=True, cwd=REPO)
        self.assertEqual(out.returncode, 0, out.stdout + out.stderr)


if __name__ == "__main__":
    unittest.main(verbosity=2)
