file(REMOVE_RECURSE
  "CMakeFiles/msd_replay.dir/msd_replay.cpp.o"
  "CMakeFiles/msd_replay.dir/msd_replay.cpp.o.d"
  "msd_replay"
  "msd_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msd_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
