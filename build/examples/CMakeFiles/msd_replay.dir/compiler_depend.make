# Empty compiler generated dependencies file for msd_replay.
# This may be replaced when dependencies are built.
