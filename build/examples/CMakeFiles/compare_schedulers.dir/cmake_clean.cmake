file(REMOVE_RECURSE
  "CMakeFiles/compare_schedulers.dir/compare_schedulers.cpp.o"
  "CMakeFiles/compare_schedulers.dir/compare_schedulers.cpp.o.d"
  "compare_schedulers"
  "compare_schedulers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_schedulers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
