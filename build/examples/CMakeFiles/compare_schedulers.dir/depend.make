# Empty dependencies file for compare_schedulers.
# This may be replaced when dependencies are built.
