file(REMOVE_RECURSE
  "CMakeFiles/energy_calibration.dir/energy_calibration.cpp.o"
  "CMakeFiles/energy_calibration.dir/energy_calibration.cpp.o.d"
  "energy_calibration"
  "energy_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
