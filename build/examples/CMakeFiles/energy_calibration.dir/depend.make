# Empty dependencies file for energy_calibration.
# This may be replaced when dependencies are built.
