file(REMOVE_RECURSE
  "CMakeFiles/ablation_provisioning.dir/ablation_provisioning.cpp.o"
  "CMakeFiles/ablation_provisioning.dir/ablation_provisioning.cpp.o.d"
  "ablation_provisioning"
  "ablation_provisioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_provisioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
