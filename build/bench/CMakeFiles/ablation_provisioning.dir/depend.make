# Empty dependencies file for ablation_provisioning.
# This may be replaced when dependencies are built.
