# Empty dependencies file for fig4_energy_model.
# This may be replaced when dependencies are built.
