file(REMOVE_RECURSE
  "CMakeFiles/fig8_comparison.dir/fig8_comparison.cpp.o"
  "CMakeFiles/fig8_comparison.dir/fig8_comparison.cpp.o.d"
  "fig8_comparison"
  "fig8_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
