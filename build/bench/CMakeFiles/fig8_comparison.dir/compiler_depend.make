# Empty compiler generated dependencies file for fig8_comparison.
# This may be replaced when dependencies are built.
