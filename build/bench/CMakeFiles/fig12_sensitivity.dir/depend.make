# Empty dependencies file for fig12_sensitivity.
# This may be replaced when dependencies are built.
