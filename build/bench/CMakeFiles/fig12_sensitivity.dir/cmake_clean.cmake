file(REMOVE_RECURSE
  "CMakeFiles/fig12_sensitivity.dir/fig12_sensitivity.cpp.o"
  "CMakeFiles/fig12_sensitivity.dir/fig12_sensitivity.cpp.o.d"
  "fig12_sensitivity"
  "fig12_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
