# Empty dependencies file for fig10_exchange.
# This may be replaced when dependencies are built.
