file(REMOVE_RECURSE
  "CMakeFiles/fig10_exchange.dir/fig10_exchange.cpp.o"
  "CMakeFiles/fig10_exchange.dir/fig10_exchange.cpp.o.d"
  "fig10_exchange"
  "fig10_exchange.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_exchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
