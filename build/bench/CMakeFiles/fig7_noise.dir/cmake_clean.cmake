file(REMOVE_RECURSE
  "CMakeFiles/fig7_noise.dir/fig7_noise.cpp.o"
  "CMakeFiles/fig7_noise.dir/fig7_noise.cpp.o.d"
  "fig7_noise"
  "fig7_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
