# Empty dependencies file for fig7_noise.
# This may be replaced when dependencies are built.
