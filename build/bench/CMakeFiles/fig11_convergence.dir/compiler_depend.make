# Empty compiler generated dependencies file for fig11_convergence.
# This may be replaced when dependencies are built.
