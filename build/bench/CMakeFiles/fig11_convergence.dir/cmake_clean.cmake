file(REMOVE_RECURSE
  "CMakeFiles/fig11_convergence.dir/fig11_convergence.cpp.o"
  "CMakeFiles/fig11_convergence.dir/fig11_convergence.cpp.o.d"
  "fig11_convergence"
  "fig11_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
