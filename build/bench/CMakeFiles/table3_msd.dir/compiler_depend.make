# Empty compiler generated dependencies file for table3_msd.
# This may be replaced when dependencies are built.
