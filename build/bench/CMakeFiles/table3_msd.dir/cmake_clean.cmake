file(REMOVE_RECURSE
  "CMakeFiles/table3_msd.dir/table3_msd.cpp.o"
  "CMakeFiles/table3_msd.dir/table3_msd.cpp.o.d"
  "table3_msd"
  "table3_msd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_msd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
