# Empty compiler generated dependencies file for ablation_feedback.
# This may be replaced when dependencies are built.
