file(REMOVE_RECURSE
  "CMakeFiles/ablation_feedback.dir/ablation_feedback.cpp.o"
  "CMakeFiles/ablation_feedback.dir/ablation_feedback.cpp.o.d"
  "ablation_feedback"
  "ablation_feedback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_feedback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
