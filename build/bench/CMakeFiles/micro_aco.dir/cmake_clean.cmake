file(REMOVE_RECURSE
  "CMakeFiles/micro_aco.dir/micro_aco.cpp.o"
  "CMakeFiles/micro_aco.dir/micro_aco.cpp.o.d"
  "micro_aco"
  "micro_aco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_aco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
