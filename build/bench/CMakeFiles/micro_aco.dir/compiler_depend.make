# Empty compiler generated dependencies file for micro_aco.
# This may be replaced when dependencies are built.
