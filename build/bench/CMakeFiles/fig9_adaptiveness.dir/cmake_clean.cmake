file(REMOVE_RECURSE
  "CMakeFiles/fig9_adaptiveness.dir/fig9_adaptiveness.cpp.o"
  "CMakeFiles/fig9_adaptiveness.dir/fig9_adaptiveness.cpp.o.d"
  "fig9_adaptiveness"
  "fig9_adaptiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_adaptiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
