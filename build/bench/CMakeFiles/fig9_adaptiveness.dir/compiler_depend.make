# Empty compiler generated dependencies file for fig9_adaptiveness.
# This may be replaced when dependencies are built.
