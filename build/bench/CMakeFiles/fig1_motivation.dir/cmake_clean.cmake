file(REMOVE_RECURSE
  "CMakeFiles/fig1_motivation.dir/fig1_motivation.cpp.o"
  "CMakeFiles/fig1_motivation.dir/fig1_motivation.cpp.o.d"
  "fig1_motivation"
  "fig1_motivation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_motivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
