# Empty dependencies file for fig1_motivation.
# This may be replaced when dependencies are built.
