# Empty compiler generated dependencies file for fig6_locality.
# This may be replaced when dependencies are built.
