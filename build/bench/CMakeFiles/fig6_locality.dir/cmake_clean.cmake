file(REMOVE_RECURSE
  "CMakeFiles/fig6_locality.dir/fig6_locality.cpp.o"
  "CMakeFiles/fig6_locality.dir/fig6_locality.cpp.o.d"
  "fig6_locality"
  "fig6_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
