# Empty compiler generated dependencies file for energy_model_test.
# This may be replaced when dependencies are built.
