file(REMOVE_RECURSE
  "CMakeFiles/energy_model_test.dir/energy_model_test.cpp.o"
  "CMakeFiles/energy_model_test.dir/energy_model_test.cpp.o.d"
  "energy_model_test"
  "energy_model_test.pdb"
  "energy_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
