file(REMOVE_RECURSE
  "CMakeFiles/mapreduce_test.dir/mapreduce_test.cpp.o"
  "CMakeFiles/mapreduce_test.dir/mapreduce_test.cpp.o.d"
  "mapreduce_test"
  "mapreduce_test.pdb"
  "mapreduce_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapreduce_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
