# Empty compiler generated dependencies file for aco_test.
# This may be replaced when dependencies are built.
