file(REMOVE_RECURSE
  "CMakeFiles/aco_test.dir/aco_test.cpp.o"
  "CMakeFiles/aco_test.dir/aco_test.cpp.o.d"
  "aco_test"
  "aco_test.pdb"
  "aco_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aco_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
