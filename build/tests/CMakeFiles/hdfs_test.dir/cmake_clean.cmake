file(REMOVE_RECURSE
  "CMakeFiles/hdfs_test.dir/hdfs_test.cpp.o"
  "CMakeFiles/hdfs_test.dir/hdfs_test.cpp.o.d"
  "hdfs_test"
  "hdfs_test.pdb"
  "hdfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
