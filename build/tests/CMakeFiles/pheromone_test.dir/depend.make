# Empty dependencies file for pheromone_test.
# This may be replaced when dependencies are built.
