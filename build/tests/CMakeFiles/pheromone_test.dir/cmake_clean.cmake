file(REMOVE_RECURSE
  "CMakeFiles/pheromone_test.dir/pheromone_test.cpp.o"
  "CMakeFiles/pheromone_test.dir/pheromone_test.cpp.o.d"
  "pheromone_test"
  "pheromone_test.pdb"
  "pheromone_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pheromone_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
