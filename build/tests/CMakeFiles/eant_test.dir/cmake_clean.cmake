file(REMOVE_RECURSE
  "CMakeFiles/eant_test.dir/eant_test.cpp.o"
  "CMakeFiles/eant_test.dir/eant_test.cpp.o.d"
  "eant_test"
  "eant_test.pdb"
  "eant_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
