# Empty compiler generated dependencies file for eant_test.
# This may be replaced when dependencies are built.
