# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/hdfs_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/mapreduce_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/energy_model_test[1]_include.cmake")
include("/root/repo/build/tests/pheromone_test[1]_include.cmake")
include("/root/repo/build/tests/aco_test[1]_include.cmake")
include("/root/repo/build/tests/eant_test[1]_include.cmake")
include("/root/repo/build/tests/exp_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
