# Empty compiler generated dependencies file for eant_mapreduce.
# This may be replaced when dependencies are built.
