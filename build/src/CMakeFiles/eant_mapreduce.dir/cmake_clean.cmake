file(REMOVE_RECURSE
  "CMakeFiles/eant_mapreduce.dir/mapreduce/job.cpp.o"
  "CMakeFiles/eant_mapreduce.dir/mapreduce/job.cpp.o.d"
  "CMakeFiles/eant_mapreduce.dir/mapreduce/job_tracker.cpp.o"
  "CMakeFiles/eant_mapreduce.dir/mapreduce/job_tracker.cpp.o.d"
  "CMakeFiles/eant_mapreduce.dir/mapreduce/noise.cpp.o"
  "CMakeFiles/eant_mapreduce.dir/mapreduce/noise.cpp.o.d"
  "CMakeFiles/eant_mapreduce.dir/mapreduce/task.cpp.o"
  "CMakeFiles/eant_mapreduce.dir/mapreduce/task.cpp.o.d"
  "CMakeFiles/eant_mapreduce.dir/mapreduce/task_tracker.cpp.o"
  "CMakeFiles/eant_mapreduce.dir/mapreduce/task_tracker.cpp.o.d"
  "libeant_mapreduce.a"
  "libeant_mapreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eant_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
