file(REMOVE_RECURSE
  "libeant_mapreduce.a"
)
