file(REMOVE_RECURSE
  "CMakeFiles/eant_workload.dir/workload/apps.cpp.o"
  "CMakeFiles/eant_workload.dir/workload/apps.cpp.o.d"
  "CMakeFiles/eant_workload.dir/workload/arrival.cpp.o"
  "CMakeFiles/eant_workload.dir/workload/arrival.cpp.o.d"
  "CMakeFiles/eant_workload.dir/workload/msd.cpp.o"
  "CMakeFiles/eant_workload.dir/workload/msd.cpp.o.d"
  "libeant_workload.a"
  "libeant_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eant_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
