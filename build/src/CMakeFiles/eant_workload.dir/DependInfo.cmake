
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/apps.cpp" "src/CMakeFiles/eant_workload.dir/workload/apps.cpp.o" "gcc" "src/CMakeFiles/eant_workload.dir/workload/apps.cpp.o.d"
  "/root/repo/src/workload/arrival.cpp" "src/CMakeFiles/eant_workload.dir/workload/arrival.cpp.o" "gcc" "src/CMakeFiles/eant_workload.dir/workload/arrival.cpp.o.d"
  "/root/repo/src/workload/msd.cpp" "src/CMakeFiles/eant_workload.dir/workload/msd.cpp.o" "gcc" "src/CMakeFiles/eant_workload.dir/workload/msd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/eant_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
