# Empty compiler generated dependencies file for eant_workload.
# This may be replaced when dependencies are built.
