file(REMOVE_RECURSE
  "libeant_workload.a"
)
