# Empty compiler generated dependencies file for eant_core.
# This may be replaced when dependencies are built.
