
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aco.cpp" "src/CMakeFiles/eant_core.dir/core/aco.cpp.o" "gcc" "src/CMakeFiles/eant_core.dir/core/aco.cpp.o.d"
  "/root/repo/src/core/convergence.cpp" "src/CMakeFiles/eant_core.dir/core/convergence.cpp.o" "gcc" "src/CMakeFiles/eant_core.dir/core/convergence.cpp.o.d"
  "/root/repo/src/core/eant_scheduler.cpp" "src/CMakeFiles/eant_core.dir/core/eant_scheduler.cpp.o" "gcc" "src/CMakeFiles/eant_core.dir/core/eant_scheduler.cpp.o.d"
  "/root/repo/src/core/energy_model.cpp" "src/CMakeFiles/eant_core.dir/core/energy_model.cpp.o" "gcc" "src/CMakeFiles/eant_core.dir/core/energy_model.cpp.o.d"
  "/root/repo/src/core/exchange.cpp" "src/CMakeFiles/eant_core.dir/core/exchange.cpp.o" "gcc" "src/CMakeFiles/eant_core.dir/core/exchange.cpp.o.d"
  "/root/repo/src/core/heuristic.cpp" "src/CMakeFiles/eant_core.dir/core/heuristic.cpp.o" "gcc" "src/CMakeFiles/eant_core.dir/core/heuristic.cpp.o.d"
  "/root/repo/src/core/pheromone.cpp" "src/CMakeFiles/eant_core.dir/core/pheromone.cpp.o" "gcc" "src/CMakeFiles/eant_core.dir/core/pheromone.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/eant_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/eant_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/eant_hdfs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/eant_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/eant_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/eant_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/eant_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
