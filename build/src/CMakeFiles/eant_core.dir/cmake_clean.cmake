file(REMOVE_RECURSE
  "CMakeFiles/eant_core.dir/core/aco.cpp.o"
  "CMakeFiles/eant_core.dir/core/aco.cpp.o.d"
  "CMakeFiles/eant_core.dir/core/convergence.cpp.o"
  "CMakeFiles/eant_core.dir/core/convergence.cpp.o.d"
  "CMakeFiles/eant_core.dir/core/eant_scheduler.cpp.o"
  "CMakeFiles/eant_core.dir/core/eant_scheduler.cpp.o.d"
  "CMakeFiles/eant_core.dir/core/energy_model.cpp.o"
  "CMakeFiles/eant_core.dir/core/energy_model.cpp.o.d"
  "CMakeFiles/eant_core.dir/core/exchange.cpp.o"
  "CMakeFiles/eant_core.dir/core/exchange.cpp.o.d"
  "CMakeFiles/eant_core.dir/core/heuristic.cpp.o"
  "CMakeFiles/eant_core.dir/core/heuristic.cpp.o.d"
  "CMakeFiles/eant_core.dir/core/pheromone.cpp.o"
  "CMakeFiles/eant_core.dir/core/pheromone.cpp.o.d"
  "libeant_core.a"
  "libeant_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eant_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
