file(REMOVE_RECURSE
  "libeant_core.a"
)
