file(REMOVE_RECURSE
  "CMakeFiles/eant_exp.dir/exp/builders.cpp.o"
  "CMakeFiles/eant_exp.dir/exp/builders.cpp.o.d"
  "CMakeFiles/eant_exp.dir/exp/csv.cpp.o"
  "CMakeFiles/eant_exp.dir/exp/csv.cpp.o.d"
  "CMakeFiles/eant_exp.dir/exp/metrics.cpp.o"
  "CMakeFiles/eant_exp.dir/exp/metrics.cpp.o.d"
  "CMakeFiles/eant_exp.dir/exp/motivation.cpp.o"
  "CMakeFiles/eant_exp.dir/exp/motivation.cpp.o.d"
  "CMakeFiles/eant_exp.dir/exp/provisioning.cpp.o"
  "CMakeFiles/eant_exp.dir/exp/provisioning.cpp.o.d"
  "CMakeFiles/eant_exp.dir/exp/runner.cpp.o"
  "CMakeFiles/eant_exp.dir/exp/runner.cpp.o.d"
  "libeant_exp.a"
  "libeant_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eant_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
