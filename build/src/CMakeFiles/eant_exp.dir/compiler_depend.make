# Empty compiler generated dependencies file for eant_exp.
# This may be replaced when dependencies are built.
