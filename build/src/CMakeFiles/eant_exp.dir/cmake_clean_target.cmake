file(REMOVE_RECURSE
  "libeant_exp.a"
)
