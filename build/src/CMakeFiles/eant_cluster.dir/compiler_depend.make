# Empty compiler generated dependencies file for eant_cluster.
# This may be replaced when dependencies are built.
