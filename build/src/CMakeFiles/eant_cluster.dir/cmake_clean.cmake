file(REMOVE_RECURSE
  "CMakeFiles/eant_cluster.dir/cluster/catalog.cpp.o"
  "CMakeFiles/eant_cluster.dir/cluster/catalog.cpp.o.d"
  "CMakeFiles/eant_cluster.dir/cluster/cluster.cpp.o"
  "CMakeFiles/eant_cluster.dir/cluster/cluster.cpp.o.d"
  "CMakeFiles/eant_cluster.dir/cluster/machine.cpp.o"
  "CMakeFiles/eant_cluster.dir/cluster/machine.cpp.o.d"
  "CMakeFiles/eant_cluster.dir/cluster/power_meter.cpp.o"
  "CMakeFiles/eant_cluster.dir/cluster/power_meter.cpp.o.d"
  "libeant_cluster.a"
  "libeant_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eant_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
