file(REMOVE_RECURSE
  "libeant_cluster.a"
)
