file(REMOVE_RECURSE
  "libeant_common.a"
)
