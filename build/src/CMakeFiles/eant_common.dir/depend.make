# Empty dependencies file for eant_common.
# This may be replaced when dependencies are built.
