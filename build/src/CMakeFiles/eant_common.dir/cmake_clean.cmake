file(REMOVE_RECURSE
  "CMakeFiles/eant_common.dir/common/rng.cpp.o"
  "CMakeFiles/eant_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/eant_common.dir/common/stats.cpp.o"
  "CMakeFiles/eant_common.dir/common/stats.cpp.o.d"
  "CMakeFiles/eant_common.dir/common/table.cpp.o"
  "CMakeFiles/eant_common.dir/common/table.cpp.o.d"
  "libeant_common.a"
  "libeant_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eant_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
