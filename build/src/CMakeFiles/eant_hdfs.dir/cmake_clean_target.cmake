file(REMOVE_RECURSE
  "libeant_hdfs.a"
)
