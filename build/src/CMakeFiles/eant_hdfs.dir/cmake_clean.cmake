file(REMOVE_RECURSE
  "CMakeFiles/eant_hdfs.dir/hdfs/namenode.cpp.o"
  "CMakeFiles/eant_hdfs.dir/hdfs/namenode.cpp.o.d"
  "libeant_hdfs.a"
  "libeant_hdfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eant_hdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
