# Empty compiler generated dependencies file for eant_hdfs.
# This may be replaced when dependencies are built.
