file(REMOVE_RECURSE
  "CMakeFiles/eant_sched.dir/sched/capacity.cpp.o"
  "CMakeFiles/eant_sched.dir/sched/capacity.cpp.o.d"
  "CMakeFiles/eant_sched.dir/sched/fair.cpp.o"
  "CMakeFiles/eant_sched.dir/sched/fair.cpp.o.d"
  "CMakeFiles/eant_sched.dir/sched/fifo.cpp.o"
  "CMakeFiles/eant_sched.dir/sched/fifo.cpp.o.d"
  "CMakeFiles/eant_sched.dir/sched/late.cpp.o"
  "CMakeFiles/eant_sched.dir/sched/late.cpp.o.d"
  "CMakeFiles/eant_sched.dir/sched/tarazu.cpp.o"
  "CMakeFiles/eant_sched.dir/sched/tarazu.cpp.o.d"
  "libeant_sched.a"
  "libeant_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eant_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
