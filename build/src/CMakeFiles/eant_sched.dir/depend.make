# Empty dependencies file for eant_sched.
# This may be replaced when dependencies are built.
