file(REMOVE_RECURSE
  "libeant_sched.a"
)
