file(REMOVE_RECURSE
  "CMakeFiles/eant_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/eant_sim.dir/sim/simulator.cpp.o.d"
  "libeant_sim.a"
  "libeant_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eant_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
