# Empty compiler generated dependencies file for eant_sim.
# This may be replaced when dependencies are built.
