file(REMOVE_RECURSE
  "libeant_sim.a"
)
