// Integration tests for the E-Ant scheduler: lifecycle, pheromone learning,
// adaptive placement, energy advantage over the heterogeneity-oblivious
// baselines, and the fairness/locality knob.

#include <gtest/gtest.h>

#include "cluster/catalog.h"
#include "common/error.h"
#include "core/eant_scheduler.h"
#include "exp/builders.h"
#include "exp/runner.h"
#include "workload/msd.h"

namespace eant::core {
namespace {


using exp::RunConfig;
using exp::SchedulerKind;

RunConfig quick_config(std::uint64_t seed, Seconds control_interval = 60.0) {
  RunConfig c;
  c.seed = seed;
  c.eant.control_interval = control_interval;
  return c;
}

/// A mixed workload of repeated same-class jobs so colonies can learn.
std::vector<workload::JobSpec> mixed_workload(int per_app, Megabytes mb,
                                              Seconds spacing) {
  std::vector<workload::JobSpec> jobs;
  Seconds t = 0.0;
  for (int i = 0; i < per_app; ++i) {
    for (workload::AppKind app : workload::all_apps()) {
      auto j = exp::single_job(app, mb, 2);
      j.submit_time = t;
      jobs.push_back(j);
      t += spacing;
    }
  }
  return jobs;
}

TEST(EAnt, ConfigValidation) {
  EAntConfig cfg;
  cfg.control_interval = 0.0;
  EXPECT_THROW(EAntScheduler(EnergyModel{}, Rng(1), cfg), PreconditionError);
  cfg = EAntConfig{};
  cfg.beta = -1.0;
  EXPECT_THROW(EAntScheduler(EnergyModel{}, Rng(1), cfg), PreconditionError);
}

TEST(EAnt, CompletesSingleJob) {
  exp::Run run(exp::homogeneous(cluster::catalog::desktop(), 2),
          SchedulerKind::kEAnt, quick_config(1));
  run.submit({exp::single_job(workload::AppKind::kWordcount, 64.0 * 8, 2)});
  run.execute();
  EXPECT_EQ(run.job_tracker().jobs_completed(), 1u);
  EXPECT_EQ(run.scheduler().name(), "E-Ant");
}

TEST(EAnt, CompletesMixedMultiJobWorkload) {
  exp::Run run(exp::paper_fleet(), SchedulerKind::kEAnt, quick_config(2));
  run.submit(mixed_workload(2, 64.0 * 12, 30.0));
  run.execute();
  EXPECT_EQ(run.job_tracker().jobs_completed(), 6u);
  const auto m = run.metrics();
  EXPECT_GT(m.total_energy, 0.0);
  EXPECT_EQ(m.jobs.size(), 6u);
}

TEST(EAnt, ColoniesTrackJobLifecycle) {
  exp::Run run(exp::homogeneous(cluster::catalog::desktop(), 2),
          SchedulerKind::kEAnt, quick_config(3));
  auto* eant = run.eant();
  ASSERT_NE(eant, nullptr);
  const auto id = run.job_tracker().submit_now(
      exp::single_job(workload::AppKind::kGrep, 64.0 * 4, 1));
  EXPECT_TRUE(eant->pheromone().has_job(id));
  run.execute();
  EXPECT_FALSE(eant->pheromone().has_job(id));  // retired at completion
}

TEST(EAnt, ControlIntervalsTick) {
  exp::Run run(exp::homogeneous(cluster::catalog::desktop(), 1),
          SchedulerKind::kEAnt, quick_config(4, 30.0));
  run.submit({exp::single_job(workload::AppKind::kWordcount, 64.0 * 20, 2)});
  run.execute();
  EXPECT_GT(run.eant()->intervals(), 2u);
}

TEST(EAnt, EstimatesEnergyPerMachine) {
  exp::Run run(exp::paper_fleet(), SchedulerKind::kEAnt, quick_config(5));
  run.submit({exp::single_job(workload::AppKind::kTerasort, 64.0 * 20, 4)});
  run.execute();
  const auto& est = run.eant()->estimated_energy_per_machine();
  ASSERT_EQ(est.size(), 16u);
  double total = 0.0;
  for (double e : est) {
    EXPECT_GE(e, 0.0);
    total += e;
  }
  EXPECT_GT(total, 0.0);
  // The Eq. 2 estimate attributes at most the busy machines' energy.
  EXPECT_LT(total, run.metrics().total_energy);
}

TEST(EAnt, LearnsToFavourEfficientMachinesForCpuBoundWork) {
  // Fig. 9(a)'s mechanism at minimum scale: CPU-bound (Wordcount) and
  // IO-bound (Grep) job streams compete for a desktop and a T110.  Work
  // conservation means a colony can only decline a slot while a better
  // machine is free, so specialisation shows up as a *trade*: relative to
  // Grep, Wordcount's maps concentrate on the Xeon (whose Eq. 2 cost for
  // CPU-heavy tasks is lower), and Grep backfills the desktop.
  RunConfig cfg = quick_config(6, 60.0);
  cfg.eant.beta = 0.0;  // isolate the energy signal from locality/fairness
  exp::Run run(exp::machines({cluster::catalog::desktop(),
                         cluster::catalog::t110()}),
          SchedulerKind::kEAnt, cfg);
  std::vector<workload::JobSpec> jobs;
  for (int i = 0; i < 14; ++i) {
    auto wc = exp::single_job(workload::AppKind::kWordcount, 64.0 * 10, 1);
    wc.submit_time = i * 120.0;
    jobs.push_back(wc);
    auto gr = exp::single_job(workload::AppKind::kGrep, 64.0 * 10, 1);
    gr.submit_time = i * 120.0;
    jobs.push_back(gr);
  }
  run.submit(jobs);
  run.execute();

  // Aggregate map placement of the later (post-learning) jobs.
  double wc_xeon = 0, wc_desktop = 0, gr_xeon = 0, gr_desktop = 0;
  const auto& jt = run.job_tracker();
  for (mr::JobId id = 14; id < 28; ++id) {
    const auto& js = jt.job(id);
    const auto& pm = js.completed_per_machine(mr::TaskKind::kMap);
    if (js.spec().app == workload::AppKind::kWordcount) {
      wc_desktop += pm[0];
      wc_xeon += pm[1];
    } else {
      gr_desktop += pm[0];
      gr_xeon += pm[1];
    }
  }
  const double wc_xeon_share = wc_xeon / std::max(1.0, wc_xeon + wc_desktop);
  const double gr_xeon_share = gr_xeon / std::max(1.0, gr_xeon + gr_desktop);
  EXPECT_GT(wc_xeon_share, gr_xeon_share);
}

TEST(EAnt, UsesLessEnergyThanFairOnHeterogeneousFleet) {
  // The headline comparison (Fig. 8(a)) at reduced scale: a sustained,
  // overlapping mixed workload on the paper fleet.  E-Ant must save energy
  // vs Fair.  Noise is disabled so a single straggler on the critical path
  // cannot dominate the comparison (robustness to noise is exercised by the
  // exchange-strategy tests and the Fig. 10 bench).
  auto run_energy = [&](SchedulerKind kind) {
    RunConfig cfg = quick_config(7, 120.0);
    cfg.eant.negative_feedback = false;  // headline config, see DESIGN.md
    exp::Run run(exp::paper_fleet(), kind, cfg);
    run.submit(mixed_workload(8, 64.0 * 24, 15.0));
    run.execute();
    return run.metrics();
  };
  const auto fair = run_energy(SchedulerKind::kFair);
  const auto eant = run_energy(SchedulerKind::kEAnt);
  EXPECT_LT(eant.total_energy, fair.total_energy);
}

TEST(EAnt, ConvergenceTrackerObservesLongJobs) {
  RunConfig cfg = quick_config(8, 60.0);
  exp::Run run(exp::paper_fleet(), SchedulerKind::kEAnt, cfg);
  const auto id = run.job_tracker().submit_now(
      exp::single_job(workload::AppKind::kWordcount, 64.0 * 600, 8));
  run.execute();
  // A single long job spanning many control intervals should stabilise
  // (Sec. VI-C's 80%-revisit rule).
  EXPECT_TRUE(run.eant()->convergence().converged(id));
  EXPECT_GT(*run.eant()->convergence().convergence_time(id), 0.0);
}

TEST(EAnt, HigherBetaTightensProgressOfIdenticalJobs) {
  // Fig. 12(a)'s mechanism: the fairness eta (Eq. 7) boosts jobs below
  // their fair share, so with a strong beta, identical concurrent jobs
  // progress in lock-step (small completion-time spread); with beta = 0
  // the sampler ignores occupancy imbalances.
  auto spread = [&](double beta) {
    RunConfig cfg = quick_config(9, 60.0);
    cfg.eant.beta = beta;
    exp::Run run(exp::paper_fleet(), SchedulerKind::kEAnt, cfg);
    run.submit(exp::job_batch(workload::AppKind::kWordcount, 64.0 * 24, 2, 6));
    run.execute();
    double lo = 1e18, hi = 0.0, sum = 0.0;
    for (const auto& j : run.metrics().jobs) {
      lo = std::min(lo, j.completion_time);
      hi = std::max(hi, j.completion_time);
      sum += j.completion_time;
    }
    return (hi - lo) / (sum / 6.0);
  };
  // Stochastic relation: require the strong-fairness spread not to exceed
  // the no-fairness spread by more than a small tolerance.
  EXPECT_LT(spread(1.0), spread(0.0) + 0.15);
}

TEST(EAnt, LocalityBoostRaisesLocalFraction) {
  auto locality = [&](double beta) {
    RunConfig cfg = quick_config(10, 60.0);
    cfg.eant.beta = beta;
    exp::Run run(exp::paper_fleet(), SchedulerKind::kEAnt, cfg);
    run.submit(mixed_workload(2, 64.0 * 16, 30.0));
    run.execute();
    return run.metrics().locality_fraction();
  };
  EXPECT_GE(locality(0.3) + 0.05, locality(0.0));
}

TEST(EAnt, DisabledExchangeStillCompletes) {
  RunConfig cfg = quick_config(11, 60.0);
  cfg.eant.machine_exchange = false;
  cfg.eant.job_exchange = false;
  cfg.eant.negative_feedback = false;
  exp::Run run(exp::paper_fleet(), SchedulerKind::kEAnt, cfg);
  run.submit(mixed_workload(1, 64.0 * 10, 20.0));
  run.execute();
  EXPECT_EQ(run.job_tracker().jobs_completed(), 3u);
}

TEST(EAnt, DeterministicGivenSeed) {
  auto run_once = [&](std::uint64_t seed) {
    RunConfig cfg = quick_config(seed, 60.0);
    cfg.noise = mr::NoiseConfig::typical();
    exp::Run run(exp::paper_fleet(), SchedulerKind::kEAnt, cfg);
    run.submit(mixed_workload(1, 64.0 * 12, 25.0));
    run.execute();
    const auto m = run.metrics();
    return std::make_pair(m.total_energy, m.makespan);
  };
  const auto a = run_once(123);
  const auto b = run_once(123);
  EXPECT_DOUBLE_EQ(a.first, b.first);
  EXPECT_DOUBLE_EQ(a.second, b.second);
  const auto c = run_once(456);
  EXPECT_NE(a.first, c.first);
}

}  // namespace
}  // namespace eant::core
