// Property-based suites (parameterised gtest): invariants that must hold
// for every scheduler, seed and noise level — slot bounds (the Eq. 1
// constraint), task conservation, energy accounting consistency, pheromone
// positivity, and report well-formedness.

#include <gtest/gtest.h>

#include <tuple>

#include "cluster/catalog.h"
#include "common/rng.h"
#include "core/eant_scheduler.h"
#include "exp/builders.h"
#include "exp/runner.h"
#include "workload/msd.h"

namespace eant {
namespace {


using exp::RunConfig;
using exp::SchedulerKind;

// --- cross-scheduler execution invariants ---------------------------------------

class SchedulerInvariants
    : public ::testing::TestWithParam<std::tuple<SchedulerKind, int, bool>> {};

TEST_P(SchedulerInvariants, HoldThroughoutARun) {
  const auto [kind, seed, noisy] = GetParam();

  RunConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(seed);
  cfg.noise = noisy ? mr::NoiseConfig::typical() : mr::NoiseConfig::none();
  cfg.eant.control_interval = 90.0;
  exp::Run run(exp::paper_fleet(), kind, cfg);

  workload::MsdConfig wl;
  wl.num_jobs = 8;
  wl.input_scale = 1.0 / 400.0;
  wl.mean_interarrival = 30.0;
  Rng rng(cfg.seed);
  const auto jobs = workload::MsdGenerator(wl).generate(rng);
  run.submit(jobs);

  std::size_t expected_maps = 0;
  std::size_t reports = 0;
  auto& jt = run.job_tracker();

  jt.set_report_listener([&](const mr::TaskReport& r) {
    ++reports;
    // Eq. 1's slot constraint: concurrent executions never exceed slots.
    for (cluster::MachineId m = 0; m < run.cluster().size(); ++m) {
      const auto& type = run.cluster().machine(m).type();
      ASSERT_LE(jt.tracker(m).running(mr::TaskKind::kMap), type.map_slots);
      ASSERT_LE(jt.tracker(m).running(mr::TaskKind::kReduce),
                type.reduce_slots);
    }
    // Reports are well-formed.
    ASSERT_GT(r.finish, r.start);
    ASSERT_FALSE(r.samples.empty());
    double window_total = 0.0;
    for (const auto& s : r.samples) {
      ASSERT_GE(s.util, 0.0);
      ASSERT_GT(s.duration, 0.0);
      window_total += s.duration;
    }
    ASSERT_NEAR(window_total, r.duration(), 1e-6);
  });

  run.execute();

  // Task conservation: every map (one per block) and reduce ran exactly
  // once (reports for losing speculative attempts are dropped).
  std::size_t expected_reduces = 0;
  for (mr::JobId id = 0; id < jt.num_jobs(); ++id) {
    expected_maps += jt.job(id).num_maps();
    expected_reduces += jt.job(id).num_reduces();
    EXPECT_TRUE(jt.job(id).complete());
  }
  EXPECT_EQ(reports, expected_maps + expected_reduces);

  // Energy accounting: per-type totals equal the cluster total, all
  // positive, and no machine reports negative utilisation.
  const auto m = run.metrics();
  double type_total = 0.0;
  for (const auto& t : m.by_type) {
    EXPECT_GT(t.energy, 0.0);
    type_total += t.energy;
  }
  EXPECT_NEAR(type_total, m.total_energy, 1e-6);
  // Energy is at least the fleet idle floor over the elapsed time.
  double idle_floor = 0.0;
  for (cluster::MachineId id = 0; id < run.cluster().size(); ++id) {
    idle_floor += run.cluster().machine(id).type().idle_power;
  }
  EXPECT_GE(m.total_energy, idle_floor * m.makespan * 0.99);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, SchedulerInvariants,
    ::testing::Combine(::testing::Values(SchedulerKind::kFifo,
                                         SchedulerKind::kFair,
                                         SchedulerKind::kTarazu,
                                         SchedulerKind::kLate,
                                         SchedulerKind::kEAnt),
                       ::testing::Values(1, 2),
                       ::testing::Bool()),
    [](const auto& info) {
      std::string name = exp::scheduler_kind_name(std::get<0>(info.param));
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name + "_seed" + std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "_noisy" : "_clean");
    });

// --- E-Ant pheromone properties --------------------------------------------------

class PheromonePositivity : public ::testing::TestWithParam<int> {};

TEST_P(PheromonePositivity, RowSumsStayPositiveUnderNegativeFeedback) {
  const int seed = GetParam();
  RunConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(seed);
  cfg.noise = mr::NoiseConfig::typical();
  cfg.eant.control_interval = 60.0;
  exp::Run run(exp::paper_fleet(), SchedulerKind::kEAnt, cfg);

  // Competing same-class and cross-class jobs maximise negative feedback.
  std::vector<workload::JobSpec> jobs;
  for (int i = 0; i < 6; ++i) {
    auto j = exp::single_job(
        i % 2 == 0 ? workload::AppKind::kWordcount : workload::AppKind::kGrep,
        64.0 * 20, 2);
    j.submit_time = 10.0 * i;
    jobs.push_back(j);
  }
  run.submit(jobs);

  auto* eant = run.eant();
  auto& sim = run.simulator();
  auto& jt = run.job_tracker();
  while (!jt.all_done()) {
    ASSERT_TRUE(sim.step());
    // Sample the invariant as the run progresses.
    for (mr::JobId id : jt.active_jobs()) {
      if (!eant->pheromone().has_job(id)) continue;
      for (mr::TaskKind kind : {mr::TaskKind::kMap, mr::TaskKind::kReduce}) {
        const auto trail = eant->pheromone().trail(id, kind);
        for (double tau : trail) {
          ASSERT_GE(tau, eant->pheromone().tau_min());
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PheromonePositivity,
                         ::testing::Values(11, 22, 33));

// --- fault-injection determinism --------------------------------------------------

// A faulted run is a pure function of its seed: same seed, same FaultPlan —
// byte-identical metrics and fault log; a different seed moves the
// stochastic crash times.
class FaultedRunDeterminism
    : public ::testing::TestWithParam<SchedulerKind> {};

namespace {

struct FaultedOutcome {
  exp::RunMetrics metrics;
  std::vector<sim::FaultInjector::Transition> log;
};

FaultedOutcome faulted_run(SchedulerKind kind, std::uint64_t seed) {
  RunConfig cfg;
  cfg.seed = seed;
  cfg.noise = mr::NoiseConfig::typical();
  cfg.job_tracker.tracker_expiry_window = 30.0;
  cfg.faults.crash_for(2, 80.0, 300.0);
  cfg.faults.mtbf = 4000.0;
  cfg.faults.mttr = 60.0;
  cfg.faults.task_failure_prob = 0.02;
  exp::Run run(exp::paper_fleet(), kind, cfg);
  run.submit(exp::job_batch(workload::AppKind::kWordcount, 64.0 * 16, 2, 3));
  run.execute();
  return {run.metrics(), run.fault_injector()->log()};
}

}  // namespace

TEST_P(FaultedRunDeterminism, SameSeedIsByteIdentical) {
  const auto a = faulted_run(GetParam(), 7);
  const auto b = faulted_run(GetParam(), 7);

  EXPECT_EQ(a.metrics.makespan, b.metrics.makespan);
  EXPECT_EQ(a.metrics.total_energy, b.metrics.total_energy);
  EXPECT_EQ(a.metrics.wasted_energy, b.metrics.wasted_energy);
  EXPECT_EQ(a.metrics.killed_attempts, b.metrics.killed_attempts);
  EXPECT_EQ(a.metrics.failed_attempts, b.metrics.failed_attempts);
  EXPECT_EQ(a.metrics.lost_map_outputs, b.metrics.lost_map_outputs);
  ASSERT_EQ(a.metrics.recovery_times.size(), b.metrics.recovery_times.size());
  for (std::size_t i = 0; i < a.metrics.recovery_times.size(); ++i) {
    EXPECT_EQ(a.metrics.recovery_times[i], b.metrics.recovery_times[i]);
  }
  ASSERT_EQ(a.log.size(), b.log.size());
  for (std::size_t i = 0; i < a.log.size(); ++i) {
    EXPECT_EQ(a.log[i].time, b.log[i].time);
    EXPECT_EQ(a.log[i].machine, b.log[i].machine);
    EXPECT_EQ(a.log[i].up, b.log[i].up);
  }
}

TEST_P(FaultedRunDeterminism, DifferentSeedMovesStochasticCrashes) {
  const auto a = faulted_run(GetParam(), 7);
  const auto c = faulted_run(GetParam(), 8);

  // The scripted crash at t=80 is seed-independent; the stochastic tail is
  // not.  Compare the first transition that differs between the two logs —
  // there must be one once the scripted prefix is consumed.
  bool diverged = a.log.size() != c.log.size();
  for (std::size_t i = 0; !diverged && i < a.log.size(); ++i) {
    diverged = a.log[i].time != c.log[i].time ||
               a.log[i].machine != c.log[i].machine;
  }
  EXPECT_TRUE(diverged)
      << "stochastic fault schedule did not depend on the seed";
}

INSTANTIATE_TEST_SUITE_P(Schedulers, FaultedRunDeterminism,
                         ::testing::Values(SchedulerKind::kFifo,
                                           SchedulerKind::kEAnt),
                         [](const auto& info) {
                           std::string n =
                               exp::scheduler_kind_name(info.param);
                           n.erase(std::remove(n.begin(), n.end(), '-'),
                                   n.end());
                           return n;
                         });

// --- workload generator properties -----------------------------------------------

class MsdProperties : public ::testing::TestWithParam<int> {};

TEST_P(MsdProperties, GeneratedJobsAreAlwaysValid) {
  workload::MsdConfig cfg;
  cfg.num_jobs = 200;
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const auto jobs = workload::MsdGenerator(cfg).generate(rng);
  Seconds prev = -1.0;
  for (const auto& j : jobs) {
    EXPECT_GE(j.input_mb, kHdfsBlockMb);
    EXPECT_GE(j.num_reduces, 1);
    EXPECT_GE(j.submit_time, prev);
    prev = j.submit_time;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MsdProperties,
                         ::testing::Values(1, 7, 13, 99));

// --- power-model properties -------------------------------------------------------

class PowerModelMonotonicity
    : public ::testing::TestWithParam<const char*> {};

TEST_P(PowerModelMonotonicity, PowerIncreasesWithUtilisation) {
  cluster::MachineType t;
  const std::string name = GetParam();
  if (name == "Desktop") t = cluster::catalog::desktop();
  if (name == "T110") t = cluster::catalog::t110();
  if (name == "T420") t = cluster::catalog::t420();
  if (name == "T320") t = cluster::catalog::t320();
  if (name == "T620") t = cluster::catalog::t620();
  if (name == "Atom") t = cluster::catalog::atom();
  ASSERT_EQ(t.name, name);
  double prev = -1.0;
  for (int i = 0; i <= 10; ++i) {
    const double p = t.power_at(i / 10.0);
    EXPECT_GT(p, prev);
    prev = p;
  }
  EXPECT_DOUBLE_EQ(t.power_at(0.0), t.idle_power);
  EXPECT_DOUBLE_EQ(t.power_at(1.0), t.idle_power + t.alpha);
}

INSTANTIATE_TEST_SUITE_P(Fleet, PowerModelMonotonicity,
                         ::testing::Values("Desktop", "T110", "T420", "T320",
                                           "T620", "Atom"));

}  // namespace
}  // namespace eant
