// End-to-end integration tests: a scaled-down MSD workload through every
// scheduler, cross-scheduler invariants, and the paper's headline ordering
// (E-Ant <= Tarazu <= Fair on energy for a sustained heterogeneous load).

#include <gtest/gtest.h>

#include "cluster/catalog.h"
#include "common/rng.h"
#include "exp/builders.h"
#include "exp/runner.h"
#include "workload/msd.h"

namespace eant {
namespace {


using exp::RunConfig;
using exp::SchedulerKind;

std::vector<workload::JobSpec> small_msd(std::uint64_t seed, int jobs = 15) {
  workload::MsdConfig cfg;
  cfg.num_jobs = jobs;
  cfg.input_scale = 1.0 / 400.0;  // keep integration tests fast
  cfg.mean_interarrival = 40.0;
  Rng rng(seed);
  return workload::MsdGenerator(cfg).generate(rng);
}

exp::RunMetrics run_msd(SchedulerKind kind, std::uint64_t seed,
                        mr::NoiseConfig noise = mr::NoiseConfig::typical()) {
  RunConfig cfg;
  cfg.seed = seed;
  cfg.noise = noise;
  cfg.eant.control_interval = 120.0;
  cfg.eant.negative_feedback = false;  // headline config, see DESIGN.md
  exp::Run run(exp::paper_fleet(), kind, cfg);
  run.submit(small_msd(seed));
  run.execute();
  return run.metrics();
}

TEST(Integration, AllSchedulersCompleteMsdWorkload) {
  for (SchedulerKind kind :
       {SchedulerKind::kFifo, SchedulerKind::kFair, SchedulerKind::kTarazu,
        SchedulerKind::kLate, SchedulerKind::kEAnt}) {
    const auto m = run_msd(kind, 100);
    EXPECT_EQ(m.jobs.size(), 15u) << m.scheduler_name;
    EXPECT_GT(m.total_energy, 0.0);
    EXPECT_GT(m.total_tasks, 0u);
  }
}

TEST(Integration, TaskConservationAcrossSchedulers) {
  // Every scheduler must run exactly the same number of tasks (maps are
  // determined by input blocks, reduces by the specs).
  const auto fair = run_msd(SchedulerKind::kFair, 101);
  const auto eant = run_msd(SchedulerKind::kEAnt, 101);
  EXPECT_EQ(fair.total_maps, eant.total_maps);
  EXPECT_EQ(fair.total_tasks, eant.total_tasks);
}

TEST(Integration, HeadlineEnergyOrdering) {
  // Fig. 8(a): E-Ant < Tarazu < Fair on total energy for the MSD mix, in
  // exactly the configuration the fig8_comparison bench runs (87 jobs at
  // scale 1/200, moderate utilisation, headline E-Ant config).
  RunConfig cfg;
  cfg.seed = 42;
  cfg.noise = mr::NoiseConfig::typical();
  cfg.eant.control_interval = 120.0;
  cfg.eant.negative_feedback = false;  // headline config, see DESIGN.md

  workload::MsdConfig wl;
  wl.num_jobs = 87;
  wl.input_scale = 1.0 / 200.0;
  wl.mean_interarrival = 60.0;
  Rng wrng(42);
  const auto jobs = workload::MsdGenerator(wl).generate(wrng);
  double energy[3] = {0, 0, 0};
  const SchedulerKind kinds[3] = {SchedulerKind::kFair,
                                  SchedulerKind::kTarazu,
                                  SchedulerKind::kEAnt};
  for (int i = 0; i < 3; ++i) {
    exp::Run run(exp::paper_fleet(), kinds[i], cfg);
    run.submit(jobs);
    run.execute();
    energy[i] = run.metrics().total_energy;
  }
  EXPECT_LT(energy[2], energy[0]);  // E-Ant beats Fair
  EXPECT_LT(energy[2], energy[1]);  // E-Ant beats Tarazu
}

TEST(Integration, EAntDoesNotWreckJobPerformance) {
  // Fig. 8(c): E-Ant's completion times stay comparable to Fair's (the
  // paper reports improvements; we allow a modest envelope).
  const auto fair = run_msd(SchedulerKind::kFair, 103);
  const auto eant = run_msd(SchedulerKind::kEAnt, 103);
  EXPECT_LT(eant.mean_completion(), fair.mean_completion() * 1.3);
}

TEST(Integration, UtilisationShiftsToServers) {
  // Fig. 8(b): E-Ant raises Xeon-class (server) utilisation relative to
  // desktop utilisation compared with Fair.  Our calibration makes the
  // T110 the most attractive Eq. 2 host for CPU work, so the shift is
  // measured against the aggregate server tier (every non-desktop type).
  auto server_vs_desktop = [](const exp::RunMetrics& m) {
    double server_util = 0.0;
    std::size_t server_machines = 0;
    for (const auto& t : m.by_type) {
      if (t.type_name == "Desktop") continue;
      server_util += t.avg_utilization * static_cast<double>(t.machine_count);
      server_machines += t.machine_count;
    }
    server_util /= static_cast<double>(server_machines);
    return server_util / std::max(1e-9, m.type("Desktop").avg_utilization);
  };
  // A single 15-job run leaves the ratio within noise of Fair's, so average
  // the shift over a few seeds rather than pinning one marginal draw.
  double fair_ratio = 0.0;
  double eant_ratio = 0.0;
  for (std::uint64_t seed : {104u, 114u, 124u}) {
    fair_ratio += server_vs_desktop(run_msd(SchedulerKind::kFair, seed));
    eant_ratio += server_vs_desktop(run_msd(SchedulerKind::kEAnt, seed));
  }
  EXPECT_GT(eant_ratio, fair_ratio);
}

TEST(Integration, LocalityIsSubstantialUnderFairAndEAnt) {
  const auto fair = run_msd(SchedulerKind::kFair, 105);
  EXPECT_GT(fair.locality_fraction(), 0.2);
  const auto eant = run_msd(SchedulerKind::kEAnt, 105);
  EXPECT_GT(eant.locality_fraction(), 0.2);
}

TEST(Integration, NoiselessRunsAreFullyDeterministic) {
  const auto a = run_msd(SchedulerKind::kFair, 106, mr::NoiseConfig::none());
  const auto b = run_msd(SchedulerKind::kFair, 106, mr::NoiseConfig::none());
  EXPECT_DOUBLE_EQ(a.total_energy, b.total_energy);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].completion_time, b.jobs[i].completion_time);
  }
}

TEST(Integration, MakespanCoversAllSubmissions) {
  const auto m = run_msd(SchedulerKind::kFifo, 107);
  for (const auto& j : m.jobs) {
    EXPECT_GT(j.completion_time, 0.0);
    EXPECT_LE(j.submit_time + j.completion_time, m.makespan + 1e-6);
  }
}

}  // namespace
}  // namespace eant
