// Network fabric tests: topology paths, analytic max-min (water-filling)
// fixtures, event-driven rate recomputation, determinism, the flat-topology
// parity guarantee against the legacy scalar model, the Fig. 1(d) ordering
// under oversubscription, and flow recovery when a serving machine crashes.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "cluster/catalog.h"
#include "exp/builders.h"
#include "exp/runner.h"
#include "net/fabric.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace eant {
namespace {

constexpr double kTol = 1e-6;

// --- topology ---------------------------------------------------------------

TEST(Topology, FlatSpecIsOneRackWithUnlimitedLinks) {
  const net::Topology topo(net::TopologySpec::flat(), 8);
  EXPECT_EQ(topo.num_racks(), 1u);
  for (net::NodeId n = 0; n < 8; ++n) {
    EXPECT_EQ(topo.rack_of(n), 0u);
    EXPECT_FALSE(topo.is_finite(topo.node_tx(n)));
    EXPECT_FALSE(topo.is_finite(topo.node_rx(n)));
  }
  EXPECT_FALSE(topo.is_finite(topo.rack_up(0)));
}

TEST(Topology, RoundRobinRacksAndThreeLevelLocality) {
  const net::Topology topo(net::TopologySpec::oversubscribed(4), 16);
  EXPECT_EQ(topo.num_racks(), 4u);
  for (net::NodeId n = 0; n < 16; ++n) EXPECT_EQ(topo.rack_of(n), n % 4);
  EXPECT_EQ(topo.locality(3, 3), Locality::kNodeLocal);
  EXPECT_EQ(topo.locality(3, 7), Locality::kRackLocal);   // both rack 3
  EXPECT_EQ(topo.locality(3, 4), Locality::kOffRack);
  const auto racks = topo.rack_assignment();
  ASSERT_EQ(racks.size(), 16u);
  EXPECT_EQ(racks[5], 1u);
}

TEST(Topology, PathCrossesAccessLinksAndUplinksAsNeeded) {
  const net::Topology topo(net::TopologySpec::oversubscribed(2, 100.0, 150.0),
                           4);
  std::vector<net::LinkId> path;
  topo.append_path(0, 0, path);  // loopback: free
  EXPECT_TRUE(path.empty());

  topo.append_path(0, 2, path);  // same rack (0 and 2 are both rack 0)
  EXPECT_EQ(path, (std::vector<net::LinkId>{topo.node_tx(0), topo.node_rx(2)}));

  path.clear();
  topo.append_path(0, 1, path);  // cross-rack
  EXPECT_EQ(path,
            (std::vector<net::LinkId>{topo.node_tx(0), topo.rack_up(0),
                                      topo.rack_down(1), topo.node_rx(1)}));
  EXPECT_DOUBLE_EQ(topo.capacity_mbps(topo.rack_up(0)), 150.0);
  EXPECT_DOUBLE_EQ(topo.capacity_mbps(topo.node_tx(0)), 100.0);
}

// --- analytic max-min fixtures ----------------------------------------------

net::TopologySpec one_rack(double node_mbps) {
  net::TopologySpec spec;
  spec.racks = 1;
  spec.node_mbps = node_mbps;
  return spec;
}

TEST(Fabric, EqualFlowsSplitTheBottleneckEvenly) {
  sim::Simulator sim;
  net::Fabric fabric(sim, net::Topology(one_rack(100.0), 8));
  std::map<net::FlowId, Seconds> done;
  std::vector<net::FlowId> ids;
  // Four 100 MB flows from distinct sources into node 7: its 100 MB/s rx
  // access link is the only shared bottleneck, so max-min gives each 25.
  for (net::NodeId src = 0; src < 4; ++src) {
    ids.push_back(fabric.start_flow(
        src, 7, 100.0, 1000.0, net::TransferClass::kShuffle,
        [&](net::FlowId id) { done[id] = sim.now(); }));
  }
  for (net::FlowId id : ids) {
    EXPECT_NEAR(fabric.flow_rate_mbps(id), 25.0, kTol);
  }
  sim.run();
  ASSERT_EQ(done.size(), 4u);
  for (net::FlowId id : ids) EXPECT_NEAR(done[id], 4.0, kTol);
  EXPECT_EQ(fabric.metrics().flows_completed, 4u);
  EXPECT_NEAR(fabric.metrics().shuffle_mb, 400.0, kTol);
}

TEST(Fabric, PerFlowCapsFreezeAndResidualGoesToTheUncapped) {
  sim::Simulator sim;
  net::Fabric fabric(sim, net::Topology(one_rack(100.0), 8));
  // Caps 10 and 20 freeze below the fair share; the third flow soaks up the
  // rest of the 100 MB/s rx link: water-filling gives {10, 20, 70}.
  const auto a = fabric.start_flow(0, 7, 100.0, 10.0,
                                   net::TransferClass::kRemoteRead, nullptr);
  const auto b = fabric.start_flow(1, 7, 100.0, 20.0,
                                   net::TransferClass::kRemoteRead, nullptr);
  const auto c = fabric.start_flow(2, 7, 100.0, 1000.0,
                                   net::TransferClass::kShuffle, nullptr);
  EXPECT_NEAR(fabric.flow_rate_mbps(a), 10.0, kTol);
  EXPECT_NEAR(fabric.flow_rate_mbps(b), 20.0, kTol);
  EXPECT_NEAR(fabric.flow_rate_mbps(c), 70.0, kTol);
}

TEST(Fabric, BottleneckShareMigratesWhenAFlowFinishes) {
  sim::Simulator sim;
  net::Fabric fabric(sim, net::Topology(one_rack(100.0), 4));
  std::map<net::FlowId, Seconds> done;
  const auto record = [&](net::FlowId id) { done[id] = sim.now(); };
  const auto a =
      fabric.start_flow(0, 3, 50.0, 1000.0, net::TransferClass::kShuffle,
                        record);
  const auto b =
      fabric.start_flow(1, 3, 100.0, 1000.0, net::TransferClass::kShuffle,
                        record);
  // Both get 50 MB/s; A drains its 50 MB at t=1, then B runs at the full
  // 100 MB/s and finishes its remaining 50 MB at t=1.5.
  EXPECT_NEAR(fabric.flow_rate_mbps(a), 50.0, kTol);
  EXPECT_NEAR(fabric.flow_rate_mbps(b), 50.0, kTol);
  sim.run();
  EXPECT_NEAR(done[a], 1.0, kTol);
  EXPECT_NEAR(done[b], 1.5, kTol);
}

TEST(Fabric, OversubscribedUplinkSharedAcrossRackPairs) {
  sim::Simulator sim;
  net::Fabric fabric(
      sim, net::Topology(net::TopologySpec::oversubscribed(2, 100.0, 150.0),
                         4));
  // Nodes 0,2 are rack 0; 1,3 are rack 1.  Two cross-rack flows share rack
  // 0's 150 MB/s uplink: 75 MB/s each (under their 100 MB/s access links).
  const auto a = fabric.start_flow(0, 1, 100.0, 1000.0,
                                   net::TransferClass::kShuffle, nullptr);
  const auto b = fabric.start_flow(2, 3, 100.0, 1000.0,
                                   net::TransferClass::kShuffle, nullptr);
  EXPECT_NEAR(fabric.flow_rate_mbps(a), 75.0, kTol);
  EXPECT_NEAR(fabric.flow_rate_mbps(b), 75.0, kTol);
  sim.run();
  const auto m = fabric.metrics();
  EXPECT_NEAR(m.peak_link_utilization, 1.0, kTol);  // the uplink saturated
  // Solo each flow would run at 100 MB/s (access-link bound): slowdown 4/3.
  EXPECT_NEAR(m.mean_flow_slowdown, 4.0 / 3.0, kTol);
}

TEST(Fabric, RateRecomputationIsEventDrivenNotPolled) {
  sim::Simulator sim;
  net::Fabric fabric(sim, net::Topology(one_rack(100.0), 4));
  fabric.start_flow(0, 3, 50.0, 1000.0, net::TransferClass::kShuffle, nullptr);
  fabric.start_flow(1, 3, 100.0, 1000.0, net::TransferClass::kShuffle,
                    nullptr);
  sim.run();
  // Two completions are the only executed events — rates changed exactly at
  // flow start/finish instants, with no periodic recomputation ticks.
  EXPECT_EQ(sim.executed(), 2u);
  EXPECT_NEAR(sim.now(), 1.5, kTol);
}

TEST(Fabric, AbortKeepsPartialBytesAndFreesCapacity) {
  sim::Simulator sim;
  net::Fabric fabric(sim, net::Topology(one_rack(100.0), 4));
  const auto a = fabric.start_flow(0, 3, 100.0, 1000.0,
                                   net::TransferClass::kShuffle, nullptr);
  fabric.start_flow(1, 3, 100.0, 1000.0, net::TransferClass::kRemoteRead,
                    nullptr);
  sim.schedule_after(1.0, [&] { fabric.abort_flow(a); });
  sim.run();
  const auto m = fabric.metrics();
  EXPECT_EQ(m.flows_aborted, 1u);
  EXPECT_EQ(m.flows_completed, 1u);
  EXPECT_NEAR(m.shuffle_mb, 50.0, kTol);  // 1 s at the 50 MB/s fair share
  // B: 50 MB in the first second, the remaining 50 MB at 100 MB/s.
  EXPECT_NEAR(m.remote_read_mb, 100.0, kTol);
  EXPECT_NEAR(sim.now(), 1.5, kTol);
  EXPECT_EQ(fabric.active_flows(), 0u);
}

TEST(Fabric, DeterministicUnderIdenticalCallSequences) {
  const auto run_once = [] {
    sim::Simulator sim;
    net::Fabric fabric(
        sim, net::Topology(net::TopologySpec::oversubscribed(4), 16));
    std::vector<Seconds> completions;
    for (std::size_t i = 0; i < 12; ++i) {
      fabric.start_flow(i, (i + 5) % 16, 10.0 + i, 40.0,
                        net::TransferClass::kShuffle,
                        [&](net::FlowId) { completions.push_back(sim.now()); });
    }
    sim.run();
    return completions;
  };
  EXPECT_EQ(run_once(), run_once());
}

// --- end-to-end: parity, ordering, recovery ---------------------------------

exp::RunConfig net_config(std::uint64_t seed = 7) {
  exp::RunConfig cfg;
  cfg.seed = seed;
  cfg.noise = mr::NoiseConfig::typical();
  return cfg;
}

exp::RunMetrics run_small(exp::SchedulerKind kind, exp::RunConfig cfg,
                          workload::AppKind app = workload::AppKind::kTerasort) {
  exp::Run run(exp::paper_fleet(), kind, cfg);
  run.submit(exp::job_batch(app, 3000.0, 8, 3));
  run.execute();
  return run.metrics();
}

TEST(FabricIntegration, FlatTopologyReproducesLegacyScalarTiming) {
  const auto legacy = run_small(exp::SchedulerKind::kFair, net_config());
  auto cfg = net_config();
  cfg.topology = net::TopologySpec::flat();
  const auto flat = run_small(exp::SchedulerKind::kFair, cfg);

  // On one flat rack with unlimited links the per-flow caps reproduce the
  // scalar transfer times exactly; tiny deviations can only come from
  // event-ordering ties, so makespan and energy agree within 1%.
  EXPECT_FALSE(legacy.fabric_active);
  EXPECT_TRUE(flat.fabric_active);
  EXPECT_NEAR(flat.makespan / legacy.makespan, 1.0, 0.01);
  EXPECT_NEAR(flat.total_energy / legacy.total_energy, 1.0, 0.01);
  EXPECT_GT(flat.network.shuffle_mb, 0.0);
  EXPECT_GE(flat.network.mean_flow_slowdown, 1.0 - kTol);
  EXPECT_NEAR(flat.network.mean_flow_slowdown, 1.0, 1e-3);  // nothing binds
}

TEST(FabricIntegration, OversubscriptionHurtsShuffleHeavyAppsMost) {
  // Fig. 1(d): Wordcount is map-heavy while Grep and Terasort move most of
  // their bytes in the shuffle, so a contended fabric must stretch the
  // latter two more.  Completion ratio = oversubscribed / flat, per app.
  std::map<workload::AppKind, double> ratio;
  for (workload::AppKind app :
       {workload::AppKind::kWordcount, workload::AppKind::kGrep,
        workload::AppKind::kTerasort}) {
    auto flat_cfg = net_config();
    flat_cfg.topology = net::TopologySpec::flat();
    const auto flat = run_small(exp::SchedulerKind::kFair, flat_cfg, app);
    auto over_cfg = net_config();
    over_cfg.topology = net::TopologySpec::oversubscribed();
    const auto over = run_small(exp::SchedulerKind::kFair, over_cfg, app);
    ratio[app] = over.mean_completion() / flat.mean_completion();
  }
  EXPECT_GT(ratio[workload::AppKind::kGrep],
            ratio[workload::AppKind::kWordcount]);
  EXPECT_GT(ratio[workload::AppKind::kTerasort],
            ratio[workload::AppKind::kWordcount]);
}

TEST(FabricIntegration, CrashedServerFlowsAbortAndWorkRetransfers) {
  auto cfg = net_config(11);
  cfg.topology = net::TopologySpec::oversubscribed();
  // Take down two machines mid-run (with transfers in flight) and bring
  // them back: their in-flight transfers must abort, re-queued work
  // re-transfers from surviving sources, and every job still completes.
  cfg.faults.crash_for(2, 60.0, 400.0);
  cfg.faults.crash_for(9, 120.0, 400.0);
  cfg.job_tracker.tracker_expiry_window = 30.0;

  exp::Run run(exp::paper_fleet(), exp::SchedulerKind::kFair, cfg);
  run.submit(exp::job_batch(workload::AppKind::kTerasort, 3000.0, 8, 4));
  run.execute();
  const auto m = run.metrics();

  EXPECT_EQ(m.jobs_failed, 0u);
  EXPECT_EQ(m.jobs.size(), 4u);
  EXPECT_GT(m.killed_attempts, 0u);
  EXPECT_GT(m.network.flows_aborted, 0u);
  EXPECT_GT(run.job_tracker().retransferred_flows() + m.lost_map_outputs, 0u);
}

}  // namespace
}  // namespace eant
