// Unit tests for the discrete-event simulation engine: ordering, ties,
// cancellation, periodic events, run_until semantics.

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "sim/simulator.h"

namespace eant::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, EqualTimesRunInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(10.0, [&] {
    sim.schedule_after(5.0, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 15.0);
}

TEST(Simulator, RejectsPastScheduling) {
  Simulator sim;
  sim.schedule_at(10.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5.0, [] {}), PreconditionError);
  EXPECT_THROW(sim.schedule_after(-1.0, [] {}), PreconditionError);
}

TEST(Simulator, RejectsEmptyCallback) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_at(1.0, std::function<void()>{}),
               PreconditionError);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(1.0, [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelIsIdempotentAndSafeAfterFire) {
  Simulator sim;
  int fires = 0;
  const EventId id = sim.schedule_at(1.0, [&] { ++fires; });
  sim.run();
  sim.cancel(id);  // no-op
  sim.cancel(id);
  sim.schedule_at(2.0, [&] { ++fires; });
  sim.run();
  EXPECT_EQ(fires, 2);
}

TEST(Simulator, CancelAfterFireDoesNotLeakPendingCount) {
  // Regression: cancelling an already-fired one-shot used to insert a stale
  // id into the tombstone set forever, skewing (and eventually underflowing)
  // pending().
  Simulator sim;
  const EventId id = sim.schedule_at(1.0, [] {});
  sim.run();
  EXPECT_EQ(sim.pending(), 0u);
  sim.cancel(id);  // stale: must be a true no-op
  sim.cancel(id);
  EXPECT_EQ(sim.pending(), 0u);
  sim.schedule_at(2.0, [] {});
  EXPECT_EQ(sim.pending(), 1u);  // would have been 0 (or huge) with the leak
  sim.run();
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, CancelOfUnknownIdIsIgnored) {
  Simulator sim;
  sim.cancel(12345);
  EXPECT_EQ(sim.pending(), 0u);
  sim.schedule_at(1.0, [] {});
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, OneShotSelfCancelDuringCallbackDoesNotLeak) {
  Simulator sim;
  EventId id = 0;
  id = sim.schedule_at(1.0, [&] { sim.cancel(id); });  // cancel self, mid-fire
  sim.run();
  EXPECT_EQ(sim.pending(), 0u);
  sim.schedule_at(2.0, [] {});
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, CancelledThenFiredSlotKeepsPendingConsistent) {
  Simulator sim;
  // Cancel a pending event, let its tombstone be consumed, then make sure
  // later ids are unaffected.
  const EventId a = sim.schedule_at(1.0, [] {});
  const EventId b = sim.schedule_at(2.0, [] {});
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  sim.cancel(a);  // long gone
  sim.cancel(b);  // fired
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, StepExecutesExactlyOneEvent) {
  Simulator sim;
  int fires = 0;
  sim.schedule_at(1.0, [&] { ++fires; });
  sim.schedule_at(2.0, [&] { ++fires; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fires, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fires, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, RunUntilAdvancesClockPastLastEvent) {
  Simulator sim;
  int fires = 0;
  sim.schedule_at(1.0, [&] { ++fires; });
  sim.schedule_at(7.0, [&] { ++fires; });
  sim.run_until(5.0);
  EXPECT_EQ(fires, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  sim.run_until(10.0);
  EXPECT_EQ(fires, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
  EXPECT_THROW(sim.run_until(9.0), PreconditionError);
}

TEST(Simulator, RunUntilIncludesBoundaryEvents) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(5.0, [&] { fired = true; });
  sim.run_until(5.0);
  EXPECT_TRUE(fired);
}

TEST(Simulator, PeriodicFiresRepeatedly) {
  Simulator sim;
  int fires = 0;
  sim.schedule_periodic(2.0, [&] {
    ++fires;
    return true;
  });
  sim.run_until(9.0);
  EXPECT_EQ(fires, 4);  // t = 2, 4, 6, 8
}

TEST(Simulator, PeriodicStopsWhenCallbackReturnsFalse) {
  Simulator sim;
  int fires = 0;
  sim.schedule_periodic(1.0, [&] {
    ++fires;
    return fires < 3;
  });
  sim.run_until(100.0);
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, PeriodicCanBeCancelled) {
  Simulator sim;
  int fires = 0;
  const EventId id = sim.schedule_periodic(1.0, [&] {
    ++fires;
    return true;
  });
  sim.run_until(3.5);
  sim.cancel(id);
  sim.run_until(10.0);
  EXPECT_EQ(fires, 3);
}

TEST(Simulator, PeriodicCancelledFromInsideOwnCallback) {
  Simulator sim;
  int fires = 0;
  EventId id = 0;
  id = sim.schedule_periodic(1.0, [&] {
    ++fires;
    if (fires == 2) sim.cancel(id);
    return true;
  });
  sim.run_until(10.0);
  EXPECT_EQ(fires, 2);
}

TEST(Simulator, PeriodicRejectsNonPositiveInterval) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_periodic(0.0, [] { return true; }),
               PreconditionError);
}

TEST(Simulator, ExecutedCounterCountsFiredEvents) {
  Simulator sim;
  sim.schedule_at(1.0, [] {});
  const EventId id = sim.schedule_at(2.0, [] {});
  sim.cancel(id);
  sim.run();
  EXPECT_EQ(sim.executed(), 1u);
}

TEST(Simulator, EventsScheduledDuringRunAreExecuted) {
  Simulator sim;
  std::vector<double> times;
  std::function<void()> chain = [&] {
    times.push_back(sim.now());
    if (times.size() < 5) sim.schedule_after(1.0, chain);
  };
  sim.schedule_at(0.0, chain);
  sim.run();
  EXPECT_EQ(times.size(), 5u);
  EXPECT_DOUBLE_EQ(times.back(), 4.0);
}

TEST(Simulator, ManyEventsStressOrdering) {
  Simulator sim;
  double last = -1.0;
  bool monotone = true;
  for (int i = 0; i < 10000; ++i) {
    const double t = (i * 7919) % 104729 / 100.0;
    sim.schedule_at(t, [&, t] {
      if (t < last) monotone = false;
      last = t;
    });
  }
  sim.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(sim.executed(), 10000u);
}

}  // namespace
}  // namespace eant::sim
