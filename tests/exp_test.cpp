// Unit tests for the experiment harness: builders, Run lifecycle, metrics
// collection, standalone-runtime oracle, slowdown fairness, the open-loop
// motivation driver and the provisioning extension.

#include <gtest/gtest.h>

#include "cluster/catalog.h"
#include "common/error.h"
#include "exp/builders.h"
#include "exp/csv.h"
#include "exp/metrics.h"
#include "exp/motivation.h"
#include "exp/provisioning.h"
#include "exp/runner.h"

namespace eant::exp {
namespace {

TEST(Builders, SingleJobClassification) {
  const auto s = single_job(workload::AppKind::kGrep, 512.0, 2);
  EXPECT_EQ(s.size_class, workload::SizeClass::kSmall);
  EXPECT_EQ(single_job(workload::AppKind::kGrep, 4096.0, 2).size_class,
            workload::SizeClass::kMedium);
  EXPECT_EQ(single_job(workload::AppKind::kGrep, 40960.0, 2).size_class,
            workload::SizeClass::kLarge);
}

TEST(Builders, JobBatchProducesIdenticalSpecs) {
  const auto jobs = job_batch(workload::AppKind::kTerasort, 640.0, 3, 4);
  EXPECT_EQ(jobs.size(), 4u);
  for (const auto& j : jobs) {
    EXPECT_EQ(j.app, workload::AppKind::kTerasort);
    EXPECT_DOUBLE_EQ(j.input_mb, 640.0);
    EXPECT_EQ(j.num_reduces, 3);
  }
}

TEST(Runner, SchedulerKindNames) {
  EXPECT_EQ(scheduler_kind_name(SchedulerKind::kFifo), "FIFO");
  EXPECT_EQ(scheduler_kind_name(SchedulerKind::kFair), "Fair");
  EXPECT_EQ(scheduler_kind_name(SchedulerKind::kTarazu), "Tarazu");
  EXPECT_EQ(scheduler_kind_name(SchedulerKind::kLate), "LATE");
  EXPECT_EQ(scheduler_kind_name(SchedulerKind::kEAnt), "E-Ant");
}

TEST(Runner, RunsEverySchedulerKind) {
  for (SchedulerKind kind :
       {SchedulerKind::kFifo, SchedulerKind::kFair, SchedulerKind::kTarazu,
        SchedulerKind::kLate, SchedulerKind::kEAnt}) {
    RunConfig cfg;
    cfg.seed = 5;
    cfg.eant.control_interval = 60.0;
    exp::Run run(paper_fleet(), kind, cfg);
    run.submit({single_job(workload::AppKind::kWordcount, 64.0 * 8, 2)});
    run.execute();
    const auto m = run.metrics();
    EXPECT_EQ(m.scheduler_name, scheduler_kind_name(kind));
    EXPECT_EQ(m.jobs.size(), 1u);
    EXPECT_GT(m.makespan, 0.0);
  }
}

TEST(Runner, EAntAccessorOnlyForEAnt) {
  exp::Run fair(paper_fleet(), SchedulerKind::kFair);
  EXPECT_EQ(fair.eant(), nullptr);
  exp::Run eant(paper_fleet(), SchedulerKind::kEAnt);
  EXPECT_NE(eant.eant(), nullptr);
}

TEST(Runner, TimeLimitGuard) {
  RunConfig cfg;
  cfg.time_limit = 10.0;  // impossible deadline
  exp::Run run(homogeneous(cluster::catalog::atom(), 1), SchedulerKind::kFifo,
          cfg);
  run.submit({single_job(workload::AppKind::kTerasort, 64.0 * 40, 4)});
  EXPECT_THROW(run.execute(), PreconditionError);
}

TEST(Metrics, PerTypeAggregation) {
  RunConfig cfg;
  cfg.seed = 6;
  exp::Run run(paper_fleet(), SchedulerKind::kFair, cfg);
  run.submit(job_batch(workload::AppKind::kWordcount, 64.0 * 12, 2, 3));
  run.execute();
  const auto m = run.metrics();
  EXPECT_EQ(m.by_type.size(), 6u);  // six machine types in the fleet
  std::size_t maps = 0, reduces = 0;
  double energy = 0.0;
  for (const auto& t : m.by_type) {
    maps += t.completed_maps;
    reduces += t.completed_reduces;
    energy += t.energy;
    EXPECT_GE(t.avg_utilization, 0.0);
    EXPECT_LE(t.avg_utilization, 1.0);
  }
  EXPECT_EQ(maps, 3u * 12u);
  EXPECT_EQ(reduces, 3u * 2u);
  EXPECT_DOUBLE_EQ(energy, m.total_energy);
  EXPECT_EQ(m.total_maps, 36u);
  EXPECT_LE(m.local_maps, m.total_maps);
  EXPECT_EQ(m.type("Desktop").machine_count, 8u);
  EXPECT_THROW(m.type("NoSuch"), PreconditionError);
}

TEST(Metrics, TasksByAppHistogram) {
  RunConfig cfg;
  cfg.seed = 7;
  exp::Run run(paper_fleet(), SchedulerKind::kFair, cfg);
  run.submit({single_job(workload::AppKind::kGrep, 64.0 * 10, 2),
              single_job(workload::AppKind::kTerasort, 64.0 * 10, 2)});
  run.execute();
  const auto m = run.metrics();
  std::size_t grep_tasks = 0;
  for (const auto& t : m.by_type) {
    if (auto it = t.tasks_by_app.find("Grep"); it != t.tasks_by_app.end()) {
      grep_tasks += it->second;
    }
  }
  EXPECT_EQ(grep_tasks, 12u);  // 10 maps + 2 reduces
}

TEST(Metrics, MeanCompletionByClass) {
  RunConfig cfg;
  cfg.seed = 8;
  exp::Run run(paper_fleet(), SchedulerKind::kFair, cfg);
  run.submit({single_job(workload::AppKind::kGrep, 64.0 * 4, 1),
              single_job(workload::AppKind::kWordcount, 64.0 * 4, 1)});
  run.execute();
  const auto m = run.metrics();
  EXPECT_GT(m.mean_completion(), 0.0);
  EXPECT_GT(m.mean_completion("Grep-S"), 0.0);
  EXPECT_THROW(m.mean_completion("Grep-L"), PreconditionError);
}

TEST(Runner, StandaloneRuntimeIsPositiveAndStable) {
  const auto job = single_job(workload::AppKind::kWordcount, 64.0 * 8, 2);
  const Seconds t1 = standalone_runtime(paper_fleet(), job);
  const Seconds t2 = standalone_runtime(paper_fleet(), job);
  EXPECT_GT(t1, 0.0);
  EXPECT_DOUBLE_EQ(t1, t2);
}

TEST(Runner, SlowdownFairnessComputation) {
  RunMetrics m;
  JobMetrics a;
  a.class_name = "X";
  a.completion_time = 100.0;
  JobMetrics b = a;
  b.completion_time = 300.0;
  m.jobs = {a, b};
  const std::map<std::string, Seconds> standalone{{"X", 100.0}};
  // Slowdowns 1 and 3 -> variance 1 -> fairness 1.
  EXPECT_NEAR(slowdown_fairness(m, standalone), 1.0, 1e-9);
  // Equal slowdowns -> clamped large fairness.
  m.jobs = {a, a};
  EXPECT_NEAR(slowdown_fairness(m, standalone), 1e6, 1.0);
  EXPECT_THROW(slowdown_fairness(m, {}), PreconditionError);
}

// --- CSV / timeline export -------------------------------------------------------

TEST(Csv, ByTypeAndJobsExport) {
  RunConfig cfg;
  cfg.seed = 12;
  exp::Run run(paper_fleet(), SchedulerKind::kFair, cfg);
  run.submit({single_job(workload::AppKind::kGrep, 64.0 * 6, 2)});
  run.execute();
  const auto m = run.metrics();

  const std::string by_type = to_csv_by_type(m);
  EXPECT_NE(by_type.find("type,machines,energy_j"), std::string::npos);
  EXPECT_NE(by_type.find("Desktop,8,"), std::string::npos);
  EXPECT_NE(by_type.find("Atom,1,"), std::string::npos);
  // header + one row per type
  EXPECT_EQ(std::count(by_type.begin(), by_type.end(), '\n'),
            static_cast<long>(1 + m.by_type.size()));

  const std::string jobs = to_csv_jobs(m);
  EXPECT_NE(jobs.find("job,class,submit_s"), std::string::npos);
  EXPECT_NE(jobs.find("Grep-S"), std::string::npos);
  EXPECT_EQ(std::count(jobs.begin(), jobs.end(), '\n'), 2);
}

TEST(Csv, TimelineCollectorSamplesFleet) {
  RunConfig cfg;
  cfg.seed = 13;
  exp::Run run(paper_fleet(), SchedulerKind::kFair, cfg);
  TimelineCollector timeline(run.simulator(), run.cluster(), 10.0);
  run.submit({single_job(workload::AppKind::kWordcount, 64.0 * 12, 2)});
  run.execute();

  ASSERT_GT(timeline.samples().size(), 3u);
  // Fleet power is at least the idle floor and utilisation is a fraction.
  double idle_floor = 0.0;
  for (cluster::MachineId id = 0; id < run.cluster().size(); ++id) {
    idle_floor += run.cluster().machine(id).type().idle_power;
  }
  Seconds prev = -1.0;
  for (const auto& s : timeline.samples()) {
    EXPECT_GT(s.time, prev);
    prev = s.time;
    EXPECT_GE(s.fleet_power, idle_floor - 1e-9);
    EXPECT_GE(s.mean_utilization, 0.0);
    EXPECT_LE(s.mean_utilization, 1.0);
  }
  const std::string csv = timeline.to_csv();
  EXPECT_NE(csv.find("time_s,fleet_power_w"), std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'),
            static_cast<long>(1 + timeline.samples().size()));
}

TEST(Csv, TimelineRejectsBadPeriod) {
  RunConfig cfg;
  exp::Run run(paper_fleet(), SchedulerKind::kFair, cfg);
  EXPECT_THROW(TimelineCollector(run.simulator(), run.cluster(), 0.0),
               PreconditionError);
}

// --- motivation driver ----------------------------------------------------------

TEST(Motivation, StreamBasicAccounting) {
  const auto r = run_task_stream(cluster::catalog::desktop(),
                                 workload::AppKind::kWordcount, 10.0,
                                 3600.0, 4, 42);
  EXPECT_GT(r.arrivals, 500u);
  EXPECT_GT(r.completed, 0u);
  EXPECT_LE(r.completed, r.arrivals);
  EXPECT_GT(r.energy, r.idle_energy);  // did real work
  EXPECT_GT(r.mean_power, cluster::catalog::desktop().idle_power);
  EXPECT_GT(r.throughput_per_watt(), 0.0);
}

TEST(Motivation, DesktopWinsAtLowRateXeonAtHighRate) {
  // The Fig. 1(a) crossover (the motivation study streams 16 MB tasks;
  // concurrency is sized to the machine's cores).
  const auto d_low = run_task_stream(cluster::catalog::desktop(),
                                     workload::AppKind::kWordcount, 4.0,
                                     4 * 3600.0, 4, 1, 16.0);
  const auto x_low = run_task_stream(cluster::catalog::xeon_e5(),
                                     workload::AppKind::kWordcount, 4.0,
                                     4 * 3600.0, 24, 1, 16.0);
  EXPECT_GT(d_low.throughput_per_watt(), x_low.throughput_per_watt());

  const auto d_high = run_task_stream(cluster::catalog::desktop(),
                                      workload::AppKind::kWordcount, 20.0,
                                      4 * 3600.0, 4, 1, 16.0);
  const auto x_high = run_task_stream(cluster::catalog::xeon_e5(),
                                      workload::AppKind::kWordcount, 20.0,
                                      4 * 3600.0, 24, 1, 16.0);
  EXPECT_GT(x_high.throughput_per_watt(), d_high.throughput_per_watt());
}

TEST(Motivation, XeonIdleShareDominatesAtLightLoad) {
  // Fig. 1(b): at light load most Xeon power is idle-system power.
  const auto x = run_task_stream(cluster::catalog::xeon_e5(),
                                 workload::AppKind::kWordcount, 10.0,
                                 3600.0, 24, 2, 16.0);
  EXPECT_GT(x.idle_energy, 0.6 * x.energy);
  const auto d = run_task_stream(cluster::catalog::desktop(),
                                 workload::AppKind::kWordcount, 10.0,
                                 3600.0, 4, 2, 16.0);
  EXPECT_LT(d.idle_energy / d.energy, x.idle_energy / x.energy);
}

TEST(Motivation, PhaseBreakdownMatchesFigOneD) {
  const auto wc = phase_breakdown(workload::AppKind::kWordcount);
  const auto gr = phase_breakdown(workload::AppKind::kGrep);
  const auto ts = phase_breakdown(workload::AppKind::kTerasort);
  // Shares are normalised.
  EXPECT_NEAR(wc.map + wc.shuffle + wc.reduce, 1.0, 1e-9);
  // Wordcount is map-intensive; Grep/Terasort are shuffle/reduce-intensive.
  EXPECT_GT(wc.map, 0.6);
  EXPECT_GT(gr.shuffle + gr.reduce, 0.5);
  EXPECT_GT(ts.shuffle + ts.reduce, 0.5);
  EXPECT_GT(wc.map, gr.map);
  EXPECT_GT(wc.map, ts.map);
}

// --- provisioning extension ------------------------------------------------------

TEST(Provisioning, PaperFleetTypesLayout) {
  const auto fleet = paper_fleet_types();
  EXPECT_EQ(fleet.size(), 16u);
  EXPECT_EQ(fleet[0].name, "Desktop");
  EXPECT_EQ(fleet[15].name, "Atom");
}

TEST(Provisioning, CoveringSubsetRespectsConstraints) {
  const auto fleet = paper_fleet_types();
  const auto plan = covering_subset(fleet, 0.5, 3);
  EXPECT_GE(plan.active.size(), 3u);
  EXPECT_LE(plan.active.size(), fleet.size());
  double kept = 0.0, total = 0.0;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    total += fleet[i].cores * fleet[i].cpu_factor;
  }
  for (std::size_t i : plan.active) {
    kept += fleet[i].cores * fleet[i].cpu_factor;
  }
  EXPECT_GE(kept, 0.5 * total);
  EXPECT_THROW(covering_subset(fleet, 0.0), PreconditionError);
  EXPECT_THROW(covering_subset({}, 0.5), PreconditionError);
}

TEST(Provisioning, RunChargesSleepingMachines) {
  const auto fleet = paper_fleet_types();
  const auto plan = covering_subset(fleet, 0.6);
  RunConfig cfg;
  cfg.seed = 9;
  const auto result = run_provisioned(
      fleet, plan, SchedulerKind::kFair,
      {single_job(workload::AppKind::kWordcount, 64.0 * 8, 2)}, cfg);
  EXPECT_GT(result.sleeping_energy, 0.0);
  EXPECT_GT(result.total_energy(), result.metrics.total_energy);
  const std::size_t sleeping = fleet.size() - plan.active.size();
  EXPECT_NEAR(result.sleeping_energy,
              sleeping * plan.sleep_power * result.metrics.makespan, 1e-6);
}

TEST(Provisioning, SavesEnergyUnderLightLoad) {
  // Under light load the full fleet burns idle power; a covering subset
  // should cut total energy even after charging standby power.
  const auto fleet = paper_fleet_types();
  RunConfig cfg;
  cfg.seed = 10;
  const std::vector<workload::JobSpec> light = {
      single_job(workload::AppKind::kGrep, 64.0 * 6, 2)};

  exp::Run full(paper_fleet(), SchedulerKind::kFair, cfg);
  full.submit(light);
  full.execute();
  const double full_energy = full.metrics().total_energy;

  const auto plan = covering_subset(fleet, 0.4);
  const auto provisioned =
      run_provisioned(fleet, plan, SchedulerKind::kFair, light, cfg);
  EXPECT_LT(provisioned.total_energy(), full_energy);
}

}  // namespace
}  // namespace eant::exp
