// Audit-layer suite: the FNV-1a digest primitive, AuditReport aggregation,
// seeded-violation detection (each corrupted invariant trips exactly its
// check), the abort-on-violation mode, clean end-to-end runs (including under
// fault injection, which exercises the crash/retry/expiry transition paths)
// and the determinism digest: bit-identical across reruns of the same
// RunConfig + seed, different across seeds.

#include <gtest/gtest.h>

#include <cstdlib>

#include "audit/auditor.h"
#include "audit/digest.h"
#include "audit/report.h"
#include "cluster/catalog.h"
#include "cluster/cluster.h"
#include "common/error.h"
#include "exp/builders.h"
#include "exp/runner.h"
#include "sim/fault_injector.h"
#include "sim/simulator.h"
#include "workload/msd.h"

namespace eant {
namespace {

using audit::AuditConfig;
using audit::AuditReport;
using audit::InvariantAuditor;
using audit::Record;
using audit::Severity;
using audit::TaskEvent;

// --- Fnv1a digest ------------------------------------------------------------

TEST(Fnv1a, EmptyHashIsOffsetBasis) {
  audit::Fnv1a h;
  EXPECT_EQ(h.value(), audit::Fnv1a::kOffsetBasis);
}

TEST(Fnv1a, MixChangesValueAndOrderMatters) {
  audit::Fnv1a a;
  a.mix(std::uint64_t{1});
  a.mix(std::uint64_t{2});
  audit::Fnv1a b;
  b.mix(std::uint64_t{2});
  b.mix(std::uint64_t{1});
  EXPECT_NE(a.value(), b.value());
  EXPECT_NE(a.value(), audit::Fnv1a::kOffsetBasis);
}

TEST(Fnv1a, SameStreamSameValue) {
  audit::Fnv1a a;
  audit::Fnv1a b;
  for (std::uint64_t w : {7ULL, 99ULL, 123456789ULL}) {
    a.mix(w);
    b.mix(w);
  }
  EXPECT_EQ(a.value(), b.value());
}

TEST(Fnv1a, DoubleMixUsesBitPattern) {
  audit::Fnv1a a;
  a.mix(1.5);
  audit::Fnv1a b;
  b.mix(1.5000000001);
  EXPECT_NE(a.value(), b.value());
}

// --- AuditReport -------------------------------------------------------------

TEST(AuditReport, CleanWhenEmptyOrWarningsOnly) {
  AuditReport report;
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.total_violations(), 0u);

  audit::Violation warn;
  warn.check = "suspicious";
  warn.severity = Severity::kWarning;
  warn.count = 3;
  report.violations.push_back(warn);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.total_violations(), 3u);

  audit::Violation err;
  err.check = "broken";
  err.severity = Severity::kError;
  err.count = 1;
  report.violations.push_back(err);
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.total_violations(), 4u);
}

TEST(AuditReport, SummaryNamesChecks) {
  AuditReport report;
  report.digest = 0xdead;
  report.digest_records = 10;
  EXPECT_NE(report.summary().find("audit clean"), std::string::npos);

  audit::Violation v;
  v.check = "slot-capacity";
  v.severity = Severity::kError;
  v.count = 2;
  v.first_time = 42.0;
  v.first_context = "machine 3";
  report.violations.push_back(v);
  const std::string s = report.summary();
  EXPECT_NE(s.find("slot-capacity"), std::string::npos);
  EXPECT_NE(s.find("machine 3"), std::string::npos);
}

TEST(AuditEnv, ReadsEantAuditVariable) {
  ASSERT_EQ(unsetenv("EANT_AUDIT"), 0);
  EXPECT_FALSE(audit::audit_env_enabled());
  for (const char* value : {"1", "on", "ON", "true", "YES"}) {
    ASSERT_EQ(setenv("EANT_AUDIT", value, 1), 0);
    EXPECT_TRUE(audit::audit_env_enabled()) << value;
  }
  for (const char* value : {"0", "off", "no", ""}) {
    ASSERT_EQ(setenv("EANT_AUDIT", value, 1), 0);
    EXPECT_FALSE(audit::audit_env_enabled()) << value;
  }
  ASSERT_EQ(unsetenv("EANT_AUDIT"), 0);
}

// --- seeded violations (direct auditor API) ----------------------------------

// A tiny 1-machine fixture: the auditor watches the real machine, so checks
// can be tripped by feeding it observations that contradict reality.
struct SeededFixture {
  sim::Simulator sim;
  cluster::Cluster cluster{sim};
  InvariantAuditor auditor;

  explicit SeededFixture(AuditConfig config = {}) : auditor(sim, config) {
    cluster::MachineType type = cluster::catalog::desktop();
    type.map_slots = 1;
    type.reduce_slots = 1;
    cluster.add_machines(type, 1);
    auditor.attach_cluster(cluster);
  }
};

TEST(SeededViolation, CorruptedEnergyAccountingIsCaught) {
  SeededFixture fx;
  // Lie to the auditor: claim 8 cores of demand the machine never hosted.
  // Its independent integral then diverges from the machine's exact one.
  fx.auditor.on_machine_state(0, fx.sim.now(), 8.0, true);
  fx.sim.schedule_at(500.0, [] {});
  fx.sim.run();
  const AuditReport report = fx.auditor.finalize();
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].check, "energy-conservation");
  EXPECT_FALSE(report.clean());
}

TEST(SeededViolation, HonestObservationsStayClean) {
  SeededFixture fx;
  fx.cluster.machine(0).adjust_demand(2.0);  // flows through the observer
  fx.sim.schedule_at(500.0, [] {});
  fx.sim.run();
  fx.cluster.machine(0).adjust_demand(-2.0);
  const AuditReport report = fx.auditor.finalize();
  EXPECT_TRUE(report.clean()) << report.summary();
  EXPECT_GT(report.digest_records, 0u);
}

TEST(SeededViolation, SlotOverCommitIsCaught) {
  SeededFixture fx;  // 1 map slot
  fx.auditor.on_task_transition(0, true, 0, TaskEvent::kLaunch, 0);
  fx.auditor.on_task_transition(0, true, 1, TaskEvent::kLaunch, 0);
  const AuditReport report = fx.auditor.finalize();
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].check, "slot-capacity");
}

TEST(SeededViolation, IllegalTransitionIsCaught) {
  SeededFixture fx;
  // Finish without a launch: no running attempt exists.
  fx.auditor.on_task_transition(0, true, 0, TaskEvent::kFinish, 0);
  const AuditReport report = fx.auditor.finalize();
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].check, "task-state-machine");
}

TEST(SeededViolation, LegalLifecycleIncludingRetryAndRevertIsClean) {
  SeededFixture fx;
  // launch -> fail -> relaunch -> finish -> revert -> relaunch -> finish,
  // with a kill of a speculative twin in between: all legal Hadoop paths.
  fx.auditor.on_task_transition(0, true, 0, TaskEvent::kLaunch, 0);
  fx.auditor.on_task_transition(0, true, 0, TaskEvent::kFail, 0);
  fx.auditor.on_task_transition(0, true, 0, TaskEvent::kLaunch, 0);
  fx.auditor.on_task_transition(0, false, 0, TaskEvent::kLaunch, 0);  // reduce
  fx.auditor.on_task_transition(0, false, 0, TaskEvent::kKill, 0);
  fx.auditor.on_task_transition(0, true, 0, TaskEvent::kFinish, 0);
  fx.auditor.on_task_transition(0, true, 0, TaskEvent::kRevertDone, 0);
  fx.auditor.on_task_transition(0, true, 0, TaskEvent::kLaunch, 0);
  fx.auditor.on_task_transition(0, true, 0, TaskEvent::kFinish, 0);
  const AuditReport report = fx.auditor.finalize();
  EXPECT_TRUE(report.clean()) << report.summary();
}

TEST(SeededViolation, ThirdConcurrentAttemptIsCaught) {
  SeededFixture fx;
  fx.auditor.on_task_transition(0, false, 0, TaskEvent::kLaunch, 0);
  fx.auditor.on_task_transition(0, false, 0, TaskEvent::kLaunch, 0);  // twin ok
  fx.auditor.on_task_transition(0, false, 0, TaskEvent::kLaunch, 0);  // illegal
  const AuditReport report = fx.auditor.finalize();
  // The third launch is both a state-machine violation and a slot
  // over-commit (1 reduce slot) — the second launch already overflowed it.
  bool saw_state_machine = false;
  for (const auto& v : report.violations) {
    if (v.check == "task-state-machine") saw_state_machine = true;
  }
  EXPECT_TRUE(saw_state_machine) << report.summary();
}

TEST(SeededViolation, CausalityAndMonotonicityAreChecked) {
  SeededFixture fx;
  fx.sim.schedule_at(10.0, [] {});
  fx.sim.run();  // clock at 10
  fx.auditor.on_event_executed(12.0, 98);   // legal: raises the high-water mark
  fx.auditor.on_event_scheduled(5.0, 99);   // scheduling into the past
  fx.auditor.on_event_executed(3.0, 100);   // executing behind the clock
  const AuditReport report = fx.auditor.finalize();
  ASSERT_EQ(report.violations.size(), 2u);
  EXPECT_EQ(report.violations[0].check, "heap-causality");
  EXPECT_EQ(report.violations[1].check, "time-monotonicity");
}

TEST(SeededViolation, RangeCheckFlagsOutOfBoundsAndNonFinite) {
  SeededFixture fx;
  fx.auditor.check_in_range("pheromone-bounds", 0.5, 0.05, 1e12, "tau");
  fx.auditor.check_in_range("pheromone-bounds", 0.01, 0.05, 1e12, "tau");
  fx.auditor.check_in_range("pheromone-bounds",
                            std::numeric_limits<double>::quiet_NaN(), 0.05,
                            1e12, "tau");
  const AuditReport report = fx.auditor.finalize();
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].check, "pheromone-bounds");
  EXPECT_EQ(report.violations[0].count, 2u);
}

TEST(SeededViolation, AbortModeThrowsAtFirstOffence) {
  AuditConfig config;
  config.abort_on_violation = true;
  SeededFixture fx(config);
  EXPECT_THROW(
      fx.auditor.on_task_transition(0, true, 0, TaskEvent::kFinish, 0),
      InvariantError);
}

TEST(SeededViolation, ViolationsAggregatePerCheckWithFirstContext) {
  SeededFixture fx;
  fx.auditor.report_violation("custom-check", Severity::kError, "first hit");
  fx.auditor.report_violation("custom-check", Severity::kError, "second hit");
  const AuditReport report = fx.auditor.finalize();
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].count, 2u);
  EXPECT_EQ(report.violations[0].first_context, "first hit");
}

// --- end-to-end: audited runs ------------------------------------------------

exp::RunConfig audited_config(std::uint64_t seed) {
  exp::RunConfig cfg;
  cfg.seed = seed;
  cfg.noise = mr::NoiseConfig::typical();
  cfg.eant.control_interval = 120.0;
  cfg.eant.negative_feedback = false;
  cfg.audit.enabled = true;
  return cfg;
}

std::vector<workload::JobSpec> msd_jobs(std::uint64_t seed, int num_jobs) {
  workload::MsdConfig wl;
  wl.num_jobs = num_jobs;
  wl.input_scale = 1.0 / 200.0;
  wl.mean_interarrival = 60.0;
  Rng rng(seed);
  return workload::MsdGenerator(wl).generate(rng);
}

exp::RunMetrics run_audited(std::uint64_t seed, int num_jobs) {
  exp::Run run(exp::paper_fleet(), exp::SchedulerKind::kEAnt,
               audited_config(seed));
  run.submit(msd_jobs(seed, num_jobs));
  run.execute();
  return run.metrics();
}

TEST(AuditedRun, FullWorkloadRunsViolationFree) {
  const exp::RunMetrics m = run_audited(42, 25);
  EXPECT_TRUE(m.audited);
  EXPECT_TRUE(m.audit.clean()) << m.audit.summary();
  EXPECT_GT(m.audit.digest_records, 0u);
  EXPECT_EQ(m.determinism_digest, m.audit.digest);
}

TEST(AuditedRun, FaultPathsRunViolationFree) {
  // Crashes, tracker expiry, transient failures and recovery all feed the
  // transition table; a clean report means the retry/expiry/crash paths obey
  // the task state machine and conservation laws.
  exp::RunConfig cfg = audited_config(7);
  cfg.faults.crash_for(2, 150.0, 400.0).crash_for(5, 300.0, 200.0);
  cfg.faults.task_failure_prob = 0.03;
  cfg.job_tracker.tracker_expiry_window = 60.0;
  exp::Run run(exp::paper_fleet(), exp::SchedulerKind::kEAnt, cfg);
  run.submit(msd_jobs(7, 15));
  run.execute();
  const exp::RunMetrics m = run.metrics();
  EXPECT_TRUE(m.audited);
  EXPECT_TRUE(m.audit.clean()) << m.audit.summary();
  // The fault plan actually bit (otherwise this test checks nothing).
  EXPECT_GT(m.killed_attempts + m.failed_attempts, 0u);
}

TEST(AuditedRun, UnauditedRunReportsNoDigest) {
  exp::RunConfig cfg = audited_config(42);
  cfg.audit.enabled = false;
  ASSERT_EQ(unsetenv("EANT_AUDIT"), 0);
  exp::Run run(exp::paper_fleet(), exp::SchedulerKind::kEAnt, cfg);
  run.submit(msd_jobs(42, 3));
  run.execute();
  const exp::RunMetrics m = run.metrics();
  EXPECT_FALSE(m.audited);
  EXPECT_EQ(m.determinism_digest, 0u);
}

TEST(AuditedRun, EnvVarForcesAuditing) {
  exp::RunConfig cfg = audited_config(42);
  cfg.audit.enabled = false;
  ASSERT_EQ(setenv("EANT_AUDIT", "ON", 1), 0);
  exp::Run run(exp::paper_fleet(), exp::SchedulerKind::kEAnt, cfg);
  ASSERT_EQ(unsetenv("EANT_AUDIT"), 0);
  run.submit(msd_jobs(42, 3));
  run.execute();
  const exp::RunMetrics m = run.metrics();
  EXPECT_TRUE(m.audited);
  EXPECT_TRUE(m.audit.clean()) << m.audit.summary();
}

// --- determinism digest ------------------------------------------------------

TEST(Determinism, IdenticalConfigAndSeedGiveIdenticalDigests) {
  const exp::RunMetrics a = run_audited(42, 20);
  const exp::RunMetrics b = run_audited(42, 20);
  EXPECT_EQ(a.determinism_digest, b.determinism_digest);
  EXPECT_EQ(a.audit.digest_records, b.audit.digest_records);
  EXPECT_DOUBLE_EQ(a.total_energy, b.total_energy);  // lint-ok: float-eq
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);          // lint-ok: float-eq
}

TEST(Determinism, DifferentSeedsGiveDifferentDigests) {
  const exp::RunMetrics a = run_audited(42, 20);
  const exp::RunMetrics b = run_audited(43, 20);
  EXPECT_NE(a.determinism_digest, b.determinism_digest);
}

}  // namespace
}  // namespace eant
