// Unit tests for the baseline schedulers: FIFO ordering, Fair sharing,
// Tarazu's capability-proportional balancing, LATE speculation.

#include <gtest/gtest.h>

#include <memory>

#include "cluster/catalog.h"
#include "cluster/cluster.h"
#include "common/error.h"
#include "hdfs/namenode.h"
#include "mapreduce/job_tracker.h"
#include "sched/capacity.h"
#include "sched/fair.h"
#include "sched/fifo.h"
#include "sched/late.h"
#include "sched/tarazu.h"
#include "sim/simulator.h"

namespace eant::sched {
namespace {

workload::JobSpec job(workload::AppKind app, Megabytes mb, int reduces = 1) {
  workload::JobSpec s;
  s.app = app;
  s.input_mb = mb;
  s.num_reduces = reduces;
  return s;
}

struct Harness {
  Harness(std::unique_ptr<mr::Scheduler> s,
          std::vector<std::pair<cluster::MachineType, std::size_t>> fleet,
          mr::JobTrackerConfig cfg = {},
          mr::NoiseConfig noise_cfg = mr::NoiseConfig::none())
      : cluster(sim), scheduler(std::move(s)), noise(noise_cfg, Rng(21)) {
    std::size_t total = 0;
    for (const auto& [type, count] : fleet) {
      cluster.add_machines(type, count);
      total += count;
    }
    namenode = std::make_unique<hdfs::NameNode>(Rng(22), total);
    jt = std::make_unique<mr::JobTracker>(sim, cluster, *namenode, *scheduler,
                                          noise, cfg);
    jt->start_trackers();
  }

  void run() {
    while (!jt->all_done()) {
      ASSERT_LE(sim.now(), 7 * 24 * 3600.0);
      ASSERT_TRUE(sim.step());
    }
  }

  sim::Simulator sim;
  cluster::Cluster cluster;
  std::unique_ptr<mr::Scheduler> scheduler;
  mr::NoiseModel noise;
  std::unique_ptr<hdfs::NameNode> namenode;
  std::unique_ptr<mr::JobTracker> jt;
};

TEST(Fifo, RequiresAttach) {
  FifoScheduler s;
  EXPECT_THROW(s.select_job(0, mr::TaskKind::kMap), PreconditionError);
}

TEST(Fifo, EarlierJobFinishesFirst) {
  Harness h(std::make_unique<FifoScheduler>(),
            {{cluster::catalog::desktop(), 2}});
  const auto j0 =
      h.jt->submit_now(job(workload::AppKind::kWordcount, 64.0 * 30));
  const auto j1 =
      h.jt->submit_now(job(workload::AppKind::kWordcount, 64.0 * 30));
  h.run();
  EXPECT_LT(h.jt->job(j0).finish_time(), h.jt->job(j1).finish_time());
}

TEST(Fifo, SecondJobStarvesUntilFirstDrains) {
  Harness h(std::make_unique<FifoScheduler>(),
            {{cluster::catalog::desktop(), 1}});
  const auto j0 =
      h.jt->submit_now(job(workload::AppKind::kWordcount, 64.0 * 20));
  const auto j1 =
      h.jt->submit_now(job(workload::AppKind::kWordcount, 64.0 * 20));
  bool j1_ran_while_j0_pending = false;
  h.jt->set_report_listener([&](const mr::TaskReport& r) {
    if (r.spec.job == j1 &&
        h.jt->job(j0).has_pending(mr::TaskKind::kMap)) {
      j1_ran_while_j0_pending = true;
    }
  });
  h.run();
  EXPECT_FALSE(j1_ran_while_j0_pending);
}

TEST(Fair, SharesSlotsAcrossConcurrentJobs) {
  Harness h(std::make_unique<FairScheduler>(),
            {{cluster::catalog::desktop(), 2}});
  const auto j0 =
      h.jt->submit_now(job(workload::AppKind::kWordcount, 64.0 * 40));
  const auto j1 =
      h.jt->submit_now(job(workload::AppKind::kWordcount, 64.0 * 40));
  bool both_held_slots = false;
  h.jt->set_report_listener([&](const mr::TaskReport&) {
    if (h.jt->job(j0).occupied_slots() > 0 &&
        h.jt->job(j1).occupied_slots() > 0) {
      both_held_slots = true;
    }
  });
  h.run();
  EXPECT_TRUE(both_held_slots);
}

TEST(Fair, ConcurrentEqualJobsFinishClose) {
  Harness h(std::make_unique<FairScheduler>(),
            {{cluster::catalog::desktop(), 2}});
  const auto j0 =
      h.jt->submit_now(job(workload::AppKind::kWordcount, 64.0 * 30));
  const auto j1 =
      h.jt->submit_now(job(workload::AppKind::kWordcount, 64.0 * 30));
  h.run();
  const double t0 = h.jt->job(j0).completion_time();
  const double t1 = h.jt->job(j1).completion_time();
  EXPECT_LT(std::abs(t0 - t1) / std::max(t0, t1), 0.25);
}

TEST(Fair, FairBeatsFifoOnShortJobLatency) {
  double fair_short = 0.0, fifo_short = 0.0;
  for (int mode = 0; mode < 2; ++mode) {
    std::unique_ptr<mr::Scheduler> s;
    if (mode == 0) {
      s = std::make_unique<FairScheduler>();
    } else {
      s = std::make_unique<FifoScheduler>();
    }
    Harness h(std::move(s), {{cluster::catalog::desktop(), 1}});
    h.jt->submit_now(job(workload::AppKind::kWordcount, 64.0 * 60));
    const auto shortj =
        h.jt->submit_now(job(workload::AppKind::kWordcount, 64.0 * 2));
    h.run();
    if (mode == 0) {
      fair_short = h.jt->job(shortj).completion_time();
    } else {
      fifo_short = h.jt->job(shortj).completion_time();
    }
  }
  EXPECT_LT(fair_short, 0.5 * fifo_short);
}

TEST(Tarazu, RejectsInvalidSlack) {
  EXPECT_THROW(TarazuScheduler(0.5), PreconditionError);
}

TEST(Tarazu, BalancesMapsTowardCapableMachines) {
  Harness h(std::make_unique<TarazuScheduler>(),
            {{cluster::catalog::t420(), 1}, {cluster::catalog::atom(), 1}});
  const auto j =
      h.jt->submit_now(job(workload::AppKind::kWordcount, 64.0 * 60));
  h.run();
  const auto& per_machine =
      h.jt->job(j).completed_per_machine(mr::TaskKind::kMap);
  // Capability shares: T420 ~ 0.91, Atom ~ 0.09; with slack 1.5 the Atom
  // must end well below an even split.
  EXPECT_GT(per_machine[0], per_machine[1] * 2.5);
}

TEST(Tarazu, ReducesSkewPenaltyVersusFair) {
  auto run_skew = [&](std::unique_ptr<mr::Scheduler> s) {
    Harness h(std::move(s),
              {{cluster::catalog::t420(), 1},
               {cluster::catalog::desktop(), 2},
               {cluster::catalog::atom(), 1}});
    const auto j =
        h.jt->submit_now(job(workload::AppKind::kTerasort, 64.0 * 60, 4));
    h.run();
    return h.jt->job(j).shuffle_seconds();
  };
  const double fair_shuffle = run_skew(std::make_unique<FairScheduler>());
  const double tarazu_shuffle = run_skew(std::make_unique<TarazuScheduler>());
  EXPECT_LE(tarazu_shuffle, fair_shuffle * 1.02);
}

TEST(Tarazu, ComparableMakespanOnHeterogeneousFleet) {
  auto run_makespan = [&](std::unique_ptr<mr::Scheduler> s) {
    Harness h(std::move(s),
              {{cluster::catalog::t420(), 1},
               {cluster::catalog::desktop(), 1},
               {cluster::catalog::atom(), 2}});
    for (int i = 0; i < 4; ++i) {
      h.jt->submit_now(job(workload::AppKind::kWordcount, 64.0 * 30, 2));
    }
    h.run();
    return h.sim.now();
  };
  const double fair = run_makespan(std::make_unique<FairScheduler>());
  const double tarazu = run_makespan(std::make_unique<TarazuScheduler>());
  EXPECT_LT(tarazu, fair * 1.05);
}

TEST(Late, RejectsInvalidParameters) {
  EXPECT_THROW(LateScheduler(0.5), PreconditionError);
  EXPECT_THROW(LateScheduler(1.5, 2.0), PreconditionError);
}

TEST(Late, SpeculatesOnStragglers) {
  mr::NoiseConfig noise;
  noise.straggler_prob = 0.3;
  noise.straggler_factor_min = 4.0;
  noise.straggler_factor_max = 6.0;
  auto late = std::make_unique<LateScheduler>(1.5);
  auto* late_ptr = late.get();
  Harness h(std::move(late),
            {{cluster::catalog::desktop(), 1}, {cluster::catalog::t420(), 1}},
            {}, noise);
  h.jt->submit_now(job(workload::AppKind::kWordcount, 64.0 * 40, 2));
  h.run();
  EXPECT_GT(late_ptr->speculations(), 0u);
}

TEST(Late, NoSpeculationWithoutStragglers) {
  auto late = std::make_unique<LateScheduler>(/*straggler_beta=*/3.0);
  auto* late_ptr = late.get();
  // Homogeneous machines, no noise: every task has identical duration, so
  // nothing exceeds 3x the mean.
  Harness h(std::move(late), {{cluster::catalog::desktop(), 2}});
  h.jt->submit_now(job(workload::AppKind::kWordcount, 64.0 * 20, 1));
  h.run();
  EXPECT_EQ(late_ptr->speculations(), 0u);
}

TEST(Late, CompletesWorkloadDespiteSpeculation) {
  mr::NoiseConfig noise = mr::NoiseConfig::typical();
  noise.straggler_prob = 0.2;
  Harness h(std::make_unique<LateScheduler>(),
            {{cluster::catalog::desktop(), 2},
             {cluster::catalog::t420(), 1}},
            {}, noise);
  for (int i = 0; i < 3; ++i) {
    h.jt->submit_now(job(workload::AppKind::kGrep, 64.0 * 20, 2));
  }
  h.run();
  EXPECT_EQ(h.jt->jobs_completed(), 3u);
}

TEST(Capacity, RejectsBadQueueConfig) {
  EXPECT_THROW(CapacityScheduler(std::vector<double>{}), PreconditionError);
  EXPECT_THROW(CapacityScheduler({0.5, 0.6}), PreconditionError);
  EXPECT_THROW(CapacityScheduler({1.2, -0.2}), PreconditionError);
  EXPECT_NO_THROW(CapacityScheduler({0.7, 0.3}));
}

TEST(Capacity, AssignsJobsToQueuesRoundRobin) {
  auto sched = std::make_unique<CapacityScheduler>(
      std::vector<double>{0.5, 0.5});
  auto* ptr = sched.get();
  Harness h(std::move(sched), {{cluster::catalog::desktop(), 2}});
  const auto j0 = h.jt->submit_now(job(workload::AppKind::kGrep, 64.0 * 4));
  const auto j1 = h.jt->submit_now(job(workload::AppKind::kGrep, 64.0 * 4));
  const auto j2 = h.jt->submit_now(job(workload::AppKind::kGrep, 64.0 * 4));
  EXPECT_EQ(ptr->queue_of(j0), 0u);
  EXPECT_EQ(ptr->queue_of(j1), 1u);
  EXPECT_EQ(ptr->queue_of(j2), 0u);
  h.run();
  EXPECT_EQ(h.jt->jobs_completed(), 3u);
}

TEST(Capacity, StarvedQueueGetsSlotsFirst) {
  // Two queues 50/50; the first queue's job is large, the second's small
  // jobs arrive later — the second queue must still get its share promptly.
  auto sched = std::make_unique<CapacityScheduler>(
      std::vector<double>{0.5, 0.5});
  Harness h(std::move(sched), {{cluster::catalog::desktop(), 2}});
  h.jt->submit_now(job(workload::AppKind::kWordcount, 64.0 * 60));  // q0
  const auto small =
      h.jt->submit_now(job(workload::AppKind::kWordcount, 64.0 * 4));  // q1
  bool small_held_slots_early = false;
  h.jt->set_report_listener([&](const mr::TaskReport& r) {
    if (r.spec.job == small) small_held_slots_early = true;
  });
  h.run();
  EXPECT_TRUE(small_held_slots_early);
  // The small job must not wait for the big one to drain (non-FIFO).
  EXPECT_LT(h.jt->job(small).completion_time(),
            h.jt->job(0).completion_time());
}

TEST(Capacity, SpilloverUsesIdleCapacity) {
  // Only one job (queue 0): it may use the whole cluster despite its
  // queue's 30% guarantee — capacity spills over.
  auto sched = std::make_unique<CapacityScheduler>(
      std::vector<double>{0.3, 0.7});
  Harness h(std::move(sched), {{cluster::catalog::desktop(), 2}});
  const auto j = h.jt->submit_now(job(workload::AppKind::kWordcount, 64.0 * 24));
  int max_occupied = 0;
  h.jt->set_report_listener([&](const mr::TaskReport&) {
    max_occupied = std::max(max_occupied, h.jt->job(j).occupied_slots());
  });
  h.run();
  EXPECT_GT(max_occupied, 4);  // beyond 30% of the 12 slots
}

TEST(DelayScheduling, ImprovesLocalityOverPlainFair) {
  auto run_locality = [&](int delay) {
    auto sched = std::make_unique<FairScheduler>(delay);
    Harness h(std::move(sched), {{cluster::catalog::desktop(), 6}});
    for (int i = 0; i < 4; ++i) {
      h.jt->submit_now(job(workload::AppKind::kGrep, 64.0 * 10, 2));
    }
    std::size_t local = 0, maps = 0;
    h.jt->set_report_listener([&](const mr::TaskReport& r) {
      if (r.spec.kind == mr::TaskKind::kMap) {
        ++maps;
        if (r.data_local) ++local;
      }
    });
    h.run();
    return static_cast<double>(local) / static_cast<double>(maps);
  };
  EXPECT_GE(run_locality(8) + 1e-9, run_locality(0));
}

TEST(DelayScheduling, CountsLocalityWaits) {
  auto sched = std::make_unique<FairScheduler>(4);
  auto* ptr = sched.get();
  Harness h(std::move(sched), {{cluster::catalog::desktop(), 12}});
  h.jt->submit_now(job(workload::AppKind::kGrep, 64.0 * 4, 1));
  h.run();
  // Four splits x 3 replicas cover at most half of the twelve machines, so
  // some heartbeats must have been held back waiting for locality.
  EXPECT_GT(ptr->locality_waits(), 0u);
}

TEST(DelayScheduling, RejectsNegativeDelay) {
  EXPECT_THROW(FairScheduler(-1), PreconditionError);
}

TEST(AllSchedulers, NamesAreStable) {
  EXPECT_EQ(FifoScheduler().name(), "FIFO");
  EXPECT_EQ(FairScheduler().name(), "Fair");
  EXPECT_EQ(TarazuScheduler().name(), "Tarazu");
  EXPECT_EQ(LateScheduler().name(), "LATE");
  EXPECT_EQ(CapacityScheduler().name(), "Capacity");
}

}  // namespace
}  // namespace eant::sched
